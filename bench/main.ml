(* The experiment harness: regenerates every figure and every reported
   statistic of the paper's evaluation (see DESIGN.md §2 for the E1-E14
   index and EXPERIMENTS.md for paper-vs-measured numbers), then runs
   the Bechamel microbenchmarks — one Test.make per measured
   experiment.

   Run with: dune exec bench/main.exe *)

open Sgraph

let section id title =
  Fmt.pr "@.========================================================@.";
  Fmt.pr "%s — %s@." id title;
  Fmt.pr "========================================================@."

let time_it f =
  let t0 = Sys.time () in
  let r = f () in
  (r, Sys.time () -. t0)

let ms t = t *. 1000.

(* ----------------------------------------------------------------- *)
(* E1 — Fig. 2: the data graph produced by the BibTeX wrapper         *)
(* ----------------------------------------------------------------- *)

let e1 () =
  section "E1" "Fig. 2 — data-graph fragment (BibTeX wrapper → DDL)";
  let g, _ = Ddl.parse ~graph_name:"BIBTEX" Sites.Paper_example.data_ddl in
  Fmt.pr "%a@." Graph.pp_stats g;
  Fmt.pr "@.%s@." (Ddl.print g);
  (* the same data obtained through the BibTeX wrapper *)
  let bib =
    {|@article{pub1,
  title = {Specifying Representations of Machine Instructions},
  author = {Norman Ramsey and Mary Fernandez},
  year = 1997, month = {May},
  journal = {Transactions on Programming Languages and Systems},
  abstract = {abstracts/toplas97.txt},
  postscript = {papers/toplas97.ps.gz},
  volume = {19 (3)},
  keywords = {Architecture Specifications, Programming Languages}
}|}
  in
  let g2, _ = Wrappers.Bibtex.load bib in
  Fmt.pr "via the BibTeX wrapper: %a@." Graph.pp_stats g2

(* ----------------------------------------------------------------- *)
(* E2 — Fig. 3: the site-definition query                             *)
(* ----------------------------------------------------------------- *)

let e2 () =
  section "E2" "Fig. 3 — site-definition query (parse → pretty → re-parse)";
  let q = Struql.Parser.parse Sites.Paper_example.site_query in
  Fmt.pr "blocks: %d (nested: %d), conditions: %d, link clauses: %d@."
    (List.length q.Struql.Ast.blocks)
    (List.fold_left
       (fun n b -> n + List.length b.Struql.Ast.nested)
       0 q.Struql.Ast.blocks)
    (Struql.Ast.query_condition_count q)
    (Struql.Ast.query_link_count q);
  let printed = Struql.Pretty.to_string q in
  let stable = Struql.Pretty.query_equal q (Struql.Parser.parse printed) in
  Fmt.pr "pretty-print/re-parse fixpoint: %b@." stable;
  Fmt.pr "@.%s@." printed

(* ----------------------------------------------------------------- *)
(* E3 — Fig. 4: the generated site graph                              *)
(* ----------------------------------------------------------------- *)

let e3 () =
  section "E3" "Fig. 4 — site-graph fragment (query evaluated on Fig. 2 data)";
  let b = Sites.Paper_example.build () in
  let sg = b.Strudel.Site.site_graph in
  Fmt.pr "%a@." Graph.pp_stats sg;
  List.iter
    (fun fam ->
      Fmt.pr "  %-20s %d node(s)@." fam
        (List.length (Schema.Verify.family_members sg fam)))
    [ "RootPage"; "AbstractsPage"; "PaperPresentation"; "AbstractPage";
      "YearPage"; "CategoryPage" ];
  let root = List.hd (Schema.Verify.family_members sg "RootPage") in
  Fmt.pr "@.fragment around the root (cf. Fig. 4):@.";
  List.iter
    (fun (l, t) -> Fmt.pr "  RootPage() -%S-> %a@." l Graph.pp_target t)
    (Graph.out_edges sg root);
  List.iter
    (fun y ->
      List.iter
        (fun (l, t) ->
          Fmt.pr "  %s -%S-> %a@." (Oid.name y) l Graph.pp_target t)
        (Graph.out_edges sg y))
    (Schema.Verify.family_members sg "YearPage")

(* ----------------------------------------------------------------- *)
(* E4 — Fig. 5: the site schema                                       *)
(* ----------------------------------------------------------------- *)

let e4 () =
  section "E4" "Fig. 5 — site schema derived from the Fig. 3 query";
  let q = Struql.Parser.parse Sites.Paper_example.site_query in
  let s = Schema.Site_schema.of_query q in
  Fmt.pr "%a@." Schema.Site_schema.pp s;
  (* schema → query → same site graph *)
  let g = Sites.Paper_example.data () in
  let census g' = (Graph.node_count g', Graph.edge_count g') in
  let direct = Struql.Eval.run g q in
  let recovered = Struql.Eval.run g (Schema.Site_schema.to_query s) in
  Fmt.pr "query recovered from schema evaluates identically: %b@."
    (census direct = census recovered);
  Fmt.pr "@.static verification on the schema:@.";
  List.iter
    (fun c ->
      Fmt.pr "  [%a] -> %a@." Schema.Verify.pp_constraint c
        Schema.Verify.pp_verdict (Schema.Verify.check_schema s c))
    Sites.Paper_example.constraints

(* ----------------------------------------------------------------- *)
(* E5 — Fig. 6/7: templates and HTML generation                       *)
(* ----------------------------------------------------------------- *)

let e5 () =
  section "E5" "Fig. 6/7 — HTML-template language and generated pages";
  let b = Sites.Paper_example.build () in
  let site = b.Strudel.Site.site in
  Fmt.pr "pages generated: %d, total bytes: %d@."
    (Template.Generator.page_count site)
    (Template.Generator.total_bytes site);
  List.iter
    (fun (p : Template.Generator.page) ->
      Fmt.pr "  %s@." p.Template.Generator.url)
    site.Template.Generator.pages;
  let root =
    List.hd (Schema.Verify.family_members b.Strudel.Site.site_graph "RootPage")
  in
  let page = Option.get (Template.Generator.page_of_object site root) in
  Fmt.pr "@.RootPage HTML (from the Fig. 7 RootPage template):@.%s@."
    page.Template.Generator.html;
  List.iter
    (fun (c, v) ->
      Fmt.pr "constraint [%a]: %a@." Schema.Verify.pp_constraint c
        Schema.Verify.pp_verdict v)
    b.Strudel.Site.verification

(* ----------------------------------------------------------------- *)
(* E6 — Fig. 8: tool-suitability matrix                               *)
(* ----------------------------------------------------------------- *)

(* a structurally simple site over the news data: one flat index,
   3 link clauses (the "RDBMS + Web interface" regime) *)
let simple_query =
  {|INPUT NEWS
{ CREATE Index()
  COLLECT Indexes(Index()) }
{ WHERE Articles(a)
  CREATE Page(a)
  LINK Index() -> "Article" -> Page(a)
  COLLECT Pages(Page(a)) }
{ WHERE Articles(a), a -> "headline" -> h
  LINK Page(a) -> "headline" -> h }
OUTPUT Simple
|}

let simple_templates =
  {
    Template.Generator.empty_templates with
    Template.Generator.by_collection =
      [
        ( "Indexes",
          {|<h1>Articles</h1><SFMTLIST @Article KEY=headline ORDER=ascend>|} );
        ("Pages", {|<h1><SFMT @headline></h1>|});
      ];
  }

let simple_definition =
  Strudel.Site.define ~name:"Simple" ~root_family:"Index"
    ~templates:simple_templates
    [ ("site", simple_query) ]

let e6 () =
  section "E6" "Fig. 8 — suitability: data size × structural complexity";
  Fmt.pr
    "build time (ms) and spec size, STRUDEL vs hand-coded procedural \
     baseline@.";
  Fmt.pr "%-10s %-12s %14s %14s %10s %12s@." "articles" "structure"
    "strudel(ms)" "baseline(ms)" "spec(lns)" "pages";
  let baseline_loc = 180 in
  (* lines of Baseline.Procedural.news_site + helpers, hand-coded *)
  List.iter
    (fun articles ->
      let data = Sites.Cnn.data ~articles () in
      List.iter
        (fun (label, def) ->
          let built, t = time_it (fun () -> Strudel.Site.build ~data def) in
          let _, tb =
            time_it (fun () -> ignore (Baseline.Procedural.news_site data))
          in
          let spec = Strudel.Site.spec_stats def in
          Fmt.pr "%-10d %-12s %14.1f %14.1f %10d %12d@." articles label
            (ms t) (ms tb)
            (spec.Strudel.Site.query_lines + spec.Strudel.Site.template_lines)
            (Template.Generator.page_count built.Strudel.Site.site))
        [ ("simple", simple_definition); ("complex", Sites.Cnn.definition) ])
    [ 20; 100; 400 ];
  Fmt.pr
    "@.procedural baseline: ~%d hand-written lines for ONE structure; \
     every variant (sports-only, text-only, restructure) costs another \
     copy.  STRUDEL: the complex site costs %d declarative lines, and \
     the sports-only variant differs by 2 predicates per clause (E8).@."
    baseline_loc
    (let s = Strudel.Site.spec_stats Sites.Cnn.definition in
     s.Strudel.Site.query_lines + s.Strudel.Site.template_lines);
  Fmt.pr
    "Fig. 8 reading: low data x low structure -> hand tools fine \
     (baseline faster, spec trivial); high data x complex structure -> \
     STRUDEL wins on specification cost while build times stay \
     comparable.@."

(* ----------------------------------------------------------------- *)
(* E7 — §5.1 site statistics                                          *)
(* ----------------------------------------------------------------- *)

let e7 () =
  section "E7" "§5.1 — site statistics (paper numbers in brackets)";
  Fmt.pr "%-22s %10s %8s %10s %10s %8s %10s@." "site" "qry lines" "links"
    "templates" "tpl lines" "pages" "build ms";
  let row name ?paper def data =
    let spec = Strudel.Site.spec_stats def in
    let built, t = time_it (fun () -> Strudel.Site.build ~data def) in
    Fmt.pr "%-22s %10d %8d %10d %10d %8d %10.1f@." name
      spec.Strudel.Site.query_lines spec.Strudel.Site.link_clauses
      spec.Strudel.Site.template_count spec.Strudel.Site.template_lines
      (Template.Generator.page_count built.Strudel.Site.site)
      (ms t);
    match paper with
    | Some s -> Fmt.pr "%-22s %s@." "" s
    | None -> ()
  in
  row "paper-example" Sites.Paper_example.definition
    (Sites.Paper_example.data ());
  row "homepage (mff)"
    ~paper:"[paper: 48-line query, 13 templates (202 lines)]"
    Sites.Homepage.definition
    (Sites.Homepage.data ~entries:30 ());
  row "cnn (300 articles)"
    ~paper:"[paper: 44-line query, 9 templates, ~300 articles]"
    Sites.Cnn.definition
    (Sites.Cnn.data ~articles:300 ());
  let _, w = Sites.Org.data () in
  row "org (400 people)"
    ~paper:"[paper: 115-line query, 17 templates (380 lines), ~400 users]"
    Sites.Org.definition
    (Mediator.Warehouse.graph w)

(* ----------------------------------------------------------------- *)
(* E8 — §5.1 multiple versions                                        *)
(* ----------------------------------------------------------------- *)

let e8 () =
  section "E8" "§5.1 — multiple versions of a site";
  (* org: external = same site graph, changed templates only *)
  let changed =
    List.length
      (List.filter
         (fun (c, t) ->
           List.assoc c
             Sites.Org.external_templates.Template.Generator.by_collection
           <> t)
         Sites.Org.internal_templates.Template.Generator.by_collection)
    + List.length
        (List.filter
           (fun (n, t) ->
             match
               List.assoc_opt n
                 Sites.Org.external_templates.Template.Generator.named
             with
             | Some t' -> t' <> t
             | None -> true)
           Sites.Org.internal_templates.Template.Generator.named)
  in
  Fmt.pr
    "org external version: 0 new queries, %d changed template files \
     [paper: \"no new queries were written\"; \"only five HTML template \
     files differ\"]@."
    changed;
  (* cnn sports-only: count predicate difference *)
  let conds q = Struql.Ast.query_condition_count (Struql.Parser.parse q) in
  Fmt.pr
    "cnn sports-only: same templates, +%d predicates over the general \
     query's %d conditions [paper: \"only differs in two extra \
     predicates in one where clause\"]@."
    (conds Sites.Cnn.sports_only_query - conds Sites.Cnn.general_query)
    (conds Sites.Cnn.general_query);
  (* homepage: internal vs external *)
  let internal, external_ = Sites.Homepage.build_both ~entries:20 () in
  Fmt.pr
    "homepage external: same site graph (%b), %d vs %d pages, patents \
     hidden by templates@."
    (internal.Strudel.Site.site_graph == external_.Strudel.Site.site_graph)
    (Template.Generator.page_count internal.Strudel.Site.site)
    (Template.Generator.page_count external_.Strudel.Site.site);
  (* text-only via one template *)
  let data = Sites.Cnn.data ~articles:100 () in
  let general = Strudel.Site.build ~data Sites.Cnn.definition in
  let text = Strudel.Site.regenerate general Sites.Cnn.text_only_templates in
  Fmt.pr
    "cnn text-only: 1 changed template file, %d pages regenerated [§3's \
     TextOnly problem, solved in the presentation layer]@."
    (Template.Generator.page_count text.Strudel.Site.site)

(* ----------------------------------------------------------------- *)
(* E9 — §2.4 optimizer comparison                                     *)
(* ----------------------------------------------------------------- *)

let optimizer_workload ?(pubs = 120) () =
  (* a join-heavy binding query over the bibliography data *)
  let g = fst (Wrappers.Bibtex.load (Wrappers.Synth.bibtex ~entries:pubs ())) in
  let conds =
    {|Publications(x), x -> "year" -> y, y = 1997,
      Publications(x2), x2 -> "year" -> y,
      x -> "category" -> c, x2 -> "category" -> c,
      x != x2|}
  in
  (g, Struql.Parser.parse_conditions conds)

let run_strategy g conds strategy =
  let options = { Struql.Eval.default_options with strategy } in
  let stats = Struql.Eval.new_stats () in
  let steps =
    Struql.Plan.plan ~strategy ~registry:Struql.Builtins.default g ~bound:[]
      ~needed_obj:[] ~needed_label:[] conds
  in
  let envs =
    Struql.Eval.exec_steps ~stats g options.Struql.Eval.registry
      [ Struql.Eval.Env.empty ] steps
  in
  (List.length envs, stats)

(* the same plan on the streaming operator pipeline *)
let run_strategy_streaming g conds strategy =
  let options = { Struql.Eval.default_options with strategy } in
  let rows, ops, peak = Struql.Exec.bindings_profiled ~options g conds in
  (List.length rows, ops, peak)

let e9 () =
  section "E9" "§2.4 — optimizer: naive vs heuristic vs cost-based";
  let g, conds = optimizer_workload () in
  Fmt.pr "%-12s %10s %14s %16s %12s %12s %12s@." "strategy" "rows" "time (ms)"
    "intermediate" "max interm." "stream(ms)" "peak live";
  List.iter
    (fun (name, strategy) ->
      let (rows, stats), t =
        time_it (fun () -> run_strategy g conds strategy)
      in
      let (srows, _, peak), ts =
        time_it (fun () -> run_strategy_streaming g conds strategy)
      in
      assert (srows = rows);
      Fmt.pr "%-12s %10d %14.2f %16d %12d %12.2f %12d@." name rows (ms t)
        stats.Struql.Eval.intermediate stats.Struql.Eval.max_intermediate
        (ms ts) peak)
    [ ("naive", Struql.Plan.Naive); ("heuristic", Struql.Plan.Heuristic);
      ("costbased", Struql.Plan.Cost_based) ];
  Fmt.pr
    "shape check: identical rows per strategy; streaming peak live stays \
     near the per-row fanout while eager max intermediate grows with the \
     relation.@."

(* ----------------------------------------------------------------- *)
(* E10 — §2.2 full indexing ablation                                  *)
(* ----------------------------------------------------------------- *)

let e10 () =
  section "E10" "§2.2 — repository indexes: indexed vs full-scan";
  let build indexed =
    let g = Graph.create ~indexed ~name:"d" () in
    ignore (Wrappers.Bibtex.load_into g (Wrappers.Synth.bibtex ~entries:400 ()));
    g
  in
  let query =
    {|WHERE Publications(x), x -> "year" -> 1997, x -> "category" -> c
      COLLECT Hits(x) OUTPUT o|}
  in
  Fmt.pr "%-12s %14s@." "mode" "time (ms)";
  List.iter
    (fun indexed ->
      let g = build indexed in
      let _, t =
        time_it (fun () ->
            for _ = 1 to 20 do
              ignore (Struql.Eval.run_string g query)
            done)
      in
      Fmt.pr "%-12s %14.2f@."
        (if indexed then "indexed" else "scan-only")
        (ms t /. 20.))
    [ true; false ]

(* ----------------------------------------------------------------- *)
(* E11 — materialization strategies                                   *)
(* ----------------------------------------------------------------- *)

let e11 () =
  section "E11" "§1/§6 — materialization: full vs click-time (vs cached)";
  let data = Sites.Homepage.data ~entries:150 () in
  let def = Sites.Homepage.definition in
  let full, t_full = time_it (fun () -> Strudel.Site.build ~data def) in
  let total_pages = Template.Generator.page_count full.Strudel.Site.site in
  Fmt.pr "full materialization: %.1f ms for %d pages (TTFP = %.1f ms)@."
    (ms t_full) total_pages (ms t_full);
  List.iter
    (fun cache ->
      let ct, t_start =
        time_it (fun () ->
            Strudel.Materialize.Click_time.start ~cache ~data def)
      in
      let root = List.hd (Strudel.Materialize.Click_time.roots ct) in
      let _, t_first =
        time_it (fun () ->
            ignore (Strudel.Materialize.Click_time.browse ct root))
      in
      let clicks = 30 in
      let _, t_walk =
        time_it (fun () ->
            ignore
              (Strudel.Materialize.Click_time.random_walk ct ~clicks ~seed:5))
      in
      let st = Strudel.Materialize.Click_time.stats ct in
      Fmt.pr
        "click-time%s: start %.1f ms, TTFP %.2f ms, %.2f ms/click over %d \
         clicks; materialized %d/%d nodes, %d queries, %d cache hits@."
        (if cache then " (cached)" else "")
        (ms t_start) (ms t_first)
        (ms t_walk /. float_of_int clicks)
        clicks st.Strudel.Materialize.Click_time.materialized_nodes
        (Graph.node_count full.Strudel.Site.site_graph)
        st.Strudel.Materialize.Click_time.queries
        st.Strudel.Materialize.Click_time.cache_hits)
    [ false; true ];
  (* the deep org hierarchy shows partial materialization: a short
     browsing session touches a fraction of 500+ pages *)
  let _, w = Sites.Org.data ~people:200 ~orgs:8 ~projects:15 ~pubs:40 () in
  let org_data = Mediator.Warehouse.graph w in
  let org_full, t_org_full =
    time_it (fun () -> Strudel.Site.build ~data:org_data Sites.Org.definition)
  in
  let ct =
    Strudel.Materialize.Click_time.start ~data:org_data Sites.Org.definition
  in
  let _, t_walk =
    time_it (fun () ->
        ignore (Strudel.Materialize.Click_time.random_walk ct ~clicks:10 ~seed:2))
  in
  let st = Strudel.Materialize.Click_time.stats ct in
  Fmt.pr
    "org site (200 people): full build %.1f ms for %d pages; 10 clicks \
     cost %.1f ms and materialized %d/%d nodes (%d/%d edges)@."
    (ms t_org_full)
    (Template.Generator.page_count org_full.Strudel.Site.site)
    (ms t_walk)
    st.Strudel.Materialize.Click_time.materialized_nodes
    (Graph.node_count org_full.Strudel.Site.site_graph)
    st.Strudel.Materialize.Click_time.materialized_edges
    (Graph.edge_count org_full.Strudel.Site.site_graph);
  Fmt.pr
    "shape check: click-time TTFP << full-build TTFP; full build wins \
     when the whole site is browsed.@."

(* ----------------------------------------------------------------- *)
(* E12 — regular path expressions / transitive closure                *)
(* ----------------------------------------------------------------- *)

let chain_graph n =
  let g = Graph.create ~name:"chain" () in
  let first = Graph.new_node g "c0" in
  let prev = ref first in
  for i = 1 to n - 1 do
    let o = Graph.new_node g (Printf.sprintf "c%d" i) in
    Graph.add_edge g !prev "next" (Graph.N o);
    prev := o
  done;
  (g, first)

let grid_graph n =
  (* n x n grid with right/down edges *)
  let g = Graph.create ~name:"grid" () in
  let nodes =
    Array.init n (fun i ->
        Array.init n (fun j -> Graph.new_node g (Printf.sprintf "g%d_%d" i j)))
  in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if j + 1 < n then
        Graph.add_edge g nodes.(i).(j) "right" (Graph.N nodes.(i).(j + 1));
      if i + 1 < n then
        Graph.add_edge g nodes.(i).(j) "down" (Graph.N nodes.(i + 1).(j))
    done
  done;
  (g, nodes.(0).(0))

let random_graph n seed =
  let g = Graph.create ~name:"rand" () in
  let r = Wrappers.Synth.rng ~seed () in
  let nodes =
    Array.init n (fun i -> Graph.new_node g (Printf.sprintf "r%d" i))
  in
  for _ = 1 to 3 * n do
    let a = Wrappers.Synth.int r n and b = Wrappers.Synth.int r n in
    let l = Wrappers.Synth.pick r [| "a"; "b"; "c" |] in
    Graph.add_edge g nodes.(a) l (Graph.N nodes.(b))
  done;
  (g, nodes.(0))

let e12 () =
  section "E12" "§3 — regular path expressions: closure scaling";
  Fmt.pr "%-10s %8s %12s %14s@." "graph" "nodes" "reached" "time (ms)";
  let star = Path.any_path in
  List.iter
    (fun (label, g, src) ->
      let reached, t =
        time_it (fun () -> List.length (Path.eval_from g star src))
      in
      Fmt.pr "%-10s %8d %12d %14.2f@." label (Graph.node_count g) reached
        (ms t))
    [
      (let g, s = chain_graph 1000 in
       ("chain-1k", g, s));
      (let g, s = chain_graph 10000 in
       ("chain-10k", g, s));
      (let g, s = grid_graph 30 in
       ("grid-30", g, s));
      (let g, s = grid_graph 60 in
       ("grid-60", g, s));
      (let g, s = random_graph 1000 7 in
       ("rand-1k", g, s));
      (let g, s = random_graph 5000 7 in
       ("rand-5k", g, s));
    ];
  (* a constrained path expression on the grid *)
  let g, s = grid_graph 40 in
  let r =
    Path.Seq
      ( Path.Star (Path.Edge (Path.Label "right")),
        Path.Star (Path.Edge (Path.Label "down")) )
  in
  let reached, t = time_it (fun () -> List.length (Path.eval_from g r s)) in
  Fmt.pr "%-10s %8d %12d %14.2f  (right*.down*)@." "grid-40"
    (Graph.node_count g) reached (ms t)

(* ----------------------------------------------------------------- *)
(* E13 — HTML generation throughput                                   *)
(* ----------------------------------------------------------------- *)

let e13 () =
  section "E13" "§2.5 — HTML generation throughput";
  Fmt.pr "%-10s %8s %12s %14s %14s@." "articles" "pages" "bytes" "time (ms)"
    "pages/s";
  List.iter
    (fun articles ->
      let data = Sites.Cnn.data ~articles () in
      let b = Strudel.Site.build ~data Sites.Cnn.definition in
      let roots =
        Schema.Verify.family_members b.Strudel.Site.site_graph "FrontPage"
      in
      let site, t =
        time_it (fun () ->
            Template.Generator.generate ~templates:Sites.Cnn.templates
              b.Strudel.Site.site_graph ~roots)
      in
      let pages = Template.Generator.page_count site in
      Fmt.pr "%-10d %8d %12d %14.1f %14.0f@." articles pages
        (Template.Generator.total_bytes site)
        (ms t)
        (float_of_int pages /. Float.max 1e-9 t))
    [ 50; 200; 800 ]

(* ----------------------------------------------------------------- *)
(* E14 — incremental re-evaluation                                    *)
(* ----------------------------------------------------------------- *)

let e14 () =
  section "E14" "§6 — incremental rebuild after data changes";
  let articles = 300 in
  let previous =
    Strudel.Site.build ~data:(Sites.Cnn.data ~articles ()) Sites.Cnn.definition
  in
  let _, t_full =
    time_it (fun () ->
        ignore
          (Strudel.Site.build
             ~data:(Sites.Cnn.data ~articles ())
             Sites.Cnn.definition))
  in
  Fmt.pr "full rebuild: %.1f ms (%d pages)@." (ms t_full)
    (Template.Generator.page_count previous.Strudel.Site.site);
  Fmt.pr "%-10s %12s %14s %12s %12s@." "changed" "rerendered" "reused"
    "time (ms)" "speedup";
  List.iter
    (fun k ->
      let data2 = Sites.Cnn.data ~articles () in
      for i = 0 to k - 1 do
        match Graph.find_node data2 (Printf.sprintf "art%d" (i * 7)) with
        | Some a ->
          Graph.add_edge data2 a "headline"
            (Graph.V (Value.String (Printf.sprintf "UPDATE %d" i)))
        | None -> ()
      done;
      let report, t =
        time_it (fun () ->
            Strudel.Incremental.rebuild ~previous ~data:data2 ())
      in
      Fmt.pr "%-10d %12d %14d %12.1f %11.1fx@." k
        report.Strudel.Incremental.pages_rerendered
        report.Strudel.Incremental.pages_reused (ms t)
        (t_full /. Float.max 1e-9 t))
    [ 0; 1; 5; 20 ]

(* ----------------------------------------------------------------- *)
(* E15 — extensions: aggregation, XML exchange, DataGuides, Rodin     *)
(* ----------------------------------------------------------------- *)

let e15 () =
  section "E15" "extensions named by the paper (§2.2, §5.1, §5.2, §6)";
  (* grouping/aggregation (§5.2) on the CNN site *)
  let data = Sites.Cnn.data ~articles:200 () in
  let b = Strudel.Site.build ~data Sites.Cnn.definition in
  let sg = b.Strudel.Site.site_graph in
  Fmt.pr "aggregation: per-section article counts on the CNN site:@.";
  List.iter
    (fun sp ->
      match
        ( Graph.attr_value sg sp "Name",
          Graph.attr_value sg sp "ArticleCount" )
      with
      | Some n, Some c ->
        Fmt.pr "  %-12s %s@." (Value.to_display_string n)
          (Value.to_display_string c)
      | _ -> ())
    (Schema.Verify.family_members sg "SectionPage");
  (* XML exchange (§2.2) *)
  let g = Sites.Paper_example.data () in
  let xml = Xml.export g in
  let g2 = Xml.import xml in
  Fmt.pr
    "@.XML exchange: fig2 exports to %d bytes of XML; reimport preserves \
     %d nodes / %d edges (round trip: %b)@."
    (String.length xml) (Graph.node_count g2) (Graph.edge_count g2)
    (Xml.export g2 = xml);
  (* DataGuide over the news data: the guide vs actual cardinalities *)
  let news = Sites.Cnn.data ~articles:300 () in
  let dg, t_dg =
    time_it (fun () ->
        Schema.Dataguide.of_graph ~roots:(Graph.collection news "Articles")
          news)
  in
  Fmt.pr
    "@.DataGuide (graph schema from data): %d states, %d transitions \
     over %d nodes, built in %.2f ms@."
    (Schema.Dataguide.state_count dg)
    (Schema.Dataguide.transition_count dg)
    (Graph.node_count news) (ms t_dg);
  List.iter
    (fun path ->
      Fmt.pr "  path %-22s extent=%d@."
        (String.concat "." path)
        (Schema.Dataguide.extent_size dg path))
    [ [ "related" ]; [ "related"; "related" ] ];
  Fmt.pr "  distinct label paths (depth 2): %d@."
    (List.length (Schema.Dataguide.paths_up_to dg 2));
  (* the bilingual Rodin site (§5.1) *)
  let rb = Sites.Rodin.build ~extra_projects:20 () in
  Fmt.pr
    "@.Rodin bilingual site: one query, %d pages (EN+FR pairs), \
     cross-linking constraints: %s@."
    (Template.Generator.page_count rb.Strudel.Site.site)
    (if Strudel.Site.violations rb = [] then "all hold" else "VIOLATED")

(* ----------------------------------------------------------------- *)
(* E16 — streaming vs eager evaluation memory                         *)
(* ----------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Evaluate each site's definition queries on both engines and compare
   the eager evaluator's largest materialized intermediate relation
   with the streaming pipeline's peak live-binding watermark.  The
   per-stage watermarks (max output batch per operator) land in
   BENCH_exec.json as the regression baseline. *)
let e16 () =
  section "E16" "streaming engine: peak live bindings vs eager intermediates";
  let sites =
    [
      ( "paper-example",
        Sites.Paper_example.definition,
        Sites.Paper_example.data () );
      ("homepage", Sites.Homepage.definition, Sites.Homepage.data ~entries:50 ());
      ("cnn-100", Sites.Cnn.definition, Sites.Cnn.data ~articles:100 ());
      ( "org-100",
        Sites.Org.definition,
        let _, w = Sites.Org.data ~people:100 ~orgs:6 () in
        Mediator.Warehouse.graph w );
    ]
  in
  Fmt.pr "%-14s %8s %18s %12s %8s %10s@." "site" "rows" "eager max-interm"
    "peak live" "ratio" "identical";
  let entries =
    List.map
      (fun (name, def, data) ->
        let queries = Strudel.Site.parse_queries def in
        let options =
          {
            Struql.Eval.default_options with
            strategy = def.Strudel.Site.strategy;
            registry = def.Strudel.Site.registry;
          }
        in
        let eager_out = Graph.create ~name () in
        let eager_scope = Skolem.create () in
        let eager_stats =
          List.map
            (fun (_, q) ->
              snd
                (Struql.Eval.run_with_stats ~options ~scope:eager_scope
                   ~into:eager_out data q))
            queries
        in
        let s_out = Graph.create ~name () in
        let s_scope = Skolem.create () in
        let profs =
          List.map
            (fun (_, q) ->
              snd
                (Struql.Exec.run_with_profile ~options ~scope:s_scope
                   ~into:s_out data q))
            queries
        in
        let eager_max =
          List.fold_left
            (fun m st -> max m st.Struql.Eval.max_intermediate)
            0 eager_stats
        in
        let peak =
          List.fold_left
            (fun m p -> max m p.Struql.Exec.prf_peak_live)
            0 profs
        in
        let rows =
          List.fold_left (fun n p -> n + p.Struql.Exec.prf_rows) 0 profs
        in
        let identical =
          Graph.node_count eager_out = Graph.node_count s_out
          && Graph.edge_count eager_out = Graph.edge_count s_out
        in
        Fmt.pr "%-14s %8d %18d %12d %7.1fx %10b@." name rows eager_max peak
          (float_of_int eager_max /. float_of_int (max 1 peak))
          identical;
        (name, rows, eager_max, peak, identical, profs))
      sites
  in
  Fmt.pr
    "shape check: identical output graphs; on sites without nested blocks \
     the streaming peak stays strictly below the eager evaluator's largest \
     materialized relation (nested blocks pin their parent relation, so \
     those sites stay comparable).@.";
  (* the JSON baseline: per-site totals plus per-stage watermarks *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n  \"experiment\": \"E16_streaming_vs_eager_memory\",\n  \"sites\": [\n";
  List.iteri
    (fun i (name, rows, eager_max, peak, identical, profs) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"site\": \"%s\", \"rows\": %d, \
            \"eager_max_intermediate\": %d, \"streaming_peak_live\": %d, \
            \"identical_output\": %b,\n     \"stages\": ["
           (json_escape name) rows eager_max peak identical);
      let first = ref true in
      List.iter
        (fun (p : Struql.Exec.profile) ->
          List.iter
            (fun (b : Struql.Exec.block_profile) ->
              List.iter
                (fun (op : Struql.Exec.op_stats) ->
                  if not !first then Buffer.add_string buf ", ";
                  first := false;
                  Buffer.add_string buf
                    (Printf.sprintf
                       "{\"block\": \"%s\", \"op\": \"%s\", \"access\": \
                        \"%s\", \"rows_out\": %d, \"max_batch\": %d}"
                       (json_escape b.Struql.Exec.bpr_path)
                       (json_escape
                          (Fmt.str "%a" Struql.Plan.pp_step
                             op.Struql.Exec.os_step))
                       (json_escape
                          (Fmt.str "%a" Struql.Exec.pp_access
                             op.Struql.Exec.os_access))
                       op.Struql.Exec.os_rows_out op.Struql.Exec.os_max_batch))
                b.Struql.Exec.bpr_ops)
            p.Struql.Exec.prf_blocks)
        profs;
      Buffer.add_string buf "]}")
    entries;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_exec.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "per-stage watermarks written to BENCH_exec.json@."

(* ----------------------------------------------------------------- *)
(* E17 — parallel materialization and the render cache                *)
(* ----------------------------------------------------------------- *)

(* Wall-clock, not [Sys.time]: CPU time sums over domains, which would
   make a perfect parallel speedup look like no speedup at all. *)
let wall_it f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let pages_identical (a : Template.Generator.site)
    (b : Template.Generator.site) =
  let key (p : Template.Generator.page) =
    (p.Template.Generator.url, p.Template.Generator.html)
  in
  List.map key a.Template.Generator.pages
  = List.map key b.Template.Generator.pages

let e17 () =
  section "E17"
    "parallel materialization on domains + dependency-tracked render cache";
  (* the same auto-detection [strudel build --jobs 0] uses *)
  let cores = Strudel.Render_pool.auto_jobs () in
  Fmt.pr "recommended domain count on this machine: %d@." cores;
  let sites =
    [
      ("cnn-100", Sites.Cnn.definition, Sites.Cnn.data ~articles:100 ());
      ( "org-100",
        Sites.Org.definition,
        let _, w = Sites.Org.data ~people:100 ~orgs:6 () in
        Mediator.Warehouse.graph w );
    ]
  in
  let job_levels = [ 1; 2; 4; 8 ] in
  (* Steady-state measurement discipline: the shared pool spawns its
     worker domains on first use and each site's first build pays
     one-time costs (graph freeze, template compile, allocator growth)
     that are not render cost.  One untimed warm-up build at the
     highest jobs level pays all of it up front, and a major GC before
     every timed leg keeps earlier legs' garbage from being collected
     inside a later one — the old org-100 jobs=1 reading (2.3x its
     sequential twin, which runs the very same code) was exactly that
     pollution. *)
  let max_jobs = List.fold_left max 1 job_levels in
  let measured f =
    Gc.full_major ();
    wall_it f
  in
  let entries =
    List.map
      (fun (name, def, data) ->
        ignore (Strudel.Site.build ~jobs:max_jobs ~data def);
        let reference, t_seq =
          measured (fun () -> Strudel.Site.build ~data def)
        in
        Fmt.pr "@.%-10s sequential reference: %d pages, %.1f ms@." name
          (Template.Generator.page_count reference.Strudel.Site.site)
          t_seq;
        Fmt.pr "  %-8s %10s %9s %6s %7s %10s@." "jobs" "wall ms" "speedup"
          "waves" "steals" "identical";
        let runs =
          List.map
            (fun jobs ->
              let b, t = measured (fun () -> Strudel.Site.build ~jobs ~data def) in
              let prof = b.Strudel.Site.render_profile in
              let identical =
                pages_identical reference.Strudel.Site.site b.Strudel.Site.site
              in
              Fmt.pr "  %-8d %10.1f %8.2fx %6d %7d %10b@." jobs t (t_seq /. t)
                prof.Strudel.Render_pool.rp_waves
                prof.Strudel.Render_pool.rp_steals identical;
              (jobs, t, prof, identical))
            job_levels
        in
        (* cache: cold build seeds the traces, an identical rebuild hits
           on every page, a one-object edit invalidates only the pages
           whose read set saw it *)
        let cache = Strudel.Render_cache.create () in
        let _, t_cold =
          measured (fun () -> Strudel.Site.build ~render_cache:cache ~data def)
        in
        Strudel.Render_cache.reset_stats cache;
        let warm, t_warm =
          measured (fun () -> Strudel.Site.build ~render_cache:cache ~data def)
        in
        let w_hits, w_misses, w_inval =
          Strudel.Render_cache.stats cache
        in
        let warm_pages =
          Template.Generator.page_count warm.Strudel.Site.site
        in
        let hit_rate =
          float_of_int w_hits /. float_of_int (max 1 (w_hits + w_misses))
        in
        Strudel.Render_cache.reset_stats cache;
        (* edit one observable attribute: the first titled object in any
           collection gets a new title, so exactly the pages whose read
           traces saw the old value must re-render *)
        let edited = Graph.copy data in
        (match
           List.find_map
             (fun o ->
               List.find_map
                 (fun a ->
                   match Graph.attr_value edited o a with
                   | Some v -> Some (o, a, v)
                   | None -> None)
                 [ "title"; "headline"; "name" ])
             (List.concat_map (Graph.collection edited)
                (Graph.collections edited))
         with
         | Some (o, a, old) ->
           Graph.remove_edge edited o a (Graph.V old);
           Graph.add_edge edited o a (Graph.V (Value.String "E17 edited"))
         | None -> ());
        let inc, t_inc =
          measured (fun () ->
              Strudel.Site.build ~render_cache:cache ~data:edited def)
        in
        let i_hits, i_misses, i_inval = Strudel.Render_cache.stats cache in
        let warm_identical =
          pages_identical reference.Strudel.Site.site warm.Strudel.Site.site
        in
        Fmt.pr
          "  cache: cold %.1f ms, warm %.1f ms (%d/%d hits, rate %.2f, \
           identical %b), 1-object edit %.1f ms (%d hits, %d invalidated)@."
          t_cold t_warm w_hits warm_pages hit_rate warm_identical t_inc i_hits
          i_inval;
        ignore inc;
        ( name,
          t_seq,
          runs,
          (t_cold, t_warm, w_hits, w_misses, w_inval, hit_rate, warm_identical),
          (t_inc, i_hits, i_misses, i_inval) ))
      sites
  in
  (* --- the synth scale leg: 100k+ pages, streamed (never held in
     memory), identity checked by a chain digest over the canonical
     emission order --- *)
  let synth_items =
    match Sys.getenv_opt "STRUDEL_SYNTH_PAGES" with
    | Some s -> ( try max 1_000 (int_of_string s) with _ -> 100_000)
    | None -> 100_000
  in
  let synth_data, t_data =
    wall_it (fun () -> Sites.Scale.data ~items:synth_items ())
  in
  let (synth_sg, _, _, _), t_sg =
    wall_it (fun () ->
        Strudel.Site.build_site_graph Sites.Scale.definition synth_data)
  in
  let synth_roots = Strudel.Site.roots_of synth_sg "Root" in
  let digest_sink () =
    let d = ref "" and pages = ref 0 and bytes = ref 0 in
    let sink =
      {
        Strudel.Render_pool.sk_emit =
          (fun (p : Template.Generator.page) ->
            d :=
              Digest.string
                (!d ^ p.Template.Generator.url ^ "\x00"
               ^ p.Template.Generator.html);
            incr pages;
            bytes := !bytes + String.length p.Template.Generator.html);
        sk_reset =
          (fun () ->
            d := "";
            pages := 0;
            bytes := 0);
      }
    in
    (sink, d, pages, bytes)
  in
  let synth_run jobs =
    let sink, d, pages, bytes = digest_sink () in
    let (_, prof), t =
      measured (fun () ->
          Strudel.Render_pool.materialize ~jobs ~sink
            ~templates:Sites.Scale.templates synth_sg ~roots:synth_roots)
    in
    (t, prof, !d, !pages, !bytes)
  in
  let t_ref, ref_prof, ref_digest, ref_pages, ref_bytes = synth_run 1 in
  Fmt.pr
    "@.synth-%dk   data %.0f ms, site graph %.0f ms; %d pages, %.1f MB, \
     sequential materialize %.1f ms (streamed)@."
    (synth_items / 1000) t_data t_sg ref_pages
    (float_of_int ref_bytes /. 1e6)
    t_ref;
  Fmt.pr "  %-8s %10s %9s %6s %7s %10s@." "jobs" "wall ms" "speedup" "waves"
    "steals" "identical";
  let synth_runs =
    List.map
      (fun jobs ->
        let t, prof, digest, pages, _ = synth_run jobs in
        let identical = digest = ref_digest && pages = ref_pages in
        Fmt.pr "  %-8d %10.1f %8.2fx %6d %7d %10b@." jobs t (t_ref /. t)
          prof.Strudel.Render_pool.rp_waves prof.Strudel.Render_pool.rp_steals
          identical;
        (jobs, t, prof, identical))
      job_levels
  in
  ignore ref_prof;
  Fmt.pr
    "@.note: speedup tracks the machine's core count (this container \
     reports %d); byte-identity holds at every jobs level by \
     construction and is what the differential suite enforces.@."
    cores;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "{\n  \"experiment\": \"E17_parallel_materialization\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"recommended_domain_count\": %d,\n  \"sites\": [\n"
       cores);
  List.iteri
    (fun i
         ( name,
           t_seq,
           runs,
           (t_cold, t_warm, w_hits, w_misses, w_inval, hit_rate, warm_id),
           (t_inc, i_hits, i_misses, i_inval) ) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"site\": \"%s\", \"sequential_ms\": %.3f,\n     \"jobs\": ["
           (json_escape name) t_seq);
      List.iteri
        (fun j (jobs, t, (prof : Strudel.Render_pool.profile), identical) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf
               "{\"jobs\": %d, \"wall_ms\": %.3f, \"speedup\": %.3f, \
                \"waves\": %d, \"steals\": %d, \"pages\": %d, \
                \"identical\": %b}"
               jobs t (t_seq /. t) prof.Strudel.Render_pool.rp_waves
               prof.Strudel.Render_pool.rp_steals
               prof.Strudel.Render_pool.rp_pages identical))
        runs;
      Buffer.add_string buf
        (Printf.sprintf
           "],\n     \"cache\": {\"cold_ms\": %.3f, \"warm_ms\": %.3f, \
            \"warm_hits\": %d, \"warm_misses\": %d, \"warm_invalidations\": \
            %d, \"hit_rate\": %.3f, \"warm_identical\": %b, \
            \"edit_ms\": %.3f, \"edit_hits\": %d, \"edit_misses\": %d, \
            \"edit_invalidations\": %d}}"
           t_cold t_warm w_hits w_misses w_inval hit_rate warm_id t_inc i_hits
           i_misses i_inval))
    entries;
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"synth\": {\"items\": %d, \"pages\": %d, \"bytes\": %d,\n   \
        \"data_ms\": %.3f, \"site_graph_ms\": %.3f, \"sequential_ms\": \
        %.3f,\n   \"jobs\": ["
       synth_items ref_pages ref_bytes t_data t_sg t_ref);
  List.iteri
    (fun j (jobs, t, (prof : Strudel.Render_pool.profile), identical) ->
      if j > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"jobs\": %d, \"wall_ms\": %.3f, \"speedup\": %.3f, \"waves\": \
            %d, \"steals\": %d, \"identical\": %b}"
           jobs t (t_ref /. t) prof.Strudel.Render_pool.rp_waves
           prof.Strudel.Render_pool.rp_steals identical))
    synth_runs;
  Buffer.add_string buf "]}\n}\n";
  let oc = open_out "BENCH_parallel.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "parallel/cache profile written to BENCH_parallel.json@."

(* ----------------------------------------------------------------- *)
(* E18 — fault tolerance: degraded-build overhead, retry latency      *)
(* ----------------------------------------------------------------- *)

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let e18 () =
  section "E18"
    "fault tolerance: degraded-build overhead and retry-latency \
     distribution";
  (* -- degraded builds: what does surviving a faulty render cost? --
     The injector fires on a fixed share of pages (decisions are a pure
     hash of (seed, page), so every jobs level degrades identically);
     overhead is measured against the same build with the injector
     present but disarmed, isolating the cost of quarantine +
     placeholder emission from the cost of carrying the fault ctx. *)
  let sites =
    [
      ("cnn-100", Sites.Cnn.definition, Sites.Cnn.data ~articles:100 ());
      ( "org-100",
        Sites.Org.definition,
        let _, w = Sites.Org.data ~people:100 ~orgs:6 () in
        Mediator.Warehouse.graph w );
    ]
  in
  let job_levels = [ 1; 4 ] in
  let p_render = 0.3 in
  let site_entries =
    List.map
      (fun (name, def, data) ->
        let clean, t_clean = wall_it (fun () -> Strudel.Site.build ~data def) in
        let pages =
          Template.Generator.page_count clean.Strudel.Site.site
        in
        Fmt.pr "@.%-10s clean reference: %d pages, %.1f ms@." name pages
          t_clean;
        Fmt.pr "  %-8s %12s %12s %10s %9s %10s@." "jobs" "degraded ms"
          "recovery ms" "broken" "overhead" "identical";
        let runs =
          List.map
            (fun jobs ->
              let inject =
                Fault.Inject.create ~seed:42 ~p_render ()
              in
              let b, t_degraded =
                wall_it (fun () ->
                    Strudel.Site.build ~jobs ~on_error:Fault.Degrade
                      ~fault:(Fault.ctx ~inject ()) ~data def)
              in
              let broken =
                List.length
                  (List.filter Template.Generator.is_placeholder
                     b.Strudel.Site.site.Template.Generator.pages)
              in
              (* the faults clear: same pipeline, injector disarmed *)
              Fault.Inject.disarm inject;
              let r, t_recovery =
                wall_it (fun () ->
                    Strudel.Site.build ~jobs ~on_error:Fault.Degrade
                      ~fault:(Fault.ctx ~inject ()) ~data def)
              in
              let identical =
                pages_identical clean.Strudel.Site.site r.Strudel.Site.site
              in
              let overhead = t_degraded /. t_recovery in
              Fmt.pr "  %-8d %12.1f %12.1f %10d %8.2fx %10b@." jobs
                t_degraded t_recovery broken overhead identical;
              (jobs, t_degraded, t_recovery, broken, overhead, identical))
            job_levels
        in
        (name, t_clean, pages, runs))
      sites
  in
  (* -- retry latency on virtual time: the backoff schedule is policy,
     not luck, so the distribution is computed exactly — each trial
     draws per-attempt failures from a seeded PRNG, runs the real
     Retry.run loop on a virtual clock, and records the total time the
     loop would have slept. -- *)
  Fmt.pr "@.retry latency (virtual time, %d trials per point):@." 1000;
  Fmt.pr "  %-12s %8s %12s %10s %10s %10s@." "p(fail)" "success"
    "mean ms" "p50 ms" "p95 ms" "max ms";
  let trials = 1000 in
  let retry_entries =
    List.map
      (fun p_fail ->
        let rng = Random.State.make [| 0xE18; int_of_float (p_fail *. 100.) |] in
        let latencies = Array.make trials 0. in
        let successes = ref 0 in
        for i = 0 to trials - 1 do
          let clock, sleeps = Fault.Clock.virtual_ () in
          let r =
            Fault.Retry.run ~clock ~retry:Fault.Policy.default_retry
              (fun ~attempt:_ ->
                if Random.State.float rng 1.0 < p_fail then
                  failwith "transient"
                else ())
          in
          if r = Ok () then incr successes;
          latencies.(i) <- List.fold_left ( +. ) 0. (sleeps ())
        done;
        Array.sort compare latencies;
        let mean =
          Array.fold_left ( +. ) 0. latencies /. float_of_int trials
        in
        let p50 = percentile latencies 0.50 in
        let p95 = percentile latencies 0.95 in
        let p_max = latencies.(trials - 1) in
        let success_rate = float_of_int !successes /. float_of_int trials in
        Fmt.pr "  %-12.1f %7.1f%% %12.2f %10.1f %10.1f %10.1f@." p_fail
          (100. *. success_rate) mean p50 p95 p_max;
        (p_fail, success_rate, mean, p50, p95, p_max))
      [ 0.1; 0.3; 0.5; 0.8 ]
  in
  Fmt.pr
    "@.note: degraded output costs about what the equivalent clean \
     build does — the placeholder path renders less, not more; \
     recovery byte-identity is the property the fault suite \
     enforces.@.";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"experiment\": \"E18_fault_tolerance\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"p_render\": %.2f,\n  \"sites\": [\n" p_render);
  List.iteri
    (fun i (name, t_clean, pages, runs) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"site\": \"%s\", \"pages\": %d, \"clean_ms\": %.3f, \
            \"jobs\": ["
           (json_escape name) pages t_clean);
      List.iteri
        (fun j (jobs, t_degraded, t_recovery, broken, overhead, identical) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf
               "{\"jobs\": %d, \"degraded_ms\": %.3f, \"recovery_ms\": \
                %.3f, \"broken_pages\": %d, \"overhead\": %.3f, \
                \"recovery_identical\": %b}"
               jobs t_degraded t_recovery broken overhead identical))
        runs;
      Buffer.add_string buf "]}")
    site_entries;
  Buffer.add_string buf "\n  ],\n  \"retry_latency\": [\n";
  List.iteri
    (fun i (p_fail, success_rate, mean, p50, p95, p_max) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"p_fail\": %.2f, \"trials\": %d, \"success_rate\": %.3f, \
            \"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
            \"max_ms\": %.3f}"
           p_fail trials success_rate mean p50 p95 p_max))
    retry_entries;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_fault.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "fault-tolerance profile written to BENCH_fault.json@."

(* ----------------------------------------------------------------- *)
(* E19 — static analysis cost: lint vs a full build                   *)
(* ----------------------------------------------------------------- *)

(* The whole point of linting is a verdict without the build; the
   budget for the four analysis families is a small fraction of the
   build they replace.  Lint runs several times (it is fast and
   jittery), the build once. *)
let e19 () =
  section "E19" "static analysis: lint wall time vs full build";
  let sites =
    [
      ( "cnn-100",
        Sites.Lint_specs.cnn ~articles:100 (),
        fun () ->
          Strudel.Site.build
            ~data:(Sites.Cnn.data ~articles:100 ())
            Sites.Cnn.definition );
      ( "org-100",
        Sites.Lint_specs.org ~people:100 ~orgs:6 ~projects:30 ~pubs:80 (),
        fun () ->
          let _, w = Sites.Org.data ~people:100 ~orgs:6 () in
          Strudel.Site.build ~data:(Mediator.Warehouse.graph w)
            Sites.Org.definition );
    ]
  in
  Fmt.pr "  %-10s %10s %10s %8s %6s@." "site" "lint ms" "build ms" "ratio"
    "diags";
  let entries =
    List.map
      (fun (name, spec, build) ->
        let runs = 5 in
        let lint_ms = ref infinity in
        let diags = ref [] in
        for _ = 1 to runs do
          let ds, t = wall_it (fun () -> Analysis.Lint.run spec) in
          diags := ds;
          if t < !lint_ms then lint_ms := t
        done;
        let _, build_ms = wall_it build in
        let ratio = !lint_ms /. build_ms in
        Fmt.pr "  %-10s %10.2f %10.1f %7.1f%% %6d@." name !lint_ms build_ms
          (100. *. ratio)
          (List.length !diags);
        (name, !lint_ms, build_ms, ratio, List.length !diags))
      sites
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"experiment\": \"E19_lint\",\n  \"sites\": [";
  List.iteri
    (fun i (name, lint_ms, build_ms, ratio, diags) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"site\": \"%s\", \"lint_ms\": %.3f, \"build_ms\": %.3f, \
            \"ratio\": %.4f, \"diagnostics\": %d}"
           name lint_ms build_ms ratio diags))
    entries;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_lint.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "lint cost profile written to BENCH_lint.json@."

(* ----------------------------------------------------------------- *)
(* E20 — compiled graph kernel: frozen CSR + memoized path engine     *)
(* ----------------------------------------------------------------- *)

let e20 () =
  section "E20" "graph kernel: interned CSR + memoized regular-path engine";
  let with_kernel flag f =
    let saved = !Path.kernel_enabled in
    Path.kernel_enabled := flag;
    Fun.protect ~finally:(fun () -> Path.kernel_enabled := saved) f
  in
  (* Closure-heavy workload shaped like eval_pairs: the same source set
     probed repeatedly (once per conjunct / per round).  The legacy
     engine re-runs the interpretive BFS every time; the kernel pays
     one freeze plus one compiled BFS per distinct source, then serves
     memo hits. *)
  let rounds = 5 in
  (* one compiled automaton per workload, as query plans hold one nfa
     per conjunct — this is what makes the per-source memo effective *)
  let run_closure g ~nfa r nsources =
    let sources =
      List.filteri (fun i _ -> i < nsources) (Graph.nodes g)
    in
    let n = ref 0 in
    for _ = 1 to rounds do
      List.iter
        (fun s -> n := !n + List.length (Path.eval_from ~nfa g r s))
        sources
    done;
    !n
  in
  let closure_workloads =
    [
      ( "chain-2k",
        (fun () -> fst (chain_graph 2000)),
        Path.any_path,
        200 );
      ( "grid-40",
        (fun () -> fst (grid_graph 40)),
        Path.Seq
          ( Path.Star (Path.Edge (Path.Label "right")),
            Path.Star (Path.Edge (Path.Label "down")) ),
        400 );
      ( "rand-2k",
        (fun () -> fst (random_graph 2000 7)),
        Path.any_path,
        200 );
    ]
  in
  Fmt.pr "  closure workload: %d rounds over the source set@." rounds;
  Fmt.pr "  %-10s %8s %12s %12s %12s %8s@." "graph" "srcs" "legacy ms"
    "kernel ms" "warm ms" "speedup";
  let closure_rows =
    List.map
      (fun (name, build, r, nsources) ->
        let nfa = Path.compile r in
        let g_legacy = build () in
        let legacy, legacy_ms =
          with_kernel false (fun () ->
              wall_it (fun () -> run_closure g_legacy ~nfa r nsources))
        in
        let g_kernel = build () in
        (* cold leg pays the freeze and every memo miss *)
        let kernel, kernel_ms =
          with_kernel true (fun () ->
              wall_it (fun () ->
                  ignore (Graph.freeze g_kernel);
                  run_closure g_kernel ~nfa r nsources))
        in
        (* warm leg: snapshot and memo already populated *)
        let _, warm_ms =
          with_kernel true (fun () ->
              wall_it (fun () -> run_closure g_kernel ~nfa r nsources))
        in
        if legacy <> kernel then
          failwith (Printf.sprintf "E20 %s: result mismatch" name);
        let k = Graph.kernel_counters g_kernel in
        let speedup = legacy_ms /. kernel_ms in
        Fmt.pr "  %-10s %8d %12.1f %12.1f %12.1f %7.1fx@." name nsources
          legacy_ms kernel_ms warm_ms speedup;
        Fmt.pr "             kernel counters: freezes=%d hits=%d misses=%d@."
          k.Graph.freezes k.Graph.hits k.Graph.misses;
        (name, nsources, legacy_ms, kernel_ms, warm_ms, speedup))
      closure_workloads
  in
  (* full site builds, kernel off vs on (builds freeze the data graph
     once and every page query shares the snapshot + memo) *)
  let builds =
    [
      ( "cnn-100",
        fun () ->
          (Sites.Cnn.data ~articles:100 (), Sites.Cnn.definition) );
      ( "org-100",
        fun () ->
          let _, w = Sites.Org.data ~people:100 ~orgs:6 () in
          (Mediator.Warehouse.graph w, Sites.Org.definition) );
    ]
  in
  Fmt.pr "  %-10s %12s %12s %8s@." "site" "off ms" "on ms" "speedup";
  let build_rows =
    List.map
      (fun (name, mk) ->
        let best flag =
          let t = ref infinity in
          let site = ref None in
          for _ = 1 to 3 do
            let data, def = mk () in
            let b, bt =
              with_kernel flag (fun () ->
                  wall_it (fun () -> Strudel.Site.build ~data def))
            in
            site := Some b.Strudel.Site.site;
            if bt < !t then t := bt
          done;
          (Option.get !site, !t)
        in
        let off_site, off_ms = best false in
        let on_site, on_ms = best true in
        if not (pages_identical off_site on_site) then
          failwith (Printf.sprintf "E20 %s: build mismatch" name);
        let speedup = off_ms /. on_ms in
        Fmt.pr "  %-10s %12.1f %12.1f %7.2fx@." name off_ms on_ms speedup;
        (name, off_ms, on_ms, speedup))
      builds
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"E20_path_kernel\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"rounds\": %d,\n  \"closure\": [" rounds);
  List.iteri
    (fun i (name, srcs, legacy_ms, kernel_ms, warm_ms, speedup) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"graph\": \"%s\", \"sources\": %d, \"legacy_ms\": %.3f, \
            \"kernel_ms\": %.3f, \"warm_ms\": %.3f, \"speedup\": %.2f}"
           name srcs legacy_ms kernel_ms warm_ms speedup))
    closure_rows;
  Buffer.add_string buf "\n  ],\n  \"builds\": [";
  List.iteri
    (fun i (name, off_ms, on_ms, speedup) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"site\": \"%s\", \"kernel_off_ms\": %.3f, \
            \"kernel_on_ms\": %.3f, \"speedup\": %.2f}"
           name off_ms on_ms speedup))
    build_rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_path.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "path-kernel profile written to BENCH_path.json@."

(* ----------------------------------------------------------------- *)
(* E21 — sharded repository: parallel refresh, mmap segments, pruning *)
(* ----------------------------------------------------------------- *)

let e21 () =
  section "E21"
    "sharded repository: parallel refresh, mmap segments, shard pruning";
  (* --- A: parallel refresh across domains ---
     A synthetic federation of independent sources whose loaders are
     CPU-bound (the busy loop stands in for wrapper parsing cost; pure
     integer ops, domain-safe).  Every round bumps every source so a
     refresh must re-load all of them. *)
  let n_sources = 8 in
  let items = 1500 in
  let spin = 20_000_000 in
  let synth name round () =
    let h = ref (Hashtbl.hash name + round) in
    for _ = 1 to spin do
      h := ((!h * 1103515245) + 12345) land 0x3FFFFFFF
    done;
    let g = Graph.create ~name () in
    for i = 1 to items do
      let o = Graph.new_node g (Printf.sprintf "%s-%d" name i) in
      Graph.add_to_collection g name o;
      Graph.add_edge g o "v"
        (Graph.V (Value.Int ((i + round + (!h land 7)) mod 97)))
    done;
    g
  in
  let names = List.init n_sources (fun i -> Printf.sprintf "Src%d" i) in
  let sources =
    List.map (fun n -> Mediator.Source.make ~name:n (synth n 0)) names
  in
  let mappings =
    List.map
      (fun n -> Mediator.Gav.copy_collection ~source:n ~collection:n ())
      names
  in
  let w = Mediator.Warehouse.create ~sources ~mappings () in
  let round = ref 0 in
  let refresh_ms jobs =
    incr round;
    let r = !round in
    List.iter
      (fun n ->
        match Mediator.Warehouse.find_source w n with
        | Some s -> Mediator.Source.update s (synth n r)
        | None -> assert false)
      names;
    let changed, t = wall_it (fun () -> Mediator.Warehouse.refresh ~jobs w) in
    if not changed then failwith "E21: refresh did not rebuild";
    t
  in
  ignore (refresh_ms 1) (* warm-up: fault-free steady state *);
  let base = ref nan in
  Fmt.pr "  parallel refresh: %d sources, %d items each (cores: %d)@."
    n_sources items
    (Domain.recommended_domain_count ());
  Fmt.pr "  %-6s %12s %8s@." "jobs" "ms" "speedup";
  let refresh_rows =
    List.map
      (fun jobs ->
        let t = refresh_ms jobs in
        if jobs = 1 then base := t;
        let sp = !base /. t in
        Fmt.pr "  %-6d %12.1f %7.2fx@." jobs t sp;
        (jobs, t, sp))
      [ 1; 2; 4; 8 ]
  in
  let speedup4 =
    match List.find_opt (fun (j, _, _) -> j = 4) refresh_rows with
    | Some (_, _, sp) -> sp
    | None -> nan
  in
  if speedup4 >= 2.0 then
    Fmt.pr "  refresh at 4 domains: %.2fx >= 2x target@." speedup4
  else
    Fmt.pr "  WARNING: refresh at 4 domains only %.2fx (< 2x target)@."
      speedup4;
  (* --- B: cold segment open — full read+verify vs mmap --- *)
  let g = Mediator.Warehouse.graph w in
  let dir =
    let f = Filename.temp_file "e21shard" "" in
    Sys.remove f;
    Unix.mkdir f 0o755;
    f
  in
  let cfg = { Repository.Shard.dir; cfg_spec = Repository.Shard.By_collection } in
  let snap = Repository.Shard.publish cfg ~epoch:1 g in
  let seg_files =
    List.filter (fun f -> Filename.check_suffix f ".seg") (Array.to_list (Sys.readdir dir))
  in
  let seg_path =
    (* largest segment: the most interesting open cost *)
    List.fold_left
      (fun best f ->
        let p = Filename.concat dir f in
        match best with
        | Some (_, sz) when (Unix.stat p).Unix.st_size <= sz -> best
        | _ -> Some (p, (Unix.stat p).Unix.st_size))
      None seg_files
    |> Option.get |> fst
  in
  let seg_bytes = (Unix.stat seg_path).Unix.st_size in
  let best_of f =
    let t = ref infinity in
    for _ = 1 to 5 do
      let _, ms = wall_it f in
      if ms < !t then t := ms
    done;
    !t
  in
  let read_ms =
    best_of (fun () ->
        ignore (Repository.Segment.read ~verify:true ~path:seg_path ()))
  in
  let mmap_ms =
    best_of (fun () ->
        ignore (Repository.Segment.map ~verify:false ~path:seg_path ()))
  in
  let decode_ms =
    let seg = Repository.Segment.read ~verify:true ~path:seg_path () in
    best_of (fun () -> ignore (Repository.Segment.to_graph seg))
  in
  Fmt.pr "  segment %s: %d bytes@." (Filename.basename seg_path) seg_bytes;
  Fmt.pr "  open read+verify %.3f ms | mmap %.3f ms | decode to graph %.3f ms@."
    read_ms mmap_ms decode_ms;
  (* --- C: shard-pruned vs full-scan query --- *)
  let q =
    Struql.Parser.parse
      {|INPUT D { WHERE Src0(x), x -> "v" -> y
                  CREATE P(x) LINK P(x) -> "val" -> y
                  COLLECT Ps(P(x)) } OUTPUT S|}
  in
  let ctx = Mediator.Warehouse.shard_ctx_of_snapshot snap in
  let full_ms = best_of (fun () -> ignore (Struql.Exec.run g q)) in
  let sharded_ms =
    best_of (fun () -> ignore (Struql.Exec.run ~shards:ctx g q))
  in
  let out_full = Struql.Exec.run g q in
  let out_sharded, prof = Struql.Exec.run_with_profile ~shards:ctx g q in
  if Repository.Binary.encode out_full <> Repository.Binary.encode out_sharded
  then failwith "E21: sharded evaluation diverged from full scan";
  Fmt.pr
    "  single-collection query: full scan %.3f ms | sharded %.3f ms \
     (scanned %d, pruned %d)@."
    full_ms sharded_ms prof.Struql.Exec.prf_shards_scanned
    prof.Struql.Exec.prf_shards_pruned;
  (* best-effort cleanup of the temp repository *)
  Array.iter (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
    (Sys.readdir dir);
  (try Unix.rmdir dir with _ -> ());
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"E21_sharded_repository\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"sources\": %d,\n  \"items_per_source\": %d,\n  \"cores\": %d,\n"
       n_sources items
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf "  \"refresh\": [";
  List.iteri
    (fun i (jobs, t, sp) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"jobs\": %d, \"ms\": %.3f, \"speedup\": %.2f}" jobs t sp))
    refresh_rows;
  Buffer.add_string buf
    (Printf.sprintf
       "\n  ],\n  \"segment\": {\"bytes\": %d, \"read_verify_ms\": %.3f, \
        \"mmap_ms\": %.3f, \"decode_ms\": %.3f},\n"
       seg_bytes read_ms mmap_ms decode_ms);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"pruned_query\": {\"full_ms\": %.3f, \"sharded_ms\": %.3f, \
        \"shards_scanned\": %d, \"shards_pruned\": %d}\n}\n"
       full_ms sharded_ms prof.Struql.Exec.prf_shards_scanned
       prof.Struql.Exec.prf_shards_pruned);
  let oc = open_out "BENCH_shard.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "shard profile written to BENCH_shard.json@."

(* ----------------------------------------------------------------- *)
(* E22 — strudeld: click-time serving throughput and overload shed    *)
(* ----------------------------------------------------------------- *)

(* Two legs.  Leg A drives Engine.handle in-process over every page of
   the cnn site, cold (each page materialized on first touch) then
   cached (the verifying-trace render cache answers) then revalidated
   (If-None-Match → 304): the cost of click-time materialization
   itself, no socket noise.  Leg B is the honest load test: a real TCP
   daemon with a small admission bound, hammered by 2× max_inflight
   concurrent closed-loop clients — the interesting numbers are the
   shed rate and the p99 of the *admitted* requests, which the bounded
   gate is supposed to keep flat. *)

let e22 () =
  section "E22" "strudeld: serve throughput (cold/cached/304) and overload";
  let articles = 200 in
  let built = Sites.Cnn.build ~articles () in
  let engine =
    Serve.Engine.create ~workers:4
      ~source:(Serve.Engine.Static (Sites.Cnn.data ~articles ()))
      Sites.Cnn.definition
  in
  let urls =
    List.map
      (fun (p : Template.Generator.page) -> "/" ^ p.Template.Generator.url)
      built.Strudel.Site.site.Template.Generator.pages
  in
  let n_pages = List.length urls in
  let req path headers =
    {
      Serve.Http.meth = Serve.Http.GET;
      target = path;
      path;
      version = "HTTP/1.1";
      headers;
      body = "";
    }
  in
  let sweep name headers_of =
    let lat = Array.make n_pages 0. in
    let t0 = Unix.gettimeofday () in
    List.iteri
      (fun i url ->
        let r0 = Unix.gettimeofday () in
        let resp = Serve.Engine.handle engine (req url (headers_of url)) in
        lat.(i) <- ms (Unix.gettimeofday () -. r0);
        ignore resp.Serve.Http.status)
      urls;
    let wall = Unix.gettimeofday () -. t0 in
    Array.sort compare lat;
    let rps = float_of_int n_pages /. wall in
    let p50 = percentile lat 0.50 and p99 = percentile lat 0.99 in
    Fmt.pr "  %-12s %6d req %10.0f req/s %10.3f ms p50 %10.3f ms p99@."
      name n_pages rps p50 p99;
    (name, n_pages, rps, p50, p99)
  in
  Fmt.pr "leg A: in-process Engine.handle over %d cnn pages@." n_pages;
  let cold = sweep "cold" (fun _ -> []) in
  let cached = sweep "cached" (fun _ -> []) in
  (* collect the etags, then revalidate *)
  let etags =
    List.map
      (fun url ->
        let resp = Serve.Engine.handle engine (req url []) in
        let tag =
          List.assoc_opt "ETag" resp.Serve.Http.resp_headers
          |> Option.value ~default:"\"\""
        in
        (url, tag))
      urls
  in
  let tag_of = fun url -> [ ("if-none-match", List.assoc url etags) ] in
  let reval = sweep "revalidated" tag_of in
  (match Serve.Engine.cache_stats engine with
  | Some (hits, misses, inv) ->
    Fmt.pr "  render cache: %d hits, %d misses, %d invalidations@." hits
      misses inv
  | None -> ());
  (* --- leg B: overload through the real daemon --- *)
  let workers = 4 and max_inflight = 8 in
  let clients = 2 * max_inflight in
  let per_client = 150 in
  Fmt.pr
    "@.leg B: TCP daemon, %d workers, max-inflight %d, %d closed-loop \
     clients (2x overload), %d requests each@."
    workers max_inflight clients per_client;
  let config =
    { Serve.Daemon.default_config with workers; max_inflight }
  in
  let daemon =
    Serve.Daemon.create ~config
      ~handler:(fun ~worker r -> Serve.Engine.handle ~worker engine r)
      ()
  in
  let listener, port =
    Serve.Daemon.tcp_listener ~tick_ms:20. ~host:"127.0.0.1" ~port:0 ()
  in
  let srv = Domain.spawn (fun () -> Serve.Daemon.serve daemon listener) in
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port) in
  let url_arr = Array.of_list urls in
  let one_request i =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd addr;
        let url = url_arr.(i mod n_pages) in
        let wire =
          Printf.sprintf
            "GET %s HTTP/1.1\r\nhost: bench\r\nConnection: close\r\n\r\n" url
        in
        ignore (Unix.write_substring fd wire 0 (String.length wire));
        let b = Bytes.create 8192 in
        let first = ref "" in
        let rec slurp () =
          match Unix.read fd b 0 8192 with
          | 0 -> ()
          | n ->
            if !first = "" then first := Bytes.sub_string b 0 (min n 16);
            slurp ()
          | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
            ->
            ()
        in
        slurp ();
        if String.length !first >= 12 then
          Some (String.sub !first 9 3)
        else None)
  in
  let t0 = Unix.gettimeofday () in
  let worker_results =
    List.init clients (fun c ->
        Domain.spawn (fun () ->
            let ok_lat = ref [] in
            let shed = ref 0 and other = ref 0 in
            for i = 0 to per_client - 1 do
              let r0 = Unix.gettimeofday () in
              match one_request ((c * per_client) + i) with
              | Some "200" ->
                ok_lat := ms (Unix.gettimeofday () -. r0) :: !ok_lat
              | Some "503" -> incr shed
              | Some _ | None -> incr other
              | exception Unix.Unix_error (_, _, _) -> incr other
            done;
            (!ok_lat, !shed, !other)))
    |> List.map Domain.join
  in
  let wall = Unix.gettimeofday () -. t0 in
  Serve.Daemon.stop daemon;
  Domain.join srv;
  let ok_lat =
    List.concat_map (fun (l, _, _) -> l) worker_results |> Array.of_list
  in
  Array.sort compare ok_lat;
  let served = Array.length ok_lat in
  let shed = List.fold_left (fun n (_, s, _) -> n + s) 0 worker_results in
  let other = List.fold_left (fun n (_, _, o) -> n + o) 0 worker_results in
  let total = clients * per_client in
  let shed_rate = float_of_int shed /. float_of_int total in
  let rps = float_of_int total /. wall in
  let p50 = percentile ok_lat 0.50 and p99 = percentile ok_lat 0.99 in
  Fmt.pr
    "  %d requests in %.2f s (%.0f req/s): %d served, %d shed (%.1f%%), \
     %d errors@."
    total wall rps served shed (100. *. shed_rate) other;
  Fmt.pr "  admitted latency: %.3f ms p50, %.3f ms p99@." p50 p99;
  let ds = Serve.Daemon.stats daemon in
  Fmt.pr "  daemon: served %d, shed %d, aborts %d, exit %d@."
    ds.Serve.Daemon.d_served ds.Serve.Daemon.d_shed
    ds.Serve.Daemon.d_client_aborts
    (Serve.Daemon.exit_code daemon);
  let buf = Buffer.create 1024 in
  let leg (name, n, rps, p50, p99) =
    Printf.sprintf
      "  \"%s\": {\"requests\": %d, \"rps\": %.1f, \"p50_ms\": %.4f, \
       \"p99_ms\": %.4f}"
      name n rps p50 p99
  in
  Buffer.add_string buf "{\n  \"experiment\": \"E22_serve\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"site\": \"cnn\",\n  \"pages\": %d,\n" n_pages);
  Buffer.add_string buf (leg cold ^ ",\n");
  Buffer.add_string buf (leg cached ^ ",\n");
  Buffer.add_string buf (leg reval ^ ",\n");
  Buffer.add_string buf
    (Printf.sprintf
       "  \"overload\": {\"clients\": %d, \"workers\": %d, \
        \"max_inflight\": %d, \"requests\": %d, \"wall_s\": %.3f, \
        \"rps\": %.1f, \"served\": %d, \"shed\": %d, \"errors\": %d, \
        \"shed_rate\": %.4f, \"admitted_p50_ms\": %.4f, \
        \"admitted_p99_ms\": %.4f}\n}\n"
       clients workers max_inflight total wall rps served shed other
       shed_rate p50 p99);
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "serve profile written to BENCH_serve.json@."

(* ----------------------------------------------------------------- *)
(* Bechamel microbenchmarks — one Test.make per measured experiment   *)
(* ----------------------------------------------------------------- *)

let bechamel_suite () =
  section "MICRO" "Bechamel microbenchmarks";
  let open Bechamel in
  let open Toolkit in
  (* prebuilt inputs so the staged closures measure only the operation *)
  let paper_data = Sites.Paper_example.data () in
  let paper_query = Struql.Parser.parse Sites.Paper_example.site_query in
  let opt_g, opt_conds = optimizer_workload ~pubs:60 () in
  let idx_g =
    fst (Wrappers.Bibtex.load (Wrappers.Synth.bibtex ~entries:200 ()))
  in
  let noidx_g =
    let g = Graph.create ~indexed:false ~name:"n" () in
    ignore (Wrappers.Bibtex.load_into g (Wrappers.Synth.bibtex ~entries:200 ()));
    g
  in
  let year_query =
    Struql.Parser.parse
      {|WHERE Publications(x), x -> "year" -> 1997 COLLECT Hits(x) OUTPUT o|}
  in
  let chain_g, chain_src = chain_graph 2000 in
  let star_nfa = Path.compile Path.any_path in
  let built = Sites.Paper_example.build () in
  let homepage_data = Sites.Homepage.data ~entries:50 () in
  let cnn_small = Sites.Cnn.data ~articles:60 () in
  let cnn_built = Strudel.Site.build ~data:cnn_small Sites.Cnn.definition in
  let tests =
    [
      Test.make ~name:"E2_parse_fig3_query"
        (Staged.stage (fun () ->
             ignore (Struql.Parser.parse Sites.Paper_example.site_query)));
      Test.make ~name:"E3_eval_fig3_query"
        (Staged.stage (fun () ->
             ignore (Struql.Eval.run paper_data paper_query)));
      Test.make ~name:"E16_streaming_eval_fig3"
        (Staged.stage (fun () ->
             ignore (Struql.Exec.run paper_data paper_query)));
      Test.make ~name:"E4_derive_site_schema"
        (Staged.stage (fun () ->
             ignore (Schema.Site_schema.of_query paper_query)));
      Test.make ~name:"E5_render_site_pages"
        (Staged.stage (fun () ->
             let roots =
               Schema.Verify.family_members built.Strudel.Site.site_graph
                 "RootPage"
             in
             ignore
               (Template.Generator.generate
                  ~templates:Sites.Paper_example.templates
                  built.Strudel.Site.site_graph ~roots)));
      Test.make ~name:"E6_full_build_small_site"
        (Staged.stage (fun () ->
             ignore
               (Strudel.Site.build ~data:paper_data
                  Sites.Paper_example.definition)));
      Test.make ~name:"E9_naive_plan_eval"
        (Staged.stage (fun () ->
             ignore (run_strategy opt_g opt_conds Struql.Plan.Naive)));
      Test.make ~name:"E9_heuristic_plan_eval"
        (Staged.stage (fun () ->
             ignore (run_strategy opt_g opt_conds Struql.Plan.Heuristic)));
      Test.make ~name:"E9_costbased_plan_eval"
        (Staged.stage (fun () ->
             ignore (run_strategy opt_g opt_conds Struql.Plan.Cost_based)));
      Test.make ~name:"E10_query_with_indexes"
        (Staged.stage (fun () -> ignore (Struql.Eval.run idx_g year_query)));
      Test.make ~name:"E10_query_full_scan"
        (Staged.stage (fun () -> ignore (Struql.Eval.run noidx_g year_query)));
      Test.make ~name:"E11_clicktime_first_page"
        (Staged.stage (fun () ->
             let ct =
               Strudel.Materialize.Click_time.start ~data:homepage_data
                 Sites.Homepage.definition
             in
             let root = List.hd (Strudel.Materialize.Click_time.roots ct) in
             ignore (Strudel.Materialize.Click_time.browse ct root)));
      Test.make ~name:"E12_closure_chain2k"
        (Staged.stage (fun () ->
             ignore
               (Path.eval_from ~nfa:star_nfa chain_g Path.any_path chain_src)));
      Test.make ~name:"E13_render_one_page"
        (Staged.stage (fun () ->
             let o =
               List.hd
                 (Schema.Verify.family_members
                    cnn_built.Strudel.Site.site_graph "ArticlePage")
             in
             ignore
               (Template.Generator.render_page ~templates:Sites.Cnn.templates
                  cnn_built.Strudel.Site.site_graph o)));
      Test.make ~name:"E14_incremental_rebuild_no_change"
        (Staged.stage (fun () ->
             ignore
               (Strudel.Incremental.rebuild ~previous:cnn_built
                  ~data:cnn_small ())));
      Test.make ~name:"E15_xml_export_import"
        (Staged.stage (fun () ->
             ignore (Xml.import (Xml.export paper_data))));
      Test.make ~name:"E15_binary_encode_decode"
        (Staged.stage (fun () ->
             ignore
               (Repository.Binary.decode (Repository.Binary.encode cnn_small))));
      Test.make ~name:"E15_ddl_print_parse"
        (Staged.stage (fun () ->
             ignore (Ddl.parse (Ddl.print cnn_small))));
      Test.make ~name:"E15_dataguide_build"
        (Staged.stage (fun () ->
             ignore
               (Schema.Dataguide.of_graph
                  ~roots:(Graph.collection cnn_small "Articles")
                  cnn_small)));
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"strudel" tests)
  in
  let results = List.map (fun i -> Analyze.all ols i raw) instances in
  let merged = Analyze.merge ols instances results in
  let rows = ref [] in
  Hashtbl.iter
    (fun _label tbl ->
      Hashtbl.iter
        (fun name ols_r ->
          match Analyze.OLS.estimates ols_r with
          | Some [ e ] -> rows := (name, e) :: !rows
          | _ -> ())
        tbl)
    merged;
  List.iter
    (fun (name, e) ->
      if e > 1e6 then Fmt.pr "  %-45s %12.3f ms/run@." name (e /. 1e6)
      else Fmt.pr "  %-45s %12.0f ns/run@." name e)
    (List.sort compare !rows)

(* ----------------------------------------------------------------- *)
(* E23 — Dsan: race-sanitizer cost on parallel materialization        *)
(* ----------------------------------------------------------------- *)

(* Two numbers.  (a) The *disabled* cost: every hot loop in the pool,
   the render scheduler and the shard evaluator now carries sanitizer
   calls whose disabled fast path is one atomic flag load — the wall
   times below are the instrumented-but-off baseline the ≤2% E17
   budget is judged against.  (b) The *enabled* cost: the same
   materialization with the vector-clock detector armed, at several
   perturber seeds ("schedules"), reported as a slowdown factor — this
   is a correctness tool, so the factor is informational, but the race
   count it reports on the stock runtime must be zero. *)

let e23 () =
  section "E23" "Dsan: race sanitizer, disabled overhead and sanitized runs";
  let items =
    match Sys.getenv_opt "STRUDEL_DSAN_PAGES" with
    | Some s -> ( try max 1_000 (int_of_string s) with _ -> 10_000)
    | None -> 10_000
  in
  let data = Sites.Scale.data ~items () in
  let sg, _, _, _ =
    Strudel.Site.build_site_graph Sites.Scale.definition data
  in
  let roots = Strudel.Site.roots_of sg "Root" in
  let run jobs =
    let pages = ref 0 in
    let sink =
      {
        Strudel.Render_pool.sk_emit = (fun _ -> incr pages);
        sk_reset = (fun () -> pages := 0);
      }
    in
    let _, t =
      wall_it (fun () ->
          Strudel.Render_pool.materialize ~jobs ~sink
            ~templates:Sites.Scale.templates sg ~roots)
    in
    (t, !pages)
  in
  let job_levels = [ 1; 4; 8 ] in
  ignore (run 8) (* warm the shared pool: spawn domains outside timing *);
  let disabled = List.map (fun j -> (j, run j)) job_levels in
  let ref_pages = snd (snd (List.hd disabled)) in
  let schedules = 2 in
  let enabled =
    List.map
      (fun j ->
        let per_sched =
          List.init schedules (fun k ->
              Dsan.reset ();
              Dsan.enable ~seed:(1 + k) ();
              let t, p = run j in
              Dsan.disable ();
              let st = Dsan.stats () in
              (t, p, st))
        in
        let mean =
          List.fold_left (fun a (t, _, _) -> a +. t) 0. per_sched
          /. float_of_int schedules
        in
        let ops =
          List.fold_left (fun a (_, _, st) -> a + st.Dsan.st_ops) 0 per_sched
        in
        let races =
          List.fold_left
            (fun a (_, _, st) -> max a st.Dsan.st_races)
            0 per_sched
        in
        let pages_ok =
          List.for_all (fun (_, p, _) -> p = ref_pages) per_sched
        in
        (j, mean, ops, races, pages_ok))
      job_levels
  in
  Fmt.pr "synth-%dk: %d pages@." (items / 1000) ref_pages;
  Fmt.pr "  %-6s %14s %14s %9s %12s %6s@." "jobs" "disabled ms" "enabled ms"
    "slowdown" "dsan ops" "races";
  List.iter2
    (fun (j, (td, _)) (j', te, ops, races, _) ->
      assert (j = j');
      Fmt.pr "  %-6d %14.1f %14.1f %8.2fx %12d %6d@." j td te (te /. td) ops
        races)
    disabled enabled;
  let total_races =
    List.fold_left (fun a (_, _, _, r, _) -> a + r) 0 enabled
  in
  if total_races > 0 then
    Fmt.pr "  RACES DETECTED on the stock runtime — fix before trusting \
            parallel output@."
  else
    Fmt.pr "  no races across %d schedule(s) per jobs level@." schedules;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"experiment\": \"E23_race_sanitizer\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"items\": %d, \"pages\": %d, \"schedules\": %d,\n"
       items ref_pages schedules);
  Buffer.add_string buf "  \"disabled\": [";
  List.iteri
    (fun i (j, (t, _)) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "{\"jobs\": %d, \"wall_ms\": %.3f}" j t))
    disabled;
  Buffer.add_string buf "],\n  \"enabled\": [";
  List.iteri
    (fun i (j, te, ops, races, pages_ok) ->
      if i > 0 then Buffer.add_string buf ", ";
      let td = fst (List.assoc j disabled) in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"jobs\": %d, \"wall_ms\": %.3f, \"slowdown\": %.3f, \"ops\": \
            %d, \"races\": %d, \"pages_identical\": %b}"
           j te (te /. td) ops races pages_ok))
    enabled;
  Buffer.add_string buf
    (Printf.sprintf "],\n  \"races_total\": %d\n}\n" total_races);
  let oc = open_out "BENCH_dsan.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "sanitizer profile written to BENCH_dsan.json@."

(* ----------------------------------------------------------------- *)
(* E24 — Delta-StruQL: differential maintenance vs full rebuild       *)
(* ----------------------------------------------------------------- *)

type e24_row = {
  dr_requested : int;  (** mutation size asked for *)
  dr_mutated : int;  (** items actually mutated (capped by corpus) *)
  dr_watch_ms : float;  (** end-to-end [Watch.cycle]: ingest → publish *)
  dr_delta_ms : float;  (** the cycle's own maintain+publish clock *)
  dr_full_ms : float;  (** cold [Site.build] over the same mutated data *)
  dr_drivers : int;
  dr_rows : int;
  dr_touched : int;
  dr_rerendered : int;
  dr_reused : int;
  dr_identical : bool;
}

let e24 () =
  section "E24"
    "Delta-StruQL: differential maintenance vs full re-query + rebuild";
  let sizes = [ 1; 10; 100; 1000 ] in
  let header label =
    Fmt.pr "@.%s@." label;
    Fmt.pr "  %8s %8s %12s %12s %9s %11s %9s %10s@." "edited" "mutated"
      "watch ms" "full ms" "speedup" "rerendered" "reused" "identical"
  in
  (* One mutate→publish measurement: apply the edit, run one watch
     cycle, then time the comparator — a cold [Site.build] over the
     same mutated data — and check the two publishes byte-identical. *)
  let row ~session ~mutate ~cold k =
    let mutated = mutate k in
    Gc.full_major ();
    let report, t_watch = wall_it (fun () -> Serve.Watch.cycle session) in
    Gc.full_major ();
    let cold_built, t_full = wall_it cold in
    let identical =
      pages_identical (Serve.Watch.built session).Strudel.Site.site
        cold_built.Strudel.Site.site
    in
    Fmt.pr "  %8d %8d %12.1f %12.1f %8.1fx %11d %9d %10b@." k mutated t_watch
      t_full (t_full /. t_watch) report.Serve.Watch.cy_rerendered
      report.Serve.Watch.cy_reused identical;
    {
      dr_requested = k;
      dr_mutated = mutated;
      dr_watch_ms = t_watch;
      dr_delta_ms = report.Serve.Watch.cy_wall_ms;
      dr_full_ms = t_full;
      dr_drivers = report.Serve.Watch.cy_drivers;
      dr_rows = report.Serve.Watch.cy_rows;
      dr_touched = report.Serve.Watch.cy_touched;
      dr_rerendered = report.Serve.Watch.cy_rerendered;
      dr_reused = report.Serve.Watch.cy_reused;
      dr_identical = identical;
    }
  in
  (* --- direct mode: synth-100k, edits through the watch recorder --- *)
  let synth_items =
    match Sys.getenv_opt "STRUDEL_SYNTH_PAGES" with
    | Some s -> ( try max 1_000 (int_of_string s) with _ -> 100_000)
    | None -> 100_000
  in
  let data = Sites.Scale.data ~items:synth_items () in
  let session, t_prime =
    wall_it (fun () ->
        Serve.Watch.create ~source:(Serve.Watch.Direct data)
          Sites.Scale.definition)
  in
  let synth_pages =
    List.length
      (Serve.Watch.built session).Strudel.Site.site.Template.Generator.pages
  in
  let items = Array.of_list (Graph.collection data "Items") in
  let cursor = ref 0 in
  let rev = ref 0 in
  let mutate k =
    let r = Option.get (Serve.Watch.recorder session) in
    incr rev;
    for _ = 1 to k do
      let o = items.(!cursor mod Array.length items) in
      incr cursor;
      Delta.Rec.set_value r o "title"
        (Value.String (Printf.sprintf "%s rev %d" (Oid.name o) !rev))
    done;
    min k (Array.length items)
  in
  let cold () = Strudel.Site.build ~data Sites.Scale.definition in
  header
    (Printf.sprintf "synth-%dk   %d pages, watch primed in %.0f ms"
       (synth_items / 1000) synth_pages t_prime);
  let synth_rows = List.map (row ~session ~mutate ~cold) sizes in
  (* --- mediated mode: org-100, edits arrive as source updates --- *)
  let sources, w = Sites.Org.data ~people:100 ~orgs:6 () in
  let pubs = 80 (* [Sites.Org.data]'s default bibliography size *) in
  (* Re-seat the bibliography on a text we control, so graded edits
     below change exactly [k] titles relative to this base. *)
  let base_bib = Wrappers.Synth.bibtex ~seed:77 ~entries:pubs () in
  let load_bib text () = fst (Wrappers.Bibtex.load ~graph_name:"BIB" text) in
  Mediator.Source.update sources.Sites.Org.bib (load_bib base_bib);
  ignore (Mediator.Warehouse.refresh_delta w);
  let osession, t_oprime =
    wall_it (fun () ->
        Serve.Watch.create ~source:(Serve.Watch.Mediated w)
          Sites.Org.definition)
  in
  let org_pages =
    List.length
      (Serve.Watch.built osession).Strudel.Site.site.Template.Generator.pages
  in
  let orev = ref 0 in
  let omutate k =
    incr orev;
    (* leading newline + indent so "booktitle = {" doesn't match *)
    let pat = "\n  title = {" in
    let plen = String.length pat in
    let len = String.length base_bib in
    let buf = Buffer.create (len + 64) in
    let n = ref 0 in
    let i = ref 0 in
    while !i < len do
      if !n < k && !i + plen <= len && String.sub base_bib !i plen = pat
      then begin
        Buffer.add_string buf
          (Printf.sprintf "\n  title = {Revision %d of " !orev);
        incr n;
        i := !i + plen
      end
      else begin
        Buffer.add_char buf base_bib.[!i];
        incr i
      end
    done;
    Mediator.Source.update sources.Sites.Org.bib
      (load_bib (Buffer.contents buf));
    !n
  in
  let ocold () =
    Strudel.Site.build ~data:(Mediator.Warehouse.graph w) Sites.Org.definition
  in
  header
    (Printf.sprintf "org-100    %d pages, watch primed in %.0f ms"
       org_pages t_oprime);
  let org_rows =
    List.map (row ~session:osession ~mutate:omutate ~cold:ocold) sizes
  in
  (* --- acceptance + profile --- *)
  let one = List.hd synth_rows in
  let speedup_1 = one.dr_full_ms /. one.dr_watch_ms in
  let all_identical =
    List.for_all (fun r -> r.dr_identical) (synth_rows @ org_rows)
  in
  Fmt.pr
    "@.acceptance: 1-item mutation on synth-%dk publishes %.1fx faster than \
     a full rebuild (>=10x: %b), byte-identical everywhere: %b@."
    (synth_items / 1000) speedup_1 (speedup_1 >= 10.) all_identical;
  let json_rows rows =
    String.concat ", "
      (List.map
         (fun r ->
           Printf.sprintf
             "{\"requested\": %d, \"mutated\": %d, \"watch_ms\": %.3f, \
              \"delta_ms\": %.3f, \"full_ms\": %.3f, \"speedup\": %.2f, \
              \"drivers\": %d, \"rows\": %d, \"touched\": %d, \
              \"rerendered\": %d, \"reused\": %d, \"identical\": %b}"
             r.dr_requested r.dr_mutated r.dr_watch_ms r.dr_delta_ms
             r.dr_full_ms
             (r.dr_full_ms /. r.dr_watch_ms)
             r.dr_drivers r.dr_rows r.dr_touched r.dr_rerendered r.dr_reused
             r.dr_identical)
         rows)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"experiment\": \"E24_delta_maintenance\",\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"synth\": {\"items\": %d, \"pages\": %d, \"prime_ms\": %.1f, \
        \"runs\": [%s]},\n"
       synth_items synth_pages t_prime (json_rows synth_rows));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"org\": {\"pubs\": %d, \"pages\": %d, \"prime_ms\": %.1f, \
        \"runs\": [%s]},\n"
       pubs org_pages t_oprime (json_rows org_rows));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"acceptance\": {\"synth_1item_speedup\": %.2f, \"ge_10x\": %b, \
        \"all_identical\": %b}\n}\n"
       speedup_1 (speedup_1 >= 10.) all_identical);
  let oc = open_out "BENCH_delta.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "delta maintenance profile written to BENCH_delta.json@."

(* --- experiment selection ---

   With no arguments every experiment runs, in order.  With arguments,
   only the named experiments run; an unknown name is an error (exit 1)
   rather than a silent no-op, so a typo in CI cannot masquerade as a
   passing run. *)

let experiments =
  [
    ("E1", e1); ("E2", e2); ("E3", e3); ("E4", e4); ("E5", e5); ("E6", e6);
    ("E7", e7); ("E8", e8); ("E9", e9); ("E10", e10); ("E11", e11);
    ("E12", e12); ("E13", e13); ("E14", e14); ("E15", e15); ("E16", e16);
    ("E17", e17); ("E18", e18); ("E19", e19); ("E20", e20); ("E21", e21);
    ("E22", e22);
    ("E23", e23);
    ("E24", e24);
    ("micro", bechamel_suite);
  ]

let () =
  let t0 = Sys.time () in
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  let find name =
    List.find_opt
      (fun (n, _) -> String.lowercase_ascii n = String.lowercase_ascii name)
      experiments
  in
  (* validate every name before running anything *)
  let unknown = List.filter (fun n -> find n = None) requested in
  if unknown <> [] then begin
    Fmt.epr "unknown experiment%s: %s@.known: %s@."
      (if List.length unknown > 1 then "s" else "")
      (String.concat ", " unknown)
      (String.concat ", " (List.map fst experiments));
    exit 1
  end;
  List.iter (fun n -> (snd (Option.get (find n))) ()) requested;
  Fmt.pr "@.total bench time: %.1f s@." (Sys.time () -. t0)
