(* The strudel command-line tool.

   Subcommands mirror the architecture of Fig. 1:
     load    run a wrapper: external data -> data graph (DDL)
     query   evaluate a StruQL query over a data graph
     check   static checks + safety classification of a query
     schema  derive and print the site schema of a query
     build   data + query + templates -> browsable Web site
     verify  check integrity constraints on a site graph
     demo    build one of the bundled example sites *)

open Cmdliner
open Sgraph

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let or_die f =
  try f () with
  | Ddl.Ddl_error (msg, line) ->
    Fmt.epr "DDL error, line %d: %s@." line msg;
    exit 1
  | Struql.Parser.Parse_error (msg, line, col) ->
    if col > 0 then
      Fmt.epr "StruQL parse error, line %d, column %d: %s@." line col msg
    else Fmt.epr "StruQL parse error, line %d: %s@." line msg;
    exit 1
  | Struql.Eval.Eval_error msg ->
    Fmt.epr "evaluation error: %s@." msg;
    exit 1
  | Struql.Plan.No_plan msg ->
    Fmt.epr "no executable plan: %s@." msg;
    exit 1
  | Struql.Plan.Plan_error msg ->
    Fmt.epr "planning error: %s@." msg;
    exit 1
  | Struql.Check.Invalid problems ->
    Fmt.epr "invalid query:@.";
    List.iter (fun p -> Fmt.epr "  %a@." Struql.Check.pp_problem p) problems;
    exit 1
  | Wrappers.Bibtex.Bibtex_error (msg, line) ->
    Fmt.epr "BibTeX error, line %d: %s@." line msg;
    exit 1
  | Wrappers.Csv.Csv_error (msg, line, col) ->
    Fmt.epr "CSV error, line %d, column %d: %s@." line col msg;
    exit 1
  | Wrappers.Structured_file.Structured_error (msg, line) ->
    Fmt.epr "structured-file error, line %d: %s@." line msg;
    exit 1
  | Mediator.Gav.Unknown_source (name, declared) ->
    Fmt.epr "mediator: mapping names unknown source '%s' (declared: %s)@."
      name
      (String.concat ", " declared);
    exit 1
  | Repository.Binary.Corrupt (msg, offset) ->
    Fmt.epr "corrupt binary graph at byte %d: %s@." offset msg;
    exit 1
  | Repository.Shard.Manifest_error msg ->
    Fmt.epr "malformed shard manifest: %s@." msg;
    exit 1
  | Fault.Inject.Injected msg ->
    Fmt.epr "injected fault: %s@." msg;
    exit 1
  | Fault.Manifest.Manifest_error msg ->
    Fmt.epr "malformed fault manifest: %s@." msg;
    exit 1
  | Template.Tparse.Template_error msg ->
    Fmt.epr "template error: %s@." msg;
    exit 1
  | Strudel.Site.Build_error msg ->
    Fmt.epr "build error: %s@." msg;
    exit 1

(* --- common args --- *)

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
         ~doc:"Output file or directory (default: stdout).")

let data_arg =
  Arg.(required & opt (some file) None & info [ "d"; "data" ] ~docv:"DDL"
         ~doc:"Data graph in DDL syntax.")

let emit output s =
  match output with None -> print_string s | Some p -> write_file p s

(* --- load --- *)

let load_cmd =
  let format_arg =
    Arg.(value & opt (enum [ ("bibtex", `Bibtex); ("csv", `Csv);
                             ("structured", `Structured); ("html", `Html);
                             ("ddl", `Ddl); ("xml", `Xml) ]) `Ddl
         & info [ "f"; "format" ] ~docv:"FORMAT"
             ~doc:"Input format: bibtex, csv, structured, html, ddl or xml.")
  in
  let xml_out_arg =
    Arg.(value & flag
         & info [ "x"; "xml" ] ~doc:"Emit XML instead of the DDL.")
  in
  let name_arg =
    Arg.(value & opt string "data"
         & info [ "n"; "name" ] ~docv:"NAME"
             ~doc:"Graph name (and CSV collection name).")
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let run format name file xml_out output =
    or_die (fun () ->
        let g =
          match format with
          | `Bibtex -> fst (Wrappers.Bibtex.load ~graph_name:name (read_file file))
          | `Csv -> fst (Wrappers.Csv.load ~graph_name:name ~name (read_file file))
          | `Structured ->
            fst (Wrappers.Structured_file.load ~graph_name:name (read_file file))
          | `Html ->
            fst
              (Wrappers.Html_wrapper.load_pages ~graph_name:name
                 [ (Filename.basename file, read_file file) ])
          | `Ddl -> fst (Ddl.parse ~graph_name:name (read_file file))
          | `Xml -> Xml.import ~graph_name:name (read_file file)
        in
        Fmt.epr "%a@." Graph.pp_stats g;
        emit output (if xml_out then Xml.export g else Ddl.print g))
  in
  Cmd.v (Cmd.info "load" ~doc:"Wrap an external source into a data graph.")
    Term.(const run $ format_arg $ name_arg $ file_arg $ xml_out_arg
          $ output_arg)

(* --- query --- *)

let strategy_arg =
  Arg.(value & opt (enum [ ("naive", Struql.Plan.Naive);
                           ("heuristic", Struql.Plan.Heuristic);
                           ("costbased", Struql.Plan.Cost_based) ])
         Struql.Plan.Heuristic
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:"Optimizer: naive, heuristic or costbased.")

let query_pos_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY")

let data_opt_arg =
  Arg.(value & opt (some file) None
       & info [ "d"; "data" ] ~docv:"DDL"
           ~doc:"Data graph in DDL syntax (single-input mode).")

let graphs_arg =
  Arg.(value & opt_all (pair ~sep:'=' string file) []
       & info [ "g"; "graph" ] ~docv:"NAME=FILE"
           ~doc:
             "Catalogue a named graph (repeatable); the query's INPUT \
              names resolve against the catalogue.")

(* Resolve the -d / -g options to the graph a query runs over. *)
let input_graph data graphs (q : Struql.Ast.query) =
  match data, graphs with
  | Some d, [] -> fst (Ddl.parse ~graph_name:"input" (read_file d))
  | None, (_ :: _ as graphs) ->
    let repo = Repository.Store.create () in
    List.iter
      (fun (name, file) ->
        Repository.Store.put repo
          (fst (Ddl.parse ~graph_name:name (read_file file))))
      graphs;
    let merged = Sgraph.Graph.create ~name:"inputs" () in
    List.iter
      (fun n ->
        Graph.merge_into ~dst:merged ~src:(Repository.Store.get repo n))
      q.Struql.Ast.input;
    merged
  | Some _, _ :: _ ->
    Fmt.epr "use either -d or -g, not both@.";
    exit 1
  | None, [] ->
    Fmt.epr "one of -d DDL or -g NAME=FILE is required@.";
    exit 1

let query_cmd =
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the measured per-operator execution profile.")
  in
  let run data graphs query strategy stats output =
    or_die (fun () ->
        let q = Struql.Parser.parse (read_file query) in
        let options = { Struql.Eval.default_options with strategy } in
        let g = input_graph data graphs q in
        let out, prof =
          Struql.Exec.run_with_profile ~options ~timed:stats g q
        in
        if stats then Fmt.epr "%a@." Struql.Exec.pp_profile prof;
        Fmt.epr "%a@." Graph.pp_stats out;
        emit output (Ddl.print out))
  in
  Cmd.v (Cmd.info "query" ~doc:"Evaluate a StruQL query over data graphs.")
    Term.(const run $ data_opt_arg $ graphs_arg $ query_pos_arg $ strategy_arg
          $ stats_arg $ output_arg)

(* --- explain / explain-analyze --- *)

let strategy_opt_arg =
  Arg.(value & opt (some (enum [ ("naive", Struql.Plan.Naive);
                                 ("heuristic", Struql.Plan.Heuristic);
                                 ("costbased", Struql.Plan.Cost_based) ]))
         None
       & info [ "s"; "strategy" ] ~docv:"STRATEGY"
           ~doc:
             "Optimizer: naive, heuristic or costbased (default: show all \
              three).")

let strategies_of = function
  | Some s -> [ s ]
  | None -> [ Struql.Plan.Naive; Struql.Plan.Heuristic; Struql.Plan.Cost_based ]

let explain_cmd =
  let run data graphs query strategy =
    or_die (fun () ->
        let q = Struql.Parser.parse (read_file query) in
        let g = input_graph data graphs q in
        List.iter
          (fun strategy ->
            let options = { Struql.Eval.default_options with strategy } in
            Fmt.pr "%a@."
              Struql.Exec.pp_query_plan
              (Struql.Exec.plan_query ~options g q))
          (strategies_of strategy))
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show the physical plan of a query: operator order, access paths \
          (index probe vs scan) and cardinality estimates, without running \
          it.")
    Term.(const run $ data_opt_arg $ graphs_arg $ query_pos_arg
          $ strategy_opt_arg)

let shards_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "shards" ] ~docv:"DIR"
           ~doc:"A sharded repository directory (see $(b,strudel repo)).")

let explain_analyze_cmd =
  let run data graphs query strategy shards_dir =
    or_die (fun () ->
        let q = Struql.Parser.parse (read_file query) in
        let g, shards =
          match shards_dir with
          | None -> (input_graph data graphs q, None)
          | Some dir ->
            (* the repository is the data: run over its union graph,
               with the shard context driving per-shard scans *)
            let sn = Repository.Shard.open_dir ~dir () in
            ( sn.Repository.Shard.sn_union,
              Some (Mediator.Warehouse.shard_ctx_of_snapshot sn) )
        in
        List.iter
          (fun strategy ->
            let options = { Struql.Eval.default_options with strategy } in
            (* fresh counter baseline per strategy, so each profile's
               kernel and shard lines stand alone *)
            Graph.reset_kernel_counters g;
            (match shards with
             | Some sc ->
               List.iter
                 (fun sv ->
                   Graph.reset_kernel_counters sv.Struql.Exec.sv_graph)
                 sc.Struql.Exec.sc_shards
             | None -> ());
            let _, prof =
              Struql.Exec.run_with_profile ~options ~timed:true ?shards g q
            in
            Fmt.pr "%a@." Struql.Exec.pp_profile prof)
          (strategies_of strategy))
  in
  Cmd.v
    (Cmd.info "explain-analyze"
       ~doc:
         "Run a query on the streaming engine and show the measured plan: \
          per-operator rows in/out, batch watermarks, timings and the peak \
          live-binding count.  With $(b,--shards), the query runs over the \
          repository's union graph and the profile reports shards \
          scanned/pruned and per-shard kernel counters.")
    Term.(const run $ data_opt_arg $ graphs_arg $ query_pos_arg
          $ strategy_opt_arg $ shards_dir_arg)

(* --- check --- *)

let check_cmd =
  let query_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY")
  in
  let run query =
    or_die (fun () ->
        let q = Struql.Parser.parse (read_file query) in
        let report = Struql.Check.check q in
        List.iter
          (fun p -> Fmt.pr "error: %a@." Struql.Check.pp_problem p)
          report.Struql.Check.errors;
        List.iter
          (fun p -> Fmt.pr "warning: %a@." Struql.Check.pp_problem p)
          report.Struql.Check.warnings;
        if report.Struql.Check.errors = [] then begin
          Fmt.pr "query is valid%s@."
            (if report.Struql.Check.warnings = [] then " and range-restricted"
             else " (active-domain semantics apply)");
          Fmt.pr "%d blocks, %d conditions, %d link clauses@."
            (List.length q.Struql.Ast.blocks)
            (Struql.Ast.query_condition_count q)
            (Struql.Ast.query_link_count q)
        end
        else exit 1)
  in
  Cmd.v (Cmd.info "check" ~doc:"Statically check a StruQL query.")
    Term.(const run $ query_arg)

(* --- schema --- *)

let schema_cmd =
  let query_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY")
  in
  let dot_arg =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz dot format.")
  in
  let run query dot output =
    or_die (fun () ->
        let q = Struql.Parser.parse (read_file query) in
        let s = Schema.Site_schema.of_query q in
        if dot then emit output (Schema.Dot.of_schema s)
        else emit output (Schema.Site_schema.to_string s))
  in
  Cmd.v
    (Cmd.info "schema"
       ~doc:"Derive the site schema of a site-definition query.")
    Term.(const run $ query_arg $ dot_arg $ output_arg)

(* --- decompose --- *)

let decompose_cmd =
  let query_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"QUERY")
  in
  let run query output =
    or_die (fun () ->
        let q = Struql.Parser.parse (read_file query) in
        let pieces = Schema.Decompose.of_query q in
        emit output (Fmt.str "%a" Schema.Decompose.pp pieces);
        Fmt.epr "%d pieces@." (List.length pieces))
  in
  Cmd.v
    (Cmd.info "decompose"
       ~doc:
         "Split a site-definition query into independently evaluable \
          queries (one per create/link/collect).")
    Term.(const run $ query_arg $ output_arg)

(* --- build --- *)

let build_cmd =
  let query_arg =
    Arg.(required & opt (some file) None
         & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Site-definition query.")
  in
  let root_arg =
    Arg.(value & opt string "RootPage"
         & info [ "root" ] ~docv:"FAMILY"
             ~doc:"Skolem family of the root page(s).")
  in
  let template_arg =
    Arg.(value & opt_all (pair ~sep:'=' string file) []
         & info [ "t"; "template" ] ~docv:"COLLECTION=FILE"
             ~doc:"Template for a collection (repeatable).")
  in
  let dir_arg =
    Arg.(value & opt string "_site/out"
         & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:
               "Render pages on $(docv) OCaml domains (1 = the \
                sequential reference path; 0 = auto-detect the \
                machine's domain count; output is byte-identical \
                either way).")
  in
  let stream_arg =
    Arg.(value & flag
         & info [ "stream" ]
             ~doc:
               "Stream pages to the output directory as they render \
                instead of materializing the whole site in memory \
                first — peak memory is bounded by the render slice, \
                not the site size.  Output is byte-identical to a \
                non-streamed build.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:
               "Print the render profile (per-domain pages and wall \
                time, waves, cache counters) after building.")
  in
  let on_error_arg =
    Arg.(value & opt (enum [ ("abort", Fault.Abort); ("degrade", Fault.Degrade) ])
           Fault.Abort
         & info [ "on-error" ] ~docv:"MODE"
             ~doc:
               "What a failed page render does: $(b,abort) the build \
                (default, exit 1) or $(b,degrade) — emit a placeholder \
                error page, record the fault in the manifest and exit 3.")
  in
  let retries_arg =
    Arg.(value & opt int 1
         & info [ "retries" ] ~docv:"N"
             ~doc:
               "Attempt reading and parsing the data graph up to $(docv) \
                times with exponential backoff before giving up.")
  in
  let faults_out_arg =
    Arg.(value & opt (some string) None
         & info [ "faults-out" ] ~docv:"PATH"
             ~doc:
               "Where to write the machine-readable fault manifest \
                (default: $(i,DIR)/faults.json).")
  in
  let shard_by_arg =
    Arg.(value & opt (enum [ ("collection", Repository.Shard.By_collection);
                             ("family", Repository.Shard.By_family) ])
           Repository.Shard.By_collection
         & info [ "shard-by" ] ~docv:"SPEC"
             ~doc:"Partitioning spec for $(b,--shards): collection or family.")
  in
  let run data query root templates strategy dir jobs stream stats on_error
      retries faults_out shards_dir shard_by =
    or_die (fun () ->
        let jobs =
          if jobs <= 0 then Strudel.Render_pool.auto_jobs () else jobs
        in
        let fault = Fault.ctx () in
        let t0 = Unix.gettimeofday () in
        let g =
          let retry =
            { Fault.Policy.default_retry with attempts = max 1 retries }
          in
          match
            Fault.Retry.run ~retry (fun ~attempt:_ ->
                fst (Ddl.parse ~graph_name:"input" (read_file data)))
          with
          | Ok g -> g
          | Error (e, _) -> raise e
        in
        let load_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        (* with --shards, publish the data graph as segment files and
           let the site queries run shard-aware; pages are
           byte-identical either way *)
        let snapshot =
          Option.map
            (fun sdir ->
              Repository.Shard.publish
                { Repository.Shard.dir = sdir; cfg_spec = shard_by }
                ~epoch:1
                ~sources:[ ("input", 0) ]
                g)
            shards_dir
        in
        let shards =
          Option.map
            (Mediator.Warehouse.shard_ctx_of_snapshot ~jobs)
            snapshot
        in
        let templates =
          {
            Template.Generator.empty_templates with
            Template.Generator.by_collection =
              List.map (fun (c, f) -> (c, read_file f)) templates;
          }
        in
        let def =
          Strudel.Site.define ~name:"site" ~root_family:root ~templates
            ~strategy
            [ ("site", read_file query) ]
        in
        let sink =
          if stream then Some (Strudel.Render_pool.file_sink ~dir) else None
        in
        let built =
          Strudel.Site.build ~jobs ~on_error ~fault ?shards ?sink ~data:g def
        in
        let rec mkdirs d =
          if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
            mkdirs (Filename.dirname d);
            Sys.mkdir d 0o755
          end
        in
        mkdirs dir;
        if not stream then
          Template.Generator.write_site ~dir built.Strudel.Site.site;
        Fmt.pr "%d pages written to %s@."
          built.Strudel.Site.render_profile.Strudel.Render_pool.rp_pages
          dir;
        if stats then begin
          (* the per-source outcome table (the degenerate one-source
             federation of a file build; warehouse builds report every
             source the same way) *)
          Fmt.pr "sources:@.%a"
            Mediator.Warehouse.pp_stats
            [ { Mediator.Warehouse.ss_source = data;
                ss_outcome = Mediator.Warehouse.Changed;
                ss_duration_ms = load_ms;
                ss_version = 0 } ];
          (match snapshot with
           | Some sn ->
             Fmt.pr "shards (epoch %d):@." sn.Repository.Shard.sn_epoch;
             List.iter
               (fun (sh : Repository.Shard.shard) ->
                 let e = sh.Repository.Shard.sh_entry in
                 Fmt.pr "  %-20s %6d nodes %6d edges %8d bytes  %s@."
                   e.Repository.Shard.e_name e.e_nodes e.e_edges e.e_bytes
                   e.e_file)
               sn.Repository.Shard.sn_shards
           | None -> ());
          List.iter
            (fun prof -> Fmt.pr "%a@." Struql.Exec.pp_profile prof)
            built.Strudel.Site.query_stats;
          Fmt.pr "%a@." Strudel.Render_pool.pp_profile
            built.Strudel.Site.render_profile
        end;
        let manifest = Strudel.Site.manifest built in
        let manifest_path =
          match faults_out with
          | Some p -> p
          | None -> Filename.concat dir "faults.json"
        in
        write_file manifest_path (Fault.Manifest.to_json manifest);
        (match Fault.Manifest.status manifest with
         | Fault.Manifest.Clean -> ()
         | Fault.Manifest.Degraded ->
           Fmt.epr "build degraded: %d fault(s), see %s@."
             (List.length (Fault.Manifest.faults manifest))
             manifest_path);
        exit (Fault.Manifest.exit_code manifest))
  in
  Cmd.v (Cmd.info "build" ~doc:"Build a browsable site from data + query + templates.")
    Term.(const run $ data_arg $ query_arg $ root_arg $ template_arg
          $ strategy_arg $ dir_arg $ jobs_arg $ stream_arg $ stats_arg
          $ on_error_arg $ retries_arg $ faults_out_arg $ shards_dir_arg
          $ shard_by_arg)

(* --- faults: inspect a build manifest --- *)

let faults_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FAULTS_JSON")
  in
  let run file =
    or_die (fun () ->
        let m = Fault.Manifest.of_json (read_file file) in
        Fmt.pr "%a@." Fault.Manifest.pp m;
        exit (Fault.Manifest.exit_code m))
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Pretty-print a build's fault manifest (faults.json) and exit \
          with its status code (0 clean, 3 degraded).")
    Term.(const run $ file_arg)

(* --- verify --- *)

let verify_cmd =
  let reachable_arg =
    Arg.(value & opt (some string) None
         & info [ "reachable-from" ] ~docv:"FAMILY"
             ~doc:"Check all pages reachable from the family.")
  in
  let points_arg =
    Arg.(value & opt_all (t3 ~sep:',' string string string) []
         & info [ "points-to" ] ~docv:"A,LABEL,B"
             ~doc:"Check every A page has a LABEL link to some B page.")
  in
  let no_label_arg =
    Arg.(value & opt_all string []
         & info [ "no-label" ] ~docv:"LABEL"
             ~doc:"Check the label appears nowhere in the site.")
  in
  let run data reachable points no_labels =
    or_die (fun () ->
        let g, _ = Ddl.parse ~graph_name:"site" (read_file data) in
        let cs =
          (match reachable with
           | Some f -> [ Schema.Verify.Reachable_from f ]
           | None -> [])
          @ List.map (fun (a, l, b) -> Schema.Verify.Points_to (a, l, b)) points
          @ List.map (fun l -> Schema.Verify.No_attribute_anywhere l) no_labels
        in
        let results = Schema.Verify.check_all_site g cs in
        List.iter
          (fun (c, v) ->
            Fmt.pr "%a: %a@." Schema.Verify.pp_constraint c
              Schema.Verify.pp_verdict v)
          results;
        if
          List.exists
            (fun (_, v) ->
              match v with Schema.Verify.Violated _ -> true | _ -> false)
            results
        then exit 1)
  in
  Cmd.v (Cmd.info "verify" ~doc:"Check integrity constraints on a site graph.")
    Term.(const run $ data_arg $ reachable_arg $ points_arg $ no_label_arg)

(* --- lint: static analysis of a site specification --- *)

let lint_cmd =
  let spec_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"SITE"
             ~doc:
               "A bundled example site (quickstart, homepage, cnn, org, \
                rodin — a path like examples/cnn also works) or a StruQL \
                site-definition query file (combine with $(b,-d), \
                $(b,-t) and $(b,--root)).  Optional with \
                $(b,--list-codes).")
  in
  let list_codes_arg =
    Arg.(value & flag
         & info [ "list-codes" ]
             ~doc:
               "Print the stable diagnostic catalog (code, default \
                severity, description) and exit.")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json);
                             ("sarif", `Sarif) ]) `Text
         & info [ "f"; "format" ] ~docv:"FORMAT"
             ~doc:"Report format: text, json or sarif (2.1.0).")
  in
  let fail_on_arg =
    Arg.(value & opt (enum [ ("error", Analysis.Lint.Fail_error);
                             ("warning", Analysis.Lint.Fail_warning) ])
           Analysis.Lint.Fail_error
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:
               "Exit 1 when a diagnostic at or above $(docv) is present: \
                error (default) or warning.")
  in
  let root_arg =
    Arg.(value & opt string "RootPage"
         & info [ "root" ] ~docv:"FAMILY"
             ~doc:"Skolem family of the root page(s) (query-file mode).")
  in
  let template_arg =
    Arg.(value & opt_all (pair ~sep:'=' string file) []
         & info [ "t"; "template" ] ~docv:"COLLECTION=FILE"
             ~doc:"Template for a collection (repeatable, query-file mode).")
  in
  let resolve_bundled name =
    let base =
      String.lowercase_ascii (Filename.remove_extension (Filename.basename name))
    in
    match base with
    | "quickstart" | "paper" | "paper_example" ->
      Some (Sites.Lint_specs.paper ())
    | "homepage" -> Some (Sites.Lint_specs.homepage ())
    | "cnn" -> Some (Sites.Lint_specs.cnn ~articles:100 ())
    | "org" -> Some (Sites.Lint_specs.org ~people:50 ~orgs:5 ())
    | "rodin" -> Some (Sites.Lint_specs.rodin ())
    | _ -> None
  in
  let run list_codes spec_name data templates root format fail_on shards
      output =
    or_die (fun () ->
        if list_codes then begin
          List.iter
            (fun (code, sev, desc) ->
              Fmt.pr "%s  %-7s  %s@." code
                (Analysis.Diagnostic.severity_name sev)
                desc)
            Analysis.Diagnostic.catalog;
          exit 0
        end;
        let spec_name =
          match spec_name with
          | Some s -> s
          | None ->
            Fmt.epr "a SITE argument is required (or use --list-codes)@.";
            exit 2
        in
        let spec =
          match resolve_bundled spec_name with
          | Some s -> s
          | None when Sys.file_exists spec_name ->
            let templates =
              {
                Template.Generator.empty_templates with
                Template.Generator.by_collection =
                  List.map (fun (c, f) -> (c, read_file f)) templates;
              }
            in
            {
              Analysis.Lint.name = Filename.basename spec_name;
              queries = [ (spec_name, read_file spec_name) ];
              templates;
              root_family = root;
              constraints = [];
              registry = Struql.Builtins.default;
              data =
                Option.map
                  (fun d ->
                    fst (Ddl.parse ~graph_name:"input" (read_file d)))
                  data;
              declared_sources = [];
              mapping_sources = [];
              shard_manifest = None;
              max_guide_states = 10_000;
            }
          | None ->
            Fmt.epr
              "unknown site '%s' (bundled: quickstart, homepage, cnn, org, \
               rodin) and no such file@."
              spec_name;
            exit 2
        in
        let spec =
          match shards with
          | None -> spec
          | Some dir ->
            let m = Repository.Shard.load_manifest ~dir in
            {
              spec with
              Analysis.Lint.shard_manifest =
                Some
                  (List.map
                     (fun (e : Repository.Shard.entry) ->
                       (e.Repository.Shard.e_name,
                        e.Repository.Shard.e_collections))
                     m.Repository.Shard.m_entries);
            }
        in
        let diags = Analysis.Lint.run spec in
        let rendered =
          match format with
          | `Text -> Analysis.Diagnostic.to_text diags
          | `Json -> Analysis.Diagnostic.to_json diags
          | `Sarif -> Analysis.Diagnostic.to_sarif diags
        in
        emit output rendered;
        exit (Analysis.Lint.exit_code fail_on diags))
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a site specification without building it: \
          path emptiness, dead/unused spec, constraint verification and \
          template lint, as structured SA0xx diagnostics.  With \
          $(b,--shards), also checks query collections against the \
          repository's shard manifest (SA050).  $(b,--list-codes) \
          prints the full stable catalog, including the race-sanitizer \
          codes emitted by $(b,strudel dsan).")
    Term.(const run $ list_codes_arg $ spec_arg $ data_opt_arg $ template_arg
          $ root_arg $ format_arg $ fail_on_arg $ shards_dir_arg $ output_arg)

(* --- dsan: race-sanitized runs of the parallel runtime --- *)

let dsan_cmd =
  let site_arg =
    Arg.(value & pos 0 (enum [ ("quickstart", `Quickstart);
                               ("homepage", `Homepage); ("cnn", `Cnn);
                               ("org", `Org); ("rodin", `Rodin) ]) `Org
         & info [] ~docv:"SITE"
             ~doc:
               "Bundled example site the sanitized workload runs on \
                (org also exercises the warehouse's parallel refresh).")
  in
  let jobs_arg =
    Arg.(value & opt int 4
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Domains for the parallel phases (builds, serving).")
  in
  let schedules_arg =
    Arg.(value & opt int 1
         & info [ "schedules" ] ~docv:"K"
             ~doc:
               "Distinct perturber seeds to explore: the whole workload \
                runs $(docv) times, each under a different deterministic \
                schedule perturbation.")
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Base perturber seed (schedule k uses SEED + k).")
  in
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json);
                             ("sarif", `Sarif) ]) `Text
         & info [ "f"; "format" ] ~docv:"FORMAT"
             ~doc:"Report format: text, json or sarif (2.1.0).")
  in
  let fail_on_arg =
    Arg.(value & opt (enum [ ("error", Analysis.Lint.Fail_error);
                             ("warning", Analysis.Lint.Fail_warning) ])
           Analysis.Lint.Fail_error
         & info [ "fail-on" ] ~docv:"SEVERITY"
             ~doc:
               "Exit 1 when a diagnostic at or above $(docv) is present \
                (races are errors; the run summary is info).")
  in
  let run site jobs schedules seed format fail_on output =
    or_die (fun () ->
        let jobs = max 2 jobs in
        let def, data =
          match site with
          | `Quickstart ->
            (Sites.Paper_example.definition, Sites.Paper_example.data ())
          | `Homepage ->
            (Sites.Homepage.definition, Sites.Homepage.data ~entries:40 ())
          | `Cnn -> (Sites.Cnn.definition, Sites.Cnn.data ~articles:60 ())
          | `Org ->
            let _, w = Sites.Org.data ~people:60 ~orgs:4 () in
            (Sites.Org.definition, Mediator.Warehouse.graph w)
          | `Rodin -> (Sites.Rodin.definition, Sites.Rodin.data ())
        in
        let request path =
          {
            Serve.Http.meth = Serve.Http.GET;
            target = path;
            path;
            version = "HTTP/1.1";
            headers = [];
            body = "";
          }
        in
        let workload () =
          (* two parallel builds sharing a render cache: the second run
             verifies traces on worker domains instead of rendering *)
          let cache = Strudel.Render_cache.create () in
          ignore (Strudel.Site.build ~jobs ~render_cache:cache ~data def);
          ignore (Strudel.Site.build ~jobs ~render_cache:cache ~data def);
          (* an engine hammered from [jobs] domains: epoch pickup, ETag
             memoization, render cache and breakers under contention *)
          let eng =
            Serve.Engine.create ~workers:jobs
              ~source:(Serve.Engine.Static data) def
          in
          Strudel.Pool.run Strudel.Pool.shared ~jobs (fun w ->
              for _ = 1 to 25 do
                List.iter
                  (fun path ->
                    ignore (Serve.Engine.handle ~worker:w eng (request path)))
                  [ "/"; "/healthz"; "/readyz" ]
              done);
          (* org: the warehouse's parallel source loads and view swap *)
          match site with
          | `Org ->
            let srcs, _ = Sites.Org.data ~people:40 ~orgs:3 () in
            let w =
              Mediator.Warehouse.create ~jobs
                ~sources:
                  [ srcs.Sites.Org.rdb; srcs.Sites.Org.projects;
                    srcs.Sites.Org.bib; srcs.Sites.Org.html ]
                ~mappings:Sites.Org.mediation_mappings ()
            in
            ignore (Mediator.Warehouse.refresh ~jobs w)
          | _ -> ()
        in
        let schedules = max 1 schedules in
        let race_diags = ref [] in
        let ops = ref 0 and locs = ref 0 and yields = ref 0 in
        for k = 0 to schedules - 1 do
          Dsan.reset ();
          Dsan.enable ~seed:(seed + k) ();
          workload ();
          Dsan.disable ();
          race_diags :=
            List.map Analysis.Dsan_report.diagnostic_of_race (Dsan.races ())
            @ !race_diags;
          let st = Dsan.stats () in
          ops := !ops + st.Dsan.st_ops;
          locs := max !locs st.Dsan.st_locations;
          yields := !yields + st.Dsan.st_yields
        done;
        let races =
          List.sort_uniq Analysis.Diagnostic.compare !race_diags
        in
        let stats =
          {
            Dsan.st_ops = !ops;
            st_locations = !locs;
            st_yields = !yields;
            st_races = List.length races;
          }
        in
        let diags =
          races @ [ Analysis.Dsan_report.summary ~schedules ~stats () ]
        in
        let rendered =
          match format with
          | `Text -> Analysis.Diagnostic.to_text diags
          | `Json -> Analysis.Diagnostic.to_json diags
          | `Sarif -> Analysis.Diagnostic.to_sarif diags
        in
        emit output rendered;
        exit (Analysis.Lint.exit_code fail_on diags))
  in
  Cmd.v
    (Cmd.info "dsan"
       ~doc:
         "Run the domain-parallel runtime (parallel builds, cached \
          rebuilds, concurrent serving, warehouse refresh) under the \
          happens-before race sanitizer and report any data races as \
          SA060/SA061 diagnostics, plus an SA062 run summary.")
    Term.(const run $ site_arg $ jobs_arg $ schedules_arg $ seed_arg
          $ format_arg $ fail_on_arg $ output_arg)

(* --- browse: click-time materialization simulator --- *)

let browse_cmd =
  let which_arg =
    Arg.(value & pos 0 (enum [ ("quickstart", `Quickstart);
                               ("homepage", `Homepage); ("cnn", `Cnn);
                               ("org", `Org) ]) `Homepage
         & info [] ~docv:"SITE")
  in
  let clicks_arg =
    Arg.(value & opt int 20
         & info [ "clicks" ] ~docv:"N" ~doc:"Number of simulated clicks.")
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED")
  in
  let no_cache_arg =
    Arg.(value & flag & info [ "no-cache" ] ~doc:"Disable the page cache.")
  in
  let run which clicks seed no_cache =
    or_die (fun () ->
        let data, def =
          match which with
          | `Quickstart ->
            (Sites.Paper_example.data (), Sites.Paper_example.definition)
          | `Homepage -> (Sites.Homepage.data (), Sites.Homepage.definition)
          | `Cnn -> (Sites.Cnn.data ~articles:100 (), Sites.Cnn.definition)
          | `Org ->
            let _, w = Sites.Org.data ~people:100 ~orgs:6 () in
            (Mediator.Warehouse.graph w, Sites.Org.definition)
        in
        let ct =
          Strudel.Materialize.Click_time.start ~cache:(not no_cache) ~data def
        in
        let visited =
          Strudel.Materialize.Click_time.random_walk ct ~clicks ~seed
        in
        let st = Strudel.Materialize.Click_time.stats ct in
        Fmt.pr
          "visited %d pages in %d clicks@.expansions: %d, link-clause \
           evaluations: %d, cache hits: %d@.materialized: %d nodes, %d \
           edges@.peak live bindings: %d@."
          visited clicks st.Strudel.Materialize.Click_time.expansions
          st.Strudel.Materialize.Click_time.queries
          st.Strudel.Materialize.Click_time.cache_hits
          st.Strudel.Materialize.Click_time.materialized_nodes
          st.Strudel.Materialize.Click_time.materialized_edges
          st.Strudel.Materialize.Click_time.peak_live)
  in
  Cmd.v
    (Cmd.info "browse"
       ~doc:"Simulate click-time browsing of an example site.")
    Term.(const run $ which_arg $ clicks_arg $ seed_arg $ no_cache_arg)

(* --- serve: the strudeld HTTP daemon --- *)

let serve_cmd =
  let which_arg =
    Arg.(value & pos 0 (enum [ ("quickstart", `Quickstart);
                               ("homepage", `Homepage); ("cnn", `Cnn);
                               ("org", `Org) ]) `Homepage
         & info [] ~docv:"SITE"
             ~doc:
               "Bundled site to serve (quickstart, homepage, cnn or org — \
                org runs over the warehousing mediator, so refreshes pick \
                up new epochs).  Ignored when --data/--query are given.")
  in
  let data_opt_arg =
    Arg.(value & opt (some file) None
         & info [ "d"; "data" ] ~docv:"DDL" ~doc:"Data graph in DDL syntax.")
  in
  let query_opt_arg =
    Arg.(value & opt (some file) None
         & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Site-definition query.")
  in
  let root_arg =
    Arg.(value & opt string "RootPage"
         & info [ "root" ] ~docv:"FAMILY"
             ~doc:"Skolem family of the root page(s).")
  in
  let template_arg =
    Arg.(value & opt_all (pair ~sep:'=' string file) []
         & info [ "t"; "template" ] ~docv:"COLLECTION=FILE"
             ~doc:"Template for a collection (repeatable).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port_arg =
    Arg.(value & opt int 8080
         & info [ "p"; "port" ] ~docv:"PORT"
             ~doc:"Port to bind (0 picks an ephemeral port).")
  in
  let workers_arg =
    Arg.(value & opt int 4
         & info [ "workers" ] ~docv:"N" ~doc:"Request worker domains.")
  in
  let max_inflight_arg =
    Arg.(value & opt int 64
         & info [ "max-inflight" ] ~docv:"N"
             ~doc:
               "Admitted-connection bound: beyond it new connections are \
                shed with 503 + Retry-After (0 = unbounded).")
  in
  let deadline_arg =
    Arg.(value & opt float 5000.
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Per-request deadline; an overrun answer becomes 503 \
                   (0 disables).")
  in
  let read_timeout_arg =
    Arg.(value & opt float 10_000.
         & info [ "read-timeout-ms" ] ~docv:"MS"
             ~doc:"Slow-client read timeout (408).")
  in
  let write_timeout_arg =
    Arg.(value & opt float 10_000.
         & info [ "write-timeout-ms" ] ~docv:"MS"
             ~doc:"Slow-client write timeout.")
  in
  let drain_deadline_arg =
    Arg.(value & opt float 10_000.
         & info [ "drain-deadline-ms" ] ~docv:"MS"
             ~doc:
               "How long a SIGTERM/SIGINT drain waits for in-flight \
                work before force-closing it (exit 4); negative waits \
                forever.")
  in
  let refresh_every_arg =
    Arg.(value & opt float 0.
         & info [ "refresh-every" ] ~docv:"SECONDS"
             ~doc:
               "Poll the warehouse for source changes this often and \
                swap in the new epoch without restarting (0 = only on \
                SIGHUP).")
  in
  let no_cache_arg =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Disable the render cache.")
  in
  let run which data query root templates host port workers max_inflight
      deadline_ms read_timeout_ms write_timeout_ms drain_deadline_ms
      refresh_every no_cache =
    or_die (fun () ->
        let source, def =
          match (data, query) with
          | Some d, Some q ->
            let g, _ = Ddl.parse ~graph_name:"input" (read_file d) in
            let templates =
              {
                Template.Generator.empty_templates with
                Template.Generator.by_collection =
                  List.map (fun (c, f) -> (c, read_file f)) templates;
              }
            in
            ( Serve.Engine.Static g,
              Strudel.Site.define ~name:"site" ~root_family:root ~templates
                [ ("site", read_file q) ] )
          | None, None -> begin
            match which with
            | `Quickstart ->
              ( Serve.Engine.Static (Sites.Paper_example.data ()),
                Sites.Paper_example.definition )
            | `Homepage ->
              ( Serve.Engine.Static (Sites.Homepage.data ()),
                Sites.Homepage.definition )
            | `Cnn ->
              ( Serve.Engine.Static (Sites.Cnn.data ~articles:200 ()),
                Sites.Cnn.definition )
            | `Org ->
              let _, w = Sites.Org.data ~people:100 ~orgs:6 () in
              (Serve.Engine.Federated w, Sites.Org.definition)
          end
          | _ ->
            Fmt.epr "serve: a custom site needs both --data and --query@.";
            exit 2
        in
        let engine =
          Serve.Engine.create ~cache:(not no_cache) ~workers ~source def
        in
        let config =
          Serve.Daemon.
            {
              default_config with
              workers;
              max_inflight;
              deadline_ms;
              read_timeout_ms;
              write_timeout_ms;
              drain_deadline_ms;
            }
        in
        let daemon =
          Serve.Daemon.create ~config
            ~on_drain:(fun () -> Serve.Engine.set_draining engine true)
            ~degraded:(fun () -> Serve.Engine.degraded engine)
            ~handler:(fun ~worker req -> Serve.Engine.handle ~worker engine req)
            ()
        in
        Serve.Daemon.install_signal_handlers daemon;
        let refresh_now = Atomic.make false in
        (try
           Sys.set_signal Sys.sighup
             (Sys.Signal_handle (fun _ -> Atomic.set refresh_now true))
         with Invalid_argument _ | Sys_error _ -> ());
        let listener, bound =
          Serve.Daemon.tcp_listener ~read_timeout_ms ~write_timeout_ms ~host
            ~port ()
        in
        Fmt.pr "strudeld: %s on http://%s:%d — %d pages, epoch %d@."
          def.Strudel.Site.name host bound
          (Serve.Engine.page_count engine)
          (Serve.Engine.epoch engine);
        (* the refresher: live epoch pickup on a poll interval or SIGHUP,
           off the serving path *)
        let refresher =
          Domain.spawn (fun () ->
              let tick = 0.25 in
              let rec loop elapsed =
                if not (Serve.Daemon.stopping daemon) then begin
                  Unix.sleepf tick;
                  let elapsed = elapsed +. tick in
                  let due = refresh_every > 0. && elapsed >= refresh_every in
                  if Atomic.exchange refresh_now false || due then begin
                    (if Serve.Engine.refresh engine then
                       Fmt.pr "strudeld: epoch %d installed (%d pages)@."
                         (Serve.Engine.epoch engine)
                         (Serve.Engine.page_count engine));
                    loop 0.
                  end
                  else loop elapsed
                end
              in
              loop 0.)
        in
        Serve.Daemon.serve daemon listener;
        Domain.join refresher;
        let st = Serve.Daemon.stats daemon in
        Fmt.pr
          "strudeld: drained — served %d, shed %d, refused %d, client \
           aborts %d, timeouts %d, deadline 503s %d, aborted in-flight %d@."
          st.Serve.Daemon.d_served st.Serve.Daemon.d_shed
          st.Serve.Daemon.d_refused st.Serve.Daemon.d_client_aborts
          st.Serve.Daemon.d_timeouts st.Serve.Daemon.d_deadlines
          st.Serve.Daemon.d_aborted_inflight;
        exit (Serve.Daemon.exit_code daemon))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run strudeld: serve a site over HTTP at click time."
       ~man:
         [ `S Manpage.s_description;
           `P
             "Serves pages by click-time materialization: a page is \
              rendered on first request and cached with its read trace; \
              a warehouse refresh swaps in a new epoch atomically and \
              invalidates exactly the pages whose reads changed.";
           `P
             "Exit codes: 0 clean drain, 3 drained degraded (open \
              breakers, quarantined sources or recorded faults), 4 \
              drain deadline exceeded (in-flight connections aborted), \
              1 fatal error." ])
    Term.(const run $ which_arg $ data_opt_arg $ query_opt_arg $ root_arg
          $ template_arg $ host_arg $ port_arg $ workers_arg
          $ max_inflight_arg $ deadline_arg $ read_timeout_arg
          $ write_timeout_arg $ drain_deadline_arg $ refresh_every_arg
          $ no_cache_arg)

(* --- watch: differential site maintenance, ingest to publish --- *)

let watch_cmd =
  let which_arg =
    Arg.(value & pos 0 (enum [ ("org", `Org); ("custom", `Custom) ]) `Custom
         & info [] ~docv:"SITE"
             ~doc:
               "What to watch: $(b,org) (the bundled mediated org \
                site, polling its warehouse) or $(b,custom) (default; \
                needs $(b,--data), $(b,--query), $(b,--root) and \
                templates — re-reads the data file when its mtime \
                changes).")
  in
  let data_opt_arg =
    Arg.(value & opt (some file) None
         & info [ "data" ] ~docv:"FILE" ~doc:"Data graph (DDL) to watch.")
  in
  let query_opt_arg =
    Arg.(value & opt (some file) None
         & info [ "query" ] ~docv:"FILE" ~doc:"StruQL site-definition query.")
  in
  let root_arg =
    Arg.(value & opt string "Root"
         & info [ "root" ] ~docv:"FAMILY" ~doc:"Root Skolem family.")
  in
  let template_arg =
    Arg.(value & opt_all (pair ~sep:'=' string file) []
         & info [ "t"; "template" ] ~docv:"COLLECTION=FILE"
             ~doc:"Template for a collection (repeatable).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"DIR"
             ~doc:
               "Publish pages below $(docv) (streamed in canonical \
                order on the initial build and on every changed \
                cycle).  Without it, cycles maintain the in-memory \
                site only.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:
               "Parallelism of re-renders and (mediated) source \
                loads, on $(docv) OCaml domains; 0 auto-detects.  \
                Published bytes are identical across values.")
  in
  let interval_arg =
    Arg.(value & opt float 1.0
         & info [ "interval" ] ~docv:"SECONDS"
             ~doc:"How often to poll for changes.")
  in
  let max_cycles_arg =
    Arg.(value & opt int 0
         & info [ "max-cycles" ] ~docv:"N"
             ~doc:
               "Stop after $(docv) poll cycles (0 = run until \
                interrupted).")
  in
  let full_arg =
    Arg.(value & flag
         & info [ "full" ]
             ~doc:
               "Kill switch: disable differential evaluation and \
                re-derive every block each cycle (bytes are identical \
                either way; this trades speed for simplicity when \
                debugging).")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:
               "On exit, print the engine's cumulative delta counters \
                and each block's classification (driven / static / \
                fallback with reason).")
  in
  let run which data query root templates out jobs interval max_cycles full
      stats =
    or_die (fun () ->
        if full then Struql.Exec.delta_enabled := false;
        let jobs =
          if jobs <= 0 then Strudel.Render_pool.auto_jobs () else jobs
        in
        let fault = Fault.ctx () in
        let sink =
          Option.map (fun dir -> Strudel.Render_pool.file_sink ~dir) out
        in
        let session, ingest =
          match which with
          | `Org ->
            let _, w = Sites.Org.data () in
            ( Serve.Watch.create ~jobs ~on_error:Fault.Degrade ~fault ?sink
                ~source:(Serve.Watch.Mediated w) Sites.Org.definition,
              fun s -> Some (Serve.Watch.cycle s) )
          | `Custom ->
            let data_file, query_file =
              match (data, query) with
              | Some d, Some q -> (d, q)
              | _ ->
                Fmt.epr "watch: a custom site needs both --data and --query@.";
                exit 2
            in
            let templates =
              {
                Template.Generator.empty_templates with
                Template.Generator.by_collection =
                  List.map (fun (c, f) -> (c, read_file f)) templates;
              }
            in
            let def =
              Strudel.Site.define ~name:"site" ~root_family:root ~templates
                [ ("site", read_file query_file) ]
            in
            let g, _ = Ddl.parse ~graph_name:"input" (read_file data_file) in
            let session =
              Serve.Watch.create ~jobs ~on_error:Fault.Degrade ~fault ?sink
                ~source:(Serve.Watch.Direct g) def
            in
            let mtime () = (Unix.stat data_file).Unix.st_mtime in
            let last = ref (mtime ()) in
            ( session,
              fun s ->
                let m = mtime () in
                if m = !last then None
                else begin
                  last := m;
                  let old = Struql.Dexec.data_graph (Serve.Watch.engine s) in
                  let fresh, _ =
                    Ddl.parse ~graph_name:"input" (read_file data_file)
                  in
                  let rebased = Delta.rebase ~old fresh in
                  let delta = Delta.diff ~old rebased in
                  Some (Serve.Watch.push ~data:rebased s delta)
                end )
        in
        let b = Serve.Watch.built session in
        Fmt.pr "watch: %s primed — %d pages%s@."
          b.Strudel.Site.def.Strudel.Site.name
          b.Strudel.Site.render_profile.Strudel.Render_pool.rp_pages
          (match out with Some d -> " published to " ^ d | None -> "");
        let degraded = ref false in
        let note_degraded (r : Serve.Watch.cycle_report) =
          if r.Serve.Watch.cy_quarantined <> [] then degraded := true
        in
        let cycles = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          (match ingest session with
           | Some r ->
             note_degraded r;
             if r.Serve.Watch.cy_changed || r.Serve.Watch.cy_quarantined <> []
             then Fmt.pr "%a@." Serve.Watch.pp_report r
           | None -> ());
          incr cycles;
          if max_cycles > 0 && !cycles >= max_cycles then continue_ := false;
          if !continue_ then Unix.sleepf interval
        done;
        if stats then begin
          Fmt.pr "%a@."
            Struql.Dexec.pp_counters
            (Struql.Dexec.counters (Serve.Watch.engine session));
          List.iter
            (fun (path, c) -> Fmt.pr "  %-28s %s@." path c)
            (Struql.Dexec.classes (Serve.Watch.engine session))
        end;
        if Fault.fault_count fault > 0 then degraded := true;
        exit (if !degraded then 3 else 0))
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Watch sources and maintain the published site differentially."
       ~man:
         [ `S Manpage.s_description;
           `P
             "The Delta-StruQL loop: when sources change, the data \
              delta is computed (a mediated warehouse refresh rebases \
              fresh oids onto the previous view; a watched file is \
              re-read and diffed), the site graph is maintained \
              differentially — only drivers whose neighbourhood the \
              delta touches re-derive; aggregate/negation blocks \
              replay in full with the reason recorded — and only \
              pages whose read traces saw the change re-render.  \
              Published bytes are always identical to a cold \
              $(b,strudel build) over the same data.";
           `P
             "Exit codes: 0 every cycle published cleanly, 3 degraded \
              (a source was quarantined or a fault was recorded; the \
              site keeps serving stale data for that source), 2 usage \
              error, 1 fatal error." ])
    Term.(const run $ which_arg $ data_opt_arg $ query_opt_arg $ root_arg
          $ template_arg $ out_arg $ jobs_arg $ interval_arg
          $ max_cycles_arg $ full_arg $ stats_arg)

(* --- repo: inspect a sharded repository --- *)

let repo_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR"
           ~doc:"Repository directory holding MANIFEST and segments.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:
               "Additionally walk every segment's sections (strings, \
                values, adjacency, collections) and report the byte \
                offset of the first corruption found; exit 1 on any.")
  in
  let status_run dir check =
    or_die (fun () ->
        let m = Repository.Shard.load_manifest ~dir in
        Fmt.pr "%a@." Repository.Shard.pp_manifest m;
        if check then begin
          let bad = ref 0 in
          List.iter
            (fun (e : Repository.Shard.entry) ->
              let path = Filename.concat dir e.Repository.Shard.e_file in
              match
                Repository.Segment.validate
                  (Repository.Segment.read ~path ())
              with
              | () -> Fmt.pr "%s: ok@." e.Repository.Shard.e_file
              | exception Repository.Binary.Corrupt (msg, off) ->
                incr bad;
                Fmt.pr "%s: CORRUPT at byte %d: %s@."
                  e.Repository.Shard.e_file off msg
              | exception Sys_error msg ->
                incr bad;
                Fmt.pr "%s: unreadable: %s@." e.Repository.Shard.e_file msg)
            m.Repository.Shard.m_entries;
          if !bad > 0 then begin
            Fmt.epr "%d corrupt segment(s)@." !bad;
            exit 1
          end
        end)
  in
  let status =
    Cmd.v
      (Cmd.info "status"
         ~doc:
           "Show a repository's manifest: epoch, partitioning spec, \
            per-source versions and per-shard segment statistics.")
      Term.(const status_run $ dir_arg $ check_arg)
  in
  Cmd.group
    (Cmd.info "repo" ~doc:"Inspect a sharded repository directory.")
    [ status ]

(* --- demo --- *)

let demo_cmd =
  let which_arg =
    Arg.(value & pos 0 (enum [ ("quickstart", `Quickstart);
                               ("homepage", `Homepage); ("cnn", `Cnn);
                               ("org", `Org) ]) `Quickstart
         & info [] ~docv:"SITE")
  in
  let dir_arg =
    Arg.(value & opt string "_site/demo"
         & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let run which dir =
    or_die (fun () ->
        let built =
          match which with
          | `Quickstart -> Sites.Paper_example.build ()
          | `Homepage -> Sites.Homepage.build ()
          | `Cnn -> Sites.Cnn.build ~articles:100 ()
          | `Org -> Sites.Org.build ~people:50 ~orgs:5 ()
        in
        let rec mkdirs d =
          if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
            mkdirs (Filename.dirname d);
            Sys.mkdir d 0o755
          end
        in
        mkdirs dir;
        Template.Generator.write_site ~dir built.Strudel.Site.site;
        Fmt.pr "%d pages written to %s@."
          (Template.Generator.page_count built.Strudel.Site.site)
          dir)
  in
  Cmd.v (Cmd.info "demo" ~doc:"Build a bundled example site.")
    Term.(const run $ which_arg $ dir_arg)

let () =
  let doc = "STRUDEL: a declarative Web-site management system" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "strudel" ~doc)
          [ load_cmd; query_cmd; explain_cmd; explain_analyze_cmd; check_cmd;
            schema_cmd; decompose_cmd; build_cmd; faults_cmd; verify_cmd;
            lint_cmd; dsan_cmd; browse_cmd; serve_cmd; watch_cmd; repo_cmd;
            demo_cmd ]))
