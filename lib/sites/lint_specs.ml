(** Ready-made {!Analysis.Lint.spec}s for the bundled example sites.

    Shared by the [strudel lint] CLI, the lint test suite, and the
    golden lint snapshots.  Data sizes default to small synthetic
    instances so linting stays fast; callers can scale up (the E19
    benchmark lints org at paper scale). *)

let paper () =
  Analysis.Lint.of_definition ~data:(Paper_example.data ())
    Paper_example.definition

let homepage ?entries ?seed () =
  Analysis.Lint.of_definition
    ~data:(Homepage.data ?entries ?seed ())
    Homepage.definition

let cnn ?(articles = 6) ?(seed = 4) () =
  Analysis.Lint.of_definition ~data:(Cnn.data ~articles ~seed ()) Cnn.definition

let rodin ?(extra_projects = 0) () =
  Analysis.Lint.of_definition
    ~data:(Rodin.data ~extra_projects ())
    Rodin.definition

(** The org site is mediated: the spec also carries the declared
    source names and the source each GAV mapping reads, so the
    mediation layer is linted too (SA005). *)
let org ?seed ?(people = 8) ?(orgs = 2) ?(projects = 3) ?(pubs = 4) () =
  let _sources, w = Org.data ?seed ~people ~orgs ~projects ~pubs () in
  Analysis.Lint.of_definition
    ~data:(Mediator.Warehouse.graph w)
    ~declared_sources:[ "rdb"; "projects"; "bib"; "html" ]
    ~mapping_sources:
      (List.map
         (fun (m : Mediator.Gav.mapping) -> m.Mediator.Gav.source_name)
         Org.mediation_mappings)
    Org.definition

(** Name → spec constructor (default sizes), for CLI and tests. *)
let by_name =
  [
    ("paper", fun () -> paper ());
    ("homepage", fun () -> homepage ());
    ("cnn", fun () -> cnn ());
    ("rodin", fun () -> rodin ());
    ("org", fun () -> org ());
  ]
