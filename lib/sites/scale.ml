(** The scale site: a minimal three-level site over {!Wrappers.Synth}'s
    scale corpus, built to materialize 100k–1M pages.

    The paper's sites top out around a thousand pages; the work-stealing
    render pool targets two orders of magnitude more.  This site keeps
    the per-page work small and uniform — a root index, one page per
    group, one page per item — so builds are render-bound and the
    scheduler's behaviour (speedup, steals, streaming memory) is what a
    measurement sees, not template complexity. *)

let data ?(items = 100_000) ?(groups = 100) ?(seed = 5) () =
  Wrappers.Synth.scale_graph ~seed ~groups ~items ()

let site_query =
  {|INPUT SCALE
{ CREATE Root()
  COLLECT Roots(Root()) }
{ WHERE Items(i), i -> "grp" -> g
  CREATE GroupPage(g), ItemPage(i)
  LINK GroupPage(g) -> "Name" -> g,
       GroupPage(g) -> "Item" -> ItemPage(i),
       ItemPage(i) -> "Group" -> GroupPage(g),
       Root() -> "Group" -> GroupPage(g)
  COLLECT GroupPages(GroupPage(g)), ItemPages(ItemPage(i))
  // Copy every item attribute onto its page
  { WHERE i -> l -> v
    LINK ItemPage(i) -> l -> v }
}
OUTPUT SCALESITE
|}

let root_template =
  {|<h1>Scale corpus</h1>
<SFMTLIST @Group ORDER=ascend KEY=Name>
|}

let group_template =
  {|<h1><SFMT @Name></h1>
<SFMTLIST @Item ORDER=ascend KEY=title>
|}

let item_template =
  {|<h1><SFMT @title></h1>
<SIF @body != NULL><p><SFMT @body></p></SIF>
<SIF @tag != NULL><p><i><SFMT @tag></i></p></SIF>
<p><SFMT @Group LINK="Up"></p>
|}

let templates : Template.Generator.template_set =
  {
    Template.Generator.by_object = [];
    by_collection =
      [
        ("Roots", root_template);
        ("GroupPages", group_template);
        ("ItemPages", item_template);
      ];
    named = [];
  }

let definition =
  Strudel.Site.define ~name:"SCALESITE" ~root_family:"Root" ~templates
    [ ("site", site_query) ]

(** [items + groups + 1] pages. *)
let build ?items ?groups ?seed () =
  Strudel.Site.build ~data:(data ?items ?groups ?seed ()) definition
