(** The warehousing mediator (§2.3).

    STRUDEL's prototype materializes the integrated view: data from all
    sources is loaded into the repository, and queries run against the
    warehouse.  The warehouse tracks per-source versions; [refresh]
    re-integrates when any source changed.  Because mediation queries
    are monotone graph constructions, a changed source forces a rebuild
    of the mediated graph (the open problem of incremental view update
    for semistructured data, §6) — but unchanged sources are served
    from their wrapper caches, which is where the real cost sat. *)

open Sgraph

type t = {
  sources : Source.t list;
  mappings : Gav.mapping list;
  options : Struql.Eval.options;
  clock : Fault.Clock.t;
  snapshots : Repository.Store.t option;
  fault : Fault.ctx option;
  mutable graph : Graph.t;
  mutable seen_versions : (string * int) list;
  mutable refreshes : int;  (** number of integrations performed *)
}

let versions sources = List.map (fun s -> (Source.name s, Source.version s)) sources

let integrate_now ~options ~clock ~snapshots ~fault sources mappings =
  match (snapshots, fault) with
  | None, None ->
    (* no fault machinery in play: the pre-fault direct path *)
    Gav.integrate ~options sources mappings
  | _ ->
    Gav.integrate ~options
      ~load:(fun s -> Source.load_with ~clock ?snapshots ?fault s)
      ?fault sources mappings

let create ?(options = Struql.Eval.default_options)
    ?(clock = Fault.Clock.real) ?snapshots ?fault ~sources ~mappings () =
  let g = integrate_now ~options ~clock ~snapshots ~fault sources mappings in
  {
    sources;
    mappings;
    options;
    clock;
    snapshots;
    fault;
    graph = g;
    seen_versions = versions sources;
    refreshes = 1;
  }

let graph w = w.graph
let refresh_count w = w.refreshes

let faults w = match w.fault with Some c -> Fault.reports c | None -> []

let stale w = versions w.sources <> w.seen_versions

(** Re-integrate if any source changed; returns whether a rebuild
    happened. *)
let refresh w =
  if stale w then begin
    w.graph <-
      integrate_now ~options:w.options ~clock:w.clock ~snapshots:w.snapshots
        ~fault:w.fault w.sources w.mappings;
    w.seen_versions <- versions w.sources;
    w.refreshes <- w.refreshes + 1;
    true
  end
  else false

let find_source w name =
  List.find_opt (fun s -> Source.name s = name) w.sources
