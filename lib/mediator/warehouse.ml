(** The warehousing mediator (§2.3).

    STRUDEL's prototype materializes the integrated view: data from all
    sources is loaded into the repository, and queries run against the
    warehouse.  The warehouse tracks per-source versions; [refresh]
    re-integrates when any source changed.  Because mediation queries
    are monotone graph constructions, a changed source forces a rebuild
    of the mediated graph (the open problem of incremental view update
    for semistructured data, §6) — but unchanged sources are served
    from their wrapper caches, which is where the real cost sat.

    The mediated result lives in an immutable {!view} that is swapped
    under a mutex: [refresh] builds the next graph (and, when sharding
    is configured, publishes its segments) entirely off to the side,
    then installs it atomically, so a reader that {!pin}s a view sees
    one consistent integration end to end no matter how many refreshes
    race past it.  With [jobs > 1] the per-source load attempts run in
    parallel across domains; policy resolution (fault recording,
    snapshot persistence) stays sequential in declared-source order. *)

open Sgraph

type outcome =
  | Changed
  | Unchanged
  | Quarantined of string

type source_stat = {
  ss_source : string;
  ss_outcome : outcome;
  ss_duration_ms : float;
  ss_version : int;
}

type view = {
  v_epoch : int;
  v_graph : Graph.t;
  v_shards : Repository.Shard.snapshot option;
}

type t = {
  sources : Source.t list;
  mappings : Gav.mapping list;
  options : Struql.Eval.options;
  clock : Fault.Clock.t;
  snapshots : Repository.Store.t option;
  fault : Fault.ctx option;
  shards : Repository.Shard.config option;
  jobs : int;
  lock : Mutex.t;
  mutable current : view;
  mutable seen_versions : (string * int) list;
  mutable refreshes : int;  (** number of integrations performed *)
  mutable last_stats : source_stat list;
  (* sanitizer identities: field 0 = the view state guarded by [lock]
     ([current]/[seen_versions]/[refreshes]/[last_stats]) *)
  ds_obj : int;
  ds_lock : int;
}

let versions sources = List.map (fun s -> (Source.name s, Source.version s)) sources

(* Whether [s] contributes data this integration didn't already have:
   first integration, or a version bump since the last one. *)
let version_outcome ~prev s =
  let name = Source.name s in
  match List.assoc_opt name prev with
  | Some v when v = Source.version s -> Unchanged
  | _ -> Changed

(* The pre-fault direct attempt: [Source.load] propagates failures, so
   a caught exception is re-raised at settle time (policies are only in
   play when the warehouse carries fault machinery). *)
let attempt_direct s =
  try Source.Fresh (Source.load s) with e -> Source.Load_failed (e, 1)

let settle_direct = function
  | Source.Cached g | Source.Fresh g -> Some g
  | Source.Load_failed (e, _) -> raise e

(* Resolve one attempted load: apply the policy (or re-raise on the
   direct path), and derive its refresh outcome. *)
let settle_one ~direct ~prev ~snapshots ~fault s att dt =
  let r =
    if direct then settle_direct att else Source.settle ?snapshots ?fault s att
  in
  let outcome =
    match att with
    | Source.Load_failed (e, _) -> Quarantined (Printexc.to_string e)
    | Source.Cached _ | Source.Fresh _ -> version_outcome ~prev s
  in
  let stat =
    {
      ss_source = Source.name s;
      ss_outcome = outcome;
      ss_duration_ms = dt;
      ss_version = Source.version s;
    }
  in
  (r, stat)

(* Attempt every source's load in parallel: [jobs] domains, each owning
   a round-robin slice, writing disjoint slots of [results].  Faults
   are neither recorded nor resolved here (that is sequential), but an
   injector shared across domains fires from all of them — injection
   tests should refresh with [jobs = 1]. *)
let attempt_parallel ~jobs ~clock ~fault ~direct sources =
  let srcs = Array.of_list sources in
  let n = Array.length srcs in
  let jobs = max 1 (min jobs n) in
  let results = Array.make n (Source.Load_failed (Exit, 0), 0.) in
  let now () = clock.Fault.Clock.now_ms () in
  (* sanitizer identity: field j = [results.(j)], each written by
     exactly one domain (round-robin striping), read after the joins *)
  let ds_par = Dsan.alloc ~name:"Warehouse.parallel_load" in
  let slice i () =
    let j = ref i in
    while !j < n do
      Dsan.yield ~site:__POS__;
      let s = srcs.(!j) in
      let t0 = now () in
      let att =
        if direct then attempt_direct s else Source.load_attempt ~clock ?fault s
      in
      Dsan.write ~site:__POS__ ds_par !j;
      results.(!j) <- (att, now () -. t0);
      j := !j + jobs
    done
  in
  let workers =
    List.init (jobs - 1) (fun i ->
        let tok = Dsan.fork () in
        let d =
          Domain.spawn (fun () ->
              Dsan.born tok;
              Fun.protect ~finally:(fun () -> Dsan.dying tok) (slice (i + 1)))
        in
        (d, tok))
  in
  slice 0 ();
  List.iter
    (fun (d, tok) ->
      Domain.join d;
      Dsan.joined tok)
    workers;
  if Dsan.enabled () then
    for j = 0 to n - 1 do
      Dsan.read ~site:__POS__ ds_par j
    done;
  results

let integrate_now ~jobs ~prev w_options ~clock ~snapshots ~fault sources mappings
    =
  (* Without fault machinery the warehouse keeps the pre-fault direct
     path: loader failures propagate regardless of policy. *)
  let direct = snapshots = None && fault = None in
  let stats = ref [] in
  let load =
    if jobs > 1 then begin
      (* Eager: every declared source is attempted (in parallel), then
         settled sequentially in declared order, even ones no mapping
         ends up consulting. *)
      let results = attempt_parallel ~jobs ~clock ~fault ~direct sources in
      let tbl = Hashtbl.create 16 in
      List.iteri
        (fun i s ->
          let att, dt = results.(i) in
          let r, stat = settle_one ~direct ~prev ~snapshots ~fault s att dt in
          stats := stat :: !stats;
          Hashtbl.replace tbl (Source.name s) r)
        sources;
      fun s ->
        match Hashtbl.find_opt tbl (Source.name s) with
        | Some r -> r
        | None -> None
    end
    else
      (* Lazy: only sources the mappings consult are attempted, in
         consultation order — exactly the sequential behavior. *)
      fun s ->
        let t0 = clock.Fault.Clock.now_ms () in
        let att =
          if direct then attempt_direct s
          else Source.load_attempt ~clock ?fault s
        in
        let dt = clock.Fault.Clock.now_ms () -. t0 in
        let r, stat = settle_one ~direct ~prev ~snapshots ~fault s att dt in
        stats := stat :: !stats;
        r
  in
  let g = Gav.integrate ~options:w_options ~load ?fault sources mappings in
  (* Report stats in declared-source order whatever order loads ran. *)
  let stats =
    List.filter_map
      (fun s ->
        List.find_opt (fun st -> st.ss_source = Source.name s) !stats)
      sources
  in
  (g, stats)

(* Build the next view off to the side: publish shard segments for the
   fresh graph (when configured), never touching the live view. *)
let build_view w ~epoch ~source_versions g =
  let shards =
    match w.shards with
    | None -> None
    | Some cfg ->
      Some (Repository.Shard.publish cfg ~epoch ~sources:source_versions g)
  in
  { v_epoch = epoch; v_graph = g; v_shards = shards }

let create ?(options = Struql.Eval.default_options)
    ?(clock = Fault.Clock.real) ?snapshots ?fault ?shards ?(jobs = 1) ~sources
    ~mappings () =
  let g, stats =
    integrate_now ~jobs ~prev:[] options ~clock ~snapshots ~fault sources
      mappings
  in
  let vs = versions sources in
  let w =
    {
      sources;
      mappings;
      options;
      clock;
      snapshots;
      fault;
      shards;
      jobs;
      lock = Mutex.create ();
      current = { v_epoch = 1; v_graph = g; v_shards = None };
      seen_versions = vs;
      refreshes = 1;
      last_stats = stats;
      ds_obj = Dsan.alloc ~name:"Warehouse";
      ds_lock = Dsan.lock_id ~name:"Warehouse.lock";
    }
  in
  let v = build_view w ~epoch:1 ~source_versions:vs g in
  Mutex.protect w.lock (fun () ->
      Dsan.acquire ~site:__POS__ w.ds_lock;
      Dsan.write ~site:__POS__ w.ds_obj 0;
      w.current <- v;
      Dsan.release ~site:__POS__ w.ds_lock);
  w

(* Every access to the lock-guarded view state goes through here so the
   sanitizer sees the acquire/release edges Mutex.protect provides. *)
let locked ~site ~wr w f =
  Mutex.protect w.lock (fun () ->
      Dsan.acquire ~site w.ds_lock;
      if wr then Dsan.write ~site w.ds_obj 0 else Dsan.read ~site w.ds_obj 0;
      Fun.protect ~finally:(fun () -> Dsan.release ~site w.ds_lock) f)

let pin w = locked ~site:__POS__ ~wr:false w (fun () -> w.current)
let view_epoch v = v.v_epoch
let view_graph v = v.v_graph
let view_shards v = v.v_shards
let graph w = (pin w).v_graph

let refresh_count w =
  locked ~site:__POS__ ~wr:false w (fun () -> w.refreshes)

let last_refresh w =
  locked ~site:__POS__ ~wr:false w (fun () -> w.last_stats)

let shard_config w = w.shards

let faults w = match w.fault with Some c -> Fault.reports c | None -> []

let stale w =
  versions w.sources
  <> locked ~site:__POS__ ~wr:false w (fun () -> w.seen_versions)

(** Re-integrate if any source changed; returns whether a rebuild
    happened.  The new graph (and shard snapshot) is built completely
    before the view swap, so concurrent readers holding {!pin}ned views
    never observe a half-refreshed mix. *)
let refresh ?jobs w =
  if stale w then begin
    let jobs = match jobs with Some j -> j | None -> w.jobs in
    let prev = locked ~site:__POS__ ~wr:false w (fun () -> w.seen_versions) in
    let g, stats =
      integrate_now ~jobs ~prev w.options ~clock:w.clock
        ~snapshots:w.snapshots ~fault:w.fault w.sources w.mappings
    in
    let vs = versions w.sources in
    let epoch = locked ~site:__POS__ ~wr:false w (fun () -> w.refreshes) + 1 in
    let view = build_view w ~epoch ~source_versions:vs g in
    locked ~site:__POS__ ~wr:true w (fun () ->
        w.current <- view;
        w.seen_versions <- vs;
        w.refreshes <- w.refreshes + 1;
        w.last_stats <- stats);
    true
  end
  else false

(** Delta refresh ([strudel watch]'s ingest leg): re-integrate if
    stale, {e rebase} the fresh graph onto the previous view's oids
    (matching nodes by name, which Skolem terms and wrapper keys keep
    stable across integrations), install the rebased graph as the new
    view, and return the structural delta between the two views.
    [None] when no source changed; [Some Delta.empty] when sources
    bumped versions without changing content.  Fault policies
    (quarantine / retry / stale-snapshot) apply exactly as in
    {!refresh} — a quarantined source serves its previous data, so its
    objects simply do not appear in the delta. *)
let refresh_delta ?jobs w =
  if stale w then begin
    let jobs = match jobs with Some j -> j | None -> w.jobs in
    let old = (pin w).v_graph in
    let prev = locked ~site:__POS__ ~wr:false w (fun () -> w.seen_versions) in
    let g, stats =
      integrate_now ~jobs ~prev w.options ~clock:w.clock
        ~snapshots:w.snapshots ~fault:w.fault w.sources w.mappings
    in
    let rebased = Sgraph.Delta.rebase ~old g in
    let delta = Sgraph.Delta.diff ~old rebased in
    let vs = versions w.sources in
    let epoch = locked ~site:__POS__ ~wr:false w (fun () -> w.refreshes) + 1 in
    let view = build_view w ~epoch ~source_versions:vs rebased in
    locked ~site:__POS__ ~wr:true w (fun () ->
        w.current <- view;
        w.seen_versions <- vs;
        w.refreshes <- w.refreshes + 1;
        w.last_stats <- stats);
    Some delta
  end
  else None

let find_source w name =
  List.find_opt (fun s -> Source.name s = name) w.sources

(* --- Bridging shard snapshots to the evaluator --- *)

let shard_ctx_of_snapshot ?(jobs = 1) (sn : Repository.Shard.snapshot) =
  {
    Struql.Exec.sc_shards =
      List.map
        (fun (sh : Repository.Shard.shard) ->
          {
            Struql.Exec.sv_name = sh.Repository.Shard.sh_entry.e_name;
            sv_graph = sh.sh_graph;
            sv_collections = sh.sh_entry.e_collections;
          })
        sn.Repository.Shard.sn_shards;
    sc_union = sn.Repository.Shard.sn_union;
    sc_jobs = jobs;
  }

(** The evaluator-facing view of a pinned integration's shards; [None]
    when the warehouse does not shard.  The context's union is the
    view's graph itself (shards share its oids), so it is valid for any
    query run against [view_graph]. *)
let shard_ctx_of_view ?jobs v =
  Option.map (shard_ctx_of_snapshot ?jobs) v.v_shards

let pp_outcome ppf = function
  | Changed -> Fmt.string ppf "changed"
  | Unchanged -> Fmt.string ppf "unchanged"
  | Quarantined why -> Fmt.pf ppf "quarantined (%s)" why

let pp_stats ppf stats =
  List.iter
    (fun st ->
      Fmt.pf ppf "  %-20s v%-3d %8.2fms  %a@." st.ss_source st.ss_version
        st.ss_duration_ms pp_outcome st.ss_outcome)
    stats
