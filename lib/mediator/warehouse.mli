(** The warehousing mediator (§2.3).

    STRUDEL's prototype materializes the integrated view: data from all
    sources is loaded into the repository and queries run against the
    warehouse.  The warehouse tracks per-source versions; {!refresh}
    re-integrates when any source changed, serving unchanged sources
    from their wrapper caches. *)

open Sgraph

type t

val create :
  ?options:Struql.Eval.options ->
  ?clock:Fault.Clock.t ->
  ?snapshots:Repository.Store.t ->
  ?fault:Fault.ctx ->
  sources:Source.t list ->
  mappings:Gav.mapping list ->
  unit ->
  t
(** Builds the initial integration.  With [snapshots] and/or [fault],
    sources load through {!Source.load_with} — honouring each source's
    fault policy (retry/backoff on [clock], skip, or stale-snapshot
    fallback persisted in [snapshots]) — and integration faults are
    recorded in [fault]; without either, loads are direct and the first
    failure aborts, exactly as before. *)

val graph : t -> Graph.t
(** The current mediated graph. *)

val stale : t -> bool
(** Whether any source changed since the last integration. *)

val refresh : t -> bool
(** Re-integrate if stale; returns whether a rebuild happened. *)

val refresh_count : t -> int
(** Number of integrations performed (including the initial one). *)

val faults : t -> Fault.report list
(** Reports recorded in the warehouse's fault context, oldest first
    ([[]] without a context). *)

val find_source : t -> string -> Source.t option
