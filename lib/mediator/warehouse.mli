(** The warehousing mediator (§2.3).

    STRUDEL's prototype materializes the integrated view: data from all
    sources is loaded into the repository and queries run against the
    warehouse.  The warehouse tracks per-source versions; {!refresh}
    re-integrates when any source changed, serving unchanged sources
    from their wrapper caches.

    Each integration produces an immutable {!view} installed by an
    atomic swap: site builds, incremental rebuilds, and click-time
    browsing {!pin} a view once and work against that snapshot while
    refreshes proceed off to the side — snapshot isolation, never a
    half-refreshed mix.  With a {!Repository.Shard.config} the fresh
    graph is also published as mmap-able shard segments (and the shard
    manifest swapped) before the view goes live. *)

open Sgraph

type t

(** Per-source outcome of the most recent integration. *)
type outcome =
  | Changed  (** the source's version bumped and its data was reloaded *)
  | Unchanged  (** served from the wrapper cache *)
  | Quarantined of string
      (** the load failed; the fault policy skipped the source or served
          a stale snapshot (the reason is the last load exception) *)

type source_stat = {
  ss_source : string;
  ss_outcome : outcome;
  ss_duration_ms : float;  (** load-attempt wall time on the warehouse clock *)
  ss_version : int;
}

(** One consistent integration: the mediated graph plus, when sharding
    is configured, the shard snapshot published for it. *)
type view

val create :
  ?options:Struql.Eval.options ->
  ?clock:Fault.Clock.t ->
  ?snapshots:Repository.Store.t ->
  ?fault:Fault.ctx ->
  ?shards:Repository.Shard.config ->
  ?jobs:int ->
  sources:Source.t list ->
  mappings:Gav.mapping list ->
  unit ->
  t
(** Builds the initial integration.  With [snapshots] and/or [fault],
    sources load through {!Source.load_with} — honouring each source's
    fault policy (retry/backoff on [clock], skip, or stale-snapshot
    fallback persisted in [snapshots]) — and integration faults are
    recorded in [fault]; without either, loads are direct and the first
    failure aborts, exactly as before.

    [shards] makes every integration publish the mediated graph as
    segment files under the config's directory (epoch = refresh count).
    [jobs] (default [1]) is the default parallelism of {!refresh}:
    above 1, {e all} declared sources are load-attempted eagerly across
    that many domains, then settled sequentially in declared order.
    Fault injectors and virtual clocks are not domain-safe; tests using
    them should keep [jobs = 1]. *)

val pin : t -> view
(** The current view, read atomically.  Everything reached through the
    returned view is immutable with respect to refreshes: build pages
    against it for as long as needed. *)

val view_epoch : view -> int
val view_graph : view -> Graph.t
val view_shards : view -> Repository.Shard.snapshot option

val graph : t -> Graph.t
(** [view_graph (pin w)]. *)

val stale : t -> bool
(** Whether any source changed since the last integration. *)

val refresh : ?jobs:int -> t -> bool
(** Re-integrate if stale; returns whether a rebuild happened.  The new
    graph (and shard snapshot) is built completely before the view
    swap, so concurrent readers holding pinned views never observe a
    half-refreshed mix.  [jobs] overrides the warehouse default for
    this refresh only. *)

val refresh_delta : ?jobs:int -> t -> Delta.t option
(** Delta refresh: like {!refresh}, but the freshly integrated graph is
    {!Sgraph.Delta.rebase}d onto the previous view's oids (nodes
    matched by name) before the view swap, and the structural
    {!Sgraph.Delta.diff} between the two views is returned — the
    change currency [strudel watch] feeds to the differential
    evaluator.  [None] when no source changed ([refresh] would have
    returned [false]); [Some Delta.empty] when versions bumped without
    a content change.  Source fault policies apply as in {!refresh}:
    a quarantined source serves its previous data and contributes
    nothing to the delta. *)

val refresh_count : t -> int
(** Number of integrations performed (including the initial one). *)

val last_refresh : t -> source_stat list
(** Per-source outcomes of the most recent integration, in declared
    source order.  With [jobs = 1] only sources some mapping consulted
    appear; with [jobs > 1] every declared source does. *)

val shard_config : t -> Repository.Shard.config option

val faults : t -> Fault.report list
(** Reports recorded in the warehouse's fault context, oldest first
    ([[]] without a context). *)

val find_source : t -> string -> Source.t option

val shard_ctx_of_snapshot :
  ?jobs:int -> Repository.Shard.snapshot -> Struql.Exec.shard_ctx
(** The evaluator-facing view of a shard snapshot ([jobs] defaults to
    [1]); its union is the snapshot's union graph. *)

val shard_ctx_of_view : ?jobs:int -> view -> Struql.Exec.shard_ctx option
(** Same, for a pinned integration; [None] when the warehouse does not
    shard.  Valid for queries run against [view_graph] (the shards
    share its oids). *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_stats : Format.formatter -> source_stat list -> unit
(** The [strudel build --stats] / [strudel repo status] table body. *)
