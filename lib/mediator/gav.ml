(** Global-as-view mediation (§2.3).

    In GAV, each relation (here: collection) of the mediated schema is
    defined by a query over the sources: a StruQL query reading the
    source's graph and creating objects/edges in the mediated graph.
    The paper chose GAV because StruQL extends to it directly and the
    set of sources was small and stable.

    A {!mapping} pairs a source with the StruQL query that translates
    it; integration runs all mappings into one mediated graph under a
    shared Skolem scope, so mappings from different sources that create
    the same Skolem term (e.g. [Person(login)]) converge on the same
    mediated object — this is how overlapping sources fuse. *)

open Sgraph
open Struql

type mapping = {
  source_name : string;
  query : Ast.query;
}

exception Unknown_source of string * string list
(** the mapping's source name, the declared source names *)

let mapping ~source query = { source_name = source; query }

let mapping_of_string ~source q_src =
  { source_name = source; query = Parser.parse q_src }

(** The identity mapping: copy every collection member and its
    attributes into the mediated graph under Skolem function [fn].
    Membership is copied even for members without attributes. *)
let copy_collection ~source ~collection ?(fn = collection ^ "Obj") () =
  let q =
    Printf.sprintf
      {| { WHERE %s(x)
           CREATE %s(x)
           COLLECT %s(%s(x)) }
         { WHERE %s(x), x -> l -> v
           CREATE %s(x)
           LINK %s(x) -> l -> v }
         OUTPUT mediated |}
      collection fn collection fn collection fn fn
  in
  { source_name = source; query = Parser.parse q }

(** Run the mappings over their sources into a fresh mediated graph.
    All mappings share one Skolem scope, so Skolem terms built from the
    same source objects fuse.  A mapping whose source is ["*"] runs
    over the union of all sources — the form a cross-source join (e.g.
    project members referenced by login) takes in GAV.

    [load] plugs in a fault-aware loader (typically
    {!Source.load_with} partially applied): a source it yields [None]
    for is unavailable — its mappings are skipped and ["*"] becomes
    the union of the sources that {e did} load.  Each source loads at
    most once per integration.  With a [fault] context, a mapping over
    an unknown source is recorded and skipped instead of aborting. *)
let integrate ?(options = Eval.default_options) ?(graph_name = "mediated")
    ?load ?fault (sources : Source.t list) (mappings : mapping list) : Graph.t
    =
  let load =
    match load with Some f -> f | None -> fun s -> Some (Source.load s)
  in
  let loaded : (string, Graph.t option) Hashtbl.t = Hashtbl.create 8 in
  let get_source s =
    match Hashtbl.find_opt loaded (Source.name s) with
    | Some r -> r
    | None ->
      let r = load s in
      Hashtbl.add loaded (Source.name s) r;
      r
  in
  let mediated = Graph.create ~name:graph_name () in
  let scope = Skolem.create () in
  let merged = lazy (
    let g = Graph.create ~name:"all-sources" () in
    List.iter
      (fun s ->
        match get_source s with
        | Some src -> Graph.merge_into ~dst:g ~src
        | None -> ())
      sources;
    g)
  in
  List.iter
    (fun m ->
      let g =
        if m.source_name = "*" then Some (Lazy.force merged)
        else
          match
            List.find_opt (fun s -> Source.name s = m.source_name) sources
          with
          | None -> (
            match fault with
            | None ->
              raise
                (Unknown_source (m.source_name, List.map Source.name sources))
            | Some c ->
              Fault.record c
                (Fault.report ~stage:Fault.Integrate ~source:m.source_name
                   ~location:"mapping" ~cause:"unknown source" ());
              None)
          | Some s -> get_source s
      in
      match g with
      | None -> ()  (* unavailable source: its mappings are skipped *)
      | Some g -> ignore (Eval.run ~options ~scope ~into:mediated g m.query))
    mappings;
  mediated
