(** Global-as-view mediation (§2.3).

    In GAV, each collection of the mediated schema is defined by a
    query over the sources: a StruQL query reading a source graph and
    constructing objects/edges in the mediated graph.  The paper chose
    GAV because StruQL extends to it directly and the set of sources
    was small and stable.  All mappings of one integration share a
    Skolem scope, so mappings that build the same Skolem term converge
    on one mediated object — the fusion mechanism for overlapping
    sources. *)

open Sgraph

type mapping = {
  source_name : string;
      (** a source's name, or ["*"] for the union of all sources
          (cross-source joins) *)
  query : Struql.Ast.query;
}

exception Unknown_source of string * string list
(** A mapping (run without a fault context) names a source that is not
    among the declared sources: the offending name and the declared
    names.  With a fault context the mapping is recorded and skipped
    instead. *)

val mapping : source:string -> Struql.Ast.query -> mapping
val mapping_of_string : source:string -> string -> mapping

val copy_collection :
  source:string -> collection:string -> ?fn:string -> unit -> mapping
(** The identity mapping: copy every member of the collection and its
    attributes into the mediated graph under Skolem function [fn]
    (default [<collection>Obj]); membership is copied even for members
    without attributes. *)

val integrate :
  ?options:Struql.Eval.options ->
  ?graph_name:string ->
  ?load:(Source.t -> Graph.t option) ->
  ?fault:Fault.ctx ->
  Source.t list ->
  mapping list ->
  Graph.t
(** Run the mappings over their sources into a fresh mediated graph.
    [load] plugs in a fault-aware loader (typically
    {!Source.load_with} partially applied); a source it yields [None]
    for is unavailable — its mappings are skipped and ["*"] unions only
    the sources that did load.  Each source loads at most once per
    integration.  With [fault], a mapping over an unknown source is
    recorded and skipped instead of aborting. *)
