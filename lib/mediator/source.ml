(** Data-source abstraction for the mediator.

    A source wraps an external data set (a relational table, a BibTeX
    file, structured files, HTML pages) behind a loader producing a
    graph.  Sources carry a version counter so the warehouse can detect
    staleness, and may declare {e limited access patterns} — attribute
    names that must be bound before the source can be queried, the
    situation §2.4 says is common for semistructured sources and that
    the cost-based optimizer must honour. *)

open Sgraph

type access_pattern = {
  requires_bound : string list;
      (** attributes that must be bound to access the source *)
}

type t = {
  name : string;
  mutable version : int;
  mutable loader : unit -> Graph.t;
  access : access_pattern option;
  mutable cached : (int * Graph.t) option;
  mutable policy : Fault.Policy.t;
  mutable snap_version : int option;
      (** version of the last load that succeeded (and, when a snapshot
          store is in play, of the persisted snapshot) *)
}

let make ?access ?(policy = Fault.Policy.fail_fast) ~name loader =
  {
    name;
    version = 0;
    loader;
    access;
    cached = None;
    policy;
    snap_version = None;
  }

let of_graph ?access ?policy ~name g = make ?access ?policy ~name (fun () -> g)

let name s = s.name
let version s = s.version
let policy s = s.policy
let set_policy s p = s.policy <- p

(** Replace the source's contents (a new export arrived); bumps the
    version so the warehouse knows to refresh. *)
let update s loader =
  s.loader <- loader;
  s.version <- s.version + 1

let load s =
  match s.cached with
  | Some (v, g) when v = s.version -> g
  | _ ->
    let g = s.loader () in
    s.cached <- Some (s.version, g);
    s.snap_version <- Some s.version;
    g

let snapshot_name s = "source:" ^ s.name

let record_fault fault ~source ~cause =
  match fault with
  | None -> ()
  | Some c ->
    Fault.record c
      (Fault.report ~stage:Fault.Ingest ~source ~location:"load" ~cause ())

(** The first, parallel-safe phase of a fault-aware load: cache check,
    then injection + retry/backoff.  Only this source's own fields are
    mutated (cache, snap version), so distinct sources can attempt
    concurrently; nothing is recorded into the fault context and no
    store is written — that is {!settle}'s job, which stays on the
    caller's thread. *)
type loaded =
  | Cached of Graph.t
  | Fresh of Graph.t
  | Load_failed of exn * int  (** last exception, attempts made *)

let load_attempt ?(clock = Fault.Clock.real) ?fault s =
  match s.cached with
  | Some (v, g) when v = s.version -> Cached g
  | _ -> (
    let inject = Fault.inject fault in
    let attempt_load ~attempt =
      Fault.Inject.fire inject (Fault.Inject.Load (s.name, attempt));
      s.loader ()
    in
    match
      Fault.Retry.run ~clock ~retry:s.policy.Fault.Policy.retry attempt_load
    with
    | Ok g ->
      s.cached <- Some (s.version, g);
      s.snap_version <- Some s.version;
      Fresh g
    | Error (e, attempts) -> Load_failed (e, attempts))

(** The second, sequential phase: persist a fresh load's snapshot and
    resolve a failure under the source's policy. *)
let settle ?snapshots ?fault s = function
  | Cached g -> Some g
  | Fresh g ->
    (match snapshots with
     | Some store ->
       Repository.Store.put store (Graph.copy ~name:(snapshot_name s) g)
     | None -> ());
    Some g
  | Load_failed (e, attempts) -> (
    let cause why =
      Printf.sprintf "load failed after %d attempt(s): %s%s" attempts
        (Printexc.to_string e) why
    in
    match s.policy.Fault.Policy.on_failure with
    | Fault.Policy.Fail_fast -> raise e
    | Fault.Policy.Skip_source ->
      record_fault fault ~source:s.name ~cause:(cause "; source skipped");
      None
    | Fault.Policy.Stale age -> (
      let snapshot =
        match s.snap_version with
        | Some v when s.version - v <= age -> (
          match s.cached with
          | Some (cv, g) when cv = v -> Some (v, g)
          | _ -> (
            match snapshots with
            | Some store -> (
              match Repository.Store.get_opt store (snapshot_name s) with
              | Some g -> Some (v, g)
              | None -> None)
            | None -> None))
        | _ -> None
      in
      match snapshot with
      | Some (v, g) ->
        record_fault fault ~source:s.name
          ~cause:
            (cause
               (Printf.sprintf "; serving stale snapshot (%d version(s) behind)"
                  (s.version - v)));
        Some g
      | None ->
        record_fault fault ~source:s.name
          ~cause:(cause "; no usable snapshot; source skipped");
        None))

(** Load under the source's fault policy: each attempt first gives the
    (optional) injector a chance to fail it, then runs the loader;
    failures retry with exponential backoff on [clock] until the policy
    exhausts.  On success the graph is cached and — given a [snapshots]
    store — persisted as the source's last good snapshot.  On
    exhaustion, [Fail_fast] re-raises (the pre-fault behavior),
    [Skip_source] records the fault and yields [None], and [Stale age]
    serves the last good snapshot if it is at most [age] versions
    behind, preferring the in-memory copy over the store's. *)
let load_with ?clock ?snapshots ?fault s =
  settle ?snapshots ?fault s (load_attempt ?clock ?fault s)

let requires_bound s =
  match s.access with Some a -> a.requires_bound | None -> []
