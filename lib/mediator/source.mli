(** Data-source abstraction for the mediator.

    A source wraps an external data set (a relational table, a BibTeX
    file, structured files, HTML pages) behind a loader producing a
    graph.  Sources carry a version counter so the warehouse detects
    staleness, and may declare {e limited access patterns} — inputs
    that must be bound before the source can be queried (§2.4), which
    the planner honours via [Plan.plan ~limited]. *)

open Sgraph

type access_pattern = {
  requires_bound : string list;
      (** attributes that must be bound to access the source *)
}

type t

val make :
  ?access:access_pattern -> ?policy:Fault.Policy.t -> name:string ->
  (unit -> Graph.t) -> t
(** [policy] governs what {!load_with} does when the loader fails:
    retry/backoff, then fail-fast (the default), skip the source, or
    serve a stale snapshot. *)

val of_graph :
  ?access:access_pattern -> ?policy:Fault.Policy.t -> name:string ->
  Graph.t -> t

val name : t -> string
val version : t -> int

val policy : t -> Fault.Policy.t
val set_policy : t -> Fault.Policy.t -> unit

val update : t -> (unit -> Graph.t) -> unit
(** Replace the source's contents (a new export arrived); bumps the
    version so the warehouse knows to refresh. *)

val load : t -> Graph.t
(** Load through the per-version cache; loader failures propagate (the
    pre-fault behavior, regardless of policy). *)

(** Outcome of a load attempt, before the fault policy is applied. *)
type loaded =
  | Cached of Graph.t  (** wrapper cache already holds this version *)
  | Fresh of Graph.t  (** loader succeeded (possibly after retries) *)
  | Load_failed of exn * int  (** last exception, attempts made *)

val load_attempt : ?clock:Fault.Clock.t -> ?fault:Fault.ctx -> t -> loaded
(** The first, parallel-safe phase of {!load_with}: cache check, then
    injection + retry/backoff.  Mutates only this source's own fields,
    so distinct sources may attempt concurrently (the warehouse's
    parallel refresh does); records nothing into the fault context and
    writes no snapshot store. *)

val settle :
  ?snapshots:Repository.Store.t -> ?fault:Fault.ctx -> t -> loaded ->
  Graph.t option
(** The second, sequential phase: persist a [Fresh] load's snapshot and
    resolve a [Load_failed] under the source's policy (re-raise, skip,
    or serve stale), recording faults.  [load_with] is exactly
    [settle] ∘ [load_attempt]. *)

val load_with :
  ?clock:Fault.Clock.t -> ?snapshots:Repository.Store.t ->
  ?fault:Fault.ctx -> t -> Graph.t option
(** Load under the source's fault policy: failed attempts (including
    injected [Load] faults from the context's injector) retry with
    exponential backoff on [clock] until the policy exhausts; a
    successful load is cached and, given [snapshots], persisted as the
    source's last good snapshot (graph name ["source:<name>"]).  On
    exhaustion, [Fail_fast] re-raises; [Skip_source] records a fault
    and yields [None]; [Stale age] serves the last good snapshot when
    it is at most [age] versions behind (recording how stale it is),
    else records and yields [None]. *)

val requires_bound : t -> string list
