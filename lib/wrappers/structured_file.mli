(** Structured-file wrapper — the stand-in for the paper's "simple AWK
    programs that map structured files ... into objects in a data
    graph".

    Blocks of [key: value] lines separated by blank lines; repeated
    keys yield multiple attribute edges; [id:] names the object, [in:]
    adds collection memberships, [&name] references other blocks,
    [kind "path"] prefixes give typed file values. *)

open Sgraph

exception Structured_error of string * int  (** message, line *)

val load_into : ?fault:Fault.ctx -> Graph.t -> string -> Oid.t list
(** Load blocks into an existing graph; returns created oids in file
    order.  References resolve after all blocks load.  Strict mode (no
    [fault]) raises {!Structured_error} on a line without a [':']
    separator; with a {!Fault.ctx} such lines — and injected per-block
    parse faults — are quarantined as structured reports and the rest
    of the file loads. *)

val load :
  ?fault:Fault.ctx -> ?graph_name:string -> string -> Graph.t * Oid.t list
