(** Relational wrapper: loads CSV exports of relational tables into the
    graph model (the paper's "small relational databases that contain
    personnel and organizational data").

    Each row becomes an object in a collection named after the table;
    non-empty cells become attribute edges (values read with
    {!Sgraph.Value.of_literal}); empty cells produce {e no} edge — the
    natural encoding of missing attributes.  [&key] cells become object
    references; [;]-separated cells are multi-valued.

    Strict mode (no [fault]) aborts on the first malformed record with
    line and column; with a {!Fault.ctx} the wrapper recovers — bad
    records (including ragged rows and injected parse faults) are
    quarantined as structured reports and the rest of the file loads. *)

open Sgraph

exception Csv_error of string * int * int  (** message, line, column *)

val parse_rows : ?fault:Fault.ctx -> string -> string list list
(** RFC-4180-ish: quoted fields may contain commas, newlines and
    doubled quotes.  With [fault], a malformed row is quarantined and
    the scanner resynchronizes at the next row boundary. *)

type table = {
  name : string;
  headers : string list;
  rows : string list list;
}

val table_of_string : ?fault:Fault.ctx -> name:string -> string -> table
(** With [fault], additionally quarantines ragged rows (field count ≠
    header count) and honours injected per-record parse faults; strict
    mode keeps the legacy tolerance for ragged rows. *)

val load_tables : ?key:string -> Graph.t -> table list -> Oid.t list list
(** Load several tables at once: all rows are created before any cell
    loads, so [&name] references may point forwards and across tables.
    [key] names the column giving object names (default: first).
    Returns created oids per table, in row order. *)

val load_table : ?key:string -> Graph.t -> table -> Oid.t list

val load :
  ?fault:Fault.ctx -> ?graph_name:string -> ?key:string -> name:string ->
  string -> Graph.t * Oid.t list
