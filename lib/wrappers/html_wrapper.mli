(** HTML wrapper: maps existing HTML pages into the data graph (the
    paper's hand-written wrappers for plain HTML pages — the route used
    to build the CNN demonstration site from crawled pages).

    Structural extraction, not a full parse: recovers [<title>],
    headings, anchors ([href] + anchor text) and the visible text,
    producing an object with [title], [heading], [link] (nested
    objects with [href]/[anchor]), [image] and [text] attributes. *)

open Sgraph

val strip_tags : string -> string
(** Remove markup and collapse whitespace. *)

val load_page : ?collection:string -> Graph.t -> name:string -> string -> Oid.t
(** Wrap one HTML page as an object of [collection] (default
    ["Pages"]). *)

val load_pages :
  ?fault:Fault.ctx -> ?graph_name:string -> ?collection:string ->
  (string * string) list -> Graph.t * Oid.t list
(** With a {!Fault.ctx}, a page whose extraction fails — or whose
    injected per-page parse fault fires — is quarantined as a
    structured report and skipped; the returned oids then cover only
    the pages that loaded. *)
