(** Relational wrapper: loads CSV exports of relational tables into the
    graph model (the paper's "small relational databases that contain
    personnel and organizational data").

    Each row becomes an object in a collection named after the table;
    each non-empty cell becomes an attribute edge whose value is read
    with {!Sgraph.Value.of_literal}.  Empty cells produce {e no} edge —
    the natural encoding of missing attributes in the semistructured
    model.  Cells referencing other rows ([&key]) become object
    references (foreign keys).

    Errors carry line {e and column}.  In the default (strict) mode a
    malformed record aborts the load, as a database loader would; with
    a {!Fault.ctx} the wrapper {e recovers}: the bad record is
    quarantined as a structured report (source, location, cause, raw
    excerpt), the scanner resynchronizes at the next row boundary, and
    the remaining records load normally.  Recovering mode additionally
    rejects ragged rows (field count ≠ header count), which strict mode
    tolerates for compatibility with legacy exports. *)

open Sgraph

exception Csv_error of string * int * int  (** message, line, column *)

(* RFC-4180-ish parsing: quoted fields may contain commas, newlines and
   doubled quotes.  Returns each row with the line it starts on. *)
let parse_rows_loc ?fault ~source (src : string) : (string list * int) list =
  let n = String.length src in
  let rows = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let line = ref 1 in
  let col = ref 1 in
  let row_line = ref 1 in
  let row_start = ref 0 in
  let i = ref 0 in
  let in_quotes = ref false in
  let push_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let start_row () =
    row_line := !line;
    row_start := !i
  in
  let push_row () =
    push_field ();
    rows := (List.rev !fields, !row_line) :: !rows;
    fields := [];
    start_row ()
  in
  (* advance consuming one char's worth of position bookkeeping *)
  let step ?(chars = 1) () =
    i := !i + chars;
    col := !col + chars
  in
  let newline () =
    incr line;
    col := 1
  in
  (* Recovery: drop the current (broken) row, resynchronize after the
     next raw newline.  If the error happened inside a quoted field
     that legitimately contains newlines the resync may split it — an
     accepted heuristic, since the quoting state is exactly what broke. *)
  let resync () =
    Buffer.clear buf;
    fields := [];
    in_quotes := false;
    let continue = ref true in
    while !continue && !i < n do
      (match src.[!i] with
       | '\n' ->
         newline ();
         continue := false
       | _ -> incr col);
      incr i
    done;
    start_row ()
  in
  let error msg =
    match fault with
    | None -> raise (Csv_error (msg, !line, !col))
    | Some c ->
      let excerpt_end = min n (!row_start + 120) in
      Fault.record c
        (Fault.report ~stage:Fault.Ingest ~source
           ~location:(Printf.sprintf "line %d, column %d" !line !col)
           ~cause:msg
           ~excerpt:(String.sub src !row_start (excerpt_end - !row_start))
           ());
      resync ()
  in
  start_row ();
  while !i < n do
    let c = src.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && src.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          step ~chars:2 ()
        end
        else begin
          in_quotes := false;
          step ()
        end
      else begin
        Buffer.add_char buf c;
        step ();
        if c = '\n' then newline ()
      end
    end
    else
      match c with
      | '"' ->
        if Buffer.length buf = 0 then begin
          in_quotes := true;
          step ()
        end
        else error "quote inside unquoted field"
      | ',' ->
        push_field ();
        step ()
      | '\r' -> step ()
      | '\n' ->
        (* consume and account the newline first, so the row we push
           keeps its recorded start line while the next row's origin
           (set by [push_row]'s [start_row]) is the new line *)
        incr i;
        newline ();
        push_row ()
      | c ->
        Buffer.add_char buf c;
        step ()
  done;
  if !in_quotes then error "unterminated quoted field";
  if not !in_quotes && (Buffer.length buf > 0 || !fields <> []) then
    push_row ();
  (* drop fully empty trailing rows *)
  List.rev !rows |> List.filter (fun (r, _) -> r <> [ "" ] && r <> [])

let parse_rows ?fault src =
  List.map fst (parse_rows_loc ?fault ~source:"csv" src)

type table = {
  name : string;
  headers : string list;
  rows : string list list;
}

let table_of_string ?fault ~name src =
  match parse_rows_loc ?fault ~source:name src with
  | [] -> { name; headers = []; rows = [] }
  | (headers, _) :: rows ->
    let rows =
      match fault with
      | None -> List.map fst rows
      | Some c ->
        (* recovering mode: quarantine ragged rows (strict mode keeps
           the legacy tolerance) and honour injected parse faults *)
        let inject = Fault.inject fault in
        let width = List.length headers in
        List.filteri
          (fun idx (row, row_line) ->
            let ok =
              match Fault.Inject.fire inject (Fault.Inject.Parse (name, idx)) with
              | () ->
                if List.length row = width then true
                else begin
                  Fault.record c
                    (Fault.report ~stage:Fault.Ingest ~source:name
                       ~location:(Printf.sprintf "line %d" row_line)
                       ~cause:
                         (Printf.sprintf "ragged row: %d field(s), expected %d"
                            (List.length row) width)
                       ~excerpt:(String.concat "," row) ());
                  false
                end
              | exception Fault.Inject.Injected msg ->
                Fault.record c
                  (Fault.report ~stage:Fault.Ingest ~source:name
                     ~location:(Printf.sprintf "line %d" row_line) ~cause:msg
                     ~excerpt:(String.concat "," row) ());
                false
            in
            ok)
          rows
        |> List.map fst
    in
    { name; headers; rows }

(** Load several tables into [g] at once: all rows of all tables are
    created first, then cells are added, so [&name] references may
    point forwards and across tables (a people table referencing an
    orgs table that references the people back).  Returns the created
    oids per table, in row order. *)
let rec load_tables ?key g (tables : table list) : Oid.t list list =
  (* first pass: create every object of every table *)
  let created =
    List.map
      (fun t ->
        let key_idx =
          match key with
          | None -> 0
          | Some k -> (
              match List.find_index (fun h -> h = k) t.headers with
              | Some i -> i
              | None -> 0)
        in
        List.map
          (fun row ->
            let name =
              match List.nth_opt row key_idx with
              | Some v when v <> "" -> v
              | _ -> t.name ^ "_row"
            in
            let o = Graph.new_node g name in
            Graph.add_to_collection g t.name o;
            (o, row))
          t.rows)
      tables
  in
  let deferred = ref [] in
  List.iter2
    (fun t objs ->
      List.iter
        (fun (o, row) ->
          List.iteri
            (fun i cell ->
              if cell <> "" then
                match List.nth_opt t.headers i with
                | None | Some "" -> ()
                | Some h ->
                  if String.length cell > 1 && cell.[0] = '&' then
                    deferred :=
                      (o, h, String.sub cell 1 (String.length cell - 1))
                      :: !deferred
                  else
                    List.iter
                      (fun part ->
                        let part = String.trim part in
                        if part <> "" then
                          Graph.add_edge g o h
                            (Graph.V (Value.of_literal part)))
                      (String.split_on_char ';' cell))
            row)
        objs)
    tables created;
  List.iter
    (fun (o, h, refname) ->
      match Graph.find_node g refname with
      | Some o' -> Graph.add_edge g o h (Graph.N o')
      | None ->
        (* dangling foreign key: keep it as a string, as a real
           integration would surface it for cleaning *)
        Graph.add_edge g o h (Graph.V (Value.String ("&" ^ refname))))
    (List.rev !deferred);
  List.map (fun objs -> List.map fst objs) created

(** Load a single table; see {!load_tables}.  [key] names the column
    whose value becomes the object's name (default: first column). *)
and load_table ?key g (t : table) : Oid.t list =
  (match key with
   | Some k when not (List.mem k t.headers) ->
     raise (Csv_error ("no column named " ^ k, 1, 1))
   | _ -> ());
  match load_tables ?key g [ t ] with
  | [ os ] -> os
  | _ -> assert false

let load ?fault ?(graph_name = "RDB") ?key ~name src =
  let g = Graph.create ~name:graph_name () in
  let os = load_table ?key g (table_of_string ?fault ~name src) in
  (g, os)
