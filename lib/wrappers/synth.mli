(** Deterministic synthetic data generators.

    The paper's data sources — AT&T's personnel and organizational
    databases, project files, CNN's article base — are proprietary.
    These generators produce data of the same {e shape} (irregular
    attributes, missing fields, multi-valued authors and categories,
    cross-references between tables) at configurable size, so every
    code path the real sources exercised runs unchanged.  Generation is
    seeded and fully deterministic (own PRNG, stable across OCaml
    versions). *)

open Sgraph

(** A small xorshift PRNG. *)
type rng

val rng : ?seed:int -> unit -> rng
val next : rng -> int
val int : rng -> int -> int
val pick : rng -> 'a array -> 'a
val chance : rng -> int -> bool

val org_csv :
  ?seed:int -> ?corrupt:int -> people:int -> orgs:int -> unit ->
  string * string
(** The two tables of the organizational database as CSV text:
    [People] (some lack phones/offices/areas, some marked proprietary,
    [&org] foreign keys) and [Orgs] ([&parent]/[&director] keys).

    [corrupt] (a percentage, default [0]) makes roughly that share of
    people rows malformed — ragged rows or stray quotes — exercising
    the wrappers' quarantine paths.  The corruption draws are guarded
    so [corrupt:0] output is byte-identical to the pre-knob
    generator. *)

val projects_file :
  ?seed:int -> ?corrupt:int -> projects:int -> people:int -> unit -> string
(** Structured project files; some omit the synopsis (§5.2's missing
    attributes), members reference people by login.  [corrupt] inserts
    separator-less lines into that share of blocks. *)

val bibtex : ?seed:int -> ?corrupt:int -> entries:int -> unit -> string
(** A BibTeX bibliography with irregular fields (articles vs
    inproceedings, optional abstracts/volumes).  [corrupt] replaces
    that share of entries with ones missing the ',' after the citation
    key. *)

val scale_graph :
  ?seed:int -> ?graph_name:string -> ?groups:int -> items:int -> unit ->
  Graph.t
(** The scale corpus for 100k–1M page materialization workloads:
    [items] objects in [Items] with [title], a [grp] key into one of
    [groups] (default 100) groups, usually a [body], sometimes a [tag]
    or a [ref] — small per-item payload, so a site over it is
    render-bound.  A {!Sites.Scale}-style site materializes to
    [items + groups + 1] pages. *)

val news_graph : ?seed:int -> ?graph_name:string -> articles:int -> unit -> Graph.t
(** The CNN-shaped article base: [Articles] with [headline],
    1–2 [section]s, [date], [body], optional [image]/[byline], and
    [related] cross-links. *)
