(** HTML wrapper: maps existing HTML pages into the data graph (the
    paper's hand-written wrappers for plain HTML pages, and the route
    used to build the CNN demonstration site from crawled pages).

    The extraction is structural, not a full HTML parse: it recovers
    the [<title>], headings, anchors ([href] + anchor text) and the
    visible text, producing an object with [title], [heading], [link]
    (nested objects with [href]/[anchor]) and [text] attributes. *)

open Sgraph

let lowercase = String.lowercase_ascii

(* Find the next tag from [i]; returns (tag_name, attrs_raw, content_start,
   after_tag_pos) *)
let rec find_tag src i =
  let n = String.length src in
  if i >= n then None
  else
    match String.index_from_opt src i '<' with
    | None -> None
    | Some j ->
      if j + 1 >= n then None
      else if src.[j + 1] = '!' || src.[j + 1] = '?' then
        (* comment/doctype: skip to '>' *)
        (match String.index_from_opt src j '>' with
         | None -> None
         | Some k -> find_tag src (k + 1))
      else (
        match String.index_from_opt src j '>' with
        | None -> None
        | Some k ->
          let inner = String.sub src (j + 1) (k - j - 1) in
          let name, attrs =
            match String.index_opt inner ' ' with
            | None -> (inner, "")
            | Some s ->
              (String.sub inner 0 s,
               String.sub inner (s + 1) (String.length inner - s - 1))
          in
          Some (lowercase name, attrs, j, k + 1))

let text_until_close src start tag =
  let close = "</" ^ tag in
  let n = String.length src in
  let rec find i =
    if i >= n then n
    else if
      i + String.length close <= n
      && lowercase (String.sub src i (String.length close)) = close
    then i
    else find (i + 1)
  in
  let e = find start in
  String.sub src start (e - start)

let strip_tags s =
  let buf = Buffer.create (String.length s) in
  let in_tag = ref false in
  String.iter
    (fun c ->
      match c with
      | '<' -> in_tag := true
      | '>' -> in_tag := false
      | c -> if not !in_tag then Buffer.add_char buf c)
    s;
  (* collapse whitespace *)
  let out = Buffer.create (Buffer.length buf) in
  let last_ws = ref true in
  String.iter
    (fun c ->
      if c = ' ' || c = '\n' || c = '\t' || c = '\r' then begin
        if not !last_ws then Buffer.add_char out ' ';
        last_ws := true
      end
      else begin
        Buffer.add_char out c;
        last_ws := false
      end)
    (Buffer.contents buf);
  String.trim (Buffer.contents out)

let attr_value attrs name =
  (* name="value" | name='value' | name=value *)
  let attrs_l = lowercase attrs in
  let rec search from =
    match
      let n = String.length attrs_l and k = String.length name in
      let rec find i =
        if i + k + 1 > n then None
        else if String.sub attrs_l i k = name then Some i
        else find (i + 1)
      in
      find from
    with
    | None -> None
    | Some i ->
      let rest = String.sub attrs (i + String.length name)
          (String.length attrs - i - String.length name) in
      let rest = String.trim rest in
      if String.length rest > 0 && rest.[0] = '=' then begin
        let v = String.trim (String.sub rest 1 (String.length rest - 1)) in
        if String.length v > 0 && (v.[0] = '"' || v.[0] = '\'') then
          let q = v.[0] in
          match String.index_from_opt v 1 q with
          | Some e -> Some (String.sub v 1 (e - 1))
          | None -> None
        else
          let e =
            match String.index_opt v ' ' with
            | Some e -> e
            | None -> String.length v
          in
          Some (String.sub v 0 e)
      end
      else search (i + 1)
  in
  search 0

(** Wrap one HTML page into an object of [g].  [name] names the object
    (e.g. the page's path); the object joins [collection] (default
    "Pages"). *)
let load_page ?(collection = "Pages") g ~name (html : string) : Oid.t =
  let o = Graph.new_node g name in
  Graph.add_to_collection g collection o;
  let rec walk i =
    match find_tag html i with
    | None -> ()
    | Some (tag, attrs, tag_start, after) ->
      (match tag with
       | "title" ->
         let t = strip_tags (text_until_close html after "title") in
         if t <> "" then Graph.add_edge g o "title" (Graph.V (Value.String t))
       | "h1" | "h2" | "h3" ->
         let t = strip_tags (text_until_close html after tag) in
         if t <> "" then
           Graph.add_edge g o "heading" (Graph.V (Value.String t))
       | "a" -> (
           match attr_value attrs "href" with
           | Some href ->
             let anchor = strip_tags (text_until_close html after "a") in
             let lo = Graph.new_node g (name ^ "#link") in
             Graph.add_edge g lo "href" (Graph.V (Value.of_literal href));
             if anchor <> "" then
               Graph.add_edge g lo "anchor" (Graph.V (Value.String anchor));
             Graph.add_edge g o "link" (Graph.N lo)
           | None -> ())
       | "img" -> (
           match attr_value attrs "src" with
           | Some src ->
             Graph.add_edge g o "image"
               (Graph.V (Value.File (Value.Image, src)))
           | None -> ())
       | _ -> ());
      ignore tag_start;
      walk after
  in
  walk 0;
  let body_text = strip_tags html in
  if body_text <> "" then
    Graph.add_edge g o "text" (Graph.V (Value.String body_text));
  o

let load_pages ?fault ?(graph_name = "HTML") ?collection pages =
  let g = Graph.create ~name:graph_name () in
  let inject = Fault.inject fault in
  let os =
    List.filter_map
      (fun (idx, (name, html)) ->
        match fault with
        | None -> Some (load_page ?collection g ~name html)
        | Some c -> (
          (* recovering mode: a page whose extraction fails (or whose
             injected parse fault fires) is quarantined and skipped *)
          try
            Fault.Inject.fire inject (Fault.Inject.Parse (graph_name, idx));
            Some (load_page ?collection g ~name html)
          with e ->
            let msg =
              match e with
              | Fault.Inject.Injected m -> m
              | e -> Printexc.to_string e
            in
            Fault.record c
              (Fault.report ~stage:Fault.Ingest ~source:graph_name
                 ~location:name ~cause:msg ~excerpt:html ());
            None))
      (List.mapi (fun i p -> (i, p)) pages)
  in
  (g, os)
