(** BibTeX wrapper: converts bibliography files into a STRUDEL data
    graph (the main data source of the paper's homepage sites).

    Each entry becomes an object of the [Publications] collection named
    by its citation key, with one attribute per field.  [author] and
    [editor] split on [" and "] into multiple attribute edges (or, with
    [~keyed_authors:true], nested objects carrying [name] and an
    integer [key] — the paper's workaround for ordered lists in an
    unordered model).  [abstract]/[postscript] paths become typed file
    values, [url] a URL; [@string] macros and [#] concatenation are
    supported; [keywords] become [category] edges. *)

open Sgraph

exception Bibtex_error of string * int  (** message, line *)

type entry = {
  entry_type : string;
  key : string;
  fields : (string * string) list;
}

val parse_entries : ?fault:Fault.ctx -> ?source:string -> string -> entry list
(** The raw entries, before graph mapping.  Strict mode (no [fault])
    raises {!Bibtex_error} on the first malformed entry; with a
    {!Fault.ctx} the parser recovers — the bad (or injected-faulty)
    entry is quarantined as a structured report and the scanner
    resynchronizes at the next ['@']. *)

val split_authors : string -> string list

val load_into :
  ?fault:Fault.ctx -> ?collection:string -> ?keyed_authors:bool ->
  Graph.t -> string -> Oid.t list
(** Load BibTeX text into an existing graph; returns the created
    publication objects in file order. *)

val load :
  ?fault:Fault.ctx -> ?graph_name:string -> ?collection:string ->
  ?keyed_authors:bool -> string -> Graph.t * Oid.t list
