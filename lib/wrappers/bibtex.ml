(** BibTeX wrapper: converts BibTeX bibliography files into a STRUDEL
    data graph (the main data source of the paper's homepage sites).

    Each entry becomes an object of the [Publications] collection named
    by its citation key, with one attribute per field.  [author] and
    [editor] fields are split on [" and "], producing one attribute
    edge per author (the semistructured model allows multiple instances
    of an attribute); an [authorkey] integer attribute preserves author
    order, the paper's solution for ordered lists.  [abstract] and
    [postscript]/[ps]/[pdf] fields whose values look like file paths
    become typed file values; [url] fields become URLs.  [@string]
    macros and [#] concatenation are supported. *)

open Sgraph

exception Bibtex_error of string * int  (** message, line *)

type entry = {
  entry_type : string;          (* article, inproceedings, ... *)
  key : string;
  fields : (string * string) list;
}

(* --- Lexing/parsing: BibTeX has its own token rules, so a dedicated
   scanner rather than the shared Lex --- *)

type pstate = { src : string; mutable pos : int; mutable line : int }

let peek_char p =
  if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p =
  (match peek_char p with Some '\n' -> p.line <- p.line + 1 | _ -> ());
  p.pos <- p.pos + 1

let skip_ws p =
  let continue = ref true in
  while !continue do
    match peek_char p with
    | Some (' ' | '\t' | '\n' | '\r') -> advance p
    | Some '%' ->
      (* comment to end of line *)
      while peek_char p <> None && peek_char p <> Some '\n' do
        advance p
      done
    | _ -> continue := false
  done

let error p msg = raise (Bibtex_error (msg, p.line))

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | ':' | '.' | '+'
  | '/' ->
    true
  | _ -> false

let read_name p =
  let start = p.pos in
  while (match peek_char p with
         | Some c -> is_name_char c
         | None -> false)
  do
    advance p
  done;
  if p.pos = start then error p "expected a name";
  String.sub p.src start (p.pos - start)

(* A { ... } group with balanced braces. *)
let read_braced p =
  (match peek_char p with
   | Some '{' -> advance p
   | _ -> error p "expected '{'");
  let buf = Buffer.create 32 in
  let depth = ref 1 in
  while !depth > 0 do
    match peek_char p with
    | None -> error p "unterminated '{'"
    | Some '{' ->
      incr depth;
      if !depth > 1 then Buffer.add_char buf '{';
      advance p
    | Some '}' ->
      decr depth;
      if !depth > 0 then Buffer.add_char buf '}';
      advance p
    | Some c ->
      Buffer.add_char buf c;
      advance p
  done;
  Buffer.contents buf

let read_quoted p =
  (match peek_char p with
   | Some '"' -> advance p
   | _ -> error p "expected '\"'");
  let buf = Buffer.create 32 in
  let fin = ref false in
  while not !fin do
    match peek_char p with
    | None -> error p "unterminated string"
    | Some '"' ->
      advance p;
      fin := true
    | Some c ->
      Buffer.add_char buf c;
      advance p
  done;
  Buffer.contents buf

(* A field value: braced group, quoted string, number, or macro name —
   possibly concatenated with '#'. *)
let rec read_value p macros =
  skip_ws p;
  let piece =
    match peek_char p with
    | Some '{' -> read_braced p
    | Some '"' -> read_quoted p
    | Some ('0' .. '9') ->
      let start = p.pos in
      while (match peek_char p with Some '0' .. '9' -> true | _ -> false) do
        advance p
      done;
      String.sub p.src start (p.pos - start)
    | Some _ ->
      let n = read_name p in
      (match List.assoc_opt (String.lowercase_ascii n) macros with
       | Some v -> v
       | None -> n)
    | None -> error p "expected a field value"
  in
  skip_ws p;
  match peek_char p with
  | Some '#' ->
    advance p;
    piece ^ read_value p macros
  | _ -> piece

(* Collapse whitespace runs and strip TeX braces from a field value. *)
let clean s =
  let buf = Buffer.create (String.length s) in
  let last_space = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' ->
        if not !last_space then Buffer.add_char buf ' ';
        last_space := true
      | '{' | '}' -> ()
      | c ->
        Buffer.add_char buf c;
        last_space := false)
    s;
  String.trim (Buffer.contents buf)

(* Parse one '@'-entry body (the parser is positioned just after the
   '@').  Raises [Bibtex_error] on malformed input; the recovering
   caller quarantines the entry and resynchronizes at the next '@'. *)
let parse_one p macros entries =
  let ty = String.lowercase_ascii (read_name p) in
      skip_ws p;
      let closing =
        match peek_char p with
        | Some '{' ->
          advance p;
          '}'
        | Some '(' ->
          advance p;
          ')'
        | _ -> error p "expected '{' after entry type"
      in
      if ty = "comment" || ty = "preamble" then begin
        (* skip to matching close *)
        let depth = ref 1 in
        while !depth > 0 do
          match peek_char p with
          | None -> error p "unterminated entry"
          | Some c ->
            if c = '{' then incr depth
            else if c = closing then decr depth;
            advance p
        done
      end
      else if ty = "string" then begin
        skip_ws p;
        let name = String.lowercase_ascii (read_name p) in
        skip_ws p;
        (match peek_char p with
         | Some '=' -> advance p
         | _ -> error p "expected '=' in @string");
        let v = read_value p !macros in
        macros := (name, v) :: !macros;
        skip_ws p;
        (match peek_char p with
         | Some c when c = closing -> advance p
         | _ -> error p "expected close of @string")
      end
      else begin
        skip_ws p;
        let key = read_name p in
        skip_ws p;
        (match peek_char p with
         | Some ',' -> advance p
         | _ -> error p "expected ',' after citation key");
        let fields = ref [] in
        let in_entry = ref true in
        while !in_entry do
          skip_ws p;
          match peek_char p with
          | Some c when c = closing ->
            advance p;
            in_entry := false
          | None -> error p "unterminated entry"
          | Some _ ->
            let fname = String.lowercase_ascii (read_name p) in
            skip_ws p;
            (match peek_char p with
             | Some '=' -> advance p
             | _ -> error p ("expected '=' after field " ^ fname));
            let v = read_value p !macros in
            fields := (fname, clean v) :: !fields;
            skip_ws p;
            (match peek_char p with
             | Some ',' -> advance p
             | _ -> ())
        done;
        entries :=
          { entry_type = ty; key; fields = List.rev !fields } :: !entries
      end

let parse_entries ?fault ?(source = "bibtex") src : entry list =
  let p = { src; pos = 0; line = 1 } in
  let entries = ref [] in
  let macros = ref [] in
  let inject = Fault.inject fault in
  let index = ref 0 in
  let continue = ref true in
  while !continue do
    (* skip until '@' *)
    while peek_char p <> None && peek_char p <> Some '@' do
      advance p
    done;
    match peek_char p with
    | None -> continue := false
    | Some _ (* '@' *) ->
      let start_pos = p.pos and start_line = p.line in
      advance p;
      (match fault with
       | None -> parse_one p macros entries
       | Some c -> (
           (* recovering mode: a malformed (or injected-faulty) entry is
              quarantined with its entry index, line and a raw excerpt;
              the scanner then resynchronizes at the next '@'.  Progress
              is guaranteed — the '@' that opened this entry is already
              consumed. *)
           try
             Fault.Inject.fire inject (Fault.Inject.Parse (source, !index));
             parse_one p macros entries
           with
           | (Bibtex_error _ | Fault.Inject.Injected _) as e ->
             let msg, line =
               match e with
               | Bibtex_error (m, l) -> (m, l)
               | Fault.Inject.Injected m -> (m, start_line)
               | _ -> assert false
             in
             let excerpt_end = min (String.length src) (start_pos + 120) in
             Fault.record c
               (Fault.report ~stage:Fault.Ingest ~source
                  ~location:
                    (Printf.sprintf "entry %d, line %d" !index line)
                  ~cause:msg
                  ~excerpt:(String.sub src start_pos (excerpt_end - start_pos))
                  ())));
      incr index
  done;
  List.rev !entries

(* --- Mapping entries into the graph --- *)

let split_authors s =
  let rec go acc s =
    match
      (* case-sensitive " and " per BibTeX convention *)
      let re = " and " in
      let n = String.length s and k = String.length re in
      let rec find i =
        if i + k > n then None
        else if String.sub s i k = re then Some i
        else find (i + 1)
      in
      find 0
    with
    | Some i ->
      go (String.sub s 0 i :: acc) (String.sub s (i + 5) (String.length s - i - 5))
    | None -> List.rev (s :: acc)
  in
  List.map String.trim (go [] s)

let looks_like_path s =
  String.contains s '/' || Filename.check_suffix s ".ps"
  || Filename.check_suffix s ".ps.gz" || Filename.check_suffix s ".pdf"
  || Filename.check_suffix s ".txt"

let field_value fname v =
  match fname with
  | "year" | "volume" | "number" -> Value.of_literal v
  | "abstract" when looks_like_path v -> Value.File (Value.Text, v)
  | "postscript" | "ps" when looks_like_path v ->
    Value.File (Value.Postscript, v)
  | "pdf" when looks_like_path v -> Value.File (Value.Other_file "pdf", v)
  | "url" | "howpublished" when String.length v > 7
                                && String.sub v 0 7 = "http://" ->
    Value.Url v
  | "url" -> Value.Url v
  | _ -> Value.String v

(** Load BibTeX text into [g].  Returns the oids of the created
    publication objects, in file order.

    With [~keyed_authors:true], each author becomes a nested object
    carrying [name] and an integer [key] attribute — the paper's
    workaround for ordered lists in an unordered data model.  By
    default authors are plain string attributes (the repository
    preserves insertion order). *)
let load_into ?fault ?(collection = "Publications") ?(keyed_authors = false)
    g src =
  let entries = parse_entries ?fault ~source:(Graph.name g) src in
  List.map
    (fun e ->
      let o = Graph.new_node g e.key in
      Graph.add_to_collection g collection o;
      Graph.add_edge g o "pub-type" (Graph.V (Value.String e.entry_type));
      List.iter
        (fun (fname, v) ->
          match fname with
          | "author" | "editor" ->
            List.iteri
              (fun i a ->
                if keyed_authors then begin
                  let ao =
                    Graph.new_node g (Printf.sprintf "%s.%s%d" e.key fname i)
                  in
                  Graph.add_edge g ao "name" (Graph.V (Value.String a));
                  Graph.add_edge g ao "key" (Graph.V (Value.Int i));
                  Graph.add_edge g o fname (Graph.N ao)
                end
                else Graph.add_edge g o fname (Graph.V (Value.String a)))
              (split_authors v)
          | "keywords" | "category" ->
            List.iter
              (fun kw ->
                let kw = String.trim kw in
                if kw <> "" then
                  Graph.add_edge g o "category" (Graph.V (Value.String kw)))
              (String.split_on_char ',' v)
          | _ -> Graph.add_edge g o fname (Graph.V (field_value fname v)))
        e.fields;
      o)
    entries

let load ?fault ?(graph_name = "BIBTEX") ?collection ?keyed_authors src =
  let g = Graph.create ~name:graph_name () in
  let os = load_into ?fault ?collection ?keyed_authors g src in
  (g, os)
