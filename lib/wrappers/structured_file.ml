(** Structured-file wrapper: the stand-in for the paper's "simple AWK
    programs that map structured files ... into objects in a data
    graph".

    The format is blocks of [key: value] lines separated by blank
    lines; repeated keys yield multiple attribute edges.  A block's
    [id:] line names the object, [in:] adds collection memberships:

    {v
    id: strudel
    in: Projects
    name: STRUDEL
    member: mff
    member: suciu
    synopsis: A Web-site management system
    v} *)

open Sgraph

exception Structured_error of string * int

let split_blocks ?fault ?(source = "files") src =
  let lines = String.split_on_char '\n' src in
  let blocks = ref [] and current = ref [] in
  let lineno = ref 0 in
  let flush () =
    if !current <> [] then begin
      blocks := List.rev !current :: !blocks;
      current := []
    end
  in
  List.iter
    (fun line ->
      incr lineno;
      let line' = String.trim line in
      if line' = "" then flush ()
      else if line'.[0] = '#' then ()
      else
        match String.index_opt line' ':' with
        | Some i ->
          let k = String.trim (String.sub line' 0 i) in
          let v =
            String.trim (String.sub line' (i + 1) (String.length line' - i - 1))
          in
          current := (k, v, !lineno) :: !current
        | None -> (
          match fault with
          | None ->
            raise (Structured_error ("line without ':' separator", !lineno))
          | Some c ->
            (* recovering mode: quarantine the malformed line and keep
               loading the rest of the block *)
            Fault.record c
              (Fault.report ~stage:Fault.Ingest ~source
                 ~location:(Printf.sprintf "line %d" !lineno)
                 ~cause:"line without ':' separator" ~excerpt:line' ())))
    lines;
  flush ();
  List.rev !blocks

(* Typed values: `kind "..."`-style prefixes as in the DDL. *)
let value_of_string v =
  let prefixed p =
    String.length v > String.length p + 1
    && String.sub v 0 (String.length p) = p
    && v.[String.length p] = ' '
  in
  let rest p =
    let s =
      String.trim
        (String.sub v (String.length p) (String.length v - String.length p))
    in
    if
      String.length s >= 2
      && s.[0] = '"'
      && s.[String.length s - 1] = '"'
    then String.sub s 1 (String.length s - 2)
    else s
  in
  if prefixed "text" then Value.File (Value.Text, rest "text")
  else if prefixed "ps" then Value.File (Value.Postscript, rest "ps")
  else if prefixed "image" then Value.File (Value.Image, rest "image")
  else if prefixed "html" then Value.File (Value.Html_file, rest "html")
  else Value.of_literal v

(** Load blocks into [g]; returns created oids in file order.
    References ([&name]) resolve after all blocks load. *)
let load_into ?fault g src =
  let source = Graph.name g in
  let blocks = split_blocks ?fault ~source src in
  (* honour injected per-block parse faults: a faulted block is
     quarantined whole, identified by its first line *)
  let blocks =
    match Fault.inject fault with
    | None -> blocks
    | Some inject ->
      let c = match fault with Some c -> c | None -> assert false in
      List.filteri
        (fun idx block ->
          match
            Fault.Inject.fire (Some inject) (Fault.Inject.Parse (source, idx))
          with
          | () -> true
          | exception Fault.Inject.Injected msg ->
            let location, excerpt =
              match block with
              | (k, v, line) :: _ ->
                (Printf.sprintf "block %d, line %d" idx line, k ^ ": " ^ v)
              | [] -> (Printf.sprintf "block %d" idx, "")
            in
            Fault.record c
              (Fault.report ~stage:Fault.Ingest ~source ~location ~cause:msg
                 ~excerpt ());
            false)
        blocks
  in
  (* first pass: create the objects *)
  let objs =
    List.map
      (fun block ->
        let id =
          match
            List.find_map (fun (k, v, _) -> if k = "id" then Some v else None)
              block
          with
          | Some v -> v
          | None -> "obj"
        in
        let o =
          match Graph.find_node g id with
          | Some o -> o
          | None -> Graph.new_node g id
        in
        Graph.add_node g o;
        (o, block))
      blocks
  in
  List.iter
    (fun (o, block) ->
      List.iter
        (fun (k, v, _line) ->
          match k with
          | "id" -> ()
          | "in" -> Graph.add_to_collection g v o
          | _ ->
            if String.length v > 1 && v.[0] = '&' then begin
              let refname = String.sub v 1 (String.length v - 1) in
              match Graph.find_node g refname with
              | Some o' -> Graph.add_edge g o k (Graph.N o')
              | None -> Graph.add_edge g o k (Graph.V (Value.String v))
            end
            else Graph.add_edge g o k (Graph.V (value_of_string v)))
        block)
    objs;
  List.map fst objs

let load ?fault ?(graph_name = "FILES") src =
  let g = Graph.create ~name:graph_name () in
  let os = load_into ?fault g src in
  (g, os)
