(** Deterministic synthetic data generators.

    The paper's data sources — AT&T's personnel and organizational
    databases, project files, and CNN's article base — are proprietary.
    These generators produce data of the same {e shape} (irregular
    attributes, missing fields, multi-valued authors and categories,
    cross-references between tables) at configurable size, so every
    code path the real sources exercised — wrappers, GAV mediation,
    irregularity handling in queries and templates — runs unchanged.
    Generation is seeded and fully deterministic. *)

open Sgraph

(* A small xorshift PRNG, independent of Stdlib.Random so results are
   stable across OCaml versions. *)
type rng = { mutable s : int64 }

let rng ?(seed = 0x5DEECE66D) () = { s = Int64.of_int (seed lor 1) }

let next r =
  (* xorshift64* *)
  let x = r.s in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  r.s <- x;
  Int64.to_int (Int64.shift_right_logical x 2)

let int r bound = if bound <= 0 then 0 else next r mod bound
let pick r arr = arr.(int r (Array.length arr))
let chance r pct = int r 100 < pct

let first_names =
  [| "Mary"; "Daniela"; "Alon"; "Dan"; "Jaewoo"; "Norman"; "Susan"; "Peter";
     "Serge"; "Victor"; "Janet"; "Hector"; "Jennifer"; "Jeffrey"; "David";
     "Laura"; "Rick"; "Anthony"; "Louiqa"; "Patrick"; "Divesh"; "Nick";
     "Sophie"; "Jerome"; "Claude"; "Catriel"; "Moshe"; "Raghu"; "Jim";
     "Gerhard" |]

let last_names =
  [| "Fernandez"; "Florescu"; "Levy"; "Suciu"; "Kang"; "Ramsey"; "Davidson";
     "Buneman"; "Abiteboul"; "Vianu"; "Wiener"; "Garcia-Molina"; "Widom";
     "Ullman"; "Maier"; "Haas"; "Hull"; "Bonner"; "Raschid"; "Valduriez";
     "Srivastava"; "Koudas"; "Cluet"; "Simeon"; "Delobel"; "Beeri"; "Vardi";
     "Ramakrishnan"; "Gray"; "Weikum" |]

let research_areas =
  [| "Databases"; "Networking"; "Algorithms"; "Security"; "Speech";
     "Programming Languages"; "Information Retrieval"; "Statistics";
     "Machine Learning"; "Systems" |]

let project_words =
  [| "Strudel"; "Tukwila"; "Garlic"; "Tsimmis"; "Lore"; "Disco"; "Hermes";
     "Clio"; "Ozone"; "Tioga"; "Sphinx"; "Argos"; "Kepler"; "Mimas";
     "Pandora"; "Quartz"; "Rodin"; "Sirius"; "Tethys"; "Vesta" |]

let topic_words =
  [| "query optimization"; "semistructured data"; "view maintenance";
     "data integration"; "Web sites"; "mediators"; "wrappers";
     "path expressions"; "schema evolution"; "caching"; "replication";
     "transactions"; "indexing"; "storage"; "languages" |]

let news_sections =
  [| "World"; "US"; "Politics"; "Technology"; "Health"; "Showbiz";
     "Travel"; "Sports"; "Weather"; "Business" |]

let cities =
  [| "Florham Park"; "Murray Hill"; "Seattle"; "Paris"; "New York";
     "Summit"; "Philadelphia"; "Stanford"; "Madison"; "Toronto" |]

let full_name r = pick r first_names ^ " " ^ pick r last_names

let sentence r =
  Printf.sprintf "We study %s for %s, with applications to %s."
    (pick r topic_words) (pick r topic_words) (pick r topic_words)

(* --- Personnel / organization data (CSV, for the relational wrapper) --- *)

(** Generate the two tables of the organizational database: [People]
    (login, name, phone?, office?, email, org, proprietary?) and [Orgs]
    (id, name, parent?, director).  Shapes match §5: some people lack
    phones or offices; some orgs lack a parent (roots). *)
let org_csv ?(seed = 1) ?(corrupt = 0) ~people ~orgs () =
  let r = rng ~seed () in
  let orgs_rows = Buffer.create 1024 in
  Buffer.add_string orgs_rows "id,name,parent,director\n";
  for i = 0 to orgs - 1 do
    let parent =
      if i = 0 || chance r 20 then ""
      else Printf.sprintf "&org%d" (int r i)
    in
    Buffer.add_string orgs_rows
      (Printf.sprintf "org%d,%s Research,%s,&p%d\n" i
         (pick r project_words) parent (int r (max 1 people)))
  done;
  let people_rows = Buffer.create 4096 in
  Buffer.add_string people_rows
    "login,name,phone,office,email,org,area,proprietary\n";
  for i = 0 to people - 1 do
    let phone =
      if chance r 85 then Printf.sprintf "+1 973 360 %04d" (int r 10000)
      else ""
    in
    let office =
      if chance r 80 then Printf.sprintf "%c%03d" (Char.chr (65 + int r 4)) (int r 400)
      else ""
    in
    let area =
      if chance r 90 then pick r research_areas else ""
    in
    let proprietary = if chance r 15 then "true" else "" in
    let line =
      Printf.sprintf "p%d,%s,%s,%s,p%d@research.example.com,&org%d,%s,%s\n" i
        (full_name r) phone office i (int r (max 1 orgs)) area proprietary
    in
    (* the corruption draws are guarded so the RNG stream — and hence
       the default output — is byte-identical when [corrupt = 0] *)
    let line =
      if corrupt > 0 && chance r corrupt then
        match int r 3 with
        | 0 ->
          (* ragged: too few fields *)
          Printf.sprintf "p%d,truncated\n" i
        | 1 ->
          (* ragged: too many fields *)
          String.sub line 0 (String.length line - 1) ^ ",extra,extra\n"
        | _ ->
          (* stray quote inside an unquoted field *)
          Printf.sprintf
            "p%d,Bro\"ken Name,,,p%d@research.example.com,&org0,,\n" i i
      else line
    in
    Buffer.add_string people_rows line
  done;
  (Buffer.contents people_rows, Buffer.contents orgs_rows)

(* --- Project data (structured files) --- *)

let projects_file ?(seed = 2) ?(corrupt = 0) ~projects ~people () =
  let r = rng ~seed () in
  let buf = Buffer.create 4096 in
  for i = 0 to projects - 1 do
    Buffer.add_string buf (Printf.sprintf "id: proj%d\nin: Projects\n" i);
    if corrupt > 0 && chance r corrupt then
      (* a line without the ':' separator, quarantined in recovering
         mode without losing the rest of the block *)
      Buffer.add_string buf
        (Printf.sprintf "malformed line %d without separator\n" i);
    Buffer.add_string buf
      (Printf.sprintf "name: %s\n" (pick r project_words));
    (* some projects omit the synopsis (§5.2's missing attributes) *)
    if chance r 80 then
      Buffer.add_string buf (Printf.sprintf "synopsis: %s\n" (sentence r));
    if chance r 40 then
      Buffer.add_string buf (Printf.sprintf "sponsor: %s\n" (pick r project_words));
    (* members reference people by login; the cross-source join happens
       in the mediator, not in the wrapper *)
    let members = 1 + int r 5 in
    for _ = 1 to members do
      Buffer.add_string buf
        (Printf.sprintf "member: p%d\n" (int r (max 1 people)))
    done;
    if chance r 25 then
      Buffer.add_string buf "proprietary: true\n";
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

(* --- Bibliographies (BibTeX) --- *)

let bibtex ?(seed = 3) ?(corrupt = 0) ~entries () =
  let r = rng ~seed () in
  let buf = Buffer.create 8192 in
  for i = 0 to entries - 1 do
    if corrupt > 0 && chance r corrupt then
      (* missing ',' after the citation key: the parser quarantines the
         entry and resynchronizes at the next '@' *)
      Buffer.add_string buf
        (Printf.sprintf "@article{bad%d\n  title missing comma}\n\n" i)
    else begin
    let inproc = chance r 60 in
    Buffer.add_string buf
      (Printf.sprintf "@%s{pub%d,\n"
         (if inproc then "inproceedings" else "article")
         i);
    Buffer.add_string buf
      (Printf.sprintf "  title = {On %s and %s},\n" (pick r topic_words)
         (pick r topic_words));
    let n_auth = 1 + int r 3 in
    let authors =
      String.concat " and " (List.init n_auth (fun _ -> full_name r))
    in
    Buffer.add_string buf (Printf.sprintf "  author = {%s},\n" authors);
    Buffer.add_string buf (Printf.sprintf "  year = %d,\n" (1990 + int r 9));
    if inproc then
      Buffer.add_string buf
        (Printf.sprintf "  booktitle = {Proc. of %s},\n"
           (pick r [| "SIGMOD"; "VLDB"; "ICDE"; "PODS"; "ICDT" |]))
    else begin
      Buffer.add_string buf
        (Printf.sprintf "  journal = {%s},\n"
           (pick r [| "TODS"; "TOPLAS"; "JACM"; "VLDB Journal" |]));
      if chance r 60 then
        Buffer.add_string buf
          (Printf.sprintf "  volume = {%d (%d)},\n" (10 + int r 20) (1 + int r 4))
    end;
    if chance r 70 then
      Buffer.add_string buf
        (Printf.sprintf "  abstract = {abstracts/pub%d.txt},\n" i);
    if chance r 80 then
      Buffer.add_string buf
        (Printf.sprintf "  postscript = {papers/pub%d.ps.gz},\n" i);
    let n_cat = 1 + int r 2 in
    let cats =
      String.concat ", " (List.init n_cat (fun _ -> pick r research_areas))
    in
    Buffer.add_string buf (Printf.sprintf "  keywords = {%s}\n}\n\n" cats)
    end
  done;
  Buffer.contents buf

(* --- Scale corpus (100k–1M page materialization workloads) --- *)

(** Generate the scale corpus: [items] objects in [Items], each with a
    [title], a [grp] key into one of [groups] groups, a [body], and the
    same irregularities as the small sources (some items lack a body,
    some carry an extra [tag] or a [ref] to another item).  A site over
    it materializes to [items + groups + 1] pages — the root, one page
    per group, one per item — so [items = 100_000] exercises the
    100k-page regime the parallel materializer targets; the per-item
    payload is deliberately small so builds are render-bound, not
    generator-bound. *)
let scale_graph ?(seed = 5) ?(graph_name = "SCALE") ?(groups = 100) ~items ()
    =
  let r = rng ~seed () in
  let g = Graph.create ~name:graph_name () in
  let groups = max 1 groups in
  for i = 0 to items - 1 do
    let o = Graph.new_node g (Printf.sprintf "item%d" i) in
    Graph.add_to_collection g "Items" o;
    Graph.add_edge g o "title"
      (Graph.V
         (Value.String
            (Printf.sprintf "%s %d" (pick r project_words) i)));
    Graph.add_edge g o "grp"
      (Graph.V (Value.String (Printf.sprintf "g%03d" (i mod groups))));
    if chance r 90 then
      Graph.add_edge g o "body" (Graph.V (Value.String (sentence r)));
    if chance r 20 then
      Graph.add_edge g o "tag" (Graph.V (Value.String (pick r research_areas)));
    if i > 0 && chance r 10 then
      Graph.add_edge g o "ref"
        (Graph.V (Value.String (Printf.sprintf "item%d" (int r i))))
  done;
  g

(* --- News articles (the CNN-shaped source) --- *)

(** Generate a news-article data graph directly (the crawled CNN pages
    after wrapping): objects in [Articles] with [headline], [section]
    (1-2 of them), [date], [body] text, [image]s, and [related] links
    between articles. *)
let news_graph ?(seed = 4) ?(graph_name = "NEWS") ~articles () =
  let r = rng ~seed () in
  let g = Graph.create ~name:graph_name () in
  let objs =
    List.init articles (fun i ->
        let o = Graph.new_node g (Printf.sprintf "art%d" i) in
        Graph.add_to_collection g "Articles" o;
        Graph.add_edge g o "headline"
          (Graph.V
             (Value.String
                (Printf.sprintf "%s in %s: %s" (pick r topic_words)
                   (pick r cities) (pick r topic_words))));
        Graph.add_edge g o "section"
          (Graph.V (Value.String (pick r news_sections)));
        if chance r 25 then
          Graph.add_edge g o "section"
            (Graph.V (Value.String (pick r news_sections)));
        Graph.add_edge g o "date"
          (Graph.V
             (Value.String
                (Printf.sprintf "1997-%02d-%02d" (1 + int r 12) (1 + int r 28))));
        Graph.add_edge g o "body" (Graph.V (Value.String (sentence r)));
        if chance r 40 then
          Graph.add_edge g o "image"
            (Graph.V (Value.File (Value.Image, Printf.sprintf "img/art%d.jpg" i)));
        if chance r 30 then
          Graph.add_edge g o "byline" (Graph.V (Value.String (full_name r)));
        o)
  in
  (* related-article links *)
  let arr = Array.of_list objs in
  Array.iteri
    (fun i o ->
      if Array.length arr > 1 then
        let n_rel = int r 3 in
        for _ = 1 to n_rel do
          let j = int r (Array.length arr) in
          if j <> i then Graph.add_edge g o "related" (Graph.N arr.(j))
        done)
    arr;
  g
