(** Dsan — a happens-before race sanitizer for the domain-parallel
    runtime.

    An annotation-based dynamic race detector in the sanitizer style:
    the concurrent hot spots of the codebase ({!Pool}, {!Render_pool},
    the {!Sgraph.Graph} double-checked freeze, the {!Sgraph.Sym}
    interner, the warehouse view swap, the serving layer) carry
    explicit instrumentation points, and when the sanitizer is enabled
    every instrumented memory access is checked against a
    FastTrack-flavoured vector-clock happens-before relation: two
    accesses to the same (object, field) location, at least one a
    write, from different domains, neither ordered before the other by
    the recorded synchronization (mutex release→acquire, atomic
    publish→consume, domain fork/join) are reported as a data race
    with both access sites, both domains, and the locksets held on
    each side.

    {2 Cost model}

    Every instrumentation point compiles to a single atomic-flag load
    and branch when the sanitizer is disabled (the default), so
    instrumented production code pays ~0.  Enabling ([STRUDEL_DSAN=1]
    in the environment, or {!enable}) switches every point to the slow
    path: a global-lock-protected shadow-memory update — a sanitizer,
    not a production mode.

    {2 Identifiers}

    Instrumented state is named, not inferred: a shared structure
    registers an {e object id} ({!alloc}) and tags its fields with
    small ints; mutexes register {!lock_id}s; release/acquire atomics
    register {!atomic_id}s.  All three share one id space, and ids are
    cheap to mint while disabled, so registration can live in
    constructors.

    {2 Soundness and completeness}

    Races are only found on locations that are instrumented, and only
    for access pairs that actually execute — a dynamic detector proves
    the presence of races, never their absence.  Within those limits,
    happens-before detection is schedule-{e insensitive} for a fixed
    access history: any two conflicting accesses with no recorded
    synchronization chain between them are reported no matter which
    interleaving the OS produced.  The seeded {e schedule perturber}
    ({!enable}[ ~seed]) injects deterministic pseudo-random
    [Domain.cpu_relax] bursts at instrumentation points (the
    {!Fault.Inject} pure-hash discipline: a decision is a hash of
    (seed, site, per-domain op counter), never a shared PRNG) so one
    test run explores many interleavings reproducibly. *)

type pos = string * int * int * int
(** An access site: [__POS__] — file, line, start col, end col. *)

(** {1 Switching} *)

val enabled : unit -> bool

val enable : ?seed:int -> unit -> unit
(** Arm the sanitizer.  [seed] (default 0 = off) arms the schedule
    perturber too.  [STRUDEL_DSAN=1] in the environment arms at module
    init, with [STRUDEL_DSAN_SEED] as the perturber seed. *)

val disable : unit -> unit

val reset : unit -> unit
(** Drop shadow memory, recorded races and counters (identifier
    registrations and domain clocks survive — clocks only ever grow,
    so stale ones can at worst add happens-before edges from past
    runs; callers that want full isolation reset {e before} the
    workload, which clears every location the workload will touch). *)

(** {1 Identifiers} *)

val alloc : name:string -> int
(** Register a shared object (a record, an array, a table).  Fields of
    the object are distinguished by the small-int tag passed to
    {!read}/{!write}; for arrays the tag is the index. *)

val lock_id : name:string -> int
(** Register a mutex. *)

val atomic_id : name:string -> int
(** Register a release/acquire publication point (an [Atomic.t], or a
    field intentionally read unlocked under a publication protocol —
    the double-checked freeze). *)

(** {1 Instrumentation points} *)

val read : site:pos -> int -> int -> unit
(** [read ~site obj field] — a shared read of [(obj, field)]. *)

val write : site:pos -> int -> int -> unit
(** [write ~site obj field] — a shared write of [(obj, field)]. *)

val acquire : site:pos -> int -> unit
(** After [Mutex.lock] (and after [Condition.wait] returns): joins the
    lock's release clock into the caller and pushes it on the caller's
    lockset. *)

val release : site:pos -> int -> unit
(** Before [Mutex.unlock] (and before [Condition.wait] blocks): stores
    the caller's clock into the lock and pops the lockset. *)

val publish : site:pos -> int -> unit
(** Release half of an atomic publication ([Atomic.set]/[exchange]/
    [fetch_and_add], or the guarded write of a double-checked field):
    accumulates the caller's clock into the point's clock. *)

val consume : site:pos -> int -> unit
(** Acquire half ([Atomic.get] or the unlocked fast-path read): joins
    the point's clock into the caller. *)

type token
(** Carries a clock across a domain's lifetime edges. *)

val fork : unit -> token
(** In the parent, before [Domain.spawn]. *)

val born : token -> unit
(** First thing in the child: child inherits the parent's history. *)

val dying : token -> unit
(** Last thing in the child (wrap the closure in [Fun.protect]). *)

val joined : token -> unit
(** In the parent, after [Domain.join]: parent inherits the child's
    history. *)

val yield : site:pos -> unit
(** An explicit perturbation point with no access semantics. *)

(** {1 Reports} *)

type race = {
  r_object : string;     (** registered name of the object *)
  r_field : int;
  r_kind : [ `Write_write | `Read_write ];
  r_site1 : pos;         (** the access already in shadow memory *)
  r_tid1 : int;
  r_locks1 : string list;
  r_site2 : pos;         (** the access that exposed the race *)
  r_tid2 : int;
  r_locks2 : string list;
}

val races : unit -> race list
(** Distinct races recorded since the last {!reset}, in a stable order
    (object, field, sites). *)

val race_count : unit -> int

type stats = {
  st_ops : int;        (** instrumented operations checked *)
  st_locations : int;  (** distinct (object, field) locations touched *)
  st_yields : int;     (** perturbation bursts injected *)
  st_races : int;
}

val stats : unit -> stats

val pp_pos : Format.formatter -> pos -> unit
(** [file:line]. *)

val pp_race : Format.formatter -> race -> unit
