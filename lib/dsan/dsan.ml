(** Happens-before race sanitizer.  See the interface for the model;
    the notes below cover the implementation.

    All sanitizer state sits behind one global mutex [m].  That makes
    the enabled mode fully serialized — deliberately: a sanitizer run
    is a correctness tool, and a single lock keeps the detector itself
    trivially race-free (its own updates are ordered, so shadow memory
    never needs its own memory-model reasoning).  The disabled mode
    never touches [m]: every entry point loads one atomic flag and
    branches.

    Vector clocks are plain [int array]s indexed by domain tid, grown
    on demand.  Domain contexts live in domain-local storage and are
    created lazily on a domain's first instrumented operation; tids
    are never reused, which keeps an ephemeral-domain workload's
    clocks small but growing — fine for test-sized runs. *)

type pos = string * int * int * int

let pp_pos ppf ((file, line, _, _) : pos) =
  Format.fprintf ppf "%s:%d" file line

(* --- switches --- *)

let on = Atomic.make false
let perturb_seed = Atomic.make 0
let enabled () = Atomic.get on

(* --- the big lock --- *)

let m = Mutex.create ()

let locked f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* --- vector clocks --- *)

let vc_get (vc : int array) t = if t < Array.length vc then vc.(t) else 0

let vc_ensure vc t =
  if t < Array.length !vc then ()
  else begin
    (* tids are minted sequentially; an index beyond any plausible
       domain count means corrupted sanitizer state, not a big fleet *)
    if t > 1_000_000 then
      invalid_arg (Printf.sprintf "Dsan.vc_ensure: absurd tid %d" t);
    (* grow to exactly [t + 1]: joins pass [length from - 1], so a
       doubling policy here would make the joined clock LONGER than its
       source, and a release would store that longer copy back into the
       lock's clock — two domains ping-ponging one lock then double the
       vector every other cycle, an exponential blow-up (seen live as a
       multi-gigabyte [Array.make] freezing the whole runtime).  Exact
       growth keeps every clock bounded by the real tid count. *)
    let bigger = Array.make (t + 1) 0 in
    Array.blit !vc 0 bigger 0 (Array.length !vc);
    vc := bigger
  end

let vc_join into from =
  vc_ensure into (Array.length from - 1);
  let a = !into in
  for t = 0 to Array.length from - 1 do
    if from.(t) > a.(t) then a.(t) <- from.(t)
  done

(* --- per-domain contexts --- *)

type ctx = {
  tid : int;
  mutable vc : int array;
  mutable locks : (int * string) list;  (* held locks, innermost first *)
  mutable ops : int;                    (* perturber counter *)
}

let next_tid = ref 0
let all_ctxs : ctx list ref = ref []

(* A context is created lazily on a domain's first instrumented
   operation.  A domain spawned through an instrumented fork/born pair
   gets the precise parent edge; one spawned by uninstrumented code (a
   raw [Domain.spawn] in a test) would otherwise start with an empty
   clock and report the pre-spawn history as concurrent, so a newborn
   conservatively inherits a snapshot of every known domain's clock:
   real races between accesses made after both domains exist are still
   caught, and the lost precision (pre-spawn concurrency) is a
   documented caveat, not a false positive.  Invariant: [vc] and
   [locks] of any context are only touched under [m], so the snapshot
   join is safe. *)
let dls_key =
  Domain.DLS.new_key (fun () ->
      locked (fun () ->
          let tid = !next_tid in
          incr next_tid;
          let vc = ref (Array.make (max 8 (tid + 1)) 0) in
          List.iter (fun c -> vc_join vc c.vc) !all_ctxs;
          !vc.(tid) <- 1;
          let c = { tid; vc = !vc; locks = []; ops = 0 } in
          all_ctxs := c :: !all_ctxs;
          c))

let ctx () = Domain.DLS.get dls_key
let tick c = c.vc.(c.tid) <- c.vc.(c.tid) + 1

(* --- identifier registries --- *)

(* ids are minted lock-free so constructors stay cheap while the
   sanitizer is off; names are recorded under [m]. *)
let next_id = Atomic.make 0
let names : (int, string) Hashtbl.t = Hashtbl.create 256

let register ~name =
  let id = Atomic.fetch_and_add next_id 1 in
  locked (fun () -> Hashtbl.replace names id name);
  id

let alloc ~name = register ~name
let lock_id ~name = register ~name
let atomic_id ~name = register ~name
let name_of id = try Hashtbl.find names id with Not_found -> "?" ^ string_of_int id

(* --- synchronization clocks (locks and atomics share the table) --- *)

let sync_vc : (int, int array) Hashtbl.t = Hashtbl.create 64

(* --- shadow memory --- *)

type access = {
  a_tid : int;
  a_epoch : int;        (* the accessor's own clock component *)
  a_site : pos;
  a_locks : string list;
}

type loc = { mutable w : access option; mutable rs : access list }

let shadow : (int * int, loc) Hashtbl.t = Hashtbl.create 1024

(* --- races --- *)

type race = {
  r_object : string;
  r_field : int;
  r_kind : [ `Write_write | `Read_write ];
  r_site1 : pos;
  r_tid1 : int;
  r_locks1 : string list;
  r_site2 : pos;
  r_tid2 : int;
  r_locks2 : string list;
}

let races_rev : race list ref = ref []
let race_keys : (string * int * string * pos * pos, unit) Hashtbl.t =
  Hashtbl.create 32

let ops_count = ref 0
let yields_count = ref 0

let kind_name = function
  | `Write_write -> "write-write"
  | `Read_write -> "read-write"

let pp_race ppf r =
  Format.fprintf ppf
    "%s race on %s[%d]: %a (domain %d%s) vs %a (domain %d%s)"
    (kind_name r.r_kind) r.r_object r.r_field pp_pos r.r_site1 r.r_tid1
    (match r.r_locks1 with
     | [] -> ", no locks"
     | ls -> ", holding " ^ String.concat "," ls)
    pp_pos r.r_site2 r.r_tid2
    (match r.r_locks2 with
     | [] -> ", no locks"
     | ls -> ", holding " ^ String.concat "," ls)

let record_race ~obj ~field ~kind ~(prior : access) ~(c : ctx) ~site =
  let oname = name_of obj in
  let key = (oname, field, kind_name kind, prior.a_site, site) in
  if not (Hashtbl.mem race_keys key) then begin
    Hashtbl.add race_keys key ();
    races_rev :=
      {
        r_object = oname;
        r_field = field;
        r_kind = kind;
        r_site1 = prior.a_site;
        r_tid1 = prior.a_tid;
        r_locks1 = prior.a_locks;
        r_site2 = site;
        r_tid2 = c.tid;
        r_locks2 = List.map snd c.locks;
      }
      :: !races_rev
  end

(* Did [a] happen before the current state of [c]? *)
let hb (a : access) (c : ctx) = a.a_epoch <= vc_get c.vc a.a_tid

let access_of c site =
  { a_tid = c.tid; a_epoch = c.vc.(c.tid); a_site = site;
    a_locks = List.map snd c.locks }

let loc_of obj field =
  match Hashtbl.find_opt shadow (obj, field) with
  | Some l -> l
  | None ->
    let l = { w = None; rs = [] } in
    Hashtbl.add shadow (obj, field) l;
    l

(* --- the perturber --- *)

(* Deterministic pseudo-random relax bursts: the decision is a pure
   hash of (seed, site, tid, per-domain op counter) — the Fault.Inject
   discipline — so a fixed seed replays the same perturbation sequence
   per domain no matter how the domains interleave. *)
let maybe_perturb c (site : pos) =
  let seed = Atomic.get perturb_seed in
  if seed <> 0 then begin
    c.ops <- c.ops + 1;
    let (file, line, _, _) = site in
    let h = Hashtbl.hash (seed, file, line, c.tid, c.ops) in
    if h land 7 = 0 then begin
      incr yields_count;
      for _ = 0 to (h lsr 3) land 15 do
        Domain.cpu_relax ()
      done
    end
  end

(* --- slow paths (sanitizer enabled) --- *)

let read_slow ~site obj field =
  let c = ctx () in
  maybe_perturb c site;
  locked (fun () ->
      incr ops_count;
      let l = loc_of obj field in
      (match l.w with
       | Some w when w.a_tid <> c.tid && not (hb w c) ->
         record_race ~obj ~field ~kind:`Read_write ~prior:w ~c ~site
       | _ -> ());
      (* keep [rs] an antichain-ish set: this read supersedes the
         domain's previous one; reads that happened before it carry no
         extra ordering information for future writes *)
      l.rs <-
        access_of c site
        :: List.filter (fun r -> r.a_tid <> c.tid && not (hb r c)) l.rs)

let write_slow ~site obj field =
  let c = ctx () in
  maybe_perturb c site;
  locked (fun () ->
      incr ops_count;
      let l = loc_of obj field in
      (match l.w with
       | Some w when w.a_tid <> c.tid && not (hb w c) ->
         record_race ~obj ~field ~kind:`Write_write ~prior:w ~c ~site
       | _ -> ());
      List.iter
        (fun r ->
          if r.a_tid <> c.tid && not (hb r c) then
            record_race ~obj ~field ~kind:`Read_write ~prior:r ~c ~site)
        l.rs;
      l.w <- Some (access_of c site);
      l.rs <- [])

let acquire_slow ~site lid =
  let c = ctx () in
  maybe_perturb c site;
  locked (fun () ->
      incr ops_count;
      (match Hashtbl.find_opt sync_vc lid with
       | Some lvc ->
         let r = ref c.vc in
         vc_join r lvc;
         c.vc <- !r
       | None -> ());
      c.locks <- (lid, name_of lid) :: c.locks)

let release_slow ~site lid =
  let c = ctx () in
  maybe_perturb c site;
  locked (fun () ->
      incr ops_count;
      Hashtbl.replace sync_vc lid (Array.copy c.vc);
      tick c;
      c.locks <- List.filter (fun (l, _) -> l <> lid) c.locks)

let publish_slow ~site aid =
  let c = ctx () in
  maybe_perturb c site;
  locked (fun () ->
      incr ops_count;
      (match Hashtbl.find_opt sync_vc aid with
       | Some avc ->
         let r = ref avc in
         vc_join r c.vc;
         Hashtbl.replace sync_vc aid !r
       | None -> Hashtbl.replace sync_vc aid (Array.copy c.vc));
      tick c)

let consume_slow ~site aid =
  let c = ctx () in
  maybe_perturb c site;
  locked (fun () ->
      incr ops_count;
      match Hashtbl.find_opt sync_vc aid with
      | Some avc ->
        let r = ref c.vc in
        vc_join r avc;
        c.vc <- !r
      | None -> ())

(* --- fast-path wrappers --- *)

let[@inline] read ~site obj field =
  if Atomic.get on then read_slow ~site obj field

let[@inline] write ~site obj field =
  if Atomic.get on then write_slow ~site obj field

let[@inline] acquire ~site lid = if Atomic.get on then acquire_slow ~site lid
let[@inline] release ~site lid = if Atomic.get on then release_slow ~site lid
let[@inline] publish ~site aid = if Atomic.get on then publish_slow ~site aid
let[@inline] consume ~site aid = if Atomic.get on then consume_slow ~site aid

let[@inline] yield ~site =
  if Atomic.get on then begin
    let c = ctx () in
    maybe_perturb c site
  end

(* --- fork / join --- *)

type token = { mutable t_vc : int array option }

let fork () =
  if Atomic.get on then begin
    let c = ctx () in
    let t = locked (fun () ->
        let t = { t_vc = Some (Array.copy c.vc) } in
        tick c;
        t)
    in
    t
  end
  else { t_vc = None }

let born t =
  if Atomic.get on then
    let c = ctx () in
    locked (fun () ->
        match t.t_vc with
        | Some vc ->
          let r = ref c.vc in
          vc_join r vc;
          c.vc <- !r
        | None -> ())

let dying t =
  if Atomic.get on then
    let c = ctx () in
    locked (fun () ->
        t.t_vc <- Some (Array.copy c.vc);
        tick c)

let joined t =
  if Atomic.get on then
    let c = ctx () in
    locked (fun () ->
        match t.t_vc with
        | Some vc ->
          let r = ref c.vc in
          vc_join r vc;
          c.vc <- !r
        | None -> ())

(* --- reports --- *)

let races () =
  locked (fun () ->
      List.sort
        (fun a b ->
          let c = String.compare a.r_object b.r_object in
          if c <> 0 then c
          else
            let c = compare a.r_field b.r_field in
            if c <> 0 then c
            else compare (a.r_site1, a.r_site2) (b.r_site1, b.r_site2))
        !races_rev)

let race_count () = locked (fun () -> List.length !races_rev)

type stats = {
  st_ops : int;
  st_locations : int;
  st_yields : int;
  st_races : int;
}

let stats () =
  locked (fun () ->
      {
        st_ops = !ops_count;
        st_locations = Hashtbl.length shadow;
        st_yields = !yields_count;
        st_races = List.length !races_rev;
      })

let reset () =
  locked (fun () ->
      Hashtbl.reset shadow;
      Hashtbl.reset race_keys;
      races_rev := [];
      ops_count := 0;
      yields_count := 0)

let enable ?(seed = 0) () =
  Atomic.set perturb_seed seed;
  Atomic.set on true;
  (* Materialize the enabling domain's context now: otherwise a domain
     spawned before the enabler's first instrumented access would be
     joined into the enabler's newborn snapshot, hiding races against
     the enabler's own subsequent accesses. *)
  ignore (ctx ())

let disable () = Atomic.set on false

(* STRUDEL_DSAN=1 arms the sanitizer for a whole process — the lever
   the CI legs use to run the stock differential suites sanitized. *)
let () =
  match Sys.getenv_opt "STRUDEL_DSAN" with
  | Some ("1" | "true" | "yes") ->
    let seed =
      match Sys.getenv_opt "STRUDEL_DSAN_SEED" with
      | Some s -> ( try int_of_string s with _ -> 0)
      | None -> 0
    in
    enable ~seed ();
    (* a whole-process run has no natural reporting point, so dump any
       survivors on exit where the CI log will show them *)
    at_exit (fun () ->
        match races () with
        | [] -> ()
        | rs ->
          Printf.eprintf "dsan: %d race(s) detected:\n%!" (List.length rs);
          List.iter
            (fun r -> Format.eprintf "  %a@." pp_race r)
            rs)
  | _ -> ()
