(** Incremental re-evaluation of a site after a data change (§6,
    [FER 98c]).

    The site graph is recomputed — graph construction is the cheap,
    structural part — but HTML pages are regenerated only where a
    page's fingerprinted neighbourhood changed; unchanged pages keep
    their bytes without being rendered.  Incremental output is
    byte-identical to a full rebuild (property-tested under random
    mutations). *)

open Sgraph

(** Memo table for {!fingerprint}: (node id, depth) → hash. *)
type fp_cache = (int * int, int) Hashtbl.t

val fingerprint : ?cache:fp_cache -> Graph.t -> depth:int -> Oid.t -> int
(** A stable structural hash of the node's out-neighbourhood to
    [depth], independent of oid numbering (nodes contribute names,
    values their contents).  Uses explicit hash combining — immune to
    [Hashtbl.hash]'s structural truncation. *)

type rebuild_report = {
  built : Site.built;
  pages_total : int;
  pages_rerendered : int;
  pages_reused : int;
}

val default_depth : int
(** 2: covers templates that read their object's attributes plus one
    bounded hop ([@a.date], [KEY=year], EMBED of a neighbour).  Raise
    it for templates with deeper traversal. *)

val page_candidates : Graph.t -> Oid.t list -> Oid.t list

val publish_delta :
  ?jobs:int ->
  ?file_loader:(string -> string option) ->
  ?on_error:Fault.on_error ->
  ?fault:Fault.ctx ->
  ?sink:Render_pool.sink ->
  cache:Render_cache.t ->
  previous:Site.built ->
  data:Graph.t ->
  site_graph:Graph.t ->
  scope:Skolem.t ->
  touched:string list ->
  removed:string list ->
  unit ->
  rebuild_report
(** The differential publish leg of [strudel watch]: the site graph was
    already maintained in place (by {!Struql.Dexec}), so query
    re-evaluation is skipped and only page materialization runs,
    against the cross-epoch [cache] whose verifying read traces
    invalidate exactly the pages whose rendering observed the change.
    [touched]/[removed] are the site-node names the delta cycle
    reported; when both are empty the previous build's pages are reused
    wholesale.  Schemas and query profiles are carried over from
    [previous] (the maintained graph's queries have not changed).
    Output is byte-identical to a cold {!Site.build} over the same
    data. *)

val rebuild :
  ?depth:int ->
  ?jobs:int ->
  ?cache:Render_cache.t ->
  ?file_loader:(string -> string option) ->
  ?on_error:Fault.on_error ->
  ?fault:Fault.ctx ->
  ?shards:Struql.Exec.shard_ctx ->
  previous:Site.built -> data:Graph.t -> unit ->
  rebuild_report
(** Rebuild the site over changed data, reusing unchanged pages of
    [previous] without re-rendering them.  Pages match between builds
    by Skolem-term name.  By default reuse is decided by neighbourhood
    fingerprints to [depth]; with [cache] it is decided by replaying
    each cached page's recorded read set against the new site graph —
    exact invalidation — and re-renders run through
    {!Render_pool.materialize} with [jobs] domains, storing fresh
    traces back into [cache].

    With [~on_error:Degrade], failed re-renders become placeholder
    pages with recorded faults (see {!Render_pool.materialize}); a
    previous build's placeholder is never reused even when its
    fingerprint matches, so the page re-renders for real once the
    fault clears. *)
