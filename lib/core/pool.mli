(** Persistent worker-domain pool and work-stealing chunk queues.

    Spawning an OCaml domain costs close to a millisecond — comparable
    to rendering dozens of pages — so the old per-wave
    [Domain.spawn]/[Domain.join] cycle dominated parallel
    materialization at small and medium site sizes.  This pool spawns
    workers once, parks them on a condition variable between jobs, and
    reuses them across builds: {!Render_pool.materialize},
    {!Incremental.rebuild} and the bench harness all share {!shared},
    so only the first parallel build of a process pays the spawn cost.

    {!run} executes one {e job}: [f w] for every worker index
    [w ∈ 0..jobs-1], with [f 0] on the calling domain and the rest on
    pool workers.  Exceptions from any participant are re-raised on the
    caller after every participant finished — a job never leaves a
    worker running.  If the pool is already executing a job (a
    concurrent build from another domain), the call transparently falls
    back to ephemeral domains, so [run] never blocks on an unrelated
    build and never nests a pool inside itself.

    {!Work} is the companion scheduling structure: a batch of [total]
    items is cut into contiguous chunks and the chunks are dealt out in
    contiguous runs to per-worker deques.  A worker takes from the
    front of its own deque and, when that is empty, steals from the
    back of a victim's — classic work stealing at chunk granularity, so
    the deque mutexes are touched once per chunk, not once per item.
    Which worker executes which chunk is scheduling-dependent;
    determinism of the overall computation must come from writing
    results into per-item slots, never from execution order. *)

val auto_jobs : unit -> int
(** The domain count to use when the caller asked for automatic
    parallelism ([--jobs 0]): [Domain.recommended_domain_count],
    clamped to at least 1. *)

(** {1 Work-stealing chunk queues} *)

module Work : sig
  type t

  val create : total:int -> workers:int -> t
  (** Cut [0..total-1] into chunks (sized so each worker sees several —
      small enough to balance skewed item costs, large enough to keep
      per-chunk locking negligible) and deal them to [workers] deques
      in contiguous runs. *)

  val take : t -> int -> (int * int) option
  (** [take t w] returns the next chunk [(lo, hi)] (item indexes
      [lo..hi-1]) for worker [w]: the front of [w]'s own deque, or a
      chunk stolen from the back of another worker's.  [None] when
      every deque is empty. *)

  val steals : t -> int
  (** Chunks executed by a worker other than the one they were dealt
      to. *)
end

(** {1 The persistent pool} *)

type t

val create : unit -> t
(** An empty pool; workers are spawned lazily by {!run} and joined by
    an [at_exit] hook. *)

val shared : t
(** The process-wide pool every parallel build amortizes its domains
    over. *)

val live_workers : t -> int
(** Worker domains currently parked in the pool (0 before the first
    parallel [run]). *)

val run : t -> jobs:int -> (int -> unit) -> unit
(** [run t ~jobs f] executes [f 0] on the caller and [f w] for
    [w = 1..jobs-1] on pool workers (spawning any the pool does not
    have yet), and returns when all of them finished.  The first
    exception raised by any participant (the caller's own first) is
    re-raised after the join.  [jobs <= 1] is just [f 0]. *)
