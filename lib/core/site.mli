(** Site definitions and the end-to-end build pipeline (Fig. 1).

    A site definition bundles the three separated concerns: the {e data}
    (a data graph built by wrappers / the mediator), the {e structure}
    (one or more StruQL site-definition queries, composed in order under
    a shared Skolem scope), and the {e presentation} (a set of HTML
    templates).  {!build} evaluates the queries over the data graph,
    derives the site schemas, checks the declared integrity constraints
    and runs the HTML generator from the root family's pages. *)

open Sgraph

type definition = {
  name : string;
  queries : (string * string) list;
      (** named StruQL sources, evaluated in order *)
  templates : Template.Generator.template_set;
  root_family : string;  (** Skolem family of the root page(s) *)
  constraints : Schema.Verify.constraint_ list;
  registry : Struql.Builtins.registry;
  strategy : Struql.Plan.strategy;
}

val define :
  ?templates:Template.Generator.template_set ->
  ?constraints:Schema.Verify.constraint_ list ->
  ?registry:Struql.Builtins.registry ->
  ?strategy:Struql.Plan.strategy ->
  name:string ->
  root_family:string ->
  (string * string) list ->
  definition

type built = {
  def : definition;
  data : Graph.t;
  site_graph : Graph.t;
  scope : Skolem.t;  (** the shared Skolem scope of the build *)
  schemas : (string * Schema.Site_schema.t) list;
  site : Template.Generator.site;
  verification : (Schema.Verify.constraint_ * Schema.Verify.verdict) list;
  query_stats : Struql.Exec.profile list;
      (** per-operator execution profile of each site-definition query,
          in evaluation order *)
  render_profile : Render_pool.profile;
      (** per-domain page-rendering profile of the HTML generation
          phase (jobs, waves, shard times, cache hit counts) *)
  faults : Fault.report list;
      (** everything recorded in the build's fault context (ingest,
          integration and render faults), oldest first; [[]] for a
          clean or fault-blind build *)
}

exception Build_error of string

val parse_queries : definition -> (string * Struql.Ast.query) list

val build_site_graph :
  ?scope:Skolem.t ->
  ?shards:Struql.Exec.shard_ctx ->
  ?into:Graph.t ->
  definition ->
  Graph.t ->
  Graph.t * Skolem.t * (string * Schema.Site_schema.t) list
  * Struql.Exec.profile list
(** Evaluate the definition's queries over the data into one site
    graph, without generating HTML.  Queries run on the streaming
    {!Struql.Exec} engine; the returned profiles carry per-operator
    row counts and the peak live-binding watermark of each query.
    [shards] (a context whose union is the data graph, e.g. from
    {!Mediator.Warehouse.shard_ctx_of_view}) lets driving collection
    scans prune and parallelize per shard — output is byte-identical
    either way. *)

val roots_of : Graph.t -> string -> Oid.t list
(** Members of the root Skolem family in a site graph. *)

val build :
  ?jobs:int ->
  ?render_cache:Render_cache.t ->
  ?file_loader:(string -> string option) ->
  ?on_error:Fault.on_error ->
  ?fault:Fault.ctx ->
  ?shards:Struql.Exec.shard_ctx ->
  ?sink:Render_pool.sink ->
  data:Graph.t -> definition ->
  built
(** The full pipeline: site graph, schema, constraint verification,
    HTML generation.  [jobs] (default 1) fans page rendering out over
    OCaml domains through {!Render_pool}'s work-stealing scheduler
    ([jobs <= 0] auto-detects the machine's domain count);
    [render_cache] reuses pages whose read traces still verify.
    Output is byte-identical across [jobs] values and cache states.

    With [sink], pages are streamed out in canonical order as they
    render and [built.site] carries an empty page list — peak memory
    is bounded by {!Render_pool.default_slice} pages instead of the
    site size ([built.render_profile.rp_pages] still counts them).

    With [~on_error:Degrade] a failed page render becomes a
    placeholder instead of aborting the build; faults recorded in
    [fault] (by this build or by the ingest stage before it) are
    snapshotted into [built.faults] for {!manifest}. *)

val manifest : built -> Fault.Manifest.t
(** The machine-readable outcome of the build ([faults.json]): site
    name, [Clean]/[Degraded] status, the recorded faults, and the exit
    code (0 clean, 3 degraded). *)

val regenerate :
  ?jobs:int ->
  ?file_loader:(string -> string option) ->
  built -> Template.Generator.template_set -> built
(** Re-run only the HTML generator with different templates — another
    visual version of the same site graph (internal vs external). *)

val violations : built -> (Schema.Verify.constraint_ * string list) list
(** The violated constraints with their witnesses (empty = clean). *)

(** {1 Specification metrics} — the paper's §5.1 site statistics. *)

type spec_stats = {
  query_count : int;
  query_lines : int;
  link_clauses : int;
  template_count : int;
  template_lines : int;
}

val spec_stats : definition -> spec_stats
val pp_spec_stats : Format.formatter -> spec_stats -> unit
