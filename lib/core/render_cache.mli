(** Dependency-tracked cache of rendered pages.

    A verifying-trace cache: each entry stores a page's rendered bytes
    plus the exact read set the render performed, as recorded by
    {!Template.Generator.render_page_full}[ ~trace_reads:true].  An
    entry is reused iff replaying every read against the current graph
    yields the same result hashes, so an edit invalidates exactly the
    pages whose rendering observed it.  Entries are keyed by the page
    object's {e name} (its Skolem term), which is stable across rebuilds
    even though oids are not.  A template-set fingerprint clears the
    cache wholesale when the presentation changes. *)

open Sgraph

type entry = {
  e_url : string;
  e_title : string;
  e_body : string;
  e_html : string;
  e_reads : Template.Generator.read list;
  e_refs : string list;
      (** names of the internal objects the page links to — the demand
          edges page discovery follows on a cache hit *)
}

type t

val create : unit -> t
val clear : t -> unit
val size : t -> int

val stats : t -> int * int * int
(** [(hits, misses, invalidations)] since creation or [reset_stats]. *)

val reset_stats : t -> unit

val set_templates : t -> Template.Generator.template_set -> unit
(** Declare the template set cached pages are rendered with; a change
    of fingerprint drops every entry (template text is an input the
    read traces cannot see). *)

val verify :
  ?file_loader:(string -> string option) -> Graph.t -> entry -> bool
(** Replay the entry's trace against the graph; [true] iff every read
    still returns the same result hash.  Does not touch statistics. *)

val verify_dirty :
  ?file_loader:(string -> string option) ->
  dirty:(string -> bool) -> Graph.t -> entry -> bool
(** {!verify} with an exact change hint: [dirty name] must hold for
    every site node whose values, out-edges or collection membership
    changed since the trace was recorded.  Graph reads of non-dirty
    subjects are accepted without replay — O(changed) verification
    instead of O(site) — while dirty-subject and file reads are
    replayed.  Sound iff the hint covers every change; the delta
    cycle's touched ∪ removed name sets do by construction. *)

val find_valid :
  ?file_loader:(string -> string option) -> t -> Graph.t -> Oid.t ->
  entry option
(** Cached page for object [o] (by name), re-verified against the
    graph.  Counts a hit; a stale entry is removed and counted as an
    invalidation; an absent one as a miss. *)

val peek_batch : t -> Oid.t array -> entry option array
(** Entries for a batch of page objects (by name) in one pass, without
    verification or statistics — the parallel pool prefetches on the
    main domain, verifies traces on worker domains ({!verify} only
    reads the graph), and settles the table afterwards with {!settle},
    {!drop} and {!store}. *)

val settle : t -> hits:int -> misses:int -> invalidations:int -> unit
(** Fold one batch's verdict counts into the statistics. *)

val drop : t -> Oid.t -> unit
(** Remove the entry for a page object — a stale entry whose re-render
    degraded to a placeholder, which must not stay cached. *)

val store : t -> Template.Generator.rendered -> unit
(** Record a freshly rendered page (render with [~trace_reads:true],
    else the entry validates vacuously). *)

val page_of_entry : entry -> Oid.t -> Template.Generator.page
(** Rebuild a page value for the current build's page object from a
    validated entry. *)

val refs_of_entry : Graph.t -> entry -> Oid.t list
(** The entry's referenced objects resolved in the current graph. *)

val pp_stats : Format.formatter -> t -> unit
