(** Materialization strategies for STRUDEL sites (§1, §6, [FER 98c]).

    The "Web site as view" spectrum:
    - {!full}: materialize the complete site before browsing (the
      prototype's default — warehouse-style, maximal up-front cost,
      minimal click latency);
    - {!Click_time}: precompute only the root(s) of the site, then
      compute at click time the queries that obtain the next page.  The
      site-definition query is decomposed — via the site schema — into
      one node-expansion query per Skolem family: when the user clicks
      to page [F(a)], the engine binds [F]'s defining variables to [a]
      and evaluates only the link clauses leaving [F].  Results are
      optionally cached, so a revisited page costs nothing. *)

open Sgraph
open Struql

(* --- Full materialization --- *)

let full ?jobs ?render_cache ?file_loader ~data (def : Site.definition) =
  Site.build ?jobs ?render_cache ?file_loader ~data def

(* --- Click-time evaluation --- *)

module Click_time = struct
  type t = {
    data : Graph.t;
    def : Site.definition;
    scope : Skolem.t;
    partial : Graph.t;  (** the lazily materialized site graph *)
    schemas : Schema.Site_schema.t list;
    options : Eval.options;
    mutable expanded : Oid.Set.t;
    page_cache : Render_cache.t;
        (** dependency-tracked page cache: entries are re-verified
            against the partial graph on every lookup, so a session that
            mutates already-expanded regions re-renders exactly the
            affected pages *)
    cache_pages : bool;
    compiled : Template.Generator.compiled;
        (** session-wide template-compilation cache *)
    mutable stats_expansions : int;
    mutable stats_queries : int;  (** link-clause evaluations performed *)
    mutable stats_peak_live : int;
        (** largest live-binding watermark any click-time query reached *)
  }

  let binding_of_arg = function
    | Skolem.A_oid o -> Eval.B_target (Graph.N o)
    | Skolem.A_val v -> Eval.B_target (Graph.V v)
    | Skolem.A_label l -> Eval.B_label l

  (* Bind the source-term variables of a schema edge to the concrete
     arguments of the clicked node. *)
  let bind_args (terms : Ast.term list) (args : Skolem.arg list) =
    let rec go env ts as_ =
      match ts, as_ with
      | [], [] -> Some env
      | Ast.T_var v :: ts', a :: as' ->
        go (Eval.Env.add v (binding_of_arg a) env) ts' as'
      | Ast.T_const c :: ts', Skolem.A_val v :: as' ->
        if Value.coerce_equal c v then go env ts' as' else None
      | Ast.T_const _ :: _, _ -> None
      | Ast.T_skolem _ :: _, _ -> None  (* nested Skolem args: not expandable *)
      | _, _ -> None
    in
    go Eval.Env.empty terms args

  (** Start a click-time session: evaluate only the CREATE clauses of
      the root family (plus its collects), leaving all links pending. *)
  let start ?(cache = true) ~(data : Graph.t) (def : Site.definition) : t =
    let queries = Site.parse_queries def in
    let scope = Skolem.create () in
    (* the data graph is never mutated by a click-time session: one
       freeze serves every root and expansion query *)
    ignore (Graph.freeze data);
    let partial = Graph.create ~name:(def.Site.name ^ "-clicktime") () in
    let options =
      { Eval.default_options with
        strategy = def.Site.strategy;
        registry = def.Site.registry }
    in
    let schemas = List.map (fun (_, q) -> Schema.Site_schema.of_query q) queries in
    let t =
      {
        data;
        def;
        scope;
        partial;
        schemas;
        options;
        expanded = Oid.Set.empty;
        page_cache = Render_cache.create ();
        cache_pages = cache;
        compiled = Template.Generator.new_compiled ();
        stats_expansions = 0;
        stats_queries = 0;
        stats_peak_live = 0;
      }
    in
    Render_cache.set_templates t.page_cache def.Site.templates;
    (* materialize the root family's nodes *)
    List.iter
      (fun sch ->
        List.iter
          (fun (k : Schema.Site_schema.create_info) ->
            if k.k_fn = def.Site.root_family then begin
              t.stats_queries <- t.stats_queries + 1;
              let rows, _, peak =
                Exec.bindings_profiled ~options data k.k_conds
                  ~needed_obj:
                    (Ast.dedup
                       (List.concat_map (Ast.term_vars []) k.k_args))
              in
              t.stats_peak_live <- max t.stats_peak_live peak;
              List.iter
                (fun env ->
                  let args =
                    List.map
                      (fun term ->
                        match term with
                        | Ast.T_var v -> (
                            match Eval.Env.find_opt v env with
                            | Some (Eval.B_target (Graph.N o)) ->
                              Skolem.A_oid o
                            | Some (Eval.B_target (Graph.V v')) ->
                              Skolem.A_val v'
                            | Some (Eval.B_label l) -> Skolem.A_label l
                            | None -> Skolem.A_val Value.Null)
                        | Ast.T_const c -> Skolem.A_val c
                        | Ast.T_skolem _ | Ast.T_agg _ -> Skolem.A_val Value.Null)
                      k.k_args
                  in
                  let o, _ = Skolem.apply scope k.k_fn args in
                  Graph.add_node partial o)
                rows
            end)
          sch.Schema.Site_schema.creates)
      schemas;
    t

  let family_of t o =
    match Skolem.term_of t.scope o with
    | Some (f, args) -> Some (f, args)
    | None -> None

  (* Materialize the collections a node of this family belongs to. *)
  let apply_collects t o fam =
    List.iter
      (fun sch ->
        List.iter
          (fun (c : Schema.Site_schema.collect_info) ->
            match c.c_term with
            | Ast.T_skolem (f, _) when f = fam ->
              Graph.add_to_collection t.partial c.c_name o
            | _ -> ())
          sch.Schema.Site_schema.collects)
      t.schemas

  (** Materialize the outgoing links of one site-graph node by
      evaluating, per schema edge leaving its family, the governing
      conjunction with the node's defining variables bound. *)
  let expand t (o : Oid.t) =
    if not (Oid.Set.mem o t.expanded) then begin
      t.expanded <- Oid.Set.add o t.expanded;
      t.stats_expansions <- t.stats_expansions + 1;
      match family_of t o with
      | None -> ()  (* a data object copied into the site graph *)
      | Some (fam, args) ->
        apply_collects t o fam;
        List.iter
          (fun sch ->
            List.iter
              (fun (e : Schema.Site_schema.edge) ->
                match e.src with
                | Schema.Site_schema.NF f when f = fam -> (
                    match bind_args e.src_args args with
                    | None -> ()
                    | Some env ->
                      t.stats_queries <- t.stats_queries + 1;
                      let rows, _, peak =
                        Exec.bindings_profiled ~options:t.options ~env t.data
                          e.conds
                          ~needed_obj:
                            (Ast.dedup
                               (List.concat_map (Ast.term_vars [])
                                  (e.dst_args
                                  @ List.concat_map
                                      (fun lt ->
                                        match lt with
                                        | Ast.L_var v -> [ Ast.T_var v ]
                                        | Ast.L_const _ -> [])
                                      [ e.label ])))
                      in
                      t.stats_peak_live <- max t.stats_peak_live peak;
                      let label_of env =
                        match e.label with
                        | Ast.L_const c -> Some c
                        | Ast.L_var v -> (
                            match Eval.Env.find_opt v env with
                            | Some (Eval.B_label l) -> Some l
                            | Some (Eval.B_target (Graph.V v')) ->
                              Some (Value.to_display_string v')
                            | _ -> None)
                      in
                      let plain_target env term =
                        match term with
                        | Ast.T_var v -> (
                            match Eval.Env.find_opt v env with
                            | Some (Eval.B_target tgt) -> Some tgt
                            | Some (Eval.B_label l) ->
                              Some (Graph.V (Value.String l))
                            | None -> None)
                        | Ast.T_const c -> Some (Graph.V c)
                        | Ast.T_skolem _ | Ast.T_agg _ -> None
                      in
                      (match e.dst, e.dst_args with
                       | Schema.Site_schema.NS, [ Ast.T_agg (fn, inner) ] ->
                         (* aggregate link: group the rows by label and
                            emit one aggregated edge per group, exactly
                            as full evaluation does *)
                         let groups = Hashtbl.create 4 in
                         List.iter
                           (fun env ->
                             match label_of env, plain_target env inner with
                             | Some l, Some tgt ->
                               let vals =
                                 match Hashtbl.find_opt groups l with
                                 | Some h -> h
                                 | None ->
                                   let h = Hashtbl.create 8 in
                                   Hashtbl.add groups l h;
                                   h
                               in
                               Hashtbl.replace vals (Eval.target_key tgt) tgt
                             | _ -> ())
                           rows;
                         Hashtbl.iter
                           (fun l vals ->
                             let values =
                               Hashtbl.fold (fun _ v acc -> v :: acc) vals []
                             in
                             Graph.add_edge t.partial o l
                               (Graph.V (Eval.aggregate fn values)))
                           groups
                       | _ ->
                      List.iter
                        (fun env ->
                          let label = label_of env in
                          let target =
                            match e.dst with
                            | Schema.Site_schema.NF g_fn ->
                              let sargs =
                                List.map
                                  (fun term ->
                                    match term with
                                    | Ast.T_var v -> (
                                        match Eval.Env.find_opt v env with
                                        | Some (Eval.B_target (Graph.N n)) ->
                                          Some (Skolem.A_oid n)
                                        | Some (Eval.B_target (Graph.V v')) ->
                                          Some (Skolem.A_val v')
                                        | Some (Eval.B_label l) ->
                                          Some (Skolem.A_label l)
                                        | None -> None)
                                    | Ast.T_const c -> Some (Skolem.A_val c)
                                    | Ast.T_skolem _ | Ast.T_agg _ -> None)
                                  e.dst_args
                              in
                              if List.for_all Option.is_some sargs then begin
                                let n, _ =
                                  Skolem.apply t.scope g_fn
                                    (List.map Option.get sargs)
                                in
                                Graph.add_node t.partial n;
                                Some (Graph.N n)
                              end
                              else None
                            | Schema.Site_schema.NS -> (
                                match e.dst_args with
                                | [ term ] -> plain_target env term
                                | _ -> None)
                          in
                          match label, target with
                          | Some l, Some tgt ->
                            Graph.add_edge t.partial o l tgt
                          | _ -> ())
                        rows))
                | _ -> ())
              sch.Schema.Site_schema.edges)
          t.schemas
    end

  type browse_error =
    | Unknown_object of string
        (** the oid is not a node of this session's site graph — the
            serving layer's 404 *)
    | Render_failed of string
        (** the generator raised; the page is isolated — the serving
            layer's 503 *)

  exception Browse_error of browse_error

  let browse_error_message = function
    | Unknown_object name -> "unknown site object: " ^ name
    | Render_failed msg -> "page render failed: " ^ msg

  (** Expand the node (and, for embedded content, its immediate
      successors) and render just that page, as a structured result: an
      oid outside the session's site graph or a generator exception
      becomes an [Error], never an escape — one crashing page must not
      take down a serving worker.  [compiled] lets each caller thread of
      control own its template-compilation cache (the session-wide one
      is not domain-safe); [trace_reads] defaults to the session's
      caching mode. *)
  let render_page ?compiled ?trace_reads t (o : Oid.t) :
      (Template.Generator.rendered, browse_error) result =
    if not (Graph.mem_node t.partial o) then Error (Unknown_object (Oid.name o))
    else begin
      expand t o;
      List.iter
        (fun (_, tgt) ->
          match tgt with Graph.N n -> expand t n | Graph.V _ -> ())
        (Graph.out_edges t.partial o);
      let compiled = match compiled with Some c -> c | None -> t.compiled in
      let trace_reads =
        match trace_reads with Some b -> b | None -> t.cache_pages
      in
      match
        Template.Generator.render_page_full
          ~templates:t.def.Site.templates ~compiled ~trace_reads t.partial o
      with
      | r -> Ok r
      | exception Template.Generator.Generator_error msg ->
        Error (Render_failed msg)
      | exception Template.Tparse.Template_error msg ->
        Error (Render_failed msg)
      | exception Fault.Inject.Injected msg -> Error (Render_failed msg)
      | exception ((Out_of_memory | Stack_overflow | Sys.Break) as e) ->
        raise e
      | exception e -> Error (Render_failed (Printexc.to_string e))
    end

  let try_browse t (o : Oid.t) : (string, browse_error) result =
    match
      if t.cache_pages then Render_cache.find_valid t.page_cache t.partial o
      else None
    with
    | Some e -> Ok e.Render_cache.e_html
    | None -> (
      match render_page t o with
      | Ok r ->
        if t.cache_pages then Render_cache.store t.page_cache r;
        Ok r.Template.Generator.r_page.Template.Generator.html
      | Error e -> Error e)

  (** Render one page at click time, through the page cache when
      enabled.  Raises {!Browse_error} on an unknown oid or a failed
      render (callers that can degrade should use {!try_browse}). *)
  let browse t (o : Oid.t) : string =
    match try_browse t o with
    | Ok html -> html
    | Error e -> raise (Browse_error e)

  let roots t =
    List.filter
      (fun o ->
        match family_of t o with
        | Some (f, _) -> f = t.def.Site.root_family
        | None -> false)
      (Graph.nodes t.partial)

  (** Deterministic random walk over the site from the root — the
      browse simulator standing in for real user clicks.  Returns the
      number of pages visited. *)
  let random_walk t ~clicks ~seed =
    let state = ref (seed lor 1) in
    let next_int bound =
      state := (!state * 1103515245 + 12345) land 0x3FFFFFFF;
      if bound <= 0 then 0 else !state mod bound
    in
    match roots t with
    | [] -> 0
    | root :: _ ->
      let current = ref root in
      let visited = ref 0 in
      for _ = 1 to clicks do
        ignore (browse t !current);
        incr visited;
        let links =
          List.filter_map
            (fun (_, tgt) ->
              match tgt with
              | Graph.N n when Skolem.term_of t.scope n <> None -> Some n
              | _ -> None)
            (Graph.out_edges t.partial !current)
        in
        match links with
        | [] -> current := root  (* dead end: back to the root *)
        | _ -> current := List.nth links (next_int (List.length links))
      done;
      !visited

  type stats = {
    expansions : int;
    queries : int;
    cache_hits : int;
    cache_misses : int;
    cache_invalidations : int;
        (** cached pages whose read trace no longer verified against
            the partial graph and were re-rendered *)
    materialized_nodes : int;
    materialized_edges : int;
    peak_live : int;
  }

  let stats t =
    let hits, misses, invalidations = Render_cache.stats t.page_cache in
    {
      expansions = t.stats_expansions;
      queries = t.stats_queries;
      cache_hits = hits;
      cache_misses = misses;
      cache_invalidations = invalidations;
      materialized_nodes = Graph.node_count t.partial;
      materialized_edges = Graph.edge_count t.partial;
      peak_live = t.stats_peak_live;
    }
end
