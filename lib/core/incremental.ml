(** Incremental re-evaluation of a site after a data change (§6,
    [FER 98c] "Warehousing and Incremental Evaluation for Web-site
    Management").

    Strategy: the site graph is recomputed — graph construction is the
    cheap, structural part — but HTML pages, the expensive rendered
    artifacts, are regenerated only where a page's {e neighbourhood}
    changed.  Each page object is fingerprinted by hashing its
    out-neighbourhood to a bounded depth (covering what templates can
    reach through bounded attribute traversal and embedding); pages
    whose fingerprint matches the previous build keep their HTML and
    are not rendered at all.

    Node identities differ between builds (fresh Skolem scopes), so
    pages are matched by Skolem-term name.  Page discovery walks the
    site graph from the roots and treats every reachable Skolem-created
    object as a page — a slight over-approximation of the generator's
    demand-driven page set (an object that is only ever embedded would
    get a page of its own), harmless for correctness and byte-identical
    for every template set in this repository. *)

open Sgraph

(* A memo table (node id, depth) -> hash makes fingerprinting the whole
   page set linear in the graph instead of re-hashing shared
   neighbourhoods once per referencing page. *)
type fp_cache = (int * int, int) Hashtbl.t

(* Explicit hash combining: [Hashtbl.hash] on structured data stops
   after ~10 meaningful nodes, so hashing an edge LIST through it makes
   every node with more than a handful of edges collide with its
   mutations.  Strings hash in full, so leaves go through
   [Hashtbl.hash]; combining is done by hand (FNV-style). *)
let mix acc h = (acc * 0x01000193) lxor h land max_int

let fingerprint ?(cache : fp_cache option) g ~depth (o : Oid.t) : int =
  let rec hash_node d o =
    match cache with
    | Some c -> (
        match Hashtbl.find_opt c (Oid.id o, d) with
        | Some h -> h
        | None ->
          let h = compute d o in
          Hashtbl.add c (Oid.id o, d) h;
          h)
    | None -> compute d o
  and compute d o =
    if d = 0 then Hashtbl.hash (Oid.name o)
    else
      let edges =
        List.map
          (fun (l, tgt) ->
            match tgt with
            | Graph.V v ->
              mix
                (mix (Hashtbl.hash l)
                   (Hashtbl.hash (Value.to_display_string v)))
                (Hashtbl.hash (Value.kind_name v))
            | Graph.N o' -> mix (Hashtbl.hash l) (hash_node (d - 1) o'))
          (Graph.out_edges g o)
      in
      List.fold_left mix
        (Hashtbl.hash (Oid.name o))
        (List.sort compare edges)
  in
  hash_node depth o

type rebuild_report = {
  built : Site.built;
  pages_total : int;
  pages_rerendered : int;
  pages_reused : int;
}

(** Fingerprint depth: templates read a page object's own attributes
    and one bounded hop into linked/embedded objects ([@a.date],
    [KEY=year], an [EMBED] of an object rendering its own attributes);
    2 levels cover every template in this repository (and the paper's
    examples).  Raise it for templates with deeper traversal. *)
let default_depth = 2

let page_candidates site_graph roots =
  let reachable = Algo.reachable site_graph roots in
  List.filter
    (fun o ->
      Schema.Verify.family_of_node o <> None
      || List.exists (Oid.equal o) roots)
    (List.filter (fun o -> Oid.Set.mem o reachable) (Graph.nodes site_graph))

(** The differential publish leg ([strudel watch]): the site graph has
    already been maintained in place by {!Struql.Dexec}, so query
    re-evaluation is skipped entirely and only the render stage runs —
    against the cross-epoch [cache], whose verifying read traces give
    exact page invalidation.  [touched]/[removed] are the site-node
    names the delta cycle reported: when both are empty the previous
    pages are reused wholesale without touching the render pipeline. *)
let publish_delta ?jobs ?file_loader ?(on_error = Fault.Abort) ?fault ?sink
    ~cache ~(previous : Site.built) ~data ~site_graph ~scope ~touched ~removed
    () : rebuild_report =
  let def = previous.Site.def in
  if touched = [] && removed = [] then
    let total =
      List.length previous.Site.site.Template.Generator.pages
    in
    {
      built = { previous with Site.data; site_graph; scope };
      pages_total = total;
      pages_rerendered = 0;
      pages_reused = total;
    }
  else begin
    let roots = Site.roots_of site_graph def.Site.root_family in
    (* the delta cycle's touched ∪ removed names are exactly the site
       nodes whose adjacency changed: hand them to the render pool so
       trace verification replays only reads of changed nodes *)
    let dirty =
      let tbl = Hashtbl.create 64 in
      List.iter (fun n -> Hashtbl.replace tbl n ()) touched;
      List.iter (fun n -> Hashtbl.replace tbl n ()) removed;
      fun n -> Hashtbl.mem tbl n
    in
    let site, render_profile =
      Render_pool.materialize ?jobs ~cache ~dirty ?file_loader
        ~templates:def.Site.templates ~on_error ?fault ?sink ~refreeze:false
        site_graph ~roots
    in
    let verification =
      Schema.Verify.check_all_site site_graph def.Site.constraints
    in
    let rerendered = render_profile.Render_pool.rp_rendered in
    let pages_total = render_profile.Render_pool.rp_pages in
    {
      built =
        {
          Site.def;
          data;
          site_graph;
          scope;
          schemas = previous.Site.schemas;
          site;
          verification;
          query_stats = previous.Site.query_stats;
          render_profile;
          faults = (match fault with Some c -> Fault.reports c | None -> []);
        };
      pages_total;
      pages_rerendered = rerendered;
      pages_reused = pages_total - rerendered;
    }
  end

(** Rebuild the site over changed data, reusing unchanged pages of
    [previous] without re-rendering them.

    Two reuse disciplines:
    - the default {e fingerprint} path hashes each page object's
      out-neighbourhood to [depth] and reuses the previous page on a
      match — cheap but approximate (a conservative depth must cover
      the deepest template traversal);
    - with [cache], the {e trace-verified} path replays each cached
      page's recorded read set against the new site graph and reuses
      the page iff every read still returns the same answer — exact
      invalidation, independent of template traversal depth.  The
      rebuild then runs through {!Render_pool.materialize} (so [jobs]
      also parallelizes the re-renders) and fresh traces are stored
      back into [cache]. *)
let rebuild ?(depth = default_depth) ?jobs ?cache ?file_loader
    ?(on_error = Fault.Abort) ?fault ?shards ~(previous : Site.built) ~data ()
    : rebuild_report =
  let def = previous.Site.def in
  let site_graph, scope, schemas, query_stats =
    Site.build_site_graph ?shards def data
  in
  let roots = Site.roots_of site_graph def.Site.root_family in
  let t0 = Unix.gettimeofday () in
  let site, render_profile, rerendered, reused =
    match cache with
    | Some c ->
      let site, profile =
        Render_pool.materialize ?jobs ~cache:c ?file_loader ~on_error ?fault
          ~templates:def.Site.templates site_graph ~roots
      in
      ( site,
        profile,
        profile.Render_pool.rp_rendered,
        profile.Render_pool.rp_pages - profile.Render_pool.rp_rendered )
    | None ->
      (* previous pages and fingerprints, keyed by node name *)
      let old_cache : fp_cache = Hashtbl.create 1024 in
      let new_cache : fp_cache = Hashtbl.create 1024 in
      let old_fp = Hashtbl.create 256 in
      List.iter
        (fun (p : Template.Generator.page) ->
          Hashtbl.replace old_fp
            (Oid.name p.Template.Generator.obj)
            ( fingerprint ~cache:old_cache previous.Site.site_graph ~depth
                p.Template.Generator.obj,
              p ))
        previous.Site.site.Template.Generator.pages;
      let rerendered = ref 0 and reused = ref 0 and degraded = ref 0 in
      let inject = Fault.inject fault in
      let render_one o =
        let render () =
          Fault.Inject.fire inject
            (Fault.Inject.Render_page (Oid.name o));
          Template.Generator.render_page ?file_loader
            ~templates:def.Site.templates site_graph o
        in
        match on_error with
        | Fault.Abort -> render ()
        | Fault.Degrade -> (
          try render ()
          with e ->
            let cause =
              match e with
              | Fault.Inject.Injected m -> m
              | Template.Generator.Generator_error m -> m
              | Template.Tparse.Template_error m -> "template error: " ^ m
              | e -> Printexc.to_string e
            in
            let url = Template.Generator.slug (Oid.name o) ^ ".html" in
            incr degraded;
            (match fault with
             | Some c ->
               Fault.record c
                 (Fault.report ~stage:Fault.Render
                    ~source:(Graph.name site_graph) ~location:url ~cause ())
             | None -> ());
            Template.Generator.placeholder_page ~url ~cause o)
      in
      let pages =
        List.map
          (fun o ->
            let name = Oid.name o in
            match Hashtbl.find_opt old_fp name with
            | Some (fp_old, p_old)
              when fp_old = fingerprint ~cache:new_cache site_graph ~depth o
                   (* a placeholder is not a real previous render: a
                      matching fingerprint must still re-render it once
                      the fault clears *)
                   && not (Template.Generator.is_placeholder p_old) ->
              incr reused;
              { p_old with Template.Generator.obj = o }
            | _ ->
              incr rerendered;
              render_one o)
          (page_candidates site_graph roots)
      in
      let wall = (Unix.gettimeofday () -. t0) *. 1000. in
      ( { Template.Generator.pages; graph = site_graph },
        {
          Render_pool.rp_jobs = 1;
          rp_pages = List.length pages;
          rp_rendered = !rerendered;
          rp_waves = 1;
          rp_steals = 0;
          rp_shards =
            [ { Render_pool.sh_domain = 0;
                sh_pages = !rerendered;
                sh_wall_ms = wall } ];
          rp_cache_hits = !reused;
          rp_cache_misses = !rerendered;
          rp_cache_invalidations = 0;
          rp_fallback = false;
          rp_degraded = !degraded;
          rp_wall_ms = wall;
        },
        !rerendered,
        !reused )
  in
  let verification =
    Schema.Verify.check_all_site site_graph def.Site.constraints
  in
  {
    built =
      {
        Site.def;
        data;
        site_graph;
        scope;
        schemas;
        site;
        verification;
        query_stats;
        render_profile;
        faults = (match fault with Some c -> Fault.reports c | None -> []);
      };
    pages_total = List.length site.Template.Generator.pages;
    pages_rerendered = rerendered;
    pages_reused = reused;
  }
