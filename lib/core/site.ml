(** Site definitions and the end-to-end build pipeline (Fig. 1).

    A site definition bundles the three separated concerns:
    - the {e data}: a data graph (built by wrappers / the mediator);
    - the {e structure}: one or more StruQL site-definition queries,
      composed in order under a shared Skolem scope (§5.2: "we allowed
      queries to add nodes and arcs to a graph, [so] different queries
      [can] create different parts of the same site");
    - the {e presentation}: a set of HTML templates.

    [build] evaluates the queries over the data graph to produce the
    site graph, derives the site schema, checks the declared integrity
    constraints, and runs the HTML generator from the root family's
    pages.  Multiple versions of a site come from applying a different
    definition to the same data ({!build}) or different templates to
    the same site graph ({!regenerate}). *)

open Sgraph

let log_src = Logs.Src.create "strudel.site" ~doc:"site build pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type definition = {
  name : string;
  queries : (string * string) list;
      (** named StruQL sources, evaluated in order *)
  templates : Template.Generator.template_set;
  root_family : string;  (** Skolem family of the root page(s) *)
  constraints : Schema.Verify.constraint_ list;
  registry : Struql.Builtins.registry;
  strategy : Struql.Plan.strategy;
}

let define ?(templates = Template.Generator.empty_templates)
    ?(constraints = []) ?(registry = Struql.Builtins.default)
    ?(strategy = Struql.Plan.Heuristic) ~name ~root_family queries =
  { name; queries; templates; root_family; constraints; registry; strategy }

type built = {
  def : definition;
  data : Graph.t;
  site_graph : Graph.t;
  scope : Skolem.t;
  schemas : (string * Schema.Site_schema.t) list;
  site : Template.Generator.site;
  verification : (Schema.Verify.constraint_ * Schema.Verify.verdict) list;
  query_stats : Struql.Exec.profile list;
      (** per-operator execution profile of each site-definition query,
          in evaluation order *)
  render_profile : Render_pool.profile;
      (** per-domain page-rendering profile of the HTML generation
          phase (jobs, waves, shard times, cache hit counts) *)
  faults : Fault.report list;
      (** everything recorded in the build's fault context (ingest,
          integration and render faults), oldest first; [[]] for a
          clean or fault-blind build *)
}

exception Build_error of string

let parse_queries def =
  List.map
    (fun (qname, src) ->
      try (qname, Struql.Parser.parse ~registry:def.registry src)
      with Struql.Parser.Parse_error (msg, line, col) ->
        raise
          (Build_error
             (if col > 0 then
                Printf.sprintf "query %s, line %d, column %d: %s" qname line
                  col msg
              else Printf.sprintf "query %s, line %d: %s" qname line msg)))
    def.queries

(** Evaluate the definition's queries over [data] into one site graph;
    returns the graph, the shared Skolem scope, per-query schemas and
    evaluator statistics. *)
let build_site_graph ?scope ?shards ?into def (data : Graph.t) =
  let queries = parse_queries def in
  let scope = match scope with Some s -> s | None -> Skolem.create () in
  let site_graph =
    match into with
    | Some g -> g
    | None -> Graph.create ~name:def.name ()
  in
  let options =
    { Struql.Eval.default_options with
      strategy = def.strategy;
      registry = def.registry }
  in
  let stats =
    List.map
      (fun (_, q) ->
        let _, prof =
          Struql.Exec.run_with_profile ~options ~scope ?shards
            ~into:site_graph data q
        in
        prof)
      queries
  in
  let schemas =
    List.map (fun (n, q) -> (n, Schema.Site_schema.of_query q)) queries
  in
  (site_graph, scope, schemas, stats)

let roots_of site_graph family =
  Schema.Verify.family_members site_graph family

let build ?jobs ?render_cache ?file_loader ?on_error ?fault ?shards ?sink
    ~data (def : definition) : built =
  Log.debug (fun m ->
      m "building site %s over %a" def.name Graph.pp_stats data);
  let site_graph, scope, schemas, query_stats =
    build_site_graph ?shards def data
  in
  Log.debug (fun m -> m "site graph: %a" Graph.pp_stats site_graph);
  let roots = roots_of site_graph def.root_family in
  if roots = [] then
    raise
      (Build_error
         (Printf.sprintf "no pages of root family %s in site graph %s"
            def.root_family def.name));
  let site, render_profile =
    Render_pool.materialize ?jobs ?cache:render_cache ?file_loader ?on_error
      ?fault ?sink ~templates:def.templates site_graph ~roots
  in
  let verification = Schema.Verify.check_all_site site_graph def.constraints in
  List.iter
    (fun (c, v) ->
      match v with
      | Schema.Verify.Violated ws ->
        Log.warn (fun m ->
            m "site %s violates [%a] (%d witnesses)" def.name
              Schema.Verify.pp_constraint c (List.length ws))
      | Schema.Verify.Holds | Schema.Verify.Unknown _ -> ())
    verification;
  Log.info (fun m ->
      m "built site %s: %d pages, %d bytes" def.name
        (Template.Generator.page_count site)
        (Template.Generator.total_bytes site));
  {
    def;
    data;
    site_graph;
    scope;
    schemas;
    site;
    verification;
    query_stats;
    render_profile;
    faults = (match fault with Some c -> Fault.reports c | None -> []);
  }

(** The machine-readable outcome of a build: site name, status
    ([Clean]/[Degraded]) and the recorded faults — what the CLI writes
    to [faults.json] and turns into the process exit code (0 clean,
    3 degraded). *)
let manifest (b : built) : Fault.Manifest.t =
  Fault.Manifest.make ~site:b.def.name b.faults

(** Re-run only the HTML generator with different templates — the cheap
    way to produce another visual version of the same site graph
    (internal vs external AT&T site). *)
let regenerate ?jobs ?file_loader (b : built) templates : built =
  let roots = roots_of b.site_graph b.def.root_family in
  let site, render_profile =
    Render_pool.materialize ?jobs ?file_loader ~templates b.site_graph ~roots
  in
  { b with site; render_profile; def = { b.def with templates } }

let violations (b : built) =
  List.filter_map
    (fun (c, v) ->
      match v with
      | Schema.Verify.Violated ws -> Some (c, ws)
      | Schema.Verify.Holds | Schema.Verify.Unknown _ -> None)
    b.verification

(* --- Specification metrics (the paper's §5.1 site statistics) --- *)

type spec_stats = {
  query_count : int;
  query_lines : int;
  link_clauses : int;
  template_count : int;
  template_lines : int;
}

let count_lines s =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' s))

let spec_stats (def : definition) : spec_stats =
  let queries = parse_queries def in
  let ts = def.templates in
  let template_texts =
    List.map snd ts.Template.Generator.by_object
    @ List.map snd ts.Template.Generator.by_collection
    @ List.map snd ts.Template.Generator.named
  in
  {
    query_count = List.length queries;
    query_lines =
      List.fold_left (fun n (_, src) -> n + count_lines src) 0 def.queries;
    link_clauses =
      List.fold_left
        (fun n (_, q) -> n + Struql.Ast.query_link_count q)
        0 queries;
    template_count = List.length template_texts;
    template_lines =
      List.fold_left (fun n t -> n + count_lines t) 0 template_texts;
  }

let pp_spec_stats ppf s =
  Fmt.pf ppf
    "%d queries (%d lines, %d link clauses), %d templates (%d lines)"
    s.query_count s.query_lines s.link_clauses s.template_count
    s.template_lines
