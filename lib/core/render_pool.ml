(** Parallel page materialization on OCaml 5 domains.

    The generator's page set is demand-driven: roots become pages, and
    every object a rendered page links to becomes a page transitively.
    That closure is order-independent, so it can be computed in {e
    waves}: render the current frontier's pages concurrently (each page
    render is a pure function of the graph — graph reads build no
    indexes and mutate nothing), collect the objects they link to, and
    repeat until no new page appears.

    Byte-identity with the sequential reference path
    ({!Template.Generator.generate}) rests on URL assignment.  The
    sequential generator assigns [slug name ^ ".html"] and uniquifies
    collisions in discovery order — something a parallel wave cannot
    know up front.  Pages here get slug-only URLs (the click-time
    convention, which the incremental rebuilder already relies on);
    after the fixpoint the canonical discovery order is reconstructed
    sequentially from each page's recorded first-reference list, and if
    any two pages collide on a URL the pool discards its output and
    falls back to the sequential generator ([rp_fallback] — no site in
    this repository collides).

    A {!Render_cache} short-circuits rendering: before each wave fans
    out, cached entries are re-verified against the graph on the main
    domain, and only the misses are sharded across domains.  Fresh
    renders are traced and stored back.  The cache is touched only from
    the main domain. *)

module G = Template.Generator
open Sgraph

type shard = {
  sh_domain : int;   (** 0 is the main domain *)
  sh_pages : int;    (** pages this domain rendered, summed over waves *)
  sh_wall_ms : float;
}

type profile = {
  rp_jobs : int;
  rp_pages : int;     (** pages in the final site *)
  rp_rendered : int;  (** pages actually rendered (not served from cache) *)
  rp_waves : int;
  rp_shards : shard list;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_cache_invalidations : int;
  rp_fallback : bool;
      (** URL collision detected; the sequential generator's output was
          used instead of the pool's *)
  rp_degraded : int;
      (** pages that failed to render and were emitted as placeholders
          (always 0 under [~on_error:Abort]) *)
  rp_wall_ms : float;  (** whole materialization, main-domain clock *)
}

let pp_profile ppf p =
  Fmt.pf ppf
    "@[<v>jobs=%d pages=%d rendered=%d waves=%d wall=%.2fms cache=%d/%d/%d \
     (hit/miss/invalid)%s%s"
    p.rp_jobs p.rp_pages p.rp_rendered p.rp_waves p.rp_wall_ms p.rp_cache_hits
    p.rp_cache_misses p.rp_cache_invalidations
    (if p.rp_fallback then " FALLBACK(sequential)" else "")
    (if p.rp_degraded > 0 then Printf.sprintf " DEGRADED(%d)" p.rp_degraded
     else "");
  List.iter
    (fun s ->
      Fmt.pf ppf "@,  domain %d: %d pages, %.2fms" s.sh_domain s.sh_pages
        s.sh_wall_ms)
    p.rp_shards;
  Fmt.pf ppf "@]"

let now_ms () = Unix.gettimeofday () *. 1000.

(** Materialize the site's pages.  [jobs = 1] with no cache is the
    sequential reference path — a plain {!Template.Generator.generate}.
    Otherwise the wave loop runs, on [jobs] domains (the main domain
    renders a shard itself, so [jobs - 1] domains are spawned). *)
let materialize ?(jobs = 1) ?cache ?file_loader
    ?(templates = G.empty_templates) ?(on_error = Fault.Abort) ?fault
    (g : Graph.t) ~(roots : Oid.t list) : G.site * profile =
  let t0 = now_ms () in
  let jobs = max 1 jobs in
  (* the site graph is read-only from here on: freeze once so every
     template attribute probe — from all render domains — hits the
     kernel snapshot's per-(node, label) segments *)
  ignore (Graph.freeze g);
  let inject = Fault.inject fault in
  (* degraded (or injectable) builds always run the wave loop, even at
     [jobs = 1]: the sequential generator lets a failed render's
     partial work leak extra pages into its queue, so only the wave
     loop — which isolates each page render — keeps degraded output
     independent of [jobs] *)
  if jobs = 1 && cache = None && on_error = Fault.Abort && inject = None
  then begin
    let site = G.generate ?file_loader ~templates g ~roots in
    let wall = now_ms () -. t0 in
    let pages = G.page_count site in
    ( site,
      {
        rp_jobs = 1;
        rp_pages = pages;
        rp_rendered = pages;
        rp_waves = 1;
        rp_shards = [ { sh_domain = 0; sh_pages = pages; sh_wall_ms = wall } ];
        rp_cache_hits = 0;
        rp_cache_misses = 0;
        rp_cache_invalidations = 0;
        rp_fallback = false;
        rp_degraded = 0;
        rp_wall_ms = wall;
      } )
  end
  else begin
    (match cache with
     | Some c -> Render_cache.set_templates c templates
     | None -> ());
    let h0, m0, i0 =
      match cache with Some c -> Render_cache.stats c | None -> (0, 0, 0)
    in
    let trace = cache <> None in
    let compiled = Array.init jobs (fun _ -> G.new_compiled ()) in
    (* page → (rendered page, outgoing first-reference list) *)
    let results : (G.page * Oid.t list) Oid.Tbl.t = Oid.Tbl.create 64 in
    let seen = Oid.Tbl.create 64 in
    let dedup os =
      List.filter
        (fun o ->
          if Oid.Tbl.mem seen o then false
          else begin
            Oid.Tbl.add seen o ();
            true
          end)
        os
    in
    let shard_pages = Array.make jobs 0 in
    let shard_ms = Array.make jobs 0. in
    let waves = ref 0 in
    let rendered_count = ref 0 in
    let wave_reports = ref [] in
    let all_reports = ref [] in
    let frontier = ref (dedup roots) in
    while !frontier <> [] do
      incr waves;
      (* cache validation runs sequentially on the main domain; only the
         misses are sharded out *)
      let to_render =
        List.filter
          (fun o ->
            match cache with
            | None -> true
            | Some c -> (
                match Render_cache.find_valid ?file_loader c g o with
                | Some e ->
                  Oid.Tbl.replace results o
                    ( Render_cache.page_of_entry e o,
                      Render_cache.refs_of_entry g e );
                  false
                | None -> true))
          !frontier
      in
      rendered_count := !rendered_count + List.length to_render;
      (* round-robin sharding keeps the shards balanced when page costs
         are roughly uniform *)
      let buckets = Array.make jobs [] in
      List.iteri
        (fun i o -> buckets.(i mod jobs) <- o :: buckets.(i mod jobs))
        to_render;
      let buckets = Array.map List.rev buckets in
      (* each domain mutates only its own slots of shard_pages/shard_ms;
         Domain.join publishes them to the main domain *)
      let render_bucket i =
        let t = now_ms () in
        let render_one o =
          let render () =
            Fault.Inject.fire inject
              (Fault.Inject.Render_page (Oid.name o));
            G.render_page_full ?file_loader ~templates
              ~compiled:compiled.(i) ~trace_reads:trace g o
          in
          match on_error with
          | Fault.Abort -> (o, render (), None)
          | Fault.Degrade -> (
            try (o, render (), None)
            with e ->
              let cause =
                match e with
                | Fault.Inject.Injected m -> m
                | G.Generator_error m -> m
                | Template.Tparse.Template_error m -> "template error: " ^ m
                | e -> Printexc.to_string e
              in
              let url = G.slug (Oid.name o) ^ ".html" in
              ( o,
                {
                  G.r_page = G.placeholder_page ~url ~cause o;
                  r_reads = [];
                  r_refs = [];
                },
                Some
                  (Fault.report ~stage:Fault.Render ~source:(Graph.name g)
                     ~location:url ~cause ()) ))
        in
        let out = List.map render_one buckets.(i) in
        shard_ms.(i) <- shard_ms.(i) +. (now_ms () -. t);
        shard_pages.(i) <- shard_pages.(i) + List.length out;
        out
      in
      let spawned =
        List.init (jobs - 1) (fun k ->
            let i = k + 1 in
            if buckets.(i) = [] then None
            else Some (Domain.spawn (fun () -> render_bucket i)))
      in
      (* render the main shard, then join everything before letting any
         exception escape — never leave a domain running *)
      let main_out = try Ok (render_bucket 0) with e -> Error e in
      let joined =
        List.map
          (function
            | None -> Ok []
            | Some d -> ( try Ok (Domain.join d) with e -> Error e))
          spawned
      in
      let outs =
        List.map
          (function Ok out -> out | Error e -> raise e)
          (main_out :: joined)
      in
      List.iter
        (List.iter (fun (o, (r : G.rendered), report) ->
             (* placeholders never enter the cache: their empty read
                trace would re-validate vacuously forever *)
             (match (cache, report) with
              | Some c, None -> Render_cache.store c r
              | _ -> ());
             (match report with
              | Some rep -> wave_reports := rep :: !wave_reports
              | None -> ());
             Oid.Tbl.replace results o (r.G.r_page, r.G.r_refs)))
        outs;
      (* queue this wave's faults in deterministic (URL) order so the
         manifest is identical whatever [jobs] sharding produced them;
         they reach the context only if the pool's output is kept *)
      all_reports :=
        !all_reports
        @ List.sort
            (fun a b -> compare a.Fault.f_location b.Fault.f_location)
            (List.rev !wave_reports);
      wave_reports := [];
      (* next wave: referenced objects not yet seen, discovered in
         deterministic frontier × reference order *)
      let next =
        List.concat_map
          (fun o ->
            match Oid.Tbl.find_opt results o with
            | Some (_, refs) -> refs
            | None -> [])
          !frontier
      in
      frontier := dedup next
    done;
    (* reconstruct the sequential generator's discovery order: a FIFO
       over the recorded first-reference lists replays its queue *)
    let queue = Queue.create () in
    let qseen = Oid.Tbl.create 64 in
    let enqueue o =
      if not (Oid.Tbl.mem qseen o) then begin
        Oid.Tbl.add qseen o ();
        Queue.add o queue
      end
    in
    List.iter enqueue roots;
    let order = ref [] in
    while not (Queue.is_empty queue) do
      let o = Queue.pop queue in
      order := o :: !order;
      match Oid.Tbl.find_opt results o with
      | Some (_, refs) -> List.iter enqueue refs
      | None -> ()
    done;
    let pages =
      List.filter_map
        (fun o -> Option.map fst (Oid.Tbl.find_opt results o))
        (List.rev !order)
    in
    let urls = Hashtbl.create 64 in
    let collision =
      List.exists
        (fun (p : G.page) ->
          Hashtbl.mem urls p.G.url
          ||
          (Hashtbl.add urls p.G.url ();
           false))
        pages
    in
    let mk_profile ~site_pages ~fallback ~degraded =
      {
        rp_jobs = jobs;
        rp_pages = site_pages;
        rp_rendered = !rendered_count;
        rp_waves = !waves;
        rp_shards =
          List.init jobs (fun i ->
              {
                sh_domain = i;
                sh_pages = shard_pages.(i);
                sh_wall_ms = shard_ms.(i);
              });
        rp_cache_hits =
          (match cache with
           | Some c ->
             let h, _, _ = Render_cache.stats c in
             h - h0
           | None -> 0);
        rp_cache_misses =
          (match cache with
           | Some c ->
             let _, m, _ = Render_cache.stats c in
             m - m0
           | None -> 0);
        rp_cache_invalidations =
          (match cache with
           | Some c ->
             let _, _, i = Render_cache.stats c in
             i - i0
           | None -> 0);
        rp_fallback = fallback;
        rp_degraded = degraded;
        rp_wall_ms = now_ms () -. t0;
      }
    in
    if collision then begin
      (* distinct pages share a slug: only the sequential generator's
         discovery-ordered uniquification produces the reference URLs,
         and name-keyed cache entries are ambiguous — drop them.  The
         pool's queued fault reports are discarded with its output; the
         generator records its own. *)
      (match cache with Some c -> Render_cache.clear c | None -> ());
      let site = G.generate ?file_loader ~templates ~on_error ?fault g ~roots in
      let degraded =
        List.length (List.filter G.is_placeholder site.G.pages)
      in
      (site, mk_profile ~site_pages:(G.page_count site) ~fallback:true ~degraded)
    end
    else begin
      (match fault with
       | Some c -> List.iter (Fault.record c) !all_reports
       | None -> ());
      ( { G.pages; graph = g },
        mk_profile ~site_pages:(List.length pages) ~fallback:false
          ~degraded:(List.length !all_reports) )
    end
  end
