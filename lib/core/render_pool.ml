(** Parallel page materialization: a work-stealing scheduler on a
    persistent domain pool.

    The generator's page set is demand-driven: roots become pages, and
    every object a rendered page links to becomes a page transitively.
    That closure is order-independent, so it can be computed in {e
    waves} (BFS levels of the demand graph): render the current
    frontier's pages concurrently (each page render is a pure function
    of the graph — graph reads build no indexes and mutate nothing),
    collect the objects they link to, and repeat until no new page
    appears.

    Scheduling.  Each wave is cut into {e slices} of at most [slice]
    pages (the emission granularity — see below), and each slice is cut
    into chunks dealt to per-worker deques ({!Pool.Work}).  A worker
    takes chunks from its own deque and steals from others when it runs
    dry, so skewed page costs rebalance instead of stalling a round:
    there is no per-page locking, no round-robin barrier within a
    slice, and the worker domains themselves persist across builds in
    {!Pool.shared} — {!Site.build}, {!Incremental.rebuild} and the
    bench harness all reuse them, so only the first parallel build of a
    process pays domain spawns.  Workers write results into per-page
    slots, so output never depends on which worker rendered what.

    Determinism and byte-identity with the sequential reference path
    ({!Template.Generator.generate}) rest on URL assignment and page
    order.  Pages here get slug-only URLs (the click-time convention,
    which the incremental rebuilder already relies on), and the
    concatenation of the wave frontiers — each frontier deduplicated in
    frontier × first-reference order — replays exactly the sequential
    generator's discovery queue, so pages are emitted in canonical
    order with no post-hoc reconstruction.  If two pages collide on a
    URL the pool discards its output and falls back to the sequential
    generator ([rp_fallback] — no site in this repository collides).

    Memory.  With a {!sink}, pages are {e streamed}: each slice's pages
    are handed to the sink in canonical order as soon as the slice
    settles and are never retained, so peak memory is bounded by the
    slice size, not the site size — a 1M-page site builds in the memory
    of a few thousand pages.  Without a sink the full
    {!Template.Generator.site} is returned as before.

    A {!Render_cache} short-circuits rendering with {e batched}
    lookups: entries for a whole slice are prefetched in one pass on
    the main domain, trace verification (pure graph reads) runs on the
    worker domains alongside rendering, and the verdicts are settled
    back into the cache on the main domain after the slice joins — the
    cache table itself is only ever mutated from the main domain. *)

module G = Template.Generator
open Sgraph

type shard = {
  sh_domain : int;   (** 0 is the main domain *)
  sh_pages : int;    (** pages this domain rendered, summed over waves *)
  sh_wall_ms : float;
}

type profile = {
  rp_jobs : int;
  rp_pages : int;     (** pages in the final site *)
  rp_rendered : int;  (** pages actually rendered (not served from cache) *)
  rp_waves : int;
  rp_steals : int;
      (** chunks executed by a worker other than the one they were
          dealt to — 0 when the load was balanced up front *)
  rp_shards : shard list;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_cache_invalidations : int;
  rp_fallback : bool;
      (** URL collision detected; the sequential generator's output was
          used instead of the pool's *)
  rp_degraded : int;
      (** pages that failed to render and were emitted as placeholders
          (always 0 under [~on_error:Abort]) *)
  rp_wall_ms : float;  (** whole materialization, main-domain clock *)
}

let pp_profile ppf p =
  Fmt.pf ppf
    "@[<v>jobs=%d pages=%d rendered=%d waves=%d steals=%d wall=%.2fms \
     cache=%d/%d/%d (hit/miss/invalid)%s%s"
    p.rp_jobs p.rp_pages p.rp_rendered p.rp_waves p.rp_steals p.rp_wall_ms
    p.rp_cache_hits p.rp_cache_misses p.rp_cache_invalidations
    (if p.rp_fallback then " FALLBACK(sequential)" else "")
    (if p.rp_degraded > 0 then Printf.sprintf " DEGRADED(%d)" p.rp_degraded
     else "");
  List.iter
    (fun s ->
      Fmt.pf ppf "@,  domain %d: %d pages, %.2fms" s.sh_domain s.sh_pages
        s.sh_wall_ms)
    p.rp_shards;
  Fmt.pf ppf "@]"

let now_ms () = Unix.gettimeofday () *. 1000.

let auto_jobs = Pool.auto_jobs

(* --- Streaming emission --- *)

type sink = {
  sk_emit : G.page -> unit;
      (** called once per page, in canonical (sequential discovery)
          order; the pool retains nothing after the call *)
  sk_reset : unit -> unit;
      (** called if a URL collision forces the sequential fallback:
          everything emitted so far is invalid and will be re-emitted *)
}

(** A sink that writes each page below [dir] as {!G.write_site} would
    (the directory is created if missing); reset removes the emitted
    files. *)
let file_sink ~dir =
  let rec mkdirs d =
    if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      mkdirs (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdirs dir;
  let written = ref [] in
  {
    sk_emit =
      (fun p ->
        let path = Filename.concat dir p.G.url in
        let oc = open_out path in
        output_string oc p.G.html;
        close_out oc;
        written := path :: !written);
    sk_reset =
      (fun () ->
        List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) !written;
        written := []);
  }

(** How many pages a wave slice holds in memory at once (and the
    granularity of streaming emission and of deterministic fault-report
    ordering).  Must not depend on [jobs], or degraded manifests would
    not be reproducible across job counts. *)
let default_slice = 4096

(* Per-page result slot, written by exactly one worker; the pool
   barrier publishes the writes to the main domain. *)
type slot =
  | S_hit of G.page * Oid.t list
      (** verified cache entry: page + resolved demand refs *)
  | S_fresh of G.rendered * Fault.report option * bool
      (** fresh render (placeholder iff report present); the flag marks
          a stale entry this render replaced (an invalidation, not a
          miss) *)

(** Materialize the site's pages.  [jobs = 1] with no cache and no sink
    is the sequential reference path — a plain
    {!Template.Generator.generate}.  [jobs <= 0] auto-detects
    ({!auto_jobs}).  Otherwise the work-stealing wave loop runs on
    [jobs] domains (the main domain renders alongside [jobs - 1] pool
    workers). *)
let materialize ?(jobs = 1) ?cache ?dirty ?file_loader
    ?(templates = G.empty_templates) ?(on_error = Fault.Abort) ?fault ?sink
    ?(slice = default_slice) ?(refreeze = true) (g : Graph.t)
    ~(roots : Oid.t list) : G.site * profile =
  let t0 = now_ms () in
  let jobs = if jobs <= 0 then auto_jobs () else jobs in
  let slice = max 1 slice in
  (* the site graph is read-only from here on: freeze once so every
     graph probe — template attributes, cache-trace verification — from
     all domains hits the kernel snapshot's per-(node, label) segments.
     A sequential caller may opt out ([refreeze:false]): the delta
     publish path re-renders a handful of pages against the live graph
     rather than paying an O(site) refreeze per cycle.  Fan-out always
     freezes — worker domains must read the immutable snapshot. *)
  if refreeze || jobs > 1 then ignore (Graph.freeze g);
  let inject = Fault.inject fault in
  (* degraded (or injectable) builds always run the wave loop, even at
     [jobs = 1]: the sequential generator lets a failed render's
     partial work leak extra pages into its queue, so only the wave
     loop — which isolates each page render — keeps degraded output
     independent of [jobs] *)
  if
    jobs = 1 && cache = None && on_error = Fault.Abort && inject = None
    && sink = None
  then begin
    let site = G.generate ?file_loader ~templates g ~roots in
    let wall = now_ms () -. t0 in
    let pages = G.page_count site in
    ( site,
      {
        rp_jobs = 1;
        rp_pages = pages;
        rp_rendered = pages;
        rp_waves = 1;
        rp_steals = 0;
        rp_shards = [ { sh_domain = 0; sh_pages = pages; sh_wall_ms = wall } ];
        rp_cache_hits = 0;
        rp_cache_misses = 0;
        rp_cache_invalidations = 0;
        rp_fallback = false;
        rp_degraded = 0;
        rp_wall_ms = wall;
      } )
  end
  else begin
    (match cache with
     | Some c -> Render_cache.set_templates c templates
     | None -> ());
    let h0, m0, i0 =
      match cache with Some c -> Render_cache.stats c | None -> (0, 0, 0)
    in
    let trace = cache <> None in
    let compiled = Array.init jobs (fun _ -> G.new_compiled ()) in
    let seen = Oid.Tbl.create 1024 in
    let dedup os =
      List.filter
        (fun o ->
          if Oid.Tbl.mem seen o then false
          else begin
            Oid.Tbl.add seen o ();
            true
          end)
        os
    in
    let shard_pages = Array.make jobs 0 in
    let shard_ms = Array.make jobs 0. in
    (* sanitizer identity for the per-worker tallies: field [w] covers
       [shard_pages.(w)]/[shard_ms.(w)]/[compiled.(w)] — written only by
       worker [w], read by the main domain after the pool barrier *)
    let ds_shard = Dsan.alloc ~name:"Render_pool.shards" in
    let waves = ref 0 in
    let steals = ref 0 in
    let rendered_count = ref 0 in
    let all_reports = ref [] in
    let pages_rev = ref [] in  (* only fed without a sink *)
    let emitted = ref 0 in
    let urls = Hashtbl.create 1024 in
    let collision = ref false in
    let emit (p : G.page) =
      if Hashtbl.mem urls p.G.url then collision := true
      else Hashtbl.add urls p.G.url ();
      (match sink with
       | Some s -> s.sk_emit p
       | None -> pages_rev := p :: !pages_rev);
      incr emitted
    in
    let render_one w o =
      let render () =
        Fault.Inject.fire inject (Fault.Inject.Render_page (Oid.name o));
        G.render_page_full ?file_loader ~templates ~compiled:compiled.(w)
          ~trace_reads:trace g o
      in
      match on_error with
      | Fault.Abort -> (render (), None)
      | Fault.Degrade -> (
        try (render (), None)
        with e ->
          let cause =
            match e with
            | Fault.Inject.Injected m -> m
            | G.Generator_error m -> m
            | Template.Tparse.Template_error m -> "template error: " ^ m
            | e -> Printexc.to_string e
          in
          let url = G.slug (Oid.name o) ^ ".html" in
          ( {
              G.r_page = G.placeholder_page ~url ~cause o;
              r_reads = [];
              r_refs = [];
            },
            Some
              (Fault.report ~stage:Fault.Render ~source:(Graph.name g)
                 ~location:url ~cause ()) ))
    in
    let frontier = ref (dedup roots) in
    while !frontier <> [] && not !collision do
      incr waves;
      let arr = Array.of_list !frontier in
      let n = Array.length arr in
      let refs_acc = ref [] in  (* per-page demand refs, reversed *)
      let s0 = ref 0 in
      while !s0 < n && not !collision do
        let base = !s0 in
        let len = min slice (n - base) in
        s0 := base + len;
        let ents =
          match cache with
          | Some c -> Render_cache.peek_batch c (Array.sub arr base len)
          | None -> Array.make (min len 1) None
        in
        let slots : slot option array = Array.make len None in
        (* sanitizer identity for the slice: field [i] covers cell [i]
           of [ents] (written on the main domain before fan-out) and of
           [slots] (written by exactly one worker, read at settle) *)
        let ds_slice = Dsan.alloc ~name:"Render_pool.slice" in
        if Dsan.enabled () then
          for i = 0 to len - 1 do
            Dsan.write ~site:__POS__ ds_slice i
          done;
        (* executed on worker domains: verify the prefetched entry or
           render; each slot is written by exactly one worker *)
        let verify_entry e =
          match dirty with
          | Some d -> Render_cache.verify_dirty ?file_loader ~dirty:d g e
          | None -> Render_cache.verify ?file_loader g e
        in
        let process w i =
          Dsan.write ~site:__POS__ ds_slice i;
          Dsan.write ~site:__POS__ ds_shard w;
          let o = arr.(base + i) in
          match if cache = None then None else ents.(i) with
          | Some e when verify_entry e ->
            slots.(i) <-
              Some
                (S_hit
                   (Render_cache.page_of_entry e o,
                    Render_cache.refs_of_entry g e))
          | ent ->
            let r, report = render_one w o in
            shard_pages.(w) <- shard_pages.(w) + 1;
            slots.(i) <- Some (S_fresh (r, report, ent <> None))
        in
        let work = Pool.Work.create ~total:len ~workers:jobs in
        let run_worker w =
          let t = now_ms () in
          let rec loop () =
            Dsan.yield ~site:__POS__;
            match Pool.Work.take work w with
            | None -> ()
            | Some (lo, hi) ->
              for i = lo to hi - 1 do
                process w i
              done;
              loop ()
          in
          Fun.protect
            ~finally:(fun () ->
              Dsan.write ~site:__POS__ ds_shard w;
              shard_ms.(w) <- shard_ms.(w) +. (now_ms () -. t))
            loop
        in
        if jobs = 1 then run_worker 0 else Pool.run Pool.shared ~jobs run_worker;
        steals := !steals + Pool.Work.steals work;
        (* settle the slice on the main domain, in frontier order:
           cache verdicts and stores, fault reports (sorted by URL so
           manifests are identical whatever the stealing produced),
           page emission, demand refs *)
        let sl_hits = ref 0 and sl_miss = ref 0 and sl_inval = ref 0 in
        let sl_reports = ref [] in
        for i = 0 to len - 1 do
          Dsan.read ~site:__POS__ ds_slice i;
          match slots.(i) with
          | Some (S_hit (p, refs)) ->
            incr sl_hits;
            refs_acc := refs :: !refs_acc;
            emit p
          | Some (S_fresh (r, report, stale)) ->
            incr rendered_count;
            if stale then incr sl_inval else incr sl_miss;
            (* placeholders never enter the cache: their empty read
               trace would re-validate vacuously forever *)
            (match (cache, report) with
             | Some c, None -> Render_cache.store c r
             | Some c, Some _ -> if stale then Render_cache.drop c arr.(base + i)
             | None, _ -> ());
            (match report with
             | Some rep -> sl_reports := rep :: !sl_reports
             | None -> ());
            refs_acc := r.G.r_refs :: !refs_acc;
            emit r.G.r_page
          | None -> assert false  (* Pool.run re-raised before settling *)
        done;
        (match cache with
         | Some c ->
           Render_cache.settle c ~hits:!sl_hits ~misses:!sl_miss
             ~invalidations:!sl_inval
         | None -> ());
        all_reports :=
          !all_reports
          @ List.sort
              (fun a b -> compare a.Fault.f_location b.Fault.f_location)
              (List.rev !sl_reports)
      done;
      (* next wave: referenced objects not yet seen, discovered in
         deterministic frontier × reference order — the concatenation of
         these frontiers replays the sequential generator's queue *)
      frontier := dedup (List.concat (List.rev !refs_acc))
    done;
    let mk_profile ~site_pages ~fallback ~degraded =
      {
        rp_jobs = jobs;
        rp_pages = site_pages;
        rp_rendered = !rendered_count;
        rp_waves = !waves;
        rp_steals = !steals;
        rp_shards =
          List.init jobs (fun i ->
              Dsan.read ~site:__POS__ ds_shard i;
              {
                sh_domain = i;
                sh_pages = shard_pages.(i);
                sh_wall_ms = shard_ms.(i);
              });
        rp_cache_hits =
          (match cache with
           | Some c ->
             let h, _, _ = Render_cache.stats c in
             h - h0
           | None -> 0);
        rp_cache_misses =
          (match cache with
           | Some c ->
             let _, m, _ = Render_cache.stats c in
             m - m0
           | None -> 0);
        rp_cache_invalidations =
          (match cache with
           | Some c ->
             let _, _, i = Render_cache.stats c in
             i - i0
           | None -> 0);
        rp_fallback = fallback;
        rp_degraded = degraded;
        rp_wall_ms = now_ms () -. t0;
      }
    in
    if !collision then begin
      (* distinct pages share a slug: only the sequential generator's
         discovery-ordered uniquification produces the reference URLs,
         and name-keyed cache entries are ambiguous — drop them.  The
         pool's queued fault reports are discarded with its output; the
         generator records its own. *)
      (match cache with Some c -> Render_cache.clear c | None -> ());
      (match sink with Some s -> s.sk_reset () | None -> ());
      let site = G.generate ?file_loader ~templates ~on_error ?fault g ~roots in
      let degraded = List.length (List.filter G.is_placeholder site.G.pages) in
      let profile =
        mk_profile ~site_pages:(G.page_count site) ~fallback:true ~degraded
      in
      match sink with
      | Some s ->
        List.iter s.sk_emit site.G.pages;
        ({ G.pages = []; graph = g }, profile)
      | None -> (site, profile)
    end
    else begin
      (match fault with
       | Some c -> List.iter (Fault.record c) !all_reports
       | None -> ());
      let pages =
        match sink with Some _ -> [] | None -> List.rev !pages_rev
      in
      ( { G.pages; graph = g },
        mk_profile ~site_pages:!emitted ~fallback:false
          ~degraded:(List.length !all_reports) )
    end
  end
