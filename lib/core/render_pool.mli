(** Parallel page materialization: a work-stealing scheduler on a
    persistent domain pool.

    Pages are rendered in waves (BFS levels of the demand-driven page
    closure).  Each wave is cut into bounded {e slices}; a slice's
    pages are chunked onto per-worker deques and the workers — the main
    domain plus [jobs - 1] domains from the persistent {!Pool.shared},
    reused across builds — take their own chunks and steal from each
    other when they run dry.  Results land in per-page slots, so output
    never depends on scheduling; the concatenation of the wave
    frontiers replays the sequential generator's discovery queue, so
    pages are produced in canonical order and byte-identical to the
    reference path.  On a URL collision (two pages sharing a slug) the
    pool falls back to the sequential generator.

    With a {!sink} pages are streamed out in canonical order as each
    slice settles and never retained — peak memory is bounded by the
    slice size, not the site size.  A {!Render_cache} short-circuits
    rendering with batched lookups: a slice's entries are prefetched in
    one pass, traces verify on the worker domains, and verdicts settle
    back on the main domain. *)

open Sgraph

type shard = {
  sh_domain : int;   (** 0 is the main domain *)
  sh_pages : int;    (** pages this domain rendered, summed over waves *)
  sh_wall_ms : float;
}

type profile = {
  rp_jobs : int;
  rp_pages : int;     (** pages in the final site *)
  rp_rendered : int;  (** pages actually rendered (not served from cache) *)
  rp_waves : int;
  rp_steals : int;
      (** chunks executed by a worker other than the one they were
          dealt to — 0 when the load was balanced up front *)
  rp_shards : shard list;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_cache_invalidations : int;
  rp_fallback : bool;
      (** URL collision detected; the sequential generator's output was
          used instead of the pool's *)
  rp_degraded : int;
      (** pages that failed to render and were emitted as placeholders
          (always 0 under [~on_error:Abort]) *)
  rp_wall_ms : float;  (** whole materialization, main-domain clock *)
}

val pp_profile : Format.formatter -> profile -> unit

val auto_jobs : unit -> int
(** The job count used for [jobs <= 0]:
    [Domain.recommended_domain_count], clamped to at least 1. *)

type sink = {
  sk_emit : Template.Generator.page -> unit;
      (** called once per page, in canonical (sequential discovery)
          order; the pool retains nothing after the call *)
  sk_reset : unit -> unit;
      (** called if a URL collision forces the sequential fallback:
          everything emitted so far is invalid and will be re-emitted *)
}

val file_sink : dir:string -> sink
(** A sink writing each page below [dir] (created if missing), as
    {!Template.Generator.write_site} would; reset removes the files
    emitted so far. *)

val default_slice : int
(** Default bound on pages a wave slice holds in memory at once — also
    the granularity of streaming emission and of deterministic
    fault-report ordering (it must not depend on [jobs]). *)

val materialize :
  ?jobs:int ->
  ?cache:Render_cache.t ->
  ?dirty:(string -> bool) ->
  ?file_loader:(string -> string option) ->
  ?templates:Template.Generator.template_set ->
  ?on_error:Fault.on_error ->
  ?fault:Fault.ctx ->
  ?sink:sink ->
  ?slice:int ->
  ?refreeze:bool ->
  Graph.t ->
  roots:Oid.t list ->
  Template.Generator.site * profile
(** Materialize the site's pages.  [jobs = 1] (the default) with no
    cache, no injector, no sink and [~on_error:Abort] is the sequential
    reference path, a plain {!Template.Generator.generate}; [jobs <= 0]
    auto-detects ({!auto_jobs}); otherwise the work-stealing wave loop
    runs on [jobs] domains (the main domain renders alongside
    [jobs - 1] persistent pool workers).  Output is byte-identical to
    the reference path on every input (enforced by the differential
    suite).

    With [~sink], pages are streamed to the sink in canonical order and
    the returned site has an empty page list ([profile.rp_pages] still
    counts them); peak memory is bounded by [slice] pages.

    [dirty] (with [cache]) is an exact change hint for trace
    verification — see {!Render_cache.verify_dirty}.  The delta publish
    path passes the cycle's touched ∪ removed site-node names, making
    cache verification O(changed) instead of O(site).

    [refreeze:false] skips the graph freeze when running sequentially
    (an O(site) cost the delta publish path avoids every cycle); with
    [jobs > 1] the freeze always happens, as worker domains must read
    the immutable kernel snapshot.

    With [~on_error:Degrade], a failed (or injected-faulty) page render
    is isolated: the page becomes a {!Template.Generator.placeholder_page},
    a [Render] fault is recorded in [fault] (in deterministic URL order
    per slice, so manifests are [jobs]-independent), and the placeholder
    is never stored in the render cache.  Degraded builds always run
    the wave loop — even at [jobs = 1] — so degraded output is
    identical across [jobs]. *)
