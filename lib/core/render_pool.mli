(** Parallel page materialization on OCaml 5 domains.

    Pages are rendered in waves: the current frontier is sharded
    round-robin across [jobs] domains (page rendering is a pure
    function of the graph), the objects the new pages link to form the
    next frontier, and the fixpoint is the same demand-driven page set
    the sequential generator discovers.  The canonical page order is
    reconstructed afterwards from each page's recorded first-reference
    list; on a URL collision (two pages sharing a slug) the pool falls
    back to the sequential generator so output stays byte-identical to
    the reference path.  A {!Render_cache} short-circuits rendering:
    entries are re-verified on the main domain before each wave and
    only the misses are sharded out. *)

open Sgraph

type shard = {
  sh_domain : int;   (** 0 is the main domain *)
  sh_pages : int;    (** pages this domain rendered, summed over waves *)
  sh_wall_ms : float;
}

type profile = {
  rp_jobs : int;
  rp_pages : int;     (** pages in the final site *)
  rp_rendered : int;  (** pages actually rendered (not served from cache) *)
  rp_waves : int;
  rp_shards : shard list;
  rp_cache_hits : int;
  rp_cache_misses : int;
  rp_cache_invalidations : int;
  rp_fallback : bool;
      (** URL collision detected; the sequential generator's output was
          used instead of the pool's *)
  rp_degraded : int;
      (** pages that failed to render and were emitted as placeholders
          (always 0 under [~on_error:Abort]) *)
  rp_wall_ms : float;  (** whole materialization, main-domain clock *)
}

val pp_profile : Format.formatter -> profile -> unit

val materialize :
  ?jobs:int ->
  ?cache:Render_cache.t ->
  ?file_loader:(string -> string option) ->
  ?templates:Template.Generator.template_set ->
  ?on_error:Fault.on_error ->
  ?fault:Fault.ctx ->
  Graph.t ->
  roots:Oid.t list ->
  Template.Generator.site * profile
(** Materialize the site's pages.  [jobs = 1] (the default) with no
    cache, no injector and [~on_error:Abort] is the sequential
    reference path, a plain {!Template.Generator.generate}; otherwise
    the wave loop runs on [jobs] domains ([jobs - 1] spawned — the main
    domain renders a shard itself).  Output is byte-identical to the
    reference path on every input (enforced by the differential suite).

    With [~on_error:Degrade], a failed (or injected-faulty) page render
    is isolated: the page becomes a {!Template.Generator.placeholder_page},
    a [Render] fault is recorded in [fault] (in deterministic URL order
    per wave, so manifests are [jobs]-independent), and the placeholder
    is never stored in the render cache.  Degraded builds always run
    the wave loop — even at [jobs = 1] — so degraded output is
    identical across [jobs]. *)
