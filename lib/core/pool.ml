(** Persistent worker-domain pool and work-stealing chunk queues.
    See the interface for the design; the implementation notes below
    cover the synchronization. *)

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

(* --- Work-stealing chunk queues --- *)

module Work = struct
  (* One global chunk table plus a (lo, hi) window per worker over a
     contiguous run of chunk indexes.  The owner pops at [lo], thieves
     pop at [hi - 1]; both under the owner's mutex — chunk granularity
     keeps the lock cold, and a mutex-protected window is immune to the
     ABA subtleties of lock-free deques. *)
  type t = {
    chunks : (int * int) array;  (* chunk index -> item range [lo, hi) *)
    lo : int array;              (* per worker: next own chunk *)
    hi : int array;              (* per worker: one past last chunk *)
    locks : Mutex.t array;
    steals : int Atomic.t;
    workers : int;
  }

  let create ~total ~workers =
    let workers = max 1 workers in
    (* several chunks per worker so stealing can rebalance skewed page
       costs, capped so tiny frontiers still form whole chunks *)
    let chunk = max 1 (min 64 ((total + (workers * 8) - 1) / (workers * 8))) in
    let nchunks = if total = 0 then 0 else (total + chunk - 1) / chunk in
    let chunks =
      Array.init nchunks (fun k -> (k * chunk, min total ((k + 1) * chunk)))
    in
    let lo = Array.init workers (fun w -> w * nchunks / workers) in
    let hi = Array.init workers (fun w -> (w + 1) * nchunks / workers) in
    {
      chunks;
      lo;
      hi;
      locks = Array.init workers (fun _ -> Mutex.create ());
      steals = Atomic.make 0;
      workers;
    }

  let pop_own t w =
    Mutex.lock t.locks.(w);
    let r =
      if t.lo.(w) < t.hi.(w) then begin
        let i = t.lo.(w) in
        t.lo.(w) <- i + 1;
        Some t.chunks.(i)
      end
      else None
    in
    Mutex.unlock t.locks.(w);
    r

  let steal_from t v =
    Mutex.lock t.locks.(v);
    let r =
      if t.lo.(v) < t.hi.(v) then begin
        let i = t.hi.(v) - 1 in
        t.hi.(v) <- i;
        Some t.chunks.(i)
      end
      else None
    in
    Mutex.unlock t.locks.(v);
    r

  let take t w =
    match pop_own t w with
    | Some _ as r -> r
    | None ->
      let rec hunt k =
        if k >= t.workers then None
        else
          let v = (w + k) mod t.workers in
          match steal_from t v with
          | Some _ as r ->
            Atomic.incr t.steals;
            r
          | None -> hunt (k + 1)
      in
      hunt 1

  let steals t = Atomic.get t.steals
end

(* --- The persistent pool --- *)

(* A job carries the closure, the participant budget and the join
   state.  Workers park in [worker_loop] on [cv]; publishing a job
   bumps [epoch] and broadcasts; each woken worker claims the next
   participant index (or skips the epoch if the job is fully claimed —
   the pool may hold more workers than this job wants).  The caller
   waits on the same condition variable for [remaining] to hit zero,
   which also provides the happens-before edge publishing every
   worker's writes (result slots, stat arrays) to the caller. *)
type job = {
  f : int -> unit;
  jobs : int;
  mutable next_id : int;
  mutable remaining : int;
  mutable error : exn option;
}

type t = {
  m : Mutex.t;
  cv : Condition.t;
  mutable handles : unit Domain.t list;
  mutable nworkers : int;
  mutable job : job option;
  mutable epoch : int;
  mutable quit : bool;
  busy : Mutex.t;  (* held across a pooled [run]; try-locked only *)
}

let create () =
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      handles = [];
      nworkers = 0;
      job = None;
      epoch = 0;
      quit = false;
      busy = Mutex.create ();
    }
  in
  at_exit (fun () ->
      Mutex.lock t.m;
      t.quit <- true;
      Condition.broadcast t.cv;
      let hs = t.handles in
      t.handles <- [];
      Mutex.unlock t.m;
      List.iter Domain.join hs);
  t

let shared = create ()
let live_workers t = t.nworkers

let finish_participant t j err =
  Mutex.lock t.m;
  (match err with
   | Some _ when j.error = None -> j.error <- err
   | _ -> ());
  j.remaining <- j.remaining - 1;
  if j.remaining = 0 then Condition.broadcast t.cv;
  Mutex.unlock t.m

let rec worker_loop t last =
  Mutex.lock t.m;
  while (not t.quit) && t.epoch = last do
    Condition.wait t.cv t.m
  done;
  if t.quit then Mutex.unlock t.m
  else begin
    let epoch = t.epoch in
    let claim =
      match t.job with
      | Some j when j.next_id < j.jobs ->
        let id = j.next_id in
        j.next_id <- id + 1;
        Some (j, id)
      | _ -> None
    in
    Mutex.unlock t.m;
    (match claim with
     | Some (j, id) ->
       let err = try j.f id; None with e -> Some e in
       finish_participant t j err
     | None -> ());
    worker_loop t epoch
  end

(* Spawn with [t.m] held: the new domain blocks on the mutex until the
   caller publishes the job, so it cannot miss the epoch it was spawned
   for. *)
let ensure_workers t wanted =
  while t.nworkers < wanted do
    let birth = t.epoch in
    t.handles <- Domain.spawn (fun () -> worker_loop t birth) :: t.handles;
    t.nworkers <- t.nworkers + 1
  done

(* Fallback when the pool is busy with a concurrent build: plain
   spawn/join, the pre-pool behavior. *)
let run_ephemeral ~jobs f =
  let doms =
    List.init (jobs - 1) (fun k ->
        let w = k + 1 in
        Domain.spawn (fun () -> f w))
  in
  let caller_err = try f 0; None with e -> Some e in
  let worker_errs =
    List.map (fun d -> try Domain.join d; None with e -> Some e) doms
  in
  match caller_err, List.find_opt Option.is_some worker_errs with
  | Some e, _ -> raise e
  | None, Some (Some e) -> raise e
  | None, _ -> ()

let run t ~jobs f =
  if jobs <= 1 then f 0
  else if not (Mutex.try_lock t.busy) then run_ephemeral ~jobs f
  else
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.busy)
      (fun () ->
        let j = { f; jobs; next_id = 1; remaining = jobs - 1; error = None } in
        Mutex.lock t.m;
        ensure_workers t (jobs - 1);
        t.job <- Some j;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.cv;
        Mutex.unlock t.m;
        let caller_err = try f 0; None with e -> Some e in
        Mutex.lock t.m;
        while j.remaining > 0 do
          Condition.wait t.cv t.m
        done;
        t.job <- None;
        Mutex.unlock t.m;
        match caller_err, j.error with
        | Some e, _ | None, Some e -> raise e
        | None, None -> ())
