(** Persistent worker-domain pool and work-stealing chunk queues.
    See the interface for the design; the implementation notes below
    cover the synchronization.

    Dsan instrumentation: every mutex is registered with a lock id and
    every protected field family with an object id, so a sanitized run
    checks the protocol this file's comments claim — job state only
    under [t.m], deque windows only under the owner's lock, the
    caller-observes-worker-writes edge provided by the join barrier.
    [Condition.wait] is modeled as release-before / acquire-after,
    which is exactly what it does to the mutex. *)

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

(* --- Work-stealing chunk queues --- *)

module Work = struct
  (* One global chunk table plus a (lo, hi) window per worker over a
     contiguous run of chunk indexes.  The owner pops at [lo], thieves
     pop at [hi - 1]; both under the owner's mutex — chunk granularity
     keeps the lock cold, and a mutex-protected window is immune to the
     ABA subtleties of lock-free deques. *)
  type t = {
    chunks : (int * int) array;  (* chunk index -> item range [lo, hi) *)
    lo : int array;              (* per worker: next own chunk *)
    hi : int array;              (* per worker: one past last chunk *)
    locks : Mutex.t array;
    steals : int Atomic.t;
    workers : int;
    (* sanitizer identities: field 0 = [chunks] (written once at
       create, read by every worker), field 1+w = worker [w]'s window *)
    ds_obj : int;
    ds_locks : int array;
    ds_steals : int;
  }

  let create ~total ~workers =
    let workers = max 1 workers in
    (* several chunks per worker so stealing can rebalance skewed page
       costs, capped so tiny frontiers still form whole chunks *)
    let chunk = max 1 (min 64 ((total + (workers * 8) - 1) / (workers * 8))) in
    let nchunks = if total = 0 then 0 else (total + chunk - 1) / chunk in
    let chunks =
      Array.init nchunks (fun k -> (k * chunk, min total ((k + 1) * chunk)))
    in
    let lo = Array.init workers (fun w -> w * nchunks / workers) in
    let hi = Array.init workers (fun w -> (w + 1) * nchunks / workers) in
    let ds_obj = Dsan.alloc ~name:"Pool.Work" in
    Dsan.write ~site:__POS__ ds_obj 0;
    for w = 0 to workers - 1 do
      Dsan.write ~site:__POS__ ds_obj (1 + w)
    done;
    {
      chunks;
      lo;
      hi;
      locks = Array.init workers (fun _ -> Mutex.create ());
      steals = Atomic.make 0;
      workers;
      ds_obj;
      ds_locks =
        Array.init workers (fun w ->
            Dsan.lock_id ~name:(Printf.sprintf "Pool.Work.lock[%d]" w));
      ds_steals = Dsan.atomic_id ~name:"Pool.Work.steals";
    }

  let pop_own t w =
    Mutex.lock t.locks.(w);
    Dsan.acquire ~site:__POS__ t.ds_locks.(w);
    let r =
      Dsan.write ~site:__POS__ t.ds_obj (1 + w);
      if t.lo.(w) < t.hi.(w) then begin
        let i = t.lo.(w) in
        t.lo.(w) <- i + 1;
        Dsan.read ~site:__POS__ t.ds_obj 0;
        Some t.chunks.(i)
      end
      else None
    in
    Dsan.release ~site:__POS__ t.ds_locks.(w);
    Mutex.unlock t.locks.(w);
    r

  let steal_from t v =
    Mutex.lock t.locks.(v);
    Dsan.acquire ~site:__POS__ t.ds_locks.(v);
    let r =
      Dsan.write ~site:__POS__ t.ds_obj (1 + v);
      if t.lo.(v) < t.hi.(v) then begin
        let i = t.hi.(v) - 1 in
        t.hi.(v) <- i;
        Dsan.read ~site:__POS__ t.ds_obj 0;
        Some t.chunks.(i)
      end
      else None
    in
    Dsan.release ~site:__POS__ t.ds_locks.(v);
    Mutex.unlock t.locks.(v);
    r

  let take t w =
    match pop_own t w with
    | Some _ as r -> r
    | None ->
      let rec hunt k =
        if k >= t.workers then None
        else
          let v = (w + k) mod t.workers in
          match steal_from t v with
          | Some _ as r ->
            Atomic.incr t.steals;
            Dsan.publish ~site:__POS__ t.ds_steals;
            r
          | None -> hunt (k + 1)
      in
      hunt 1

  let steals t =
    Dsan.consume ~site:__POS__ t.ds_steals;
    Atomic.get t.steals
end

(* --- The persistent pool --- *)

(* A job carries the closure, the participant budget and the join
   state.  Workers park in [worker_loop] on [cv]; publishing a job
   bumps [epoch] and broadcasts; each woken worker claims the next
   participant index (or skips the epoch if the job is fully claimed —
   the pool may hold more workers than this job wants).  The caller
   waits on the same condition variable for [remaining] to hit zero,
   which also provides the happens-before edge publishing every
   worker's writes (result slots, stat arrays) to the caller. *)
type job = {
  f : int -> unit;
  jobs : int;
  mutable next_id : int;
  mutable remaining : int;
  mutable error : exn option;
}

type t = {
  m : Mutex.t;
  cv : Condition.t;
  mutable handles : unit Domain.t list;
  mutable nworkers : int;
  mutable job : job option;
  mutable epoch : int;
  mutable quit : bool;
  busy : Mutex.t;  (* held across a pooled [run]; try-locked only *)
  (* sanitizer identities: field 0 = everything guarded by [m] (job,
     epoch, handles, nworkers, quit and the published job's fields) *)
  ds_obj : int;
  ds_m : int;
  ds_busy : int;
}

let create () =
  let t =
    {
      m = Mutex.create ();
      cv = Condition.create ();
      handles = [];
      nworkers = 0;
      job = None;
      epoch = 0;
      quit = false;
      busy = Mutex.create ();
      ds_obj = Dsan.alloc ~name:"Pool";
      ds_m = Dsan.lock_id ~name:"Pool.m";
      ds_busy = Dsan.lock_id ~name:"Pool.busy";
    }
  in
  at_exit (fun () ->
      Mutex.lock t.m;
      Dsan.acquire ~site:__POS__ t.ds_m;
      t.quit <- true;
      Condition.broadcast t.cv;
      let hs = t.handles in
      t.handles <- [];
      Dsan.release ~site:__POS__ t.ds_m;
      Mutex.unlock t.m;
      List.iter Domain.join hs);
  t

let shared = create ()
let live_workers t = t.nworkers

(* [Condition.wait] releases the mutex while blocked and reacquires it
   before returning — mirror that for the sanitizer. *)
let dsan_wait ~site t =
  Dsan.release ~site t.ds_m;
  Condition.wait t.cv t.m;
  Dsan.acquire ~site t.ds_m

let finish_participant t j err =
  Mutex.lock t.m;
  Dsan.acquire ~site:__POS__ t.ds_m;
  Dsan.write ~site:__POS__ t.ds_obj 0;
  (match err with
   | Some _ when j.error = None -> j.error <- err
   | _ -> ());
  j.remaining <- j.remaining - 1;
  if j.remaining = 0 then Condition.broadcast t.cv;
  Dsan.release ~site:__POS__ t.ds_m;
  Mutex.unlock t.m

let rec worker_loop t last =
  Mutex.lock t.m;
  Dsan.acquire ~site:__POS__ t.ds_m;
  while (not t.quit) && t.epoch = last do
    dsan_wait ~site:__POS__ t
  done;
  if t.quit then begin
    Dsan.release ~site:__POS__ t.ds_m;
    Mutex.unlock t.m
  end
  else begin
    let epoch = t.epoch in
    let claim =
      Dsan.write ~site:__POS__ t.ds_obj 0;
      match t.job with
      | Some j when j.next_id < j.jobs ->
        let id = j.next_id in
        j.next_id <- id + 1;
        Some (j, id)
      | _ -> None
    in
    Dsan.release ~site:__POS__ t.ds_m;
    Mutex.unlock t.m;
    (match claim with
     | Some (j, id) ->
       let err = try j.f id; None with e -> Some e in
       finish_participant t j err
     | None -> ());
    worker_loop t epoch
  end

(* Spawn with [t.m] held: the new domain blocks on the mutex until the
   caller publishes the job, so it cannot miss the epoch it was spawned
   for. *)
let ensure_workers t wanted =
  while t.nworkers < wanted do
    let birth = t.epoch in
    let tok = Dsan.fork () in
    t.handles <-
      Domain.spawn (fun () ->
          Dsan.born tok;
          worker_loop t birth)
      :: t.handles;
    t.nworkers <- t.nworkers + 1
  done

(* Fallback when the pool is busy with a concurrent build: plain
   spawn/join, the pre-pool behavior. *)
let run_ephemeral ~jobs f =
  let doms =
    List.init (jobs - 1) (fun k ->
        let w = k + 1 in
        let tok = Dsan.fork () in
        let d =
          Domain.spawn (fun () ->
              Dsan.born tok;
              Fun.protect ~finally:(fun () -> Dsan.dying tok) (fun () -> f w))
        in
        (d, tok))
  in
  let caller_err = try f 0; None with e -> Some e in
  let worker_errs =
    List.map
      (fun (d, tok) ->
        let r = try Domain.join d; None with e -> Some e in
        Dsan.joined tok;
        r)
      doms
  in
  match caller_err, List.find_opt Option.is_some worker_errs with
  | Some e, _ -> raise e
  | None, Some (Some e) -> raise e
  | None, _ -> ()

let run t ~jobs f =
  if jobs <= 1 then f 0
  else if not (Mutex.try_lock t.busy) then run_ephemeral ~jobs f
  else begin
    Dsan.acquire ~site:__POS__ t.ds_busy;
    Fun.protect
      ~finally:(fun () ->
        Dsan.release ~site:__POS__ t.ds_busy;
        Mutex.unlock t.busy)
      (fun () ->
        let j = { f; jobs; next_id = 1; remaining = jobs - 1; error = None } in
        Mutex.lock t.m;
        Dsan.acquire ~site:__POS__ t.ds_m;
        ensure_workers t (jobs - 1);
        Dsan.write ~site:__POS__ t.ds_obj 0;
        t.job <- Some j;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.cv;
        Dsan.release ~site:__POS__ t.ds_m;
        Mutex.unlock t.m;
        let caller_err = try f 0; None with e -> Some e in
        Mutex.lock t.m;
        Dsan.acquire ~site:__POS__ t.ds_m;
        while j.remaining > 0 do
          dsan_wait ~site:__POS__ t
        done;
        Dsan.write ~site:__POS__ t.ds_obj 0;
        t.job <- None;
        Dsan.release ~site:__POS__ t.ds_m;
        Mutex.unlock t.m;
        match caller_err, j.error with
        | Some e, _ | None, Some e -> raise e
        | None, None -> ())
  end
