(** Materialization strategies for STRUDEL sites (§1, §6, [FER 98c]) —
    the "Web site as view" spectrum.

    {!full} materializes the complete site before browsing (the
    prototype's default).  {!Click_time} precomputes only the root(s):
    the site-definition query is decomposed through the site schema
    into one node-expansion query per Skolem family, and when the user
    clicks to page [F(a)] the engine binds [F]'s defining variables to
    [a] and evaluates only the link clauses leaving [F], caching
    rendered pages optionally.  Click-time pages are byte-identical to
    the full build's. *)

open Sgraph

val full :
  ?jobs:int ->
  ?render_cache:Render_cache.t ->
  ?file_loader:(string -> string option) ->
  data:Graph.t -> Site.definition -> Site.built
(** {!Site.build}: [jobs] parallelizes page rendering over OCaml
    domains; [render_cache] reuses pages whose read traces verify. *)

module Click_time : sig
  type t = {
    data : Graph.t;
    def : Site.definition;
    scope : Skolem.t;
    partial : Graph.t;  (** the lazily materialized site graph *)
    schemas : Schema.Site_schema.t list;
    options : Struql.Eval.options;
    mutable expanded : Oid.Set.t;
    page_cache : Render_cache.t;
        (** dependency-tracked page cache, re-verified against the
            partial graph on every lookup *)
    cache_pages : bool;
    compiled : Template.Generator.compiled;
        (** session-wide template-compilation cache *)
    mutable stats_expansions : int;
    mutable stats_queries : int;
    mutable stats_peak_live : int;
        (** largest live-binding watermark any click-time query reached
            on the streaming {!Struql.Exec} pipeline *)
  }

  val start : ?cache:bool -> data:Graph.t -> Site.definition -> t
  (** Evaluate only the CREATE clauses of the root family; all links
      stay pending. *)

  val roots : t -> Oid.t list

  val expand : t -> Oid.t -> unit
  (** Materialize one node's outgoing links by evaluating, per schema
      edge leaving its family, the governing conjunction with the
      node's Skolem arguments bound.  Aggregate link targets are
      grouped and folded exactly as in full evaluation.  Idempotent. *)

  type browse_error =
    | Unknown_object of string
        (** the oid is not a node of this session's site graph — the
            serving layer's 404 *)
    | Render_failed of string
        (** the generator raised; the page is isolated — the serving
            layer's 503 *)

  exception Browse_error of browse_error

  val browse_error_message : browse_error -> string

  val render_page :
    ?compiled:Template.Generator.compiled ->
    ?trace_reads:bool ->
    t -> Oid.t ->
    (Template.Generator.rendered, browse_error) result
  (** Expand the node and its immediate successors, then render just
      that page, as a structured result: an unknown oid or a generator
      exception becomes an [Error], never an escape.  [compiled] lets a
      caller thread of control (a serving worker domain) own its
      template-compilation cache; [trace_reads] defaults to the
      session's caching mode.  Does not consult or fill the page
      cache. *)

  val try_browse : t -> Oid.t -> (string, browse_error) result
  (** {!browse} with structured errors, through the page cache when
      enabled. *)

  val browse : t -> Oid.t -> string
  (** Render one page at click time (expanding the node and its
      immediate successors), through the page cache when enabled.
      Raises {!Browse_error} on an unknown oid or a failed render. *)

  val random_walk : t -> clicks:int -> seed:int -> int
  (** The browse simulator standing in for real user clicks: a
      deterministic random walk from the root.  Returns pages
      visited. *)

  type stats = {
    expansions : int;
    queries : int;        (** link-clause evaluations performed *)
    cache_hits : int;
    cache_misses : int;
    cache_invalidations : int;
        (** cached pages whose read trace no longer verified against
            the partial graph and were re-rendered *)
    materialized_nodes : int;
    materialized_edges : int;
    peak_live : int;      (** see [stats_peak_live] *)
  }

  val stats : t -> stats
end
