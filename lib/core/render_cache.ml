(** Dependency-tracked cache of rendered pages.

    A verifying-trace cache in the build-system sense: each entry stores
    the page's rendered bytes together with the exact read set the
    render performed ({!Template.Generator.read} records with result
    hashes).  An entry is reused iff replaying every read against the
    {e current} graph yields the same hashes — so an edit invalidates
    exactly the pages whose rendering observed it, and nothing else.

    Entries are keyed by the page object's {e name} (for site pages, its
    Skolem term): oids are allocated fresh on every rebuild, names are
    the stable identity across builds.  The cache also fingerprints the
    template set and clears itself wholesale when the templates change,
    since template text is an input the read traces do not cover.

    The cache is consulted and updated only from the main domain; the
    parallel {!Render_pool} validates entries before fanning out and
    stores fresh traces after joining. *)

module G = Template.Generator
open Sgraph

type entry = {
  e_url : string;
  e_title : string;
  e_body : string;
  e_html : string;
  e_reads : G.read list;
  e_refs : string list;
      (** names of the internal objects the page links to — the demand
          edges page discovery follows on a cache hit *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type t = {
  entries : (string, entry) Hashtbl.t;  (* page-object name → entry *)
  stats : stats;
  mutable templates_fp : int option;
  (* sanitizer identity: field 0 = [entries]/[templates_fp], field 1 =
     [stats].  Nothing locks them — the documented invariant is that
     every access stays on the main domain, and instrumenting both
     fields makes a sanitized parallel build check exactly that. *)
  ds_obj : int;
}

let create () =
  {
    entries = Hashtbl.create 64;
    stats = { hits = 0; misses = 0; invalidations = 0 };
    templates_fp = None;
    ds_obj = Dsan.alloc ~name:"Render_cache";
  }

let clear c =
  Dsan.write ~site:__POS__ c.ds_obj 0;
  Hashtbl.reset c.entries

let size c =
  Dsan.read ~site:__POS__ c.ds_obj 0;
  Hashtbl.length c.entries

let stats c =
  Dsan.read ~site:__POS__ c.ds_obj 1;
  (c.stats.hits, c.stats.misses, c.stats.invalidations)

let reset_stats c =
  Dsan.write ~site:__POS__ c.ds_obj 1;
  c.stats.hits <- 0;
  c.stats.misses <- 0;
  c.stats.invalidations <- 0

(* --- Template fingerprint --- *)

let fingerprint_templates (ts : G.template_set) =
  let pairs ps =
    List.fold_left
      (fun acc (k, v) -> G.hash_strings [ k; v ] lxor ((acc * 31) land max_int))
      7 ps
  in
  G.hash_strings
    [ string_of_int (pairs ts.G.by_object);
      string_of_int (pairs ts.G.by_collection);
      string_of_int (pairs ts.G.named) ]

(** Declare the template set the cached pages were rendered with.  If it
    differs from the recorded fingerprint, all entries are dropped
    (template text is an input the read traces cannot see). *)
let set_templates c ts =
  let fp = fingerprint_templates ts in
  Dsan.write ~site:__POS__ c.ds_obj 0;
  (match c.templates_fp with
   | Some old when old <> fp -> clear c
   | _ -> ());
  c.templates_fp <- Some fp

(* --- Trace verification --- *)

(** Replay one recorded read against [g] and compare result hashes.  A
    node that no longer exists reads as the empty result — exactly what
    a render against [g] would observe. *)
let verify_read ?(file_loader = fun _ -> None) g read =
  match read with
  | G.R_attr (name, label, h) ->
    let targets =
      match Graph.find_node g name with
      | Some o -> Graph.attr g o label
      | None -> []
    in
    G.hash_targets targets = h
  | G.R_edges (name, h) ->
    let edges =
      match Graph.find_node g name with
      | Some o -> Graph.out_edges g o
      | None -> []
    in
    G.hash_edges edges = h
  | G.R_colls (name, h) ->
    let colls =
      match Graph.find_node g name with
      | Some o -> Graph.collections_of g o
      | None -> []
    in
    G.hash_strings colls = h
  | G.R_file (path, h) -> G.hash_file (file_loader path) = h

let verify ?file_loader g entry =
  List.for_all (verify_read ?file_loader g) entry.e_reads

(** Like {!verify}, but with an exact change hint: [dirty name] must be
    [true] for every site node whose values, out-edges or collection
    membership changed since the entry's trace was recorded (the delta
    cycle's touched ∪ removed names are exactly that set).  Graph reads
    of non-dirty subjects are accepted without replay; dirty-subject
    reads and file reads are replayed as usual.  Turns the per-publish
    verification cost from O(site × trace) into O(changed × trace). *)
let verify_dirty ?file_loader ~dirty g entry =
  List.for_all
    (fun r ->
      match r with
      | (G.R_attr (name, _, _) | G.R_edges (name, _) | G.R_colls (name, _))
        when not (dirty name) ->
        true
      | r -> verify_read ?file_loader g r)
    entry.e_reads

(** Look up the page for object [o] (keyed by its name) and re-verify
    its trace against [g].  Counts a hit on success; a stale entry is
    removed and counted as an invalidation; an absent one as a miss. *)
let find_valid ?file_loader c g o =
  let key = Oid.name o in
  Dsan.write ~site:__POS__ c.ds_obj 0;
  Dsan.write ~site:__POS__ c.ds_obj 1;
  match Hashtbl.find_opt c.entries key with
  | None ->
    c.stats.misses <- c.stats.misses + 1;
    None
  | Some e ->
    if verify ?file_loader g e then begin
      c.stats.hits <- c.stats.hits + 1;
      Some e
    end
    else begin
      c.stats.invalidations <- c.stats.invalidations + 1;
      Hashtbl.remove c.entries key;
      None
    end

(* --- Batched lookups for the parallel render pool --- *)

(** Entries for a batch of page objects, no verification, no statistic
    updates: the pool prefetches entries on the main domain in one
    pass, verifies the traces on worker domains ({!verify} only reads
    the graph), and settles the table afterwards with {!settle} /
    {!drop} / {!store}. *)
let peek_batch c (os : Oid.t array) : entry option array =
  Dsan.read ~site:__POS__ c.ds_obj 0;
  Array.map (fun o -> Hashtbl.find_opt c.entries (Oid.name o)) os

(** Fold one batch's verdict counts into the statistics. *)
let settle c ~hits ~misses ~invalidations =
  Dsan.write ~site:__POS__ c.ds_obj 1;
  c.stats.hits <- c.stats.hits + hits;
  c.stats.misses <- c.stats.misses + misses;
  c.stats.invalidations <- c.stats.invalidations + invalidations

(** Remove the entry for a page object — a stale entry whose re-render
    degraded to a placeholder, which must not stay cached. *)
let drop c o =
  Dsan.write ~site:__POS__ c.ds_obj 0;
  Hashtbl.remove c.entries (Oid.name o)

(** Record a freshly rendered page (must come from [render_page_full
    ~trace_reads:true], else the entry would validate vacuously). *)
let store c (r : G.rendered) =
  let p = r.G.r_page in
  Dsan.write ~site:__POS__ c.ds_obj 0;
  Hashtbl.replace c.entries (Oid.name p.G.obj)
    {
      e_url = p.G.url;
      e_title = p.G.title;
      e_body = p.G.body;
      e_html = p.G.html;
      e_reads = r.G.r_reads;
      e_refs = List.map Oid.name r.G.r_refs;
    }

(** Rebuild a {!Template.Generator.page} for the current build's page
    object [o] from a validated entry. *)
let page_of_entry (e : entry) o : G.page =
  { G.obj = o; url = e.e_url; title = e.e_title; html = e.e_html;
    body = e.e_body }

(** Resolve an entry's referenced-object names in the current graph
    (names missing from [g] are dropped — a verified trace cannot
    actually contain any, since the link render read their anchors). *)
let refs_of_entry g (e : entry) : Oid.t list =
  List.filter_map (Graph.find_node g) e.e_refs

let pp_stats ppf c =
  Dsan.read ~site:__POS__ c.ds_obj 1;
  Fmt.pf ppf "%d entries, %d hits / %d misses / %d invalidations" (size c)
    c.stats.hits c.stats.misses c.stats.invalidations
