(** Two-stage evaluation of StruQL.

    The {e query stage} evaluates a block's WHERE clause to the relation
    of all satisfying assignments of node and arc variables (one column
    per variable), under active-domain semantics.  The {e construction
    stage} interprets CREATE / LINK / COLLECT over each row, creating
    nodes with Skolem functions (same inputs — same oid), adding edges
    (only from newly created nodes; existing nodes are immutable) and
    populating output collections.  Nested blocks inherit their
    ancestors' bindings, so their WHERE clauses are conjoined with the
    ancestors'. *)

open Sgraph

exception Eval_error of string

type binding = B_target of Graph.target | B_label of string

module Env = Map.Make (String)

type env = binding Env.t

let pp_binding ppf = function
  | B_target t -> Graph.pp_target ppf t
  | B_label l -> Fmt.pf ppf "label %S" l

let pp_env ppf env =
  Fmt.pf ppf "{%a}"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (v, b) ->
          Fmt.pf ppf "%s=%a" v pp_binding b))
    (Env.bindings env)

(* --- Stage 1: the query stage --- *)

let term_binding env = function
  | Ast.T_var v -> Env.find_opt v env
  | Ast.T_const c -> Some (B_target (Graph.V c))
  | Ast.T_skolem _ -> raise (Eval_error "Skolem term in WHERE clause")
  | Ast.T_agg _ -> raise (Eval_error "aggregate term in WHERE clause")

(* Unify a term with a target, given the environment. *)
let match_term env t tgt =
  match t with
  | Ast.T_const c ->
    (match tgt with
     | Graph.V v -> if Value.coerce_equal c v then Some env else None
     | Graph.N _ -> None)
  | Ast.T_var v ->
    (match Env.find_opt v env with
     | None -> Some (Env.add v (B_target tgt) env)
     | Some (B_target t') ->
       if Graph.target_equal t' tgt then Some env
       else
         (match t', tgt with
          | Graph.V a, Graph.V b when Value.coerce_equal a b -> Some env
          | _ -> None)
     | Some (B_label l) ->
       (match tgt with
        | Graph.V v when Value.coerce_equal (Value.String l) v -> Some env
        | _ -> None))
  | Ast.T_skolem _ -> raise (Eval_error "Skolem term in WHERE clause")
  | Ast.T_agg _ -> raise (Eval_error "aggregate term in WHERE clause")

let match_label env lt l =
  match lt with
  | Ast.L_const c -> if c = l then Some env else None
  | Ast.L_var v ->
    (match Env.find_opt v env with
     | None -> Some (Env.add v (B_label l) env)
     | Some (B_label l') -> if l' = l then Some env else None
     | Some (B_target (Graph.V (Value.String s))) ->
       if s = l then Some env else None
     | Some (B_target _) -> None)

(* The source endpoint of an edge/path condition as a node, if bound. *)
let source_node env t =
  match term_binding env t with
  | Some (B_target (Graph.N o)) -> `Node o
  | Some (B_target (Graph.V v)) -> `Value v
  | Some (B_label _) -> `Other
  | None -> `Unbound

let rec exec_cond g reg env (c : Plan.ccond) : env list =
  match c with
  | Plan.CC_coll (name, t) ->
    (match term_binding env t with
     | Some (B_target (Graph.N o)) ->
       if Graph.in_collection g name o then [ env ] else []
     | Some _ -> []
     | None ->
       (match t with
        | Ast.T_var v ->
          List.map
            (fun o -> Env.add v (B_target (Graph.N o)) env)
            (Graph.collection g name)
        | _ -> []))
  | Plan.CC_extern (name, ts) ->
    let args =
      List.map
        (fun t ->
          match term_binding env t with
          | Some (B_target tgt) -> tgt
          | Some (B_label l) -> Graph.V (Value.String l)
          | None ->
            raise
              (Eval_error
                 (Fmt.str "external predicate %s applied to unbound variable"
                    name)))
        ts
    in
    (match Builtins.find_extern reg name with
     | Some f -> if f g args then [ env ] else []
     | None -> raise (Eval_error ("unknown external predicate " ^ name)))
  | Plan.CC_edge (x, lt, y) -> exec_edge g env x lt y
  | Plan.CC_path (x, r, nfa, y) -> exec_path g env x r nfa y
  | Plan.CC_cmp (op, a, b) -> exec_cmp env op a b
  | Plan.CC_in (t, vs) ->
    (match term_binding env t with
     | Some b ->
       let v =
         match b with
         | B_target (Graph.V v) -> v
         | B_label l -> Value.String l
         | B_target (Graph.N _) -> Value.Null
       in
       if List.exists (Value.coerce_equal v) vs then [ env ] else []
     | None ->
       (match t with
        | Ast.T_var var ->
          List.map (fun v -> Env.add var (B_target (Graph.V v)) env) vs
        | _ -> []))
  | Plan.CC_not c ->
    let bound =
      Env.fold (fun k _ s -> Plan.VSet.add k s) env Plan.VSet.empty
    in
    if Plan.executable bound c then
      (* negation as failure: inner generators existentially extend *)
      if exec_cond g reg env c = [] then [ env ] else []
    else begin
      (* the inner condition is a filter over variables nothing binds
         (e.g. [not("s" < x)] with [x] free): the existential ranges
         over the active domain *)
      let unbound =
        List.sort_uniq String.compare (Plan.ccond_vars [] c)
        |> List.filter (fun v -> not (Env.mem v env))
      in
      let rec label_positions acc = function
        | Plan.CC_edge (_, Ast.L_var v, _) -> v :: acc
        | Plan.CC_not c' -> label_positions acc c'
        | _ -> acc
      in
      let label_vars = label_positions [] c in
      let domain v =
        if List.mem v label_vars then
          List.map (fun l -> B_label l) (Graph.labels g)
        else List.map (fun t -> B_target t) (Path.all_objects g)
      in
      let rec exists env' = function
        | [] -> exec_cond g reg env' c <> []
        | v :: rest ->
          List.exists (fun b -> exists (Env.add v b env') rest) (domain v)
      in
      if exists env unbound then [] else [ env ]
    end

and exec_edge g env x lt y =
  match source_node env x with
  | `Node o ->
    List.filter_map
      (fun (l, tgt) ->
        match match_label env lt l with
        | None -> None
        | Some env' -> match_term env' y tgt)
      (Graph.out_edges g o)
  | `Value _ | `Other -> []
  | `Unbound ->
    let bind_src env src =
      match_term env x (Graph.N src)
    in
    let label_known =
      match lt with
      | Ast.L_const c -> Some c
      | Ast.L_var v ->
        (match Env.find_opt v env with
         | Some (B_label l) -> Some l
         | Some (B_target (Graph.V (Value.String s))) -> Some s
         | _ -> None)
    in
    (match label_known with
     | Some l ->
       List.filter_map
         (fun (src, tgt) ->
           match bind_src env src with
           | None -> None
           | Some env' ->
             (match match_label env' lt l with
              | None -> None
              | Some env'' -> match_term env'' y tgt))
         (Graph.label_extent g l)
     | None ->
       (match term_binding env y with
        | Some (B_target tgt) ->
          List.filter_map
            (fun (src, l) ->
              match bind_src env src with
              | None -> None
              | Some env' ->
                (match match_label env' lt l with
                 | None -> None
                 | Some env'' -> match_term env'' y tgt))
            (Graph.in_edges g tgt)
        | Some (B_label lab) ->
          let tgt = Graph.V (Value.String lab) in
          List.filter_map
            (fun (src, l) ->
              match bind_src env src with
              | None -> None
              | Some env' ->
                (match match_label env' lt l with
                 | None -> None
                 | Some env'' -> match_term env'' y tgt))
            (Graph.in_edges g tgt)
        | None ->
          (* full scan *)
          Graph.fold_edges
            (fun src l tgt acc ->
              match bind_src env src with
              | None -> acc
              | Some env' ->
                (match match_label env' lt l with
                 | None -> acc
                 | Some env'' ->
                   (match match_term env'' y tgt with
                    | None -> acc
                    | Some env3 -> env3 :: acc)))
            g []
          |> List.rev))

and exec_path g env x r nfa y =
  match source_node env x with
  | `Node o ->
    List.filter_map (fun tgt -> match_term env y tgt) (Path.eval_from ~nfa g r o)
  | `Value v ->
    if Path.nullable r then
      match match_term env y (Graph.V v) with Some e -> [ e ] | None -> []
    else []
  | `Other -> []
  | `Unbound ->
    (* enumerate sources over the graph's nodes (and, for nullable
       expressions, value objects pair with themselves); when the
       target end is bound and a kernel snapshot is live, the reverse
       CSR prunes the enumeration to the complete candidate set, in
       the same [Graph.nodes] order *)
    let sources =
      let candidates =
        match term_binding env y with
        | Some (B_target (Graph.N o)) ->
          Path.candidate_sources ~nfa g r ~towards:(Path.Pnode o)
        | Some (B_target (Graph.V v)) ->
          Path.candidate_sources ~nfa g r ~towards:(Path.Pvalue v)
        | Some (B_label l) ->
          Path.candidate_sources ~nfa g r
            ~towards:(Path.Pvalue (Value.String l))
        | None -> None
      in
      match candidates with Some srcs -> srcs | None -> Graph.nodes g
    in
    let from_nodes =
      List.concat_map
        (fun src ->
          match match_term env x (Graph.N src) with
          | None -> []
          | Some env' ->
            List.filter_map
              (fun tgt -> match_term env' y tgt)
              (Path.eval_from ~nfa g r src))
        sources
    in
    if Path.nullable r then
      let value_pairs =
        Graph.fold_edges
          (fun _ _ tgt acc ->
            match tgt with
            | Graph.V _ ->
              (match match_term env x tgt with
               | None -> acc
               | Some env' ->
                 (match match_term env' y tgt with
                  | None -> acc
                  | Some env'' -> env'' :: acc))
            | Graph.N _ -> acc)
          g []
      in
      from_nodes @ List.rev value_pairs
    else from_nodes

and exec_cmp env op a b =
  let value_of = function
    | B_target (Graph.V v) -> `Val v
    | B_target (Graph.N o) -> `Node o
    | B_label l -> `Val (Value.String l)
  in
  match term_binding env a, term_binding env b with
  | Some ba, Some bb ->
    let sat =
      match value_of ba, value_of bb with
      | `Node o1, `Node o2 ->
        (match op with
         | Ast.Eq -> Oid.equal o1 o2
         | Ast.Ne -> not (Oid.equal o1 o2)
         | _ -> false)
      | `Val v1, `Val v2 ->
        (match op, Value.coerce_compare v1 v2 with
         | Ast.Eq, Some 0 -> true
         | Ast.Eq, _ -> false
         | Ast.Ne, Some 0 -> false
         | Ast.Ne, _ -> true
         | Ast.Lt, Some c -> c < 0
         | Ast.Le, Some c -> c <= 0
         | Ast.Gt, Some c -> c > 0
         | Ast.Ge, Some c -> c >= 0
         | _, None -> false)
      | `Node _, `Val _ | `Val _, `Node _ -> op = Ast.Ne
    in
    if sat then [ env ] else []
  | None, Some bb ->
    (match op, a with
     | Ast.Eq, Ast.T_var v -> [ Env.add v bb env ]
     | _ -> raise (Eval_error "comparison over unbound variable"))
  | Some ba, None ->
    (match op, b with
     | Ast.Eq, Ast.T_var v -> [ Env.add v ba env ]
     | _ -> raise (Eval_error "comparison over unbound variable"))
  | None, None -> raise (Eval_error "comparison over unbound variables")

let exec_step g reg env (s : Plan.step) : env list =
  match s with
  | Plan.Exec c -> exec_cond g reg env c
  | Plan.Domain_obj v ->
    if Env.mem v env then [ env ]
    else
      List.map (fun t -> Env.add v (B_target t) env) (Path.all_objects g)
  | Plan.Domain_label v ->
    if Env.mem v env then [ env ]
    else List.map (fun l -> Env.add v (B_label l) env) (Graph.labels g)

(** Statistics of a run, for the optimizer experiments. *)
type stats = {
  mutable rows : int;             (* total binding rows produced *)
  mutable intermediate : int;     (* sum of intermediate relation sizes *)
  mutable max_intermediate : int;
  mutable steps : int;
}

let new_stats () = { rows = 0; intermediate = 0; max_intermediate = 0; steps = 0 }

let exec_steps ?stats g reg envs steps =
  List.fold_left
    (fun envs step ->
      let envs' = List.concat_map (fun env -> exec_step g reg env step) envs in
      (match stats with
       | Some s ->
         s.steps <- s.steps + 1;
         s.intermediate <- s.intermediate + List.length envs';
         s.max_intermediate <- max s.max_intermediate (List.length envs')
       | None -> ());
      envs')
    envs steps

(* --- Stage 2: the construction stage --- *)

(** Construction events, observable through an {!emitter}: exactly the
    graph mutations construction performs, in mutation order.  The
    differential engine ({!Dexec}) records them per driver to maintain
    the site graph under data deltas. *)
type emitter = {
  em_apply : bool;
      (** also perform the graph writes (prime/full runs); when false
          the sink only observes, and the caller applies events *)
  em_node : Oid.t -> unit;
  em_edge : Oid.t -> string -> Graph.target -> unit;
  em_coll : string -> Oid.t -> unit;
}

(** The construction sinks: the output graph and the Skolem scope that
    names the nodes it creates.  Shared by the eager evaluator below
    and the streaming {!Exec} engine, which feeds rows one at a time.
    An optional {!emitter} observes (and may replace) the writes. *)
type cons = {
  out : Graph.t;
  scope : Skolem.t;
  emit : emitter option;
}

let sink_node sink o =
  match sink.emit with
  | None -> Graph.add_node sink.out o
  | Some e ->
    if e.em_apply then Graph.add_node sink.out o;
    e.em_node o

let sink_edge sink src l tgt =
  match sink.emit with
  | None -> Graph.add_edge sink.out src l tgt
  | Some e ->
    if e.em_apply then Graph.add_edge sink.out src l tgt;
    e.em_edge src l tgt

let sink_coll sink c o =
  match sink.emit with
  | None -> Graph.add_to_collection sink.out c o
  | Some e ->
    if e.em_apply then Graph.add_to_collection sink.out c o;
    e.em_coll c o

type context = {
  sink : cons;
  registry : Builtins.registry;
  strategy : Plan.strategy;
  run_stats : stats;
}

let rec cons_target sink env (t : Ast.term) : Graph.target =
  match t with
  | Ast.T_const c -> Graph.V c
  | Ast.T_var v ->
    (match Env.find_opt v env with
     | Some (B_target tgt) -> tgt
     | Some (B_label l) -> Graph.V (Value.String l)
     | None ->
       raise (Eval_error (Fmt.str "unbound variable %s in construction" v)))
  | Ast.T_skolem (f, args) ->
    let sargs =
      List.map
        (fun a ->
          match cons_target sink env a with
          | Graph.N o -> Skolem.A_oid o
          | Graph.V v -> Skolem.A_val v)
        args
    in
    let o, _fresh = Skolem.apply sink.scope f sargs in
    sink_node sink o;
    Graph.N o
  | Ast.T_agg (fn, _) ->
    raise
      (Eval_error
         (Ast.agg_name fn ^ "(...) may only appear as a LINK target"))

let cons_label env = function
  | Ast.L_const c -> c
  | Ast.L_var v ->
    (match Env.find_opt v env with
     | Some (B_label l) -> l
     | Some (B_target (Graph.V v')) -> Value.to_display_string v'
     | Some (B_target (Graph.N _)) ->
       raise (Eval_error ("arc variable " ^ v ^ " bound to a node"))
     | None -> raise (Eval_error ("unbound arc variable " ^ v)))

(* --- Aggregation (the §5.2 grouping/aggregation extension) ---

   An aggregate LINK target groups the block's binding rows by the
   constructed source node (and label), and aggregates over the
   distinct values the inner term takes in that group. *)

let aggregate (fn : Ast.agg_fn) (values : Graph.target list) : Value.t =
  let numeric v =
    match v with
    | Value.Int i -> Some (float_of_int i)
    | Value.Float f -> Some f
    | Value.String s -> float_of_string_opt (String.trim s)
    | _ -> None
  in
  let atomics =
    List.filter_map (function Graph.V v -> Some v | Graph.N _ -> None) values
  in
  match fn with
  | Ast.Count -> Value.Int (List.length values)
  | Ast.Sum ->
    let nums = List.filter_map numeric atomics in
    let s = List.fold_left ( +. ) 0. nums in
    if
      List.for_all
        (function Value.Int _ -> true | _ -> false)
        (List.filter (fun v -> numeric v <> None) atomics)
    then Value.Int (int_of_float s)
    else Value.Float s
  | Ast.Avg ->
    let nums = List.filter_map numeric atomics in
    if nums = [] then Value.Null
    else
      Value.Float (List.fold_left ( +. ) 0. nums /. float_of_int (List.length nums))
  | Ast.Min | Ast.Max ->
    let cmp a b =
      match Value.coerce_compare a b with
      | Some c -> c
      | None ->
        String.compare (Value.to_display_string a) (Value.to_display_string b)
    in
    let pick =
      match fn with
      | Ast.Min -> fun a b -> if cmp b a < 0 then b else a
      | _ -> fun a b -> if cmp b a > 0 then b else a
    in
    (match atomics with
     | [] -> Value.Null
     | v :: rest -> List.fold_left pick v rest)

let target_key = function
  | Graph.N o -> "N" ^ string_of_int (Oid.id o)
  | Graph.V v -> "V" ^ Value.to_string v

let link_source sink env x lt =
  let src =
    match x with
    | Ast.T_skolem _ -> (
        match cons_target sink env x with
        | Graph.N o -> o
        | Graph.V _ -> assert false)
    | Ast.T_var _ | Ast.T_const _ | Ast.T_agg _ ->
      raise
        (Eval_error
           "LINK may only add edges from newly created (Skolem) nodes; \
            existing nodes are immutable")
  in
  (src, cons_label env lt)

(* Aggregate link targets are grouped by (source node, label, aggregate
   expression) across the rows of one block; the groups live for the
   duration of the block and are folded when the last row is in. *)
type agg_groups =
  (string, Oid.t * string * Ast.agg_fn * (string, Graph.target) Hashtbl.t)
    Hashtbl.t

let new_groups () : agg_groups = Hashtbl.create 8

(** Interpret the construction clauses of one block over a single
    binding row.  Aggregate link targets only accumulate into [groups];
    {!construct_flush} emits them once the block's relation is
    exhausted.  The streaming engine calls this row-by-row as bindings
    come off the operator pipeline; the mutation sequence is identical
    to the eager evaluator's. *)
let construct_row sink (groups : agg_groups) (b : Ast.block) env =
  List.iter
    (fun (f, args) ->
      ignore (cons_target sink env (Ast.T_skolem (f, args))))
    b.create;
  List.iter
    (fun (x, lt, y) ->
      match y with
      | Ast.T_agg (fn, inner) ->
        let src, label = link_source sink env x lt in
        let v = cons_target sink env inner in
        let key =
          Printf.sprintf "%d|%s|%s|%s" (Oid.id src) label
            (Ast.agg_name fn)
            (Fmt.str "%a" Pretty.pp_term inner)
        in
        let _, _, _, vals =
          match Hashtbl.find_opt groups key with
          | Some g -> g
          | None ->
            let g = (src, label, fn, Hashtbl.create 8) in
            Hashtbl.add groups key g;
            g
        in
        Hashtbl.replace vals (target_key v) v
      | y ->
        let src, label = link_source sink env x lt in
        sink_edge sink src label (cons_target sink env y))
    b.link;
  List.iter
    (fun (c, t) ->
      match cons_target sink env t with
      | Graph.N o -> sink_coll sink c o
      | Graph.V _ ->
        raise (Eval_error ("COLLECT " ^ c ^ " applied to an atomic value")))
    b.collect

(** Fold and emit the accumulated aggregate groups of one block. *)
let construct_flush sink (groups : agg_groups) =
  Hashtbl.iter
    (fun _ (src, label, fn, vals) ->
      let values = Hashtbl.fold (fun _ v acc -> v :: acc) vals [] in
      sink_edge sink src label (Graph.V (aggregate fn values)))
    groups

(** Run the construction clauses of one block over its whole binding
    relation. *)
let construct_block ctx envs (b : Ast.block) =
  let groups = new_groups () in
  List.iter (fun env -> construct_row ctx.sink groups b env) envs;
  construct_flush ctx.sink groups

(* Construction variables of a block, split into object and arc
   positions, for the planner's active-domain pre-pass. *)
let construction_needs (b : Ast.block) =
  let obj = ref [] and lab = ref [] in
  List.iter
    (fun (_, args) -> obj := List.fold_left Ast.term_vars !obj args)
    b.create;
  List.iter
    (fun (x, l, y) ->
      obj := Ast.term_vars (Ast.term_vars !obj x) y;
      lab := Ast.label_vars !lab l)
    b.link;
  List.iter (fun (_, t) -> obj := Ast.term_vars !obj t) b.collect;
  (Ast.dedup !obj, Ast.dedup !lab)

let rec run_block g ctx bound envs (b : Ast.block) =
  let needed_obj, needed_label = construction_needs b in
  let steps =
    Plan.plan ~strategy:ctx.strategy ~registry:ctx.registry g ~bound
      ~needed_obj ~needed_label b.where
  in
  let envs' = exec_steps ~stats:ctx.run_stats g ctx.registry envs steps in
  ctx.run_stats.rows <- ctx.run_stats.rows + List.length envs';
  construct_block ctx envs' b;
  let bound' =
    Ast.dedup
      (bound
      @ List.concat_map (fun s -> Plan.step_binds s) steps)
  in
  List.iter (fun nested -> run_block g ctx bound' envs' nested) b.nested

type options = {
  strategy : Plan.strategy;
  registry : Builtins.registry;
  validate : bool;
}

let default_options =
  { strategy = Plan.Heuristic; registry = Builtins.default; validate = true }

let run ?(options = default_options) ?scope ?into g (q : Ast.query) =
  if options.validate then Check.validate_exn q;
  let out =
    match into with
    | Some g' -> g'
    | None -> Graph.create ~name:q.output ()
  in
  let scope = match scope with Some s -> s | None -> Skolem.create () in
  if not (out == g) then ignore (Graph.freeze g);
  let ctx =
    {
      sink = { out; scope; emit = None };
      registry = options.registry;
      strategy = options.strategy;
      run_stats = new_stats ();
    }
  in
  List.iter (fun b -> run_block g ctx [] [ Env.empty ] b) q.blocks;
  out

(** Evaluate a whole query into a caller-built sink — the hook the
    differential engine uses to replay non-incrementalizable queries
    through an observing emitter with the exact eager semantics. *)
let run_query ?(options = default_options) ~sink g (q : Ast.query) =
  if options.validate then Check.validate_exn q;
  if not (sink.out == g) then ignore (Graph.freeze g);
  let ctx =
    {
      sink;
      registry = options.registry;
      strategy = options.strategy;
      run_stats = new_stats ();
    }
  in
  List.iter (fun b -> run_block g ctx [] [ Env.empty ] b) q.blocks

let run_with_stats ?(options = default_options) ?scope ?into g q =
  if options.validate then Check.validate_exn q;
  let out =
    match into with
    | Some g' -> g'
    | None -> Graph.create ~name:q.Ast.output ()
  in
  let scope = match scope with Some s -> s | None -> Skolem.create () in
  if not (out == g) then ignore (Graph.freeze g);
  let ctx =
    {
      sink = { out; scope; emit = None };
      registry = options.registry;
      strategy = options.strategy;
      run_stats = new_stats ();
    }
  in
  List.iter (fun b -> run_block g ctx [] [ Env.empty ] b) q.Ast.blocks;
  (out, ctx.run_stats)

(** Evaluate a bare condition list (stage 1 only); for tests and for
    the click-time engine. *)
let bindings ?(options = default_options) ?(env = Env.empty) ?(bound = [])
    ?(needed_obj = []) ?(needed_label = []) g conds =
  let bound = Ast.dedup (bound @ List.map fst (Env.bindings env)) in
  let steps =
    Plan.plan ~strategy:options.strategy ~registry:options.registry g ~bound
      ~needed_obj ~needed_label conds
  in
  exec_steps g options.registry [ env ] steps

(** Parse and run a query in one call. *)
let run_string ?options ?scope ?into g src =
  let registry =
    match options with Some o -> o.registry | None -> Builtins.default
  in
  let q = Parser.parse ~registry src in
  run ?options ?scope ?into g q
