(** Recursive-descent parser for StruQL's concrete syntax.

    The syntax follows the paper (keywords are case-insensitive):

    {v
    INPUT BIBTEX
    { CREATE RootPage(), AbstractsPage()
      LINK RootPage() -> "AbstractsPage" -> AbstractsPage() }
    { WHERE Publications(x), x -> l -> v
      CREATE PaperPresentation(x), AbstractPage(x)
      LINK AbstractPage(x) -> l -> v
      { WHERE l = "year"
        CREATE YearPage(v)
        LINK YearPage(v) -> "Paper" -> PaperPresentation(x) }
    }
    OUTPUT HomePage
    v}

    Braces delimit blocks; a nested block's WHERE conjoins with its
    ancestors'.  Top-level clauses outside any brace form one implicit
    block (clauses of one block may be intermixed; the meaning is that
    of the query with all clauses joined).  Conditions are separated by
    [,] or [;].  Single-edge conditions write [x -> l -> y] (an ident
    hop is an arc variable, a string hop a literal label); anything
    richer — [*], concatenation [.], alternation [|], postfix [* + ?],
    label predicates, [true] — is a regular path expression.  [x in
    {"a", "b"}] abbreviates a disjunction of equalities. *)

open Sgraph

exception Parse_error of string * int * int  (** message, line, column *)

type span = { sl : int; sc : int; el : int; ec : int }

type block_spans = {
  s_where : span list;
  s_create : span list;
  s_link : span list;
  s_collect : span list;
  s_nested : block_spans list;
}

type query_spans = block_spans list

let empty_block_spans =
  { s_where = []; s_create = []; s_link = []; s_collect = []; s_nested = [] }

let puncts =
  [ "->"; "{"; "}"; "("; ")"; ","; ";"; "."; "|"; "*"; "+"; "?";
    "!="; "<="; ">="; "<"; ">"; "=" ]

let keywords =
  [ "input"; "output"; "where"; "create"; "link"; "collect"; "in"; "not" ]

let is_keyword s = List.mem (String.lowercase_ascii s) keywords

type state = { st : Lex.Stream.t; reg : Builtins.registry }

(* End of a clause item list: a clause keyword, brace, or EOF ("not"
   and "in" are keywords but start/continue conditions, not clauses). *)
let clause_keywords = [ "input"; "output"; "where"; "create"; "link"; "collect" ]

let at_list_end p =
  match Lex.Stream.peek p.st with
  | Lex.Eof | Lex.Punct "{" | Lex.Punct "}" -> true
  | Lex.Ident s -> List.mem (String.lowercase_ascii s) clause_keywords
  | _ -> false

let accept_separator p =
  Lex.Stream.accept_punct p.st "," || Lex.Stream.accept_punct p.st ";"

(* --- Terms --- *)

let parse_literal p =
  match Lex.Stream.advance p.st with
  | Lex.Str s -> Value.String s
  | Lex.Int_lit i -> Value.Int i
  | Lex.Float_lit f -> Value.Float f
  | Lex.Ident "true" -> Value.Bool true
  | Lex.Ident "false" -> Value.Bool false
  | Lex.Ident "null" -> Value.Null
  | tok ->
    Lex.Stream.error p.st (Fmt.str "expected a literal, found %a" Lex.pp_token tok)

(* A term in a WHERE condition: a variable or a constant. *)
let parse_where_term p =
  match Lex.Stream.peek p.st with
  | Lex.Ident s when not (is_keyword s) && s <> "true" && s <> "false"
                     && s <> "null" ->
    ignore (Lex.Stream.advance p.st);
    Ast.T_var s
  | _ -> Ast.T_const (parse_literal p)

(* A term in a construction clause: Skolem term, aggregate, variable or
   constant.  An all-lowercase aggregate name (count/sum/min/max/avg)
   applied to one argument is an aggregate; Skolem functions are
   conventionally capitalized. *)
let rec parse_cons_term p =
  match Lex.Stream.peek p.st, Lex.Stream.peek2 p.st with
  | Lex.Ident s, Lex.Punct "(" when not (is_keyword s) -> (
    ignore (Lex.Stream.advance p.st);
    Lex.Stream.eat_punct p.st "(";
    let args = ref [] in
    if not (Lex.Stream.accept_punct p.st ")") then begin
      args := [ parse_cons_term p ];
      while Lex.Stream.accept_punct p.st "," do
        args := parse_cons_term p :: !args
      done;
      Lex.Stream.eat_punct p.st ")"
    end;
    match Ast.agg_of_name s, List.rev !args with
    | Some fn, [ inner ] -> Ast.T_agg (fn, inner)
    | Some _, args ->
      Lex.Stream.error p.st
        (Fmt.str "aggregate %s expects exactly one argument, got %d" s
           (List.length args))
    | None, args -> Ast.T_skolem (s, args))
  | Lex.Ident s, _ when not (is_keyword s) && s <> "true" && s <> "false"
                        && s <> "null" ->
    ignore (Lex.Stream.advance p.st);
    Ast.T_var s
  | _ -> Ast.T_const (parse_literal p)

(* --- Regular path expressions --- *)

let label_pred p name =
  if name = "true" then Path.Any
  else
    match Builtins.find_label_pred p.reg name with
    | Some f -> Path.Named_pred (name, f)
    | None ->
      Lex.Stream.error p.st
        (Fmt.str "unknown label predicate '%s' in path expression" name)

let rec parse_rpe p = parse_alt p

and parse_alt p =
  let left = parse_seq p in
  if Lex.Stream.accept_punct p.st "|" then Path.Alt (left, parse_alt p)
  else left

and parse_seq p =
  let left = parse_postfix p in
  if Lex.Stream.accept_punct p.st "." then Path.Seq (left, parse_seq p)
  else left

and parse_postfix p =
  let atom = parse_atom p in
  let rec post acc =
    if Lex.Stream.accept_punct p.st "*" then post (Path.Star acc)
    else if Lex.Stream.accept_punct p.st "+" then post (Path.Plus acc)
    else if Lex.Stream.accept_punct p.st "?" then post (Path.Opt acc)
    else acc
  in
  post atom

and parse_atom p =
  match Lex.Stream.advance p.st with
  | Lex.Str s -> Path.Edge (Path.Label s)
  | Lex.Punct "*" -> Path.any_path
  | Lex.Punct "(" ->
    let r = parse_rpe p in
    Lex.Stream.eat_punct p.st ")";
    r
  | Lex.Ident s -> Path.Edge (label_pred p s)
  | tok ->
    Lex.Stream.error p.st
      (Fmt.str "expected a path expression, found %a" Lex.pp_token tok)

(* A hop between two '->' arrows.  A bare ident is an arc variable;
   [true], a string followed by path operators, '*', or '(' start a
   regular path expression. *)
type hop = H_label of Ast.label_term | H_rpe of Path.t

let rpe_continues p =
  match Lex.Stream.peek p.st with
  | Lex.Punct ("." | "|" | "*" | "+" | "?") -> true
  | _ -> false

let rec parse_hop p =
  match Lex.Stream.peek p.st with
  | Lex.Ident "true" ->
    ignore (Lex.Stream.advance p.st);
    if rpe_continues p then
      H_rpe (parse_rest_of_rpe p (Path.Edge Path.Any))
    else H_rpe (Path.Edge Path.Any)
  | Lex.Ident s when not (is_keyword s) ->
    if Builtins.find_label_pred p.reg s <> None then begin
      ignore (Lex.Stream.advance p.st);
      let atom = Path.Edge (label_pred p s) in
      if rpe_continues p then H_rpe (parse_rest_of_rpe p atom)
      else H_rpe atom
    end
    else begin
      ignore (Lex.Stream.advance p.st);
      if rpe_continues p then
        Lex.Stream.error p.st
          (Fmt.str
             "'%s' is not a registered label predicate; only predicates, \
              strings, 'true', '*' and parentheses may appear in path \
              expressions" s)
      else H_label (Ast.L_var s)
    end
  | Lex.Str s ->
    ignore (Lex.Stream.advance p.st);
    if rpe_continues p then
      H_rpe (parse_rest_of_rpe p (Path.Edge (Path.Label s)))
    else H_label (Ast.L_const s)
  | Lex.Punct ("*" | "(") -> H_rpe (parse_rpe p)
  | tok ->
    Lex.Stream.error p.st
      (Fmt.str "expected an edge label or path expression, found %a"
         Lex.pp_token tok)

(* Continue an RPE whose first atom has been consumed. *)
and parse_rest_of_rpe p atom =
  let rec post acc =
    if Lex.Stream.accept_punct p.st "*" then post (Path.Star acc)
    else if Lex.Stream.accept_punct p.st "+" then post (Path.Plus acc)
    else if Lex.Stream.accept_punct p.st "?" then post (Path.Opt acc)
    else acc
  in
  let left = post atom in
  let left =
    if Lex.Stream.accept_punct p.st "." then Path.Seq (left, parse_seq p)
    else left
  in
  if Lex.Stream.accept_punct p.st "|" then Path.Alt (left, parse_alt p)
  else left

(* --- Conditions --- *)

let parse_cmp_op p =
  match Lex.Stream.advance p.st with
  | Lex.Punct "=" -> Ast.Eq
  | Lex.Punct "!=" -> Ast.Ne
  | Lex.Punct "<" -> Ast.Lt
  | Lex.Punct "<=" -> Ast.Le
  | Lex.Punct ">" -> Ast.Gt
  | Lex.Punct ">=" -> Ast.Ge
  | tok ->
    Lex.Stream.error p.st
      (Fmt.str "expected a comparison operator, found %a" Lex.pp_token tok)

let rec parse_condition p acc =
  (* appends one or more conditions (a chain yields several) to acc *)
  match Lex.Stream.peek p.st, Lex.Stream.peek2 p.st with
  | Lex.Ident s, _ when String.lowercase_ascii s = "not" ->
    ignore (Lex.Stream.advance p.st);
    Lex.Stream.eat_punct p.st "(";
    let inner = parse_condition p [] in
    Lex.Stream.eat_punct p.st ")";
    (match inner with
     | [ c ] -> Ast.C_not c :: acc
     | _ ->
       (* negation of a conjunction is not in the core language *)
       Lex.Stream.error p.st "not(...) must contain a single condition")
  | Lex.Ident s, Lex.Punct "(" when not (is_keyword s) ->
    (* atom: collection membership or external predicate *)
    ignore (Lex.Stream.advance p.st);
    Lex.Stream.eat_punct p.st "(";
    let args = ref [] in
    if not (Lex.Stream.accept_punct p.st ")") then begin
      args := [ parse_where_term p ];
      while Lex.Stream.accept_punct p.st "," do
        args := parse_where_term p :: !args
      done;
      Lex.Stream.eat_punct p.st ")"
    end;
    Ast.C_atom (s, List.rev !args) :: acc
  | _ ->
    let t = parse_where_term p in
    (match Lex.Stream.peek p.st with
     | Lex.Punct "->" -> parse_chain p t acc
     | Lex.Punct ("=" | "!=" | "<" | "<=" | ">" | ">=") ->
       let op = parse_cmp_op p in
       let t2 = parse_where_term p in
       Ast.C_cmp (op, t, t2) :: acc
     | Lex.Ident s when String.lowercase_ascii s = "in" ->
       ignore (Lex.Stream.advance p.st);
       Lex.Stream.eat_punct p.st "{";
       let vs = ref [ parse_literal p ] in
       while Lex.Stream.accept_punct p.st "," do
         vs := parse_literal p :: !vs
       done;
       Lex.Stream.eat_punct p.st "}";
       Ast.C_in (t, List.rev !vs) :: acc
     | tok ->
       Lex.Stream.error p.st
         (Fmt.str "expected '->', a comparison, or 'in' after a term, \
                   found %a" Lex.pp_token tok))

and parse_chain p src acc =
  (* src '->' hop '->' tgt ('->' hop '->' tgt)* *)
  Lex.Stream.eat_punct p.st "->";
  let hop = parse_hop p in
  Lex.Stream.eat_punct p.st "->";
  let tgt = parse_where_term p in
  let cond =
    match hop with
    | H_label l -> Ast.C_edge (src, l, tgt)
    | H_rpe r -> Ast.C_path (src, r, tgt)
  in
  let acc = cond :: acc in
  match Lex.Stream.peek p.st with
  | Lex.Punct "->" -> parse_chain p tgt acc
  | _ -> acc

(* Close a span opened at [start]: it ends just past the last consumed
   token (collapsing to the start position if nothing was consumed). *)
let finish_span p ((sl, sc) as _start) =
  match Lex.Stream.last_end p.st with
  | 0, _ -> { sl; sc; el = sl; ec = sc }
  | el, ec -> { sl; sc; el; ec }

let parse_condition_list p =
  let acc = ref [] in
  let sps = ref [] in
  let continue = ref true in
  while !continue do
    let start = Lex.Stream.pos p.st in
    let before = List.length !acc in
    acc := parse_condition p !acc;
    (* one source chain may yield several conditions; they share its span *)
    let sp = finish_span p start in
    for _ = 1 to List.length !acc - before do
      sps := sp :: !sps
    done;
    if not (accept_separator p) then continue := false
    else if at_list_end p then continue := false
  done;
  (List.rev !acc, List.rev !sps)

(* --- Construction clauses --- *)

let parse_create_item p =
  match parse_cons_term p with
  | Ast.T_skolem (f, args) -> (f, args)
  | _ -> Lex.Stream.error p.st "CREATE expects Skolem terms like F(x)"

let parse_link_item p =
  let src = parse_cons_term p in
  Lex.Stream.eat_punct p.st "->";
  let label =
    match Lex.Stream.peek p.st with
    | Lex.Str s ->
      ignore (Lex.Stream.advance p.st);
      Ast.L_const s
    | Lex.Ident s when not (is_keyword s) ->
      ignore (Lex.Stream.advance p.st);
      Ast.L_var s
    | tok ->
      Lex.Stream.error p.st
        (Fmt.str "expected a label or arc variable in LINK, found %a"
           Lex.pp_token tok)
  in
  Lex.Stream.eat_punct p.st "->";
  let tgt = parse_cons_term p in
  (src, label, tgt)

let parse_collect_item p =
  match Lex.Stream.peek p.st, Lex.Stream.peek2 p.st with
  | Lex.Ident c, Lex.Punct "(" when not (is_keyword c) ->
    ignore (Lex.Stream.advance p.st);
    Lex.Stream.eat_punct p.st "(";
    let t = parse_cons_term p in
    Lex.Stream.eat_punct p.st ")";
    (c, t)
  | tok, _ ->
    Lex.Stream.error p.st
      (Fmt.str "COLLECT expects Collection(term), found %a" Lex.pp_token tok)

let parse_item_list p parse_item =
  let one () =
    let start = Lex.Stream.pos p.st in
    let it = parse_item p in
    (it, finish_span p start)
  in
  let acc = ref [ one () ] in
  let continue = ref true in
  while !continue do
    if not (accept_separator p) then continue := false
    else if at_list_end p then continue := false
    else acc := one () :: !acc
  done;
  List.split (List.rev !acc)

(* --- Blocks --- *)

let rec parse_block_items p (blk, sb) =
  match Lex.Stream.peek p.st with
  | Lex.Ident s when String.lowercase_ascii s = "where" ->
    ignore (Lex.Stream.advance p.st);
    let conds, sps = parse_condition_list p in
    parse_block_items p
      ( { blk with Ast.where = blk.Ast.where @ conds },
        { sb with s_where = sb.s_where @ sps } )
  | Lex.Ident s when String.lowercase_ascii s = "create" ->
    ignore (Lex.Stream.advance p.st);
    let items, sps = parse_item_list p parse_create_item in
    parse_block_items p
      ( { blk with Ast.create = blk.Ast.create @ items },
        { sb with s_create = sb.s_create @ sps } )
  | Lex.Ident s when String.lowercase_ascii s = "link" ->
    ignore (Lex.Stream.advance p.st);
    let items, sps = parse_item_list p parse_link_item in
    parse_block_items p
      ( { blk with Ast.link = blk.Ast.link @ items },
        { sb with s_link = sb.s_link @ sps } )
  | Lex.Ident s when String.lowercase_ascii s = "collect" ->
    ignore (Lex.Stream.advance p.st);
    let items, sps = parse_item_list p parse_collect_item in
    parse_block_items p
      ( { blk with Ast.collect = blk.Ast.collect @ items },
        { sb with s_collect = sb.s_collect @ sps } )
  | Lex.Punct "{" ->
    ignore (Lex.Stream.advance p.st);
    let nested, snested = parse_block_items p (Ast.empty_block, empty_block_spans) in
    Lex.Stream.eat_punct p.st "}";
    parse_block_items p
      ( { blk with Ast.nested = blk.Ast.nested @ [ nested ] },
        { sb with s_nested = sb.s_nested @ [ snested ] } )
  | _ -> (blk, sb)

let block_is_empty (b : Ast.block) =
  b.where = [] && b.create = [] && b.link = [] && b.collect = []
  && b.nested = []

let parse_query p =
  let input =
    if Lex.Stream.accept_ident p.st "input" then begin
      let acc = ref [ Lex.Stream.expect_ident p.st ] in
      while Lex.Stream.accept_punct p.st "," do
        acc := Lex.Stream.expect_ident p.st :: !acc
      done;
      List.rev !acc
    end
    else [ "input" ]
  in
  (* top level: braced blocks are siblings; unbraced clauses form one
     implicit block *)
  let blocks = ref [] in
  let implicit = ref (Ast.empty_block, empty_block_spans) in
  let continue = ref true in
  while !continue do
    match Lex.Stream.peek p.st with
    | Lex.Punct "{" ->
      ignore (Lex.Stream.advance p.st);
      let b = parse_block_items p (Ast.empty_block, empty_block_spans) in
      Lex.Stream.eat_punct p.st "}";
      blocks := b :: !blocks
    | Lex.Ident s
      when List.mem (String.lowercase_ascii s)
             [ "where"; "create"; "link"; "collect" ] ->
      implicit := parse_block_items p !implicit
    | _ -> continue := false
  done;
  if not (block_is_empty (fst !implicit)) then blocks := !implicit :: !blocks;
  let output =
    if Lex.Stream.accept_ident p.st "output" then Lex.Stream.expect_ident p.st
    else "output"
  in
  if not (Lex.Stream.at_eof p.st) then
    Lex.Stream.error p.st
      (Fmt.str "unexpected %a after end of query" Lex.pp_token
         (Lex.Stream.peek p.st));
  let bs, sps = List.split (List.rev !blocks) in
  ({ Ast.input; blocks = bs; output }, sps)

let parse_located ?(registry = Builtins.default) src =
  let toks =
    try Lex.tokenize ~puncts src
    with Lex.Lex_error (msg, line) -> raise (Parse_error (msg, line, 0))
  in
  let p = { st = Lex.Stream.of_tokens toks; reg = registry } in
  try parse_query p
  with Lex.Stream.Parse_error (msg, line, col) ->
    raise (Parse_error (msg, line, col))

let parse ?registry src = fst (parse_located ?registry src)

let parse_conditions ?(registry = Builtins.default) src =
  let toks =
    try Lex.tokenize ~puncts src
    with Lex.Lex_error (msg, line) -> raise (Parse_error (msg, line, 0))
  in
  let p = { st = Lex.Stream.of_tokens toks; reg = registry } in
  try
    let conds, _sps = parse_condition_list p in
    if not (Lex.Stream.at_eof p.st) then
      Lex.Stream.error p.st "trailing input after conditions";
    conds
  with Lex.Stream.Parse_error (msg, line, col) ->
    raise (Parse_error (msg, line, col))
