(** Query planning for the WHERE stage.

    A plan is an ordering of the block's conditions, each compiled to an
    access path, possibly interleaved with active-domain enumerators for
    variables that no positive condition binds (the paper's
    active-domain semantics: such queries are legal but range over all
    objects/labels of the input graph).

    Three strategies reproduce the system's evolution (§2.4): [Naive]
    keeps textual order, [Heuristic] greedily picks the executable
    condition with the smallest estimated output (the "simple
    heuristic-based optimizer" of the first implementation), and
    [Cost_based] enumerates orderings by dynamic programming over
    condition subsets with an index-aware cost model (the later
    optimizer of [FLO 97]). *)

open Sgraph

exception Plan_error of string

type strategy = Naive | Heuristic | Cost_based

(** Conditions compiled to resolved, NFA-carrying form. *)
type ccond =
  | CC_coll of string * Ast.term
  | CC_extern of string * Ast.term list
  | CC_edge of Ast.term * Ast.label_term * Ast.term
  | CC_path of Ast.term * Path.t * Path.nfa * Ast.term
  | CC_cmp of Ast.cmp_op * Ast.term * Ast.term
  | CC_in of Ast.term * Value.t list
  | CC_not of ccond

type step =
  | Exec of ccond
  | Domain_obj of Ast.var   (** bind the variable to every object *)
  | Domain_label of Ast.var (** bind the variable to every label *)

let rec compile registry cond =
  match cond with
  | Ast.C_atom (name, args) ->
    if Builtins.is_extern registry name then CC_extern (name, args)
    else (
      match args with
      | [ t ] -> CC_coll (name, t)
      | _ ->
        raise
          (Plan_error
             (Fmt.str
                "%s is neither a registered external predicate nor a \
                 unary collection atom"
                name)))
  | Ast.C_edge (x, l, y) -> CC_edge (x, l, y)
  | Ast.C_path (x, r, y) -> CC_path (x, r, Path.compile r, y)
  | Ast.C_cmp (op, a, b) -> CC_cmp (op, a, b)
  | Ast.C_in (t, vs) -> CC_in (t, vs)
  | Ast.C_not c -> CC_not (compile registry c)

let rec ccond_vars acc = function
  | CC_coll (_, t) -> Ast.term_vars acc t
  | CC_extern (_, ts) -> List.fold_left Ast.term_vars acc ts
  | CC_edge (x, l, y) ->
    Ast.label_vars (Ast.term_vars (Ast.term_vars acc x) y) l
  | CC_path (x, _, _, y) -> Ast.term_vars (Ast.term_vars acc x) y
  | CC_cmp (_, a, b) -> Ast.term_vars (Ast.term_vars acc a) b
  | CC_in (t, _) -> Ast.term_vars acc t
  | CC_not c -> ccond_vars acc c

(** Variables a condition binds when executed (positive bindings). *)
let ccond_binds = function
  | CC_coll (_, t) -> Ast.term_vars [] t
  | CC_edge (x, l, y) ->
    Ast.label_vars (Ast.term_vars (Ast.term_vars [] x) y) l
  | CC_path (x, _, _, y) -> Ast.term_vars (Ast.term_vars [] x) y
  | CC_cmp (Ast.Eq, a, b) -> Ast.term_vars (Ast.term_vars [] a) b
  | CC_in (t, _) -> Ast.term_vars [] t
  | CC_extern _ | CC_cmp _ | CC_not _ -> []

module VSet = Set.Make (String)

let term_bound bound = function
  | Ast.T_var v -> VSet.mem v bound
  | Ast.T_const _ -> true
  | Ast.T_skolem _ -> raise (Plan_error "Skolem term in WHERE clause")
  | Ast.T_agg _ -> raise (Plan_error "aggregate term in WHERE clause")

let label_bound bound = function
  | Ast.L_var v -> VSet.mem v bound
  | Ast.L_const _ -> true

(** Whether a condition can run given the bound set.  Generators can
    always run (worst case, a scan); pure filters need all their
    variables bound; an equality with one bound side can bind the
    other.  A negation runs once every inner variable that {e will ever}
    be bound in this plan ([universe]) is bound — inner variables
    outside the universe are existential within the [not] (negation as
    failure: [not(x -> "journal" -> j)] with [j] appearing nowhere else
    means "x has no journal attribute"). *)
let executable ?(limited = []) ?universe bound = function
  | CC_coll (name, t) ->
    (* a limited-access source can test membership of a bound object
       but cannot be enumerated (§2.4's limited access patterns) *)
    if List.mem name limited then term_bound bound t else true
  | CC_edge _ | CC_path _ | CC_in _ -> true
  | CC_extern (_, ts) -> List.for_all (term_bound bound) ts
  | CC_cmp (Ast.Eq, a, b) -> term_bound bound a || term_bound bound b
  | CC_cmp (_, a, b) -> term_bound bound a && term_bound bound b
  | CC_not c ->
    let relevant =
      match universe with
      | None -> ccond_vars [] c
      | Some u -> List.filter (fun v -> VSet.mem v u) (ccond_vars [] c)
    in
    List.for_all (fun v -> VSet.mem v bound) relevant

(* --- Cardinality and work estimation --- *)

type stats = {
  n_nodes : float;
  n_edges : float;
  n_labels : float;
  n_objects : float;
  avg_out : float;
  coll_size : string -> float;
  label_cnt : string -> float;
}

let stats_of_graph g =
  let n_nodes = float_of_int (max 1 (Graph.node_count g)) in
  let n_edges = float_of_int (max 1 (Graph.edge_count g)) in
  {
    n_nodes;
    n_edges;
    n_labels = float_of_int (max 1 (List.length (Graph.labels g)));
    n_objects = float_of_int (max 1 (Graph.node_count g + Graph.edge_count g));
    avg_out = n_edges /. n_nodes;
    coll_size = (fun c -> float_of_int (max 1 (Graph.collection_size g c)));
    label_cnt = (fun l -> float_of_int (max 0 (Graph.label_count g l)));
  }

(** [estimate st bound c] returns [(fanout, work)]: the expected number
    of output rows per input row, and the work per input row. *)
let rec estimate st bound c =
  match c with
  | CC_coll (_, t) when term_bound bound t -> (0.3, 1.)
  | CC_coll (name, _) -> (st.coll_size name, st.coll_size name)
  | CC_extern _ -> (0.5, 1.)
  | CC_edge (x, l, y) ->
    let bx = term_bound bound x
    and bl = label_bound bound l
    and by = term_bound bound y in
    let avg_out = st.n_edges /. st.n_nodes in
    let label_fanout lc = lc /. st.n_nodes in
    (match bx, bl, by with
     | true, true, true -> (0.2, avg_out)
     | true, true, false ->
       let lc = match l with
         | Ast.L_const s -> st.label_cnt s
         | Ast.L_var _ -> st.n_edges /. st.n_labels
       in
       (Float.max 0.2 (label_fanout lc), avg_out)
     | true, false, _ -> ((if by then 0.3 else avg_out), avg_out)
     | false, true, true ->
       let lc = match l with
         | Ast.L_const s -> st.label_cnt s
         | Ast.L_var _ -> st.n_edges /. st.n_labels
       in
       (Float.max 0.2 (label_fanout lc), Float.max 1. (label_fanout lc))
     | false, true, false ->
       let lc = match l with
         | Ast.L_const s -> st.label_cnt s
         | Ast.L_var _ -> st.n_edges /. st.n_labels
       in
       (Float.max 1. lc, Float.max 1. lc)
     | false, false, true -> (avg_out, avg_out)
     | false, false, false -> (st.n_edges, st.n_edges))
  | CC_path (x, _, _, y) ->
    let bx = term_bound bound x and by = term_bound bound y in
    (* work models the kernel's per-conjunct lanes: a forward product
       BFS from a bound source is degree-bounded (and memoized across
       rows); a bound target runs one reverse-CSR sweep instead of an
       all-sources enumeration; fanouts are unchanged so heuristic
       plans — and the orderings every golden build depends on — do
       not move *)
    (match bx, by with
     | true, true -> (0.5, st.avg_out +. 1.)
     | true, false -> (st.n_nodes /. 2., st.avg_out +. 1.)
     | false, true -> (st.n_nodes /. 2., st.n_edges +. st.n_nodes)
     | false, false ->
       (st.n_nodes *. st.n_nodes /. 4., st.n_nodes *. (st.avg_out +. 1.)))
  | CC_cmp (Ast.Eq, a, b) when term_bound bound a && term_bound bound b ->
    (0.3, 1.)
  | CC_cmp (Ast.Eq, _, _) -> (1., 1.)  (* binder *)
  | CC_cmp (_, _, _) -> (0.4, 1.)
  | CC_in (t, _) when term_bound bound t -> (0.5, 1.)
  | CC_in (_, vs) -> (float_of_int (List.length vs), 1.)
  | CC_not c -> let _, w = estimate st bound c in (0.5, w)

(* --- Active-domain pre-pass --- *)

(** Fixpoint of variables bindable by positive conditions. *)
let bindable_vars ?limited conds bound0 =
  let rec fix bound =
    let bound' =
      List.fold_left
        (fun acc c ->
          if executable ?limited acc c then
            List.fold_left (fun s v -> VSet.add v s) acc (ccond_binds c)
          else acc)
        bound conds
    in
    if VSet.equal bound' bound then bound else fix bound'
  in
  fix bound0

(** Domain enumerators for variables needed but never positively bound.
    "Needed" means: used in construction clauses, or occurring in a
    positive (non-negated) condition.  A variable that occurs {e only}
    under a negation is existential inside the [not] and gets no domain
    enumerator. *)
let domain_steps ?limited conds ~bound0 ~needed_obj ~needed_label =
  let bindable = bindable_vars ?limited conds bound0 in
  let lim = match limited with Some l -> l | None -> [] in
  let cond_vars =
    Ast.dedup
      (List.concat_map
         (fun c ->
           match c with
           | CC_not _ -> []
           (* a variable whose only role is probing a limited source
              gets no active-domain enumerator: the source requires a
              genuinely bound input, not a fabricated one *)
           | CC_coll (name, _) when List.mem name lim -> []
           | c -> ccond_vars [] c)
         conds)
  in
  let label_positions =
    List.concat_map
      (fun c ->
        let rec lv acc = function
          | CC_edge (_, Ast.L_var v, _) -> v :: acc
          | CC_not c -> lv acc c
          | _ -> acc
        in
        lv [] c)
      conds
  in
  let needed = Ast.dedup (needed_obj @ needed_label @ cond_vars) in
  List.filter_map
    (fun v ->
      if VSet.mem v bindable then None
      else if List.mem v needed_label || List.mem v label_positions then
        Some (Domain_label v)
      else Some (Domain_obj v))
    needed

(* --- Collection/label footprint --- *)

type footprint = {
  fp_collections : string list;
  fp_labels : string list;
  fp_opaque : bool;
}

let empty_footprint = { fp_collections = []; fp_labels = []; fp_opaque = false }

let rec path_footprint acc = function
  | Path.Epsilon -> acc
  | Path.Edge (Path.Label l) -> { acc with fp_labels = l :: acc.fp_labels }
  | Path.Edge (Path.Any | Path.Named_pred _) -> { acc with fp_opaque = true }
  | Path.Seq (a, b) | Path.Alt (a, b) -> path_footprint (path_footprint acc a) b
  | Path.Star a | Path.Plus a | Path.Opt a -> path_footprint acc a

let rec ccond_footprint acc = function
  | CC_coll (name, _) -> { acc with fp_collections = name :: acc.fp_collections }
  | CC_extern _ -> { acc with fp_opaque = true }
  | CC_edge (_, Ast.L_const l, _) -> { acc with fp_labels = l :: acc.fp_labels }
  | CC_edge (_, Ast.L_var _, _) -> { acc with fp_opaque = true }
  | CC_path (_, r, _, _) -> path_footprint acc r
  | CC_cmp _ | CC_in _ -> acc
  | CC_not c -> ccond_footprint acc c

let step_footprint acc = function
  | Exec c -> ccond_footprint acc c
  | Domain_obj _ | Domain_label _ -> { acc with fp_opaque = true }

let footprint steps =
  let fp = List.fold_left step_footprint empty_footprint steps in
  {
    fp with
    fp_collections = Ast.dedup fp.fp_collections;
    fp_labels = Ast.dedup fp.fp_labels;
  }

let conds_footprint registry conds =
  footprint (List.map (fun c -> Exec (compile registry c)) conds)

let pp_footprint ppf fp =
  Fmt.pf ppf "collections=[%a] labels=[%a]%s"
    Fmt.(list ~sep:comma string)
    fp.fp_collections
    Fmt.(list ~sep:comma string)
    fp.fp_labels
    (if fp.fp_opaque then " opaque" else "")

let step_binds = function
  | Exec c -> ccond_binds c
  | Domain_obj v | Domain_label v -> [ v ]

let add_binds bound step =
  List.fold_left (fun s v -> VSet.add v s) bound (step_binds step)

(* --- Ordering strategies --- *)

let order_naive ?limited ~universe _st steps0 bound0 =
  (* textual order, postponing filters until their variables are bound *)
  let rec go bound pending acc =
    match pending with
    | [] -> List.rev acc
    | _ ->
      (match
         List.find_opt
           (fun s ->
             match s with
             | Exec c -> executable ?limited ~universe bound c
             | Domain_obj _ | Domain_label _ -> true)
           pending
       with
       | Some s ->
         let pending = List.filter (fun s' -> s' != s) pending in
         go (add_binds bound s) pending (s :: acc)
       | None ->
         (* cannot happen after the domain pre-pass, but stay total *)
         let s = List.hd pending in
         go (add_binds bound s) (List.tl pending) (s :: acc))
  in
  go bound0 steps0 []

let order_heuristic ?limited ~universe st steps0 bound0 =
  let rec go bound pending acc =
    match pending with
    | [] -> List.rev acc
    | _ ->
      let best = ref None in
      List.iter
        (fun s ->
          let cost =
            match s with
            | Exec c when executable ?limited ~universe bound c ->
              fst (estimate st bound c)
            | Exec _ -> Float.infinity
            | Domain_obj _ -> st.n_objects *. 4.  (* last resort *)
            | Domain_label _ -> st.n_labels *. 4.
          in
          match !best with
          | Some (_, bc) when bc <= cost -> ()
          | _ -> if cost < Float.infinity then best := Some (s, cost))
        pending;
      (match !best with
       | Some (s, _) ->
         let pending = List.filter (fun s' -> s' != s) pending in
         go (add_binds bound s) pending (s :: acc)
       | None ->
         let s = List.hd pending in
         go (add_binds bound s) (List.tl pending) (s :: acc))
  in
  go bound0 steps0 []

let order_cost_based ?limited ~universe st steps0 bound0 =
  let steps = Array.of_list steps0 in
  let n = Array.length steps in
  if n > 14 then order_heuristic ?limited ~universe st steps0 bound0
  else begin
    let full = (1 lsl n) - 1 in
    (* best.(mask) = (cost, cardinality, order as reversed index list) *)
    let best = Array.make (full + 1) None in
    best.(0) <- Some (0., 1., []);
    let bound_of_mask = Array.make (full + 1) bound0 in
    for mask = 1 to full do
      (* bound set = bound0 + binds of all steps in mask *)
      let b = ref bound0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then b := add_binds !b steps.(i)
      done;
      bound_of_mask.(mask) <- !b
    done;
    for mask = 0 to full - 1 do
      match best.(mask) with
      | None -> ()
      | Some (cost, card, order) ->
        let bound = bound_of_mask.(mask) in
        for i = 0 to n - 1 do
          if mask land (1 lsl i) = 0 then begin
            let fanout, work =
              match steps.(i) with
              | Exec c ->
                if executable ?limited ~universe bound c then
                  estimate st bound c
                else (Float.infinity, Float.infinity)
              | Domain_obj _ -> (st.n_objects, st.n_objects)
              | Domain_label _ -> (st.n_labels, st.n_labels)
            in
            if fanout < Float.infinity then begin
              let card' = Float.max 0.01 (card *. fanout) in
              let cost' = cost +. (card *. work) +. card' in
              let mask' = mask lor (1 lsl i) in
              match best.(mask') with
              | Some (c0, _, _) when c0 <= cost' -> ()
              | _ -> best.(mask') <- Some (cost', card', i :: order)
            end
          end
        done
    done;
    match best.(full) with
    | Some (_, _, order_rev) ->
      List.rev_map (fun i -> steps.(i)) order_rev
    | None -> order_heuristic ?limited ~universe st steps0 bound0
  end

let pp_step ppf = function
  | Exec c ->
    let rec to_cond = function
      | CC_coll (n, t) -> Ast.C_atom (n, [ t ])
      | CC_extern (n, ts) -> Ast.C_atom (n, ts)
      | CC_edge (x, l, y) -> Ast.C_edge (x, l, y)
      | CC_path (x, r, _, y) -> Ast.C_path (x, r, y)
      | CC_cmp (o, a, b) -> Ast.C_cmp (o, a, b)
      | CC_in (t, vs) -> Ast.C_in (t, vs)
      | CC_not c -> Ast.C_not (to_cond c)
    in
    Pretty.pp_condition ppf (to_cond c)
  | Domain_obj v -> Fmt.pf ppf "domain(%s)" v
  | Domain_label v -> Fmt.pf ppf "label-domain(%s)" v

(** An unexecutable plan: some limited-access source can never be
    probed with bound arguments. *)
exception No_plan of string

let plan ?(strategy = Heuristic) ?(limited = []) ~registry g ~bound
    ~needed_obj ~needed_label conds =
  let ccs = List.map (compile registry) conds in
  let bound0 = List.fold_left (fun s v -> VSet.add v s) VSet.empty bound in
  let domains = domain_steps ~limited ccs ~bound0 ~needed_obj ~needed_label in
  let steps0 = List.map (fun c -> Exec c) ccs @ domains in
  (* the universe of variables this plan will ever bind: negated
     variables outside it stay existential within their [not] *)
  let universe =
    List.fold_left
      (fun u s -> List.fold_left (fun u v -> VSet.add v u) u (step_binds s))
      (bindable_vars ccs bound0)
      domains
  in
  let st = stats_of_graph g in
  let ordered =
    match strategy with
    | Naive -> order_naive ~limited ~universe st steps0 bound0
    | Heuristic -> order_heuristic ~limited ~universe st steps0 bound0
    | Cost_based -> order_cost_based ~limited ~universe st steps0 bound0
  in
  (* verify the ordering actually satisfies the access patterns: with a
     limited source whose probe variable nothing binds, the greedy
     fallbacks above may emit an unexecutable step *)
  let rec verify bound = function
    | [] -> ()
    | s :: rest ->
      (match s with
       | Exec c ->
         if not (executable ~limited ~universe bound c) then
           raise
             (No_plan
                (Fmt.str
                   "no executable plan: %a requires bound access" pp_step s))
       | Domain_obj _ | Domain_label _ -> ());
      verify
        (List.fold_left (fun b v -> VSet.add v b) bound (step_binds s))
        rest
  in
  verify bound0 ordered;
  ordered

(* --- differential-evaluation classification (Delta-StruQL) ---

   A top-level block is differentially evaluable when its plan opens
   with an unbound collection scan (the driver) and every later step is
   anchored: it only reads forward from already-bound objects, so the
   block's rows for one driver value are a function of that driver's
   forward neighbourhood.  Anything else — negation, active-domain
   enumerators, opaque externs, aggregate link targets, a second
   unbound scan (cross product) — makes per-driver re-derivation
   unsound or unbounded and falls back to full re-evaluation. *)

type delta_class =
  | D_static  (** no generators (or, nested: fully anchored) *)
  | D_driven of string * string  (** driving collection, driver var *)
  | D_fallback of string  (** reason the block cannot delta-evaluate *)

let block_has_agg (b : Ast.block) =
  List.exists
    (fun (_, _, y) -> match y with Ast.T_agg _ -> true | _ -> false)
    b.Ast.link

let anchored_step ~pure (bound, der) (s : step) :
    (VSet.t * VSet.t, string) result =
  (* [der] are the driver-derived variables: values reached only by
     forward reads from the driver, so backward closure from a touched
     object finds every driver whose reads it can invalidate.  A data
     read anchored on a bound-but-not-derived object (a constant, or a
     binding minted by a comparison with a literal) is a global filter
     the closure cannot see, and must fall back. *)
  let binds = step_binds s in
  let extend ~derived =
    let bound' = List.fold_left (fun b v -> VSet.add v b) bound binds in
    let der' =
      if derived then List.fold_left (fun b v -> VSet.add v b) der binds
      else der
    in
    Ok (bound', der')
  in
  let term_der = function Ast.T_var v -> VSet.mem v der | _ -> false in
  match s with
  | Domain_obj _ | Domain_label _ -> Error "active-domain enumerator"
  | Exec c ->
    (match c with
     | CC_coll (name, t) ->
       if term_der t then extend ~derived:true
       else if term_bound bound t then
         Error ("collection " ^ name ^ " probed on a non-derived object")
       else Error ("unbound scan of collection " ^ name)
     | CC_edge (x, _, _) ->
       if term_der x then extend ~derived:true
       else if term_bound bound x then
         Error "edge condition anchored on a non-derived source"
       else Error "edge condition with unbound source"
     | CC_path (x, _, _, _) ->
       if term_der x then extend ~derived:true
       else if term_bound bound x then
         Error "path condition anchored on a non-derived source"
       else Error "path condition with unbound source"
     | CC_cmp (_, a, b) ->
       (* pure value comparison: no graph read, so a constant anchor is
          fine — but a binding it mints is only derived if a compared
          side is *)
       if term_bound bound a || term_bound bound b then
         extend ~derived:(term_der a || term_der b)
       else Error "comparison over unbound variables"
     | CC_in (_, _) -> extend ~derived:false
     | CC_extern (name, ts) ->
       if not (pure name) then Error ("opaque external predicate " ^ name)
       else if List.for_all (term_bound bound) ts then extend ~derived:false
       else Error ("external predicate " ^ name ^ " binds its argument")
     | CC_not _ -> Error "negation")

let anchored_steps ~pure ~bound ~der steps =
  List.fold_left
    (fun acc s ->
      match acc with Error _ -> acc | Ok bd -> anchored_step ~pure bd s)
    (Ok (bound, der))
    steps

let delta_class ~pure ?(bound = VSet.empty) ?der ~top (b : Ast.block)
    (steps : step list) : delta_class =
  let der = match der with Some d -> d | None -> bound in
  if block_has_agg b then D_fallback "aggregate link target"
  else if not top then
    match anchored_steps ~pure ~bound ~der steps with
    | Ok _ -> D_static
    | Error e -> D_fallback e
  else
    match steps with
    | [] -> D_static
    | Exec (CC_coll (cname, Ast.T_var v)) :: rest
      when not (VSet.mem v bound) -> (
        let seed = VSet.add v bound in
        match anchored_steps ~pure ~bound:seed ~der:(VSet.add v der) rest with
        | Ok _ -> D_driven (cname, v)
        | Error e -> D_fallback e)
    | _ -> D_fallback "no driving collection scan"
