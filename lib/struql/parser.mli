(** Parser for StruQL's concrete syntax.

    The syntax follows the paper (keywords are case-insensitive):

    {v
    INPUT BIBTEX
    { CREATE RootPage(), AbstractsPage()
      LINK RootPage() -> "AbstractsPage" -> AbstractsPage() }
    { WHERE Publications(x), x -> l -> v
      CREATE PaperPresentation(x), AbstractPage(x)
      LINK AbstractPage(x) -> l -> v
      { WHERE l = "year"
        CREATE YearPage(v)
        LINK YearPage(v) -> "Paper" -> PaperPresentation(x) }
    }
    OUTPUT HomePage
    v}

    Braces delimit blocks; a nested block's WHERE conjoins with its
    ancestors'.  Top-level clauses outside any brace form one implicit
    block.  Conditions are separated by [,] or [;].  Single-edge
    conditions write [x -> l -> y] (an identifier hop is an arc
    variable, a string hop a literal label); anything richer — [*],
    concatenation [.], alternation [|], postfix [* + ?], registered
    label predicates, [true] — is a regular path expression.
    [x in {"a", "b"}] abbreviates a disjunction of equalities;
    [not(...)] negates a single condition.  In construction clauses,
    [F(args)] is a Skolem term and [count/sum/min/max/avg(t)] an
    aggregate (LINK targets only). *)

exception Parse_error of string * int * int
(** message, line, column (1-based; column 0 when unknown, e.g. from a
    lexer error) *)

type span = { sl : int; sc : int; el : int; ec : int }
(** A source region: start line/column to one past the last token's
    final character (all 1-based). *)

type block_spans = {
  s_where : span list;
  s_create : span list;
  s_link : span list;
  s_collect : span list;
  s_nested : block_spans list;
}
(** Spans for one block, aligned element-for-element with the
    corresponding {!Ast.block} lists (every condition of a single
    [x -> a -> y -> b -> z] chain shares the chain's span). *)

type query_spans = block_spans list
(** Aligned with [query.blocks]. *)

val parse : ?registry:Builtins.registry -> string -> Ast.query
(** Parse a complete query.  The [registry] resolves label-predicate
    names inside regular path expressions (defaults to
    {!Builtins.default}). *)

val parse_located :
  ?registry:Builtins.registry -> string -> Ast.query * query_spans
(** Like {!parse}, also returning source spans for every condition and
    construction item, for diagnostics. *)

val parse_conditions :
  ?registry:Builtins.registry -> string -> Ast.condition list
(** Parse a bare condition list (the contents of one WHERE clause). *)
