(** Built-in and external predicates.

    StruQL conditions may apply predicates to objects
    ([isPostScript(q)]) and regular path expressions may apply
    predicates to edge labels ([isName*]).  The distinction between a
    collection name and an external predicate is semantic, not
    syntactic: a [Name(x)] atom is an external predicate when [Name] is
    registered here, and a collection-membership test otherwise. *)

open Sgraph

type extern = Graph.t -> Graph.target list -> bool

type registry = {
  externs : (string * extern) list;
  label_preds : (string * (string -> bool)) list;
}

let value_pred p : extern =
 fun _g args -> match args with [ Graph.V v ] -> p v | _ -> false

let default_externs =
  [
    ("isPostScript", value_pred Value.is_postscript);
    ("isImageFile", value_pred Value.is_image);
    ("isTextFile", value_pred Value.is_text);
    ("isHtmlFile", value_pred Value.is_html_file);
    ("isFile", value_pred Value.is_file);
    ("isURL", value_pred Value.is_url);
    ("isNull", value_pred Value.is_null);
    ("isInt", value_pred (function Value.Int _ -> true | _ -> false));
    ("isString", value_pred (function Value.String _ -> true | _ -> false));
    ("isNode", fun _g args ->
       match args with [ Graph.N _ ] -> true | _ -> false);
    ("isAtomic", fun _g args ->
       match args with [ Graph.V _ ] -> true | _ -> false);
  ]

let is_name_label l =
  String.length l > 0
  && (let c = l.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')

let default_label_preds =
  [
    ("isName", is_name_label);
    ("isCapitalized", fun l -> String.length l > 0 && l.[0] >= 'A' && l.[0] <= 'Z');
  ]

let default = { externs = default_externs; label_preds = default_label_preds }

let with_extern name f reg = { reg with externs = (name, f) :: reg.externs }

let with_label_pred name f reg =
  { reg with label_preds = (name, f) :: reg.label_preds }

let find_extern reg name = List.assoc_opt name reg.externs
let find_label_pred reg name = List.assoc_opt name reg.label_preds
let is_extern reg name = List.mem_assoc name reg.externs

(* The bundled externs are pure functions of their bound arguments —
   safe to re-apply during differential evaluation.  User-registered
   closures are opaque: they may capture state the delta engine cannot
   see, so they force full re-evaluation. *)
let pure_extern name = List.mem_assoc name default_externs
