(** Two-stage evaluation of StruQL (§3).

    The {e query stage} evaluates a block's WHERE clause to the
    relation of all satisfying assignments of node and arc variables
    (one column per variable), under active-domain semantics.  The
    {e construction stage} interprets CREATE / LINK / COLLECT over the
    rows: nodes are created with Skolem functions (same inputs — same
    oid), edges added (only from newly created nodes; existing nodes
    are immutable), collections populated, and aggregate link targets
    grouped by source node.  Nested blocks inherit their ancestors'
    bindings, so their WHERE clauses are conjoined with the
    ancestors'. *)

open Sgraph

exception Eval_error of string

(** A variable binding: an object of the graph, or an arc label. *)
type binding = B_target of Graph.target | B_label of string

module Env : Map.S with type key = string

type env = binding Env.t

val pp_binding : Format.formatter -> binding -> unit
val pp_env : Format.formatter -> env -> unit

(** {1 Stage 1: the query stage} *)

val exec_cond : Graph.t -> Builtins.registry -> env -> Plan.ccond -> env list
(** All extensions of the environment satisfying one condition. *)

val exec_step : Graph.t -> Builtins.registry -> env -> Plan.step -> env list

(** Evaluation statistics, for the optimizer experiments. *)
type stats = {
  mutable rows : int;             (** binding rows produced *)
  mutable intermediate : int;     (** sum of intermediate relation sizes *)
  mutable max_intermediate : int;
  mutable steps : int;
}

val new_stats : unit -> stats

val exec_steps :
  ?stats:stats ->
  Graph.t -> Builtins.registry -> env list -> Plan.step list -> env list
(** Run a plan over a starting relation. *)

(** {1 Stage 2: the construction stage} *)

(** Construction events, observable through an emitter: exactly the
    graph mutations construction performs, in mutation order.  The
    differential engine ({!Dexec}) records them per driver to maintain
    the site graph under data deltas. *)
type emitter = {
  em_apply : bool;
      (** also perform the graph writes; when [false] the sink only
          observes and the caller applies the events itself *)
  em_node : Oid.t -> unit;
  em_edge : Oid.t -> string -> Graph.target -> unit;
  em_coll : string -> Oid.t -> unit;
}

(** The construction sinks: the output graph and the Skolem scope that
    names the nodes it creates, plus an optional observing emitter. *)
type cons = {
  out : Graph.t;
  scope : Skolem.t;
  emit : emitter option;
}

type agg_groups
(** Aggregate-link accumulator of one block: groups keyed by (source
    node, label, aggregate expression), holding distinct inner values. *)

val new_groups : unit -> agg_groups

val construct_row : cons -> agg_groups -> Ast.block -> env -> unit
(** Interpret a block's CREATE / LINK / COLLECT clauses over one
    binding row.  Aggregate link targets only accumulate into the
    groups; non-aggregate construction mutates the sink immediately.
    Feeding the block's rows in relation order through this function
    and then calling {!construct_flush} performs exactly the mutation
    sequence of the eager evaluator — the streaming {!Exec} engine
    relies on this for bit-identical Skolem oids. *)

val construct_flush : cons -> agg_groups -> unit
(** Fold and emit the accumulated aggregate groups of one block. *)

val construction_needs : Ast.block -> Ast.var list * Ast.var list
(** Construction variables of a block, split into (object positions,
    arc positions) — the planner's active-domain pre-pass input. *)

val aggregate : Ast.agg_fn -> Graph.target list -> Value.t
(** Fold an aggregate over the distinct values of its group.  [Count]
    counts all objects; the numeric aggregates range over the atomic
    values (non-numeric values are ignored by [sum]/[avg]); [min]/[max]
    fall back to display-string order for incomparable values. *)

val target_key : Graph.target -> string
(** A hashable identity key for a target (distinctness in groups). *)

(** {1 Whole-query evaluation} *)

type options = {
  strategy : Plan.strategy;
  registry : Builtins.registry;
  validate : bool;  (** run {!Check.validate_exn} first *)
}

val default_options : options
(** Heuristic planning, default registry, validation on. *)

val run :
  ?options:options ->
  ?scope:Skolem.t ->
  ?into:Graph.t ->
  Graph.t -> Ast.query -> Graph.t
(** Evaluate a query over a data graph.  [scope] shares Skolem terms
    across composed queries; [into] adds to an existing output graph
    (§5.2: "we allowed queries to add nodes and arcs to a graph").
    Without them, a fresh scope and a fresh graph named after the
    query's OUTPUT are used. *)

val run_query : ?options:options -> sink:cons -> Graph.t -> Ast.query -> unit
(** Evaluate a whole query into a caller-built sink (eager semantics,
    identical mutation sequence to {!run}); the differential engine's
    full-re-evaluation fallback path. *)

val run_with_stats :
  ?options:options ->
  ?scope:Skolem.t ->
  ?into:Graph.t ->
  Graph.t -> Ast.query -> Graph.t * stats

val bindings :
  ?options:options ->
  ?env:env ->
  ?bound:Ast.var list ->
  ?needed_obj:Ast.var list ->
  ?needed_label:Ast.var list ->
  Graph.t -> Ast.condition list -> env list
(** Stage 1 alone: the binding relation of a condition list.  Used by
    tests and by the click-time evaluator. *)

val run_string :
  ?options:options ->
  ?scope:Skolem.t ->
  ?into:Graph.t ->
  Graph.t -> string -> Graph.t
(** Parse and evaluate in one call. *)
