(** Static checks on StruQL queries.

    Enforces the paper's two semantic conditions — every node mentioned
    in [link]/[collect] is either created or comes from the data graph,
    and edges may only be added from newly created nodes — plus Skolem
    arity consistency and aggregate placement, and classifies queries
    as range-restricted (safe) or merely active-domain-definable. *)

type problem =
  | Skolem_not_created of string
      (** a Skolem function used in link/collect has no create clause *)
  | Link_source_not_new of Ast.link_clause
      (** link source is an existing object — old nodes are immutable *)
  | Skolem_arity of string * int * int
      (** function used with two different arities *)
  | Skolem_in_where of string
      (** Skolem terms may not appear in WHERE clauses *)
  | Unsafe_variable of string
      (** used in construction or negation but not positively bound:
          active-domain semantics apply *)
  | Agg_misplaced of string
      (** an aggregate term somewhere other than a LINK target *)

val pp_problem : Format.formatter -> problem -> unit

(** Hard violations vs the safety classification. *)
type report = { errors : problem list; warnings : problem list }

val check : Ast.query -> report

(** As {!report}, each problem paired with the source span of the
    offending clause item when known. *)
type located_report = {
  l_errors : (problem * Parser.span option) list;
  l_warnings : (problem * Parser.span option) list;
}

val check_located : ?spans:Parser.query_spans -> Ast.query -> located_report
(** Like {!check} but attaches spans (from {!Parser.parse_located}) to
    each problem.  Without [?spans] every span is [None].  [check q] is
    exactly [check_located q] with the spans stripped. *)

val is_safe : Ast.query -> bool
(** No warnings: the query is range-restricted (domain-independent). *)

val is_valid : Ast.query -> bool
(** No errors: the query has a well-defined evaluation. *)

exception Invalid of problem list

val validate_exn : Ast.query -> unit
(** Raise {!Invalid} when {!check} reports errors. *)
