(** Differential (semi-naive) evaluation of StruQL site queries — the
    Delta-StruQL engine.

    Where {!Exec} recomputes a site graph from scratch, this engine
    {e maintains} one under {!Sgraph.Delta} changes to the data graph,
    at O(change) cost and byte-identical to a cold full build.

    Each top-level block is classified ({!Plan.delta_class}): {e driven}
    blocks re-derive only the drivers — members of the driving
    collection — whose forward neighbourhood the delta touches (found by
    the backward closure over the reverse-adjacency index);
    {e fallback} blocks (aggregates, negation, enumerators, opaque
    externs, constant-anchored reads) replay in full each cycle, reason
    recorded.  Construction events are support-counted per
    (block, driver) and carry a canonical (block, driver-rank, sequence)
    position; touched out-buckets and collections re-sort by minimum
    position over supporters, which is exactly cold construction order.

    Typical use (the [strudel watch] loop):
    {[
      let dx = Dexec.create ~queries data in
      Dexec.prime dx;                        (* cold build, recorded *)
      ...mutate data / integrate sources...
      let ch = Dexec.apply dx delta in       (* O(change) maintenance *)
      ...re-render pages named in ch.sc_touched...
    ]} *)

open Sgraph

type t

type counters = {
  mutable c_cycles : int;
  mutable c_drivers : int;  (** drivers (re-)derived *)
  mutable c_rows : int;  (** binding rows (re-)derived *)
  mutable c_events_added : int;
  mutable c_events_removed : int;
  mutable c_fallback_replays : int;  (** ⊥-driver full block replays *)
  mutable c_full_rederives : int;  (** whole-block re-derivations *)
}

val create : ?options:Eval.options -> queries:Ast.query list -> Graph.t -> t
(** An engine over the given data graph; validates the queries when
    [options.validate] (the default).  Call {!prime} before {!apply}. *)

val prime : t -> unit
(** Cold-prime: plan, classify, and construct the site graph with the
    eager engine's exact mutation sequence, recording every
    construction event.  The resulting {!site_graph} is byte-identical
    to {!Eval.run} / {!Exec.run} of the same queries. *)

val site_graph : t -> Graph.t
(** The maintained site graph.  Owned by the engine: callers must not
    mutate it. *)

val scope : t -> Skolem.t
(** The Skolem scope naming the site graph's nodes. *)

val data_graph : t -> Graph.t

val site_queries : t -> Ast.query list
(** The queries the engine maintains, in evaluation order. *)

(** What one delta cycle changed in the site graph. *)
type site_change = {
  sc_touched : string list;
      (** site-node names whose rendered bytes may have changed *)
  sc_removed : string list;  (** site nodes that no longer exist *)
  sc_drivers : int;  (** drivers re-derived this cycle *)
  sc_rows : int;  (** binding rows re-derived this cycle *)
  sc_fallbacks : (string * string) list;
      (** (block path, reason) of full block replays this cycle *)
}

val apply : ?data:Graph.t -> t -> Delta.t -> site_change
(** Apply one data delta and bring the site graph up to date.  [data]
    swaps in a replacement data graph sharing surviving oids (the
    mediated path: {!Sgraph.Delta.rebase} + {!Sgraph.Delta.diff});
    without it the engine's current graph is assumed already mutated
    (the direct path: {!Sgraph.Delta.Rec}).  When {!Exec.delta_enabled}
    is cleared, the cycle re-derives every block through the same
    machinery — still byte-identical, no longer O(change). *)

val counters : t -> counters

val classes : t -> (string * string) list
(** Per top-level block: (path, classification) — "static",
    "driven by Coll(v)", or "fallback: reason". *)

val fallbacks : t -> (string * string) list
(** The blocks that force full re-evaluation, with reasons — the
    [explain-analyze] / SA070 surface. *)

val fill_profile : t -> Exec.profile -> unit
(** Thread the engine's cumulative counters into a streaming profile
    (rows in = drivers re-derived, rows out = rows re-derived). *)

val pp_counters : Format.formatter -> counters -> unit
