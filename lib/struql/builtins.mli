(** Built-in and external predicates.

    StruQL conditions may apply predicates to objects
    ([isPostScript(q)]) and regular path expressions may apply
    predicates to edge labels ([isName*]).  The distinction between a
    collection name and an external predicate is {e semantic, not
    syntactic}: a [Name(x)] atom is an external predicate exactly when
    [Name] is registered here, a collection-membership test
    otherwise. *)

open Sgraph

type extern = Graph.t -> Graph.target list -> bool

type registry = {
  externs : (string * extern) list;
  label_preds : (string * (string -> bool)) list;
}

val default : registry
(** [isPostScript], [isImageFile], [isTextFile], [isHtmlFile],
    [isFile], [isURL], [isNull], [isInt], [isString], [isNode],
    [isAtomic]; label predicates [isName], [isCapitalized]. *)

val value_pred : (Value.t -> bool) -> extern
(** Lift a predicate on atomic values (false on internal objects). *)

val with_extern : string -> extern -> registry -> registry
val with_label_pred : string -> (string -> bool) -> registry -> registry
val find_extern : registry -> string -> extern option
val find_label_pred : registry -> string -> (string -> bool) option
val is_extern : registry -> string -> bool

val pure_extern : string -> bool
(** Whether the extern is one of the bundled pure predicates (a
    function of its bound arguments only).  User-registered closures
    are opaque and force the differential evaluator to fall back. *)
