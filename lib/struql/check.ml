(** Static checks on StruQL queries.

    Enforces the paper's two semantic conditions — every node mentioned
    in [link] or [collect] is either created or comes from the data
    graph, and edges may only be added from newly created nodes — plus
    Skolem arity consistency, and classifies queries as range-restricted
    (safe) or merely active-domain-definable. *)

type problem =
  | Skolem_not_created of string
      (** a Skolem function used in link/collect has no create clause *)
  | Link_source_not_new of Ast.link_clause
      (** link source is an existing object — old nodes are immutable *)
  | Skolem_arity of string * int * int  (** function, arity1, arity2 *)
  | Skolem_in_where of string
  | Unsafe_variable of string
      (** variable used in construction or negation but not positively
          bound: the query is only active-domain definable *)
  | Agg_misplaced of string
      (** an aggregate term somewhere other than a LINK target *)

let pp_problem ppf = function
  | Skolem_not_created f ->
    Fmt.pf ppf "Skolem function %s is used in LINK/COLLECT but never CREATEd"
      f
  | Link_source_not_new (x, l, y) ->
    Fmt.pf ppf
      "LINK %a adds an edge from an existing object; existing nodes are \
       immutable"
      Pretty.pp_link (x, l, y)
  | Skolem_arity (f, a, b) ->
    Fmt.pf ppf "Skolem function %s is used with %d and with %d arguments" f a
      b
  | Skolem_in_where f ->
    Fmt.pf ppf "Skolem term %s(...) may not appear in a WHERE clause" f
  | Unsafe_variable v ->
    Fmt.pf ppf
      "variable %s is not bound by a positive condition; its bindings range \
       over the active domain"
      v
  | Agg_misplaced fn ->
    Fmt.pf ppf
      "aggregate %s(...) may only appear as a LINK target" fn

let rec term_skolem_arities acc = function
  | Ast.T_var _ | Ast.T_const _ -> acc
  | Ast.T_skolem (f, args) ->
    List.fold_left term_skolem_arities ((f, List.length args) :: acc) args
  | Ast.T_agg (_, t) -> term_skolem_arities acc t

(* Errors (hard violations) and warnings (safety classification). *)
type report = { errors : problem list; warnings : problem list }

type located_report = {
  l_errors : (problem * Parser.span option) list;
  l_warnings : (problem * Parser.span option) list;
}

(* Pair each AST item with its span when a matching span list is
   available (spans come from [Parser.parse_located] and mirror the
   block lists element-for-element). *)
let zip_spans items sps =
  match sps with
  | Some sps when List.length sps = List.length items ->
    List.map2 (fun i s -> (i, Some s)) items sps
  | _ -> List.map (fun i -> (i, None)) items

let check_located ?spans (q : Ast.query) : located_report =
  let errors = ref [] in
  let warnings = ref [] in
  let err sp p = errors := (p, sp) :: !errors in
  let created = Ast.query_created_skolems q in
  (* Skolem functions in where clauses *)
  let scan_where_term sp = function
    | Ast.T_var _ | Ast.T_const _ -> ()
    | Ast.T_skolem (f, _) -> err sp (Skolem_in_where f)
    | Ast.T_agg (fn, _) -> err sp (Agg_misplaced (Ast.agg_name fn))
  in
  (* aggregates may only be the immediate target of a link clause *)
  let rec scan_no_agg sp = function
    | Ast.T_var _ | Ast.T_const _ -> ()
    | Ast.T_skolem (_, args) -> List.iter (scan_no_agg sp) args
    | Ast.T_agg (fn, _) -> err sp (Agg_misplaced (Ast.agg_name fn))
  in
  let rec scan_cond sp = function
    | Ast.C_atom (_, ts) -> List.iter (scan_where_term sp) ts
    | Ast.C_edge (x, _, y) | Ast.C_path (x, _, y) ->
      scan_where_term sp x;
      scan_where_term sp y
    | Ast.C_cmp (_, a, b) ->
      scan_where_term sp a;
      scan_where_term sp b
    | Ast.C_in (t, _) -> scan_where_term sp t
    | Ast.C_not c -> scan_cond sp c
  in
  (* arity consistency *)
  let arities = Hashtbl.create 16 in
  let note_arity sp (f, n) =
    match Hashtbl.find_opt arities f with
    | Some n' when n' <> n -> err sp (Skolem_arity (f, n', n))
    | Some _ -> ()
    | None -> Hashtbl.add arities f n
  in
  let rec scan_block bound (b : Ast.block)
      (sb : Parser.block_spans option) =
    let where = zip_spans b.where (Option.map (fun s -> s.Parser.s_where) sb) in
    let create =
      zip_spans b.create (Option.map (fun s -> s.Parser.s_create) sb)
    in
    let link = zip_spans b.link (Option.map (fun s -> s.Parser.s_link) sb) in
    let collect =
      zip_spans b.collect (Option.map (fun s -> s.Parser.s_collect) sb)
    in
    List.iter (fun (c, sp) -> scan_cond sp c) where;
    (* collect arities from all construction terms *)
    List.iter
      (fun ((f, args), sp) ->
        note_arity sp (f, List.length args);
        List.iter
          (fun t -> List.iter (note_arity sp) (term_skolem_arities [] t))
          args)
      create;
    List.iter
      (fun ((x, _, y), sp) ->
        List.iter (note_arity sp) (term_skolem_arities [] x);
        List.iter (note_arity sp) (term_skolem_arities [] y))
      link;
    List.iter
      (fun ((_, t), sp) ->
        List.iter (note_arity sp) (term_skolem_arities [] t))
      collect;
    (* aggregate placement: only the immediate target of a link *)
    List.iter
      (fun ((_, args), sp) -> List.iter (scan_no_agg sp) args)
      create;
    List.iter (fun ((_, t), sp) -> scan_no_agg sp t) collect;
    List.iter
      (fun ((x, _, y), sp) ->
        scan_no_agg sp x;
        match y with
        | Ast.T_agg (_, inner) -> scan_no_agg sp inner
        | y -> scan_no_agg sp y)
      link;
    (* link sources must be Skolem terms over created functions;
       referenced Skolem functions must be created somewhere *)
    List.iter
      (fun ((x, l, y), sp) ->
        (match x with
         | Ast.T_skolem (f, _) ->
           if not (List.mem f created) then err sp (Skolem_not_created f)
         | Ast.T_var _ | Ast.T_const _ | Ast.T_agg _ ->
           err sp (Link_source_not_new (x, l, y)));
        List.iter
          (fun (f, _) ->
            if not (List.mem f created) then err sp (Skolem_not_created f))
          (match y with
           | Ast.T_skolem (f, args) -> [ (f, List.length args) ]
           | _ -> []))
      link;
    List.iter
      (fun ((_, t), sp) ->
        match t with
        | Ast.T_skolem (f, _) when not (List.mem f created) ->
          err sp (Skolem_not_created f)
        | _ -> ())
      collect;
    (* safety: construction variables and negated variables must be
       positively bound here or by an ancestor *)
    let bound_here =
      Ast.dedup (List.fold_left Ast.positive_vars bound b.where)
    in
    let used = ref [] in
    let add_vars sp vs =
      List.iter (fun v -> used := (v, sp) :: !used) vs
    in
    List.iter
      (fun ((_, args), sp) ->
        add_vars sp (List.fold_left Ast.term_vars [] args))
      create;
    List.iter
      (fun ((x, l, y), sp) ->
        add_vars sp (Ast.term_vars (Ast.term_vars [] x) y);
        add_vars sp (Ast.label_vars [] l))
      link;
    List.iter (fun ((_, t), sp) -> add_vars sp (Ast.term_vars [] t)) collect;
    List.iter
      (fun (c, sp) ->
        match c with
        | Ast.C_not c -> add_vars sp (Ast.condition_vars [] c)
        | _ -> ())
      where;
    let seen = Hashtbl.create 8 in
    List.iter
      (fun (v, sp) ->
        if not (Hashtbl.mem seen v) then begin
          Hashtbl.add seen v ();
          if not (List.mem v bound_here) then
            warnings := (Unsafe_variable v, sp) :: !warnings
        end)
      (List.rev !used);
    let nested =
      match Option.map (fun s -> s.Parser.s_nested) sb with
      | Some sps when List.length sps = List.length b.nested ->
        List.map2 (fun nb s -> (nb, Some s)) b.nested sps
      | _ -> List.map (fun nb -> (nb, None)) b.nested
    in
    List.iter (fun (nb, nsb) -> scan_block bound_here nb nsb) nested
  in
  let top =
    match spans with
    | Some sps when List.length sps = List.length q.blocks ->
      List.map2 (fun b s -> (b, Some s)) q.blocks sps
    | _ -> List.map (fun b -> (b, None)) q.blocks
  in
  List.iter (fun (b, sb) -> scan_block [] b sb) top;
  (* warnings: sorted and deduplicated by problem, keeping the span of
     the earliest occurrence (matches the unlocated sort_uniq) *)
  let sorted =
    List.stable_sort
      (fun (a, _) (b, _) -> Stdlib.compare a b)
      (List.rev !warnings)
  in
  let rec uniq = function
    | (p1, s1) :: (p2, _) :: rest when Stdlib.compare p1 p2 = 0 ->
      uniq ((p1, s1) :: rest)
    | x :: rest -> x :: uniq rest
    | [] -> []
  in
  { l_errors = List.rev !errors; l_warnings = uniq sorted }

let check (q : Ast.query) : report =
  let r = check_located q in
  {
    errors = List.map fst r.l_errors;
    warnings = List.map fst r.l_warnings;
  }

let is_safe q = (check q).warnings = []
let is_valid q = (check q).errors = []

exception Invalid of problem list

let validate_exn q =
  let r = check q in
  if r.errors <> [] then raise (Invalid r.errors)
