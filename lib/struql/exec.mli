(** Streaming physical-operator execution of StruQL (§2.4's evaluation
    layer, rebuilt as a pipelined engine).

    Each {!Plan.step} of a block's plan compiles to a physical operator
    — collection scan or probe, index-backed edge lookup, NFA path
    walk, filter, active-domain enumerator, anti-join for negation —
    and binding rows stream operator-to-operator as an [env Seq.t]
    instead of being materialized between steps.  The construction
    stage consumes the stream row-by-row, so peak memory scales with
    the pipeline's per-row fanout rather than the largest intermediate
    relation.  The mutation order of the output graph is identical to
    the eager {!Eval} evaluator's: same Skolem oids, same collections,
    bit-for-bit (the [test_eval_ref] reference suite checks this).

    Every operator carries runtime statistics — rows in/out, access
    path (index vs. scan), largest per-row output batch, optional
    elapsed time — surfaced as [EXPLAIN] ({!explain}: the static plan
    with access paths and cardinality estimates) and [EXPLAIN ANALYZE]
    ({!run_with_profile} + {!pp_profile}: the plan annotated with
    measured row counts). *)

open Sgraph

(** {1 Access paths} *)

(** The physical access path an operator uses, decided statically from
    the variables bound when it runs. *)
type access =
  | Coll_scan of string   (** enumerate a collection *)
  | Coll_probe of string  (** membership test of a bound object *)
  | Extern_filter of string
  | Edge_out              (** out-edges of a bound source (index probe) *)
  | Edge_by_label of string option
      (** label-extent index; [None] when the label variable is bound
          at runtime rather than a constant *)
  | Edge_in               (** reverse index on a bound target *)
  | Edge_scan             (** full edge scan *)
  | Path_walk             (** NFA walk from a bound source *)
  | Path_scan             (** NFA walk from every node *)
  | Filter                (** pure predicate over bound variables *)
  | Bind_eq               (** equality binding its unbound side *)
  | In_scan               (** enumerate a literal list *)
  | Anti_join             (** negation as failure *)
  | Domain_objects        (** active-domain object enumerator *)
  | Domain_labels         (** active-domain label enumerator *)

val pp_access : Format.formatter -> access -> unit

val access_uses_index : access -> bool
(** Whether the access path goes through a repository index. *)

(** {1 Static plans — EXPLAIN} *)

type op_plan = {
  op_step : Plan.step;
  op_access : access;
  op_est_fanout : float;  (** estimated output rows per input row *)
  op_est_rows : float;    (** estimated cumulative cardinality after this op *)
}

type block_plan = {
  bp_path : string;  (** "1", "2", nested as "1.1", "1.2", ... *)
  bp_steps : op_plan list;
  bp_nested : block_plan list;
}

type query_plan = {
  qp_strategy : Plan.strategy;
  qp_blocks : block_plan list;
}

val plan_query : ?options:Eval.options -> Graph.t -> Ast.query -> query_plan
(** Plan every block of the query (including nested blocks, under
    their ancestors' bound variables) and classify each step's access
    path.  May raise {!Plan.No_plan}. *)

val pp_query_plan : Format.formatter -> query_plan -> unit
val explain : ?options:Eval.options -> Graph.t -> Ast.query -> string
(** The static plan tree, one operator per line with its access path
    and cardinality estimate. *)

(** {1 Runtime profiles — EXPLAIN ANALYZE} *)

type op_stats = {
  os_step : Plan.step;
  os_access : access;
  mutable os_rows_in : int;
  mutable os_rows_out : int;
  mutable os_max_batch : int;
      (** largest per-input-row output batch: the operator's live-buffer
          watermark in the streaming pipeline *)
  mutable os_time : float;  (** cumulative seconds; 0 unless [timed] *)
  mutable os_timed : bool;  (** whether [os_time] was measured *)
}

type block_profile = {
  bpr_path : string;
  bpr_ops : op_stats list;
  mutable bpr_rows : int;  (** rows delivered to the construction stage *)
}

type profile = {
  prf_strategy : Plan.strategy;
  mutable prf_blocks : block_profile list;  (** in evaluation order *)
  mutable prf_rows : int;       (** total rows over all blocks *)
  mutable prf_peak_live : int;
      (** peak simultaneously-live binding rows across the whole run —
          the streaming analogue of the eager evaluator's
          [max_intermediate] *)
  mutable prf_time : float;     (** wall-clock seconds of the whole run *)
  mutable prf_kernel_freezes : int;
      (** graph-kernel snapshot builds during this run *)
  mutable prf_kernel_hits : int;    (** path-engine memo hits *)
  mutable prf_kernel_misses : int;  (** path-engine memo misses *)
  mutable prf_shards_scanned : int;
      (** shards whose extent drove a sharded collection scan *)
  mutable prf_shards_pruned : int;
      (** shards skipped because the driving collection has no members
          there *)
  mutable prf_shard_kernel : (string * Graph.kernel_counters) list;
      (** per-shard kernel freeze/hit/miss deltas during the run, shards
          in context order, omitting all-zero entries *)
  mutable prf_delta_blocks : int;
      (** blocks the differential engine could maintain incrementally *)
  mutable prf_delta_fallback : (string * string) list;
      (** (block path, reason) for blocks that force full re-evaluation *)
  mutable prf_delta_rows_in : int;
      (** binding rows consumed by delta re-derivation (delta cycles) *)
  mutable prf_delta_rows_out : int;
      (** binding rows produced by delta re-derivation (delta cycles) *)
}

val profile_steps : profile -> int
val profile_rows_out : profile -> int
(** Sum of every operator's output rows — comparable to the eager
    evaluator's [intermediate] counter. *)

val profile_max_batch : profile -> int
val pp_profile : Format.formatter -> profile -> unit
(** The measured plan: one operator per line with access path,
    [in=... out=... batch<=...] counters and, when timed, elapsed
    milliseconds. *)

(** {1 Sharded evaluation} *)

(** One shard of a partitioned repository, as the evaluator sees it: a
    graph {e sharing oids} with the mediated union, plus the collections
    it is home to.  [Mediator.Warehouse] builds these from a pinned
    {!Repository.Shard} snapshot; the evaluator itself has no dependency
    on the repository layer. *)
type shard_view = {
  sv_name : string;
  sv_graph : Graph.t;
  sv_collections : string list;
}

type shard_ctx = {
  sc_shards : shard_view list;
  sc_union : Graph.t;  (** must be the graph the query runs against *)
  sc_jobs : int;  (** domains for per-shard scans; [1] = sequential *)
}

val shard_enabled : bool ref
(** Kill switch (default [true], mirroring [Path.kernel_enabled]): when
    off, a supplied shard context is ignored and every block runs the
    plain pipeline. *)

val delta_enabled : bool ref
(** Kill switch for differential (delta) evaluation; cleared, the
    differential layer ([strudel watch], warehouse delta refresh)
    rebuilds cold instead.  Defaults to [true]. *)

(** {1 Whole-query evaluation} *)

val run :
  ?options:Eval.options ->
  ?scope:Skolem.t ->
  ?shards:shard_ctx ->
  ?into:Graph.t ->
  Graph.t -> Ast.query -> Graph.t
(** Evaluate a query with the streaming engine.  Semantically
    equivalent to {!Eval.run} (same output graph, same Skolem oids,
    same mutation order), with peak memory bounded by per-row fanout
    instead of intermediate relation size.  Blocks with nested blocks
    materialize their (final) binding relation, which the nested
    pipelines then stream from; if [into] is the data graph itself,
    the engine falls back to materializing every block's relation
    before construction, as the eager evaluator does.

    With [shards] (whose [sc_union] must be [g]), a top-level block
    driven by an unbound collection scan runs that scan per shard —
    pruning shards not home to the collection, in parallel across
    domains when [sc_jobs > 1] and every other operator is
    domain-safe (no path walks, no external predicates) — and merges
    the per-member row chunks back into the exact unsharded row order,
    so the output graph stays byte-identical.  Blocks the shard
    planner cannot cover (or mismatched contexts) silently fall back
    to the plain pipeline. *)

val run_with_profile :
  ?options:Eval.options ->
  ?timed:bool ->
  ?scope:Skolem.t ->
  ?shards:shard_ctx ->
  ?into:Graph.t ->
  Graph.t -> Ast.query -> Graph.t * profile
(** [run] with a per-operator profile.  [timed] (default [false])
    additionally measures per-operator elapsed time — it costs two
    clock reads per binding row, so leave it off on hot paths. *)

val run_string :
  ?options:Eval.options ->
  ?scope:Skolem.t ->
  ?into:Graph.t ->
  Graph.t -> string -> Graph.t
(** Parse and evaluate in one call. *)

(** {1 Stage 1 alone} *)

val bindings :
  ?options:Eval.options ->
  ?env:Eval.env ->
  ?bound:Ast.var list ->
  ?needed_obj:Ast.var list ->
  ?needed_label:Ast.var list ->
  Graph.t -> Ast.condition list -> Eval.env list
(** The binding relation of a condition list, computed by the
    streaming pipeline.  Same rows, same order as {!Eval.bindings}. *)

val bindings_profiled :
  ?options:Eval.options ->
  ?timed:bool ->
  ?env:Eval.env ->
  ?bound:Ast.var list ->
  ?needed_obj:Ast.var list ->
  ?needed_label:Ast.var list ->
  Graph.t -> Ast.condition list -> Eval.env list * op_stats list * int
(** [bindings] plus the per-operator stats and the pipeline's peak
    live-binding count. *)

val bindings_seq :
  ?options:Eval.options ->
  ?env:Eval.env ->
  ?bound:Ast.var list ->
  ?needed_obj:Ast.var list ->
  ?needed_label:Ast.var list ->
  Graph.t -> Ast.condition list -> Eval.env Seq.t
(** The raw stream, for consumers that want row-at-a-time processing
    without materializing the relation at all. *)
