(** Differential (semi-naive) evaluation of StruQL site queries.

    The streaming evaluator ({!Exec}) recomputes a site graph from
    scratch; this engine {e maintains} one under a {!Sgraph.Delta}.
    The observation it rests on: the binding relation of a
    delta-evaluable block ({!Plan.delta_class}) is partitioned by its
    {e driver} — the member of the driving collection its opening scan
    binds — and every later plan step only reads forward from
    driver-derived objects, so one driver's partition is a function of
    the driver's forward neighbourhood.  A data delta therefore only
    moves the partitions of drivers that can reach a touched object,
    and those are found by the backward closure
    {!Sgraph.Delta.closure} — walked over the incoming-edge index,
    which on a frozen graph the CSR kernel's reverse-adjacency lane
    feeds.

    Construction events (node creates, edge adds, collection adds —
    observed through {!Eval.emitter}) are recorded per
    (block, driver) and {e support-counted}: a site edge exists while
    any driver's derivation emits it, and its canonical position in
    its out-bucket is the {e minimum} (block, driver-rank, sequence)
    over its supporters — exactly the first mutation that would have
    created it in a cold build.  Retracting an affected driver's
    events, re-deriving just that driver, then re-sorting only the
    touched buckets by canonical position keeps the maintained site
    graph byte-identical to a cold full build at O(change) cost.

    Blocks that cannot delta-evaluate — aggregates, negation,
    active-domain enumerators, opaque externs, constant-anchored data
    reads, cross products — are replayed in full each cycle (as one ⊥
    driver), with the reason recorded; the eager evaluator stays the
    semantic reference.  The {!Exec.delta_enabled} kill switch turns
    every cycle into a full re-derivation through the same machinery. *)

open Sgraph

(* --- construction events and their identity keys --- *)

type ev =
  | E_node of Oid.t
  | E_edge of Oid.t * string * Graph.target
  | E_coll of string * Oid.t

let tgt_key = function
  | Graph.N o -> "n" ^ string_of_int (Oid.id o)
  | Graph.V v -> "v" ^ Value.to_string v

let ev_key = function
  | E_node o -> "N|" ^ string_of_int (Oid.id o)
  | E_edge (s, l, t) ->
    "E|" ^ string_of_int (Oid.id s) ^ "|" ^ l ^ "|" ^ tgt_key t
  | E_coll (c, o) -> "C|" ^ c ^ "|" ^ string_of_int (Oid.id o)

(* --- block-tree state --- *)

type bstate = {
  bs_id : int;  (* global preorder id — the major canonical-order key *)
  bs_top : int;  (* id of the top-level ancestor *)
  bs_path : string;  (* "q2.1.3" display path *)
  bs_block : Ast.block;
  bs_bound : string list ref;  (* bindings entering the block *)
  mutable bs_steps : Plan.step list;
  mutable bs_fp : string;  (* plan fingerprint *)
  bs_nested : bstate list;
}

type tclass =
  | T_static
  | T_driven of string * string  (* driving collection, driver var *)
  | T_fallback of string

type tstate = {
  ts_bs : bstate;
  mutable ts_class : tclass;
  (* spaced driver ranks in extent order, so mid-extent insertions
     order without renumbering *)
  ts_ranks : (int, int) Hashtbl.t;  (* driver oid id -> rank *)
}

type qstate = { qs_query : Ast.query; qs_tops : tstate list }

type counters = {
  mutable c_cycles : int;
  mutable c_drivers : int;  (** drivers (re-)derived *)
  mutable c_rows : int;  (** binding rows (re-)derived *)
  mutable c_events_added : int;
  mutable c_events_removed : int;
  mutable c_fallback_replays : int;  (** ⊥-driver full block replays *)
  mutable c_full_rederives : int;  (** whole-block re-derivations *)
}

(* Support of an event key: which (block, driver) derivations emit it,
   at what minimum sequence number (driver key -1 = ⊥).  Retraction
   always removes a (block, driver)'s events wholesale, so per-pair
   multiplicity is irrelevant and only the pair's minimum sequence —
   its canonical position — is kept.  Single support is by far the
   common case and gets an immediate representation; keys emitted by
   many drivers (shared endpoints like a site's root node) are promoted
   to a table so per-driver retraction is O(1), not O(supporters). *)
type sups =
  | S0
  | S1 of int * int * int  (* block id, driver key, min seq *)
  | SM of (int * int, int) Hashtbl.t  (* (block, driver) -> min seq *)

type supp = { mutable sup : sups }

let sup_is_empty s =
  match s.sup with S0 -> true | S1 _ -> false | SM h -> Hashtbl.length h = 0

let sup_add s bid dk seq =
  match s.sup with
  | S0 -> s.sup <- S1 (bid, dk, seq)
  | S1 (b, d, s0) ->
    if b = bid && d = dk then begin
      if seq < s0 then s.sup <- S1 (b, d, seq)
    end
    else begin
      let h = Hashtbl.create 4 in
      Hashtbl.replace h (b, d) s0;
      Hashtbl.replace h (bid, dk) seq;
      s.sup <- SM h
    end
  | SM h -> (
    match Hashtbl.find_opt h (bid, dk) with
    | Some s0 when s0 <= seq -> ()
    | _ -> Hashtbl.replace h (bid, dk) seq)

let sup_retract s bid dk =
  match s.sup with
  | S0 -> ()
  | S1 (b, d, _) -> if b = bid && d = dk then s.sup <- S0
  | SM h -> Hashtbl.remove h (bid, dk)

type t = {
  options : Eval.options;
  queries : qstate list;
  blocks : (int, bstate) Hashtbl.t;  (* every block by preorder id *)
  tops : (int, tstate) Hashtbl.t;  (* top block id -> its state *)
  sg : Graph.t;  (* the maintained site graph *)
  scope : Skolem.t;
  mutable data : Graph.t;
  events : (int * int, ev array) Hashtbl.t;
  (* (block id, driver key) -> its recorded events, derivation order *)
  support : (string, ev * supp) Hashtbl.t;
  ctr : counters;
  (* recording buffers of the pass in flight *)
  mutable cur_buf : ev list ref;
  bufs : (int * int, ev list ref) Hashtbl.t;
}

let counters t = t.ctr
let site_graph t = t.sg
let scope t = t.scope
let data_graph t = t.data
let site_queries t = List.map (fun qs -> qs.qs_query) t.queries

let class_string = function
  | T_static -> "static"
  | T_driven (c, v) -> Printf.sprintf "driven by %s(%s)" c v
  | T_fallback why -> "fallback: " ^ why

let classes t =
  List.concat_map
    (fun qs ->
      List.map
        (fun ts -> (ts.ts_bs.bs_path, class_string ts.ts_class))
        qs.qs_tops)
    t.queries

let fallbacks t =
  List.concat_map
    (fun qs ->
      List.filter_map
        (fun ts ->
          match ts.ts_class with
          | T_fallback why -> Some (ts.ts_bs.bs_path, why)
          | T_static | T_driven _ -> None)
        qs.qs_tops)
    t.queries

(* --- planning and classification --- *)

let fingerprint steps =
  String.concat ";" (List.map (fun s -> Fmt.str "%a" Plan.pp_step s) steps)

let plan_block t bs =
  let needed_obj, needed_label = Eval.construction_needs bs.bs_block in
  Plan.plan ~strategy:t.options.Eval.strategy
    ~registry:t.options.Eval.registry t.data ~bound:!(bs.bs_bound)
    ~needed_obj ~needed_label bs.bs_block.Ast.where

(* (Re)plan a block subtree top-down, propagating the bound sets the
   eager evaluator would compute; returns whether any plan changed
   shape (a shape change invalidates every stored derivation of the
   subtree, because row order depends on step order). *)
let rec replan t bs =
  let steps = plan_block t bs in
  let fp = fingerprint steps in
  let changed = fp <> bs.bs_fp in
  bs.bs_steps <- steps;
  bs.bs_fp <- fp;
  let bound' =
    Ast.dedup
      (!(bs.bs_bound) @ List.concat_map (fun s -> Plan.step_binds s) steps)
  in
  List.fold_left
    (fun acc nb ->
      nb.bs_bound := bound';
      let c = replan t nb in
      acc || c)
    changed bs.bs_nested

(* Classification of a whole top-level subtree: driven only when the
   top block's plan opens with an unbound driving-collection scan and
   every later step — including every nested block's, under the
   (bound, derived) pair threaded down the tree — anchors its data
   reads on driver-derived objects. *)
let classify ts =
  let pure = Builtins.pure_extern in
  let rec subtree_ok bd bs =
    List.fold_left
      (fun acc nb ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if Plan.block_has_agg nb.bs_block then
            Error (nb.bs_path ^ ": aggregate link target")
          else
            let bound, der = bd in
            (match Plan.anchored_steps ~pure ~bound ~der nb.bs_steps with
             | Error e -> Error (nb.bs_path ^ ": " ^ e)
             | Ok bd' -> subtree_ok bd' nb))
      (Ok ()) bs.bs_nested
  in
  let bs = ts.ts_bs in
  if Plan.block_has_agg bs.bs_block then T_fallback "aggregate link target"
  else
    let empty = Plan.VSet.empty in
    match bs.bs_steps with
    | [] -> (
        match subtree_ok (empty, empty) bs with
        | Ok () -> T_static
        | Error e -> T_fallback e)
    | Plan.Exec (Plan.CC_coll (cname, Ast.T_var v)) :: rest -> (
        let seed = Plan.VSet.add v empty in
        match Plan.anchored_steps ~pure ~bound:seed ~der:seed rest with
        | Error e -> T_fallback e
        | Ok bd -> (
            match subtree_ok bd bs with
            | Ok () -> T_driven (cname, v)
            | Error e -> T_fallback e))
    | _ -> T_fallback "no driving collection scan"

(* --- event recording --- *)

let buf_for t key =
  match Hashtbl.find_opt t.bufs key with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.bufs key r;
    r

let emitter t ~apply =
  let push e = t.cur_buf := e :: !(t.cur_buf) in
  {
    Eval.em_apply = apply;
    em_node = (fun o -> push (E_node o));
    em_edge =
      (fun s l tg ->
        (* implicit endpoint existence rides the edge event, so data
           nodes pulled into the site graph are support-counted too *)
        push (E_node s);
        (match tg with Graph.N o -> push (E_node o) | Graph.V _ -> ());
        push (E_edge (s, l, tg)));
    em_coll = (fun c o -> push (E_coll (c, o)));
  }

let sink t ~apply =
  { Eval.out = t.sg; scope = t.scope; emit = Some (emitter t ~apply) }

(* Evaluate one block over per-driver input rows and construct, in the
   eager engine's block-major order: all of this block's rows (drivers
   in extent order) construct before any nested block runs — the exact
   cold mutation order, since a cold block's relation is driver-major
   (its opening scan enumerates the extent in order). *)
let rec blockmajor t ~apply bs (per_driver : (int * Eval.env list) list) =
  let snk = sink t ~apply in
  let per_rows =
    List.map
      (fun (dk, envs) ->
        let rows =
          Eval.exec_steps t.data t.options.Eval.registry envs bs.bs_steps
        in
        t.ctr.c_rows <- t.ctr.c_rows + List.length rows;
        (dk, rows))
      per_driver
  in
  List.iter
    (fun (dk, rows) ->
      t.cur_buf <- buf_for t (bs.bs_id, dk);
      let groups = Eval.new_groups () in
      List.iter (fun env -> Eval.construct_row snk groups bs.bs_block env) rows;
      Eval.construct_flush snk groups)
    per_rows;
  List.iter (fun nb -> blockmajor t ~apply nb per_rows) bs.bs_nested

(* --- driver ranks --- *)

let rank_gap = 1024

exception Rank_overflow

(* Assign spaced ranks to extent members missing one, preserving the
   extent's order relative to already-ranked survivors.  Raises
   [Rank_overflow] when a gap is exhausted (the caller re-derives the
   whole block, which renumbers). *)
let assign_ranks ts extent =
  let arr = Array.of_list extent in
  let n = Array.length arr in
  let rank_of i = Hashtbl.find_opt ts.ts_ranks (Oid.id arr.(i)) in
  let last = ref 0 in
  let i = ref 0 in
  while !i < n do
    match rank_of !i with
    | Some r ->
      last := r;
      incr i
    | None ->
      (* run of unranked members [!i .. !j-1] before the next ranked *)
      let j = ref !i in
      while !j < n && rank_of !j = None do
        incr j
      done;
      let run = !j - !i in
      let hi =
        if !j < n then
          match rank_of !j with Some r -> r | None -> assert false
        else !last + ((run + 1) * rank_gap)
      in
      if hi - !last <= run then raise Rank_overflow;
      let step = max 1 ((hi - !last) / (run + 1)) in
      for k = !i to !j - 1 do
        last := !last + step;
        Hashtbl.replace ts.ts_ranks (Oid.id arr.(k)) !last
      done;
      i := !j
  done

let renumber_ranks ts extent =
  Hashtbl.reset ts.ts_ranks;
  List.iteri
    (fun i o -> Hashtbl.replace ts.ts_ranks (Oid.id o) ((i + 1) * rank_gap))
    extent

(* canonical position of a supporter: (block preorder, driver rank,
   sequence within the driver's derivation) *)
let pos_of t (bid, dk, seq) =
  let rank =
    if dk = -1 then 0
    else
      let bs = Hashtbl.find t.blocks bid in
      let ts = Hashtbl.find t.tops bs.bs_top in
      match Hashtbl.find_opt ts.ts_ranks dk with
      | Some r -> r
      | None -> max_int
  in
  (bid, rank, seq)

(* minimum canonical position over an event key's supporters — the
   event's sort position in its bucket or collection *)
let minpos t k =
  match Hashtbl.find_opt t.support k with
  | None -> (max_int, 0, 0)
  | Some (_, s) -> (
    match s.sup with
    | S0 -> (max_int, 0, 0)
    | S1 (b, d, sq) -> pos_of t (b, d, sq)
    | SM h ->
      Hashtbl.fold
        (fun (b, d) sq acc ->
          let p = pos_of t (b, d, sq) in
          if p < acc then p else acc)
        h (max_int, 0, 0))

(* --- engine construction --- *)

let create ?(options = Eval.default_options) ~queries data =
  if options.Eval.validate then List.iter Check.validate_exn queries;
  let blocks = Hashtbl.create 32 in
  let tops = Hashtbl.create 8 in
  let next_id = ref 0 in
  let rec mk top path (b : Ast.block) =
    let id = !next_id in
    incr next_id;
    let top = match top with Some i -> i | None -> id in
    {
      bs_id = id;
      bs_top = top;
      bs_path = path;
      bs_block = b;
      bs_bound = ref [];
      bs_steps = [];
      bs_fp = "";
      bs_nested =
        List.mapi
          (fun i nb -> mk (Some top) (path ^ "." ^ string_of_int (i + 1)) nb)
          b.Ast.nested;
    }
  in
  let queries =
    List.mapi
      (fun qi q ->
        let qs_tops =
          List.mapi
            (fun bi b ->
              let bs = mk None (Printf.sprintf "q%d.%d" (qi + 1) (bi + 1)) b in
              let rec reg bs =
                Hashtbl.replace blocks bs.bs_id bs;
                List.iter reg bs.bs_nested
              in
              reg bs;
              let ts =
                {
                  ts_bs = bs;
                  ts_class = T_static;
                  ts_ranks = Hashtbl.create 64;
                }
              in
              Hashtbl.replace tops bs.bs_id ts;
              ts)
            q.Ast.blocks
        in
        { qs_query = q; qs_tops })
      queries
  in
  {
    options;
    queries;
    blocks;
    tops;
    sg = Graph.create ~name:"site" ();
    scope = Skolem.create ();
    data;
    events = Hashtbl.create 4096;
    support = Hashtbl.create 8192;
    ctr =
      {
        c_cycles = 0;
        c_drivers = 0;
        c_rows = 0;
        c_events_added = 0;
        c_events_removed = 0;
        c_fallback_replays = 0;
        c_full_rederives = 0;
      };
    cur_buf = ref [];
    bufs = Hashtbl.create 64;
  }

(* Commit the recorded buffers: store event arrays and add support.
   [announce] sees events whose support went 0 -> 1. *)
let commit_bufs t ~announce =
  Hashtbl.iter
    (fun (bid, dk) buf ->
      let evs = Array.of_list (List.rev !buf) in
      if Array.length evs = 0 then Hashtbl.remove t.events (bid, dk)
      else Hashtbl.replace t.events (bid, dk) evs;
      Array.iteri
        (fun seq e ->
          let k = ev_key e in
          t.ctr.c_events_added <- t.ctr.c_events_added + 1;
          match Hashtbl.find_opt t.support k with
          | Some (_, s) ->
            if sup_is_empty s then announce e;
            sup_add s bid dk seq
          | None ->
            announce e;
            Hashtbl.replace t.support k (e, { sup = S1 (bid, dk, seq) }))
        evs)
    t.bufs;
  Hashtbl.reset t.bufs

(* Retract the events of (block list x driver): drop support; keys
   whose support drains to zero are collected into [drained]. *)
let retract t ~drained bs_ids dk =
  List.iter
    (fun bid ->
      match Hashtbl.find_opt t.events (bid, dk) with
      | None -> ()
      | Some evs ->
        Hashtbl.remove t.events (bid, dk);
        Array.iter
          (fun e ->
            let k = ev_key e in
            t.ctr.c_events_removed <- t.ctr.c_events_removed + 1;
            match Hashtbl.find_opt t.support k with
            | None -> ()
            | Some (_, s) ->
              sup_retract s bid dk;
              if sup_is_empty s then Hashtbl.replace drained k e)
          evs)
    bs_ids

let subtree_ids bs =
  let rec go acc bs = List.fold_left go (bs.bs_id :: acc) bs.bs_nested in
  List.rev (go [] bs)

let drivers_of_events t bs_ids =
  List.sort_uniq compare
    (Hashtbl.fold
       (fun (bid, dk) _ acc ->
         if dk <> -1 && List.mem bid bs_ids then dk :: acc else acc)
       t.events [])

(** Cold-prime the engine: plan, classify, and construct the site graph
    with the eager engine's exact mutation sequence, recording every
    construction event.  The result is byte-identical to {!Eval.run} /
    {!Exec.run} of the same queries over the same data graph. *)
let prime t =
  ignore (Graph.freeze t.data);
  List.iter
    (fun qs ->
      List.iter
        (fun ts ->
          ignore (replan t ts.ts_bs);
          ts.ts_class <- classify ts;
          (match ts.ts_class with
           | T_driven (coll, v) ->
             let extent = Graph.collection t.data coll in
             renumber_ranks ts extent;
             let per_driver =
               List.map
                 (fun d ->
                   ( Oid.id d,
                     [
                       Eval.Env.add v
                         (Eval.B_target (Graph.N d))
                         Eval.Env.empty;
                     ] ))
                 extent
             in
             t.ctr.c_drivers <- t.ctr.c_drivers + List.length extent;
             blockmajor t ~apply:true ts.ts_bs per_driver
           | T_static | T_fallback _ ->
             blockmajor t ~apply:true ts.ts_bs [ (-1, [ Eval.Env.empty ]) ]);
          commit_bufs t ~announce:(fun _ -> ()))
        qs.qs_tops)
    t.queries

(* --- the delta cycle --- *)

type site_change = {
  sc_touched : string list;
      (** site-node names whose rendered bytes may have changed *)
  sc_removed : string list;  (** site nodes that no longer exist *)
  sc_drivers : int;  (** drivers re-derived this cycle *)
  sc_rows : int;  (** binding rows re-derived this cycle *)
  sc_fallbacks : (string * string) list;
      (** (block path, reason) of full block replays this cycle *)
}

module SS = Set.Make (String)

let apply ?data t (delta : Delta.t) : site_change =
  (match data with Some g -> t.data <- g | None -> ());
  let g = t.data in
  (* no whole-graph refreeze here: a small delta re-derives a handful
     of drivers, whose reads run fine against the live graph.  Full
     replays freeze on their own (below) before scanning the extent. *)
  t.ctr.c_cycles <- t.ctr.c_cycles + 1;
  let c_drivers0 = t.ctr.c_drivers and c_rows0 = t.ctr.c_rows in
  let closure = lazy (Delta.closure g delta) in
  let drained : (string, ev) Hashtbl.t = Hashtbl.create 64 in
  let announced : (string, ev) Hashtbl.t = Hashtbl.create 64 in
  let touched_srcs = ref Oid.Set.empty in
  let touched_colls = ref SS.empty in
  let touched_names = ref SS.empty in
  let fallbacks_run = ref [] in
  let note_ev e =
    match e with
    | E_node o -> touched_names := SS.add (Oid.name o) !touched_names
    | E_edge (s, _, _) -> touched_srcs := Oid.Set.add s !touched_srcs
    | E_coll (c, o) ->
      touched_colls := SS.add c !touched_colls;
      touched_names := SS.add (Oid.name o) !touched_names
  in
  (* Position-diff noting for the incremental path: record the
     canonical position of every event a re-derived driver previously
     emitted — and of every event buffered this cycle — BEFORE the
     commit, then note only the events whose position or existence
     actually changed.  An event retracted and re-derived identically
     (the overwhelming majority under a small delta) leaves its bucket
     untouched, so the canonical re-sorts below stay O(change) instead
     of O(collection).  Node events are existence-only and never drive
     a sort: new ones are noted at announce time, dead ones by the
     removal loop.  Recording happens before the recorder's own
     retraction, so a shared key's first recording always captures its
     true pre-cycle position. *)
  let prepos : (string, ev * (int * int * int)) Hashtbl.t =
    Hashtbl.create 256
  in
  let record_prepos e =
    match e with
    | E_node _ -> ()
    | E_edge _ | E_coll _ ->
      let k = ev_key e in
      if not (Hashtbl.mem prepos k) then Hashtbl.add prepos k (e, minpos t k)
  in
  let disabled = not !Exec.delta_enabled in
  List.iter
    (fun qs ->
      List.iter
        (fun ts ->
          let bs = ts.ts_bs in
          let ids = subtree_ids bs in
          let plan_changed = replan t bs in
          let cls = classify ts in
          let class_changed = cls <> ts.ts_class in
          ts.ts_class <- cls;
          let old_evs_iter f dk =
            List.iter
              (fun bid ->
                match Hashtbl.find_opt t.events (bid, dk) with
                | None -> ()
                | Some evs -> Array.iter f evs)
              ids
          in
          (* full replays note the buckets of a driver's OLD events
             unconditionally (whole-block rank renumbering can reorder
             survivors); the incremental path records positions instead
             and lets the post-commit diff decide *)
          let note_old_and_retract dk =
            old_evs_iter note_ev dk;
            retract t ~drained ids dk
          in
          let prepos_and_retract dk =
            old_evs_iter record_prepos dk;
            retract t ~drained ids dk
          in
          let replay_whole () =
            ignore (Graph.freeze g);
            List.iter note_old_and_retract (-1 :: drivers_of_events t ids);
            blockmajor t ~apply:false bs [ (-1, [ Eval.Env.empty ]) ]
          in
          match cls with
          | T_static ->
            (* data-independent: only a plan/class change can move it *)
            if disabled || plan_changed || class_changed then begin
              t.ctr.c_full_rederives <- t.ctr.c_full_rederives + 1;
              replay_whole ()
            end
          | T_fallback why ->
            t.ctr.c_fallback_replays <- t.ctr.c_fallback_replays + 1;
            fallbacks_run := (bs.bs_path, why) :: !fallbacks_run;
            replay_whole ()
          | T_driven (coll, v) ->
            let full =
              disabled || plan_changed || class_changed
              || List.mem coll delta.Delta.reordered
            in
            (* [oid_of] resolves affected driver keys to their nodes; a
               key is a live driver iff it holds a rank (ranks track
               extent membership exactly).  The incremental branch
               builds it from the delta's closure and membership
               changes alone — O(change), never O(extent). *)
            let affected_dks, oid_of =
              if full then begin
                t.ctr.c_full_rederives <- t.ctr.c_full_rederives + 1;
                ignore (Graph.freeze g);
                let extent = Graph.collection g coll in
                renumber_ranks ts extent;
                let old = drivers_of_events t ids in
                let now = List.map (fun o -> Oid.id o) extent in
                let h = Hashtbl.create ((2 * List.length extent) + 1) in
                List.iter (fun o -> Hashtbl.replace h (Oid.id o) o) extent;
                (List.sort_uniq compare (old @ now), h)
              end
              else begin
                (* membership changes of the driving collection *)
                let member_pairs =
                  List.filter
                    (fun (c, _) -> c = coll)
                    (delta.Delta.coll_added @ delta.Delta.coll_removed)
                in
                let member_dks =
                  List.map (fun (_, o) -> Oid.id o) member_pairs
                in
                List.iter
                  (fun (c, o) ->
                    if c = coll then Hashtbl.remove ts.ts_ranks (Oid.id o))
                  delta.Delta.coll_removed;
                (if List.exists (fun (c, _) -> c = coll) delta.Delta.coll_added
                 then
                   let extent = Graph.collection g coll in
                   try assign_ranks ts extent
                   with Rank_overflow -> renumber_ranks ts extent);
                let h = Hashtbl.create 64 in
                List.iter
                  (fun (_, o) -> Hashtbl.replace h (Oid.id o) o)
                  member_pairs;
                (* drivers whose forward neighbourhood the delta touches *)
                let reach =
                  Oid.Set.fold
                    (fun o acc ->
                      let dk = Oid.id o in
                      Hashtbl.replace h dk o;
                      if Hashtbl.mem ts.ts_ranks dk
                         || Hashtbl.mem t.events (bs.bs_id, dk)
                      then dk :: acc
                      else acc)
                    (Lazy.force closure) []
                in
                (List.sort_uniq compare (member_dks @ reach), h)
              end
            in
            (* also retract any stale ⊥ events from an earlier
               classification of this block *)
            if full then note_old_and_retract (-1);
            let per_driver =
              List.filter_map
                (fun dk ->
                  (if full then note_old_and_retract else prepos_and_retract)
                    dk;
                  match Hashtbl.find_opt oid_of dk with
                  | Some d when Hashtbl.mem ts.ts_ranks dk ->
                    t.ctr.c_drivers <- t.ctr.c_drivers + 1;
                    Some
                      ( dk,
                        [
                          Eval.Env.add v
                            (Eval.B_target (Graph.N d))
                            Eval.Env.empty;
                        ] )
                  | _ -> None (* removed driver: retraction only *))
                affected_dks
            in
            (* derive in extent (rank) order, matching cold row order *)
            let per_driver =
              List.sort
                (fun (a, _) (b, _) ->
                  compare
                    (Hashtbl.find_opt ts.ts_ranks a)
                    (Hashtbl.find_opt ts.ts_ranks b))
                per_driver
            in
            if per_driver <> [] then blockmajor t ~apply:false bs per_driver)
        qs.qs_tops)
    t.queries;
  (* buffered events record their pre-commit position: genuinely new
     keys (and keys whose support was just drained) read max_int, so
     the diff below notes them; re-derivations at an unchanged position
     cancel out *)
  Hashtbl.iter (fun _ buf -> List.iter record_prepos !buf) t.bufs;
  commit_bufs t ~announce:(fun e ->
      Hashtbl.replace announced (ev_key e) e;
      match e with E_node _ -> note_ev e | E_edge _ | E_coll _ -> ());
  (* position diff: note exactly the events whose canonical position
     moved or whose existence flipped *)
  Hashtbl.iter
    (fun k (e, oldpos) -> if minpos t k <> oldpos then note_ev e)
    prepos;
  (* net removals: drained and not re-supported *)
  let removed_nodes = ref [] in
  Hashtbl.iter
    (fun k e ->
      match Hashtbl.find_opt t.support k with
      | Some (_, s) when not (sup_is_empty s) -> ()
      | _ ->
        Hashtbl.remove t.support k;
        note_ev e;
        (match e with
         | E_coll (c, o) -> Graph.remove_from_collection t.sg c o
         | E_edge (s, l, tg) -> Graph.remove_edge t.sg s l tg
         | E_node _ -> removed_nodes := e :: !removed_nodes))
    drained;
  (* nodes go last: their dangling edges and memberships are gone
     (construction emits a node event for every endpoint it mentions,
     so node support always outlives edge support) *)
  let removed_names =
    List.filter_map
      (function
        | E_node o ->
          Graph.remove_node t.sg o;
          Some (Oid.name o)
        | E_edge _ | E_coll _ -> None)
      !removed_nodes
  in
  (* net additions (add_edge recreates endpoints as needed); bucket and
     extent order is canonicalized below, so application order is free *)
  Hashtbl.iter
    (fun _ e ->
      match Hashtbl.find_opt t.support (ev_key e) with
      | Some (_, s) when not (sup_is_empty s) -> (
          match e with
          | E_node o -> Graph.add_node t.sg o
          | E_edge (s', l, tg) -> Graph.add_edge t.sg s' l tg
          | E_coll (c, o) -> Graph.add_to_collection t.sg c o)
      | _ -> ())
    announced;
  (* canonical re-sort of every touched bucket and collection;
     decorate–sort–undecorate: [minpos] walks the support table, so
     compute it once per element, not once per comparison *)
  let sort_by_minpos key items =
    List.map (fun x -> (minpos t (key x), x)) items
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  Oid.Set.iter
    (fun src ->
      if Graph.mem_node t.sg src then begin
        let cur = Graph.out_edges t.sg src in
        let sorted =
          sort_by_minpos (fun (l, tg) -> ev_key (E_edge (src, l, tg))) cur
        in
        if sorted <> cur then Graph.set_out_edges t.sg src sorted;
        touched_names := SS.add (Oid.name src) !touched_names
      end)
    !touched_srcs;
  SS.iter
    (fun c ->
      let cur = Graph.collection t.sg c in
      let sorted = sort_by_minpos (fun o -> ev_key (E_coll (c, o))) cur in
      if sorted <> cur then Graph.set_collection t.sg c sorted)
    !touched_colls;
  {
    sc_touched = SS.elements !touched_names;
    sc_removed = List.sort_uniq String.compare removed_names;
    sc_drivers = t.ctr.c_drivers - c_drivers0;
    sc_rows = t.ctr.c_rows - c_rows0;
    sc_fallbacks = List.rev !fallbacks_run;
  }

(** Thread this engine's cumulative counters into a streaming profile
    (the [explain-analyze] surface). *)
let fill_profile t (p : Exec.profile) =
  p.Exec.prf_delta_rows_in <- t.ctr.c_drivers;
  p.Exec.prf_delta_rows_out <- t.ctr.c_rows

let pp_counters ppf c =
  Fmt.pf ppf
    "cycles=%d drivers=%d rows=%d events +%d/-%d fallback-replays=%d \
     full-rederives=%d"
    c.c_cycles c.c_drivers c.c_rows c.c_events_added c.c_events_removed
    c.c_fallback_replays c.c_full_rederives
