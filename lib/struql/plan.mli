(** Query planning for the WHERE stage (§2.4).

    A plan is an ordering of a block's conditions, each compiled to an
    access path, possibly interleaved with active-domain enumerators
    for variables that no positive condition binds.  Three strategies
    reproduce the system's evolution: {!Naive} keeps textual order
    (with the minimal reordering needed to run filters after their
    variables bind), {!Heuristic} greedily picks the executable
    condition with the smallest estimated output — the paper's "simple
    heuristic-based optimizer" — and {!Cost_based} enumerates orderings
    by dynamic programming over condition subsets with an index-aware
    cost model, the later optimizer of [FLO 97]. *)

exception Plan_error of string

type strategy = Naive | Heuristic | Cost_based

(** Conditions compiled to resolved, NFA-carrying access paths.  The
    collection-vs-external-predicate resolution of [C_atom] happens
    here, against the registry — the distinction is semantic, not
    syntactic. *)
type ccond =
  | CC_coll of string * Ast.term
  | CC_extern of string * Ast.term list
  | CC_edge of Ast.term * Ast.label_term * Ast.term
  | CC_path of Ast.term * Sgraph.Path.t * Sgraph.Path.nfa * Ast.term
  | CC_cmp of Ast.cmp_op * Ast.term * Ast.term
  | CC_in of Ast.term * Sgraph.Value.t list
  | CC_not of ccond

type step =
  | Exec of ccond
  | Domain_obj of Ast.var    (** bind the variable to every object *)
  | Domain_label of Ast.var  (** bind the variable to every label *)

module VSet : Set.S with type elt = string

val compile : Builtins.registry -> Ast.condition -> ccond

val ccond_vars : Ast.var list -> ccond -> Ast.var list
val ccond_binds : ccond -> Ast.var list
(** Variables the condition binds when executed. *)

val term_bound : VSet.t -> Ast.term -> bool
(** Whether a term is ground given the bound set (constants always;
    variables when in the set). *)

val label_bound : VSet.t -> Ast.label_term -> bool

val executable :
  ?limited:string list -> ?universe:VSet.t -> VSet.t -> ccond -> bool
(** Whether the condition can run given the bound set.  A negation
    waits for every inner variable inside [universe] (the set this
    plan will ever bind); inner variables outside it are existential
    within the [not].  [limited] names collections backed by sources
    with limited access patterns (§2.4): they can test membership of a
    bound object but cannot be enumerated. *)

val step_binds : step -> Ast.var list

(** {1 Collection/label footprint}

    A conservative summary of the graph regions a plan can touch, used
    to prune shards a query cannot match and by the lint pass to detect
    site queries no shard of the configured repository covers. *)

type footprint = {
  fp_collections : string list;  (** collections scanned or probed *)
  fp_labels : string list;  (** edge labels matched by constant *)
  fp_opaque : bool;
      (** the plan also touches regions this summary cannot name (label
          variables, wildcard path edges, external predicates, domain
          enumerators) — pruning by labels is then unsound, though
          collection pruning of {e driving} scans remains valid *)
}

val footprint : step list -> footprint
val conds_footprint : Builtins.registry -> Ast.condition list -> footprint
(** [footprint] over the compiled (unordered) conditions. *)

val pp_footprint : Format.formatter -> footprint -> unit

(** {1 Cost model} *)

type stats = {
  n_nodes : float;
  n_edges : float;
  n_labels : float;
  n_objects : float;
  avg_out : float;  (** mean out-degree — degree statistic for the
                        kernel's direction-aware path work estimates *)
  coll_size : string -> float;
  label_cnt : string -> float;  (** per-label edge count, O(1) from the
                                    graph's indexed buckets *)
}

val stats_of_graph : Sgraph.Graph.t -> stats

val estimate : stats -> VSet.t -> ccond -> float * float
(** [(fanout, work)]: expected output rows per input row, and work per
    input row, given the bound set. *)

(** {1 Planning} *)

exception No_plan of string
(** No ordering satisfies the access patterns: some limited source can
    never be probed with bound arguments. *)

val plan :
  ?strategy:strategy ->
  ?limited:string list ->
  registry:Builtins.registry ->
  Sgraph.Graph.t ->
  bound:Ast.var list ->
  needed_obj:Ast.var list ->
  needed_label:Ast.var list ->
  Ast.condition list ->
  step list
(** Plan a block's conditions.  [bound] are variables already bound by
    ancestor blocks; [needed_obj]/[needed_label] the construction
    variables of the block (object vs arc positions), which receive
    active-domain enumerators when no condition binds them. *)

val pp_step : Format.formatter -> step -> unit

(** {1 Differential-evaluation classification}

    Whether a block's plan can be maintained by per-driver re-derivation
    under a data delta (see {!Dexec}): the plan must open with an
    unbound scan of a {e driving} collection and every later step must
    be anchored — reading only forward from {e driver-derived} objects,
    so the backward closure of a data delta finds every driver whose
    rows it can change.  Aggregates, negation, active-domain
    enumerators, opaque externs, constant-anchored data reads and cross
    products fall back, with the reason recorded. *)

type delta_class =
  | D_static  (** no generators (or, for nested blocks: fully anchored) *)
  | D_driven of string * string  (** driving collection, driver variable *)
  | D_fallback of string  (** why the block must fully re-evaluate *)

val block_has_agg : Ast.block -> bool
(** Whether any LINK target of the block is an aggregate. *)

val anchored_steps :
  pure:(string -> bool) ->
  bound:VSet.t ->
  der:VSet.t ->
  step list ->
  (VSet.t * VSet.t, string) result
(** Fold the anchoring check over a plan: [bound] are all bound
    variables, [der ⊆ bound] the driver-derived ones (data reads may
    only anchor on these).  Returns the extended [(bound, der)] pair —
    the seed for classifying nested blocks — or the first reason the
    plan cannot delta-evaluate. *)

val delta_class :
  pure:(string -> bool) ->
  ?bound:VSet.t ->
  ?der:VSet.t ->
  top:bool ->
  Ast.block ->
  step list ->
  delta_class
(** Classify one block given its plan.  [pure] says whether an external
    predicate is a pure function of its arguments
    ({!Builtins.pure_extern}); [bound] holds ancestor bindings (nested
    blocks) and [der] (default [bound]) the driver-derived subset;
    [top] marks a top-level block (only those carry a driver). *)
