(* Streaming physical-operator execution of StruQL.

   Each plan step becomes a pipelined operator over an [env Seq.t];
   rows flow operator-to-operator depth-first, so the pull order is
   exactly the row order the eager evaluator's per-step
   [List.concat_map] produces.  Construction consumes the stream
   row-by-row through {!Eval.construct_row}, giving the identical
   mutation sequence — and therefore identical Skolem oids — as
   {!Eval.run}.  Two situations force materialization of a block's
   relation: nested blocks (they re-consume the parent rows, and the
   parent's construction must fully precede theirs), and [into == g]
   (construction would mutate the graph the pipeline is still
   scanning). *)

open Sgraph

(* --- Access-path classification --- *)

type access =
  | Coll_scan of string
  | Coll_probe of string
  | Extern_filter of string
  | Edge_out
  | Edge_by_label of string option
  | Edge_in
  | Edge_scan
  | Path_walk
  | Path_scan
  | Filter
  | Bind_eq
  | In_scan
  | Anti_join
  | Domain_objects
  | Domain_labels

let pp_access ppf = function
  | Coll_scan c -> Fmt.pf ppf "coll scan %s" c
  | Coll_probe c -> Fmt.pf ppf "coll probe %s" c
  | Extern_filter n -> Fmt.pf ppf "extern %s" n
  | Edge_out -> Fmt.string ppf "edge index: out-edges"
  | Edge_by_label (Some l) -> Fmt.pf ppf "edge index: label extent %S" l
  | Edge_by_label None -> Fmt.string ppf "edge index: label extent (runtime)"
  | Edge_in -> Fmt.string ppf "edge index: in-edges"
  | Edge_scan -> Fmt.string ppf "edge scan"
  | Path_walk -> Fmt.string ppf "path walk"
  | Path_scan -> Fmt.string ppf "path scan"
  | Filter -> Fmt.string ppf "filter"
  | Bind_eq -> Fmt.string ppf "bind ="
  | In_scan -> Fmt.string ppf "list scan"
  | Anti_join -> Fmt.string ppf "anti-join"
  | Domain_objects -> Fmt.string ppf "domain: objects"
  | Domain_labels -> Fmt.string ppf "domain: labels"

let access_uses_index = function
  | Coll_probe _ | Edge_out | Edge_by_label _ | Edge_in | Path_walk -> true
  | Coll_scan _ | Extern_filter _ | Edge_scan | Path_scan | Filter | Bind_eq
  | In_scan | Anti_join | Domain_objects | Domain_labels ->
    false

(* Mirrors the runtime dispatch of [Eval.exec_edge] / [exec_path] /
   [exec_cond]: boundness at this point in the plan decides the access
   path, so the classification is static. *)
let classify bound (s : Plan.step) : access =
  match s with
  | Plan.Domain_obj _ -> Domain_objects
  | Plan.Domain_label _ -> Domain_labels
  | Plan.Exec c ->
    (match c with
     | Plan.CC_not _ -> Anti_join
     | Plan.CC_coll (name, t) ->
       if Plan.term_bound bound t then Coll_probe name else Coll_scan name
     | Plan.CC_extern (name, _) -> Extern_filter name
     | Plan.CC_edge (x, l, y) ->
       if Plan.term_bound bound x then Edge_out
       else if Plan.label_bound bound l then
         Edge_by_label
           (match l with Ast.L_const s -> Some s | Ast.L_var _ -> None)
       else if Plan.term_bound bound y then Edge_in
       else Edge_scan
     | Plan.CC_path (x, _, _, _) ->
       if Plan.term_bound bound x then Path_walk else Path_scan
     | Plan.CC_cmp (Ast.Eq, a, b) ->
       if Plan.term_bound bound a && Plan.term_bound bound b then Filter
       else Bind_eq
     | Plan.CC_cmp _ -> Filter
     | Plan.CC_in (t, _) ->
       if Plan.term_bound bound t then Filter else In_scan)

let vset_of_list vs =
  List.fold_left (fun s v -> Plan.VSet.add v s) Plan.VSet.empty vs

let vset_add_binds vs step =
  List.fold_left (fun s v -> Plan.VSet.add v s) vs (Plan.step_binds step)

(* --- Static plans (EXPLAIN) --- *)

type op_plan = {
  op_step : Plan.step;
  op_access : access;
  op_est_fanout : float;
  op_est_rows : float;
}

type block_plan = {
  bp_path : string;
  bp_steps : op_plan list;
  bp_nested : block_plan list;
}

type query_plan = {
  qp_strategy : Plan.strategy;
  qp_blocks : block_plan list;
}

let rec plan_block st ~registry ~strategy g bound path (b : Ast.block) =
  let needed_obj, needed_label = Eval.construction_needs b in
  let steps =
    Plan.plan ~strategy ~registry g ~bound ~needed_obj ~needed_label b.where
  in
  let _, _, rev_ops =
    List.fold_left
      (fun (vs, card, acc) step ->
        let fanout =
          match step with
          | Plan.Exec c -> fst (Plan.estimate st vs c)
          | Plan.Domain_obj _ -> st.Plan.n_objects
          | Plan.Domain_label _ -> st.Plan.n_labels
        in
        let card' = Float.max 0.01 (card *. fanout) in
        let op =
          {
            op_step = step;
            op_access = classify vs step;
            op_est_fanout = fanout;
            op_est_rows = card';
          }
        in
        (vset_add_binds vs step, card', op :: acc))
      (vset_of_list bound, 1., [])
      steps
  in
  let bound' =
    Ast.dedup (bound @ List.concat_map (fun s -> Plan.step_binds s) steps)
  in
  {
    bp_path = path;
    bp_steps = List.rev rev_ops;
    bp_nested =
      List.mapi
        (fun i n ->
          plan_block st ~registry ~strategy g bound'
            (path ^ "." ^ string_of_int (i + 1))
            n)
        b.nested;
  }

let plan_query ?(options = Eval.default_options) g (q : Ast.query) =
  if options.Eval.validate then Check.validate_exn q;
  let st = Plan.stats_of_graph g in
  {
    qp_strategy = options.Eval.strategy;
    qp_blocks =
      List.mapi
        (fun i b ->
          plan_block st ~registry:options.Eval.registry
            ~strategy:options.Eval.strategy g []
            (string_of_int (i + 1))
            b)
        q.blocks;
  }

let strategy_name = function
  | Plan.Naive -> "naive"
  | Plan.Heuristic -> "heuristic"
  | Plan.Cost_based -> "cost-based"

let pp_est ppf r =
  if r >= 10. then Fmt.pf ppf "%.0f" r else Fmt.pf ppf "%.1f" r

let rec pp_block_plan ppf bp =
  Fmt.pf ppf "block %s" bp.bp_path;
  List.iter
    (fun op ->
      Fmt.pf ppf "@,  -> %a  [%a]  (est rows %a)" Plan.pp_step op.op_step
        pp_access op.op_access pp_est op.op_est_rows)
    bp.bp_steps;
  List.iter (fun n -> Fmt.pf ppf "@,%a" pp_block_plan n) bp.bp_nested

let pp_query_plan ppf qp =
  Fmt.pf ppf "@[<v>QUERY PLAN (strategy: %s)" (strategy_name qp.qp_strategy);
  List.iter (fun bp -> Fmt.pf ppf "@,%a" pp_block_plan bp) qp.qp_blocks;
  Fmt.pf ppf "@]"

let explain ?options g q = Fmt.str "%a" pp_query_plan (plan_query ?options g q)

(* --- Runtime profiles (EXPLAIN ANALYZE) --- *)

type op_stats = {
  os_step : Plan.step;
  os_access : access;
  mutable os_rows_in : int;
  mutable os_rows_out : int;
  mutable os_max_batch : int;
  mutable os_time : float;
  mutable os_timed : bool;
}

type block_profile = {
  bpr_path : string;
  bpr_ops : op_stats list;
  mutable bpr_rows : int;
}

type profile = {
  prf_strategy : Plan.strategy;
  mutable prf_blocks : block_profile list;
  mutable prf_rows : int;
  mutable prf_peak_live : int;
  mutable prf_time : float;
  mutable prf_kernel_freezes : int;
  mutable prf_kernel_hits : int;
  mutable prf_kernel_misses : int;
  mutable prf_shards_scanned : int;
  mutable prf_shards_pruned : int;
  mutable prf_shard_kernel : (string * Graph.kernel_counters) list;
  (* differential-evaluation observability (Delta-StruQL): how many
     blocks the delta engine could maintain incrementally vs the
     fallback reasons, and — when a profile is threaded through an
     actual delta cycle — the binding rows deltas consumed/produced *)
  mutable prf_delta_blocks : int;
  mutable prf_delta_fallback : (string * string) list;  (* path, reason *)
  mutable prf_delta_rows_in : int;
  mutable prf_delta_rows_out : int;
      (* per-shard kernel activity during the run, shards in context
         order, only those with any *)
}

let profile_steps p =
  List.fold_left (fun n b -> n + List.length b.bpr_ops) 0 p.prf_blocks

let profile_rows_out p =
  List.fold_left
    (fun n b -> List.fold_left (fun n o -> n + o.os_rows_out) n b.bpr_ops)
    0 p.prf_blocks

let profile_max_batch p =
  List.fold_left
    (fun m b -> List.fold_left (fun m o -> max m o.os_max_batch) m b.bpr_ops)
    0 p.prf_blocks

let pp_op_stats ppf os =
  Fmt.pf ppf "-> %a  [%a]  (in=%d out=%d batch<=%d%t)" Plan.pp_step os.os_step
    pp_access os.os_access os.os_rows_in os.os_rows_out os.os_max_batch
    (fun ppf ->
      if os.os_timed then Fmt.pf ppf " time=%.3fms" (os.os_time *. 1000.))

let pp_profile ppf p =
  Fmt.pf ppf "@[<v>EXPLAIN ANALYZE (strategy: %s)" (strategy_name p.prf_strategy);
  List.iter
    (fun bp ->
      Fmt.pf ppf "@,block %s  (rows=%d)" bp.bpr_path bp.bpr_rows;
      List.iter (fun os -> Fmt.pf ppf "@,  %a" pp_op_stats os) bp.bpr_ops)
    p.prf_blocks;
  Fmt.pf ppf "@,total: rows=%d operators=%d peak live bindings=%d%t@]"
    p.prf_rows (profile_steps p) p.prf_peak_live (fun ppf ->
      if p.prf_time > 0. then Fmt.pf ppf " elapsed=%.3fms" (p.prf_time *. 1000.);
      if p.prf_kernel_freezes > 0 || p.prf_kernel_hits > 0
         || p.prf_kernel_misses > 0
      then
        Fmt.pf ppf "@,kernel: freezes=%d memo hits=%d misses=%d"
          p.prf_kernel_freezes p.prf_kernel_hits p.prf_kernel_misses;
      if p.prf_shards_scanned > 0 || p.prf_shards_pruned > 0 then
        Fmt.pf ppf "@,shards: scanned=%d pruned=%d" p.prf_shards_scanned
          p.prf_shards_pruned;
      List.iter
        (fun (name, k) ->
          Fmt.pf ppf "@,shard %s kernel: freezes=%d memo hits=%d misses=%d"
            name k.Graph.freezes k.Graph.hits k.Graph.misses)
        p.prf_shard_kernel;
      if p.prf_delta_blocks > 0 || p.prf_delta_fallback <> [] then begin
        Fmt.pf ppf "@,delta: evaluable blocks=%d fallback=%d"
          p.prf_delta_blocks
          (List.length p.prf_delta_fallback);
        if p.prf_delta_rows_in > 0 || p.prf_delta_rows_out > 0 then
          Fmt.pf ppf " rows in=%d out=%d" p.prf_delta_rows_in
            p.prf_delta_rows_out;
        List.iter
          (fun (path, why) ->
            Fmt.pf ppf "@,  block %s falls back: %s" path why)
          (List.rev p.prf_delta_fallback)
      end)

(* --- Live-binding accounting --- *)

(* Counts binding rows buffered in the pipeline: the per-row output
   batch of each operator (released as downstream pulls each row) plus
   any materialized parent relations.  Its high-water mark is the
   streaming analogue of the eager evaluator's [max_intermediate]. *)
type live = { mutable cur : int; mutable peak : int }

let live_alloc lv n =
  lv.cur <- lv.cur + n;
  if lv.cur > lv.peak then lv.peak <- lv.cur

let live_release lv n = lv.cur <- lv.cur - n

(* --- The pipeline --- *)

let new_op_stats bound step =
  {
    os_step = step;
    os_access = classify bound step;
    os_rows_in = 0;
    os_rows_out = 0;
    os_max_batch = 0;
    os_time = 0.;
    os_timed = false;
  }

let ops_of_steps bound steps =
  let _, rev =
    List.fold_left
      (fun (vs, acc) step ->
        (vset_add_binds vs step, new_op_stats vs step :: acc))
      (vset_of_list bound, [])
      steps
  in
  List.rev rev

(* One physical operator: expand each input row with [Eval.exec_step].
   The expansion batch is eager (as in the eager engine), but only one
   batch per operator is ever live — [Seq.concat_map] pulls rows
   depth-first, which is exactly the row order of the eager engine's
   step-by-step [List.concat_map]. *)
let op_seq g reg ~timed live (os : op_stats) (input : Eval.env Seq.t) :
    Eval.env Seq.t =
  if timed then os.os_timed <- true;
  Seq.concat_map
    (fun env ->
      os.os_rows_in <- os.os_rows_in + 1;
      let outs =
        if timed then begin
          let t0 = Sys.time () in
          let r = Eval.exec_step g reg env os.os_step in
          os.os_time <- os.os_time +. (Sys.time () -. t0);
          r
        end
        else Eval.exec_step g reg env os.os_step
      in
      let k = List.length outs in
      os.os_rows_out <- os.os_rows_out + k;
      if k > os.os_max_batch then os.os_max_batch <- k;
      live_alloc live k;
      Seq.map
        (fun e ->
          live_release live 1;
          e)
        (List.to_seq outs))
    input

let fold_pipeline g reg ~timed live ops input =
  List.fold_left (fun s op -> op_seq g reg ~timed live op s) input ops

(* --- Sharded evaluation --- *)

(* One shard of a partitioned repository, as the evaluator sees it: a
   graph sharing oids with the mediated union, plus the collections it
   is home to.  [Mediator.Warehouse] builds these from a pinned
   {!Repository.Shard} snapshot; the evaluator itself has no dependency
   on the repository layer. *)
type shard_view = {
  sv_name : string;
  sv_graph : Graph.t;
  sv_collections : string list;
}

type shard_ctx = {
  sc_shards : shard_view list;
  sc_union : Graph.t;  (** must be the graph the query runs against *)
  sc_jobs : int;  (** domains for per-shard scans; [1] = sequential *)
}

let shard_enabled = ref true

(** Kill switch for differential (delta) evaluation: when cleared,
    {!Dexec}-driven pipelines ([strudel watch], warehouse delta
    refresh) fall back to cold full builds.  The streaming evaluator
    itself always runs full — the switch is honoured by the
    differential layer above it. *)
let delta_enabled = ref true

(* Whether a compiled condition is safe to evaluate from several
   domains at once: path conditions go through the kernel's memo tables
   and external predicates run arbitrary code, so both force the
   sequential lane; everything else only reads the graph. *)
let rec ccond_parallel_safe = function
  | Plan.CC_path _ | Plan.CC_extern _ -> false
  | Plan.CC_not c -> ccond_parallel_safe c
  | Plan.CC_coll _ | Plan.CC_edge _ | Plan.CC_cmp _ | Plan.CC_in _ -> true

let step_parallel_safe = function
  | Plan.Exec c -> ccond_parallel_safe c
  | Plan.Domain_obj _ | Plan.Domain_label _ -> true

(* --- Whole-query evaluation --- *)

type rctx = {
  g : Graph.t;
  sink : Eval.cons;
  registry : Builtins.registry;
  strategy : Plan.strategy;
  timed : bool;
  live : live;
  materialize_all : bool;
      (* [into == g]: stage 1 would scan the graph construction is
         mutating, so fall back to the eager engine's materialize-then-
         construct discipline per block *)
  shards : shard_ctx option;
  blocks_rev : block_profile list ref;
  prof : profile;
}

(* A top-level block whose plan is driven by an unbound collection scan
   can be sharded: the driving scan runs per shard (only over shards
   home to the collection), the remaining operators run against the
   union, and the per-member row chunks are merged back by the member's
   position in the union extent — which restores exactly the row order
   of the unsharded pipeline, so construction performs the identical
   mutation sequence. *)
let shardable rctx ~top steps (b : Ast.block) =
  ignore b;
  match rctx.shards with
  | Some sc when top && !shard_enabled && sc.sc_union == rctx.g -> (
    match steps with
    | Plan.Exec (Plan.CC_coll (cname, Ast.T_var v)) :: rest ->
      Some (sc, cname, v, rest)
    | _ -> None)
  | _ -> None

(* Stage 1 of a sharded block: returns the merged binding rows (in
   unsharded order) after updating the driving scan's [op_stats]. *)
let sharded_rows rctx (sc : shard_ctx) cname v bound steps ops =
  let union_ext = Graph.collection rctx.g cname in
  let pos = Hashtbl.create (List.length union_ext * 2 + 1) in
  List.iteri (fun i o -> Hashtbl.replace pos (Oid.id o) i) union_ext;
  let relevant =
    List.filter (fun sv -> List.mem cname sv.sv_collections) sc.sc_shards
  in
  let exts =
    List.map (fun sv -> Graph.collection sv.sv_graph cname) relevant
  in
  let total = List.fold_left (fun n e -> n + List.length e) 0 exts in
  let covered =
    total = List.length union_ext
    && List.for_all
         (List.for_all (fun o -> Hashtbl.mem pos (Oid.id o)))
         exts
  in
  if not covered then None
  else begin
    rctx.prof.prf_shards_scanned <-
      rctx.prof.prf_shards_scanned + List.length relevant;
    rctx.prof.prf_shards_pruned <-
      rctx.prof.prf_shards_pruned
      + (List.length sc.sc_shards - List.length relevant);
    let scan_op, rest_ops =
      match ops with o :: rest -> (o, rest) | [] -> assert false
    in
    (* evaluate one shard's extent with a given operator list; the
       chunks come back tagged with union-extent positions, ascending *)
    let eval_ext ~live rest_ops ext =
      List.concat_map
        (fun o ->
          let p = Hashtbl.find pos (Oid.id o) in
          let env0 = Eval.Env.add v (Eval.B_target (Graph.N o)) Eval.Env.empty in
          let rows =
            List.of_seq
              (fold_pipeline rctx.g rctx.registry ~timed:rctx.timed live
                 rest_ops (Seq.return env0))
          in
          List.map (fun r -> (p, r)) rows)
        ext
    in
    let record_scan ext =
      scan_op.os_rows_in <- scan_op.os_rows_in + 1;
      let k = List.length ext in
      scan_op.os_rows_out <- scan_op.os_rows_out + k;
      if k > scan_op.os_max_batch then scan_op.os_max_batch <- k
    in
    let jobs = min sc.sc_jobs (List.length exts) in
    let tagged =
      if jobs > 1 && List.for_all step_parallel_safe (List.tl steps) then begin
        (* one domain per slice of shards, each with private op_stats
           (merged below) and live accounting; the union graph is only
           read — path/extern steps were excluded above *)
        let exts_a = Array.of_list exts in
        let n = Array.length exts_a in
        let results = Array.make n [] in
        let wstats = Array.init jobs (fun _ -> ops_of_steps bound steps) in
        let wlive = Array.init jobs (fun _ -> { cur = 0; peak = 0 }) in
        (* sanitizer identity: field j < n covers [results.(j)] (each
           written by exactly one worker, striped j mod jobs), field
           n+w covers worker w's private [wstats]/[wlive]; the
           fork/join edges order all of them before the merge below *)
        let ds_scan = Dsan.alloc ~name:"Exec.shard_scan" in
        let slice w () =
          let wrest = List.tl wstats.(w) in
          let j = ref w in
          while !j < n do
            Dsan.yield ~site:__POS__;
            Dsan.write ~site:__POS__ ds_scan !j;
            results.(!j) <- eval_ext ~live:wlive.(w) wrest exts_a.(!j);
            j := !j + jobs
          done;
          Dsan.write ~site:__POS__ ds_scan (n + w)
        in
        let workers =
          List.init (jobs - 1) (fun w ->
              let tok = Dsan.fork () in
              let d =
                Domain.spawn (fun () ->
                    Dsan.born tok;
                    Fun.protect
                      ~finally:(fun () -> Dsan.dying tok)
                      (slice (w + 1)))
              in
              (d, tok))
        in
        slice 0 ();
        List.iter
          (fun (d, tok) ->
            Domain.join d;
            Dsan.joined tok)
          workers;
        if Dsan.enabled () then
          for k = 0 to n + jobs - 1 do
            Dsan.read ~site:__POS__ ds_scan k
          done;
        Array.iter
          (fun wops ->
            List.iter2
              (fun o wo ->
                o.os_rows_in <- o.os_rows_in + wo.os_rows_in;
                o.os_rows_out <- o.os_rows_out + wo.os_rows_out;
                o.os_max_batch <- max o.os_max_batch wo.os_max_batch;
                o.os_time <- o.os_time +. wo.os_time)
              rest_ops (List.tl wops))
          wstats;
        Array.iter
          (fun lv -> if lv.peak > rctx.live.peak then rctx.live.peak <- lv.peak)
          wlive;
        List.iter record_scan exts;
        Array.to_list results
      end
      else
        List.map
          (fun ext ->
            record_scan ext;
            eval_ext ~live:rctx.live rest_ops ext)
          exts
    in
    let merged =
      List.fold_left
        (List.merge (fun (a, _) (b, _) -> compare (a : int) b))
        [] tagged
    in
    Some (List.map snd merged)
  end

let rec run_block rctx ~top path bound (inputs : Eval.env Seq.t) (b : Ast.block)
    =
  let needed_obj, needed_label = Eval.construction_needs b in
  let steps =
    Plan.plan ~strategy:rctx.strategy ~registry:rctx.registry rctx.g ~bound
      ~needed_obj ~needed_label b.where
  in
  let ops = ops_of_steps bound steps in
  let bpr = { bpr_path = path; bpr_ops = ops; bpr_rows = 0 } in
  rctx.blocks_rev := bpr :: !(rctx.blocks_rev);
  (match
     Plan.delta_class ~pure:Builtins.pure_extern
       ~bound:(List.fold_left (fun s v -> Plan.VSet.add v s) Plan.VSet.empty bound)
       ~top b steps
   with
   | Plan.D_static | Plan.D_driven _ ->
     rctx.prof.prf_delta_blocks <- rctx.prof.prf_delta_blocks + 1
   | Plan.D_fallback why ->
     rctx.prof.prf_delta_fallback <- (path, why) :: rctx.prof.prf_delta_fallback);
  let groups = Eval.new_groups () in
  let sharded =
    match shardable rctx ~top steps b with
    | Some (sc, cname, v, _rest) ->
      sharded_rows rctx sc cname v bound steps ops
    | None -> None
  in
  (match sharded with
   | Some rows ->
     (* already materialized in unsharded row order: construct, then
        nested blocks re-consume the relation as usual *)
     let n = List.length rows in
     bpr.bpr_rows <- n;
     live_alloc rctx.live n;
     List.iter (fun env -> Eval.construct_row rctx.sink groups b env) rows;
     Eval.construct_flush rctx.sink groups;
     if b.nested <> [] then begin
       let bound' =
         Ast.dedup (bound @ List.concat_map (fun s -> Plan.step_binds s) steps)
       in
       List.iteri
         (fun i nested ->
           run_block rctx ~top:false
             (path ^ "." ^ string_of_int (i + 1))
             bound' (List.to_seq rows) nested)
         b.nested
     end;
     live_release rctx.live n
   | None ->
     let stream =
       fold_pipeline rctx.g rctx.registry ~timed:rctx.timed rctx.live ops inputs
     in
     if b.nested = [] && not rctx.materialize_all then begin
       (* fully pipelined: construct each row as it is pulled *)
       Seq.iter
         (fun env ->
           bpr.bpr_rows <- bpr.bpr_rows + 1;
           Eval.construct_row rctx.sink groups b env)
         stream;
       Eval.construct_flush rctx.sink groups
     end
     else begin
       (* nested blocks re-consume the relation, and the parent's
          construction must fully precede theirs for oid-order fidelity *)
       let rows = List.of_seq stream in
       let n = List.length rows in
       bpr.bpr_rows <- n;
       live_alloc rctx.live n;
       List.iter (fun env -> Eval.construct_row rctx.sink groups b env) rows;
       Eval.construct_flush rctx.sink groups;
       let bound' =
         Ast.dedup (bound @ List.concat_map (fun s -> Plan.step_binds s) steps)
       in
       List.iteri
         (fun i nested ->
           run_block rctx ~top:false
             (path ^ "." ^ string_of_int (i + 1))
             bound' (List.to_seq rows) nested)
         b.nested;
       live_release rctx.live n
     end);
  rctx.prof.prf_rows <- rctx.prof.prf_rows + bpr.bpr_rows

let run_with_profile ?(options = Eval.default_options) ?(timed = false) ?scope
    ?shards ?into g (q : Ast.query) =
  if options.Eval.validate then Check.validate_exn q;
  let out =
    match into with Some g' -> g' | None -> Graph.create ~name:q.output ()
  in
  let scope = match scope with Some s -> s | None -> Skolem.create () in
  let prof =
    {
      prf_strategy = options.Eval.strategy;
      prf_blocks = [];
      prf_rows = 0;
      prf_peak_live = 0;
      prf_time = 0.;
      prf_kernel_freezes = 0;
      prf_kernel_hits = 0;
      prf_kernel_misses = 0;
      prf_shards_scanned = 0;
      prf_shards_pruned = 0;
      prf_shard_kernel = [];
      prf_delta_blocks = 0;
      prf_delta_fallback = [];
      prf_delta_rows_in = 0;
      prf_delta_rows_out = 0;
    }
  in
  let shard_k0 =
    match shards with
    | None -> []
    | Some sc ->
      List.map
        (fun sv -> (sv, Graph.kernel_counters sv.sv_graph))
        sc.sc_shards
  in
  (* Read-only data graph: freeze so path conditions and attribute
     probes run on the compiled kernel.  When constructing into the
     data graph itself every mutation would invalidate the snapshot
     immediately, so skip the build. *)
  let k0 = Graph.kernel_counters g in
  if not (out == g) then ignore (Graph.freeze g);
  let rctx =
    {
      g;
      sink = { Eval.out; scope; emit = None };
      registry = options.Eval.registry;
      strategy = options.Eval.strategy;
      timed;
      live = { cur = 0; peak = 0 };
      materialize_all = out == g;
      shards;
      blocks_rev = ref [];
      prof;
    }
  in
  let t0 = Sys.time () in
  List.iteri
    (fun i b ->
      run_block rctx ~top:true
        (string_of_int (i + 1))
        [] (Seq.return Eval.Env.empty) b)
    q.blocks;
  prof.prf_time <- Sys.time () -. t0;
  prof.prf_peak_live <- rctx.live.peak;
  prof.prf_blocks <- List.rev !(rctx.blocks_rev);
  let k1 = Graph.kernel_counters g in
  prof.prf_kernel_freezes <- k1.Graph.freezes - k0.Graph.freezes;
  prof.prf_kernel_hits <- k1.Graph.hits - k0.Graph.hits;
  prof.prf_kernel_misses <- k1.Graph.misses - k0.Graph.misses;
  prof.prf_shard_kernel <-
    List.filter_map
      (fun (sv, (sk0 : Graph.kernel_counters)) ->
        let sk1 = Graph.kernel_counters sv.sv_graph in
        let d =
          {
            Graph.freezes = sk1.Graph.freezes - sk0.Graph.freezes;
            hits = sk1.Graph.hits - sk0.Graph.hits;
            misses = sk1.Graph.misses - sk0.Graph.misses;
          }
        in
        if d.Graph.freezes = 0 && d.Graph.hits = 0 && d.Graph.misses = 0 then
          None
        else Some (sv.sv_name, d))
      shard_k0;
  (out, prof)

let run ?options ?scope ?shards ?into g q =
  fst (run_with_profile ?options ?scope ?shards ?into g q)

let run_string ?options ?scope ?into g src =
  let registry =
    match options with Some o -> o.Eval.registry | None -> Builtins.default
  in
  let q = Parser.parse ~registry src in
  run ?options ?scope ?into g q

(* --- Stage 1 alone --- *)

let pipeline_of_conds ~options ~timed ~env ~bound ~needed_obj ~needed_label g
    conds =
  (* bare condition pipelines (click-time expansion, lint) never mutate
     the graph they query *)
  ignore (Graph.freeze g);
  let bound =
    Ast.dedup (bound @ List.map fst (Eval.Env.bindings env))
  in
  let steps =
    Plan.plan ~strategy:options.Eval.strategy ~registry:options.Eval.registry g
      ~bound ~needed_obj ~needed_label conds
  in
  let live = { cur = 0; peak = 0 } in
  let ops = ops_of_steps bound steps in
  let stream =
    fold_pipeline g options.Eval.registry ~timed live ops (Seq.return env)
  in
  (stream, ops, live)

let bindings_seq ?(options = Eval.default_options) ?(env = Eval.Env.empty)
    ?(bound = []) ?(needed_obj = []) ?(needed_label = []) g conds =
  let s, _, _ =
    pipeline_of_conds ~options ~timed:false ~env ~bound ~needed_obj
      ~needed_label g conds
  in
  s

let bindings_profiled ?(options = Eval.default_options) ?(timed = false)
    ?(env = Eval.Env.empty) ?(bound = []) ?(needed_obj = [])
    ?(needed_label = []) g conds =
  let s, ops, live =
    pipeline_of_conds ~options ~timed ~env ~bound ~needed_obj ~needed_label g
      conds
  in
  let rows = List.of_seq s in
  (rows, ops, live.peak)

let bindings ?options ?env ?bound ?needed_obj ?needed_label g conds =
  let rows, _, _ =
    bindings_profiled ?options ?env ?bound ?needed_obj ?needed_label g conds
  in
  rows
