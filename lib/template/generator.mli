(** The HTML generator (§2.5, §4).

    Produces the browsable Web site from a site graph and a set of HTML
    templates.  For every internal object the generator selects a
    template: (1) an object-specific template, (2) the value of the
    object's [HTML-template] attribute — so the {e data} can choose the
    presentation — or (3) the template of a collection the object
    belongs to; objects with none get a generic property-sheet
    rendering.

    The choice to realize internal objects as pages or as page
    components is delayed until generation: an object referenced with
    the default format becomes a separate page (a link to it is
    emitted); the [EMBED] directive embeds the object's HTML value in
    the referencing page instead. *)

open Sgraph

exception Generator_error of string

type template_set = {
  by_object : (string * string) list;
      (** object name → template text (object-specific templates) *)
  by_collection : (string * string) list;
      (** collection name → template text *)
  named : (string * string) list;
      (** template name → text, for the [HTML-template] attribute *)
}

val empty_templates : template_set

type page = {
  obj : Oid.t;
  url : string;
  title : string;
  html : string;  (** the full page, wrapped in scaffold if needed *)
  body : string;  (** the template's output alone *)
}

type site = {
  pages : page list;
  graph : Graph.t;
}

val slug : string -> string
(** URL-safe name fragment used for page file names. *)

(** {1 Read tracing}

    A rendered page's bytes are a function of the template set, the
    page object's name and a set of graph reads.  [render_page_full
    ~trace_reads:true] records each read with a hash of its result so a
    render cache can later re-verify the trace against a changed graph
    and reuse the page iff every read still returns the same answer.
    Node hashes use {e names}, not oids, so traces survive rebuilds
    that allocate fresh oids. *)

type read =
  | R_attr of string * string * int  (** node name, label, result hash *)
  | R_edges of string * int          (** node name, out-edge list hash *)
  | R_colls of string * int          (** node name, collection-list hash *)
  | R_file of string * int           (** path, loaded-content hash *)

val hash_targets : Graph.target list -> int
val hash_edges : (string * Graph.target) list -> int
val hash_strings : string list -> int
val hash_file : string option -> int

type compiled
(** Template-compilation cache; share one per rendering thread of
    control (e.g. one per domain in the parallel render pool). *)

val new_compiled : unit -> compiled

val default_anchor : Graph.t -> Oid.t -> string
(** Anchor text for a link to an object: its [title]/[name]/... if
    present, else the object name (HTML-escaped). *)

val fault_marker : string
(** Deterministic marker comment opening every placeholder body. *)

val placeholder_page : url:string -> cause:string -> Oid.t -> page
(** The error page emitted in place of a page whose render failed under
    [~on_error:Degrade]. *)

val is_placeholder : page -> bool
(** Whether the page is a degraded-build placeholder (so caches and the
    incremental rebuilder never reuse one as a real page). *)

val generate :
  ?file_loader:(string -> string option) ->
  ?templates:template_set ->
  ?on_error:Fault.on_error ->
  ?fault:Fault.ctx ->
  Graph.t ->
  roots:Oid.t list ->
  site
(** Generate the browsable site.  [roots] are realized as pages up
    front; any object referenced with the default (link) format from an
    emitted page also becomes a page, transitively.  [file_loader]
    supplies the contents of text/HTML file values for inlining.

    With [~on_error:Degrade], a failed (or injected-faulty) page render
    yields a {!placeholder_page} and a recorded [Render] fault instead
    of aborting; objects the failed render linked before failing still
    become pages, so degraded builds normally run through the render
    pool's wave loop, which isolates each page. *)

type rendered = {
  r_page : page;
  r_reads : read list;
      (** the page's read set with result hashes, in read order (empty
          unless rendered with [~trace_reads:true]) *)
  r_refs : Oid.t list;
      (** internal objects the page links to, in first-reference order —
          the demand edges page discovery follows *)
}

val render_page_full :
  ?file_loader:(string -> string option) ->
  ?templates:template_set ->
  ?compiled:compiled ->
  ?trace_reads:bool ->
  Graph.t -> Oid.t -> rendered
(** Render a single object's page without materializing the rest of the
    site — the rendering primitive of the click-time evaluator, the
    incremental rebuilder and the parallel render pool.  Links to
    internal objects get their deterministic URL ([slug name ^
    ".html"]) but the linked pages are not generated. *)

val render_page :
  ?file_loader:(string -> string option) ->
  ?templates:template_set ->
  Graph.t -> Oid.t -> page
(** [render_page_full] without tracing, returning just the page. *)

val page_count : site -> int
val find_page : site -> string -> page option
val page_of_object : site -> Oid.t -> page option

val write_site : dir:string -> site -> unit
(** Write all pages below [dir] (created if missing). *)

val total_bytes : site -> int
