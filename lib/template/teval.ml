(** Evaluation of template expressions over a site graph.

    The HTML generator interprets an object's template, replacing
    template expressions by the HTML values of the object's attributes.
    Type-specific rules map atomic values to HTML (strings and numbers
    are embedded, PostScript files become links, images become [<img>],
    text/HTML files are inlined when a file loader is available).
    References to internal objects are delegated to the caller through
    [render_object]: by default they become links to the object's page;
    [EMBED] embeds the object's HTML value instead. *)

open Sgraph

type obj_mode =
  | Embed
  | Link_to of string option  (** anchor text override *)

type ctx = {
  graph : Graph.t;
  vars : (string * Graph.target) list;  (** SFOR bindings, innermost first *)
  render_object : ctx -> obj_mode -> Oid.t -> string;
  file_loader : string -> string option;
  on_read : (Oid.t -> string -> Graph.target list -> unit) option;
      (** read-set tracing hook: called on every attribute read the
          template evaluation performs, with the object, the attribute
          name and the full target list the read returned.  [None] (the
          common case) keeps the hot path free of tracing. *)
}

(* Every graph read of the evaluator funnels through here so a render
   cache can record the page's exact read set. *)
let read_attr ctx o seg =
  let targets = Graph.attr ctx.graph o seg in
  (match ctx.on_read with Some f -> f o seg targets | None -> ());
  targets

let escape_html s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- Attribute expressions --- *)

let eval_attr_expr ctx obj (ae : Tast.attr_expr) : Graph.target list =
  let start, segs =
    match ae with
    | seg :: rest when List.mem_assoc seg ctx.vars ->
      ([ List.assoc seg ctx.vars ], rest)
    | _ -> ([ Graph.N obj ], ae)
  in
  List.fold_left
    (fun targets seg ->
      List.concat_map
        (fun t ->
          match t with
          | Graph.N o -> read_attr ctx o seg
          | Graph.V _ -> [])
        targets)
    start segs

(* --- Ordering --- *)

let sort_key ctx (d : Tast.directives) t =
  match d.key with
  | Some ae -> (
      match t with
      | Graph.N o -> (
          match eval_attr_expr ctx o ae with
          | Graph.V v :: _ -> Some v
          | Graph.N o' :: _ -> Some (Value.String (Oid.name o'))
          | [] -> None)
      | Graph.V v -> Some v)
  | None -> (
      match t with
      | Graph.V v -> Some v
      | Graph.N o -> Some (Value.String (Oid.name o)))

let apply_order ctx (d : Tast.directives) targets =
  match d.order with
  | None -> targets
  | Some ord ->
    let cmp a b =
      let ka = sort_key ctx d a and kb = sort_key ctx d b in
      let c =
        match ka, kb with
        | Some va, Some vb -> (
            match Value.coerce_compare va vb with
            | Some c -> c
            | None ->
              String.compare
                (Value.to_display_string va)
                (Value.to_display_string vb))
        | Some _, None -> -1
        | None, Some _ -> 1
        | None, None -> 0
      in
      match ord with Tast.Ascend -> c | Tast.Descend -> -c
    in
    List.stable_sort cmp targets

(* --- Value rendering --- *)

let render_link ~href ~anchor = Printf.sprintf "<a href=\"%s\">%s</a>" href anchor

let anchor_of_value v = escape_html (Value.to_display_string v)

let render_value ctx ?(anchor : string option) (v : Value.t) =
  match v with
  | Value.Null -> ""
  | Value.Bool _ | Value.Int _ | Value.Float _ | Value.String _ ->
    escape_html (Value.to_display_string v)
  | Value.Url u ->
    render_link ~href:(escape_html u)
      ~anchor:(match anchor with Some a -> a | None -> escape_html u)
  | Value.File (Value.Image, p) ->
    Printf.sprintf "<img src=\"%s\" alt=\"%s\">" (escape_html p)
      (match anchor with Some a -> a | None -> "")
  | Value.File (Value.Text, p) -> (
      match ctx.file_loader p with
      | Some content -> "<pre>" ^ escape_html content ^ "</pre>"
      | None ->
        render_link ~href:(escape_html p)
          ~anchor:(match anchor with Some a -> a | None -> escape_html p))
  | Value.File (Value.Html_file, p) -> (
      match ctx.file_loader p with
      | Some content -> content  (* trusted HTML fragment *)
      | None ->
        render_link ~href:(escape_html p)
          ~anchor:(match anchor with Some a -> a | None -> escape_html p))
  | Value.File (_, p) ->
    (* PostScript and other binary files are never inlined *)
    render_link ~href:(escape_html p)
      ~anchor:(match anchor with Some a -> a | None -> escape_html p)

(* The anchor text requested by a LINK=tag directive, evaluated against
   the current object. *)
let eval_link_tag ctx obj = function
  | None -> None
  | Some (Tast.Tag_string s) -> Some (escape_html s)
  | Some (Tast.Tag_attr ae) -> (
      match eval_attr_expr ctx obj ae with
      | Graph.V v :: _ -> Some (anchor_of_value v)
      | Graph.N o :: _ -> Some (escape_html (Oid.name o))
      | [] -> None)

let render_target ctx obj (d : Tast.directives) (t : Graph.target) =
  match t with
  | Graph.V v -> (
      match d.format with
      | Tast.F_default | Tast.F_embed -> render_value ctx v
      | Tast.F_link tag ->
        let anchor = eval_link_tag ctx obj tag in
        (match v with
         | Value.Url _ | Value.File _ -> render_value ctx ?anchor v
         | v ->
           (* a LINK over a plain value renders the value itself *)
           (match anchor with
            | Some a -> a
            | None -> escape_html (Value.to_display_string v))))
  | Graph.N o -> (
      match d.format with
      | Tast.F_embed -> ctx.render_object ctx Embed o
      | Tast.F_default -> ctx.render_object ctx (Link_to None) o
      | Tast.F_link tag ->
        ctx.render_object ctx (Link_to (eval_link_tag ctx obj tag)) o)

(* --- Conditions --- *)

let operand_value ctx obj = function
  | Tast.A_const v -> `Val v
  | Tast.A_attr ae -> (
      match eval_attr_expr ctx obj ae with
      | [] -> `Val Value.Null
      | Graph.V v :: _ -> `Val v
      | Graph.N o :: _ -> `Node o)

let rec eval_cond ctx obj = function
  | Tast.C_nonnull ae -> (
      match eval_attr_expr ctx obj ae with
      | [] -> false
      | Graph.V Value.Null :: _ -> false
      | _ -> true)
  | Tast.C_and (a, b) -> eval_cond ctx obj a && eval_cond ctx obj b
  | Tast.C_or (a, b) -> eval_cond ctx obj a || eval_cond ctx obj b
  | Tast.C_not c -> not (eval_cond ctx obj c)
  | Tast.C_cmp (op, a, b) -> (
      let va = operand_value ctx obj a and vb = operand_value ctx obj b in
      match va, vb with
      | `Node o1, `Node o2 -> (
          match op with
          | Tast.Eq -> Oid.equal o1 o2
          | Tast.Ne -> not (Oid.equal o1 o2)
          | _ -> false)
      | `Node _, `Val _ | `Val _, `Node _ -> op = Tast.Ne
      | `Val v1, `Val v2 -> (
          match op, Value.coerce_compare v1 v2 with
          | Tast.Eq, Some 0 -> true
          | Tast.Eq, _ -> false
          | Tast.Ne, Some 0 -> false
          | Tast.Ne, _ -> true
          | Tast.Lt, Some c -> c < 0
          | Tast.Le, Some c -> c <= 0
          | Tast.Gt, Some c -> c > 0
          | Tast.Ge, Some c -> c >= 0
          | _, None -> false))

(* --- Template rendering --- *)

let rec render_nodes ctx obj (t : Tast.t) =
  String.concat "" (List.map (render_node ctx obj) t)

and render_node ctx obj = function
  | Tast.Text s -> s
  | Tast.Fmt (ae, d) ->
    let targets = apply_order ctx d (eval_attr_expr ctx obj ae) in
    let delim = match d.delim with Some s -> s | None -> " " in
    String.concat delim (List.map (render_target ctx obj d) targets)
  | Tast.Fmt_list (ae, d) ->
    let targets = apply_order ctx d (eval_attr_expr ctx obj ae) in
    if targets = [] then ""
    else
      "<ul>\n"
      ^ String.concat ""
          (List.map
             (fun t -> "<li>" ^ render_target ctx obj d t ^ "</li>\n")
             targets)
      ^ "</ul>"
  | Tast.If (c, then_, else_) ->
    if eval_cond ctx obj c then render_nodes ctx obj then_
    else render_nodes ctx obj else_
  | Tast.For (v, ae, d, body) ->
    let targets = apply_order ctx d (eval_attr_expr ctx obj ae) in
    let delim = match d.delim with Some s -> s | None -> "" in
    String.concat delim
      (List.map
         (fun t ->
           let ctx' = { ctx with vars = (v, t) :: ctx.vars } in
           render_nodes ctx' obj body)
         targets)

let render ctx (t : Tast.t) obj = render_nodes ctx obj t
