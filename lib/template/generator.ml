(** The HTML generator (§2.5, §4).

    Produces the browsable Web site from a site graph and a set of HTML
    templates.  For every internal object the generator selects a
    template: (1) an object-specific template, (2) the value of the
    object's [HTML-template] attribute, or (3) the template associated
    with a collection the object belongs to; objects with none get a
    generic property-sheet rendering.

    The choice to realize internal objects as pages or as page
    components is delayed until generation: an object referenced with
    the default format becomes a separate page (and a link to it is
    emitted); the [EMBED] directive embeds the object's HTML value in
    the referencing page instead. *)

open Sgraph

exception Generator_error of string

type template_set = {
  by_object : (string * string) list;
      (** object name → template text (object-specific templates) *)
  by_collection : (string * string) list;
      (** collection name → template text *)
  named : (string * string) list;
      (** template name → text, for the [HTML-template] attribute *)
}

let empty_templates = { by_object = []; by_collection = []; named = [] }

type page = {
  obj : Oid.t;
  url : string;
  title : string;
  html : string;  (** full page, wrapped *)
  body : string;  (** the template's output alone *)
}

type site = {
  pages : page list;
  graph : Graph.t;
}

(* --- URL assignment --- *)

let slug name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' ->
        Buffer.add_char buf c
      | ' ' | '.' | '/' -> Buffer.add_char buf '_'
      | _ -> ())
    name;
  let s = Buffer.contents buf in
  if s = "" then "page" else s

(* --- Read tracing (render-cache support) ---

   A page's bytes are a function of (a) the template set, (b) the
   page object's name, and (c) a set of graph reads: attribute lookups
   (template expressions, anchors, titles, template selection),
   out-edge enumerations (the generic property sheet), collection
   memberships (template selection) and file loads.  Each read is
   recorded together with a hash of its result, so a render cache can
   later re-verify the trace against a changed graph and reuse the page
   iff every read still returns the same answer (a verifying-trace
   cache in the build-system sense).  Nodes contribute their {e names}
   to hashes, not their oids, so traces survive rebuilds that allocate
   fresh oids. *)

type read =
  | R_attr of string * string * int  (** node name, label, result hash *)
  | R_edges of string * int          (** node name, out-edge list hash *)
  | R_colls of string * int          (** node name, collection-list hash *)
  | R_file of string * int           (** path, loaded-content hash *)

(* FNV-style combining: [Hashtbl.hash] truncates structured data after
   ~10 nodes, so lists are folded by hand (strings hash in full). *)
let mixh acc h = (acc * 0x01000193) lxor h land max_int

let hash_target = function
  | Graph.N o -> mixh 17 (Hashtbl.hash (Oid.name o))
  | Graph.V v ->
    mixh 23
      (mixh
         (Hashtbl.hash (Value.to_display_string v))
         (Hashtbl.hash (Value.kind_name v)))

let hash_targets ts =
  List.fold_left (fun acc t -> mixh acc (hash_target t)) 11 ts

let hash_edges es =
  List.fold_left
    (fun acc (l, t) -> mixh (mixh acc (Hashtbl.hash l)) (hash_target t))
    13 es

let hash_strings ss =
  List.fold_left (fun acc s -> mixh acc (Hashtbl.hash s)) 19 ss

let hash_file = function None -> 0 | Some s -> mixh 29 (Hashtbl.hash s)

(* --- Anchor text for links to internal objects --- *)

let anchor_attrs = [ "title"; "name"; "Name"; "label"; "Year"; "year" ]

(* [note] records the probed attributes (tracing must see the misses
   too: adding a [title] later must invalidate the page). *)
let default_anchor_noting note g o =
  let rec first = function
    | [] -> Teval.escape_html (Oid.name o)
    | a :: rest -> (
        let targets = Graph.attr g o a in
        (match note with
         | Some f -> f (R_attr (Oid.name o, a, hash_targets targets))
         | None -> ());
        let rec first_value = function
          | [] -> None
          | Graph.V v :: _ -> Some v
          | Graph.N _ :: tl -> first_value tl
        in
        match first_value targets with
        | Some v -> Teval.escape_html (Value.to_display_string v)
        | None -> first rest)
  in
  first anchor_attrs

let default_anchor g o = default_anchor_noting None g o

(* --- Template selection --- *)

type compiled = { cache : (string, Tast.t) Hashtbl.t }

let new_compiled () = { cache = Hashtbl.create 16 }

let compile_cached c key text =
  match Hashtbl.find_opt c.cache key with
  | Some t -> t
  | None ->
    let t = Tparse.parse text in
    Hashtbl.add c.cache key t;
    t

let select_template ?note c (ts : template_set) g o : Tast.t option =
  (* the selection depends on two graph reads — record both so a cache
     re-verifies the choice (the object-name branch reads nothing) *)
  (match note with
   | Some f ->
     f
       (R_attr
          ( Oid.name o,
            "HTML-template",
            hash_targets (Graph.attr g o "HTML-template") ));
     f (R_colls (Oid.name o, hash_strings (Graph.collections_of g o)))
   | None -> ());
  match List.assoc_opt (Oid.name o) ts.by_object with
  | Some text -> Some (compile_cached c ("obj:" ^ Oid.name o) text)
  | None -> (
      let from_attr =
        match Graph.attr_value g o "HTML-template" with
        | Some (Value.String n) | Some (Value.File (Value.Html_file, n)) ->
          (match List.assoc_opt n ts.named with
           | Some text -> Some (compile_cached c ("named:" ^ n) text)
           | None ->
             raise (Generator_error ("unknown template name " ^ n)))
        | Some _ | None -> None
      in
      match from_attr with
      | Some t -> Some t
      | None ->
        List.find_map
          (fun coll ->
            match List.assoc_opt coll ts.by_collection with
            | Some text -> Some (compile_cached c ("coll:" ^ coll) text)
            | None -> None)
          (Graph.collections_of g o))

(* Generic property-sheet rendering for objects without a template. *)
let default_render render_target g o =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "<h2>%s</h2>\n<dl>\n" (Teval.escape_html (Oid.name o)));
  List.iter
    (fun (l, tgt) ->
      Buffer.add_string buf
        (Printf.sprintf "<dt>%s</dt><dd>%s</dd>\n" (Teval.escape_html l)
           (render_target tgt)))
    (Graph.out_edges g o);
  Buffer.add_string buf "</dl>\n";
  Buffer.contents buf

let wrap_page ~title body =
  if
    String.length body >= 5
    && String.lowercase_ascii (String.sub body 0 5) = "<html"
  then body
  else
    Printf.sprintf
      "<html>\n<head><title>%s</title></head>\n<body>\n%s\n</body>\n</html>\n"
      (Teval.escape_html title) body

let max_embed_depth = 32

(* --- Degraded rendering ---

   When a page render fails under [~on_error:Degrade], the site still
   ships: the failed page is replaced by a small error page carrying a
   deterministic marker comment, so placeholders can be recognized
   (and never reused) by the incremental rebuilder and are never stored
   in the render cache. *)

let fault_marker = "<!-- strudel:fault -->"

let placeholder_page ~url ~cause (o : Oid.t) : page =
  let title = Oid.name o in
  let body =
    Printf.sprintf
      "%s\n<h1>%s</h1>\n<p>This page could not be rendered: %s</p>\n"
      fault_marker (Teval.escape_html title) (Teval.escape_html cause)
  in
  { obj = o; url; title; html = wrap_page ~title body; body }

let is_placeholder (p : page) =
  String.length p.body >= String.length fault_marker
  && String.sub p.body 0 (String.length fault_marker) = fault_marker

(** Generate the browsable site.  [roots] are the objects realized as
    pages up front; any object referenced with the default (link)
    format from an emitted page also becomes a page.

    With [~on_error:Degrade], a page whose render fails (or whose
    injected render fault fires) becomes a {!placeholder_page} and the
    fault is recorded in [fault]; note that work the failed render did
    before failing — objects it already queued via links — still
    becomes pages, so prefer the render pool's wave loop (which
    isolates each page render) when degraded output must be
    jobs-independent.  No site in this repository hits this path except
    through the pool's URL-collision fallback. *)
let generate ?(file_loader = fun _ -> None) ?(templates = empty_templates)
    ?(on_error = Fault.Abort) ?fault (g : Graph.t) ~(roots : Oid.t list) :
    site =
  let inject = Fault.inject fault in
  let compiled = { cache = Hashtbl.create 16 } in
  let urls : string Oid.Tbl.t = Oid.Tbl.create 64 in
  let used_urls = Hashtbl.create 64 in
  let queue = Queue.create () in
  let queued = Oid.Tbl.create 64 in
  let ensure_page o =
    match Oid.Tbl.find_opt urls o with
    | Some u -> u
    | None ->
      let base = slug (Oid.name o) in
      let rec uniq n =
        let candidate =
          if n = 0 then base ^ ".html"
          else Printf.sprintf "%s_%d.html" base n
        in
        if Hashtbl.mem used_urls candidate then uniq (n + 1) else candidate
      in
      let u = uniq 0 in
      Hashtbl.add used_urls u ();
      Oid.Tbl.add urls o u;
      if not (Oid.Tbl.mem queued o) then begin
        Oid.Tbl.add queued o ();
        Queue.add o queue
      end;
      u
  in
  let depth = ref 0 in
  let embedding = Oid.Tbl.create 8 in
  let rec render_object ctx mode o =
    match mode with
    | Teval.Link_to anchor ->
      let url = ensure_page o in
      let anchor =
        match anchor with Some a -> a | None -> default_anchor g o
      in
      Teval.render_link ~href:url ~anchor
    | Teval.Embed ->
      if Oid.Tbl.mem embedding o || !depth > max_embed_depth then
        (* embedding cycle: fall back to a link *)
        render_object ctx (Teval.Link_to None) o
      else begin
        Oid.Tbl.add embedding o ();
        incr depth;
        let body = render_body ctx o in
        decr depth;
        Oid.Tbl.remove embedding o;
        body
      end
  and render_body ctx o =
    match select_template compiled templates g o with
    | Some t -> Teval.render { ctx with Teval.vars = [] } t o
    | None ->
      default_render
        (fun tgt ->
          Teval.render_target ctx o Tast.default_directives tgt)
        g o
  in
  let ctx =
    { Teval.graph = g; vars = []; render_object; file_loader; on_read = None }
  in
  List.iter (fun o -> ignore (ensure_page o)) roots;
  let pages = ref [] in
  while not (Queue.is_empty queue) do
    let o = Queue.pop queue in
    let url = Oid.Tbl.find urls o in
    let render () =
      Fault.Inject.fire inject (Fault.Inject.Render_page (Oid.name o));
      let body = render_body ctx o in
      let title =
        match Graph.attr_value g o "title" with
        | Some v -> Value.to_display_string v
        | None -> Oid.name o
      in
      { obj = o; url; title; html = wrap_page ~title body; body }
    in
    let page =
      match on_error with
      | Fault.Abort -> render ()
      | Fault.Degrade -> (
        try render ()
        with e ->
          let cause =
            match e with
            | Fault.Inject.Injected m -> m
            | Generator_error m -> m
            | Tparse.Template_error m -> "template error: " ^ m
            | e -> Printexc.to_string e
          in
          (match fault with
           | Some c ->
             Fault.record c
               (Fault.report ~stage:Fault.Render ~source:(Graph.name g)
                  ~location:url ~cause ())
           | None -> ());
          placeholder_page ~url ~cause o)
    in
    pages := page :: !pages
  done;
  { pages = List.rev !pages; graph = g }

type rendered = {
  r_page : page;
  r_reads : read list;
      (** the page's read set with result hashes, in read order (empty
          unless rendered with [~trace_reads:true]) *)
  r_refs : Oid.t list;
      (** internal objects the page links to, in first-reference order —
          the demand edges page discovery follows *)
}

(** Render a single object's page without materializing the rest of the
    site: links to internal objects get their deterministic URLs (slug
    of the object name) but the linked pages are not generated.  This
    is the rendering primitive of the click-time evaluator, the
    incremental rebuilder and the parallel render pool.  [compiled]
    shares the template-compilation cache across pages (one per domain
    in the parallel pool); [trace_reads] records the page's read set for
    the render cache; the referenced-object list is always recorded. *)
let render_page_full ?(file_loader = fun _ -> None)
    ?(templates = empty_templates) ?compiled ?(trace_reads = false)
    (g : Graph.t) (o : Oid.t) : rendered =
  let compiled =
    match compiled with Some c -> c | None -> new_compiled ()
  in
  let reads_rev = ref [] in
  let note_f r = reads_rev := r :: !reads_rev in
  let note = if trace_reads then Some note_f else None in
  let refs_rev = ref [] in
  let ref_seen = Oid.Tbl.create 8 in
  let note_ref o' =
    if not (Oid.Tbl.mem ref_seen o') then begin
      Oid.Tbl.add ref_seen o' ();
      refs_rev := o' :: !refs_rev
    end
  in
  let on_read =
    if trace_reads then
      Some
        (fun o' seg targets ->
          note_f (R_attr (Oid.name o', seg, hash_targets targets)))
    else None
  in
  let file_loader =
    if trace_reads then (fun p ->
      let r = file_loader p in
      note_f (R_file (p, hash_file r));
      r)
    else file_loader
  in
  let depth = ref 0 in
  let embedding = Oid.Tbl.create 8 in
  let rec render_object ctx mode o' =
    match mode with
    | Teval.Link_to anchor ->
      note_ref o';
      let anchor =
        match anchor with
        | Some a -> a
        | None -> default_anchor_noting note g o'
      in
      Teval.render_link ~href:(slug (Oid.name o') ^ ".html") ~anchor
    | Teval.Embed ->
      if Oid.Tbl.mem embedding o' || !depth > max_embed_depth then
        render_object ctx (Teval.Link_to None) o'
      else begin
        Oid.Tbl.add embedding o' ();
        incr depth;
        let body = render_body ctx o' in
        decr depth;
        Oid.Tbl.remove embedding o';
        body
      end
  and render_body ctx o' =
    match select_template ?note compiled templates g o' with
    | Some t -> Teval.render { ctx with Teval.vars = [] } t o'
    | None ->
      (match note with
       | Some f ->
         f (R_edges (Oid.name o', hash_edges (Graph.out_edges g o')))
       | None -> ());
      default_render
        (fun tgt -> Teval.render_target ctx o' Tast.default_directives tgt)
        g o'
  in
  let ctx =
    { Teval.graph = g; vars = []; render_object; file_loader; on_read }
  in
  let body = render_body ctx o in
  (match note with
   | Some f ->
     f (R_attr (Oid.name o, "title", hash_targets (Graph.attr g o "title")))
   | None -> ());
  let title =
    match Graph.attr_value g o "title" with
    | Some v -> Value.to_display_string v
    | None -> Oid.name o
  in
  {
    r_page =
      {
        obj = o;
        url = slug (Oid.name o) ^ ".html";
        title;
        html = wrap_page ~title body;
        body;
      };
    r_reads = List.rev !reads_rev;
    r_refs = List.rev !refs_rev;
  }

let render_page ?file_loader ?templates (g : Graph.t) (o : Oid.t) : page =
  (render_page_full ?file_loader ?templates g o).r_page

let page_count site = List.length site.pages

let find_page site url = List.find_opt (fun p -> p.url = url) site.pages

let page_of_object site o =
  List.find_opt (fun p -> Oid.equal p.obj o) site.pages

(** Write all pages below [dir] (created if missing). *)
let write_site ~dir site =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun p ->
      let oc = open_out (Filename.concat dir p.url) in
      output_string oc p.html;
      close_out oc)
    site.pages

let total_bytes site =
  List.fold_left (fun n p -> n + String.length p.html) 0 site.pages
