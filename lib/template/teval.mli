(** Evaluation of template expressions over a site graph.

    Type-specific rules map atomic values to HTML (strings and numbers
    are escaped and embedded, URLs become anchors, images [<img>],
    text/HTML files are inlined when a file loader is available,
    PostScript always links).  References to internal objects are
    delegated to the caller through [render_object]: by default they
    become links to the object's page; [EMBED] embeds the object's HTML
    value instead. *)

open Sgraph

(** How an internal-object reference is to be realized. *)
type obj_mode =
  | Embed
  | Link_to of string option  (** anchor-text override *)

type ctx = {
  graph : Graph.t;
  vars : (string * Graph.target) list;  (** SFOR bindings, innermost first *)
  render_object : ctx -> obj_mode -> Oid.t -> string;
  file_loader : string -> string option;
  on_read : (Oid.t -> string -> Graph.target list -> unit) option;
      (** read-set tracing hook: called on every attribute read template
          evaluation performs (object, attribute, returned targets).
          [None] keeps the hot path free of tracing. *)
}

val escape_html : string -> string

val eval_attr_expr : ctx -> Oid.t -> Tast.attr_expr -> Graph.target list
(** Bounded traversal of [@a.b.c] from the current object (or from an
    SFOR variable when the first segment names one). *)

val eval_cond : ctx -> Oid.t -> Tast.cond -> bool
val render_link : href:string -> anchor:string -> string
val render_value : ctx -> ?anchor:string -> Value.t -> string
val render_target : ctx -> Oid.t -> Tast.directives -> Graph.target -> string
val render : ctx -> Tast.t -> Oid.t -> string
