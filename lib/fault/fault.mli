(** Cross-cutting fault tolerance for the ingest-to-publish pipeline.

    One {!report} per quarantined record, skipped source or degraded
    page; a {!ctx} collects them and optionally carries a seeded,
    deterministic fault {!Inject}or; {!Policy} + {!Retry} + {!Clock}
    give source loads retry/backoff/deadline semantics on real or
    virtual time; {!Manifest} is the machine-readable build outcome
    ([faults.json], exit codes [0] clean / [3] degraded / [1] failed).
    A pipeline that never passes a [ctx] behaves exactly as before:
    the first fault aborts. *)

(* --- Reports --- *)

type stage =
  | Ingest      (** wrapper parsing / source loading *)
  | Integrate   (** mediation: mappings over sources *)
  | Render      (** HTML generation of one page *)

val stage_name : stage -> string
val stage_of_name : string -> stage option

type report = {
  f_stage : stage;
  f_source : string;    (** source / graph / site the fault belongs to *)
  f_location : string;  (** "line 12, column 3", "entry 7", a page URL *)
  f_cause : string;     (** what went wrong *)
  f_excerpt : string;   (** raw input excerpt (possibly truncated) *)
}

val report :
  stage:stage -> source:string -> location:string -> cause:string ->
  ?excerpt:string -> unit -> report
(** Build a report; the excerpt is whitespace-flattened and clipped so
    a multi-megabyte malformed record cannot balloon a manifest. *)

val pp_report : Format.formatter -> report -> unit

(* --- Fault injection --- *)

module Inject : sig
  exception Injected of string
  (** The fault an armed injector raises at a chosen point. *)

  type point =
    | Load of string * int   (** source name, attempt number *)
    | Parse of string * int  (** source name, record index *)
    | Render_page of string  (** page object name *)

  val point_name : point -> string

  type t

  val create :
    ?seed:int -> ?p_load:float -> ?p_parse:float -> ?p_render:float ->
    ?targets:string list -> unit -> t
  (** A seeded injector.  Probabilities are per-point; decisions are a
      pure hash of (seed, point) — deterministic, order-independent and
      domain-safe, so jobs ∈ {1,4} builds fault identically.  With
      [targets] non-empty, only points whose source/page name is listed
      can fail. *)

  val arm : t -> unit
  val disarm : t -> unit
  (** Clear the faults: every subsequent decision is "no fault" — the
      recovery half of the differential property. *)

  val armed : t -> bool
  val should_fail : t -> point -> bool

  val fire : t option -> point -> unit
  (** Raise {!Injected} at [point] if the (optional) injector decides
      to; the no-injector and disarmed cases are free. *)
end

(* --- The fault context threaded through the pipeline --- *)

type ctx

val ctx : ?inject:Inject.t -> unit -> ctx
val record : ctx -> report -> unit
val reports : ctx -> report list
(** Recorded reports, oldest first. *)

val fault_count : ctx -> int
val clear : ctx -> unit

val inject : ctx option -> Inject.t option
(** The injector of an optional context (for passing down a pipeline). *)

val guard :
  ctx option -> stage:stage -> source:string -> location:string ->
  ?excerpt:string -> (unit -> 'a) -> 'a option
(** Run the thunk; with a context, an exception is recorded as a report
    and [None] returned (the quarantine path); without one it
    propagates (the pre-fault behavior). *)

(* --- Degradation switch for the build stage --- *)

type on_error =
  | Abort    (** first render error kills the build (the default) *)
  | Degrade  (** isolate the page, emit a placeholder, record a fault *)

(* --- Clocks --- *)

module Clock : sig
  type t = {
    now_ms : unit -> float;
    sleep_ms : float -> unit;
  }

  val real : t

  val virtual_ : ?start:float -> unit -> t * (unit -> float list)
  (** A virtual clock: sleeping advances time instantly and records the
      sleep.  Returns the clock and an accessor for the recorded sleeps
      (in call order). *)
end

(* --- Retry policies --- *)

module Policy : sig
  type retry = {
    attempts : int;        (** total attempts, including the first (≥ 1) *)
    base_delay_ms : float; (** delay before the second attempt *)
    multiplier : float;    (** exponential growth factor *)
    max_delay_ms : float;  (** per-wait cap *)
    deadline_ms : float;   (** give up once elapsed time exceeds this *)
  }

  val no_retry : retry
  val default_retry : retry

  type on_failure =
    | Fail_fast    (** re-raise: the pre-fault behavior *)
    | Skip_source  (** drop the source from this integration *)
    | Stale of int
        (** serve the last good snapshot if it is at most this many
            versions behind the current source version *)

  type t = {
    on_failure : on_failure;
    retry : retry;
  }

  val fail_fast : t
  val skip_source : ?retry:retry -> unit -> t
  val stale : ?retry:retry -> int -> t
  val pp_on_failure : Format.formatter -> on_failure -> unit
end

module Retry : sig
  val schedule : Policy.retry -> float list
  (** The planned backoff delays: [attempts - 1] waits, exponential
      from [base_delay_ms], each capped at [max_delay_ms] (the deadline
      then truncates this schedule at run time). *)

  val run :
    ?clock:Clock.t ->
    retry:Policy.retry ->
    ?on_attempt:(attempt:int -> exn -> unit) ->
    (attempt:int -> 'a) ->
    ('a, exn * int) result
  (** Run [f ~attempt] (numbered from 0) under the policy: on
      exception, wait the next backoff delay and retry until the
      attempt budget or deadline is exhausted.  [Error (last_exn,
      attempts_made)] on exhaustion. *)
end

(* --- The build manifest: faults.json --- *)

module Manifest : sig
  type status = Clean | Degraded

  type t

  exception Manifest_error of string

  val make : site:string -> report list -> t
  val status : t -> status
  val status_name : status -> string
  val faults : t -> report list

  val exit_code : t -> int
  (** [0] clean, [3] degraded ([1], a failed build, is produced by the
      aborting process, never by a manifest). *)

  val to_json : t -> string
  val of_json : string -> t
  (** Parse a manifest back ([faults.json]).  Raises {!Manifest_error}
      on malformed input.  Status is recomputed from the fault list. *)

  val pp : Format.formatter -> t -> unit
end
