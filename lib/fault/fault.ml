(** Cross-cutting fault tolerance for the ingest-to-publish pipeline.

    STRUDEL's promise is a site integrated from external sources —
    exactly the components that break in production: a malformed BibTeX
    entry, a CSV export with a truncated row, a flaky loader, a
    template that raises on one page of ten thousand.  This library
    gives every pipeline stage a shared vocabulary for failing
    {e partially}:

    - a {!report} is one structured fault (stage, source, location,
      cause, raw excerpt) — the unit a wrapper quarantines, a mediator
      records, a degraded build lists in its manifest;
    - a {!ctx} collects reports and optionally carries a seeded
      {!Inject}or, so the same plumbing that survives real faults can
      be driven deterministically by tests and benchmarks;
    - {!Policy} names what a source load may do on failure
      ([Fail_fast | Skip_source | Stale]) and how to retry
      (exponential backoff under a deadline, measured against an
      injectable {!Clock} so tests run on virtual time);
    - {!Manifest} is the machine-readable build outcome
      ([faults.json]) with the exit-code convention [0] clean,
      [3] degraded, [1] failed.

    Everything here is policy-free by default: a pipeline that never
    passes a [ctx] behaves exactly as before (first fault aborts). *)

(* --- Reports --- *)

type stage =
  | Ingest      (** wrapper parsing / source loading *)
  | Integrate   (** mediation: mappings over sources *)
  | Render      (** HTML generation of one page *)

let stage_name = function
  | Ingest -> "ingest"
  | Integrate -> "integrate"
  | Render -> "render"

let stage_of_name = function
  | "ingest" -> Some Ingest
  | "integrate" -> Some Integrate
  | "render" -> Some Render
  | _ -> None

type report = {
  f_stage : stage;
  f_source : string;    (** source / graph / site the fault belongs to *)
  f_location : string;  (** "line 12, column 3", "entry 7", a page URL *)
  f_cause : string;     (** what went wrong *)
  f_excerpt : string;   (** raw input excerpt (possibly truncated) *)
}

let excerpt_limit = 120

(* Excerpts quote raw external input; bound them so a multi-megabyte
   malformed record cannot balloon the manifest. *)
let clip s =
  let s =
    String.map (function '\n' | '\r' | '\t' -> ' ' | c -> c) s
  in
  if String.length s <= excerpt_limit then s
  else String.sub s 0 excerpt_limit ^ "..."

let report ~stage ~source ~location ~cause ?(excerpt = "") () =
  {
    f_stage = stage;
    f_source = source;
    f_location = location;
    f_cause = cause;
    f_excerpt = clip excerpt;
  }

let pp_report ppf r =
  Fmt.pf ppf "[%s] %s at %s: %s%s" (stage_name r.f_stage) r.f_source
    r.f_location r.f_cause
    (if r.f_excerpt = "" then "" else Printf.sprintf " %S" r.f_excerpt)

(* --- Fault injection --- *)

module Inject = struct
  exception Injected of string
  (** The fault an armed injector raises at a chosen point.  Carries a
      deterministic description so degraded output is reproducible. *)

  type point =
    | Load of string * int   (** source name, attempt number *)
    | Parse of string * int  (** source name, record index *)
    | Render_page of string  (** page object name *)

  let point_name = function
    | Load (s, k) -> Printf.sprintf "load %s (attempt %d)" s k
    | Parse (s, i) -> Printf.sprintf "parse %s record %d" s i
    | Render_page n -> Printf.sprintf "render %s" n

  type t = {
    seed : int;
    p_load : float;
    p_parse : float;
    p_render : float;
    targets : string list;
        (* if non-empty, only points whose source/page name is listed
           can fail (site-targeted injection) *)
    mutable armed : bool;
  }

  let create ?(seed = 1) ?(p_load = 0.) ?(p_parse = 0.) ?(p_render = 0.)
      ?(targets = []) () =
    { seed; p_load; p_parse; p_render; targets; armed = true }

  let arm t = t.armed <- true
  let disarm t = t.armed <- false
  let armed t = t.armed

  (* Decisions are a pure hash of (seed, point), not a mutable PRNG
     stream: the same point fails identically no matter how many
     domains render concurrently or in what order the pipeline visits
     it — the property the jobs ∈ {1,4} differential tests rest on. *)
  let decide t ~key ~salt p =
    t.armed && p > 0.
    && (t.targets = [] || List.mem key t.targets)
    && begin
      let h = Hashtbl.hash (t.seed, salt, key) in
      float_of_int (h mod 10_000) < p *. 10_000.
    end

  let should_fail t point =
    match point with
    | Load (src, attempt) ->
      decide t ~key:src ~salt:("load", attempt) t.p_load
    | Parse (src, idx) -> decide t ~key:src ~salt:("parse", idx) t.p_parse
    | Render_page name -> decide t ~key:name ~salt:("render", 0) t.p_render

  (** Raise {!Injected} at [point] if the (optional) injector decides
      to; the no-injector and disarmed cases are free. *)
  let fire inj point =
    match inj with
    | None -> ()
    | Some t ->
      if should_fail t point then
        raise (Injected ("injected fault: " ^ point_name point))
end

(* --- Collecting faults: the context threaded through the pipeline --- *)

type ctx = {
  mutable reports_rev : report list;
  mutable count : int;
  inject : Inject.t option;
}

let ctx ?inject () = { reports_rev = []; count = 0; inject }
let record c r =
  c.reports_rev <- r :: c.reports_rev;
  c.count <- c.count + 1

let reports c = List.rev c.reports_rev
let fault_count c = c.count
let clear c =
  c.reports_rev <- [];
  c.count <- 0

let inject c = match c with Some c -> c.inject | None -> None

(** Run [f]; on exception, record a report built from [location] /
    [excerpt] and return [None].  The guard around one record of an
    ingest stream or one page of a build. *)
let guard c ~stage ~source ~location ?(excerpt = "") f =
  match c with
  | None -> Some (f ())
  | Some c -> (
      try Some (f ())
      with e ->
        record c
          (report ~stage ~source ~location ~cause:(Printexc.to_string e)
             ~excerpt ());
        None)

(* --- Degradation switch for the build stage --- *)

type on_error =
  | Abort    (** first render error kills the build (the default) *)
  | Degrade  (** isolate the page, emit a placeholder, record a fault *)

(* --- Clocks: real for production, virtual for tests --- *)

module Clock = struct
  type t = {
    now_ms : unit -> float;
    sleep_ms : float -> unit;
  }

  let real =
    {
      now_ms = (fun () -> Unix.gettimeofday () *. 1000.);
      sleep_ms = (fun ms -> if ms > 0. then Unix.sleepf (ms /. 1000.));
    }

  (** A virtual clock: sleeping advances time instantly and every
      sleep is recorded, so backoff schedules are testable without
      wall-clock waits.  Returns the clock and an accessor for the
      recorded sleeps (in call order). *)
  let virtual_ ?(start = 0.) () =
    let now = ref start in
    let sleeps = ref [] in
    ( {
        now_ms = (fun () -> !now);
        sleep_ms =
          (fun ms ->
            let ms = Float.max ms 0. in
            sleeps := ms :: !sleeps;
            now := !now +. ms);
      },
      fun () -> List.rev !sleeps )
end

(* --- Retry policies --- *)

module Policy = struct
  type retry = {
    attempts : int;        (** total attempts, including the first (≥ 1) *)
    base_delay_ms : float; (** delay before the second attempt *)
    multiplier : float;    (** exponential growth factor *)
    max_delay_ms : float;  (** per-wait cap *)
    deadline_ms : float;   (** give up once elapsed time exceeds this *)
  }

  let no_retry =
    {
      attempts = 1;
      base_delay_ms = 0.;
      multiplier = 2.;
      max_delay_ms = 0.;
      deadline_ms = infinity;
    }

  let default_retry =
    {
      attempts = 4;
      base_delay_ms = 50.;
      multiplier = 2.;
      max_delay_ms = 2_000.;
      deadline_ms = 30_000.;
    }

  type on_failure =
    | Fail_fast    (** re-raise: the pre-fault behavior *)
    | Skip_source  (** drop the source from this integration *)
    | Stale of int
        (** serve the last good snapshot if it is at most this many
            versions behind the current source version *)

  type t = {
    on_failure : on_failure;
    retry : retry;
  }

  let fail_fast = { on_failure = Fail_fast; retry = no_retry }
  let skip_source ?(retry = default_retry) () =
    { on_failure = Skip_source; retry }
  let stale ?(retry = default_retry) age = { on_failure = Stale age; retry }

  let pp_on_failure ppf = function
    | Fail_fast -> Fmt.string ppf "fail-fast"
    | Skip_source -> Fmt.string ppf "skip-source"
    | Stale age -> Fmt.pf ppf "stale(%d)" age
end

module Retry = struct
  (** The planned backoff delays of a policy: [attempts - 1] waits,
      exponential from [base_delay_ms], each capped at
      [max_delay_ms].  (The deadline then truncates this schedule at
      run time.) *)
  let schedule (r : Policy.retry) : float list =
    List.init
      (max 0 (r.attempts - 1))
      (fun i ->
        Float.min r.max_delay_ms
          (r.base_delay_ms *. (r.multiplier ** float_of_int i)))

  (** Run [f ~attempt] (attempts numbered from 0) under the retry
      policy: on exception, wait the next backoff delay and try again,
      until the policy's attempt budget or deadline is exhausted.
      Returns [Error (last_exn, attempts_made)] on exhaustion.
      [on_attempt] observes each failure (for logging). *)
  let run ?(clock = Clock.real) ~(retry : Policy.retry)
      ?(on_attempt = fun ~attempt:_ _ -> ()) (f : attempt:int -> 'a) :
      ('a, exn * int) result =
    let t0 = clock.Clock.now_ms () in
    let delays = schedule retry in
    let rec go attempt delays =
      match f ~attempt with
      | v -> Ok v
      | exception e ->
        on_attempt ~attempt e;
        (match delays with
         | d :: rest
           when clock.Clock.now_ms () -. t0 +. d <= retry.deadline_ms ->
           clock.Clock.sleep_ms d;
           go (attempt + 1) rest
         | _ -> Error (e, attempt + 1))
    in
    go 0 delays
end

(* --- The build manifest: faults.json --- *)

module Manifest = struct
  type status = Clean | Degraded

  type t = {
    m_site : string;
    m_status : status;
    m_faults : report list;
  }

  let make ~site faults =
    {
      m_site = site;
      m_status = (if faults = [] then Clean else Degraded);
      m_faults = faults;
    }

  let status m = m.m_status
  let faults m = m.m_faults

  (* Exit-code convention: 0 clean, 3 degraded; 1 (a failed build) is
     produced by the process that aborted, never by a manifest. *)
  let exit_code m = match m.m_status with Clean -> 0 | Degraded -> 3

  let status_name = function Clean -> "clean" | Degraded -> "degraded"

  let pp ppf m =
    Fmt.pf ppf "@[<v>site %s: %s (%d fault%s)" m.m_site
      (status_name m.m_status)
      (List.length m.m_faults)
      (if List.length m.m_faults = 1 then "" else "s");
    List.iter (fun r -> Fmt.pf ppf "@,  %a" pp_report r) m.m_faults;
    Fmt.pf ppf "@]"

  (* -- JSON encoding -- *)

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let to_json m =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"site\": \"%s\",\n" (escape m.m_site));
    Buffer.add_string buf
      (Printf.sprintf "  \"status\": \"%s\",\n" (status_name m.m_status));
    Buffer.add_string buf
      (Printf.sprintf "  \"exit_code\": %d,\n" (exit_code m));
    Buffer.add_string buf
      (Printf.sprintf "  \"fault_count\": %d,\n" (List.length m.m_faults));
    Buffer.add_string buf "  \"faults\": [";
    List.iteri
      (fun i r ->
        Buffer.add_string buf (if i = 0 then "\n" else ",\n");
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"stage\": \"%s\", \"source\": \"%s\", \"location\": \
              \"%s\", \"cause\": \"%s\", \"excerpt\": \"%s\"}"
             (stage_name r.f_stage) (escape r.f_source)
             (escape r.f_location) (escape r.f_cause) (escape r.f_excerpt)))
      m.m_faults;
    Buffer.add_string buf (if m.m_faults = [] then "]\n" else "\n  ]\n");
    Buffer.add_string buf "}\n";
    Buffer.contents buf

  (* -- JSON decoding: a minimal reader for the subset we emit (and
        hand-edited variants of it) -- *)

  exception Manifest_error of string

  type json =
    | J_string of string
    | J_num of float
    | J_bool of bool
    | J_null
    | J_list of json list
    | J_obj of (string * json) list

  let parse_json (s : string) : json =
    let pos = ref 0 in
    let n = String.length s in
    let fail msg =
      raise (Manifest_error (Printf.sprintf "%s at byte %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Printf.sprintf "expected %c" c)
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '"' -> J_string (string_lit ())
      | Some '{' -> obj ()
      | Some '[' -> list ()
      | Some 't' -> word "true" (J_bool true)
      | Some 'f' -> word "false" (J_bool false)
      | Some 'n' -> word "null" J_null
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected a JSON value"
    and word w v =
      let k = String.length w in
      if !pos + k <= n && String.sub s !pos k = w then begin
        pos := !pos + k;
        v
      end
      else fail ("expected " ^ w)
    and number () =
      let start = !pos in
      while
        !pos < n
        && match s.[!pos] with
           | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
           | _ -> false
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> J_num f
      | None -> fail "bad number"
    and string_lit () =
      expect '"';
      let buf = Buffer.create 32 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> incr pos
          | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; incr pos
               | '\\' -> Buffer.add_char buf '\\'; incr pos
               | '/' -> Buffer.add_char buf '/'; incr pos
               | 'n' -> Buffer.add_char buf '\n'; incr pos
               | 'r' -> Buffer.add_char buf '\r'; incr pos
               | 't' -> Buffer.add_char buf '\t'; incr pos
               | 'b' -> Buffer.add_char buf '\b'; incr pos
               | 'f' -> Buffer.add_char buf '\012'; incr pos
               | 'u' ->
                 if !pos + 4 >= n then fail "bad \\u escape";
                 let hex = String.sub s (!pos + 1) 4 in
                 (match int_of_string_opt ("0x" ^ hex) with
                  | Some code when code < 128 ->
                    Buffer.add_char buf (Char.chr code)
                  | Some _ -> Buffer.add_char buf '?'
                  | None -> fail "bad \\u escape");
                 pos := !pos + 5
               | _ -> fail "unknown escape");
            go ()
          | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents buf
    and list () =
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        J_list []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        J_list (items [])
      end
    and obj () =
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((k, v) :: acc)
          | Some '}' ->
            incr pos;
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        J_obj (members [])
      end
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v

  let of_json text =
    let str = function
      | J_string s -> s
      | _ -> raise (Manifest_error "expected a string")
    in
    let field name obj =
      match obj with
      | J_obj kvs -> List.assoc_opt name kvs
      | _ -> raise (Manifest_error "expected an object")
    in
    let v = parse_json text in
    let site = match field "site" v with Some s -> str s | None -> "?" in
    let status =
      match field "status" v with
      | Some (J_string "degraded") -> Degraded
      | Some (J_string "clean") | None -> Clean
      | Some _ -> raise (Manifest_error "bad status")
    in
    let faults =
      match field "faults" v with
      | Some (J_list fs) ->
        List.map
          (fun f ->
            let get name =
              match field name f with Some s -> str s | None -> ""
            in
            let stage =
              match stage_of_name (get "stage") with
              | Some s -> s
              | None -> raise (Manifest_error ("bad stage " ^ get "stage"))
            in
            report ~stage ~source:(get "source") ~location:(get "location")
              ~cause:(get "cause") ~excerpt:(get "excerpt") ())
          fs
      | Some _ -> raise (Manifest_error "faults must be a list")
      | None -> []
    in
    (* status is recomputed from the fault list, not trusted from the
       file: the two can only disagree on a hand-edited manifest *)
    ignore status;
    make ~site faults
end
