(** The sharded repository: partitioning, segments on disk, manifests
    and pinned snapshots.

    The mediated graph is partitioned by collection or Skolem family
    into shards.  A shard is itself a graph sharing the union's oids:
    it holds its member nodes (plus {e ghost} stubs for foreign edge
    targets), every out-edge of a member, and each member's collection
    entries — so a collection whose members fall in several shards
    appears, split, in each of them.  Publishing freezes every shard to
    an mmap-able {!Segment} under the repository directory and then
    atomically replaces the [MANIFEST] file, which names the current
    epoch's segment set; readers that pinned the previous manifest keep
    a fully consistent (if stale) repository, which is the snapshot
    isolation contract the warehouse builds on.

    Segments record global node ids and per-element sequence numbers,
    so {!open_dir} can re-assemble the union graph of a cold repository
    deterministically: nodes in global-id order, edges and collection
    members replayed in sequence order. *)

open Sgraph

(** Partition key: a node's primary collection (first collection, in
    the union's collection order, that contains it), or the Skolem
    family of its oid name (["YearPage(1997)"] → ["YearPage"]).  Either
    spec falls back to the other key and then to the ["rest"] shard. *)
type spec = By_collection | By_family

val spec_name : spec -> string
val spec_of_name : string -> spec option

type config = {
  dir : string;  (** repository directory; created on first publish *)
  cfg_spec : spec;
}

val family_of_name : string -> string option
(** The Skolem family of an oid name, if it has the shape
    ["Family(...)"].  *)

val shard_key : spec -> primary:(Oid.t -> string option) -> Oid.t -> string
(** The shard key of a node given its primary-collection lookup. *)

val partition : spec -> Graph.t -> (string * Graph.t) list
(** Split a graph into shard graphs, in first-touch key order.  Shard
    graphs share the union's oids; every node, edge and collection
    entry of the input appears in exactly one shard (ghost stubs
    excepted). *)

(** {1 Manifest} *)

exception Manifest_error of string

type entry = {
  e_name : string;  (** shard key *)
  e_file : string;  (** segment file name, relative to the directory *)
  e_collections : string list;
  e_labels : string list;
  e_nodes : int;  (** including ghost stubs *)
  e_edges : int;
  e_bytes : int;
}

type manifest = {
  m_epoch : int;
  m_spec : spec;
  m_graph : string;  (** the union graph's name *)
  m_sources : (string * int) list;  (** source name → version at publish *)
  m_entries : entry list;
}

val manifest_file : string
(** ["MANIFEST"], under the repository directory. *)

val load_manifest : dir:string -> manifest
(** Raises {!Manifest_error} on a missing or malformed manifest. *)

val pp_manifest : Format.formatter -> manifest -> unit

(** {1 Snapshots} *)

type shard = {
  sh_entry : entry;
  sh_graph : Graph.t;
      (** the shard's graph, sharing oids with [sn_union] *)
}

type snapshot = {
  sn_epoch : int;
  sn_manifest : manifest;
  sn_shards : shard list;
  sn_union : Graph.t;
}

val publish :
  config ->
  epoch:int ->
  ?sources:(string * int) list ->
  Graph.t ->
  snapshot
(** Partition the graph, write one segment per shard
    ([<key>.<epoch>.seg]), then atomically swap the manifest
    (write-to-temporary, rename).  The returned snapshot's shard graphs
    are the live partitions (sharing the argument's oids) — no segment
    is read back. *)

val open_dir : ?verify:bool -> dir:string -> unit -> snapshot
(** Load a cold repository: read the manifest, decode every segment
    ([verify] as in {!Segment.read}, default [true]), and re-assemble
    the union graph by global-id node order and sequence-ordered edge /
    collection replay.  Shard graphs share the rebuilt union's oids.
    Raises {!Manifest_error} or {!Binary.Corrupt}. *)

val shards_with_collection : snapshot -> string -> shard list
(** The shards holding at least one member of the collection. *)
