(** A compact binary storage representation for semistructured data.

    §6 lists "designing efficient storage representations for
    semistructured data" among the open problems — traditional systems
    lay data out using the schema, which the repository does not have.
    This format stores a graph schema-free but compactly: one string
    table (labels, names and string values are interned once), varint
    ids, and a flat edge list; indexes are rebuilt on load, per the
    repository's full-indexing policy (§2.2).

    The encoding is deterministic (no [Marshal]), versioned by magic,
    and typically 3–6× smaller than the DDL text. *)

open Sgraph

exception Corrupt of string * int  (** message, byte offset *)

let magic = "SGBIN1"

(* --- primitive encoders --- *)

(* Treats the int as a 63-bit unsigned word ([lsr] is logical), so any
   bit pattern round-trips. *)
let put_varint buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* Zigzag over the full 63-bit range (wraparound-safe). *)
let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag z = (z lsr 1) lxor (- (z land 1))

type reader = { src : string; mutable pos : int }

let get_byte r =
  if r.pos >= String.length r.src then raise (Corrupt ("unexpected end", r.pos));
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let get_varint r =
  let rec go shift acc =
    let b = get_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 <> 0 then go (shift + 7) acc else acc
  in
  go 0 0

let get_bytes r n =
  if r.pos + n > String.length r.src then raise (Corrupt ("unexpected end", r.pos));
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

(* --- string table --- *)

type interner = {
  tbl : (string, int) Hashtbl.t;
  mutable rev : string list;
  mutable count : int;
}

let interner () = { tbl = Hashtbl.create 256; rev = []; count = 0 }
let interner_strings it = List.rev it.rev

let intern it s =
  match Hashtbl.find_opt it.tbl s with
  | Some i -> i
  | None ->
    let i = it.count in
    Hashtbl.add it.tbl s i;
    it.rev <- s :: it.rev;
    it.count <- i + 1;
    i

(* --- value encoding --- *)

let put_value buf it v =
  match v with
  | Value.Null -> put_varint buf 0
  | Value.Bool false -> put_varint buf 1
  | Value.Bool true -> put_varint buf 2
  | Value.Int i ->
    put_varint buf 3;
    put_varint buf (zigzag i)
  | Value.Float f ->
    (* the 64 payload bits do not fit OCaml's 63-bit int: store two
       32-bit halves *)
    put_varint buf 4;
    let bits = Int64.bits_of_float f in
    put_varint buf (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
    put_varint buf (Int64.to_int (Int64.shift_right_logical bits 32))
  | Value.String s ->
    put_varint buf 5;
    put_varint buf (intern it s)
  | Value.Url s ->
    put_varint buf 6;
    put_varint buf (intern it s)
  | Value.File (k, p) ->
    put_varint buf 7;
    put_varint buf (intern it (Value.file_kind_name k));
    put_varint buf (intern it p)

let get_value r strings =
  let str i =
    if i < 0 || i >= Array.length strings then
      raise (Corrupt ("string index", r.pos));
    strings.(i)
  in
  match get_varint r with
  | 0 -> Value.Null
  | 1 -> Value.Bool false
  | 2 -> Value.Bool true
  | 3 -> Value.Int (unzigzag (get_varint r))
  | 4 ->
    let lo = Int64.of_int (get_varint r) in
    let hi = Int64.of_int (get_varint r) in
    Value.Float (Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32)))
  | 5 -> Value.String (str (get_varint r))
  | 6 -> Value.Url (str (get_varint r))
  | 7 ->
    let kind = str (get_varint r) in
    let path = str (get_varint r) in
    let k =
      match Value.file_kind_of_name kind with
      | Some k -> k
      | None -> Value.Other_file kind
    in
    Value.File (k, path)
  | t -> raise (Corrupt (Printf.sprintf "unknown value tag %d" t, r.pos))

(* --- graph encoding --- *)

let encode (g : Graph.t) : string =
  let it = interner () in
  let body = Buffer.create 4096 in
  (* graph name *)
  put_varint body (intern it (Graph.name g));
  (* nodes: name per node, indexed by position *)
  let nodes = Graph.nodes g in
  let node_idx = Oid.Tbl.create 256 in
  put_varint body (List.length nodes);
  List.iteri
    (fun i o ->
      Oid.Tbl.replace node_idx o i;
      put_varint body (intern it (Oid.name o)))
    nodes;
  (* edges *)
  put_varint body (Graph.edge_count g);
  List.iter
    (fun src ->
      List.iter
        (fun (l, tgt) ->
          put_varint body (Oid.Tbl.find node_idx src);
          put_varint body (intern it l);
          match tgt with
          | Graph.N o ->
            put_varint body 0;
            put_varint body (Oid.Tbl.find node_idx o)
          | Graph.V v ->
            put_varint body 1;
            put_value body it v)
        (Graph.out_edges g src))
    nodes;
  (* collections *)
  let colls = Graph.collections g in
  put_varint body (List.length colls);
  List.iter
    (fun c ->
      put_varint body (intern it c);
      let members = Graph.collection g c in
      put_varint body (List.length members);
      List.iter (fun o -> put_varint body (Oid.Tbl.find node_idx o)) members)
    colls;
  (* assemble: magic, string table, body *)
  let out = Buffer.create (Buffer.length body + 1024) in
  Buffer.add_string out magic;
  let strings = List.rev it.rev in
  put_varint out (List.length strings);
  List.iter
    (fun s ->
      put_varint out (String.length s);
      Buffer.add_string out s)
    strings;
  Buffer.add_buffer out body;
  Buffer.contents out

let decode ?(indexed = true) (s : string) : Graph.t =
  if String.length s < String.length magic
     || String.sub s 0 (String.length magic) <> magic
  then raise (Corrupt ("bad magic", 0));
  let r = { src = s; pos = String.length magic } in
  let nstrings = get_varint r in
  let strings =
    Array.init nstrings (fun _ ->
        let len = get_varint r in
        get_bytes r len)
  in
  let str i =
    if i < 0 || i >= nstrings then raise (Corrupt ("string index", r.pos));
    strings.(i)
  in
  let g = Graph.create ~indexed ~name:(str (get_varint r)) () in
  let nnodes = get_varint r in
  let nodes = Array.init nnodes (fun _ -> Oid.fresh (str (get_varint r))) in
  Array.iter (Graph.add_node g) nodes;
  let node i =
    if i < 0 || i >= nnodes then raise (Corrupt ("node index", r.pos));
    nodes.(i)
  in
  let nedges = get_varint r in
  for _ = 1 to nedges do
    let src = node (get_varint r) in
    let label = str (get_varint r) in
    match get_varint r with
    | 0 -> Graph.add_edge g src label (Graph.N (node (get_varint r)))
    | 1 -> Graph.add_edge g src label (Graph.V (get_value r strings))
    | t -> raise (Corrupt (Printf.sprintf "unknown target tag %d" t, r.pos))
  done;
  let ncolls = get_varint r in
  for _ = 1 to ncolls do
    let cname = str (get_varint r) in
    let nmembers = get_varint r in
    for _ = 1 to nmembers do
      Graph.add_to_collection g cname (node (get_varint r))
    done
  done;
  if r.pos <> String.length s then raise (Corrupt ("trailing bytes", r.pos));
  g

(* --- file helpers --- *)

let save ~path g =
  let oc = open_out_bin path in
  output_string oc (encode g);
  close_out oc

let load ?indexed ~path () =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  decode ?indexed s
