(* Mmap-able binary shard segments.

   The layout is the CSR kernel's int-coded form written out as
   fixed-width little-endian int64 sections: a header of counts, then
   string table, node table (global id + name), value heap, forward and
   reverse adjacency, collections, per-element sequence numbers and a
   small metadata blob.  Every section's offset is a pure function of
   the header counts, so a mapped reader indexes sections in place; a
   body checksum (FNV-1a 64) catches bit flips, and every access is
   bounds-checked so corruption surfaces as {!Binary.Corrupt} with the
   absolute byte offset, never as a crash. *)

open Sgraph

let magic = "SGSEG001"
let header_ints = 16
let header_len = String.length magic + (8 * header_ints)

(* Counts above this are rejected before any geometry arithmetic, so a
   corrupted header cannot overflow offset computations. *)
let max_count = 1 lsl 42

let corrupt msg pos = raise (Binary.Corrupt (msg, pos))
let pad8 n = (n + 7) land lnot 7

let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_string s =
  let h = ref fnv_basis in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* --- section geometry --- *)

type geometry = {
  n_nodes : int;
  n_values : int;
  n_labels : int;
  n_edges : int;
  n_colls : int;
  n_members : int;
  n_strings : int;
  strblob_len : int;
  valheap_len : int;
  meta_len : int;
  o_str_off : int;
  o_strblob : int;
  o_labels : int;
  o_node_gid : int;
  o_node_name : int;
  o_val_off : int;
  o_valheap : int;
  o_fwd_off : int;
  o_fwd_lab : int;
  o_fwd_tgt : int;
  o_edge_seq : int;
  o_rev_off : int;
  o_rev_src : int;
  o_rev_lab : int;
  o_coll_sid : int;
  o_coll_off : int;
  o_members : int;
  o_member_seq : int;
  o_meta : int;
  total : int;
}

let geometry ~n_nodes ~n_values ~n_labels ~n_edges ~n_colls ~n_members
    ~n_strings ~strblob_len ~valheap_len ~meta_len =
  let pos = ref header_len in
  let sec bytes =
    let o = !pos in
    pos := o + bytes;
    o
  in
  let ints n = sec (8 * n) in
  let o_str_off = ints (n_strings + 1) in
  let o_strblob = sec (pad8 strblob_len) in
  let o_labels = ints n_labels in
  let o_node_gid = ints n_nodes in
  let o_node_name = ints n_nodes in
  let o_val_off = ints (n_values + 1) in
  let o_valheap = sec (pad8 valheap_len) in
  let o_fwd_off = ints (n_nodes + 1) in
  let o_fwd_lab = ints n_edges in
  let o_fwd_tgt = ints n_edges in
  let o_edge_seq = ints n_edges in
  let o_rev_off = ints (n_nodes + n_values + 1) in
  let o_rev_src = ints n_edges in
  let o_rev_lab = ints n_edges in
  let o_coll_sid = ints n_colls in
  let o_coll_off = ints (n_colls + 1) in
  let o_members = ints n_members in
  let o_member_seq = ints n_members in
  let o_meta = sec (pad8 meta_len) in
  {
    n_nodes;
    n_values;
    n_labels;
    n_edges;
    n_colls;
    n_members;
    n_strings;
    strblob_len;
    valheap_len;
    meta_len;
    o_str_off;
    o_strblob;
    o_labels;
    o_node_gid;
    o_node_name;
    o_val_off;
    o_valheap;
    o_fwd_off;
    o_fwd_lab;
    o_fwd_tgt;
    o_edge_seq;
    o_rev_off;
    o_rev_src;
    o_rev_lab;
    o_coll_sid;
    o_coll_off;
    o_members;
    o_member_seq;
    o_meta;
    total = !pos;
  }

(* --- writing --- *)

let encode ?(epoch = 0) ?(meta = []) ~gid ~edge_seq ~coll_seq (g : Graph.t) =
  let csr = Graph.freeze g in
  let n_nodes = csr.Csr.n_nodes in
  let n_values = csr.Csr.n_values in
  let n_labels = csr.Csr.n_labels in
  (* [Graph.freeze] pads the edge arrays to length [max 1 ne], so the true
     edge count comes from the offsets, not the array length. *)
  let n_edges = csr.Csr.fwd_off.(n_nodes) in
  let it = Binary.interner () in
  let label_sid = Array.map (Binary.intern it) csr.Csr.label_names in
  let node_name_sid =
    Array.map (fun o -> Binary.intern it (Oid.name o)) csr.Csr.node_ids
  in
  let node_gid = Array.map gid csr.Csr.node_ids in
  let vbuf = Buffer.create 256 in
  let val_off = Array.make (n_values + 1) 0 in
  Array.iteri
    (fun i v ->
      val_off.(i) <- Buffer.length vbuf;
      Binary.put_value vbuf it v)
    csr.Csr.values;
  val_off.(n_values) <- Buffer.length vbuf;
  let seqs = Array.make n_edges 0 in
  for i = 0 to n_nodes - 1 do
    let base = csr.Csr.fwd_off.(i) in
    let o = csr.Csr.node_ids.(i) in
    for k = 0 to csr.Csr.fwd_off.(i + 1) - base - 1 do
      seqs.(base + k) <- edge_seq o k
    done
  done;
  let colls = Graph.collections g in
  let n_colls = List.length colls in
  let coll_sid = Array.of_list (List.map (Binary.intern it) colls) in
  let member_lists =
    List.map (fun c -> (c, Array.of_list (Graph.collection g c))) colls
  in
  let coll_off = Array.make (n_colls + 1) 0 in
  List.iteri
    (fun ci (_, ms) -> coll_off.(ci + 1) <- coll_off.(ci) + Array.length ms)
    member_lists;
  let n_members = coll_off.(n_colls) in
  let mem_idx = Array.make n_members 0 in
  let mem_seq = Array.make n_members 0 in
  List.iteri
    (fun ci (c, ms) ->
      Array.iteri
        (fun k o ->
          let p = coll_off.(ci) + k in
          (mem_idx.(p) <-
             (match Csr.node_index csr o with
              | Some i -> i
              | None -> invalid_arg "Segment.encode: member is not a node"));
          mem_seq.(p) <- coll_seq c k)
        ms)
    member_lists;
  let meta = ("graph", Graph.name g) :: meta in
  let mbuf = Buffer.create 64 in
  List.iter
    (fun (k, v) ->
      if String.contains k '=' || String.contains k '\n'
         || String.contains v '\n'
      then invalid_arg "Segment.encode: malformed meta key/value";
      Buffer.add_string mbuf k;
      Buffer.add_char mbuf '=';
      Buffer.add_string mbuf v;
      Buffer.add_char mbuf '\n')
    meta;
  let strings = Binary.interner_strings it in
  let n_strings = List.length strings in
  let sbuf = Buffer.create 1024 in
  let str_off = Array.make (n_strings + 1) 0 in
  List.iteri
    (fun i s ->
      str_off.(i) <- Buffer.length sbuf;
      Buffer.add_string sbuf s)
    strings;
  str_off.(n_strings) <- Buffer.length sbuf;
  let geo =
    geometry ~n_nodes ~n_values ~n_labels ~n_edges ~n_colls ~n_members
      ~n_strings ~strblob_len:(Buffer.length sbuf)
      ~valheap_len:(Buffer.length vbuf) ~meta_len:(Buffer.length mbuf)
  in
  let body = Buffer.create (geo.total - header_len) in
  let add_int v = Buffer.add_int64_le body (Int64.of_int v) in
  let add_ints a = Array.iter add_int a in
  let add_edge_ints a =
    for i = 0 to n_edges - 1 do
      add_int a.(i)
    done
  in
  let add_blob b =
    let len = Buffer.length b in
    Buffer.add_buffer body b;
    for _ = len + 1 to pad8 len do
      Buffer.add_char body '\000'
    done
  in
  add_ints str_off;
  add_blob sbuf;
  add_ints label_sid;
  add_ints node_gid;
  add_ints node_name_sid;
  add_ints val_off;
  add_blob vbuf;
  add_ints csr.Csr.fwd_off;
  add_edge_ints csr.Csr.fwd_lab;
  add_edge_ints csr.Csr.fwd_tgt;
  add_ints seqs;
  add_ints csr.Csr.rev_off;
  add_edge_ints csr.Csr.rev_src;
  add_edge_ints csr.Csr.rev_lab;
  add_ints coll_sid;
  add_ints coll_off;
  add_ints mem_idx;
  add_ints mem_seq;
  add_blob mbuf;
  let body = Buffer.contents body in
  assert (header_len + String.length body = geo.total);
  let out = Buffer.create geo.total in
  Buffer.add_string out magic;
  let hi v = Buffer.add_int64_le out (Int64.of_int v) in
  hi 1 (* version *);
  hi (Graph.generation g);
  hi epoch;
  hi n_nodes;
  hi n_values;
  hi n_labels;
  hi n_edges;
  hi n_colls;
  hi n_members;
  hi n_strings;
  hi geo.strblob_len;
  hi geo.valheap_len;
  hi geo.meta_len;
  Buffer.add_int64_le out (fnv_string body);
  hi geo.total;
  hi 0 (* reserved *);
  Buffer.add_string out body;
  Buffer.contents out

let write ~path ?epoch ?meta ~gid ~edge_seq ~coll_seq g =
  let s = encode ?epoch ?meta ~gid ~edge_seq ~coll_seq g in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc s;
  close_out oc;
  Sys.rename tmp path;
  String.length s

let write_graph ~path ?epoch ?meta g =
  let csr = Graph.freeze g in
  let idx o =
    match Csr.node_index csr o with
    | Some i -> i
    | None -> invalid_arg "Segment.write_graph: unknown node"
  in
  let coll_base = Hashtbl.create 16 in
  let base = ref 0 in
  List.iter
    (fun c ->
      Hashtbl.replace coll_base c !base;
      base := !base + Graph.collection_size g c)
    (Graph.collections g);
  write ~path ?epoch ?meta ~gid:idx
    ~edge_seq:(fun o k -> csr.Csr.fwd_off.(idx o) + k)
    ~coll_seq:(fun c k -> Hashtbl.find coll_base c + k)
    g

(* --- reading --- *)

type bsrc =
  | S of string
  | M of (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let blen = function S s -> String.length s | M a -> Bigarray.Array1.dim a

let get_u8 src i =
  match src with
  | S s -> Char.code (String.unsafe_get s i)
  | M a -> Char.code (Bigarray.Array1.unsafe_get a i)

let get_raw src pos =
  if pos < 0 || pos + 8 > blen src then
    corrupt "unexpected end (int64 field)" (max 0 (min pos (blen src)));
  match src with
  | S s -> String.get_int64_le s pos
  | M a ->
    let b = Bytes.create 8 in
    for i = 0 to 7 do
      Bytes.unsafe_set b i (Bigarray.Array1.unsafe_get a (pos + i))
    done;
    Bytes.get_int64_le b 0

let get_int src pos =
  let v = get_raw src pos in
  if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0 then
    corrupt "int64 field out of range" pos;
  Int64.to_int v

let get_sub src pos len =
  if len < 0 || pos < 0 || pos + len > blen src then
    corrupt "unexpected end (byte range)" (max 0 (min pos (blen src)));
  match src with
  | S s -> String.sub s pos len
  | M a -> String.init len (fun i -> Bigarray.Array1.unsafe_get a (pos + i))

type t = {
  src : bsrc;
  geo : geometry;
  v_version : int;
  v_generation : int;
  v_epoch : int;
  mutable strings_cache : string array option;
}

type etarget = T_node of int | T_value of Value.t

let fnv_src src from upto =
  let h = ref fnv_basis in
  for i = from to upto - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (get_u8 src i))) fnv_prime
  done;
  !h

let open_view ~verify src =
  let len = blen src in
  if len < header_len then corrupt "file shorter than header" len;
  if get_sub src 0 (String.length magic) <> magic then corrupt "bad magic" 0;
  let fpos i = String.length magic + (8 * i) in
  let field i = get_int src (fpos i) in
  let version = field 0 in
  if version <> 1 then
    corrupt (Printf.sprintf "unsupported segment version %d" version) (fpos 0);
  let count i what =
    let v = field i in
    if v > max_count then
      corrupt (what ^ " count implausibly large") (fpos i);
    v
  in
  let geo =
    geometry
      ~n_nodes:(count 3 "node")
      ~n_values:(count 4 "value")
      ~n_labels:(count 5 "label")
      ~n_edges:(count 6 "edge")
      ~n_colls:(count 7 "collection")
      ~n_members:(count 8 "member")
      ~n_strings:(count 9 "string")
      ~strblob_len:(count 10 "string blob")
      ~valheap_len:(count 11 "value heap")
      ~meta_len:(count 12 "meta blob")
  in
  let total = field 14 in
  if total <> geo.total then
    corrupt "declared length does not match section geometry" (fpos 14);
  if total <> len then corrupt "file length mismatch" (min total len);
  if verify then begin
    let sum = fnv_src src header_len len in
    if Int64.compare sum (get_raw src (fpos 13)) <> 0 then
      corrupt "body checksum mismatch" (fpos 13)
  end;
  {
    src;
    geo;
    v_version = version;
    v_generation = field 1;
    v_epoch = field 2;
    strings_cache = None;
  }

let of_string ?(verify = true) s = open_view ~verify (S s)

let read ?(verify = true) ~path () =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string ~verify s

let map ?(verify = true) ~path () =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let size = (Unix.fstat fd).Unix.st_size in
      if size < header_len then corrupt "file shorter than header" size;
      let ga = Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |] in
      open_view ~verify (M (Bigarray.array1_of_genarray ga)))

(* --- accessors --- *)

let size_bytes t = blen t.src
let version t = t.v_version
let generation t = t.v_generation
let epoch t = t.v_epoch
let node_count t = t.geo.n_nodes
let value_count t = t.geo.n_values
let edge_count t = t.geo.n_edges
let label_count t = t.geo.n_labels
let member_count t = t.geo.n_members

let arr t off i = get_int t.src (off + (8 * i))

let string_at t ~at i =
  if i < 0 || i >= t.geo.n_strings then corrupt "string index out of range" at;
  let s0 = arr t t.geo.o_str_off i in
  let s1 = arr t t.geo.o_str_off (i + 1) in
  if s0 > s1 || s1 > t.geo.strblob_len then
    corrupt "string table offsets out of range" (t.geo.o_str_off + (8 * i));
  get_sub t.src (t.geo.o_strblob + s0) (s1 - s0)

let strings t =
  match t.strings_cache with
  | Some a -> a
  | None ->
    let a =
      Array.init t.geo.n_strings (fun i ->
          string_at t ~at:(t.geo.o_str_off + (8 * i)) i)
    in
    t.strings_cache <- Some a;
    a

let check_index what n i =
  if i < 0 || i >= n then invalid_arg ("Segment." ^ what ^ ": index out of range")

let label_name t i =
  check_index "label_name" t.geo.n_labels i;
  string_at t ~at:(t.geo.o_labels + (8 * i)) (arr t t.geo.o_labels i)

let node_gid t i =
  check_index "node_gid" t.geo.n_nodes i;
  arr t t.geo.o_node_gid i

let node_name t i =
  check_index "node_name" t.geo.n_nodes i;
  string_at t ~at:(t.geo.o_node_name + (8 * i)) (arr t t.geo.o_node_name i)

let value t i =
  check_index "value" t.geo.n_values i;
  let s0 = arr t t.geo.o_val_off i in
  let s1 = arr t t.geo.o_val_off (i + 1) in
  if s0 > s1 || s1 > t.geo.valheap_len then
    corrupt "value heap offsets out of range" (t.geo.o_val_off + (8 * i));
  let abs = t.geo.o_valheap + s0 in
  let slice = get_sub t.src abs (s1 - s0) in
  let r = { Binary.src = slice; pos = 0 } in
  let v =
    try Binary.get_value r (strings t)
    with Binary.Corrupt (msg, p) -> corrupt msg (abs + p)
  in
  if r.Binary.pos <> String.length slice then
    corrupt "trailing bytes in value" (abs + r.Binary.pos);
  v

let collections t =
  List.init t.geo.n_colls (fun i ->
      string_at t ~at:(t.geo.o_coll_sid + (8 * i)) (arr t t.geo.o_coll_sid i))

let meta t =
  let blob = get_sub t.src t.geo.o_meta t.geo.meta_len in
  let lines = String.split_on_char '\n' blob in
  List.filter_map
    (fun line ->
      if line = "" then None
      else
        match String.index_opt line '=' with
        | Some i ->
          Some
            ( String.sub line 0 i,
              String.sub line (i + 1) (String.length line - i - 1) )
        | None -> corrupt "malformed meta line" t.geo.o_meta)
    lines

let iter_edges t f =
  let g = t.geo in
  if g.n_nodes > 0 && arr t g.o_fwd_off 0 <> 0 then
    corrupt "forward offsets must start at 0" g.o_fwd_off;
  let labels = Array.init g.n_labels (label_name t) in
  for i = 0 to g.n_nodes - 1 do
    let e0 = arr t g.o_fwd_off i in
    let e1 = arr t g.o_fwd_off (i + 1) in
    if e0 > e1 || e1 > g.n_edges then
      corrupt "forward offsets not monotonic" (g.o_fwd_off + (8 * i));
    for e = e0 to e1 - 1 do
      let lab = arr t g.o_fwd_lab e in
      if lab < 0 || lab >= g.n_labels then
        corrupt "label index out of range" (g.o_fwd_lab + (8 * e));
      let tc = arr t g.o_fwd_tgt e in
      let tgt =
        if tc < g.n_nodes then T_node tc
        else if tc < g.n_nodes + g.n_values then T_value (value t (tc - g.n_nodes))
        else corrupt "target tcode out of range" (g.o_fwd_tgt + (8 * e))
      in
      f (arr t g.o_edge_seq e) i labels.(lab) tgt
    done
  done;
  if g.n_nodes > 0 && arr t g.o_fwd_off g.n_nodes <> g.n_edges then
    corrupt "forward offsets do not cover all edges"
      (g.o_fwd_off + (8 * g.n_nodes))

let iter_members t f =
  let g = t.geo in
  if g.n_colls > 0 && arr t g.o_coll_off 0 <> 0 then
    corrupt "collection offsets must start at 0" g.o_coll_off;
  for ci = 0 to g.n_colls - 1 do
    let cname =
      string_at t ~at:(g.o_coll_sid + (8 * ci)) (arr t g.o_coll_sid ci)
    in
    let m0 = arr t g.o_coll_off ci in
    let m1 = arr t g.o_coll_off (ci + 1) in
    if m0 > m1 || m1 > g.n_members then
      corrupt "collection offsets not monotonic" (g.o_coll_off + (8 * ci));
    for m = m0 to m1 - 1 do
      let idx = arr t g.o_members m in
      if idx < 0 || idx >= g.n_nodes then
        corrupt "member index out of range" (g.o_members + (8 * m));
      f (arr t g.o_member_seq m) cname idx
    done
  done;
  if g.n_colls > 0 && arr t g.o_coll_off g.n_colls <> g.n_members then
    corrupt "collection offsets do not cover all members"
      (g.o_coll_off + (8 * g.n_colls))

let to_graph ?(indexed = true) ?name t =
  let name =
    match name with
    | Some n -> n
    | None -> (
      match List.assoc_opt "graph" (meta t) with
      | Some n -> n
      | None -> "segment")
  in
  let g = Graph.create ~indexed ~name () in
  let nodes = Array.init t.geo.n_nodes (fun i -> Oid.fresh (node_name t i)) in
  Array.iter (Graph.add_node g) nodes;
  iter_edges t (fun _ i l tgt ->
      Graph.add_edge g nodes.(i) l
        (match tgt with
         | T_node j -> Graph.N nodes.(j)
         | T_value v -> Graph.V v));
  iter_members t (fun _ c i -> Graph.add_to_collection g c nodes.(i));
  g

let validate t =
  ignore (strings t);
  for i = 0 to t.geo.n_values - 1 do
    ignore (value t i)
  done;
  for i = 0 to t.geo.n_nodes - 1 do
    ignore (node_gid t i);
    ignore (node_name t i)
  done;
  iter_edges t (fun _ _ _ _ -> ());
  (* reverse adjacency: monotonic offsets over all tcodes, sources and
     labels in range *)
  let g = t.geo in
  let nt = g.n_nodes + g.n_values in
  if arr t g.o_rev_off 0 <> 0 then
    corrupt "reverse offsets must start at 0" g.o_rev_off;
  for i = 0 to nt - 1 do
    let e0 = arr t g.o_rev_off i in
    let e1 = arr t g.o_rev_off (i + 1) in
    if e0 > e1 || e1 > g.n_edges then
      corrupt "reverse offsets not monotonic" (g.o_rev_off + (8 * i))
  done;
  if arr t g.o_rev_off nt <> g.n_edges then
    corrupt "reverse offsets do not cover all edges" (g.o_rev_off + (8 * nt));
  for e = 0 to g.n_edges - 1 do
    let s = arr t g.o_rev_src e in
    if s < 0 || s >= g.n_nodes then
      corrupt "reverse source out of range" (g.o_rev_src + (8 * e));
    let l = arr t g.o_rev_lab e in
    if l < 0 || l >= g.n_labels then
      corrupt "reverse label out of range" (g.o_rev_lab + (8 * e))
  done;
  iter_members t (fun _ _ _ -> ());
  ignore (meta t)
