(** Mmap-able binary shard segments — the frozen, int-coded form of one
    repository shard.

    A segment persists a graph in the CSR kernel's layout (interned
    symbol table, forward and reverse adjacency, value heap): the shard
    is frozen once at publish time and the resulting arrays are written
    as fixed-width little-endian [int64] sections behind a checksummed
    header, so a reader can either decode the whole file or map it and
    index sections in place without parsing.  Alongside the CSR arrays
    a segment records what the plain {!Binary} format cannot: each
    node's {e global id} (its position in the mediated union graph) and
    per-element {e sequence numbers} for edges and collection members,
    which let {!Shard} re-assemble a multi-segment repository into a
    union graph whose iteration orders are deterministic.

    All malformed-input errors raise {!Binary.Corrupt} carrying the
    absolute byte offset at which the reader gave up. *)

open Sgraph

val magic : string
(** ["SGSEG001"]; the first 8 bytes of every segment file. *)

(** {1 Writing} *)

val encode :
  ?epoch:int ->
  ?meta:(string * string) list ->
  gid:(Oid.t -> int) ->
  edge_seq:(Oid.t -> int -> int) ->
  coll_seq:(string -> int -> int) ->
  Graph.t ->
  string
(** Freeze the graph and serialize its snapshot.  [gid] maps each node
    to its global id; [edge_seq node k] gives the global sequence
    number of the node's [k]-th outgoing edge (insertion order);
    [coll_seq c k] that of collection [c]'s [k]-th member.  [meta] keys
    and values must not contain ['\n'] (or ['='] in keys). *)

val write :
  path:string ->
  ?epoch:int ->
  ?meta:(string * string) list ->
  gid:(Oid.t -> int) ->
  edge_seq:(Oid.t -> int -> int) ->
  coll_seq:(string -> int -> int) ->
  Graph.t ->
  int
(** [encode] to a file (written to a temporary name, then renamed into
    place); returns the byte size. *)

val write_graph :
  path:string -> ?epoch:int -> ?meta:(string * string) list -> Graph.t -> int
(** [write] with canonical standalone numbering: global ids are node
    positions and sequence numbers the node-major enumeration order —
    the single-shard (or testing) case. *)

(** {1 Reading} *)

type t
(** An open segment: either fully loaded bytes or a live memory map.
    Accessors validate on touch and raise {!Binary.Corrupt} with
    absolute byte offsets. *)

val of_string : ?verify:bool -> string -> t
val read : ?verify:bool -> path:string -> unit -> t
(** Load the whole file into memory.  [verify] (default [true]) also
    checks the body checksum. *)

val map : ?verify:bool -> path:string -> unit -> t
(** Memory-map the file ([Unix.map_file], read-only).  With
    [~verify:false] only the header and section geometry are validated
    — no body page is touched until accessed, which is the
    cold-metadata fast path the bench measures. *)

(** {1 Accessors} *)

val size_bytes : t -> int
val version : t -> int
val generation : t -> int
(** The source graph's mutation generation at freeze time. *)

val epoch : t -> int
val node_count : t -> int
val value_count : t -> int
val edge_count : t -> int
val label_count : t -> int
val member_count : t -> int

val label_name : t -> int -> string
val node_gid : t -> int -> int
val node_name : t -> int -> string
val value : t -> int -> Value.t
val collections : t -> string list
val meta : t -> (string * string) list

(** An edge target, resolved within the segment. *)
type etarget = T_node of int  (** local node index *) | T_value of Value.t

val iter_edges : t -> (int -> int -> string -> etarget -> unit) -> unit
(** [iter_edges t f] calls [f seq src_index label target] for every
    edge, node-major in per-source insertion order. *)

val iter_members : t -> (int -> string -> int -> unit) -> unit
(** [iter_members t f] calls [f seq collection member_index] for every
    collection membership, collection-major in insertion order. *)

val to_graph : ?indexed:bool -> ?name:string -> t -> Graph.t
(** Materialize the segment as a fresh graph: nodes in stored order
    (names preserved, fresh oids), then edges node-major, then
    collections — the same canonical replay order {!Binary.decode}
    uses. *)

val validate : t -> unit
(** Walk every section (strings, values, adjacency in both directions,
    collections, meta) raising {!Binary.Corrupt} at the first
    malformed byte; used by [strudel repo status --check] and the
    corruption fuzz suite. *)
