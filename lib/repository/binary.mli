(** A compact binary storage representation for semistructured data
    (§6's "efficient storage representations" open problem).

    Stores a graph schema-free but compactly: one string table (labels,
    names and string values interned once), varint ids, a flat edge
    list; indexes are rebuilt on load per the repository's
    full-indexing policy (§2.2).  Deterministic (no [Marshal]) and
    versioned by magic. *)

open Sgraph

exception Corrupt of string * int
(** Malformed input: what was wrong, and the byte offset at which the
    decoder detected it (so a truncated or bit-flipped file can be
    triaged without a hex dump). *)

val encode : Graph.t -> string
val decode : ?indexed:bool -> string -> Graph.t
(** Raises {!Corrupt} on malformed input (bad magic, truncation,
    out-of-range indexes, trailing bytes). *)

val save : path:string -> Graph.t -> unit
val load : ?indexed:bool -> path:string -> unit -> Graph.t
