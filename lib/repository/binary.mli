(** A compact binary storage representation for semistructured data
    (§6's "efficient storage representations" open problem).

    Stores a graph schema-free but compactly: one string table (labels,
    names and string values interned once), varint ids, a flat edge
    list; indexes are rebuilt on load per the repository's
    full-indexing policy (§2.2).  Deterministic (no [Marshal]) and
    versioned by magic. *)

open Sgraph

exception Corrupt of string * int
(** Malformed input: what was wrong, and the byte offset at which the
    decoder detected it (so a truncated or bit-flipped file can be
    triaged without a hex dump). *)

val encode : Graph.t -> string
val decode : ?indexed:bool -> string -> Graph.t
(** Raises {!Corrupt} on malformed input (bad magic, truncation,
    out-of-range indexes, trailing bytes). *)

val save : path:string -> Graph.t -> unit
val load : ?indexed:bool -> path:string -> unit -> Graph.t

(** {1 Codec primitives}

    Shared with the mmap-able {!Segment} format, so both formats agree
    on varint and atomic-value encodings and raise the same {!Corrupt}
    exception. *)

val put_varint : Buffer.t -> int -> unit
(** LEB128 over the 63-bit unsigned word; any bit pattern round-trips. *)

type reader = { src : string; mutable pos : int }

val get_varint : reader -> int
(** Raises {!Corrupt} with the reader's byte offset on truncation. *)

type interner
(** A write-side string table: first occurrence assigns the next id. *)

val interner : unit -> interner
val intern : interner -> string -> int
val interner_strings : interner -> string list
(** The interned strings in id order. *)

val put_value : Buffer.t -> interner -> Value.t -> unit
val get_value : reader -> string array -> Value.t
(** Decode one value against a string table; raises {!Corrupt} (bad
    tag, string index out of range, truncation) with byte offsets
    relative to the reader's string. *)
