(* The sharded repository.  See shard.mli for the model.

   Publishing writes the new epoch's segments beside the old ones and
   then renames a fresh MANIFEST over the previous one — readers that
   already pinned a snapshot keep their segment set; new readers see
   the new epoch atomically.  The manifest is a line-oriented text
   file; string fields use OCaml lexical escaping (%S / Scanf %S), so
   arbitrary collection and source names round-trip. *)

open Sgraph

type spec = By_collection | By_family

let spec_name = function By_collection -> "collection" | By_family -> "family"

let spec_of_name = function
  | "collection" -> Some By_collection
  | "family" -> Some By_family
  | _ -> None

type config = { dir : string; cfg_spec : spec }

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let family_of_name n =
  let len = String.length n in
  match String.index_opt n '(' with
  | Some i when i > 0 && len > i + 1 && n.[len - 1] = ')' ->
    let f = String.sub n 0 i in
    if String.for_all is_word_char f then Some f else None
  | _ -> None

let shard_key spec ~primary o =
  let coll () = primary o in
  let fam () = family_of_name (Oid.name o) in
  let pick a b =
    match a () with
    | Some k -> k
    | None -> ( match b () with Some k -> k | None -> "rest")
  in
  match spec with
  | By_collection -> pick coll fam
  | By_family -> pick fam coll

let partition spec g =
  let primary = Oid.Tbl.create (max 16 (Graph.node_count g)) in
  List.iter
    (fun c ->
      List.iter
        (fun o ->
          if not (Oid.Tbl.mem primary o) then Oid.Tbl.add primary o c)
        (Graph.collection g c))
    (Graph.collections g);
  let key o = shard_key spec ~primary:(Oid.Tbl.find_opt primary) o in
  let shards = Hashtbl.create 8 in
  let order = ref [] in
  let shard_of k =
    match Hashtbl.find_opt shards k with
    | Some sg -> sg
    | None ->
      let sg = Graph.create ~name:("shard:" ^ k) () in
      Hashtbl.add shards k sg;
      order := k :: !order;
      sg
  in
  let home = Oid.Tbl.create (max 16 (Graph.node_count g)) in
  let nodes = Graph.nodes g in
  List.iter
    (fun o ->
      let sg = shard_of (key o) in
      Oid.Tbl.replace home o sg;
      Graph.add_node sg o)
    nodes;
  List.iter
    (fun o ->
      let sg = Oid.Tbl.find home o in
      List.iter (fun (l, t) -> Graph.add_edge sg o l t) (Graph.out_edges g o))
    nodes;
  List.iter
    (fun c ->
      List.iter
        (fun o -> Graph.add_to_collection (Oid.Tbl.find home o) c o)
        (Graph.collection g c))
    (Graph.collections g);
  List.rev_map (fun k -> (k, Hashtbl.find shards k)) !order

(* --- manifest --- *)

exception Manifest_error of string

type entry = {
  e_name : string;
  e_file : string;
  e_collections : string list;
  e_labels : string list;
  e_nodes : int;
  e_edges : int;
  e_bytes : int;
}

type manifest = {
  m_epoch : int;
  m_spec : spec;
  m_graph : string;
  m_sources : (string * int) list;
  m_entries : entry list;
}

let manifest_file = "MANIFEST"
let manifest_magic = "strudel-shard-manifest 1"

let write_manifest ~dir m =
  let b = Buffer.create 1024 in
  Printf.bprintf b "%s\n" manifest_magic;
  Printf.bprintf b "epoch %d\n" m.m_epoch;
  Printf.bprintf b "spec %s\n" (spec_name m.m_spec);
  Printf.bprintf b "graph %S\n" m.m_graph;
  List.iter (fun (s, v) -> Printf.bprintf b "source %S %d\n" s v) m.m_sources;
  List.iter
    (fun e ->
      Printf.bprintf b "shard %S %S %d %d %d\n" e.e_name e.e_file e.e_nodes
        e.e_edges e.e_bytes;
      List.iter (fun c -> Printf.bprintf b "c %S\n" c) e.e_collections;
      List.iter (fun l -> Printf.bprintf b "l %S\n" l) e.e_labels)
    m.m_entries;
  let tmp = Filename.concat dir (manifest_file ^ ".tmp") in
  let oc = open_out_bin tmp in
  Buffer.output_buffer oc b;
  close_out oc;
  Sys.rename tmp (Filename.concat dir manifest_file)

let load_manifest ~dir =
  let path = Filename.concat dir manifest_file in
  if not (Sys.file_exists path) then
    raise (Manifest_error ("no manifest at " ^ path));
  let ic = open_in_bin path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  let fail lnum msg =
    raise (Manifest_error (Printf.sprintf "%s:%d: %s" path lnum msg))
  in
  (match lines with
   | first :: _ when first = manifest_magic -> ()
   | _ -> fail 1 "bad manifest magic");
  let epoch = ref 0 in
  let spec = ref By_collection in
  let graph = ref "mediated" in
  let sources = ref [] in
  let entries = ref [] in
  (* current entry under construction, with reversed lists *)
  let cur = ref None in
  let flush_cur () =
    match !cur with
    | None -> ()
    | Some (e, colls, labs) ->
      entries :=
        { e with
          e_collections = List.rev !colls;
          e_labels = List.rev !labs;
        }
        :: !entries;
      cur := None
  in
  List.iteri
    (fun i line ->
      let lnum = i + 1 in
      if lnum = 1 || line = "" then ()
      else
        let scan fmt k =
          try Scanf.sscanf line fmt k
          with Scanf.Scan_failure m | Failure m -> fail lnum m
        in
        match String.index_opt line ' ' with
        | None -> fail lnum "malformed line"
        | Some sp -> (
          match String.sub line 0 sp with
          | "epoch" -> scan "epoch %d" (fun v -> epoch := v)
          | "spec" ->
            scan "spec %s" (fun s ->
                match spec_of_name s with
                | Some v -> spec := v
                | None -> fail lnum ("unknown spec " ^ s))
          | "graph" -> scan "graph %S" (fun s -> graph := s)
          | "source" ->
            scan "source %S %d" (fun s v -> sources := (s, v) :: !sources)
          | "shard" ->
            flush_cur ();
            scan "shard %S %S %d %d %d" (fun name file nodes edges bytes ->
                cur :=
                  Some
                    ( {
                        e_name = name;
                        e_file = file;
                        e_collections = [];
                        e_labels = [];
                        e_nodes = nodes;
                        e_edges = edges;
                        e_bytes = bytes;
                      },
                      ref [],
                      ref [] ))
          | "c" -> (
            match !cur with
            | None -> fail lnum "collection line outside a shard"
            | Some (_, colls, _) -> scan "c %S" (fun c -> colls := c :: !colls))
          | "l" -> (
            match !cur with
            | None -> fail lnum "label line outside a shard"
            | Some (_, _, labs) -> scan "l %S" (fun l -> labs := l :: !labs))
          | kw -> fail lnum ("unknown keyword " ^ kw)))
    lines;
  flush_cur ();
  {
    m_epoch = !epoch;
    m_spec = !spec;
    m_graph = !graph;
    m_sources = List.rev !sources;
    m_entries = List.rev !entries;
  }

let pp_manifest ppf m =
  Fmt.pf ppf "@[<v>shard repository: graph %S  epoch %d  spec %s" m.m_graph
    m.m_epoch (spec_name m.m_spec);
  List.iter
    (fun (s, v) -> Fmt.pf ppf "@,source %-16s version %d" s v)
    m.m_sources;
  List.iter
    (fun e ->
      Fmt.pf ppf "@,shard %-16s %s  nodes=%d edges=%d bytes=%d" e.e_name
        e.e_file e.e_nodes e.e_edges e.e_bytes;
      if e.e_collections <> [] then
        Fmt.pf ppf "@,  collections: %s" (String.concat ", " e.e_collections))
    m.m_entries;
  Fmt.pf ppf "@]"

(* --- snapshots --- *)

type shard = { sh_entry : entry; sh_graph : Graph.t }

type snapshot = {
  sn_epoch : int;
  sn_manifest : manifest;
  sn_shards : shard list;
  sn_union : Graph.t;
}

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let sanitize used key =
  let base =
    String.map (fun c -> if is_word_char c || c = '-' then c else '_') key
  in
  let base = if base = "" then "shard" else base in
  let rec pick n =
    let cand = if n = 0 then base else Printf.sprintf "%s_%d" base n in
    if Hashtbl.mem used cand then pick (n + 1)
    else begin
      Hashtbl.add used cand ();
      cand
    end
  in
  pick 0

let publish config ~epoch ?(sources = []) g =
  mkdir_p config.dir;
  let parts = partition config.cfg_spec g in
  let nodes = Graph.nodes g in
  let n = Graph.node_count g in
  let gid_tbl = Oid.Tbl.create (max 16 n) in
  List.iteri (fun i o -> Oid.Tbl.replace gid_tbl o i) nodes;
  let ebase = Oid.Tbl.create (max 16 n) in
  let b = ref 0 in
  List.iter
    (fun o ->
      Oid.Tbl.replace ebase o !b;
      b := !b + List.length (Graph.out_edges g o))
    nodes;
  let cbase = Hashtbl.create 8 in
  let cpos = Hashtbl.create 8 in
  let cb = ref 0 in
  List.iter
    (fun c ->
      Hashtbl.replace cbase c !cb;
      let tbl = Oid.Tbl.create 16 in
      List.iteri (fun i o -> Oid.Tbl.replace tbl o i) (Graph.collection g c);
      Hashtbl.replace cpos c tbl;
      cb := !cb + Graph.collection_size g c)
    (Graph.collections g);
  let gid o = Oid.Tbl.find gid_tbl o in
  let used = Hashtbl.create 8 in
  let shards =
    List.map
      (fun (key, sg) ->
        let file =
          Printf.sprintf "%s.%d.seg" (sanitize used key) epoch
        in
        let coll_arr = Hashtbl.create 8 in
        List.iter
          (fun c ->
            Hashtbl.replace coll_arr c
              (Array.of_list (Graph.collection sg c)))
          (Graph.collections sg);
        let coll_seq c k =
          let o = (Hashtbl.find coll_arr c).(k) in
          Hashtbl.find cbase c + Oid.Tbl.find (Hashtbl.find cpos c) o
        in
        let edge_seq o k = Oid.Tbl.find ebase o + k in
        let bytes =
          Segment.write
            ~path:(Filename.concat config.dir file)
            ~epoch
            ~meta:[ ("shard", key); ("union", Graph.name g) ]
            ~gid ~edge_seq ~coll_seq sg
        in
        {
          sh_entry =
            {
              e_name = key;
              e_file = file;
              e_collections = Graph.collections sg;
              e_labels = Graph.labels sg;
              e_nodes = Graph.node_count sg;
              e_edges = Graph.edge_count sg;
              e_bytes = bytes;
            };
          sh_graph = sg;
        })
      parts
  in
  let manifest =
    {
      m_epoch = epoch;
      m_spec = config.cfg_spec;
      m_graph = Graph.name g;
      m_sources = sources;
      m_entries = List.map (fun s -> s.sh_entry) shards;
    }
  in
  write_manifest ~dir:config.dir manifest;
  { sn_epoch = epoch; sn_manifest = manifest; sn_shards = shards; sn_union = g }

let open_dir ?(verify = true) ~dir () =
  let m = load_manifest ~dir in
  let segs =
    List.map
      (fun e -> (e, Segment.read ~verify ~path:(Filename.concat dir e.e_file) ()))
      m.m_entries
  in
  (* global node table: dedup ghost stubs against home records by gid *)
  let node_tbl = Hashtbl.create 1024 in
  List.iter
    (fun (e, s) ->
      for i = 0 to Segment.node_count s - 1 do
        let gid = Segment.node_gid s i in
        let nm = Segment.node_name s i in
        match Hashtbl.find_opt node_tbl gid with
        | None -> Hashtbl.add node_tbl gid nm
        | Some nm' ->
          if nm <> nm' then
            raise
              (Manifest_error
                 (Printf.sprintf
                    "segment %s: conflicting names for global id %d" e.e_file
                    gid))
      done)
    segs;
  let gids =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) node_tbl [])
  in
  let union = Graph.create ~name:m.m_graph () in
  let oid_of = Hashtbl.create (max 16 (List.length gids)) in
  List.iter
    (fun gid ->
      let o = Oid.fresh (Hashtbl.find node_tbl gid) in
      Hashtbl.add oid_of gid o;
      Graph.add_node union o)
    gids;
  let resolve s i = Hashtbl.find oid_of (Segment.node_gid s i) in
  let target s = function
    | Segment.T_node j -> Graph.N (resolve s j)
    | Segment.T_value v -> Graph.V v
  in
  let edges = ref [] in
  List.iter
    (fun (_, s) ->
      Segment.iter_edges s (fun seq i l tgt ->
          edges := (seq, resolve s i, l, target s tgt) :: !edges))
    segs;
  let edges = List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b) !edges in
  List.iter (fun (_, src, l, t) -> Graph.add_edge union src l t) edges;
  let members = ref [] in
  List.iter
    (fun (_, s) ->
      Segment.iter_members s (fun seq c i ->
          members := (seq, c, resolve s i) :: !members))
    segs;
  let members = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !members in
  List.iter (fun (_, c, o) -> Graph.add_to_collection union c o) members;
  let shards =
    List.map
      (fun (e, s) ->
        let sg = Graph.create ~name:("shard:" ^ e.e_name) () in
        for i = 0 to Segment.node_count s - 1 do
          Graph.add_node sg (resolve s i)
        done;
        Segment.iter_edges s (fun _ i l tgt ->
            Graph.add_edge sg (resolve s i) l (target s tgt));
        Segment.iter_members s (fun _ c i ->
            Graph.add_to_collection sg c (resolve s i));
        { sh_entry = e; sh_graph = sg })
      segs
  in
  { sn_epoch = m.m_epoch; sn_manifest = m; sn_shards = shards; sn_union = union }

let shards_with_collection sn c =
  List.filter (fun s -> List.mem c s.sh_entry.e_collections) sn.sn_shards
