(** {!Dsan} races as catalog diagnostics (see the interface). *)

let span_of_pos ((file, line, c1, c2) : Dsan.pos) =
  { Diagnostic.file; l1 = line; c1 = c1 + 1; l2 = line; c2 = c2 + 1 }

let pos_str ((file, line, _, _) : Dsan.pos) = Printf.sprintf "%s:%d" file line

let lockset_str = function
  | [] -> "no locks held"
  | ls -> "holding " ^ String.concat ", " ls

let diagnostic_of_race (r : Dsan.race) =
  let code, what =
    match r.Dsan.r_kind with
    | `Write_write -> ("SA060", "conflicting writes")
    | `Read_write -> ("SA061", "conflicting read and write")
  in
  let message =
    Printf.sprintf "%s to %s (field %d) with no happens-before order"
      what r.Dsan.r_object r.Dsan.r_field
  in
  let access which site tid locks =
    Printf.sprintf "%s access: %s on domain %d, %s" which (pos_str site) tid
      (lockset_str locks)
  in
  Diagnostic.make
    ~span:(span_of_pos r.Dsan.r_site1)
    ~related:
      [ access "first" r.Dsan.r_site1 r.Dsan.r_tid1 r.Dsan.r_locks1;
        access "second" r.Dsan.r_site2 r.Dsan.r_tid2 r.Dsan.r_locks2 ]
    ~code Diagnostic.Error message

let summary ?(schedules = 1) ~stats () =
  Diagnostic.make ~code:"SA062" Diagnostic.Info
    (Printf.sprintf
       "race sanitizer: %d instrumented ops, %d locations, %d schedule(s) \
        explored, %d perturbation(s), %d race(s)"
       stats.Dsan.st_ops stats.Dsan.st_locations schedules
       stats.Dsan.st_yields stats.Dsan.st_races)

let report ?schedules () =
  let races = List.map diagnostic_of_race (Dsan.races ()) in
  let races = List.sort Diagnostic.compare races in
  if races = [] && not (Dsan.enabled ()) then []
  else races @ [ summary ?schedules ~stats:(Dsan.stats ()) () ]
