(** Cross-layer static analysis of a site specification ([strudel
    lint]).

    Analyzes the complete specification — site-definition queries,
    templates, derived site schema, integrity constraints, and source
    declarations — {e without building the site}.  Five analysis
    families:

    - {b path emptiness}: each regular path expression's NFA is
      intersected with a DataGuide of the source data (product
      automaton); an empty intersection means the pattern can never
      bind (SA010–SA013);
    - {b dead and unused specification}: dead variables, unused
      collections, page families unreachable from the root, duplicate
      link clauses (SA020–SA024);
    - {b schema-level constraint verification}: the site schema is
      derived from the queries and every declared constraint checked
      statically (SA030–SA031);
    - {b template lint}: templates are checked against the derived
      schema — impossible attribute references, templates bound to
      never-collected collections, broken template references, unused
      named templates (SA040–SA043);
    - {b shard-manifest coverage}: with a repository shard manifest,
      query collections no shard is home to — blocks the sharded
      evaluator cannot prune (SA050).

    Parse/check plumbing (SA001–SA005) runs first; analyses degrade
    gracefully when a query does not parse. *)

open Sgraph

type spec = {
  name : string;  (** site name, used as the fallback artifact name *)
  queries : (string * string) list;  (** named StruQL sources *)
  templates : Template.Generator.template_set;
  root_family : string;
  constraints : Schema.Verify.constraint_ list;
  registry : Struql.Builtins.registry;
  data : Graph.t option;
      (** the source data graph; [None] disables the data-dependent
          analyses (SA010–SA013 and the extent checks of SA011/SA012) *)
  declared_sources : string list;
      (** mediated sites: the declared source names *)
  mapping_sources : string list;
      (** mediated sites: the source name of every GAV mapping *)
  shard_manifest : (string * string list) list option;
      (** sharded repositories: each shard's name and home collections,
          as published in the {!Repository.Shard} manifest.  When
          present, SA050 flags query collections no shard is home to
          (the sharded evaluator would fall back to a full union scan
          for those blocks); [None] disables the analysis *)
  max_guide_states : int;
      (** DataGuide size bound for the path-emptiness analysis; when
          exceeded the analysis degrades to SA013 instead of failing *)
}

val of_definition :
  ?data:Graph.t ->
  ?declared_sources:string list ->
  ?mapping_sources:string list ->
  ?shard_manifest:(string * string list) list ->
  ?max_guide_states:int ->
  Strudel.Site.definition ->
  spec

val run : spec -> Diagnostic.t list
(** Run all analyses; diagnostics come back sorted (file, position,
    code). *)

type fail_on = Fail_error | Fail_warning

val fail_on_of_string : string -> fail_on option

val exit_code : fail_on -> Diagnostic.t list -> int
(** [1] when a diagnostic at or above the threshold severity is
    present, [0] otherwise. *)
