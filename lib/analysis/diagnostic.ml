(** Structured diagnostics for [strudel lint]: stable codes, severities,
    spans, and the text / JSON / SARIF 2.1.0 renderers. *)

type severity = Error | Warning | Info

let severity_name (s : severity) =
  match s with Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_rank (s : severity) =
  match s with Error -> 2 | Warning -> 1 | Info -> 0

type span = { file : string; l1 : int; c1 : int; l2 : int; c2 : int }

type t = {
  code : string;
  severity : severity;
  message : string;
  span : span option;
  related : string list;
}

let make ?span ?(related = []) ~code severity message =
  { code; severity; message; span; related }

(* The complete diagnostic catalog.  Codes are stable: never renumber,
   only append.  The DESIGN.md table mirrors this list. *)
let catalog : (string * severity * string) list =
  [
    ("SA001", Error, "StruQL query does not parse");
    ("SA002", Error, "StruQL query fails static checking");
    ("SA003", Warning, "variable is not range-restricted (active-domain)");
    ("SA004", Error, "template does not parse");
    ("SA005", Error, "mediator mapping names an undeclared source");
    ("SA010", Error, "path expression can never match the data");
    ("SA011", Warning, "edge label never occurs in the data");
    ("SA012", Warning, "WHERE atom names an absent or empty collection");
    ("SA013", Info, "path analyses skipped (DataGuide too large)");
    ("SA020", Warning, "variable is bound but never used");
    ("SA021", Warning, "collection is collected but never used");
    ("SA022", Warning, "page family is unreachable from the root family");
    ("SA023", Warning, "duplicate link clause");
    ("SA024", Error, "root family is never created");
    ("SA030", Error, "integrity constraint violated on the site schema");
    ("SA031", Info, "integrity constraint undecidable statically");
    ("SA040", Error, "template bound to a collection the queries never collect");
    ("SA041", Warning, "attribute no page of the template's family can carry");
    ("SA042", Error, "broken template reference");
    ("SA043", Info, "named template never selected by a constant link");
    ("SA050", Warning,
     "query reads a collection no shard of the repository manifest is home \
      to");
    ("SA060", Error,
     "data race: two unordered writes to the same shared location");
    ("SA061", Error,
     "data race: unordered read and write of the same shared location");
    ("SA062", Info, "race sanitizer run summary");
    ("SA070", Info,
     "site query block cannot be delta-evaluated; [strudel watch] \
      re-evaluates it in full each cycle");
  ]

let compare a b =
  let span_key = function
    | None -> ("", 0, 0)
    | Some s -> (s.file, s.l1, s.c1)
  in
  let c = Stdlib.compare (span_key a.span) (span_key b.span) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c else String.compare a.message b.message

let max_severity diags =
  List.fold_left
    (fun acc d ->
      match acc with
      | None -> Some d.severity
      | Some s ->
        if severity_rank d.severity > severity_rank s then Some d.severity
        else acc)
    None diags

(* --- text --- *)

let pp_span ppf s =
  if s.c1 > 0 then Fmt.pf ppf "%s:%d:%d" s.file s.l1 s.c1
  else if s.l1 > 0 then Fmt.pf ppf "%s:%d" s.file s.l1
  else Fmt.pf ppf "%s" s.file

let to_text diags =
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      (match d.span with
       | Some s -> Buffer.add_string buf (Fmt.str "%a: " pp_span s)
       | None -> ());
      Buffer.add_string buf
        (Printf.sprintf "%s %s: %s\n" (severity_name d.severity) d.code
           d.message);
      List.iter
        (fun r -> Buffer.add_string buf (Printf.sprintf "  note: %s\n" r))
        d.related)
    diags;
  let count sev =
    List.length (List.filter (fun d -> d.severity = sev) diags)
  in
  Buffer.add_string buf
    (Printf.sprintf "%d error(s), %d warning(s), %d info\n" (count Error)
       (count Warning) (count Info));
  Buffer.contents buf

(* --- JSON --- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_of_span s =
  Printf.sprintf
    "{\"file\":\"%s\",\"startLine\":%d,\"startColumn\":%d,\"endLine\":%d,\"endColumn\":%d}"
    (json_escape s.file) s.l1 s.c1 s.l2 s.c2

let to_json diags =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"diagnostics\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n    {";
      Buffer.add_string buf
        (Printf.sprintf "\"code\":\"%s\",\"severity\":\"%s\",\"message\":\"%s\""
           (json_escape d.code)
           (severity_name d.severity)
           (json_escape d.message));
      (match d.span with
       | Some s -> Buffer.add_string buf (",\"span\":" ^ json_of_span s)
       | None -> ());
      if d.related <> [] then begin
        Buffer.add_string buf ",\"related\":[";
        List.iteri
          (fun j r ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape r)))
          d.related;
        Buffer.add_char buf ']'
      end;
      Buffer.add_char buf '}')
    diags;
  let count sev =
    List.length (List.filter (fun d -> d.severity = sev) diags)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\n  ],\n  \"summary\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d}\n}\n"
       (count Error) (count Warning) (count Info));
  Buffer.contents buf

(* --- SARIF 2.1.0 --- *)

let sarif_level (s : severity) =
  match s with Error -> "error" | Warning -> "warning" | Info -> "note"

let to_sarif ?(tool_version = "0.1") diags =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  Buffer.add_string buf "  \"version\": \"2.1.0\",\n";
  Buffer.add_string buf "  \"runs\": [\n    {\n";
  Buffer.add_string buf "      \"tool\": {\n        \"driver\": {\n";
  Buffer.add_string buf "          \"name\": \"strudel-lint\",\n";
  Buffer.add_string buf
    (Printf.sprintf "          \"version\": \"%s\",\n"
       (json_escape tool_version));
  Buffer.add_string buf "          \"rules\": [";
  List.iteri
    (fun i (code, sev, desc) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n            {\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"defaultConfiguration\":{\"level\":\"%s\"}}"
           code (json_escape desc) (sarif_level sev)))
    catalog;
  Buffer.add_string buf "\n          ]\n        }\n      },\n";
  Buffer.add_string buf "      \"results\": [";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf "\n        {";
      Buffer.add_string buf
        (Printf.sprintf
           "\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"}"
           (json_escape d.code) (sarif_level d.severity)
           (json_escape
              (if d.related = [] then d.message
               else d.message ^ " (" ^ String.concat "; " d.related ^ ")")));
      (match d.span with
       | Some s ->
         Buffer.add_string buf
           (Printf.sprintf
              ",\"locations\":[{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d%s,\"endLine\":%d%s}}}]"
              (json_escape s.file) (max 1 s.l1)
              (if s.c1 > 0 then Printf.sprintf ",\"startColumn\":%d" s.c1
               else "")
              (max 1 s.l2)
              (if s.c2 > 0 then Printf.sprintf ",\"endColumn\":%d" s.c2
               else ""))
       | None -> ());
      Buffer.add_char buf '}')
    diags;
  Buffer.add_string buf "\n      ]\n    }\n  ]\n}\n";
  Buffer.contents buf
