(** Rendering {!Dsan} race reports as [strudel lint] diagnostics.

    The sanitizer runtime ({!Dsan}) records conflicting unordered
    access pairs; this module maps them onto the stable diagnostic
    catalog so races render through the same text / JSON / SARIF
    pipeline (and CI gating) as every other analyzer finding:

    {ul
    {- [SA060] ([Error]) — write/write race;}
    {- [SA061] ([Error]) — read/write race;}
    {- [SA062] ([Info]) — one summary line per sanitized run (ops
       replayed, locations tracked, schedule points perturbed, races).}}

    Diagnostics are deterministic: races are sorted by site, object and
    field before rendering, so two runs that find the same races emit
    byte-identical reports. *)

val diagnostic_of_race : Dsan.race -> Diagnostic.t
(** [SA060]/[SA061] with the first access site as the span; the second
    site, both domains and both held locksets go in [related]. *)

val summary :
  ?schedules:int -> stats:Dsan.stats -> unit -> Diagnostic.t
(** The [SA062] run summary.  [schedules] is the number of seeds the
    caller explored (defaults to 1). *)

val report : ?schedules:int -> unit -> Diagnostic.t list
(** Everything the current sanitizer run produced — the sorted race
    diagnostics followed by the [SA062] summary — read straight from
    the {!Dsan} runtime.  Empty when the sanitizer is disabled and no
    races were recorded. *)
