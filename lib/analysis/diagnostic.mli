(** Structured diagnostics for [strudel lint].

    Every finding carries a stable code ([SA0xx]), a severity, a
    one-line message, and — when the offending construct has source
    text — a span.  Diagnostics render as human-readable text, as
    JSON, and as SARIF 2.1.0 (for code-scanning upload in CI). *)

type severity = Error | Warning | Info

val severity_name : severity -> string
(** ["error"] / ["warning"] / ["info"]. *)

val severity_rank : severity -> int
(** [Error] = 2, [Warning] = 1, [Info] = 0. *)

type span = {
  file : string;  (** query name, template key, or file path *)
  l1 : int;       (** 1-based start line *)
  c1 : int;       (** 1-based start column; 0 when unknown *)
  l2 : int;       (** end line *)
  c2 : int;       (** one past the last column *)
}

type t = {
  code : string;  (** stable [SA0xx] code *)
  severity : severity;
  message : string;
  span : span option;
  related : string list;
      (** witnesses and notes, e.g. a violated constraint's witnesses *)
}

val make :
  ?span:span -> ?related:string list -> code:string -> severity ->
  string -> t

val catalog : (string * severity * string) list
(** Every diagnostic code this analyzer can emit: code, default
    severity, short description.  The SARIF rule table and the DESIGN.md
    catalog are generated from this list. *)

val compare : t -> t -> int
(** Order for stable output: file, position, code, message. *)

val max_severity : t list -> severity option

val to_text : t list -> string
(** One line per diagnostic ([file:line:col: severity SA0xx: message])
    followed by indented [note:] lines, then a summary line. *)

val to_json : t list -> string

val to_sarif : ?tool_version:string -> t list -> string
(** SARIF 2.1.0, one run, rules from {!catalog}. *)
