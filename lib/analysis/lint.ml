(** Cross-layer static analysis of a site specification.

    [run] analyzes queries, templates, derived schema, constraints and
    source declarations without building the site; see the catalog in
    {!Diagnostic.catalog} for the codes each family emits. *)

open Sgraph
module P = Struql.Parser
module Ast = Struql.Ast
module SS = Schema.Site_schema

type spec = {
  name : string;
  queries : (string * string) list;
  templates : Template.Generator.template_set;
  root_family : string;
  constraints : Schema.Verify.constraint_ list;
  registry : Struql.Builtins.registry;
  data : Graph.t option;
  declared_sources : string list;
  mapping_sources : string list;
  shard_manifest : (string * string list) list option;
  max_guide_states : int;
}

let of_definition ?data ?(declared_sources = []) ?(mapping_sources = [])
    ?shard_manifest ?(max_guide_states = 10_000)
    (def : Strudel.Site.definition) =
  {
    name = def.Strudel.Site.name;
    queries = def.Strudel.Site.queries;
    templates = def.Strudel.Site.templates;
    root_family = def.Strudel.Site.root_family;
    constraints = def.Strudel.Site.constraints;
    registry = def.Strudel.Site.registry;
    data;
    declared_sources;
    mapping_sources;
    shard_manifest;
    max_guide_states;
  }

type fail_on = Fail_error | Fail_warning

let fail_on_of_string = function
  | "error" -> Some Fail_error
  | "warning" -> Some Fail_warning
  | _ -> None

let exit_code fo diags =
  let threshold = match fo with Fail_error -> 2 | Fail_warning -> 1 in
  if
    List.exists
      (fun d -> Diagnostic.severity_rank d.Diagnostic.severity >= threshold)
      diags
  then 1
  else 0

(* --- span plumbing --- *)

let dspan file (sp : P.span) =
  { Diagnostic.file; l1 = sp.P.sl; c1 = sp.P.sc; l2 = sp.P.el; c2 = sp.P.ec }

let ospan file sp = Option.map (dspan file) sp

let file_only file = { Diagnostic.file; l1 = 0; c1 = 0; l2 = 0; c2 = 0 }

(* Locate [needle] in template text; a file-only span when absent. *)
let find_span file text needle =
  let n = String.length text and m = String.length needle in
  let rec idx i =
    if i + m > n then None
    else if String.sub text i m = needle then Some i
    else idx (i + 1)
  in
  match idx 0 with
  | None -> file_only file
  | Some i ->
    let line = ref 1 and bol = ref 0 in
    for j = 0 to i - 1 do
      if text.[j] = '\n' then begin
        incr line;
        bol := j + 1
      end
    done;
    let c = i - !bol + 1 in
    { Diagnostic.file; l1 = !line; c1 = c; l2 = !line; c2 = c + m }

(* Pair AST items with their spans when the span list is aligned. *)
let zip_opt items sps =
  match sps with
  | Some sps when List.length sps = List.length items ->
    List.map2 (fun i s -> (i, Some s)) items sps
  | _ -> List.map (fun i -> (i, None)) items

type pq = { qname : string; ast : Ast.query; spans : P.query_spans }

(* Visit every block of the query with its spans, outermost first. *)
let iter_blocks f (pq : pq) =
  let rec go (b : Ast.block) (sb : P.block_spans option) =
    f pq.qname b sb;
    let nsps = Option.map (fun s -> s.P.s_nested) sb in
    List.iter (fun (nb, nsb) -> go nb nsb) (zip_opt b.Ast.nested nsps)
  in
  List.iter
    (fun (b, sb) -> go b sb)
    (zip_opt pq.ast.Ast.blocks (Some pq.spans))

let where_sp (sb : P.block_spans option) =
  Option.map (fun s -> s.P.s_where) sb

let link_sp (sb : P.block_spans option) = Option.map (fun s -> s.P.s_link) sb

let create_sp (sb : P.block_spans option) =
  Option.map (fun s -> s.P.s_create) sb

let collect_sp (sb : P.block_spans option) =
  Option.map (fun s -> s.P.s_collect) sb

(* Collection references, looking through negation. *)
let rec atom_names acc = function
  | Ast.C_atom (n, _) -> n :: acc
  | Ast.C_not c -> atom_names acc c
  | Ast.C_edge _ | Ast.C_path _ | Ast.C_cmp _ | Ast.C_in _ -> acc

(* Occurrences of a variable in a block subtree (conditions and
   construction clauses, nested blocks included). *)
let occurrences v b =
  let count acc vars =
    acc + List.length (List.filter (String.equal v) vars)
  in
  let rec go acc (b : Ast.block) =
    let acc =
      List.fold_left
        (fun acc c -> count acc (Ast.condition_vars [] c))
        acc b.Ast.where
    in
    let acc =
      List.fold_left
        (fun acc (_, args) -> count acc (List.fold_left Ast.term_vars [] args))
        acc b.Ast.create
    in
    let acc =
      List.fold_left
        (fun acc (x, l, y) ->
          count acc (Ast.label_vars (Ast.term_vars (Ast.term_vars [] x) y) l))
        acc b.Ast.link
    in
    let acc =
      List.fold_left
        (fun acc (_, t) -> count acc (Ast.term_vars [] t))
        acc b.Ast.collect
    in
    List.fold_left go acc b.Ast.nested
  in
  go 0 b

(* Delta-evaluability of one top-level block (SA070), mirroring the
   classification the differential engine performs at prime time
   ({!Struql.Dexec}): driven only when the block's plan opens with an
   unbound driving-collection scan and every later step — nested
   blocks included, under the (bound, driver-derived) pair threaded
   down the tree — anchors its data reads on driver-derived objects.
   Planned against [data] when the lint has it, else an empty graph
   (classification depends on plan shape, not contents). *)
let delta_top_class ~registry ~data (b : Ast.block) : Struql.Plan.delta_class
    =
  let g =
    match data with Some g -> g | None -> Graph.create ~name:"lint" ()
  in
  let pure = Struql.Builtins.pure_extern in
  let plan_block ~bound (blk : Ast.block) =
    let needed_obj, needed_label = Struql.Eval.construction_needs blk in
    Struql.Plan.plan ~registry g ~bound ~needed_obj ~needed_label
      blk.Ast.where
  in
  let rec subtree_ok bd ~bound_vars (blk : Ast.block) =
    List.fold_left
      (fun acc (nb : Ast.block) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if Struql.Plan.block_has_agg nb then
            Error "aggregate link target in a nested block"
          else
            let steps = plan_block ~bound:bound_vars nb in
            let bound, der = bd in
            (match Struql.Plan.anchored_steps ~pure ~bound ~der steps with
             | Error e -> Error e
             | Ok bd' ->
               let bound_vars' =
                 Ast.dedup
                   (bound_vars
                   @ List.concat_map Struql.Plan.step_binds steps)
               in
               subtree_ok bd' ~bound_vars:bound_vars' nb))
      (Ok ()) blk.Ast.nested
  in
  if Struql.Plan.block_has_agg b then
    Struql.Plan.D_fallback "aggregate link target"
  else
    let steps = plan_block ~bound:[] b in
    let empty = Struql.Plan.VSet.empty in
    match steps with
    | [] -> (
      match subtree_ok (empty, empty) ~bound_vars:[] b with
      | Ok () -> Struql.Plan.D_static
      | Error e -> Struql.Plan.D_fallback e)
    | Struql.Plan.Exec (Struql.Plan.CC_coll (cname, Ast.T_var v)) :: rest -> (
      let seed = Struql.Plan.VSet.add v empty in
      match Struql.Plan.anchored_steps ~pure ~bound:seed ~der:seed rest with
      | Error e -> Struql.Plan.D_fallback e
      | Ok bd -> (
        let bound_vars =
          Ast.dedup (List.concat_map Struql.Plan.step_binds steps)
        in
        match subtree_ok bd ~bound_vars b with
        | Ok () -> Struql.Plan.D_driven (cname, v)
        | Error e -> Struql.Plan.D_fallback e))
    | _ -> Struql.Plan.D_fallback "no driving collection scan"

let run (spec : spec) : Diagnostic.t list =
  let diags = ref [] in
  let add_ ?span ?related code sev msg =
    diags := Diagnostic.make ?span ?related ~code sev msg :: !diags
  in

  (* --- plumbing: parse queries (SA001) --- *)
  let parsed =
    List.filter_map
      (fun (qname, src) ->
        match P.parse_located ~registry:spec.registry src with
        | ast, spans -> Some { qname; ast; spans }
        | exception P.Parse_error (msg, line, col) ->
          let span =
            {
              Diagnostic.file = qname;
              l1 = line;
              c1 = col;
              l2 = line;
              c2 = (if col > 0 then col + 1 else col);
            }
          in
          add_ ~span "SA001" Diagnostic.Error ("query does not parse: " ^ msg);
          None)
      spec.queries
  in

  (* --- plumbing: scope/safety checks (SA002, SA003) --- *)
  List.iter
    (fun pq ->
      let r = Struql.Check.check_located ~spans:pq.spans pq.ast in
      List.iter
        (fun (p, sp) ->
          add_ ?span:(ospan pq.qname sp) "SA002" Diagnostic.Error
            (Fmt.str "%a" Struql.Check.pp_problem p))
        r.Struql.Check.l_errors;
      List.iter
        (fun (p, sp) ->
          add_ ?span:(ospan pq.qname sp) "SA003" Diagnostic.Warning
            (Fmt.str "%a" Struql.Check.pp_problem p))
        r.Struql.Check.l_warnings)
    parsed;

  (* --- plumbing: mediator source declarations (SA005) --- *)
  List.iter
    (fun m ->
      if m <> "*" && not (List.mem m spec.declared_sources) then
        add_ "SA005" Diagnostic.Error
          (Printf.sprintf
             "mediator mapping reads source '%s', which is not declared \
              (declared: %s)"
             m
             (String.concat ", " spec.declared_sources)))
    (List.sort_uniq String.compare spec.mapping_sources);

  (* flattened views of the parsed queries, with spans *)
  let all_conds = ref [] in
  let all_links = ref [] in
  let all_creates = ref [] in
  let all_collects = ref [] in
  List.iter
    (fun pq ->
      iter_blocks
        (fun qn b sb ->
          List.iter
            (fun (c, sp) -> all_conds := (qn, c, sp) :: !all_conds)
            (zip_opt b.Ast.where (where_sp sb));
          List.iter
            (fun (l, sp) -> all_links := (qn, l, sp) :: !all_links)
            (zip_opt b.Ast.link (link_sp sb));
          List.iter
            (fun (k, sp) -> all_creates := (qn, k, sp) :: !all_creates)
            (zip_opt b.Ast.create (create_sp sb));
          List.iter
            (fun (c, sp) -> all_collects := (qn, c, sp) :: !all_collects)
            (zip_opt b.Ast.collect (collect_sp sb)))
        pq)
    parsed;
  let all_conds = List.rev !all_conds in
  let all_links = List.rev !all_links in
  let all_creates = List.rev !all_creates in
  let all_collects = List.rev !all_collects in

  (* --- family 5: shard-manifest coverage (SA050) ---
     With a shard manifest, every collection a query's WHERE footprint
     reads should be home to some shard: an uncovered collection means
     the sharded evaluator falls back to a full union scan for that
     block.  The footprint comes from the shard planner itself
     ({!Struql.Plan.conds_footprint}), so the lint flags exactly what
     the evaluator would fail to prune; externs are classified opaque
     by the footprint and never flagged. *)
  (match spec.shard_manifest with
   | None -> ()
   | Some entries ->
     let covered c =
       List.exists (fun (_, colls) -> List.mem c colls) entries
     in
     let shard_names = String.concat ", " (List.map fst entries) in
     List.iter
       (fun pq ->
         let seen = ref [] in
         iter_blocks
           (fun qn b sb ->
             let fp =
               try Some (Struql.Plan.conds_footprint spec.registry b.Ast.where)
               with _ -> None (* unplannable block: reported as SA002 *)
             in
             match fp with
             | None -> ()
             | Some fp ->
               List.iter
                 (fun cname ->
                   if (not (covered cname)) && not (List.mem cname !seen)
                   then begin
                     seen := cname :: !seen;
                     let sp =
                       List.find_map
                         (fun (c, sp) ->
                           match c with
                           | Ast.C_atom (n, _) when n = cname -> sp
                           | _ -> None)
                         (zip_opt b.Ast.where (where_sp sb))
                     in
                     add_
                       ?span:(Option.map (dspan qn) sp)
                       "SA050" Diagnostic.Warning
                       (Printf.sprintf
                          "collection %s matches no shard in the repository \
                           manifest (shards: %s): sharded evaluation falls \
                           back to a full union scan"
                          cname
                          (if shard_names = "" then "none" else shard_names))
                   end)
                 fp.Struql.Plan.fp_collections)
           pq)
       parsed);

  (* --- family 6: delta evaluability (SA070) ---
     [strudel watch] maintains the site differentially only for blocks
     whose re-derivation a data delta can drive; a block that falls
     back (aggregates, negation, enumerators, opaque externs,
     constant-anchored reads) replays in full each cycle.  The lint
     surfaces the same classification the engine computes at prime
     time, with the reason. *)
  List.iter
    (fun pq ->
      List.iteri
        (fun i (b, sb) ->
          match
            try
              Some
                (delta_top_class ~registry:spec.registry ~data:spec.data b)
            with _ -> None (* unplannable block: reported as SA002 *)
          with
          | None | Some (Struql.Plan.D_static | Struql.Plan.D_driven _) -> ()
          | Some (Struql.Plan.D_fallback why) ->
            let sp =
              Option.bind sb (fun s ->
                  match s.P.s_where with sp :: _ -> Some sp | [] -> None)
            in
            add_
              ?span:(ospan pq.qname sp)
              "SA070" Diagnostic.Info
              (Printf.sprintf
                 "block %d cannot be delta-evaluated (%s): strudel watch \
                  re-evaluates it in full each cycle"
                 (i + 1) why))
        (zip_opt pq.ast.Ast.blocks (Some pq.spans)))
    parsed;

  (* --- family 1: path emptiness against the data (SA010–SA013) --- *)
  (match spec.data with
   | None -> ()
   | Some g ->
     List.iter
       (fun (qn, c, sp) ->
         match c with
         | Ast.C_edge (_, Ast.L_const l, _) when Graph.label_count g l = 0 ->
           add_ ?span:(ospan qn sp) "SA011" Diagnostic.Warning
             (Printf.sprintf "edge label \"%s\" never occurs in the data" l)
         | _ -> ())
       all_conds;
     List.iter
       (fun (qn, c, sp) ->
         match c with
         | Ast.C_atom (name, _)
           when not (Struql.Builtins.is_extern spec.registry name) ->
           if not (List.mem name (Graph.collections g)) then
             add_ ?span:(ospan qn sp) "SA012" Diagnostic.Warning
               (Printf.sprintf
                  "WHERE atom %s(...) names a collection absent from the data"
                  name)
           else if Graph.collection_size g name = 0 then
             add_ ?span:(ospan qn sp) "SA012" Diagnostic.Warning
               (Printf.sprintf
                  "WHERE atom %s(...) names an empty collection" name)
         | _ -> ())
       all_conds;
     let paths =
       List.filter_map
         (fun (qn, c, sp) ->
           match c with
           | Ast.C_path (_, r, _) -> Some (qn, r, sp)
           | _ -> None)
         all_conds
     in
     if paths <> [] then (
       match
         Schema.Dataguide.of_graph ~roots:(Graph.nodes g)
           ~max_states:spec.max_guide_states g
       with
       | guide ->
         List.iter
           (fun (qn, r, sp) ->
             if not (Schema.Dataguide.intersect_nonempty guide r) then
               add_ ?span:(ospan qn sp) "SA010" Diagnostic.Error
                 (Fmt.str
                    "path expression %a can never match the data \
                     (empty NFA-DataGuide product)"
                    Path.pp r))
           paths
       | exception Schema.Dataguide.Too_large n ->
         add_ "SA013" Diagnostic.Info
           (Printf.sprintf
              "path emptiness analysis skipped: DataGuide exceeds %d states"
              n)));

  (* --- family 2: dead and unused specification (SA020–SA024) --- *)
  List.iter
    (fun pq ->
      let qn = pq.qname in
      (* [outer] = variables bound by enclosing blocks: a nested
         condition like [l = "year"] filters such a variable rather
         than binding a fresh one, so it is not a SA020 candidate. *)
      let rec go outer (b : Ast.block) (sb : P.block_spans option) =
        (* SA020: bound exactly once, never used again in the subtree *)
        let wsp = zip_opt b.Ast.where (where_sp sb) in
        let bound =
          Ast.dedup (List.fold_left Ast.positive_vars [] b.Ast.where)
        in
        List.iter
          (fun v ->
            if
              String.length v > 0
              && v.[0] <> '_'
              && (not (List.mem v outer))
              && occurrences v b = 1
            then begin
              let sp =
                List.find_map
                  (fun (c, sp) ->
                    if List.mem v (Ast.condition_vars [] c) then sp else None)
                  wsp
              in
              add_
                ?span:(Option.map (dspan qn) sp)
                "SA020" Diagnostic.Warning
                (Printf.sprintf "variable %s is bound but never used" v)
            end)
          bound;
        (* SA023: duplicate link clauses within one block *)
        let seen = ref [] in
        List.iter
          (fun (lc, sp) ->
            if List.mem lc !seen then
              add_ ?span:(ospan qn sp) "SA023" Diagnostic.Warning
                (Fmt.str "duplicate link clause %a" Struql.Pretty.pp_link lc)
            else seen := lc :: !seen)
          (zip_opt b.Ast.link (link_sp sb));
        let outer = bound @ outer in
        let nsps = Option.map (fun s -> s.P.s_nested) sb in
        List.iter
          (fun (nb, nsb) -> go outer nb nsb)
          (zip_opt b.Ast.nested nsps)
      in
      List.iter
        (fun (b, sb) -> go [] b sb)
        (zip_opt pq.ast.Ast.blocks (Some pq.spans)))
    parsed;

  (* SA021: collected but untemplated and never queried *)
  let templated =
    List.map fst spec.templates.Template.Generator.by_collection
  in
  let referenced =
    List.fold_left (fun acc (_, c, _) -> atom_names acc c) [] all_conds
  in
  let seen_coll = ref [] in
  List.iter
    (fun (qn, (cname, _), sp) ->
      if not (List.mem cname !seen_coll) then begin
        seen_coll := cname :: !seen_coll;
        if
          (not (List.mem cname templated))
          && not (List.mem cname referenced)
        then
          add_ ?span:(ospan qn sp) "SA021" Diagnostic.Warning
            (Printf.sprintf
               "collection %s is collected but never used (no template is \
                bound to it and no query reads it)"
               cname)
      end)
    all_collects;

  (* the merged site schema of all queries (SA022, SA024, SA030/31,
     and the template analyses below) *)
  let schemas =
    List.filter_map
      (fun pq ->
        match SS.of_query pq.ast with
        | s -> Some (pq.qname, s)
        | exception SS.Schema_error _ -> None (* reported as SA002 *))
      parsed
  in
  let merged = SS.union_all schemas in
  let created =
    List.sort_uniq String.compare
      (List.map (fun k -> k.SS.k_fn) merged.SS.creates)
  in

  (* SA024: the root family must exist *)
  if parsed <> [] && not (List.mem spec.root_family created) then
    add_ "SA024" Diagnostic.Error
      (Printf.sprintf "root family %s is never created by any query"
         spec.root_family);

  (* SA022: families with no path from the root *)
  let reachable =
    List.filter_map
      (function SS.NF f -> Some f | SS.NS -> None)
      (SS.reachable_from merged (SS.NF spec.root_family))
  in
  List.iter
    (fun f ->
      if f <> spec.root_family && not (List.mem f reachable) then begin
        let sp =
          List.find_map
            (fun (qn, (g, _), sp) -> if g = f then Some (qn, sp) else None)
            all_creates
        in
        let span =
          match sp with
          | Some (qn, sp) -> ospan qn sp
          | None -> None
        in
        add_ ?span "SA022" Diagnostic.Warning
          (Printf.sprintf
             "family %s is unreachable from root family %s: its pages are \
              never linked"
             f spec.root_family)
      end)
    created;

  (* --- family 3: schema-level constraint verification (SA030/31) --- *)
  if parsed <> [] then
    List.iter
      (fun (c, v) ->
        match v with
        | Schema.Verify.Holds -> ()
        | Schema.Verify.Violated ws ->
          add_ ~related:ws
            ~span:(file_only (spec.name ^ ":constraints"))
            "SA030" Diagnostic.Error
            (Fmt.str "constraint %a is violated by the site schema"
               Schema.Verify.pp_constraint c)
        | Schema.Verify.Unknown reason ->
          add_ ~related:[ reason ]
            ~span:(file_only (spec.name ^ ":constraints"))
            "SA031" Diagnostic.Info
            (Fmt.str "constraint %a cannot be decided statically"
               Schema.Verify.pp_constraint c))
      (Schema.Verify.check_all_schema merged spec.constraints);

  (* --- family 4: template lint (SA004, SA040–SA043) --- *)
  let ts = spec.templates in
  let tfile kind name = Printf.sprintf "template:%s:%s" kind name in
  let parse_template kind name text =
    match Template.Tparse.parse text with
    | ast -> Some ast
    | exception Template.Tparse.Template_error msg ->
      add_
        ~span:(file_only (tfile kind name))
        "SA004" Diagnostic.Error
        ("template does not parse: " ^ msg);
      None
  in
  let t_collection =
    List.filter_map
      (fun (k, txt) ->
        Option.map
          (fun a -> (k, txt, a))
          (parse_template "collection" k txt))
      ts.Template.Generator.by_collection
  in
  let t_named =
    List.filter_map
      (fun (k, txt) ->
        Option.map (fun a -> (k, txt, a)) (parse_template "named" k txt))
      ts.Template.Generator.named
  in
  let t_object =
    List.filter_map
      (fun (k, txt) ->
        Option.map (fun a -> (k, txt, a)) (parse_template "object" k txt))
      ts.Template.Generator.by_object
  in

  let collected_names =
    List.sort_uniq String.compare
      (List.map (fun (_, (c, _), _) -> c) all_collects)
  in

  (* SA040: collection templates for never-collected collections *)
  if parsed <> [] then
    List.iter
      (fun (c, _, _) ->
        if not (List.mem c collected_names) then
          add_
            ~span:(file_only (tfile "collection" c))
            "SA040" Diagnostic.Error
            (Printf.sprintf
               "template is bound to collection %s, which no query collects"
               c))
      t_collection;

  (* constant HTML-template links: family -> named-template name *)
  let const_template_links =
    List.filter_map
      (fun (qn, (x, l, y), sp) ->
        match (x, l, y) with
        | ( Ast.T_skolem (f, _),
            Ast.L_const "HTML-template",
            Ast.T_const (Value.String s) ) ->
          Some (qn, f, s, sp)
        | _ -> None)
      all_links
  in
  let named_names = List.map (fun (k, _, _) -> k) t_named in

  (* SA042: broken template references *)
  List.iter
    (fun (qn, f, s, sp) ->
      if not (List.mem s named_names) then
        add_ ?span:(ospan qn sp) "SA042" Diagnostic.Error
          (Printf.sprintf
             "family %s selects HTML-template \"%s\", but no such named \
              template exists"
             f s))
    const_template_links;
  if parsed <> [] then
    List.iter
      (fun (k, _, _) ->
        match String.index_opt k '(' with
        | Some i ->
          let f = String.sub k 0 i in
          if not (List.mem f created) then
            add_
              ~span:(file_only (tfile "object" k))
              "SA042" Diagnostic.Error
              (Printf.sprintf
                 "object template is bound to %s, but family %s is never \
                  created"
                 k f)
        | None -> (
          match spec.data with
          | Some g when Graph.find_node g k = None ->
            add_
              ~span:(file_only (tfile "object" k))
              "SA042" Diagnostic.Error
              (Printf.sprintf
                 "object template is bound to %s, which names no data object"
                 k)
          | _ -> ()))
      t_object;

  (* SA043: named templates no constant link ever selects *)
  List.iter
    (fun (k, _, _) ->
      if
        not
          (List.exists (fun (_, _, s, _) -> s = k) const_template_links)
      then
        add_
          ~span:(file_only (tfile "named" k))
          "SA043" Diagnostic.Info
          (Printf.sprintf
             "named template \"%s\" is never selected by a constant \
              HTML-template link (the data may still select it)"
             k))
    t_named;

  (* SA041: attribute references no page of the family can carry.
     A family's pages only get the edges the queries link from it, so
     the schema lists their possible attributes exactly — unless some
     edge has a variable label (then anything is possible: skip). *)
  let edges = SS.edges merged in
  let family_attrs f =
    let mine =
      List.filter (fun e -> SS.node_equal e.SS.src (SS.NF f)) edges
    in
    if
      List.exists
        (fun e -> match e.SS.label with Ast.L_var _ -> true | _ -> false)
        mine
    then None
    else
      Some
        (List.filter_map
           (fun e ->
             match e.SS.label with
             | Ast.L_const l -> Some l
             | Ast.L_var _ -> None)
           mine)
  in
  let collect_families c =
    let infos = List.filter (fun ci -> ci.SS.c_name = c) merged.SS.collects in
    let fams =
      List.map
        (fun ci ->
          match ci.SS.c_term with
          | Ast.T_skolem (f, _) -> Some f
          | _ -> None)
        infos
    in
    if infos = [] || List.exists Option.is_none fams then None
    else Some (List.sort_uniq String.compare (List.filter_map Fun.id fams))
  in
  let attrs_of_families fams =
    List.fold_left
      (fun acc f ->
        match (acc, family_attrs f) with
        | None, _ | _, None -> None
        | Some acc, Some attrs -> Some (attrs @ acc))
      (Some []) fams
  in
  let lint_template_attrs file text ast fams =
    match attrs_of_families fams with
    | None -> () (* a variable-labelled edge: any attribute possible *)
    | Some attrs ->
      let warned = ref [] in
      let check scope ae =
        match ae with
        | [] -> ()
        | head :: _ ->
          if
            (not (List.mem head scope))
            && (not (List.mem head attrs))
            && not (List.mem head !warned)
          then begin
            warned := head :: !warned;
            let needle = "@" ^ String.concat "." ae in
            add_
              ~span:(find_span file text needle)
              "SA041" Diagnostic.Warning
              (Printf.sprintf
                 "no page of family %s can carry attribute %s (families'  \
                  possible attributes: %s)"
                 (String.concat "/" fams)
                 head
                 (match List.sort_uniq String.compare attrs with
                  | [] -> "none"
                  | l -> String.concat ", " l))
          end
      in
      let check_dirs scope (d : Template.Tast.directives) =
        match d.Template.Tast.format with
        | Template.Tast.F_link (Some (Template.Tast.Tag_attr ae)) ->
          check scope ae
        | Template.Tast.F_link (Some (Template.Tast.Tag_string _)) -> ()
        | Template.Tast.F_link None -> ()
        | Template.Tast.F_default | Template.Tast.F_embed -> ()
      in
      let rec walk scope nodes = List.iter (walk_node scope) nodes
      and walk_node scope = function
        | Template.Tast.Text _ -> ()
        | Template.Tast.Fmt (ae, d) | Template.Tast.Fmt_list (ae, d) ->
          check scope ae;
          check_dirs scope d
        | Template.Tast.If (_, a, b) ->
          walk scope a;
          walk scope b
        | Template.Tast.For (v, ae, d, body) ->
          check scope ae;
          check_dirs scope d;
          walk (v :: scope) body
      in
      walk [] ast
  in
  if parsed <> [] then begin
    List.iter
      (fun (c, txt, ast) ->
        match collect_families c with
        | Some (_ :: _ as fams) ->
          lint_template_attrs (tfile "collection" c) txt ast fams
        | Some [] | None -> ())
      t_collection;
    List.iter
      (fun (k, txt, ast) ->
        let fams =
          List.sort_uniq String.compare
            (List.filter_map
               (fun (_, f, s, _) -> if s = k then Some f else None)
               const_template_links)
        in
        if fams <> [] then
          lint_template_attrs (tfile "named" k) txt ast fams)
      t_named;
    List.iter
      (fun (k, txt, ast) ->
        match String.index_opt k '(' with
        | Some i ->
          let f = String.sub k 0 i in
          if List.mem f created then
            lint_template_attrs (tfile "object" k) txt ast [ f ]
        | None -> ())
      t_object
  end;

  List.sort Diagnostic.compare (List.rev !diags)
