type target =
  | N of Oid.t
  | V of Value.t

let target_equal a b =
  match a, b with
  | N x, N y -> Oid.equal x y
  | V x, V y -> Value.equal x y
  | N _, V _ | V _, N _ -> false

let target_compare a b =
  match a, b with
  | N x, N y -> Oid.compare x y
  | V x, V y -> Value.compare x y
  | N _, V _ -> -1
  | V _, N _ -> 1

let pp_target ppf = function
  | N o -> Oid.pp_name ppf o
  | V v -> Value.pp ppf v

(* Hashable key for a target: oids hash by id, values structurally. *)
type tkey = Knode of int | Kval of Value.t

let tkey = function N o -> Knode (Oid.id o) | V v -> Kval v

type coll = { mutable set : Oid.Set.t; mutable order_rev : Oid.t list }

type t = {
  gname : string;
  use_index : bool;
  mutable nodes : Oid.Set.t;
  mutable node_order_rev : Oid.t list;
  out_tbl : (string * target) list ref Oid.Tbl.t;  (* reversed order *)
  edge_set : (int * string * tkey, unit) Hashtbl.t;
  colls : (string, coll) Hashtbl.t;
  mutable coll_order_rev : string list;
  names : (string, Oid.t) Hashtbl.t;
  (* indexes, maintained only when [use_index]; buckets are ordered bags
     so [remove_edge] is O(1) per bucket instead of a re-filter *)
  label_idx : (string, (int * tkey, Oid.t * target) Obag.t) Hashtbl.t;
  value_idx : (Value.t, (int * string, Oid.t * string) Obag.t) Hashtbl.t;
  in_idx : (int * string, Oid.t * string) Obag.t Oid.Tbl.t;
  mutable label_order_rev : string list;  (* labels in first-seen order *)
  label_seen : (string, unit) Hashtbl.t;
  mutable n_edges : int;
  (* kernel snapshot: bumped by every mutation the CSR reflects *)
  mutable generation : int;
  mutable frozen : Csr.t option;
  kstats : Csr.kstats;
  freeze_lock : Mutex.t;
  (* sanitizer identities: field 0 = the mutable structure (proxied by
     the generation bump every mutation performs), field 1 = [frozen];
     [dsan_frozen] is the publication point of the double-checked
     freeze (the unlocked fast-path read is an intended racy read,
     ordered by publish/consume, not by the freeze lock) *)
  dsan_obj : int;
  dsan_frozen : int;
  dsan_freeze_lock : int;
}

let create ?(indexed = true) ?(name = "g") () =
  {
    gname = name;
    use_index = indexed;
    nodes = Oid.Set.empty;
    node_order_rev = [];
    out_tbl = Oid.Tbl.create 64;
    edge_set = Hashtbl.create 128;
    colls = Hashtbl.create 8;
    coll_order_rev = [];
    names = Hashtbl.create 64;
    label_idx = Hashtbl.create 32;
    value_idx = Hashtbl.create 128;
    in_idx = Oid.Tbl.create 64;
    label_order_rev = [];
    label_seen = Hashtbl.create 32;
    n_edges = 0;
    generation = 0;
    frozen = None;
    kstats = Csr.kstats_create ();
    freeze_lock = Mutex.create ();
    dsan_obj = Dsan.alloc ~name:("Graph(" ^ name ^ ")");
    dsan_frozen = Dsan.atomic_id ~name:("Graph(" ^ name ^ ").frozen");
    dsan_freeze_lock = Dsan.lock_id ~name:("Graph(" ^ name ^ ").freeze_lock");
  }

let name g = g.gname
let indexed g = g.use_index
let generation g = g.generation
let touch g =
  Dsan.write ~site:__POS__ g.dsan_obj 0;
  g.generation <- g.generation + 1

let add_node g o =
  if not (Oid.Set.mem o g.nodes) then begin
    touch g;
    g.nodes <- Oid.Set.add o g.nodes;
    g.node_order_rev <- o :: g.node_order_rev;
    if not (Hashtbl.mem g.names (Oid.name o)) then
      Hashtbl.add g.names (Oid.name o) o
  end

let new_node g hint =
  let o = Oid.fresh hint in
  add_node g o;
  o

let mem_node g o = Oid.Set.mem o g.nodes
let nodes g = List.rev g.node_order_rev
let node_set g = g.nodes
let node_count g = Oid.Set.cardinal g.nodes
let find_node g n = Hashtbl.find_opt g.names n

let note_label g l =
  if not (Hashtbl.mem g.label_seen l) then begin
    Hashtbl.add g.label_seen l ();
    g.label_order_rev <- l :: g.label_order_rev
  end

let bag_push tbl key k v =
  match Hashtbl.find_opt tbl key with
  | Some b -> Obag.add b k v
  | None ->
    let b = Obag.create () in
    Obag.add b k v;
    Hashtbl.add tbl key b

let bag_remove tbl key k =
  match Hashtbl.find_opt tbl key with
  | Some b -> Obag.remove b k
  | None -> ()

let has_edge g src l tgt = Hashtbl.mem g.edge_set (Oid.id src, l, tkey tgt)

let add_edge g src l tgt =
  if not (has_edge g src l tgt) then begin
    add_node g src;
    (match tgt with N o -> add_node g o | V _ -> ());
    touch g;
    Hashtbl.replace g.edge_set (Oid.id src, l, tkey tgt) ();
    (match Oid.Tbl.find_opt g.out_tbl src with
     | Some r -> r := (l, tgt) :: !r
     | None -> Oid.Tbl.add g.out_tbl src (ref [ (l, tgt) ]));
    note_label g l;
    g.n_edges <- g.n_edges + 1;
    if g.use_index then begin
      bag_push g.label_idx l (Oid.id src, tkey tgt) (src, tgt);
      match tgt with
      | V v -> bag_push g.value_idx v (Oid.id src, l) (src, l)
      | N o ->
        (match Oid.Tbl.find_opt g.in_idx o with
         | Some b -> Obag.add b (Oid.id src, l) (src, l)
         | None ->
           let b = Obag.create () in
           Obag.add b (Oid.id src, l) (src, l);
           Oid.Tbl.add g.in_idx o b)
    end
  end

let remove_assoc_edge r pred = r := List.filter (fun e -> not (pred e)) !r

let remove_edge g src l tgt =
  if has_edge g src l tgt then begin
    touch g;
    Hashtbl.remove g.edge_set (Oid.id src, l, tkey tgt);
    (match Oid.Tbl.find_opt g.out_tbl src with
     | Some r ->
       remove_assoc_edge r (fun (l', t') -> l' = l && target_equal t' tgt)
     | None -> ());
    g.n_edges <- g.n_edges - 1;
    if g.use_index then begin
      bag_remove g.label_idx l (Oid.id src, tkey tgt);
      match tgt with
      | V v -> bag_remove g.value_idx v (Oid.id src, l)
      | N o ->
        (match Oid.Tbl.find_opt g.in_idx o with
         | Some b -> Obag.remove b (Oid.id src, l)
         | None -> ())
    end
  end

let edge_count g = g.n_edges

let out_edges g o =
  match Oid.Tbl.find_opt g.out_tbl o with
  | Some r -> List.rev !r
  | None -> []

let iter_edges f g =
  List.iter
    (fun src -> List.iter (fun (l, tgt) -> f src l tgt) (out_edges g src))
    (nodes g)

let fold_edges f g init =
  List.fold_left
    (fun acc src ->
      List.fold_left (fun acc (l, tgt) -> f src l tgt acc) acc (out_edges g src))
    init (nodes g)

let in_edges g tgt =
  if g.use_index then
    match tgt with
    | N o ->
      (match Oid.Tbl.find_opt g.in_idx o with
       | Some b -> Obag.to_list b
       | None -> [])
    | V v ->
      (match Hashtbl.find_opt g.value_idx v with
       | Some b -> Obag.to_list b
       | None -> [])
  else
    fold_edges
      (fun src l t acc -> if target_equal t tgt then (src, l) :: acc else acc)
      g []
    |> List.rev

(* --- kernel snapshot --- *)

let labels g = List.rev g.label_order_rev

let build_csr g : Csr.t =
  let node_ids = Array.of_list (nodes g) in
  let nn = Array.length node_ids in
  let idx_of_node = Hashtbl.create (max 16 (2 * nn)) in
  Array.iteri (fun i o -> Hashtbl.replace idx_of_node (Oid.id o) i) node_ids;
  let label_names = Array.of_list (labels g) in
  let nl = Array.length label_names in
  let label_syms = Array.map Sym.intern label_names in
  let local_of_sym = Hashtbl.create (2 * nl + 1) in
  let local_of_label = Hashtbl.create (2 * nl + 1) in
  Array.iteri (fun li s -> Hashtbl.replace local_of_sym s li) label_syms;
  Array.iteri (fun li l -> Hashtbl.replace local_of_label l li) label_names;
  let ne = g.n_edges in
  let fwd_off = Array.make (nn + 1) 0 in
  let fwd_lab = Array.make (max 1 ne) 0 in
  let fwd_tgt = Array.make (max 1 ne) 0 in
  (* values interned per snapshot in first-appearance order *)
  let val_tbl = Hashtbl.create 256 in
  let vals_rev = ref [] in
  let nv = ref 0 in
  let vcode v =
    match Hashtbl.find_opt val_tbl v with
    | Some c -> c
    | None ->
      let c = nn + !nv in
      incr nv;
      vals_rev := v :: !vals_rev;
      Hashtbl.add val_tbl v c;
      c
  in
  let e = ref 0 in
  Array.iteri
    (fun i o ->
      fwd_off.(i) <- !e;
      List.iter
        (fun (l, tgt) ->
          fwd_lab.(!e) <- Hashtbl.find local_of_label l;
          fwd_tgt.(!e) <-
            (match tgt with
             | N o' -> Hashtbl.find idx_of_node (Oid.id o')
             | V v -> vcode v);
          incr e)
        (out_edges g o))
    node_ids;
  fwd_off.(nn) <- !e;
  let values = Array.of_list (List.rev !vals_rev) in
  (* per-(node, label) segments, preserving per-label insertion order *)
  let seg = Hashtbl.create (2 * nn + 1) in
  let seg_tgt = Array.make (max 1 ne) 0 in
  let label_edges = Array.make (max 1 nl) 0 in
  let label_srcs = Array.make (max 1 nl) 0 in
  let counts = Array.make (max 1 nl) 0 in
  let cursor = Array.make (max 1 nl) 0 in
  let scur = ref 0 in
  for i = 0 to nn - 1 do
    let lo = fwd_off.(i) and hi = fwd_off.(i + 1) in
    if hi > lo then begin
      let touched = ref [] in
      for e = lo to hi - 1 do
        let l = fwd_lab.(e) in
        if counts.(l) = 0 then touched := l :: !touched;
        counts.(l) <- counts.(l) + 1
      done;
      List.iter
        (fun l ->
          Hashtbl.add seg ((i * nl) + l) (!scur, counts.(l));
          cursor.(l) <- !scur;
          scur := !scur + counts.(l);
          label_edges.(l) <- label_edges.(l) + counts.(l);
          label_srcs.(l) <- label_srcs.(l) + 1)
        (List.rev !touched);
      for e = lo to hi - 1 do
        let l = fwd_lab.(e) in
        seg_tgt.(cursor.(l)) <- fwd_tgt.(e);
        cursor.(l) <- cursor.(l) + 1
      done;
      List.iter (fun l -> counts.(l) <- 0) !touched
    end
  done;
  (* reverse CSR over all tcodes (node-major order, backward lane only) *)
  let ntc = nn + !nv in
  let rev_off = Array.make (ntc + 1) 0 in
  for e = 0 to ne - 1 do
    let t = fwd_tgt.(e) in
    rev_off.(t + 1) <- rev_off.(t + 1) + 1
  done;
  for t = 1 to ntc do
    rev_off.(t) <- rev_off.(t) + rev_off.(t - 1)
  done;
  let rev_src = Array.make (max 1 ne) 0 in
  let rev_lab = Array.make (max 1 ne) 0 in
  let rcur = Array.sub rev_off 0 ntc in
  for i = 0 to nn - 1 do
    for e = fwd_off.(i) to fwd_off.(i + 1) - 1 do
      let t = fwd_tgt.(e) in
      rev_src.(rcur.(t)) <- i;
      rev_lab.(rcur.(t)) <- fwd_lab.(e);
      rcur.(t) <- rcur.(t) + 1
    done
  done;
  {
    Csr.gen = g.generation;
    uid = Csr.fresh_uid ();
    stats = g.kstats;
    n_nodes = nn;
    node_ids;
    idx_of_node;
    n_values = !nv;
    values;
    n_labels = nl;
    label_syms;
    label_names;
    local_of_sym;
    local_of_label;
    fwd_off;
    fwd_lab;
    fwd_tgt;
    seg;
    seg_tgt;
    rev_off;
    rev_src;
    rev_lab;
    label_edges;
    label_srcs;
    cache = Hashtbl.create 8;
  }

(* The [frozen] field is an {e intended} racy read: the fast path
   checks it with no lock, ordered only by the publish below — so the
   sanitizer models it as a publication point (publish/consume), not a
   plain field.  The [generation] read (field 0) stays a plain read:
   mutating the graph while another domain freezes or snapshots it is
   a genuine protocol violation Dsan must flag. *)
let freeze g =
  Dsan.consume ~site:__POS__ g.dsan_frozen;
  Dsan.read ~site:__POS__ g.dsan_obj 0;
  match g.frozen with
  | Some s when s.Csr.gen = g.generation -> s
  | _ ->
    Mutex.lock g.freeze_lock;
    Dsan.acquire ~site:__POS__ g.dsan_freeze_lock;
    Fun.protect
      ~finally:(fun () ->
        Dsan.release ~site:__POS__ g.dsan_freeze_lock;
        Mutex.unlock g.freeze_lock)
      (fun () ->
        Dsan.consume ~site:__POS__ g.dsan_frozen;
        match g.frozen with
        | Some s when s.Csr.gen = g.generation -> s
        | _ ->
          let s = build_csr g in
          Atomic.incr g.kstats.freezes;
          g.frozen <- Some s;
          Dsan.publish ~site:__POS__ g.dsan_frozen;
          s)

let snapshot g =
  Dsan.consume ~site:__POS__ g.dsan_frozen;
  Dsan.read ~site:__POS__ g.dsan_obj 0;
  match g.frozen with
  | Some s when s.Csr.gen = g.generation -> Some s
  | _ -> None

type kernel_counters = { freezes : int; hits : int; misses : int }

let kernel_counters g =
  {
    freezes = Atomic.get g.kstats.Csr.freezes;
    hits = Atomic.get g.kstats.Csr.hits;
    misses = Atomic.get g.kstats.Csr.misses;
  }

let reset_kernel_counters g =
  Atomic.set g.kstats.Csr.freezes 0;
  Atomic.set g.kstats.Csr.hits 0;
  Atomic.set g.kstats.Csr.misses 0

let decode_tcode (s : Csr.t) tc =
  if tc < s.Csr.n_nodes then N s.Csr.node_ids.(tc)
  else V s.Csr.values.(tc - s.Csr.n_nodes)

(* --- attribute lookups: snapshot segment when valid, live scan else --- *)

let attr_slow g o l =
  List.filter_map
    (fun (l', tgt) -> if l' = l then Some tgt else None)
    (out_edges g o)

let attr g o l =
  match snapshot g with
  | None -> attr_slow g o l
  | Some s -> (
      match Csr.node_index s o, Csr.label_local s l with
      | Some i, Some li -> (
          match Csr.seg_range s i li with
          | None -> []
          | Some (off, len) ->
            List.init len (fun k -> decode_tcode s s.Csr.seg_tgt.(off + k)))
      | _ -> [])

let attr1 g o l =
  match snapshot g with
  | None ->
    let rec first = function
      | [] -> None
      | (l', tgt) :: rest -> if l' = l then Some tgt else first rest
    in
    first (out_edges g o)
  | Some s -> (
      match Csr.node_index s o, Csr.label_local s l with
      | Some i, Some li -> (
          match Csr.seg_range s i li with
          | None -> None
          | Some (off, _) -> Some (decode_tcode s s.Csr.seg_tgt.(off)))
      | _ -> None)

let attr_value g o l =
  match snapshot g with
  | None ->
    let rec first = function
      | [] -> None
      | (l', V v) :: _ when l' = l -> Some v
      | _ :: rest -> first rest
    in
    first (out_edges g o)
  | Some s -> (
      match Csr.node_index s o, Csr.label_local s l with
      | Some i, Some li -> (
          match Csr.seg_range s i li with
          | None -> None
          | Some (off, len) ->
            let rec scan k =
              if k >= len then None
              else
                let tc = s.Csr.seg_tgt.(off + k) in
                if tc >= s.Csr.n_nodes then
                  Some s.Csr.values.(tc - s.Csr.n_nodes)
                else scan (k + 1)
            in
            scan 0)
      | _ -> None)

let find_coll g c = Hashtbl.find_opt g.colls c

let add_to_collection g c o =
  add_node g o;
  match find_coll g c with
  | Some coll ->
    if not (Oid.Set.mem o coll.set) then begin
      coll.set <- Oid.Set.add o coll.set;
      coll.order_rev <- o :: coll.order_rev
    end
  | None ->
    Hashtbl.add g.colls c { set = Oid.Set.singleton o; order_rev = [ o ] };
    g.coll_order_rev <- c :: g.coll_order_rev

let remove_from_collection g c o =
  match find_coll g c with
  | Some coll when Oid.Set.mem o coll.set ->
    coll.set <- Oid.Set.remove o coll.set;
    coll.order_rev <- List.filter (fun x -> not (Oid.equal x o)) coll.order_rev
  | _ -> ()

let in_collection g c o =
  match find_coll g c with Some coll -> Oid.Set.mem o coll.set | None -> false

let collection g c =
  match find_coll g c with Some coll -> List.rev coll.order_rev | None -> []

let collection_size g c =
  match find_coll g c with Some coll -> Oid.Set.cardinal coll.set | None -> 0

let collections g = List.rev g.coll_order_rev

let collections_of g o =
  List.filter (fun c -> in_collection g c o) (collections g)

let label_extent g l =
  if g.use_index then
    match Hashtbl.find_opt g.label_idx l with
    | Some b -> Obag.to_list b
    | None -> []
  else
    fold_edges
      (fun src l' tgt acc -> if l' = l then (src, tgt) :: acc else acc)
      g []
    |> List.rev

let label_count g l =
  if g.use_index then
    match Hashtbl.find_opt g.label_idx l with
    | Some b -> Obag.length b
    | None -> 0
  else List.length (label_extent g l)

let value_index g v =
  if g.use_index then
    match Hashtbl.find_opt g.value_idx v with
    | Some b -> Obag.to_list b
    | None -> []
  else
    fold_edges
      (fun src l tgt acc ->
        match tgt with
        | V v' when Value.equal v v' -> (src, l) :: acc
        | _ -> acc)
      g []
    |> List.rev

let remove_node g o =
  if Oid.Set.mem o g.nodes then begin
    List.iter (fun (l, tgt) -> remove_edge g o l tgt) (out_edges g o);
    List.iter (fun (src, l) -> remove_edge g src l (N o)) (in_edges g (N o));
    List.iter (fun c -> remove_from_collection g c o) (collections_of g o);
    touch g;
    g.nodes <- Oid.Set.remove o g.nodes;
    g.node_order_rev <-
      List.filter (fun x -> not (Oid.equal x o)) g.node_order_rev;
    Oid.Tbl.remove g.out_tbl o;
    Oid.Tbl.remove g.in_idx o;
    match Hashtbl.find_opt g.names (Oid.name o) with
    | Some o' when Oid.equal o o' -> Hashtbl.remove g.names (Oid.name o)
    | _ -> ()
  end

let set_out_edges g o edges =
  List.iter (fun (l, tgt) -> remove_edge g o l tgt) (out_edges g o);
  List.iter (fun (l, tgt) -> add_edge g o l tgt) edges

let set_collection g c members =
  List.iter (fun o -> remove_from_collection g c o) (collection g c);
  List.iter (fun o -> add_to_collection g c o) members

let merge_into ~dst ~src =
  List.iter (fun o -> add_node dst o) (nodes src);
  iter_edges (fun s l t -> add_edge dst s l t) src;
  List.iter
    (fun c -> List.iter (fun o -> add_to_collection dst c o) (collection src c))
    (collections src)

let copy ?name g =
  let name = match name with Some n -> n | None -> g.gname in
  let g' = create ~indexed:g.use_index ~name () in
  merge_into ~dst:g' ~src:g;
  g'

let pp_stats ppf g =
  Fmt.pf ppf "graph %s: %d nodes, %d edges, %d collections, %d labels"
    g.gname (node_count g) g.n_edges
    (List.length (collections g))
    (List.length (labels g))
