(** Labeled directed graphs — the semistructured data model.

    A graph consists of objects connected by directed edges labeled with
    string-valued attribute names.  Objects are either internal nodes,
    identified by an {!Oid.t}, or atomic {!Value.t}s.  Objects are
    grouped into named collections; an object may belong to several
    collections, and objects of one collection may have different
    attribute sets (the model is schema-less).

    Graphs are mutable.  When [indexed] (the default), the graph
    maintains the full set of indexes the paper describes for the data
    repository: the extent of every attribute label, the extent of every
    collection, a value index global to the graph, and an incoming-edge
    index.  With [~indexed:false] those lookups fall back to full scans
    (used by the indexing ablation bench). *)

type target =
  | N of Oid.t      (** an internal object *)
  | V of Value.t    (** an atomic value *)

type t

val target_equal : target -> target -> bool
val target_compare : target -> target -> int
val pp_target : Format.formatter -> target -> unit

val create : ?indexed:bool -> ?name:string -> unit -> t
val name : t -> string
val indexed : t -> bool

(** {1 Nodes} *)

val add_node : t -> Oid.t -> unit
val new_node : t -> string -> Oid.t
(** [new_node g hint] allocates a fresh oid named [hint] and adds it. *)

val mem_node : t -> Oid.t -> bool
val nodes : t -> Oid.t list
val node_set : t -> Oid.Set.t
val node_count : t -> int

val find_node : t -> string -> Oid.t option
(** Look up a node by its oid name (first added wins). *)

(** {1 Edges} *)

val add_edge : t -> Oid.t -> string -> target -> unit
(** Adds the edge if not already present; both endpoints are added as
    nodes when they are oids. *)

val remove_edge : t -> Oid.t -> string -> target -> unit
val has_edge : t -> Oid.t -> string -> target -> bool
val edge_count : t -> int

val out_edges : t -> Oid.t -> (string * target) list
(** Outgoing edges in insertion order. *)

val in_edges : t -> target -> (Oid.t * string) list
(** Incoming edges of an object (or of an atomic value). *)

val attr : t -> Oid.t -> string -> target list
(** All targets of edges labeled [label] leaving the node, in insertion
    order. *)

val attr1 : t -> Oid.t -> string -> target option
(** First target of the attribute, if any. *)

val attr_value : t -> Oid.t -> string -> Value.t option
(** First atomic value of the attribute, if any. *)

val iter_edges : (Oid.t -> string -> target -> unit) -> t -> unit
val fold_edges : (Oid.t -> string -> target -> 'a -> 'a) -> t -> 'a -> 'a

(** {1 Collections} *)

val add_to_collection : t -> string -> Oid.t -> unit
val remove_from_collection : t -> string -> Oid.t -> unit
val in_collection : t -> string -> Oid.t -> bool
val collection : t -> string -> Oid.t list
(** Members in insertion order; empty for an unknown collection. *)

val collection_size : t -> string -> int
val collections : t -> string list
val collections_of : t -> Oid.t -> string list

(** {1 Schema and value indexes} *)

val labels : t -> string list
(** All attribute names appearing in the graph (the schema index). *)

val label_extent : t -> string -> (Oid.t * target) list
(** All edges carrying the label. *)

val label_count : t -> string -> int
val value_index : t -> Value.t -> (Oid.t * string) list
(** All (source, label) pairs of edges whose target is exactly this
    atomic value.  Global to the graph, as in the paper. *)

(** {1 Kernel snapshot}

    A graph can be {e frozen} into an immutable {!Csr.t} snapshot — the
    compiled form the path engine and attribute fast paths run on.
    Freezing is lazy and cached: the first call after any mutation
    builds the snapshot (O(V + E)); subsequent calls return it in O(1).
    Every mutation bumps the graph's generation, which makes
    outstanding snapshots invisible to {!snapshot} (readers fall back
    to the live structures) — a stale snapshot can never be observed
    through this API.  [freeze] is safe to call from multiple domains. *)

val generation : t -> int
(** Mutation counter; bumped by node/edge additions and removals. *)

val freeze : t -> Csr.t
(** The snapshot for the current generation, building it if needed. *)

val snapshot : t -> Csr.t option
(** The cached snapshot, only if it is still valid ([None] after any
    mutation since the last {!freeze}).  Never builds. *)

val decode_tcode : Csr.t -> int -> target
(** The object behind a snapshot tcode (node index or interned value). *)

type kernel_counters = { freezes : int; hits : int; misses : int }

val kernel_counters : t -> kernel_counters
(** Cumulative kernel statistics: snapshot builds, and path-engine memo
    hits/misses (counted by {!Path} against this graph's snapshots). *)

val reset_kernel_counters : t -> unit
(** Zero the counters (outstanding snapshots share the record, so their
    future hits/misses count against the fresh baseline).  Used by
    [explain-analyze] and the shard observability surfaces to report
    per-run deltas deterministically. *)

(** {1 Whole-graph operations} *)

val remove_node : t -> Oid.t -> unit
(** Removes the node together with its outgoing edges, incoming edges
    and collection memberships.  The name table only forgets the name
    when it maps to this oid (first-added-wins: a later node sharing
    the name becomes unfindable by name rather than adopted). *)

val set_out_edges : t -> Oid.t -> (string * target) list -> unit
(** Replace the node's out-edge bucket with exactly [edges], in order.
    Implemented as remove-all / re-add, so every index stays
    consistent; the {e global} orders of the label/value/incoming
    indexes place the re-added edges last. *)

val set_collection : t -> string -> Oid.t list -> unit
(** Replace a collection's extent with exactly [members], in order. *)

val copy : ?name:string -> t -> t
val merge_into : dst:t -> src:t -> unit
(** Adds all nodes, edges and collections of [src] to [dst] (objects are
    shared, not copied — graphs of one database may share objects). *)

val pp_stats : Format.formatter -> t -> unit
