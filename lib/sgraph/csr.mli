(** Immutable CSR snapshots of a {!Graph}.

    A snapshot is the compiled, integer-indexed form of a graph at one
    generation: nodes are renumbered [0..n_nodes-1] in {!Graph.nodes}
    order, atomic values are interned per snapshot as
    [n_nodes..n_nodes+n_values-1] in first-appearance order, and labels
    get a dense {e local} index in first-seen order alongside their
    global {!Sym} symbol.  Edge targets are {e tcodes} drawn from that
    combined space.

    The snapshot carries

    {ul
    {- a forward CSR ([fwd_off]/[fwd_lab]/[fwd_tgt]) in exact edge
       insertion order per source — the order every legacy traversal
       observes;}
    {- per-(node, label) segments ([seg]/[seg_tgt]) so attribute
       lookups are a table hit plus an array slice, still in insertion
       order;}
    {- a reverse CSR ([rev_off]/[rev_src]/[rev_lab]) over all tcodes,
       used by the backward lane of the path engine (order here is
       node-major, not chronological — never exposed to clients that
       need insertion order);}
    {- per-label degree counts ([label_edges]/[label_srcs]) feeding
       direction choice and the planner's cost model;}
    {- a [cache] keyed by compiled-NFA id where {!Path} installs its
       prepared dispatch tables ([cache] is an extensible variant so
       this module does not depend on the path engine).}}

    Snapshots are built by {!Graph.freeze} and validated by comparing
    [gen] against the graph's mutation generation: any mutation makes
    every outstanding snapshot invisible (readers fall back to the
    live structures), never wrong. *)

type kstats = {
  freezes : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}
(** Kernel counters, shared by reference between a graph and all its
    snapshots so deltas survive re-freezes (surfaced by
    [explain-analyze]).  Atomic: memo hits/misses are bumped from
    worker domains during parallel shard scans while the profiler
    reads them from the main domain. *)

val kstats_create : unit -> kstats

type cache = ..
(** Extension point for per-snapshot compiled artifacts (see {!Path}). *)

type t = {
  gen : int;            (** graph generation this snapshot reflects *)
  uid : int;            (** process-unique snapshot id *)
  stats : kstats;
  n_nodes : int;
  node_ids : Oid.t array;              (** index → oid, {!Graph.nodes} order *)
  idx_of_node : (int, int) Hashtbl.t;  (** oid id → index *)
  n_values : int;
  values : Value.t array;              (** value tcode - n_nodes → value *)
  n_labels : int;
  label_syms : int array;              (** local label → global {!Sym} symbol *)
  label_names : string array;          (** local label → label string *)
  local_of_sym : (int, int) Hashtbl.t;
  local_of_label : (string, int) Hashtbl.t;
  fwd_off : int array;                 (** length [n_nodes + 1] *)
  fwd_lab : int array;                 (** per edge: local label *)
  fwd_tgt : int array;                 (** per edge: target tcode *)
  seg : (int, int * int) Hashtbl.t;    (** node·n_labels+label → (off, len) *)
  seg_tgt : int array;                 (** segment targets, insertion order *)
  rev_off : int array;                 (** length [n_nodes + n_values + 1] *)
  rev_src : int array;                 (** per in-edge: source node index *)
  rev_lab : int array;                 (** per in-edge: local label *)
  label_edges : int array;             (** local label → edge count *)
  label_srcs : int array;              (** local label → distinct source count *)
  cache : (int, cache) Hashtbl.t;
}

val fresh_uid : unit -> int

val node_index : t -> Oid.t -> int option
val label_local : t -> string -> int option
val tcode_is_node : t -> int -> bool
val out_degree : t -> int -> int
val in_degree : t -> int -> int
(** In-degree of a tcode (node or value). *)

val seg_range : t -> int -> int -> (int * int) option
(** [(offset, length)] into [seg_tgt] of the (node index, local label)
    segment, if any edge with that label leaves the node. *)
