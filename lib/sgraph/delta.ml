(** Data-graph deltas — the change currency of differential site
    maintenance.

    A delta is a set of node / edge / collection additions and
    removals between two states of a graph, together with two order
    signals the byte-identity contract needs: nodes whose out-edge
    bucket kept its edge set but changed order ([d_resequenced]), and
    collections whose surviving members changed relative order
    ([d_reordered]).  Deltas come from two producers:

    - {!Rec}, a recorder wrapped around a live graph: mutations are
      applied and logged, so the delta is exact and O(change) — the
      path [strudel watch] uses for direct (un-mediated) data.
    - {!diff}, an oid-keyed structural diff of two graphs that share
      oids — the path {!Mediator.Warehouse} uses after {!rebase}
      re-keys a freshly integrated graph onto the previous
      integration's oids (matched by node name, which Skolem terms
      keep stable across refreshes). *)

type edge = Oid.t * string * Graph.target

type t = {
  nodes_added : Oid.t list;
  nodes_removed : Oid.t list;
  edges_added : edge list;
  edges_removed : edge list;
  coll_added : (string * Oid.t) list;
  coll_removed : (string * Oid.t) list;
  resequenced : Oid.t list;
      (** out-bucket kept its edge set but changed order *)
  reordered : string list;
      (** collections whose surviving members changed relative order *)
}

let empty =
  {
    nodes_added = [];
    nodes_removed = [];
    edges_added = [];
    edges_removed = [];
    coll_added = [];
    coll_removed = [];
    resequenced = [];
    reordered = [];
  }

let is_empty d =
  d.nodes_added = [] && d.nodes_removed = [] && d.edges_added = []
  && d.edges_removed = [] && d.coll_added = [] && d.coll_removed = []
  && d.resequenced = [] && d.reordered = []

let card d =
  List.length d.nodes_added + List.length d.nodes_removed
  + List.length d.edges_added + List.length d.edges_removed
  + List.length d.coll_added + List.length d.coll_removed
  + List.length d.resequenced

let union a b =
  {
    nodes_added = a.nodes_added @ b.nodes_added;
    nodes_removed = a.nodes_removed @ b.nodes_removed;
    edges_added = a.edges_added @ b.edges_added;
    edges_removed = a.edges_removed @ b.edges_removed;
    coll_added = a.coll_added @ b.coll_added;
    coll_removed = a.coll_removed @ b.coll_removed;
    resequenced = a.resequenced @ b.resequenced;
    reordered = a.reordered @ b.reordered;
  }

(* Seeds of dependency propagation: every oid whose local
   neighbourhood (out-bucket, existence, or collection membership) the
   delta touches.  Value-edge changes seed their source node; a
   membership change seeds the member. *)
let touched d =
  let add s o = Oid.Set.add o s in
  let s = Oid.Set.empty in
  let s = List.fold_left add s d.nodes_added in
  let s = List.fold_left add s d.nodes_removed in
  let s = List.fold_left add s d.resequenced in
  let s =
    List.fold_left
      (fun s (src, _, tgt) ->
        let s = add s src in
        match tgt with Graph.N o -> add s o | Graph.V _ -> s)
      s
      (d.edges_added @ d.edges_removed)
  in
  List.fold_left (fun s (_, o) -> add s o) s (d.coll_added @ d.coll_removed)

(** Backward closure of the touched set: every node that can {e reach}
    a touched element along forward edges, i.e. every candidate driver
    whose binding rows may change.  Expansion walks the graph's
    incoming-edge index — on a frozen graph this is the CSR kernel's
    reverse-adjacency lane (it feeds the same in-index) — plus the
    reverse of the {e removed} edges, which the post-mutation graph no
    longer holds. *)
let closure g d =
  let rm_in : (int, Oid.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (src, _, tgt) ->
      match tgt with
      | Graph.N o ->
        let id = Oid.id o in
        Hashtbl.replace rm_in id
          (src :: (try Hashtbl.find rm_in id with Not_found -> []))
      | Graph.V _ -> ())
    d.edges_removed;
  let seen = ref (touched d) in
  let stack = ref (Oid.Set.elements !seen) in
  let push o =
    if not (Oid.Set.mem o !seen) then begin
      seen := Oid.Set.add o !seen;
      stack := o :: !stack
    end
  in
  let rec loop () =
    match !stack with
    | [] -> ()
    | o :: rest ->
      stack := rest;
      List.iter (fun (src, _) -> push src) (Graph.in_edges g (Graph.N o));
      (try List.iter push (Hashtbl.find rm_in (Oid.id o))
       with Not_found -> ());
      loop ()
  in
  loop ();
  !seen

(* --- the oid-keyed structural diff --- *)

(* Whether [kept] (the old sequence restricted to survivors) is in the
   same relative order as [now] restricted to the same elements. *)
let same_relative_order ~mem kept now =
  let now' = List.filter mem now in
  let rec eq a b =
    match a, b with
    | [], [] -> true
    | x :: a', y :: b' -> Oid.equal x y && eq a' b'
    | _ -> false
  in
  eq kept now'

let diff ~old g =
  let d = ref empty in
  let add f = d := f !d in
  let old_nodes = Graph.node_set old and new_nodes = Graph.node_set g in
  Oid.Set.iter
    (fun o ->
      if not (Oid.Set.mem o old_nodes) then
        add (fun d -> { d with nodes_added = o :: d.nodes_added }))
    new_nodes;
  Oid.Set.iter
    (fun o ->
      if not (Oid.Set.mem o new_nodes) then begin
        add (fun d -> { d with nodes_removed = o :: d.nodes_removed });
        List.iter
          (fun (l, tgt) ->
            add (fun d -> { d with edges_removed = (o, l, tgt) :: d.edges_removed }))
          (Graph.out_edges old o)
      end)
    old_nodes;
  (* out-buckets of surviving nodes *)
  let tk = function
    | Graph.N o -> "N" ^ string_of_int (Oid.id o)
    | Graph.V v -> "V" ^ Value.to_string v
  in
  let ekey (l, tgt) = (l, tk tgt) in
  Oid.Set.iter
    (fun o ->
      if Oid.Set.mem o old_nodes then begin
        let oe = Graph.out_edges old o and ne = Graph.out_edges g o in
        let oset = Hashtbl.create 8 and nset = Hashtbl.create 8 in
        List.iter (fun e -> Hashtbl.replace oset (ekey e) ()) oe;
        List.iter (fun e -> Hashtbl.replace nset (ekey e) ()) ne;
        let changed = ref false in
        List.iter
          (fun (l, tgt) ->
            if not (Hashtbl.mem oset (ekey (l, tgt))) then begin
              changed := true;
              add (fun d -> { d with edges_added = (o, l, tgt) :: d.edges_added })
            end)
          ne;
        List.iter
          (fun (l, tgt) ->
            if not (Hashtbl.mem nset (ekey (l, tgt))) then begin
              changed := true;
              add (fun d ->
                  { d with edges_removed = (o, l, tgt) :: d.edges_removed })
            end)
          oe;
        if not !changed then begin
          (* same edge set: any order change must still resequence *)
          let rec eq a b =
            match a, b with
            | [], [] -> true
            | x :: a', y :: b' -> ekey x = ekey y && eq a' b'
            | _ -> false
          in
          if not (eq oe ne) then
            add (fun d -> { d with resequenced = o :: d.resequenced })
        end
      end)
    new_nodes;
  (* collections: membership diff plus surviving-order check *)
  let colls =
    List.sort_uniq String.compare (Graph.collections old @ Graph.collections g)
  in
  List.iter
    (fun c ->
      let oc = Graph.collection old c and nc = Graph.collection g c in
      let oset =
        List.fold_left (fun s o -> Oid.Set.add o s) Oid.Set.empty oc
      in
      let nset =
        List.fold_left (fun s o -> Oid.Set.add o s) Oid.Set.empty nc
      in
      List.iter
        (fun o ->
          if not (Oid.Set.mem o oset) then
            add (fun d -> { d with coll_added = (c, o) :: d.coll_added }))
        nc;
      List.iter
        (fun o ->
          if not (Oid.Set.mem o nset) then
            add (fun d -> { d with coll_removed = (c, o) :: d.coll_removed }))
        oc;
      let kept = List.filter (fun o -> Oid.Set.mem o nset) oc in
      if not (same_relative_order ~mem:(fun o -> Oid.Set.mem o oset) kept nc)
      then add (fun d -> { d with reordered = c :: d.reordered }))
    colls;
  !d

(* --- rebase: re-key a fresh integration onto the previous one's oids --- *)

let dup_names g =
  let counts = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let n = Oid.name o in
      Hashtbl.replace counts n (1 + try Hashtbl.find counts n with Not_found -> 0))
    (Graph.nodes g);
  counts

let rebase ~old g =
  let old_dups = dup_names old and new_dups = dup_names g in
  let unique tbl n = (try Hashtbl.find tbl n with Not_found -> 0) = 1 in
  let old_by_name = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let n = Oid.name o in
      if unique old_dups n then Hashtbl.replace old_by_name n o)
    (Graph.nodes old);
  let stable o =
    let n = Oid.name o in
    if unique new_dups n then
      match Hashtbl.find_opt old_by_name n with Some oo -> oo | None -> o
    else o
  in
  let stable_t = function
    | Graph.N o -> Graph.N (stable o)
    | Graph.V _ as v -> v
  in
  let g' = Graph.create ~indexed:(Graph.indexed g) ~name:(Graph.name g) () in
  List.iter (fun o -> Graph.add_node g' (stable o)) (Graph.nodes g);
  Graph.iter_edges
    (fun src l tgt -> Graph.add_edge g' (stable src) l (stable_t tgt))
    g;
  List.iter
    (fun c ->
      List.iter
        (fun o -> Graph.add_to_collection g' c (stable o))
        (Graph.collection g c))
    (Graph.collections g);
  g'

(* --- the recording mutator --- *)

module Rec = struct
  type r = { rg : Graph.t; mutable acc : t }

  let create g = { rg = g; acc = empty }
  let graph r = r.rg

  let add_node r o =
    if not (Graph.mem_node r.rg o) then begin
      Graph.add_node r.rg o;
      r.acc <- { r.acc with nodes_added = o :: r.acc.nodes_added }
    end

  let add_edge r src l tgt =
    if not (Graph.has_edge r.rg src l tgt) then begin
      (* add_edge implicitly adds endpoint nodes *)
      add_node r src;
      (match tgt with Graph.N o -> add_node r o | Graph.V _ -> ());
      Graph.add_edge r.rg src l tgt;
      r.acc <- { r.acc with edges_added = (src, l, tgt) :: r.acc.edges_added }
    end

  let remove_edge r src l tgt =
    if Graph.has_edge r.rg src l tgt then begin
      Graph.remove_edge r.rg src l tgt;
      r.acc <-
        { r.acc with edges_removed = (src, l, tgt) :: r.acc.edges_removed }
    end

  let remove_node r o =
    if Graph.mem_node r.rg o then begin
      List.iter (fun (l, tgt) -> remove_edge r o l tgt) (Graph.out_edges r.rg o);
      List.iter
        (fun (src, l) -> remove_edge r src l (Graph.N o))
        (Graph.in_edges r.rg (Graph.N o));
      List.iter
        (fun c ->
          r.acc <- { r.acc with coll_removed = (c, o) :: r.acc.coll_removed })
        (Graph.collections_of r.rg o);
      Graph.remove_node r.rg o;
      r.acc <- { r.acc with nodes_removed = o :: r.acc.nodes_removed }
    end

  let add_to_collection r c o =
    if not (Graph.in_collection r.rg c o) then begin
      add_node r o;
      Graph.add_to_collection r.rg c o;
      r.acc <- { r.acc with coll_added = (c, o) :: r.acc.coll_added }
    end

  let remove_from_collection r c o =
    if Graph.in_collection r.rg c o then begin
      Graph.remove_from_collection r.rg c o;
      r.acc <- { r.acc with coll_removed = (c, o) :: r.acc.coll_removed }
    end

  (** Replace the first [label] value of [o] (a data-file style
      attribute update): removes every existing [label] edge to an
      atomic value, then adds [v]. *)
  let set_value r o label v =
    List.iter
      (fun (l, tgt) ->
        match tgt with
        | Graph.V _ when l = label -> remove_edge r o l tgt
        | _ -> ())
      (Graph.out_edges r.rg o);
    add_edge r o label (Graph.V v)

  let flush r =
    let d = r.acc in
    r.acc <- empty;
    d
end

let pp ppf d =
  Fmt.pf ppf "+%dn -%dn +%de -%de +%dc -%dc ~%db ~%dx"
    (List.length d.nodes_added)
    (List.length d.nodes_removed)
    (List.length d.edges_added)
    (List.length d.edges_removed)
    (List.length d.coll_added)
    (List.length d.coll_removed)
    (List.length d.resequenced)
    (List.length d.reordered)
