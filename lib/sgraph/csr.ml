(* Atomic, not plain mutable ints: the memo hit/miss counters are
   bumped from worker domains during parallel shard scans and the
   freeze counter from whichever domain wins the double-checked
   freeze, while profiling readers sum them from the main domain. *)
type kstats = {
  freezes : int Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let kstats_create () =
  { freezes = Atomic.make 0; hits = Atomic.make 0; misses = Atomic.make 0 }

type cache = ..

type t = {
  gen : int;
  uid : int;
  stats : kstats;
  n_nodes : int;
  node_ids : Oid.t array;
  idx_of_node : (int, int) Hashtbl.t;
  n_values : int;
  values : Value.t array;
  n_labels : int;
  label_syms : int array;
  label_names : string array;
  local_of_sym : (int, int) Hashtbl.t;
  local_of_label : (string, int) Hashtbl.t;
  fwd_off : int array;
  fwd_lab : int array;
  fwd_tgt : int array;
  seg : (int, int * int) Hashtbl.t;
  seg_tgt : int array;
  rev_off : int array;
  rev_src : int array;
  rev_lab : int array;
  label_edges : int array;
  label_srcs : int array;
  cache : (int, cache) Hashtbl.t;
}

let uid_counter = ref 0
let uid_lock = Mutex.create ()

let fresh_uid () =
  Mutex.lock uid_lock;
  let u = !uid_counter in
  incr uid_counter;
  Mutex.unlock uid_lock;
  u

let node_index s o = Hashtbl.find_opt s.idx_of_node (Oid.id o)
let label_local s l = Hashtbl.find_opt s.local_of_label l

let tcode_is_node s tc = tc < s.n_nodes

let out_degree s i = s.fwd_off.(i + 1) - s.fwd_off.(i)
let in_degree s tc = s.rev_off.(tc + 1) - s.rev_off.(tc)

let seg_range s i lab = Hashtbl.find_opt s.seg ((i * s.n_labels) + lab)
