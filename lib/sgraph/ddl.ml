exception Ddl_error of string * int

type directives = (string * (string * Value.file_kind) list) list

let puncts = [ "{"; "}"; ","; "&" ]

(* Parsed attribute values before reference resolution. *)
type pvalue =
  | P_val of Value.t
  | P_ref of string          (* &name *)
  | P_nested of pobj

and pobj = { attrs : (string * pvalue) list }

type pdecl =
  | D_collection of string * (string * Value.file_kind) list
  | D_object of string * string list * pobj  (* name, collections, body *)

let rec parse_body st =
  (* parses { attr value ... } *)
  Lex.Stream.eat_punct st "{";
  let attrs = ref [] in
  let fin = ref false in
  while not !fin do
    match Lex.Stream.peek st with
    | Lex.Punct "}" ->
      ignore (Lex.Stream.advance st);
      fin := true
    | Lex.Ident name ->
      ignore (Lex.Stream.advance st);
      let v = parse_pvalue st name in
      attrs := (name, v) :: !attrs
    | Lex.Str name ->
      (* labels of generated site graphs may not be identifiers *)
      ignore (Lex.Stream.advance st);
      let v = parse_pvalue st name in
      attrs := (name, v) :: !attrs
    | tok ->
      Lex.Stream.error st
        (Fmt.str "expected an attribute name or '}' but found %a"
           Lex.pp_token tok)
  done;
  { attrs = List.rev !attrs }

and parse_pvalue st attr_name =
  match Lex.Stream.peek st with
  | Lex.Str s -> ignore (Lex.Stream.advance st); P_val (Value.String s)
  | Lex.Int_lit i -> ignore (Lex.Stream.advance st); P_val (Value.Int i)
  | Lex.Float_lit f -> ignore (Lex.Stream.advance st); P_val (Value.Float f)
  | Lex.Punct "&" ->
    ignore (Lex.Stream.advance st);
    P_ref (Lex.Stream.expect_ident st)
  | Lex.Punct "{" -> P_nested (parse_body st)
  | Lex.Ident kw -> begin
    ignore (Lex.Stream.advance st);
    match kw with
    | "true" -> P_val (Value.Bool true)
    | "false" -> P_val (Value.Bool false)
    | "null" -> P_val Value.Null
    | "url" -> P_val (Value.Url (Lex.Stream.expect_string st))
    | "string" -> P_val (Value.String (Lex.Stream.expect_string st))
    | "int" ->
      (match Lex.Stream.advance st with
       | Lex.Int_lit i -> P_val (Value.Int i)
       | tok ->
         Lex.Stream.error st
           (Fmt.str "expected an integer but found %a" Lex.pp_token tok))
    | kw ->
      (match Value.file_kind_of_name kw with
       | Some k -> P_val (Value.File (k, Lex.Stream.expect_string st))
       | None ->
         (* an unknown kind followed by a string is an "other" file type;
            atomic types are handled uniformly *)
         (match Lex.Stream.peek st with
          | Lex.Str s ->
            ignore (Lex.Stream.advance st);
            P_val (Value.File (Value.Other_file kw, s))
          | _ ->
            Lex.Stream.error st
              (Fmt.str "unknown value kind '%s' for attribute %s" kw
                 attr_name)))
  end
  | tok ->
    Lex.Stream.error st
      (Fmt.str "expected a value for attribute %s but found %a" attr_name
         Lex.pp_token tok)

let parse_collection_decl st =
  let name = Lex.Stream.expect_ident st in
  Lex.Stream.eat_punct st "{";
  let dirs = ref [] in
  let fin = ref false in
  while not !fin do
    match Lex.Stream.peek st with
    | Lex.Punct "}" ->
      ignore (Lex.Stream.advance st);
      fin := true
    | Lex.Ident attr ->
      ignore (Lex.Stream.advance st);
      let kind_name = Lex.Stream.expect_ident st in
      (match Value.file_kind_of_name kind_name with
       | Some k -> dirs := (attr, k) :: !dirs
       | None ->
         if kind_name <> "string" && kind_name <> "int" then
           Lex.Stream.error st
             (Fmt.str "unknown type directive '%s' in collection %s"
                kind_name name))
    | tok ->
      Lex.Stream.error st
        (Fmt.str "expected a directive or '}' but found %a" Lex.pp_token tok)
  done;
  D_collection (name, List.rev !dirs)

let parse_object_decl st =
  let name = Lex.Stream.expect_ident st in
  let colls = ref [] in
  if Lex.Stream.accept_ident st "in" then begin
    colls := [ Lex.Stream.expect_ident st ];
    while Lex.Stream.accept_punct st "," do
      colls := Lex.Stream.expect_ident st :: !colls
    done
  end;
  let body = parse_body st in
  D_object (name, List.rev !colls, body)

let parse_decls src =
  let toks =
    try Lex.tokenize ~ident_dash:true ~puncts src
    with Lex.Lex_error (msg, line) -> raise (Ddl_error (msg, line))
  in
  let st = Lex.Stream.of_tokens toks in
  let decls = ref [] in
  (try
     while not (Lex.Stream.at_eof st) do
       match Lex.Stream.advance st with
       | Lex.Ident "collection" -> decls := parse_collection_decl st :: !decls
       | Lex.Ident "object" -> decls := parse_object_decl st :: !decls
       | tok ->
         Lex.Stream.error st
           (Fmt.str "expected 'collection' or 'object' but found %a"
              Lex.pp_token tok)
     done
   with Lex.Stream.Parse_error (msg, line, _col) -> raise (Ddl_error (msg, line)));
  List.rev !decls

(* Apply collection file-kind defaults to a string value. *)
let coerce_with_directives dirs colls attr v =
  match v with
  | Value.String s ->
    let kind =
      List.find_map
        (fun c ->
          match List.assoc_opt c dirs with
          | Some d -> List.assoc_opt attr d
          | None -> None)
        colls
    in
    (match kind with Some k -> Value.File (k, s) | None -> v)
  | v -> v

let parse_into g src =
  let decls = parse_decls src in
  let dirs =
    List.filter_map
      (function D_collection (c, d) -> Some (c, d) | D_object _ -> None)
      decls
  in
  (* first pass: create oids for named objects (forward references) *)
  let objs = Hashtbl.create 64 in
  List.iter
    (function
      | D_object (name, _, _) when not (Hashtbl.mem objs name) ->
        let o =
          match Graph.find_node g name with
          | Some o -> o  (* extending an existing graph *)
          | None -> Oid.fresh name
        in
        Hashtbl.add objs name o
      | D_object _ | D_collection _ -> ())
    decls;
  let resolve_ref line name =
    match Hashtbl.find_opt objs name with
    | Some o -> o
    | None ->
      (match Graph.find_node g name with
       | Some o -> o
       | None -> raise (Ddl_error ("unknown object reference &" ^ name, line)))
  in
  let rec add_attrs o colls body nested_prefix =
    List.iteri
      (fun i (attr, pv) ->
        match pv with
        | P_val v ->
          Graph.add_edge g o attr
            (Graph.V (coerce_with_directives dirs colls attr v))
        | P_ref name -> Graph.add_edge g o attr (Graph.N (resolve_ref 0 name))
        | P_nested body' ->
          let o' =
            Graph.new_node g (Printf.sprintf "%s.%s%d" nested_prefix attr i)
          in
          Graph.add_edge g o attr (Graph.N o');
          add_attrs o' [] body' (Oid.name o'))
      body.attrs
  in
  List.iter
    (function
      | D_collection _ -> ()
      | D_object (name, colls, body) ->
        let o = Hashtbl.find objs name in
        Graph.add_node g o;
        List.iter (fun c -> Graph.add_to_collection g c o) colls;
        add_attrs o colls body name)
    decls;
  dirs

let parse ?(graph_name = "g") src =
  let g = Graph.create ~name:graph_name () in
  let dirs = parse_into g src in
  (g, dirs)

let valid_ident s =
  String.length s > 0
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-')
       s

(* Unique printable names: prefer the oid's own name; disambiguate with
   a numeric suffix when several nodes share one. *)
let printable_names g =
  let used = Hashtbl.create 64 in
  let names = Oid.Tbl.create 64 in
  List.iter
    (fun o ->
      let base =
        let n = Oid.name o in
        if valid_ident n then n else Printf.sprintf "obj_%d" (Oid.id o)
      in
      let name =
        if Hashtbl.mem used base then
          Printf.sprintf "%s_%d" base (Oid.id o)
        else base
      in
      Hashtbl.replace used name ();
      Oid.Tbl.replace names o name)
    (Graph.nodes g);
  names

let print ?(directives = []) g =
  let buf = Buffer.create 4096 in
  let names = printable_names g in
  List.iter
    (fun (c, dirs) ->
      Buffer.add_string buf (Printf.sprintf "collection %s {" c);
      List.iter
        (fun (a, k) ->
          Buffer.add_string buf
            (Printf.sprintf " %s %s" a (Value.file_kind_name k)))
        dirs;
      Buffer.add_string buf " }\n")
    directives;
  List.iter
    (fun o ->
      let name = Oid.Tbl.find names o in
      Buffer.add_string buf "object ";
      Buffer.add_string buf name;
      (match Graph.collections_of g o with
       | [] -> ()
       | colls ->
         Buffer.add_string buf " in ";
         Buffer.add_string buf (String.concat ", " colls));
      let edges = Graph.out_edges g o in
      if edges = [] then Buffer.add_string buf " {}\n"
      else begin
        Buffer.add_string buf " {\n";
        List.iter
          (fun (l, tgt) ->
            Buffer.add_string buf "  ";
            (if valid_ident l then Buffer.add_string buf l
             else
               Buffer.add_string buf
                 (Value.to_string (Value.String l)));
            Buffer.add_char buf ' ';
            (match tgt with
             | Graph.V v -> Buffer.add_string buf (Value.to_string v)
             | Graph.N o' ->
               Buffer.add_char buf '&';
               Buffer.add_string buf (Oid.Tbl.find names o'));
            Buffer.add_char buf '\n')
          edges;
        Buffer.add_string buf "}\n"
      end)
    (Graph.nodes g);
  Buffer.contents buf

let pp ppf g = Fmt.string ppf (print g)
