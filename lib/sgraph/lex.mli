(** A small shared tokenizer used by the DDL, StruQL and template
    parsers.

    Handles identifiers, quoted strings with escapes, integer and float
    literals, configurable punctuation (longest match first), and
    [//]-, [/* */]- and [#]-style comments. *)

type token =
  | Ident of string
  | Str of string
  | Int_lit of int
  | Float_lit of float
  | Punct of string
  | Eof

type spanned = { tok : token; line : int; col : int; ecol : int }
(** [line]/[col] are the 1-based start of the token; [ecol] is the
    column one past its final character (on the start line — tokens
    that span lines get a 1-wide span). *)

exception Lex_error of string * int  (** message, line *)

val tokenize :
  ?ident_dash:bool ->
  (* allow '-' inside identifiers (DDL attribute names like pub-type) *)
  puncts:string list ->
  string ->
  spanned list
(** Tokenize a whole input string.  [puncts] lists the punctuation
    tokens; longer ones are matched first.  Always ends with [Eof]. *)

val pp_token : Format.formatter -> token -> unit

(** A simple stream over the token list, for recursive-descent
    parsers. *)
module Stream : sig
  type t

  exception Parse_error of string * int * int  (** message, line, column *)

  val of_tokens : spanned list -> t
  val peek : t -> token
  val peek2 : t -> token
  val line : t -> int

  val col : t -> int
  (** 1-based start column of the next token (0 at end of stream). *)

  val pos : t -> int * int
  (** [(line, col)] of the next token. *)

  val last_end : t -> int * int
  (** [(line, ecol)] just past the most recently consumed token;
      [(0, 0)] before the first [advance]. *)

  val advance : t -> token
  val eat_punct : t -> string -> unit
  val eat_ident : t -> string -> unit
  val accept_punct : t -> string -> bool
  (** Consume the punct if it is next; report whether it was. *)

  val accept_ident : t -> string -> bool
  val expect_ident : t -> string
  val expect_string : t -> string
  val error : t -> string -> 'a
  val at_eof : t -> bool
end
