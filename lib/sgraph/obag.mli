(** Ordered bags: insertion-ordered buckets with O(1) keyed removal.

    {!Graph} index buckets (label extents, the value index, incoming
    edges) must enumerate in insertion order — every result ordering in
    the system, down to Skolem oid allocation, rests on it — but they
    are also hit by [remove_edge], which previously re-filtered the
    whole bucket.  An ordered bag is a doubly-linked list threaded
    through a hash table keyed by the identity of each entry: append,
    membership and removal are O(1), enumeration is insertion order of
    the surviving entries (exactly what filtering preserved). *)

type ('k, 'v) t

val create : ?size_hint:int -> unit -> ('k, 'v) t

val length : ('k, 'v) t -> int
val mem : ('k, 'v) t -> 'k -> bool

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Append at the end.  Raises [Invalid_argument] on a duplicate key —
    graph edges are set-like, so a duplicate is a caller bug. *)

val remove : ('k, 'v) t -> 'k -> unit
(** Remove by key; no-op when absent. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
val fold : ('a -> 'k -> 'v -> 'a) -> ('k, 'v) t -> 'a -> 'a
val to_list : ('k, 'v) t -> 'v list
(** Values in insertion order. *)
