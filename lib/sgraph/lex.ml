type token =
  | Ident of string
  | Str of string
  | Int_lit of int
  | Float_lit of float
  | Punct of string
  | Eof

type spanned = { tok : token; line : int; col : int; ecol : int }

exception Lex_error of string * int

let pp_token ppf = function
  | Ident s -> Fmt.pf ppf "identifier %s" s
  | Str s -> Fmt.pf ppf "string %S" s
  | Int_lit i -> Fmt.pf ppf "integer %d" i
  | Float_lit f -> Fmt.pf ppf "float %g" f
  | Punct s -> Fmt.pf ppf "'%s'" s
  | Eof -> Fmt.string ppf "end of input"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char ~dash c =
  is_ident_start c || (c >= '0' && c <= '9') || (dash && c = '-')

let is_digit c = c >= '0' && c <= '9'

let tokenize ?(ident_dash = false) ~puncts src =
  let puncts =
    List.sort (fun a b -> Int.compare (String.length b) (String.length a))
      puncts
  in
  let n = String.length src in
  let line = ref 1 in
  let bol = ref 0 in
  (* start position of the token being scanned, refreshed each loop *)
  let start_line = ref 1 in
  let start_col = ref 1 in
  let toks = ref [] in
  let i = ref 0 in
  let emit tok =
    let ecol =
      (* tokens that span lines get a 1-wide span at their start *)
      if !line = !start_line then !i - !bol + 1 else !start_col + 1
    in
    toks := { tok; line = !start_line; col = !start_col; ecol } :: !toks
  in
  let starts_with p pos =
    let lp = String.length p in
    pos + lp <= n && String.sub src pos lp = p
  in
  while !i < n do
    start_line := !line;
    start_col := !i - !bol + 1;
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if starts_with "//" !i || c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if starts_with "/*" !i then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Lex_error ("unterminated comment", !line))
        else if starts_with "*/" !i then begin
          i := !i + 2;
          fin := true
        end
        else begin
          if src.[!i] = '\n' then begin
            incr line;
            bol := !i + 1
          end;
          incr i
        end
      done
    end
    else if c = '"' then begin
      incr i;
      let buf = Buffer.create 16 in
      let fin = ref false in
      while not !fin do
        if !i >= n then raise (Lex_error ("unterminated string", !line))
        else
          match src.[!i] with
          | '"' ->
            incr i;
            fin := true
          | '\\' ->
            if !i + 1 >= n then
              raise (Lex_error ("unterminated escape", !line));
            (match src.[!i + 1] with
             | 'n' -> Buffer.add_char buf '\n'
             | 't' -> Buffer.add_char buf '\t'
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | c -> Buffer.add_char buf c);
            i := !i + 2
          | '\n' ->
            incr line;
            Buffer.add_char buf '\n';
            incr i;
            bol := !i
          | c ->
            Buffer.add_char buf c;
            incr i
      done;
      emit (Str (Buffer.contents buf))
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1])
    then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let is_float =
        !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        emit (Float_lit (float_of_string (String.sub src start (!i - start))))
      end
      else
        emit (Int_lit (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char ~dash:ident_dash src.[!i] do
        incr i
      done;
      emit (Ident (String.sub src start (!i - start)))
    end
    else begin
      match List.find_opt (fun p -> starts_with p !i) puncts with
      | Some p ->
        i := !i + String.length p;
        emit (Punct p)
      | None ->
        raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line))
    end
  done;
  start_line := !line;
  start_col := n - !bol + 1;
  emit Eof;
  List.rev !toks

module Stream = struct
  type t = { mutable rest : spanned list; mutable last : spanned option }

  exception Parse_error of string * int * int

  let of_tokens toks = { rest = toks; last = None }

  let peek t =
    match t.rest with { tok; _ } :: _ -> tok | [] -> Eof

  let peek2 t =
    match t.rest with _ :: { tok; _ } :: _ -> tok | _ -> Eof

  let line t = match t.rest with { line; _ } :: _ -> line | [] -> 0
  let col t = match t.rest with { col; _ } :: _ -> col | [] -> 0
  let pos t = (line t, col t)

  let last_end t =
    match t.last with Some { line; ecol; _ } -> (line, ecol) | None -> (0, 0)

  let advance t =
    match t.rest with
    | { tok = Eof; _ } :: _ | [] -> Eof
    | ({ tok; _ } as sp) :: rest ->
      t.rest <- rest;
      t.last <- Some sp;
      tok

  let error t msg = raise (Parse_error (msg, line t, col t))

  let eat_punct t p =
    match advance t with
    | Punct p' when p' = p -> ()
    | tok -> error t (Fmt.str "expected '%s' but found %a" p pp_token tok)

  let eat_ident t name =
    match advance t with
    | Ident s when String.lowercase_ascii s = String.lowercase_ascii name ->
      ()
    | tok -> error t (Fmt.str "expected '%s' but found %a" name pp_token tok)

  let accept_punct t p =
    match peek t with
    | Punct p' when p' = p ->
      ignore (advance t);
      true
    | _ -> false

  let accept_ident t name =
    match peek t with
    | Ident s when String.lowercase_ascii s = String.lowercase_ascii name ->
      ignore (advance t);
      true
    | _ -> false

  let expect_ident t =
    match advance t with
    | Ident s -> s
    | tok -> error t (Fmt.str "expected an identifier but found %a" pp_token tok)

  let expect_string t =
    match advance t with
    | Str s -> s
    | tok -> error t (Fmt.str "expected a string but found %a" pp_token tok)

  let at_eof t = peek t = Eof
end
