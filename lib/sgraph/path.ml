type edge_pred =
  | Label of string
  | Any
  | Named_pred of string * (string -> bool)

type t =
  | Epsilon
  | Edge of edge_pred
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let any_path = Star (Edge Any)

let seq_all = function
  | [] -> Epsilon
  | r :: rest -> List.fold_left (fun acc r' -> Seq (acc, r')) r rest

let edge_pred_matches p l =
  match p with
  | Label l' -> l = l'
  | Any -> true
  | Named_pred (_, f) -> f l

let rec nullable = function
  | Epsilon -> true
  | Edge _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ | Opt _ -> true
  | Plus a -> nullable a

(* --- NFA (Thompson construction) --- *)

type builder = {
  mutable next : int;
  mutable eps_edges : (int * int) list;
  mutable trans_edges : (int * edge_pred * int) list;
}

let new_state b =
  let s = b.next in
  b.next <- s + 1;
  s

let add_eps b s s' = b.eps_edges <- (s, s') :: b.eps_edges
let add_trans b s p s' = b.trans_edges <- (s, p, s') :: b.trans_edges

type nfa = {
  id : int;                       (* process-unique, keys snapshot caches *)
  n : int;
  start : int;
  closure : int list array;       (* eps-closure of each state, ascending *)
  accepting : bool array;         (* accept reachable via eps *)
  trans : (edge_pred * int) list array;
}

let rec build b r =
  (* returns (entry, exit) *)
  match r with
  | Epsilon ->
    let s = new_state b in
    (s, s)
  | Edge p ->
    let s = new_state b and e = new_state b in
    add_trans b s p e;
    (s, e)
  | Seq (a, c) ->
    let sa, ea = build b a in
    let sc, ec = build b c in
    add_eps b ea sc;
    (sa, ec)
  | Alt (a, c) ->
    let s = new_state b and e = new_state b in
    let sa, ea = build b a in
    let sc, ec = build b c in
    add_eps b s sa;
    add_eps b s sc;
    add_eps b ea e;
    add_eps b ec e;
    (s, e)
  | Star a ->
    let s = new_state b and e = new_state b in
    let sa, ea = build b a in
    add_eps b s sa;
    add_eps b s e;
    add_eps b ea sa;
    add_eps b ea e;
    (s, e)
  | Plus a -> build b (Seq (a, Star a))
  | Opt a -> build b (Alt (a, Epsilon))

let nfa_counter = Atomic.make 0

let compile r =
  let b = { next = 0; eps_edges = []; trans_edges = [] } in
  let start, accept = build b r in
  let n = b.next in
  let eps = Array.make n [] in
  List.iter (fun (s, s') -> eps.(s) <- s' :: eps.(s)) b.eps_edges;
  (* eps-closures: one DFS per state over a shared stamp array (no
     fresh n-array per state), collecting the visit list directly *)
  let closure = Array.make n [] in
  let stamp = Array.make n (-1) in
  for s = 0 to n - 1 do
    let acc = ref [] in
    let rec go x =
      if stamp.(x) <> s then begin
        stamp.(x) <- s;
        acc := x :: !acc;
        List.iter go eps.(x)
      end
    in
    go s;
    closure.(s) <- List.sort compare !acc
  done;
  (* accepting states in a single reverse-closure pass: everything that
     reaches [accept] over eps edges, instead of List.mem per state *)
  let reps = Array.make n [] in
  List.iter (fun (s, s') -> reps.(s') <- s :: reps.(s')) b.eps_edges;
  let accepting = Array.make n false in
  let rec mark x =
    if not accepting.(x) then begin
      accepting.(x) <- true;
      List.iter mark reps.(x)
    end
  in
  mark accept;
  let trans = Array.make n [] in
  List.iter (fun (s, p, s') -> trans.(s) <- (p, s') :: trans.(s)) b.trans_edges;
  { id = Atomic.fetch_and_add nfa_counter 1; n; start; closure; accepting; trans }

let nfa_states a = a.n
let nfa_id a = a.id
let nfa_start_states a = a.closure.(a.start)
let nfa_is_accepting a s = a.accepting.(s)
let nfa_transitions a s = List.map (fun (p, s') -> (p, a.closure.(s'))) a.trans.(s)

(* --- dense symbol dispatch ---

   [dispatch_rows a labels] compiles the NFA against a concrete label
   alphabet: row (q, l) lists the product successor states of automaton
   state [q] over an edge labeled [labels.(l)] — the order-preserving
   dedup of the concatenation, in chronological transition order, of
   the (ascending) eps-closures of each matching transition's target.
   That is exactly the push order of the interpretive product BFS, so a
   search driven by these rows enqueues pairs in the same sequence.
   [Named_pred] predicates run once per (state, label) here — the
   fallback lane — and never during the search itself. *)

let dispatch_rows a (labels : string array) : int array array array =
  let nl = Array.length labels in
  let stamp = Array.make (max 1 a.n) (-1) in
  Array.init a.n (fun q ->
      Array.init nl (fun l ->
          let rid = (q * nl) + l in
          let row = ref [] in
          List.iter
            (fun (p, q') ->
              if edge_pred_matches p labels.(l) then
                List.iter
                  (fun q'' ->
                    if stamp.(q'') <> rid then begin
                      stamp.(q'') <- rid;
                      row := q'' :: !row
                    end)
                  a.closure.(q'))
            a.trans.(q);
          Array.of_list (List.rev !row)))

(* --- matcher: walking the automaton against a foreign label alphabet
   (e.g. a DataGuide product) without per-step predicate calls --- *)

type matcher = {
  m_start : int array;
  m_accepting : bool array;
  m_rows : int array array array;
}

let matcher a ~labels =
  {
    m_start = Array.of_list a.closure.(a.start);
    m_accepting = Array.copy a.accepting;
    m_rows = dispatch_rows a labels;
  }

let matcher_start m = m.m_start
let matcher_accepting m q = m.m_accepting.(q)
let matcher_row m q l = m.m_rows.(q).(l)

(* --- compiled kernel engine over a frozen Csr snapshot --- *)

type prepared = {
  pcsr : Csr.t;
  nstates : int;
  start_states : int array;
  p_accepting : bool array;
  is_start : bool array;
  dispatch : int array array array;   (* state -> local label -> successors *)
  rdispatch : int array array array;  (* state -> local label -> predecessors *)
  visited : int array;                (* (tcode * nstates + state) -> epoch *)
  seen_t : int array;                 (* tcode -> epoch *)
  mutable epoch : int;
  mutable qbuf : int array;
  mutable qhead : int;
  mutable qtail : int;
  memo_fwd : (int, Graph.target list) Hashtbl.t;
  memo_bwd : (int list, Oid.t list) Hashtbl.t;
}

type Csr.cache += Prepared of prepared

let kernel_enabled = ref true

let build_prepared (s : Csr.t) a =
  let dispatch = dispatch_rows a s.Csr.label_names in
  let rrows = Array.init a.n (fun _ -> Array.make (max 1 s.Csr.n_labels) []) in
  Array.iteri
    (fun q rows ->
      Array.iteri
        (fun l row ->
          Array.iter (fun q'' -> rrows.(q'').(l) <- q :: rrows.(q'').(l)) row)
        rows)
    dispatch;
  let is_start = Array.make a.n false in
  List.iter (fun q -> is_start.(q) <- true) a.closure.(a.start);
  let ntc = s.Csr.n_nodes + s.Csr.n_values in
  {
    pcsr = s;
    nstates = a.n;
    start_states = Array.of_list a.closure.(a.start);
    p_accepting = Array.copy a.accepting;
    is_start;
    dispatch;
    rdispatch = Array.map (Array.map (fun l -> Array.of_list l)) rrows;
    visited = Array.make (max 1 (a.n * ntc)) 0;
    seen_t = Array.make (max 1 ntc) 0;
    epoch = 0;
    qbuf = Array.make 256 0;
    qhead = 0;
    qtail = 0;
    memo_fwd = Hashtbl.create 64;
    memo_bwd = Hashtbl.create 16;
  }

let prepare (s : Csr.t) a =
  match Hashtbl.find_opt s.Csr.cache a.id with
  | Some (Prepared p) -> p
  | _ ->
    let p = build_prepared s a in
    Hashtbl.replace s.Csr.cache a.id (Prepared p);
    p

let q_reset p =
  p.qhead <- 0;
  p.qtail <- 0

let q_push p c =
  if p.qtail = Array.length p.qbuf then begin
    let bigger = Array.make (2 * Array.length p.qbuf) 0 in
    Array.blit p.qbuf 0 bigger 0 p.qtail;
    p.qbuf <- bigger
  end;
  p.qbuf.(p.qtail) <- c;
  p.qtail <- p.qtail + 1

(* Forward product BFS from one source node index.  Pair (tcode, state)
   enqueue order mirrors the interpretive BFS exactly (see
   [dispatch_rows]), accepting tcodes are recorded on dequeue, so the
   decoded result list is identical — order included — to the legacy
   [eval_from].  Results are memoized per source; the epoch-stamped
   visited/seen tables are shared across all sources of a conjunct. *)
let kernel_eval_from p src_i =
  match Hashtbl.find_opt p.memo_fwd src_i with
  | Some r ->
    Atomic.incr p.pcsr.Csr.stats.Csr.hits;
    r
  | None ->
    Atomic.incr p.pcsr.Csr.stats.Csr.misses;
    let s = p.pcsr in
    let ns = p.nstates in
    let nn = s.Csr.n_nodes in
    p.epoch <- p.epoch + 1;
    let ep = p.epoch in
    q_reset p;
    let push q tc =
      let c = (tc * ns) + q in
      if p.visited.(c) <> ep then begin
        p.visited.(c) <- ep;
        q_push p c
      end
    in
    Array.iter (fun q -> push q src_i) p.start_states;
    let out_rev = ref [] in
    while p.qhead < p.qtail do
      let c = p.qbuf.(p.qhead) in
      p.qhead <- p.qhead + 1;
      let q = c mod ns and tc = c / ns in
      if p.p_accepting.(q) && p.seen_t.(tc) <> ep then begin
        p.seen_t.(tc) <- ep;
        out_rev := tc :: !out_rev
      end;
      if tc < nn then
        for e = s.Csr.fwd_off.(tc) to s.Csr.fwd_off.(tc + 1) - 1 do
          let row = p.dispatch.(q).(s.Csr.fwd_lab.(e)) in
          if Array.length row > 0 then begin
            let t = s.Csr.fwd_tgt.(e) in
            for j = 0 to Array.length row - 1 do
              push row.(j) t
            done
          end
        done
    done;
    let res = List.rev_map (Graph.decode_tcode s) !out_rev in
    Hashtbl.add p.memo_fwd src_i res;
    res

(* Backward lane: all source nodes from which some probe tcode is
   reachable under the automaton — a complete candidate set (callers
   re-confirm forward, so a superset is safe; a subset never happens by
   reverse-reachability completeness).  Candidates come out in node
   index order, i.e. [Graph.nodes] order.  Degree statistics gate the
   search: probes with zero in-degree can only be their own witnesses
   (nullable case), no BFS needed. *)
let kernel_sources p probes =
  match Hashtbl.find_opt p.memo_bwd probes with
  | Some r ->
    Atomic.incr p.pcsr.Csr.stats.Csr.hits;
    r
  | None ->
    Atomic.incr p.pcsr.Csr.stats.Csr.misses;
    let s = p.pcsr in
    let ns = p.nstates in
    let nn = s.Csr.n_nodes in
    let res =
      let total_in =
        List.fold_left (fun acc tc -> acc + Csr.in_degree s tc) 0 probes
      in
      if total_in = 0 then
        if Array.exists (fun q -> p.p_accepting.(q)) p.start_states then
          (* nullable: each probe node is its own (only) source *)
          List.filter_map
            (fun tc -> if tc < nn then Some s.Csr.node_ids.(tc) else None)
            probes
        else []
      else begin
        p.epoch <- p.epoch + 1;
        let ep = p.epoch in
        q_reset p;
        let push q tc =
          let c = (tc * ns) + q in
          if p.visited.(c) <> ep then begin
            p.visited.(c) <- ep;
            q_push p c
          end
        in
        List.iter
          (fun tc ->
            for q = 0 to ns - 1 do
              if p.p_accepting.(q) then push q tc
            done)
          probes;
        let cand = Array.make (max 1 nn) false in
        while p.qhead < p.qtail do
          let c = p.qbuf.(p.qhead) in
          p.qhead <- p.qhead + 1;
          let q = c mod ns and tc = c / ns in
          if tc < nn && p.is_start.(q) then cand.(tc) <- true;
          for e = s.Csr.rev_off.(tc) to s.Csr.rev_off.(tc + 1) - 1 do
            let row = p.rdispatch.(q).(s.Csr.rev_lab.(e)) in
            if Array.length row > 0 then begin
              let i = s.Csr.rev_src.(e) in
              for j = 0 to Array.length row - 1 do
                push row.(j) i
              done
            end
          done
        done;
        let acc = ref [] in
        for i = nn - 1 downto 0 do
          if cand.(i) then acc := s.Csr.node_ids.(i) :: !acc
        done;
        !acc
      end
    in
    Hashtbl.add p.memo_bwd probes res;
    res

let kernel_for g a =
  if not !kernel_enabled then None
  else
    match Graph.snapshot g with
    | Some s -> Some (prepare s a)
    | None -> None

(* --- evaluation --- *)

let legacy_eval_from g a src =
  let visited = Hashtbl.create 64 in
  let results_seen = Hashtbl.create 16 in
  let results_rev = ref [] in
  let record t =
    let k = Graph.(match t with N o -> `N (Oid.id o) | V v -> `V v) in
    if not (Hashtbl.mem results_seen k) then begin
      Hashtbl.add results_seen k ();
      results_rev := t :: !results_rev
    end
  in
  let queue = Queue.create () in
  let push s t =
    let k =
      Graph.(match t with N o -> (s, `N (Oid.id o)) | V v -> (s, `V v))
    in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      Queue.add (s, t) queue
    end
  in
  List.iter (fun s -> push s (Graph.N src)) a.closure.(a.start);
  while not (Queue.is_empty queue) do
    let s, t = Queue.pop queue in
    if a.accepting.(s) then record t;
    match t with
    | Graph.V _ -> ()
    | Graph.N o ->
      List.iter
        (fun (l, tgt) ->
          List.iter
            (fun (p, s') ->
              if edge_pred_matches p l then
                List.iter (fun s'' -> push s'' tgt) a.closure.(s'))
            a.trans.(s))
        (Graph.out_edges g o)
  done;
  List.rev !results_rev

let eval_from ?nfa g r src =
  let a = match nfa with Some a -> a | None -> compile r in
  match kernel_for g a with
  | Some p -> (
      match Csr.node_index p.pcsr src with
      | Some i -> kernel_eval_from p i
      | None ->
        (* source unknown to the snapshot (not a node of the graph) *)
        legacy_eval_from g a src)
  | None -> legacy_eval_from g a src

let matches ?nfa g r src tgt =
  List.exists (Graph.target_equal tgt) (eval_from ?nfa g r src)

let eval_pairs ?nfa g r ~sources =
  let a = match nfa with Some a -> a | None -> compile r in
  List.concat_map
    (fun src -> List.map (fun t -> (src, t)) (eval_from ~nfa:a g r src))
    sources

type probe = Pnode of Oid.t | Pvalue of Value.t

let candidate_sources ?nfa g r ~towards =
  let a = match nfa with Some a -> a | None -> compile r in
  match kernel_for g a with
  | None -> None
  | Some p ->
    let s = p.pcsr in
    let nn = s.Csr.n_nodes in
    let probes =
      match towards with
      | Pnode o -> (
          match Csr.node_index s o with Some i -> [ i ] | None -> [])
      | Pvalue v ->
        let acc = ref [] in
        for k = s.Csr.n_values - 1 downto 0 do
          let v' = s.Csr.values.(k) in
          if Value.equal v v' || Value.coerce_equal v v' then
            acc := (nn + k) :: !acc
        done;
        !acc
    in
    Some (kernel_sources p probes)

(* --- Reference semantics (for tests) --- *)

module Pairs = struct
  type key = (int, Value.t) Either.t

  let key = function
    | Graph.N o -> Either.Left (Oid.id o)
    | Graph.V v -> Either.Right v

  type t = {
    tbl : (key * key, unit) Hashtbl.t;
    mutable list_rev : (Graph.target * Graph.target) list;
  }

  let create () = { tbl = Hashtbl.create 64; list_rev = [] }
  let mem p x y = Hashtbl.mem p.tbl (key x, key y)

  let add p x y =
    if not (mem p x y) then begin
      Hashtbl.add p.tbl (key x, key y) ();
      p.list_rev <- (x, y) :: p.list_rev
    end

  let to_list p = List.rev p.list_rev
  let of_list l =
    let p = create () in
    List.iter (fun (x, y) -> add p x y) l;
    p
end

let all_objects g =
  let p = Hashtbl.create 64 in
  let acc = ref [] in
  let record t =
    let k = Pairs.key t in
    if not (Hashtbl.mem p k) then begin
      Hashtbl.add p k ();
      acc := t :: !acc
    end
  in
  List.iter (fun o -> record (Graph.N o)) (Graph.nodes g);
  Graph.iter_edges (fun _ _ t -> record t) g;
  List.rev !acc

let rec eval_ref g r =
  match r with
  | Epsilon -> List.map (fun t -> (t, t)) (all_objects g)
  | Edge p ->
    Graph.fold_edges
      (fun src l tgt acc ->
        if edge_pred_matches p l then (Graph.N src, tgt) :: acc else acc)
      g []
    |> List.rev
  | Alt (a, b) ->
    let p = Pairs.of_list (eval_ref g a) in
    List.iter (fun (x, y) -> Pairs.add p x y) (eval_ref g b);
    Pairs.to_list p
  | Seq (a, b) ->
    let ra = eval_ref g a and rb = eval_ref g b in
    let p = Pairs.create () in
    List.iter
      (fun (x, y) ->
        List.iter
          (fun (y', z) -> if Graph.target_equal y y' then Pairs.add p x z)
          rb)
      ra;
    Pairs.to_list p
  | Opt a ->
    let p = Pairs.of_list (eval_ref g Epsilon) in
    List.iter (fun (x, y) -> Pairs.add p x y) (eval_ref g a);
    Pairs.to_list p
  | Plus a ->
    (* least fixpoint: A ∪ A;A ∪ ... *)
    let base = eval_ref g a in
    let p = Pairs.of_list base in
    let changed = ref true in
    while !changed do
      changed := false;
      let current = Pairs.to_list p in
      List.iter
        (fun (x, y) ->
          List.iter
            (fun (y', z) ->
              if Graph.target_equal y y' && not (Pairs.mem p x z) then begin
                Pairs.add p x z;
                changed := true
              end)
            base)
        current
    done;
    Pairs.to_list p
  | Star a ->
    let p = Pairs.of_list (eval_ref g Epsilon) in
    List.iter (fun (x, y) -> Pairs.add p x y) (eval_ref g (Plus a));
    Pairs.to_list p

let rec pp ppf = function
  | Epsilon -> Fmt.string ppf "()"
  | Edge (Label l) -> Fmt.pf ppf "%S" l
  | Edge Any -> Fmt.string ppf "true"
  | Edge (Named_pred (n, _)) -> Fmt.string ppf n
  | Seq (a, b) -> Fmt.pf ppf "%a.%a" pp_atom a pp_atom b
  | Alt (a, b) -> Fmt.pf ppf "(%a | %a)" pp a pp b
  | Star (Edge Any) -> Fmt.string ppf "*"
  | Star a -> Fmt.pf ppf "%a*" pp_atom a
  | Plus a -> Fmt.pf ppf "%a+" pp_atom a
  | Opt a -> Fmt.pf ppf "%a?" pp_atom a

and pp_atom ppf r =
  match r with
  | Seq _ | Alt _ -> Fmt.pf ppf "(%a)" pp r
  | _ -> pp ppf r
