type edge_pred =
  | Label of string
  | Any
  | Named_pred of string * (string -> bool)

type t =
  | Epsilon
  | Edge of edge_pred
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let any_path = Star (Edge Any)

let seq_all = function
  | [] -> Epsilon
  | r :: rest -> List.fold_left (fun acc r' -> Seq (acc, r')) r rest

let edge_pred_matches p l =
  match p with
  | Label l' -> l = l'
  | Any -> true
  | Named_pred (_, f) -> f l

let rec nullable = function
  | Epsilon -> true
  | Edge _ -> false
  | Seq (a, b) -> nullable a && nullable b
  | Alt (a, b) -> nullable a || nullable b
  | Star _ | Opt _ -> true
  | Plus a -> nullable a

(* --- NFA (Thompson construction) --- *)

type builder = {
  mutable next : int;
  mutable eps_edges : (int * int) list;
  mutable trans_edges : (int * edge_pred * int) list;
}

let new_state b =
  let s = b.next in
  b.next <- s + 1;
  s

let add_eps b s s' = b.eps_edges <- (s, s') :: b.eps_edges
let add_trans b s p s' = b.trans_edges <- (s, p, s') :: b.trans_edges

type nfa = {
  n : int;
  start : int;
  closure : int list array;       (* eps-closure of each state *)
  accepting : bool array;         (* accept reachable via eps *)
  trans : (edge_pred * int) list array;
}

let rec build b r =
  (* returns (entry, exit) *)
  match r with
  | Epsilon ->
    let s = new_state b in
    (s, s)
  | Edge p ->
    let s = new_state b and e = new_state b in
    add_trans b s p e;
    (s, e)
  | Seq (a, c) ->
    let sa, ea = build b a in
    let sc, ec = build b c in
    add_eps b ea sc;
    (sa, ec)
  | Alt (a, c) ->
    let s = new_state b and e = new_state b in
    let sa, ea = build b a in
    let sc, ec = build b c in
    add_eps b s sa;
    add_eps b s sc;
    add_eps b ea e;
    add_eps b ec e;
    (s, e)
  | Star a ->
    let s = new_state b and e = new_state b in
    let sa, ea = build b a in
    add_eps b s sa;
    add_eps b s e;
    add_eps b ea sa;
    add_eps b ea e;
    (s, e)
  | Plus a -> build b (Seq (a, Star a))
  | Opt a -> build b (Alt (a, Epsilon))

let compile r =
  let b = { next = 0; eps_edges = []; trans_edges = [] } in
  let start, accept = build b r in
  let n = b.next in
  let eps = Array.make n [] in
  List.iter (fun (s, s') -> eps.(s) <- s' :: eps.(s)) b.eps_edges;
  let closure = Array.make n [] in
  for s = 0 to n - 1 do
    let seen = Array.make n false in
    let rec go x =
      if not seen.(x) then begin
        seen.(x) <- true;
        List.iter go eps.(x)
      end
    in
    go s;
    let acc = ref [] in
    for x = n - 1 downto 0 do
      if seen.(x) then acc := x :: !acc
    done;
    closure.(s) <- !acc
  done;
  let accepting = Array.make n false in
  for s = 0 to n - 1 do
    accepting.(s) <- List.mem accept closure.(s)
  done;
  let trans = Array.make n [] in
  List.iter (fun (s, p, s') -> trans.(s) <- (p, s') :: trans.(s)) b.trans_edges;
  { n; start; closure; accepting; trans }

let nfa_states a = a.n
let nfa_start_states a = a.closure.(a.start)
let nfa_is_accepting a s = a.accepting.(s)
let nfa_transitions a s = List.map (fun (p, s') -> (p, a.closure.(s'))) a.trans.(s)

let eval_from ?nfa g r src =
  let a = match nfa with Some a -> a | None -> compile r in
  let visited = Hashtbl.create 64 in
  let results_seen = Hashtbl.create 16 in
  let results_rev = ref [] in
  let record t =
    let k = Graph.(match t with N o -> `N (Oid.id o) | V v -> `V v) in
    if not (Hashtbl.mem results_seen k) then begin
      Hashtbl.add results_seen k ();
      results_rev := t :: !results_rev
    end
  in
  let queue = Queue.create () in
  let push s t =
    let k =
      Graph.(match t with N o -> (s, `N (Oid.id o)) | V v -> (s, `V v))
    in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.add visited k ();
      Queue.add (s, t) queue
    end
  in
  List.iter (fun s -> push s (Graph.N src)) a.closure.(a.start);
  while not (Queue.is_empty queue) do
    let s, t = Queue.pop queue in
    if a.accepting.(s) then record t;
    match t with
    | Graph.V _ -> ()
    | Graph.N o ->
      List.iter
        (fun (l, tgt) ->
          List.iter
            (fun (p, s') ->
              if edge_pred_matches p l then
                List.iter (fun s'' -> push s'' tgt) a.closure.(s'))
            a.trans.(s))
        (Graph.out_edges g o)
  done;
  List.rev !results_rev

let matches ?nfa g r src tgt =
  List.exists (Graph.target_equal tgt) (eval_from ?nfa g r src)

let eval_pairs ?nfa g r ~sources =
  let a = match nfa with Some a -> a | None -> compile r in
  List.concat_map
    (fun src -> List.map (fun t -> (src, t)) (eval_from ~nfa:a g r src))
    sources

(* --- Reference semantics (for tests) --- *)

module Pairs = struct
  type key = (int, Value.t) Either.t

  let key = function
    | Graph.N o -> Either.Left (Oid.id o)
    | Graph.V v -> Either.Right v

  type t = {
    tbl : (key * key, unit) Hashtbl.t;
    mutable list_rev : (Graph.target * Graph.target) list;
  }

  let create () = { tbl = Hashtbl.create 64; list_rev = [] }
  let mem p x y = Hashtbl.mem p.tbl (key x, key y)

  let add p x y =
    if not (mem p x y) then begin
      Hashtbl.add p.tbl (key x, key y) ();
      p.list_rev <- (x, y) :: p.list_rev
    end

  let to_list p = List.rev p.list_rev
  let of_list l =
    let p = create () in
    List.iter (fun (x, y) -> add p x y) l;
    p
end

let all_objects g =
  let p = Hashtbl.create 64 in
  let acc = ref [] in
  let record t =
    let k = Pairs.key t in
    if not (Hashtbl.mem p k) then begin
      Hashtbl.add p k ();
      acc := t :: !acc
    end
  in
  List.iter (fun o -> record (Graph.N o)) (Graph.nodes g);
  Graph.iter_edges (fun _ _ t -> record t) g;
  List.rev !acc

let rec eval_ref g r =
  match r with
  | Epsilon -> List.map (fun t -> (t, t)) (all_objects g)
  | Edge p ->
    Graph.fold_edges
      (fun src l tgt acc ->
        if edge_pred_matches p l then (Graph.N src, tgt) :: acc else acc)
      g []
    |> List.rev
  | Alt (a, b) ->
    let p = Pairs.of_list (eval_ref g a) in
    List.iter (fun (x, y) -> Pairs.add p x y) (eval_ref g b);
    Pairs.to_list p
  | Seq (a, b) ->
    let ra = eval_ref g a and rb = eval_ref g b in
    let p = Pairs.create () in
    List.iter
      (fun (x, y) ->
        List.iter
          (fun (y', z) -> if Graph.target_equal y y' then Pairs.add p x z)
          rb)
      ra;
    Pairs.to_list p
  | Opt a ->
    let p = Pairs.of_list (eval_ref g Epsilon) in
    List.iter (fun (x, y) -> Pairs.add p x y) (eval_ref g a);
    Pairs.to_list p
  | Plus a ->
    (* least fixpoint: A ∪ A;A ∪ ... *)
    let base = eval_ref g a in
    let p = Pairs.of_list base in
    let changed = ref true in
    while !changed do
      changed := false;
      let current = Pairs.to_list p in
      List.iter
        (fun (x, y) ->
          List.iter
            (fun (y', z) ->
              if Graph.target_equal y y' && not (Pairs.mem p x z) then begin
                Pairs.add p x z;
                changed := true
              end)
            base)
        current
    done;
    Pairs.to_list p
  | Star a ->
    let p = Pairs.of_list (eval_ref g Epsilon) in
    List.iter (fun (x, y) -> Pairs.add p x y) (eval_ref g (Plus a));
    Pairs.to_list p

let rec pp ppf = function
  | Epsilon -> Fmt.string ppf "()"
  | Edge (Label l) -> Fmt.pf ppf "%S" l
  | Edge Any -> Fmt.string ppf "true"
  | Edge (Named_pred (n, _)) -> Fmt.string ppf n
  | Seq (a, b) -> Fmt.pf ppf "%a.%a" pp_atom a pp_atom b
  | Alt (a, b) -> Fmt.pf ppf "(%a | %a)" pp a pp b
  | Star (Edge Any) -> Fmt.string ppf "*"
  | Star a -> Fmt.pf ppf "%a*" pp_atom a
  | Plus a -> Fmt.pf ppf "%a+" pp_atom a
  | Opt a -> Fmt.pf ppf "%a?" pp_atom a

and pp_atom ppf r =
  match r with
  | Seq _ | Alt _ -> Fmt.pf ppf "(%a)" pp r
  | _ -> pp ppf r
