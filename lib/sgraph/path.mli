(** Regular path expressions.

    Conditions of the form [x -> R -> y] in StruQL assert a path from
    [x] to [y] matching the regular path expression [R].  Regular path
    expressions are more general than regular expressions because they
    admit predicates on edge labels; [Any] denotes any edge label
    ([true] in the paper), and [Star (Edge Any)] is the [*] wildcard.

    Expressions compile to NFAs (Thompson construction) and are
    evaluated by searching the product of the automaton with the graph.
    A naive fixpoint evaluator over edge-pair relations is provided as a
    semantics reference for testing. *)

type edge_pred =
  | Label of string                        (** exact label *)
  | Any                                    (** matches every label *)
  | Named_pred of string * (string -> bool)
      (** a named predicate on labels, e.g. [isName] *)

type t =
  | Epsilon
  | Edge of edge_pred
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

val any_path : t
(** The [*] abbreviation: [Star (Edge Any)]. *)

val seq_all : t list -> t
(** Concatenation of a label path, [Epsilon] when empty. *)

val edge_pred_matches : edge_pred -> string -> bool
val nullable : t -> bool
(** Whether the expression matches the empty path. *)

type nfa

val compile : t -> nfa
val nfa_states : nfa -> int

val nfa_start_states : nfa -> int list
(** The ε-closure of the start state. *)

val nfa_is_accepting : nfa -> int -> bool

val nfa_transitions : nfa -> int -> (edge_pred * int list) list
(** Outgoing labelled transitions of a state; each target is given as
    the ε-closure of the state the edge enters.  With
    {!nfa_start_states} and {!nfa_is_accepting} this is enough to walk
    the automaton against another transition system (e.g. a DataGuide
    product). *)

val eval_from : ?nfa:nfa -> Graph.t -> t -> Oid.t -> Graph.target list
(** All objects [y] such that a path from the source matching the
    expression ends at [y].  Includes the source itself when the
    expression is nullable.  Deduplicated, deterministic order. *)

val matches : ?nfa:nfa -> Graph.t -> t -> Oid.t -> Graph.target -> bool

val eval_pairs : ?nfa:nfa -> Graph.t -> t -> sources:Oid.t list ->
  (Oid.t * Graph.target) list
(** [eval_from] for every source, flattened. *)

val all_objects : Graph.t -> Graph.target list
(** Every object of the graph — internal nodes and the atomic values
    appearing as edge targets (the active domain). *)

val eval_ref : Graph.t -> t -> (Graph.target * Graph.target) list
(** Reference semantics: the relation of all (x, y) pairs connected by a
    matching path, computed by fixpoint over edge relations (no
    automaton).  Intended for tests; quadratic. *)

val pp : Format.formatter -> t -> unit
