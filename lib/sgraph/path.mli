(** Regular path expressions.

    Conditions of the form [x -> R -> y] in StruQL assert a path from
    [x] to [y] matching the regular path expression [R].  Regular path
    expressions are more general than regular expressions because they
    admit predicates on edge labels; [Any] denotes any edge label
    ([true] in the paper), and [Star (Edge Any)] is the [*] wildcard.

    Expressions compile to NFAs (Thompson construction) and are
    evaluated by searching the product of the automaton with the graph.
    A naive fixpoint evaluator over edge-pair relations is provided as a
    semantics reference for testing. *)

type edge_pred =
  | Label of string                        (** exact label *)
  | Any                                    (** matches every label *)
  | Named_pred of string * (string -> bool)
      (** a named predicate on labels, e.g. [isName] *)

type t =
  | Epsilon
  | Edge of edge_pred
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

val any_path : t
(** The [*] abbreviation: [Star (Edge Any)]. *)

val seq_all : t list -> t
(** Concatenation of a label path, [Epsilon] when empty. *)

val edge_pred_matches : edge_pred -> string -> bool
val nullable : t -> bool
(** Whether the expression matches the empty path. *)

type nfa

val compile : t -> nfa
val nfa_states : nfa -> int
val nfa_id : nfa -> int
(** Process-unique id of this compiled automaton; keys the per-snapshot
    caches of prepared dispatch tables. *)

val nfa_start_states : nfa -> int list
(** The ε-closure of the start state. *)

val nfa_is_accepting : nfa -> int -> bool

val nfa_transitions : nfa -> int -> (edge_pred * int list) list
(** Outgoing labelled transitions of a state; each target is given as
    the ε-closure of the state the edge enters.  With
    {!nfa_start_states} and {!nfa_is_accepting} this is enough to walk
    the automaton against another transition system (e.g. a DataGuide
    product). *)

(** {1 Dense dispatch against a label alphabet}

    A {!matcher} compiles the automaton against a fixed array of edge
    labels: successor states of (state, label index) become a dense
    int-array row, with [Named_pred] predicates evaluated once per
    (state, label) at build time.  Clients walking the automaton
    against another transition system (DataGuide products, lint
    path-emptiness) pay array indexing per step instead of predicate
    calls over transition lists. *)

type matcher

val matcher : nfa -> labels:string array -> matcher
val matcher_start : matcher -> int array
val matcher_accepting : matcher -> int -> bool
val matcher_row : matcher -> int -> int -> int array
(** [matcher_row m state label] — successor states over an edge
    carrying [labels.(label)], in product-BFS push order. *)

(** {1 Evaluation}

    When the graph has a valid {!Graph.snapshot}, evaluation runs on
    the compiled kernel: per-state symbol-dispatch tables over the
    snapshot's CSR, an epoch-stamped (state, tcode) visited table and
    per-source result memo shared across all sources of a conjunct,
    and a backward lane over the reverse CSR for bound targets.  The
    result {e order is identical} to the interpretive BFS, so callers
    (and everything downstream: Skolem oid allocation, golden sites,
    the render cache) observe byte-identical results either way.
    Without a valid snapshot — or with {!kernel_enabled} off — the
    interpretive BFS runs directly on the live graph. *)

val kernel_enabled : bool ref
(** Kill switch for the compiled kernel (differential tests, bench
    ablations).  Default [true]. *)

val eval_from : ?nfa:nfa -> Graph.t -> t -> Oid.t -> Graph.target list
(** All objects [y] such that a path from the source matching the
    expression ends at [y].  Includes the source itself when the
    expression is nullable.  Deduplicated, deterministic order. *)

type probe = Pnode of Oid.t | Pvalue of Value.t
(** A bound path target: an exact node, or a value matched up to
    {!Value.coerce_equal} (how condition unification compares values). *)

val candidate_sources :
  ?nfa:nfa -> Graph.t -> t -> towards:probe -> Oid.t list option
(** Backward lane: the complete set of source nodes from which a
    matching path can reach the probe, in {!Graph.nodes} order —
    [None] when no kernel snapshot is available.  The set may be a
    superset of the exact sources only in that callers are expected to
    re-confirm each candidate forward (which the memoized kernel makes
    cheap); it is never missing a source. *)

val matches : ?nfa:nfa -> Graph.t -> t -> Oid.t -> Graph.target -> bool

val eval_pairs : ?nfa:nfa -> Graph.t -> t -> sources:Oid.t list ->
  (Oid.t * Graph.target) list
(** [eval_from] for every source, flattened. *)

val all_objects : Graph.t -> Graph.target list
(** Every object of the graph — internal nodes and the atomic values
    appearing as edge targets (the active domain). *)

val eval_ref : Graph.t -> t -> (Graph.target * Graph.target) list
(** Reference semantics: the relation of all (x, y) pairs connected by a
    matching path, computed by fixpoint over edge relations (no
    automaton).  Intended for tests; quadratic. *)

val pp : Format.formatter -> t -> unit
