type ('k, 'v) node = {
  key : 'k;
  value : 'v;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) node) Hashtbl.t;
  mutable first : ('k, 'v) node option;
  mutable last : ('k, 'v) node option;
  mutable size : int;
}

let create ?(size_hint = 8) () =
  { tbl = Hashtbl.create size_hint; first = None; last = None; size = 0 }

let length t = t.size
let mem t k = Hashtbl.mem t.tbl k

let add t k v =
  if Hashtbl.mem t.tbl k then
    invalid_arg "Obag.add: duplicate key"
  else begin
    let n = { key = k; value = v; prev = t.last; next = None } in
    (match t.last with
     | Some l -> l.next <- Some n
     | None -> t.first <- Some n);
    t.last <- Some n;
    Hashtbl.add t.tbl k n;
    t.size <- t.size + 1
  end

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some n ->
    Hashtbl.remove t.tbl k;
    (match n.prev with
     | Some p -> p.next <- n.next
     | None -> t.first <- n.next);
    (match n.next with
     | Some s -> s.prev <- n.prev
     | None -> t.last <- n.prev);
    t.size <- t.size - 1

let iter f t =
  let rec go = function
    | None -> ()
    | Some n ->
      f n.key n.value;
      go n.next
  in
  go t.first

let fold f t init =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.key n.value) n.next
  in
  go init t.first

let to_list t = List.rev (fold (fun acc _ v -> v :: acc) t [])
