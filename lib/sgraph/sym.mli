(** Global label interner.

    Edge labels are strings at the API surface but the compiled graph
    kernel ({!Csr}) works on dense integer symbols.  The interner is
    process-global so symbols are stable across graphs and snapshots:
    the same label always maps to the same symbol, which lets a
    compiled path automaton prepared against one snapshot share its
    symbol ids with any other.  All operations are mutex-protected —
    snapshots are built and consumed from multiple domains
    ({!Render_pool}). *)

val intern : string -> int
(** Symbol of the label, allocating one on first sight.  Symbols are
    small consecutive non-negative ints in interning order. *)

val find : string -> int option
(** Symbol of the label if it was ever interned, without allocating. *)

val name : int -> string
(** Label of a symbol previously returned by {!intern}. *)

val count : unit -> int
(** Number of symbols interned so far. *)
