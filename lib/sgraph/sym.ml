let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names = ref (Array.make 64 "")
let count = ref 0

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let intern s =
  locked (fun () ->
      match Hashtbl.find_opt table s with
      | Some i -> i
      | None ->
        let i = !count in
        if i >= Array.length !names then begin
          let bigger = Array.make (2 * Array.length !names) "" in
          Array.blit !names 0 bigger 0 i;
          names := bigger
        end;
        !names.(i) <- s;
        Hashtbl.add table s i;
        incr count;
        i)

let find s = locked (fun () -> Hashtbl.find_opt table s)
let name i = locked (fun () -> !names.(i))
let count () = locked (fun () -> !count)
