let lock = Mutex.create ()
let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names = ref (Array.make 64 "")
let count = ref 0

(* Dsan identities: the interner is one mutex-guarded shared object —
   every read or write of [table]/[names]/[count] happens with [lock]
   held, which the sanitizer checks via the acquire/release edges. *)
let dsan_lock = Dsan.lock_id ~name:"Sym.lock"
let dsan_obj = Dsan.alloc ~name:"Sym.table"

let locked f =
  Mutex.lock lock;
  Dsan.acquire ~site:__POS__ dsan_lock;
  Fun.protect
    ~finally:(fun () ->
      Dsan.release ~site:__POS__ dsan_lock;
      Mutex.unlock lock)
    f

let intern s =
  locked (fun () ->
      Dsan.write ~site:__POS__ dsan_obj 0;
      match Hashtbl.find_opt table s with
      | Some i -> i
      | None ->
        let i = !count in
        if i >= Array.length !names then begin
          let bigger = Array.make (2 * Array.length !names) "" in
          Array.blit !names 0 bigger 0 i;
          names := bigger
        end;
        !names.(i) <- s;
        Hashtbl.add table s i;
        incr count;
        i)

let find s =
  locked (fun () ->
      Dsan.read ~site:__POS__ dsan_obj 0;
      Hashtbl.find_opt table s)

let name i =
  locked (fun () ->
      Dsan.read ~site:__POS__ dsan_obj 0;
      !names.(i))

let count () =
  locked (fun () ->
      Dsan.read ~site:__POS__ dsan_obj 0;
      !count)
