(** Data-graph deltas: node / edge / collection adds and removes
    between two states of a graph, plus the order signals differential
    evaluation needs (out-bucket resequencing, collection reordering).

    Produced either exactly by the {!Rec} recording mutator (direct
    watch mode) or structurally by {!diff} over two graphs sharing
    oids (mediated mode, after {!rebase} re-keys a fresh integration
    onto the previous one's oids by node name). *)

type edge = Oid.t * string * Graph.target

type t = {
  nodes_added : Oid.t list;
  nodes_removed : Oid.t list;
  edges_added : edge list;
  edges_removed : edge list;
  coll_added : (string * Oid.t) list;
  coll_removed : (string * Oid.t) list;
  resequenced : Oid.t list;
      (** nodes whose out-bucket kept its edge set but changed order *)
  reordered : string list;
      (** collections whose surviving members changed relative order *)
}

val empty : t
val is_empty : t -> bool

val card : t -> int
(** Number of elementary changes (order signals count once each). *)

val union : t -> t -> t

val touched : t -> Oid.Set.t
(** Every oid whose local neighbourhood the delta touches: endpoints
    of changed edges, changed members, added/removed/resequenced
    nodes. *)

val closure : Graph.t -> t -> Oid.Set.t
(** Backward closure of {!touched} over the graph's incoming edges
    {e plus} the reverse of the removed edges (which the post-change
    graph no longer holds): every node that can forward-reach a
    touched element — the candidate drivers of differential
    re-evaluation.  [g] is the post-change graph. *)

val diff : old:Graph.t -> Graph.t -> t
(** Oid-keyed structural diff.  Only meaningful when both graphs share
    oids for surviving objects (see {!rebase}). *)

val rebase : old:Graph.t -> Graph.t -> Graph.t
(** Replay [g] (a freshly integrated graph) into a new graph in which
    every node whose name uniquely matches a node of [old] reuses the
    old oid.  Insertion order — node order, per-node out-bucket order,
    collection extent order — is exactly [g]'s, so the result is an
    order-faithful copy of [g] over stable oids.  Nodes with duplicated
    names (in either graph) are conservatively treated as new. *)

(** A recording mutator over a live graph: each operation applies to
    the graph and accumulates the exact delta.  No-op mutations (e.g.
    adding a present edge) record nothing. *)
module Rec : sig
  type r

  val create : Graph.t -> r
  val graph : r -> Graph.t
  val add_node : r -> Oid.t -> unit
  val remove_node : r -> Oid.t -> unit
  val add_edge : r -> Oid.t -> string -> Graph.target -> unit
  val remove_edge : r -> Oid.t -> string -> Graph.target -> unit
  val add_to_collection : r -> string -> Oid.t -> unit
  val remove_from_collection : r -> string -> Oid.t -> unit

  val set_value : r -> Oid.t -> string -> Value.t -> unit
  (** Replace the node's atomic values under [label] with the single
      value [v] (a data-file-style attribute update). *)

  val flush : r -> t
  (** The delta accumulated since creation or the last flush; resets
      the accumulator. *)
end

val pp : Format.formatter -> t -> unit
