(** A small, strict HTTP/1.1 codec for [strudeld] (see the interface
    for the contract and limits). *)

type meth = GET | HEAD | POST | Other of string

let meth_name = function
  | GET -> "GET"
  | HEAD -> "HEAD"
  | POST -> "POST"
  | Other m -> m

type request = {
  meth : meth;
  target : string;
  path : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

exception Bad_request of string

(* --- limits: a malicious or broken client must cost O(limit), never
   O(what it sends) --- *)

let max_request_line = 8 * 1024
let max_header_count = 100
let max_headers_bytes = 64 * 1024
let max_body_bytes = 1024 * 1024

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

let token_eq a b = String.lowercase_ascii a = String.lowercase_ascii b

let keep_alive req =
  match header req "connection" with
  | Some c when token_eq c "close" -> false
  | Some c when token_eq c "keep-alive" -> true
  | _ -> req.version = "HTTP/1.1"

(* --- the connection read buffer --- *)

type buf = {
  mutable data : Bytes.t;
  mutable len : int;  (* bytes of [data] that are valid *)
  mutable pos : int;  (* consumed prefix *)
}

let create_buf () = { data = Bytes.create 4096; len = 0; pos = 0 }

let compact b =
  if b.pos > 0 then begin
    Bytes.blit b.data b.pos b.data 0 (b.len - b.pos);
    b.len <- b.len - b.pos;
    b.pos <- 0
  end

(* Pull more bytes from the transport; false at end of stream. *)
let fill ~read b =
  compact b;
  if b.len = Bytes.length b.data then begin
    let bigger = Bytes.create (2 * Bytes.length b.data) in
    Bytes.blit b.data 0 bigger 0 b.len;
    b.data <- bigger
  end;
  let n = read b.data b.len (Bytes.length b.data - b.len) in
  if n < 0 then raise (Bad_request "transport returned a negative read");
  if n = 0 then false
  else begin
    b.len <- b.len + n;
    true
  end

(* Index of the next '\n' at or after [from], or -1. *)
let find_nl b from =
  let rec go i = if i >= b.len then -1
    else if Bytes.get b.data i = '\n' then i
    else go (i + 1)
  in
  go (max from b.pos)

(* Read one CRLF- (or bare-LF-) terminated line, without the ending. *)
let read_line ~read ~limit ~what b =
  (* rescans from [pos] after each refill: fill may compact the buffer,
     so a saved scan offset would go stale; lines are limit-bounded, so
     the rescan cost is bounded too *)
  let rec go () =
    match find_nl b b.pos with
    | -1 ->
      if b.len - b.pos > limit then
        raise (Bad_request (what ^ " exceeds " ^ string_of_int limit ^ " bytes"));
      if fill ~read b then go ()
      else if b.len > b.pos then
        raise (Bad_request ("connection closed inside " ^ what))
      else None
    | nl ->
      if nl - b.pos > limit then
        raise (Bad_request (what ^ " exceeds " ^ string_of_int limit ^ " bytes"));
      let stop = if nl > b.pos && Bytes.get b.data (nl - 1) = '\r' then nl - 1 else nl in
      let line = Bytes.sub_string b.data b.pos (stop - b.pos) in
      b.pos <- nl + 1;
      Some line
  in
  go ()

let read_exact ~read b n =
  while b.len - b.pos < n do
    if not (fill ~read b) then
      raise (Bad_request "connection closed inside request body")
  done;
  let s = Bytes.sub_string b.data b.pos n in
  b.pos <- b.pos + n;
  s

let meth_of_string = function
  | "GET" -> GET
  | "HEAD" -> HEAD
  | "POST" -> POST
  | m ->
    String.iter
      (fun c ->
        match c with
        | 'A' .. 'Z' | '0' .. '9' | '-' -> ()
        | _ -> raise (Bad_request "malformed method token"))
      m;
    if m = "" then raise (Bad_request "empty method token");
    Other m

let split_request_line line =
  match String.split_on_char ' ' line with
  | [ m; target; version ] ->
    if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
      raise (Bad_request ("unsupported protocol version " ^ version));
    if target = "" then raise (Bad_request "empty request target");
    (meth_of_string m, target, version)
  | _ -> raise (Bad_request "malformed request line")

let path_of_target target =
  let path =
    match String.index_opt target '?' with
    | Some q -> String.sub target 0 q
    | None -> target
  in
  if path = "" || path.[0] <> '/' then
    raise (Bad_request "request target must be origin-form (start with /)");
  (* reject dot-segments outright: page URLs never contain them, and a
     traversal attempt must not reach the router *)
  List.iter
    (fun seg ->
      if seg = ".." || seg = "." then
        raise (Bad_request "dot-segments are not allowed"))
    (String.split_on_char '/' path);
  path

let parse_header line =
  match String.index_opt line ':' with
  | None -> raise (Bad_request "malformed header line (no colon)")
  | Some i ->
    let name = String.lowercase_ascii (String.sub line 0 i) in
    let value =
      String.trim (String.sub line (i + 1) (String.length line - i - 1))
    in
    if name = "" then raise (Bad_request "empty header name");
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' | '0' .. '9' | '-' | '_' -> ()
        | _ -> raise (Bad_request "malformed header name"))
      name;
    (name, value)

let read_request ~read b =
  (* skip blank lines before the request line (robustness, RFC 9112) *)
  let rec first_line () =
    match read_line ~read ~limit:max_request_line ~what:"request line" b with
    | None -> None
    | Some "" -> first_line ()
    | Some line -> Some line
  in
  match first_line () with
  | None -> None
  | Some line ->
    let meth, target, version = split_request_line line in
    let headers = ref [] in
    let count = ref 0 in
    let bytes = ref 0 in
    let rec loop () =
      match read_line ~read ~limit:max_headers_bytes ~what:"header line" b with
      | None -> raise (Bad_request "connection closed inside headers")
      | Some "" -> ()
      | Some line ->
        incr count;
        bytes := !bytes + String.length line;
        if !count > max_header_count then
          raise (Bad_request "too many header lines");
        if !bytes > max_headers_bytes then
          raise (Bad_request "header section too large");
        headers := parse_header line :: !headers;
        loop ()
    in
    loop ();
    let headers = List.rev !headers in
    let req =
      { meth; target; path = path_of_target target; version; headers; body = "" }
    in
    let body =
      match header req "content-length" with
      | None -> ""
      | Some l -> (
        match int_of_string_opt (String.trim l) with
        | Some n when n >= 0 ->
          if n > max_body_bytes then
            raise (Bad_request "request body too large");
          read_exact ~read b n
        | _ -> raise (Bad_request "malformed content-length"))
    in
    (match header req "transfer-encoding" with
     | Some _ -> raise (Bad_request "transfer-encoding is not supported")
     | None -> ());
    Some { req with body }

(* --- responses --- *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let reason_of_status = function
  | 200 -> "OK"
  | 304 -> "Not Modified"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Response"

let response ?reason ?(headers = []) ~status body =
  let reason = match reason with Some r -> r | None -> reason_of_status status in
  { status; reason; resp_headers = headers; resp_body = body }

let with_header r name value =
  { r with resp_headers = (name, value) :: r.resp_headers }

let serialize ?(head_only = false) r =
  let buf = Buffer.create (256 + String.length r.resp_body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status r.reason);
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" n v))
    r.resp_headers;
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n\r\n"
       (String.length r.resp_body));
  if not head_only then Buffer.add_string buf r.resp_body;
  Buffer.contents buf
