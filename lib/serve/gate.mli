(** Bounded admission for [strudeld].

    One gate guards the whole daemon: every accepted connection takes a
    slot before any work is done for it and releases the slot when it
    closes.  Once [max_inflight] slots are taken, further connections
    are {e shed} immediately (the acceptor answers
    [503 + Retry-After] and closes) — admitted work is never delayed
    behind an unbounded backlog, which is what keeps the tail latency
    of admitted requests bounded under overload.  After
    {!begin_drain}, everything new is {e refused} while in-flight work
    finishes; {!wait_idle} is the drain barrier. *)

type t

val create : max_inflight:int -> t
(** [max_inflight <= 0] means unbounded (shedding disabled). *)

type verdict =
  | Admitted  (** a slot was taken; the caller must {!release} it *)
  | Shed      (** over capacity: answer 503 + [Retry-After] and close *)
  | Refused   (** draining: answer 503 and close *)

val try_admit : t -> verdict
val release : t -> unit
(** Release one admitted slot (wakes {!wait_idle} when the last one
    goes). *)

val begin_drain : t -> unit
(** Refuse all new admissions from now on.  Idempotent. *)

val draining : t -> bool
val inflight : t -> int

val wait_idle : ?give_up:(unit -> bool) -> t -> bool
(** Block until no admitted slot is outstanding ([true]) or until
    [give_up ()] answers [true] at a wake-up ([false] — the drain
    deadline).  Event-driven (a condition variable signalled by
    {!release} and {!wake}), so it composes with the virtual clock: no
    polling, no sleeps. *)

val wake : t -> unit
(** Wake {!wait_idle} waiters without releasing anything — the drain
    watchdog uses this to get its deadline re-checked. *)

type stats = {
  g_admitted : int;
  g_shed : int;
  g_refused : int;
}

val stats : t -> stats
