(** A small, strict HTTP/1.1 codec for [strudeld].

    Requests are read incrementally from a caller-supplied [read]
    function through a growable buffer, so the daemon's slow-client
    timeouts live in the transport, not here.  The parser enforces hard
    limits (request-line length, header count and size, body size) and
    raises {!Bad_request} — never an unbounded allocation — on
    malformed or oversized input.  Responses serialize with an exact
    [Content-Length]; bodies are never chunked. *)

type meth = GET | HEAD | POST | Other of string

val meth_name : meth -> string

type request = {
  meth : meth;
  target : string;  (** the raw request target, e.g. ["/p.html?x=1"] *)
  path : string;    (** target up to [?], normalized to a leading [/] *)
  version : string; (** ["HTTP/1.1"] or ["HTTP/1.0"] *)
  headers : (string * string) list;
      (** field names lowercased, in arrival order *)
  body : string;
}

exception Bad_request of string
(** Malformed or limit-violating input; the daemon answers 400. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first occurrence). *)

val keep_alive : request -> bool
(** Whether the connection persists after this exchange: HTTP/1.1
    without [Connection: close], or HTTP/1.0 with
    [Connection: keep-alive]. *)

(** {1 Reading} *)

type buf
(** Connection read buffer; holds bytes of a pipelined next request
    between {!read_request} calls. *)

val create_buf : unit -> buf

val read_request : read:(bytes -> int -> int -> int) -> buf -> request option
(** Read one request.  [read b off len] must return the number of bytes
    read, [0] at end of stream, and may raise (e.g. the transport's
    timeout exception) — the exception passes through.  Returns [None]
    on a clean end of stream before any request byte.  Raises
    {!Bad_request} on malformed input or when a limit (8 KiB request
    line, 100 headers, 64 KiB of headers, 1 MiB body) is exceeded. *)

(** {1 Responses} *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val reason_of_status : int -> string

val response :
  ?reason:string -> ?headers:(string * string) list -> status:int ->
  string -> response
(** Build a response; [reason] defaults from the status code. *)

val with_header : response -> string -> string -> response
(** Add (prepend) one header. *)

val serialize : ?head_only:bool -> response -> string
(** The wire bytes: status line, headers, [Content-Length] (always the
    body length, also for [head_only] — a HEAD answer describes the GET
    entity), blank line, and the body unless [head_only]. *)
