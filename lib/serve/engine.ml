(** The serving engine (see the interface). *)

open Sgraph
module CT = Strudel.Materialize.Click_time
module Generator = Template.Generator
module Warehouse = Mediator.Warehouse

type source =
  | Static of Graph.t
  | Federated of Warehouse.t

(* One installed epoch: a fully expanded click-time session over an
   immutable graph plus its route table.  After [build_epoch] returns,
   nothing here mutates (the session's page cache is disabled and every
   reachable node is already expanded), so worker domains read it
   without locks; ETag memoization is the one mutable corner and takes
   its own mutex. *)
type epoch_state = {
  ep_epoch : int;
  ep_ct : CT.t;
  ep_routes : (string, Oid.t) Hashtbl.t;  (* page url -> page object *)
  ep_root : string;                       (* url "/" resolves to *)
  ep_etag_m : Mutex.t;
  ep_etags : (string, string) Hashtbl.t;  (* page url -> strong ETag *)
  (* sanitizer identities: field 0 = [ep_etags], the one mutable corner *)
  ds_ep_obj : int;
  ds_ep_m : int;
}

type t = {
  def : Strudel.Site.definition;
  warehouse : Warehouse.t option;
  fault : Fault.ctx;
  injector : Fault.Inject.t option;
  cache : Strudel.Render_cache.t option;
  cache_m : Mutex.t;
  compiled : Generator.compiled array;  (* one slot per serving worker *)
  brk : Breaker.t;
  swap_m : Mutex.t;  (* serializes refreshes, not requests *)
  current : epoch_state Atomic.t;
  draining : bool Atomic.t;
      (* atomic: set by the daemon's shutdown path while serving
         workers read it in [readyz] *)
  c_requests : int Atomic.t;
  c_page_ok : int Atomic.t;
  c_not_modified : int Atomic.t;
  c_not_found : int Atomic.t;
  c_unavailable : int Atomic.t;
  c_rejected : int Atomic.t;
  (* sanitizer identities for the release/acquire publication points
     and the two engine-level mutexes *)
  ds_current : int;
  ds_draining : int;
  ds_cache_m : int;
  ds_swap_m : int;
}

(* --- Epoch construction --- *)

(* Expand every node reachable from the roots so the partial graph and
   the session's expanded set are static afterwards: request handling
   on worker domains then only ever reads the session. *)
let crawl ct =
  let visited = ref Oid.Set.empty in
  let queue = Queue.create () in
  List.iter (fun o -> Queue.add o queue) (CT.roots ct);
  while not (Queue.is_empty queue) do
    let o = Queue.pop queue in
    if not (Oid.Set.mem o !visited) then begin
      visited := Oid.Set.add o !visited;
      CT.expand ct o;
      List.iter
        (fun (_, tgt) ->
          match tgt with
          | Graph.N n when not (Oid.Set.mem n !visited) -> Queue.add n queue
          | Graph.N _ | Graph.V _ -> ())
        (Graph.out_edges ct.CT.partial o)
    end
  done

let page_url o = Generator.slug (Oid.name o) ^ ".html"

let build_epoch def ~epoch data =
  let ct = CT.start ~cache:false ~data def in
  crawl ct;
  let routes = Hashtbl.create 64 in
  List.iter
    (fun o ->
      let url = page_url o in
      if not (Hashtbl.mem routes url) then Hashtbl.add routes url o)
    (Graph.nodes ct.CT.partial);
  let root = match CT.roots ct with o :: _ -> page_url o | [] -> "" in
  { ep_epoch = epoch; ep_ct = ct; ep_routes = routes; ep_root = root;
    ep_etag_m = Mutex.create (); ep_etags = Hashtbl.create 64;
    ds_ep_obj = Dsan.alloc ~name:"Engine.epoch";
    ds_ep_m = Dsan.lock_id ~name:"Engine.ep_etag_m" }

let create ?(clock = Fault.Clock.real) ?(cache = true) ?(workers = 8)
    ?breaker_threshold ?breaker_retry ?fault ~source def =
  let fault = match fault with Some c -> c | None -> Fault.ctx () in
  let warehouse, epoch, data =
    match source with
    | Static g -> (None, 1, g)
    | Federated w ->
      let view = Warehouse.pin w in
      (Some w, Warehouse.view_epoch view, Warehouse.view_graph view)
  in
  let cache =
    if not cache then None
    else begin
      let c = Strudel.Render_cache.create () in
      Strudel.Render_cache.set_templates c def.Strudel.Site.templates;
      Some c
    end
  in
  let t =
  {
    def;
    warehouse;
    fault;
    injector = Fault.inject (Some fault);
    cache;
    cache_m = Mutex.create ();
    compiled =
      Array.init (max 1 workers) (fun _ -> Generator.new_compiled ());
    brk = Breaker.create ?threshold:breaker_threshold ?retry:breaker_retry
        ~clock ();
    swap_m = Mutex.create ();
    current = Atomic.make (build_epoch def ~epoch data);
    draining = Atomic.make false;
    c_requests = Atomic.make 0;
    c_page_ok = Atomic.make 0;
    c_not_modified = Atomic.make 0;
    c_not_found = Atomic.make 0;
    c_unavailable = Atomic.make 0;
    c_rejected = Atomic.make 0;
    ds_current = Dsan.atomic_id ~name:"Engine.current";
    ds_draining = Dsan.atomic_id ~name:"Engine.draining";
    ds_cache_m = Dsan.lock_id ~name:"Engine.cache_m";
    ds_swap_m = Dsan.lock_id ~name:"Engine.swap_m";
  }
  in
  (* the initial epoch's graph writes (the crawl) happen before any
     worker exists, but record the publication anyway so consumers are
     ordered after them regardless of who spawned whom *)
  Dsan.publish ~site:__POS__ t.ds_current;
  t

(* --- Introspection --- *)

let epoch t =
  Dsan.consume ~site:__POS__ t.ds_current;
  (Atomic.get t.current).ep_epoch

let page_count t =
  Dsan.consume ~site:__POS__ t.ds_current;
  Hashtbl.length (Atomic.get t.current).ep_routes

let set_draining t b =
  Dsan.publish ~site:__POS__ t.ds_draining;
  Atomic.set t.draining b
let breaker t = t.brk

(* Under [cache_m]: [/healthz] runs on serving workers while other
   workers mutate the statistics inside [find_valid] — an unlocked read
   here is a data race (found by the sanitizer, kept fixed by it). *)
let cache_stats t =
  Option.map
    (fun c ->
      Mutex.lock t.cache_m;
      Dsan.acquire ~site:__POS__ t.ds_cache_m;
      let s = Strudel.Render_cache.stats c in
      Dsan.release ~site:__POS__ t.ds_cache_m;
      Mutex.unlock t.cache_m;
      s)
    t.cache

let quarantined t =
  match t.warehouse with
  | None -> []
  | Some w ->
    List.filter_map
      (fun ss ->
        match ss.Warehouse.ss_outcome with
        | Warehouse.Quarantined reason -> Some (ss.Warehouse.ss_source, reason)
        | Warehouse.Changed | Warehouse.Unchanged -> None)
      (Warehouse.last_refresh w)

let degraded t =
  Breaker.open_keys t.brk <> []
  || quarantined t <> []
  || Atomic.get t.c_unavailable > 0
  || Fault.fault_count t.fault > 0

let all_faults t =
  let wh = match t.warehouse with None -> [] | Some w -> Warehouse.faults w in
  wh @ Fault.reports t.fault

let manifest_json t =
  Fault.Manifest.to_json
    (Fault.Manifest.make ~site:t.def.Strudel.Site.name (all_faults t))

type counters = {
  sc_requests : int;
  sc_page_ok : int;
  sc_not_modified : int;
  sc_not_found : int;
  sc_unavailable : int;
  sc_rejected : int;
}

let counters t =
  {
    sc_requests = Atomic.get t.c_requests;
    sc_page_ok = Atomic.get t.c_page_ok;
    sc_not_modified = Atomic.get t.c_not_modified;
    sc_not_found = Atomic.get t.c_not_found;
    sc_unavailable = Atomic.get t.c_unavailable;
    sc_rejected = Atomic.get t.c_rejected;
  }

(* --- Small JSON emission for the operational endpoints --- *)

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let json_list items = "[" ^ String.concat "," items ^ "]"

(* --- Responses --- *)

let html_headers = [ ("Content-Type", "text/html; charset=utf-8") ]
let json_headers = [ ("Content-Type", "application/json") ]

let epoch_header ep = ("X-Strudel-Epoch", string_of_int ep.ep_epoch)

let retry_after_of_ms ms =
  string_of_int (max 1 (int_of_float (ceil (ms /. 1000.))))

let not_found t ep url =
  Atomic.incr t.c_not_found;
  Http.response ~headers:(epoch_header ep :: html_headers) ~status:404
    (Printf.sprintf
       "<html><head><title>404</title></head><body><h1>404 Not \
        Found</h1><p>No page <code>%s</code> in epoch %d.</p></body></html>\n"
       url ep.ep_epoch)

(* A degraded answer: the page (or its source) is broken, the rest of
   the site keeps serving.  The body is the fault manifest so the
   operator sees *why* from the response alone. *)
let unavailable t ep ~retry_after_s ~kind =
  Atomic.incr t.c_unavailable;
  Http.response
    ~headers:
      (epoch_header ep
       :: ("Retry-After", retry_after_s)
       :: ("X-Strudel-Degraded", kind)
       :: json_headers)
    ~status:503 (manifest_json t)

let healthz t ep =
  let open_keys = Breaker.open_keys t.brk in
  let quarantined = quarantined t in
  let degraded = degraded t in
  let cache =
    match cache_stats t with
    | None -> "null"
    | Some (h, m, i) ->
      Printf.sprintf "{\"hits\":%d,\"misses\":%d,\"invalidations\":%d}" h m i
  in
  let body =
    Printf.sprintf
      "{\"status\":%s,\"site\":%s,\"epoch\":%d,\"pages\":%d,\"requests\":%d,\
       \"faults\":%d,\"open_breakers\":%s,\"quarantined\":%s,\"cache\":%s}\n"
      (json_str (if degraded then "degraded" else "ok"))
      (json_str t.def.Strudel.Site.name)
      ep.ep_epoch
      (Hashtbl.length ep.ep_routes)
      (Atomic.get t.c_requests)
      (List.length (all_faults t))
      (json_list (List.map json_str open_keys))
      (json_list
         (List.map (fun (s, _) -> json_str s) quarantined))
      cache
  in
  Http.response ~headers:(epoch_header ep :: json_headers) ~status:200 body

let readyz t ep =
  Dsan.consume ~site:__POS__ t.ds_draining;
  if Atomic.get t.draining then
    Http.response ~headers:(epoch_header ep :: json_headers) ~status:503
      "{\"ready\":false,\"reason\":\"draining\"}\n"
  else
    Http.response ~headers:(epoch_header ep :: json_headers) ~status:200
      (Printf.sprintf "{\"ready\":true,\"epoch\":%d}\n" ep.ep_epoch)

(* --- Page serving --- *)

let etag_of ep url html =
  Mutex.lock ep.ep_etag_m;
  Dsan.acquire ~site:__POS__ ep.ds_ep_m;
  Dsan.write ~site:__POS__ ep.ds_ep_obj 0;
  let tag =
    match Hashtbl.find_opt ep.ep_etags url with
    | Some tag -> tag
    | None ->
      let tag = "\"" ^ Digest.to_hex (Digest.string html) ^ "\"" in
      Hashtbl.add ep.ep_etags url tag;
      tag
  in
  Dsan.release ~site:__POS__ ep.ds_ep_m;
  Mutex.unlock ep.ep_etag_m;
  tag

let etag_matches req tag =
  match Http.header req "if-none-match" with
  | None -> false
  | Some v ->
    String.split_on_char ',' v
    |> List.exists (fun c -> let c = String.trim c in c = tag || c = "*")

let cache_find t ep o =
  match t.cache with
  | None -> None
  | Some c ->
    Mutex.lock t.cache_m;
    Dsan.acquire ~site:__POS__ t.ds_cache_m;
    let e = Strudel.Render_cache.find_valid c ep.ep_ct.CT.partial o in
    Dsan.release ~site:__POS__ t.ds_cache_m;
    Mutex.unlock t.cache_m;
    e

let cache_store t rendered =
  match t.cache with
  | None -> ()
  | Some c ->
    Mutex.lock t.cache_m;
    Dsan.acquire ~site:__POS__ t.ds_cache_m;
    Strudel.Render_cache.store c rendered;
    Dsan.release ~site:__POS__ t.ds_cache_m;
    Mutex.unlock t.cache_m

let render t ep ~worker o =
  let compiled = t.compiled.(worker mod Array.length t.compiled) in
  match Fault.Inject.fire t.injector (Fault.Inject.Render_page (Oid.name o)) with
  | exception Fault.Inject.Injected msg ->
    Error (CT.Render_failed ("injected fault: " ^ msg))
  | () ->
    CT.render_page ~compiled ~trace_reads:(t.cache <> None) ep.ep_ct o

let page_response t ep req url html =
  let tag = etag_of ep url html in
  if etag_matches req tag then begin
    Atomic.incr t.c_not_modified;
    Http.response
      ~headers:(epoch_header ep :: ("ETag", tag) :: html_headers)
      ~status:304 ""
  end
  else begin
    Atomic.incr t.c_page_ok;
    Http.response
      ~headers:
        (epoch_header ep :: ("ETag", tag)
         :: ("Cache-Control", "no-cache") :: html_headers)
      ~status:200 html
  end

let serve_page t ep ~worker req url =
  match Hashtbl.find_opt ep.ep_routes url with
  | None -> not_found t ep url
  | Some o -> begin
    let key = "page:" ^ url in
    match Breaker.check t.brk key with
    | Breaker.Reject remaining_ms ->
      unavailable t ep ~retry_after_s:(retry_after_of_ms remaining_ms)
        ~kind:"page-breaker-open"
    | Breaker.Proceed -> begin
      match cache_find t ep o with
      | Some e ->
        Breaker.success t.brk key;
        page_response t ep req url e.Strudel.Render_cache.e_html
      | None -> begin
        match render t ep ~worker o with
        | Ok r ->
          Breaker.success t.brk key;
          cache_store t r;
          page_response t ep req url r.Generator.r_page.Generator.html
        | Error (CT.Unknown_object _) -> not_found t ep url
        | Error (CT.Render_failed cause) ->
          Fault.record t.fault
            (Fault.report ~stage:Fault.Render
               ~source:t.def.Strudel.Site.name ~location:url ~cause ());
          Breaker.failure t.brk key;
          unavailable t ep ~retry_after_s:"1" ~kind:"render-failed"
      end
    end
  end

let handle ?(worker = 0) t req =
  Atomic.incr t.c_requests;
  Dsan.consume ~site:__POS__ t.ds_current;
  let ep = Atomic.get t.current in
  match req.Http.meth with
  | Http.POST | Http.Other _ ->
    Atomic.incr t.c_rejected;
    Http.response
      ~headers:[ ("Allow", "GET, HEAD"); epoch_header ep ]
      ~status:405 "method not allowed\n"
  | Http.GET | Http.HEAD -> begin
    match req.Http.path with
    | "/healthz" -> healthz t ep
    | "/readyz" -> readyz t ep
    | "/faultz" ->
      Http.response ~headers:(epoch_header ep :: json_headers) ~status:200
        (manifest_json t)
    | "/" | "" ->
      if ep.ep_root = "" then not_found t ep "/"
      else serve_page t ep ~worker req ep.ep_root
    | path ->
      serve_page t ep ~worker req (String.sub path 1 (String.length path - 1))
  end

(* --- Epoch pickup --- *)

let feed_source_breakers t w =
  List.iter
    (fun ss ->
      let key = "source:" ^ ss.Warehouse.ss_source in
      match ss.Warehouse.ss_outcome with
      | Warehouse.Quarantined _ -> Breaker.failure t.brk key
      | Warehouse.Changed | Warehouse.Unchanged -> Breaker.success t.brk key)
    (Warehouse.last_refresh w)

let refresh ?jobs t =
  match t.warehouse with
  | None -> false
  | Some w ->
    Mutex.lock t.swap_m;
    Dsan.acquire ~site:__POS__ t.ds_swap_m;
    Fun.protect
      ~finally:(fun () ->
        Dsan.release ~site:__POS__ t.ds_swap_m;
        Mutex.unlock t.swap_m)
      (fun () ->
        match Warehouse.refresh ?jobs w with
        | exception e ->
          Fault.record t.fault
            (Fault.report ~stage:Fault.Integrate
               ~source:t.def.Strudel.Site.name ~location:"refresh"
               ~cause:(Printexc.to_string e) ());
          false
        | changed ->
          feed_source_breakers t w;
          if changed then begin
            (* Build the whole next epoch off to the side, then one
               atomic swap: in-flight requests keep their pinned epoch,
               later ones get the new one — never a mix. *)
            let view = Warehouse.pin w in
            let ep =
              build_epoch t.def ~epoch:(Warehouse.view_epoch view)
                (Warehouse.view_graph view)
            in
            Dsan.publish ~site:__POS__ t.ds_current;
            Atomic.set t.current ep
          end;
          changed)
