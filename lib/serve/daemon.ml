(** The daemon (see the interface). *)

exception Timeout
exception Client_closed

type conn = {
  c_read : bytes -> int -> int -> int;
  c_write : string -> unit;
  c_close : unit -> unit;
  c_peer : string;
}

type listener = {
  l_accept : unit -> conn option;
  l_close : unit -> unit;
}

(* --- Socket transport --- *)

let is_gone = function
  | Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
  | Unix.ESHUTDOWN ->
    true
  | _ -> false

(* Wait for readiness with a wall-clock deadline, riding out EINTR
   (signals land in select all the time under drain). *)
let wait_ready ~for_read fd timeout_ms =
  let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0. then raise Timeout;
    let r, w = if for_read then ([ fd ], []) else ([], [ fd ]) in
    match Unix.select r w [] left with
    | [], [], _ -> raise Timeout
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (e, _, _) when is_gone e -> raise Client_closed
  in
  go ()

let conn_of_fd ?(read_timeout_ms = 10_000.) ?(write_timeout_ms = 10_000.) fd =
  let closed = Atomic.make false in
  let rec read b off len =
    wait_ready ~for_read:true fd read_timeout_ms;
    match Unix.read fd b off len with
    | n -> n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read b off len
    | exception Unix.Unix_error (e, _, _) when is_gone e -> raise Client_closed
  in
  let write s =
    let n = String.length s in
    let pos = ref 0 in
    while !pos < n do
      wait_ready ~for_read:false fd write_timeout_ms;
      match Unix.write_substring fd s !pos (n - !pos) with
      | w -> pos := !pos + w
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (e, _, _) when is_gone e ->
        raise Client_closed
    done
  in
  let close () =
    if not (Atomic.exchange closed true) then begin
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  let peer =
    match Unix.getpeername fd with
    | Unix.ADDR_INET (a, p) ->
      Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
    | Unix.ADDR_UNIX p -> p
    | exception Unix.Unix_error _ -> "?"
  in
  { c_read = read; c_write = write; c_close = close; c_peer = peer }

let tcp_listener ?(backlog = 64) ?(tick_ms = 250.) ?read_timeout_ms
    ?write_timeout_ms ~host ~port () =
  let addr =
    if host = "" || host = "*" then Unix.inet_addr_any
    else Unix.inet_addr_of_string host
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd backlog;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let closed = Atomic.make false in
  let accept () =
    if Atomic.get closed then None
    else
      match Unix.select [ fd ] [] [] (tick_ms /. 1000.) with
      | [], _, _ -> None
      | _ -> begin
        match Unix.accept ~cloexec:true fd with
        | cfd, _ -> Some (conn_of_fd ?read_timeout_ms ?write_timeout_ms cfd)
        | exception
            Unix.Unix_error
              ( ( Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                | Unix.ECONNABORTED ),
                _,
                _ ) ->
          None
      end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> None
  in
  let close () =
    if not (Atomic.exchange closed true) then
      try Unix.close fd with Unix.Unix_error _ -> ()
  in
  ({ l_accept = accept; l_close = close }, bound)

(* --- Configuration --- *)

type config = {
  workers : int;
  max_inflight : int;
  deadline_ms : float;
  read_timeout_ms : float;
  write_timeout_ms : float;
  drain_deadline_ms : float;
  retry_after_s : int;
  clock : Fault.Clock.t;
}

let default_config =
  {
    workers = 4;
    max_inflight = 64;
    deadline_ms = 5_000.;
    read_timeout_ms = 10_000.;
    write_timeout_ms = 10_000.;
    drain_deadline_ms = 10_000.;
    retry_after_s = 1;
    clock = Fault.Clock.real;
  }

(* --- The daemon --- *)

type t = {
  cfg : config;
  handler : worker:int -> Http.request -> Http.response;
  on_drain : unit -> unit;
  degraded : unit -> bool;
  gate : Gate.t;
  stop_requested : bool Atomic.t;
  (* handoff queue: acceptor -> workers; every queued conn holds an
     admitted gate slot until its worker releases it *)
  q_m : Mutex.t;
  q_c : Condition.t;
  q : conn Queue.t;
  mutable q_closed : bool;
  (* connections currently owned by a worker, for the force-close path *)
  act_m : Mutex.t;
  active : (int, conn) Hashtbl.t;
  next_id : int Atomic.t;
  mutable code : int;
  s_served : int Atomic.t;
  s_client_aborts : int Atomic.t;
  s_timeouts : int Atomic.t;
  s_deadlines : int Atomic.t;
  s_aborted : int Atomic.t;
  (* sanitizer identities: field 0 = [q]/[q_closed] (under [q_m]),
     field 1 = [active] (under [act_m]), field 2 = [code] (main domain
     only, before workers start and after they join).  [stop_requested]
     is deliberately not instrumented: it is set from signal handlers,
     where taking the sanitizer's mutex could self-deadlock, and as a
     lone atomic flag it orders nothing by itself — the worker handoff
     happens through the instrumented queue. *)
  ds_obj : int;
  ds_q_m : int;
  ds_act_m : int;
}

let create ?(config = default_config) ?(on_drain = fun () -> ())
    ?(degraded = fun () -> false) ~handler () =
  {
    cfg = { config with workers = max 1 config.workers };
    handler;
    on_drain;
    degraded;
    gate = Gate.create ~max_inflight:config.max_inflight;
    stop_requested = Atomic.make false;
    q_m = Mutex.create ();
    q_c = Condition.create ();
    q = Queue.create ();
    q_closed = false;
    act_m = Mutex.create ();
    active = Hashtbl.create 64;
    next_id = Atomic.make 0;
    code = 0;
    s_served = Atomic.make 0;
    s_client_aborts = Atomic.make 0;
    s_timeouts = Atomic.make 0;
    s_deadlines = Atomic.make 0;
    s_aborted = Atomic.make 0;
    ds_obj = Dsan.alloc ~name:"Daemon";
    ds_q_m = Dsan.lock_id ~name:"Daemon.q_m";
    ds_act_m = Dsan.lock_id ~name:"Daemon.act_m";
  }

let stop t = Atomic.set t.stop_requested true
let stopping t = Atomic.get t.stop_requested

let exit_code t =
  Dsan.read ~site:__POS__ t.ds_obj 2;
  t.code

let install_signal_handlers t =
  (* A client that vanishes mid-write must surface as EPIPE (a counted
     outcome), never as a process-killing SIGPIPE. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigterm h;
  Sys.set_signal Sys.sigint h

type stats = {
  d_served : int;
  d_shed : int;
  d_refused : int;
  d_client_aborts : int;
  d_timeouts : int;
  d_deadlines : int;
  d_aborted_inflight : int;
}

let stats t =
  let g = Gate.stats t.gate in
  {
    d_served = Atomic.get t.s_served;
    d_shed = g.Gate.g_shed;
    d_refused = g.Gate.g_refused;
    d_client_aborts = Atomic.get t.s_client_aborts;
    d_timeouts = Atomic.get t.s_timeouts;
    d_deadlines = Atomic.get t.s_deadlines;
    d_aborted_inflight = Atomic.get t.s_aborted;
  }

(* --- Queue and registry plumbing --- *)

let enqueue t conn =
  Mutex.lock t.q_m;
  Dsan.acquire ~site:__POS__ t.ds_q_m;
  Dsan.write ~site:__POS__ t.ds_obj 0;
  Queue.add conn t.q;
  Condition.signal t.q_c;
  Dsan.release ~site:__POS__ t.ds_q_m;
  Mutex.unlock t.q_m

let dequeue t =
  Mutex.lock t.q_m;
  Dsan.acquire ~site:__POS__ t.ds_q_m;
  while Queue.is_empty t.q && not t.q_closed do
    (* Condition.wait releases [q_m] while blocked and reacquires it *)
    Dsan.release ~site:__POS__ t.ds_q_m;
    Condition.wait t.q_c t.q_m;
    Dsan.acquire ~site:__POS__ t.ds_q_m
  done;
  Dsan.write ~site:__POS__ t.ds_obj 0;
  let c = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
  Dsan.release ~site:__POS__ t.ds_q_m;
  Mutex.unlock t.q_m;
  c

let close_queue t =
  Mutex.lock t.q_m;
  Dsan.acquire ~site:__POS__ t.ds_q_m;
  Dsan.write ~site:__POS__ t.ds_obj 0;
  t.q_closed <- true;
  Condition.broadcast t.q_c;
  Dsan.release ~site:__POS__ t.ds_q_m;
  Mutex.unlock t.q_m

let register t conn =
  let id = Atomic.fetch_and_add t.next_id 1 in
  Mutex.lock t.act_m;
  Dsan.acquire ~site:__POS__ t.ds_act_m;
  Dsan.write ~site:__POS__ t.ds_obj 1;
  Hashtbl.add t.active id conn;
  Dsan.release ~site:__POS__ t.ds_act_m;
  Mutex.unlock t.act_m;
  id

let unregister t id =
  Mutex.lock t.act_m;
  Dsan.acquire ~site:__POS__ t.ds_act_m;
  Dsan.write ~site:__POS__ t.ds_obj 1;
  Hashtbl.remove t.active id;
  Dsan.release ~site:__POS__ t.ds_act_m;
  Mutex.unlock t.act_m

(* --- Request workers --- *)

let best_effort_write conn s =
  try conn.c_write s with Timeout | Client_closed -> ()

let closing_response ?(headers = []) ~status body =
  Http.response ~headers:(("Connection", "close") :: headers) ~status body

let deadline_response t =
  Atomic.incr t.s_deadlines;
  Http.response
    ~headers:
      [ ("Retry-After", string_of_int t.cfg.retry_after_s);
        ("Content-Type", "application/json") ]
    ~status:503 "{\"error\":\"deadline exceeded\"}\n"

(* One connection, possibly many requests (keep-alive).  Every exit
   path is counted; nothing a client does (or stops doing) escapes as
   an exception past this function. *)
let handle_conn t ~worker conn =
  let clk = t.cfg.clock in
  let buf = Http.create_buf () in
  let continue = ref true in
  while !continue do
    match Http.read_request ~read:conn.c_read buf with
    | None -> continue := false
    | exception Http.Bad_request msg ->
      best_effort_write conn
        (Http.serialize (closing_response ~status:400 (msg ^ "\n")));
      continue := false
    | exception Timeout ->
      Atomic.incr t.s_timeouts;
      best_effort_write conn
        (Http.serialize (closing_response ~status:408 "request timeout\n"));
      continue := false
    | exception Client_closed ->
      Atomic.incr t.s_client_aborts;
      continue := false
    | Some req ->
      let t0 = clk.Fault.Clock.now_ms () in
      let resp =
        match t.handler ~worker req with
        | resp -> resp
        | exception e ->
          Http.response ~status:500
            ("internal error: " ^ Printexc.to_string e ^ "\n")
      in
      let resp =
        if
          t.cfg.deadline_ms > 0.
          && clk.Fault.Clock.now_ms () -. t0 > t.cfg.deadline_ms
        then deadline_response t
        else resp
      in
      let ka = Http.keep_alive req && not (Gate.draining t.gate) in
      let resp = if ka then resp else Http.with_header resp "Connection" "close" in
      let head_only = req.Http.meth = Http.HEAD in
      (match conn.c_write (Http.serialize ~head_only resp) with
      | () ->
        Atomic.incr t.s_served;
        if not ka then continue := false
      | exception Timeout ->
        Atomic.incr t.s_timeouts;
        continue := false
      | exception Client_closed ->
        Atomic.incr t.s_client_aborts;
        continue := false)
  done

let worker_loop t ~worker =
  let rec go () =
    match dequeue t with
    | None -> ()
    | Some conn ->
      let id = register t conn in
      (try handle_conn t ~worker conn
       with _ -> Atomic.incr t.s_client_aborts);
      unregister t id;
      (try conn.c_close () with _ -> ());
      Gate.release t.gate;
      go ()
  in
  go ()

(* --- Accept loop and drain --- *)

let shed_response t =
  Http.serialize
    (closing_response
       ~headers:[ ("Retry-After", string_of_int t.cfg.retry_after_s) ]
       ~status:503 "{\"error\":\"overloaded\"}\n")

let refuse_response =
  lazy
    (Http.serialize
       (closing_response ~status:503 "{\"error\":\"draining\"}\n"))

let dispatch t conn =
  match Gate.try_admit t.gate with
  | Gate.Admitted -> enqueue t conn
  | Gate.Shed ->
    best_effort_write conn (shed_response t);
    (try conn.c_close () with _ -> ())
  | Gate.Refused ->
    best_effort_write conn (Lazy.force refuse_response);
    (try conn.c_close () with _ -> ())

let accept_loop t listener =
  while not (Atomic.get t.stop_requested) do
    match listener.l_accept () with
    | None -> ()
    | Some conn -> dispatch t conn
    | exception _ -> stop t
  done

(* Drain-deadline give-up: close every connection still owned by a
   worker or parked in the queue, so blocked reads and writes fail
   fast and the workers come home. *)
let force_close t =
  Mutex.lock t.q_m;
  Dsan.acquire ~site:__POS__ t.ds_q_m;
  Dsan.write ~site:__POS__ t.ds_obj 0;
  let queued = Queue.length t.q in
  while not (Queue.is_empty t.q) do
    let c = Queue.pop t.q in
    (try c.c_close () with _ -> ());
    Gate.release t.gate
  done;
  Dsan.release ~site:__POS__ t.ds_q_m;
  Mutex.unlock t.q_m;
  Mutex.lock t.act_m;
  Dsan.acquire ~site:__POS__ t.ds_act_m;
  Dsan.read ~site:__POS__ t.ds_obj 1;
  let held = Hashtbl.length t.active in
  Hashtbl.iter (fun _ c -> try c.c_close () with _ -> ()) t.active;
  Dsan.release ~site:__POS__ t.ds_act_m;
  Mutex.unlock t.act_m;
  Atomic.set t.s_aborted (queued + held)

let drain t =
  Gate.begin_drain t.gate;
  (try t.on_drain () with _ -> ());
  let clk = t.cfg.clock in
  let idle =
    if t.cfg.drain_deadline_ms < 0. then Gate.wait_idle t.gate
    else begin
      let deadline = clk.Fault.Clock.now_ms () +. t.cfg.drain_deadline_ms in
      (* wait_idle only re-checks give_up at wake-ups; on the real
         clock a hung worker would never produce one, so a watchdog
         domain ticks the gate until the wait settles.  On a virtual
         clock waits are purely event-driven and no watchdog runs. *)
      let ticking = Atomic.make true in
      let watchdog =
        if clk == Fault.Clock.real && t.cfg.drain_deadline_ms > 0. then begin
          let tok = Dsan.fork () in
          Some
            ( Domain.spawn (fun () ->
                  Dsan.born tok;
                  Fun.protect
                    ~finally:(fun () -> Dsan.dying tok)
                    (fun () ->
                      while Atomic.get ticking do
                        Unix.sleepf 0.05;
                        Gate.wake t.gate
                      done)),
              tok )
        end
        else None
      in
      let idle =
        Gate.wait_idle
          ~give_up:(fun () -> clk.Fault.Clock.now_ms () >= deadline)
          t.gate
      in
      Atomic.set ticking false;
      Option.iter
        (fun (d, tok) ->
          Domain.join d;
          Dsan.joined tok)
        watchdog;
      idle
    end
  in
  if not idle then force_close t

let serve t listener =
  let jobs = t.cfg.workers + 1 in
  (try
     Strudel.Pool.run Strudel.Pool.shared ~jobs (fun w ->
         if w > 0 then worker_loop t ~worker:(w - 1)
         else
           (* closing the queue is the workers' exit signal; protect it
              so a failing accept loop can never strand them — but only
              after drain, so queued conns get served (or force-closed)
              first *)
           Fun.protect
             ~finally:(fun () -> close_queue t)
             (fun () ->
               accept_loop t listener;
               (try listener.l_close () with _ -> ());
               drain t))
   with e ->
     Dsan.write ~site:__POS__ t.ds_obj 2;
     t.code <- 1;
     raise e);
  Dsan.write ~site:__POS__ t.ds_obj 2;
  t.code <-
    (if Atomic.get t.s_aborted > 0 then 4
     else if t.degraded () then 3
     else 0)
