(** [strudel watch]: differential site maintenance, ingest to publish.

    One watch session owns a {!Struql.Dexec} engine (the maintained
    site graph plus every recorded construction event), a cross-cycle
    render cache, and the previous publish.  Each {!cycle} turns
    whatever changed at the sources into exactly the re-derivation and
    re-rendering that change demands — everything else is reused, and
    the published bytes stay identical to a cold build of the same
    data. *)

open Sgraph

type source =
  | Direct of Graph.t
      (** watch an in-process data graph; mutations must go through the
          session's {!recorder} *)
  | Mediated of Mediator.Warehouse.t
      (** watch a warehousing mediator; {!cycle} polls
          {!Mediator.Warehouse.refresh_delta} *)

type mode = M_direct of Delta.Rec.r | M_mediated of Mediator.Warehouse.t

type t = {
  mode : mode;
  engine : Struql.Dexec.t;
  cache : Strudel.Render_cache.t;
  jobs : int;
  on_error : Fault.on_error;
  fault : Fault.ctx option;
  sink : Strudel.Render_pool.sink option;
  mutable built : Strudel.Site.built;
  mutable cycles : int;
}

type cycle_report = {
  cy_cycle : int;
  cy_changed : bool;  (** false: sources were clean, nothing ran *)
  cy_delta_card : int;
  cy_drivers : int;
  cy_rows : int;
  cy_touched : int;
  cy_removed : int;
  cy_rerendered : int;
  cy_reused : int;
  cy_fallbacks : (string * string) list;
  cy_quarantined : (string * string) list;
  cy_wall_ms : float;
}

let clean_report ~cycle ~quarantined ~wall =
  {
    cy_cycle = cycle;
    cy_changed = false;
    cy_delta_card = 0;
    cy_drivers = 0;
    cy_rows = 0;
    cy_touched = 0;
    cy_removed = 0;
    cy_rerendered = 0;
    cy_reused = 0;
    cy_fallbacks = [];
    cy_quarantined = quarantined;
    cy_wall_ms = wall;
  }

let quarantined_of w =
  List.filter_map
    (fun (s : Mediator.Warehouse.source_stat) ->
      match s.Mediator.Warehouse.ss_outcome with
      | Mediator.Warehouse.Quarantined reason ->
        Some (s.Mediator.Warehouse.ss_source, reason)
      | Mediator.Warehouse.Changed | Mediator.Warehouse.Unchanged -> None)
    (Mediator.Warehouse.last_refresh w)

let create ?(jobs = 1) ?(on_error = Fault.Abort) ?fault ?sink ~source
    (def : Strudel.Site.definition) : t =
  let data =
    match source with
    | Direct g -> g
    | Mediated w -> Mediator.Warehouse.graph w
  in
  let queries = List.map snd (Strudel.Site.parse_queries def) in
  let options =
    { Struql.Eval.default_options with
      strategy = def.Strudel.Site.strategy;
      registry = def.Strudel.Site.registry }
  in
  let engine = Struql.Dexec.create ~options ~queries data in
  Struql.Dexec.prime engine;
  let cache = Strudel.Render_cache.create () in
  Strudel.Render_cache.set_templates cache def.Strudel.Site.templates;
  let site_graph = Struql.Dexec.site_graph engine in
  let roots =
    Strudel.Site.roots_of site_graph def.Strudel.Site.root_family
  in
  if roots = [] then
    raise
      (Strudel.Site.Build_error
         (Printf.sprintf "no pages of root family %s in site graph %s"
            def.Strudel.Site.root_family def.Strudel.Site.name));
  let site, render_profile =
    Strudel.Render_pool.materialize ~jobs ~cache
      ~templates:def.Strudel.Site.templates ~on_error ?fault ?sink site_graph
      ~roots
  in
  let verification =
    Schema.Verify.check_all_site site_graph def.Strudel.Site.constraints
  in
  let schemas =
    List.map
      (fun (n, q) -> (n, Schema.Site_schema.of_query q))
      (Strudel.Site.parse_queries def)
  in
  let built =
    {
      Strudel.Site.def;
      data;
      site_graph;
      scope = Struql.Dexec.scope engine;
      schemas;
      site;
      verification;
      query_stats = [];
      render_profile;
      faults = (match fault with Some c -> Fault.reports c | None -> []);
    }
  in
  let mode =
    match source with
    | Direct g -> M_direct (Delta.Rec.create g)
    | Mediated w -> M_mediated w
  in
  { mode; engine; cache; jobs; on_error; fault; sink; built; cycles = 0 }

let built t = t.built
let engine t = t.engine
let cache t = t.cache
let cycles t = t.cycles

let recorder t =
  match t.mode with M_direct r -> Some r | M_mediated _ -> None

let warehouse t =
  match t.mode with M_mediated w -> Some w | M_direct _ -> None

let run_delta (t : t) ~t0 ~quarantined ?data delta : cycle_report =
  let wall () = (Unix.gettimeofday () -. t0) *. 1000. in
  let ch = Struql.Dexec.apply ?data t.engine delta in
  let report =
    Strudel.Incremental.publish_delta ~jobs:t.jobs ~on_error:t.on_error
      ?fault:t.fault ?sink:t.sink ~cache:t.cache ~previous:t.built
      ~data:(Struql.Dexec.data_graph t.engine)
      ~site_graph:(Struql.Dexec.site_graph t.engine)
      ~scope:(Struql.Dexec.scope t.engine)
      ~touched:ch.Struql.Dexec.sc_touched
      ~removed:ch.Struql.Dexec.sc_removed ()
  in
  t.built <- report.Strudel.Incremental.built;
  {
    cy_cycle = t.cycles;
    cy_changed = true;
    cy_delta_card = Delta.card delta;
    cy_drivers = ch.Struql.Dexec.sc_drivers;
    cy_rows = ch.Struql.Dexec.sc_rows;
    cy_touched = List.length ch.Struql.Dexec.sc_touched;
    cy_removed = List.length ch.Struql.Dexec.sc_removed;
    cy_rerendered = report.Strudel.Incremental.pages_rerendered;
    cy_reused = report.Strudel.Incremental.pages_reused;
    cy_fallbacks = ch.Struql.Dexec.sc_fallbacks;
    cy_quarantined = quarantined;
    cy_wall_ms = wall ();
  }

let push ?data (t : t) delta : cycle_report =
  let t0 = Unix.gettimeofday () in
  t.cycles <- t.cycles + 1;
  run_delta t ~t0 ~quarantined:[] ?data delta

let cycle (t : t) : cycle_report =
  let t0 = Unix.gettimeofday () in
  let wall () = (Unix.gettimeofday () -. t0) *. 1000. in
  t.cycles <- t.cycles + 1;
  let delta, data, quarantined =
    match t.mode with
    | M_direct r ->
      let d = Delta.Rec.flush r in
      ((if Delta.is_empty d then None else Some d), None, [])
    | M_mediated w -> (
      match Mediator.Warehouse.refresh_delta ~jobs:t.jobs w with
      | None -> (None, None, quarantined_of w)
      | Some d -> (Some d, Some (Mediator.Warehouse.graph w), quarantined_of w))
  in
  match delta with
  | None -> clean_report ~cycle:t.cycles ~quarantined ~wall:(wall ())
  | Some delta -> run_delta t ~t0 ~quarantined ?data delta

let watch ?(interval = 1.0) ?max_cycles ~on_cycle (t : t) : int =
  let degraded = ref false in
  let continue_ = ref true in
  let n = ref 0 in
  while !continue_ do
    let r = cycle t in
    if r.cy_quarantined <> [] then degraded := true;
    if
      List.exists
        (fun p -> Template.Generator.is_placeholder p)
        t.built.Strudel.Site.site.Template.Generator.pages
    then degraded := true;
    on_cycle t r;
    incr n;
    (match max_cycles with
     | Some m when !n >= m -> continue_ := false
     | _ -> ());
    if !continue_ then Unix.sleepf interval
  done;
  if !degraded then 3 else 0

let pp_report ppf (r : cycle_report) =
  if not r.cy_changed then
    Format.fprintf ppf "cycle %d: clean (%.1f ms)%s" r.cy_cycle r.cy_wall_ms
      (match r.cy_quarantined with
       | [] -> ""
       | qs ->
         Printf.sprintf "; %d source(s) quarantined" (List.length qs))
  else begin
    Format.fprintf ppf
      "cycle %d: |delta|=%d drivers=%d rows=%d touched=%d removed=%d \
       rerendered=%d reused=%d (%.1f ms)"
      r.cy_cycle r.cy_delta_card r.cy_drivers r.cy_rows r.cy_touched
      r.cy_removed r.cy_rerendered r.cy_reused r.cy_wall_ms;
    List.iter
      (fun (path, reason) ->
        Format.fprintf ppf "@.  fallback %s: %s" path reason)
      r.cy_fallbacks;
    List.iter
      (fun (src, reason) ->
        Format.fprintf ppf "@.  quarantined %s: %s" src reason)
      r.cy_quarantined
  end
