(** Bounded admission (see the interface). *)

type stats = {
  g_admitted : int;
  g_shed : int;
  g_refused : int;
}

type t = {
  max_inflight : int;
  m : Mutex.t;
  idle : Condition.t;
  mutable inflight : int;
  mutable draining : bool;
  mutable admitted : int;
  mutable shed : int;
  mutable refused : int;
  (* sanitizer identities: field 0 = all counters/flags guarded by [m] *)
  ds_obj : int;
  ds_m : int;
}

let create ~max_inflight =
  {
    max_inflight;
    m = Mutex.create ();
    idle = Condition.create ();
    inflight = 0;
    draining = false;
    admitted = 0;
    shed = 0;
    refused = 0;
    ds_obj = Dsan.alloc ~name:"Gate";
    ds_m = Dsan.lock_id ~name:"Gate.m";
  }

type verdict = Admitted | Shed | Refused

(* [wr] declares whether the section mutates the guarded state; the
   sanitizer records a matching access so any unlocked touch of the
   gate's fields elsewhere shows up as a race. *)
let with_lock ?(wr = true) ~site t f =
  Mutex.lock t.m;
  Dsan.acquire ~site t.ds_m;
  if wr then Dsan.write ~site t.ds_obj 0 else Dsan.read ~site t.ds_obj 0;
  Fun.protect
    ~finally:(fun () ->
      Dsan.release ~site t.ds_m;
      Mutex.unlock t.m)
    f

let try_admit t =
  with_lock ~site:__POS__ t (fun () ->
      if t.draining then begin
        t.refused <- t.refused + 1;
        Refused
      end
      else if t.max_inflight > 0 && t.inflight >= t.max_inflight then begin
        t.shed <- t.shed + 1;
        Shed
      end
      else begin
        t.inflight <- t.inflight + 1;
        t.admitted <- t.admitted + 1;
        Admitted
      end)

let release t =
  with_lock ~site:__POS__ t (fun () ->
      t.inflight <- t.inflight - 1;
      if t.inflight < 0 then t.inflight <- 0;
      if t.inflight = 0 then Condition.broadcast t.idle)

let begin_drain t =
  with_lock ~site:__POS__ t (fun () ->
      t.draining <- true;
      (* wake idle waiters so a drain that starts with nothing in
         flight completes immediately *)
      Condition.broadcast t.idle)

let draining t = with_lock ~wr:false ~site:__POS__ t (fun () -> t.draining)
let inflight t = with_lock ~wr:false ~site:__POS__ t (fun () -> t.inflight)

let wait_idle ?(give_up = fun () -> false) t =
  with_lock ~wr:false ~site:__POS__ t (fun () ->
      let stop = ref (t.inflight = 0 || give_up ()) in
      while not !stop do
        (* Condition.wait releases [m] while blocked and reacquires it *)
        Dsan.release ~site:__POS__ t.ds_m;
        Condition.wait t.idle t.m;
        Dsan.acquire ~site:__POS__ t.ds_m;
        Dsan.read ~site:__POS__ t.ds_obj 0;
        stop := t.inflight = 0 || give_up ()
      done;
      t.inflight = 0)

let wake t = with_lock ~wr:false ~site:__POS__ t (fun () -> Condition.broadcast t.idle)

let stats t =
  with_lock ~wr:false ~site:__POS__ t (fun () ->
      { g_admitted = t.admitted; g_shed = t.shed; g_refused = t.refused })
