(** The [strudeld] serving engine: epochs, routes, click-time renders.

    One engine serves one site definition over either a static data
    graph or a warehousing mediator.  Per {e epoch} (one consistent
    integration) it keeps an immutable serving state: a click-time
    session over the pinned graph, expanded once at install time so the
    site {e structure} is materialized per epoch while page {e HTML}
    stays click-time — rendered on first request through the verifying
    render cache, revalidated with ETags.

    A request pins the current epoch state with one atomic read and
    works against that snapshot for its whole lifetime; {!refresh}
    builds the next epoch completely off to the side (warehouse
    refresh under snapshot isolation, then a fresh click-time session
    and route table) and installs it with one atomic swap — no request
    ever observes a half-refreshed view.  The render cache is shared
    across epochs and keyed by page {e name} with verifying read
    traces, so a swap invalidates exactly the pages whose reads
    changed: unchanged pages keep hitting, changed ones re-render.

    Render failures are structured ({!Strudel.Materialize.Click_time.render_page}):
    a failing page answers [503] with the fault manifest as body and
    trips its per-page circuit {!Breaker}; a quarantined source keeps
    its last integrated data serving (the warehouse's stale-snapshot
    policy) and is reported on [/healthz] — degradation is always
    page- or source-scoped, never process-wide. *)

open Sgraph

type source =
  | Static of Graph.t
  | Federated of Mediator.Warehouse.t

type t

val create :
  ?clock:Fault.Clock.t ->
  ?cache:bool ->
  ?workers:int ->
  ?breaker_threshold:int ->
  ?breaker_retry:Fault.Policy.retry ->
  ?fault:Fault.ctx ->
  source:source ->
  Strudel.Site.definition ->
  t
(** Builds and installs the first epoch synchronously (the engine is
    ready as soon as [create] returns).  [cache] (default [true])
    enables the shared render cache; [workers] (default 8) sizes the
    per-worker template-compilation cache pool; [fault] collects serve
    faults and may carry a seeded injector whose [Render_page] points
    fail page renders (the deterministic fault-injection hook of the
    serve tests). *)

val handle : ?worker:int -> t -> Http.request -> Http.response
(** Serve one request: site pages by URL ([/] is the root page), plus
    [/healthz] (liveness + degraded-state inventory), [/readyz]
    (readiness; 503 while draining) and [/faultz] (the fault
    manifest).  GET/HEAD only — anything else is 405.  [worker]
    selects the template-compilation cache slot; concurrent callers
    must pass distinct worker ids. *)

val refresh : ?jobs:int -> t -> bool
(** Pick up source changes: refresh the warehouse (snapshot-isolated),
    build the next epoch's serving state and swap it in atomically.
    Returns whether a new epoch was installed.  [false] for static
    engines and unchanged sources.  A refresh failure is recorded as a
    fault and reported per source — the previous epoch keeps serving. *)

val epoch : t -> int
val page_count : t -> int
(** Routable pages of the current epoch. *)

val set_draining : t -> bool -> unit
(** Flips [/readyz] to 503 so load balancers stop sending traffic;
    the daemon sets it when drain begins. *)

val degraded : t -> bool
(** Whether any breaker is open, any source is quarantined, or any
    degraded (503) response has been served — the drain exit-code
    input. *)

val manifest_json : t -> string
(** The fault manifest ([faults.json] shape): serve-stage faults plus
    everything the warehouse recorded. *)

val breaker : t -> Breaker.t
val cache_stats : t -> (int * int * int) option
(** Render-cache [(hits, misses, invalidations)]; [None] when caching
    is off. *)

type counters = {
  sc_requests : int;
  sc_page_ok : int;        (** 200s from a render or cache hit *)
  sc_not_modified : int;   (** 304s *)
  sc_not_found : int;      (** 404s *)
  sc_unavailable : int;    (** degraded 503s (breaker or render failure) *)
  sc_rejected : int;       (** 405s and 400-class *)
}

val counters : t -> counters
