(** [strudel watch]: differential site maintenance from ingest to
    publish.

    A watch session pairs a {!Struql.Dexec} engine (the maintained site
    graph with its recorded construction events) with a cross-cycle
    render cache and the previously published build.  {!cycle} drives
    one turn of the loop: pick up what changed at the sources (a
    recorder flush in direct mode, a
    {!Mediator.Warehouse.refresh_delta} in mediated mode), maintain the
    site graph differentially, then re-render exactly the pages whose
    read traces the change invalidated.  Published output is
    byte-identical to a cold {!Strudel.Site.build} over the same data,
    at O(change) cost; clearing {!Struql.Exec.delta_enabled} falls back
    to full re-derivation through the same pipeline.

    Source faults degrade, never abort: a quarantined source keeps
    serving its last integrated data (the warehouse's stale-snapshot
    policy) and is reported per cycle. *)

open Sgraph

type source =
  | Direct of Graph.t
      (** watch an in-process data graph; mutate it only through the
          session's {!recorder} so changes are observed *)
  | Mediated of Mediator.Warehouse.t
      (** watch a warehousing mediator; each {!cycle} polls
          {!Mediator.Warehouse.refresh_delta} *)

type t

type cycle_report = {
  cy_cycle : int;
  cy_changed : bool;  (** [false]: sources were clean, nothing ran *)
  cy_delta_card : int;  (** data-graph changes consumed *)
  cy_drivers : int;  (** drivers re-derived *)
  cy_rows : int;  (** binding rows re-derived *)
  cy_touched : int;  (** site nodes whose pages may have changed *)
  cy_removed : int;  (** site nodes removed *)
  cy_rerendered : int;
  cy_reused : int;
  cy_fallbacks : (string * string) list;
      (** (block path, reason) of full block replays this cycle *)
  cy_quarantined : (string * string) list;
      (** (source, reason) of sources serving stale data this cycle *)
  cy_wall_ms : float;
}

val create :
  ?jobs:int ->
  ?on_error:Fault.on_error ->
  ?fault:Fault.ctx ->
  ?sink:Strudel.Render_pool.sink ->
  source:source ->
  Strudel.Site.definition ->
  t
(** Cold-start the session: prime the differential engine (recording
    every construction event) and publish the initial build through a
    fresh render cache.  [jobs] parallelizes both the renders and, in
    mediated mode, source loads; [sink] additionally streams pages out
    (e.g. {!Strudel.Render_pool.file_sink}) on the initial publish and
    on every changed cycle.  Raises {!Strudel.Site.Build_error} when
    the root family is empty, as {!Strudel.Site.build} would. *)

val cycle : t -> cycle_report
(** One turn of the watch loop: ingest the pending change, maintain
    the site graph, publish.  Cheap when nothing changed
    ([cy_changed = false]). *)

val push : ?data:Graph.t -> t -> Delta.t -> cycle_report
(** Feed one externally computed delta through the maintain-and-publish
    leg — the file-watch ingest path ([strudel watch --data]), where
    the caller re-reads the changed input, {!Sgraph.Delta.rebase}s it
    onto the engine's graph and passes the rebased graph as [data]
    with the {!Sgraph.Delta.diff} between the two. *)

val watch :
  ?interval:float ->
  ?max_cycles:int ->
  on_cycle:(t -> cycle_report -> unit) ->
  t ->
  int
(** Run {!cycle} every [interval] seconds (default 1.0), forever or for
    [max_cycles] turns, calling [on_cycle] after each.  Returns the
    process exit code: 0 if every cycle published cleanly, 3 if any
    cycle saw a quarantined source or a placeholder page (degraded). *)

val built : t -> Strudel.Site.built
(** The current publish (updated after each changed cycle). *)

val engine : t -> Struql.Dexec.t
(** The maintained engine — counters, classifications and fallback
    reasons for [explain-analyze] surfaces. *)

val cache : t -> Strudel.Render_cache.t
val cycles : t -> int

val recorder : t -> Delta.Rec.r option
(** Direct mode's mutation recorder: apply data-graph edits through it
    and the next {!cycle} picks them up.  [None] in mediated mode. *)

val warehouse : t -> Mediator.Warehouse.t option
(** Mediated mode's warehouse.  [None] in direct mode. *)

val pp_report : Format.formatter -> cycle_report -> unit
(** One line per cycle (plus fallback/quarantine detail lines) — the
    [strudel watch] console format. *)
