(** The [strudeld] daemon: transport, worker pool, overload and drain.

    {!serve} runs an accept loop plus [workers] request workers on
    {!Strudel.Pool.shared} and blocks until the daemon drains.  Every
    accepted connection passes the admission {!Gate} first: over
    [max_inflight] it is {e shed} with [503 + Retry-After] before any
    work happens — the backlog stays bounded, so the tail latency of
    {e admitted} requests stays bounded under overload.

    Robustness contract:
    - {b slow clients} hit read/write timeouts (408 on a stalled
      request, a counted timeout on a stalled response);
    - {b vanished clients} ([EPIPE]/[ECONNRESET], a closed socket) are
      a counted, non-fatal outcome — [SIGPIPE] is ignored process-wide
      by {!install_signal_handlers};
    - {b slow handlers} are bounded by the per-request deadline: an
      overrun answer is replaced with [503] (the render itself cannot
      be preempted — the deadline bounds what the client waits for,
      not the worker's CPU time);
    - {b graceful drain}: {!stop} (or SIGTERM/SIGINT) stops accepting,
      refuses new connections, finishes in-flight work within
      [drain_deadline_ms], then force-closes whatever remains.

    Time comes from the config's {!Fault.Clock.t} and connections are
    plain records of functions, so the whole behavior — timeouts,
    deadlines, overload, drain — is testable on virtual time with
    synthetic connections: no listening socket, no sleeps, no flaky
    tests.  Exit codes: [0] clean drain, [3] drained degraded, [4]
    drain deadline exceeded (in-flight connections aborted), [1] fatal
    error. *)

exception Timeout
(** A read or write exceeded its timeout. *)

exception Client_closed
(** The peer vanished ([EPIPE], [ECONNRESET], or a close raced a
    read): non-fatal, counted in {!stats}. *)

type conn = {
  c_read : bytes -> int -> int -> int;
      (** like [Unix.read]; raises {!Timeout} or {!Client_closed} *)
  c_write : string -> unit;  (** writes all; same exceptions *)
  c_close : unit -> unit;    (** idempotent *)
  c_peer : string;
}

type listener = {
  l_accept : unit -> conn option;
      (** [None] is a tick: no connection ready, re-check daemon state.
          Must not block indefinitely. *)
  l_close : unit -> unit;
}

val conn_of_fd :
  ?read_timeout_ms:float -> ?write_timeout_ms:float -> Unix.file_descr ->
  conn
(** Wrap a socket with [select]-based timeouts (defaults 10 s);
    [EPIPE]/[ECONNRESET]/[EBADF] map to {!Client_closed}. *)

val tcp_listener :
  ?backlog:int ->
  ?tick_ms:float ->
  ?read_timeout_ms:float ->
  ?write_timeout_ms:float ->
  host:string ->
  port:int ->
  unit ->
  listener * int
(** Bind and listen on [host:port] ([port = 0] picks an ephemeral
    port; the actual one is returned).  [l_accept] waits at most
    [tick_ms] (default 250) before answering [None], so the accept
    loop re-checks the stop flag promptly even without traffic. *)

type config = {
  workers : int;             (** request worker domains (≥ 1) *)
  max_inflight : int;        (** admitted-connection bound; ≤ 0 = unbounded *)
  deadline_ms : float;       (** per-request deadline; ≤ 0 disables *)
  read_timeout_ms : float;
  write_timeout_ms : float;
  drain_deadline_ms : float; (** < 0 waits for in-flight work forever *)
  retry_after_s : int;       (** [Retry-After] on shed responses *)
  clock : Fault.Clock.t;
}

val default_config : config
(** 4 workers, 64 in-flight, 5 s deadline, 10 s read/write timeouts,
    10 s drain deadline, [Retry-After: 1], real clock. *)

type t

val create :
  ?config:config ->
  ?on_drain:(unit -> unit) ->
  ?degraded:(unit -> bool) ->
  handler:(worker:int -> Http.request -> Http.response) ->
  unit ->
  t
(** [on_drain] runs once when drain begins (the engine flips
    [/readyz] there); [degraded] is consulted after the drain for the
    exit code (default: never degraded).  [handler] runs on worker
    domains; [worker] ∈ [0 .. workers-1]. *)

val serve : t -> listener -> unit
(** Run until drained.  Reusable is {e not}: one [serve] per {!t}.
    Raises only on fatal errors (after setting {!exit_code} to 1). *)

val stop : t -> unit
(** Request drain.  Only sets an atomic flag — safe to call from a
    signal handler or any domain; the accept loop notices within a
    listener tick.  Idempotent. *)

val stopping : t -> bool

val exit_code : t -> int
(** After {!serve} returns: [0] clean, [3] degraded, [4] drain
    deadline exceeded, [1] fatal. *)

val install_signal_handlers : t -> unit
(** SIGTERM/SIGINT → {!stop}; SIGPIPE → ignored (a vanished client
    must surface as [EPIPE], the counted outcome, never kill the
    process). *)

type stats = {
  d_served : int;         (** responses written successfully *)
  d_shed : int;
  d_refused : int;
  d_client_aborts : int;
  d_timeouts : int;       (** read (408) and write timeouts *)
  d_deadlines : int;      (** responses replaced by the deadline 503 *)
  d_aborted_inflight : int;
      (** connections force-closed when the drain deadline passed *)
}

val stats : t -> stats
