(** Keyed circuit breakers on the fault clock.

    The daemon keeps one breaker registry and keys it two ways: by
    source name ([source:rdb]) for warehouse refresh outcomes, and by
    page URL ([page:p.html]) for render failures — so a broken source
    or a crashing page degrades exactly its own responses (503 with the
    fault manifest as body) while the rest of the site keeps serving.

    State machine per key: {e closed} (normal) → after [threshold]
    consecutive failures {e open} (reject with the remaining cooldown,
    which becomes the response's [Retry-After]) → once the cooldown
    elapses {e half-open} (exactly one probe is let through) → a
    success closes the breaker, a failure re-opens it with the next
    cooldown.  Cooldowns are the backoff schedule of a
    {!Fault.Policy.retry} ({!Fault.Retry.schedule}): exponential from
    [base_delay_ms], capped at [max_delay_ms] — the serving layer
    reuses the ingest layer's retry policy vocabulary.  Time comes from
    a {!Fault.Clock.t}, so tests run on virtual time. *)

type t

val create :
  ?threshold:int ->
  ?retry:Fault.Policy.retry ->
  clock:Fault.Clock.t ->
  unit ->
  t
(** [threshold] (default 3) consecutive failures open a key.  [retry]
    (default {!Fault.Policy.default_retry}) supplies the cooldown
    schedule; its last delay repeats once the schedule is exhausted. *)

type state = Closed | Open | Half_open

val state : t -> string -> state
(** {!Open} is reported until a {!check} observes the elapsed cooldown
    (which transitions the key to {!Half_open}). *)

type decision =
  | Proceed
  | Reject of float  (** remaining cooldown in ms (≥ 0) *)

val check : t -> string -> decision
(** Consult the breaker before doing work for [key].  On an open key
    whose cooldown elapsed, transitions to half-open and lets exactly
    one caller {!Proceed} (until {!success} or {!failure} settles the
    probe; other callers keep getting {!Reject}). *)

val success : t -> string -> unit
val failure : t -> string -> unit

val trips : t -> int
(** Closed→open transitions since creation (re-opens included). *)

val open_keys : t -> string list
(** Keys currently open or half-open, sorted — the degraded-state
    inventory for [/healthz] and the drain exit code. *)
