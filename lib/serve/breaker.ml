(** Keyed circuit breakers on the fault clock (see the interface). *)

type state = Closed | Open | Half_open

type key_state = {
  mutable ks_state : state;
  mutable ks_failures : int;  (* consecutive failures while closed *)
  mutable ks_opened : int;    (* times this key opened, drives the schedule *)
  mutable ks_until : float;   (* cooldown end (ms on the breaker clock) *)
  mutable ks_probing : bool;  (* half-open probe outstanding *)
}

type t = {
  threshold : int;
  schedule : float list;  (* cooldown ladder, never empty *)
  clock : Fault.Clock.t;
  m : Mutex.t;
  tbl : (string, key_state) Hashtbl.t;
  mutable trips : int;
  (* sanitizer identities: field 0 = [tbl], every key_state and [trips],
     all guarded by [m] *)
  ds_obj : int;
  ds_m : int;
}

let create ?(threshold = 3) ?(retry = Fault.Policy.default_retry) ~clock () =
  let schedule =
    match Fault.Retry.schedule retry with
    | [] -> [ retry.Fault.Policy.base_delay_ms ]
    | s -> s
  in
  {
    threshold = max 1 threshold;
    schedule;
    clock;
    m = Mutex.create ();
    tbl = Hashtbl.create 16;
    trips = 0;
    ds_obj = Dsan.alloc ~name:"Breaker";
    ds_m = Dsan.lock_id ~name:"Breaker.m";
  }

(* [wr] declares whether the section mutates the guarded state (see
   {!Gate.with_lock}). *)
let with_lock ?(wr = true) ~site t f =
  Mutex.lock t.m;
  Dsan.acquire ~site t.ds_m;
  if wr then Dsan.write ~site t.ds_obj 0 else Dsan.read ~site t.ds_obj 0;
  Fun.protect
    ~finally:(fun () ->
      Dsan.release ~site t.ds_m;
      Mutex.unlock t.m)
    f

let key_state t key =
  match Hashtbl.find_opt t.tbl key with
  | Some ks -> ks
  | None ->
    let ks =
      { ks_state = Closed; ks_failures = 0; ks_opened = 0; ks_until = 0.;
        ks_probing = false }
    in
    Hashtbl.add t.tbl key ks;
    ks

(* Cooldown for the n-th opening (1-based): walk the schedule, repeat
   its last entry once exhausted. *)
let cooldown t n =
  let rec go i = function
    | [ last ] -> last
    | d :: _ when i = 1 -> d
    | _ :: rest -> go (i - 1) rest
    | [] -> assert false
  in
  go (max 1 n) t.schedule

let open_now t ks =
  ks.ks_state <- Open;
  ks.ks_failures <- 0;
  ks.ks_probing <- false;
  ks.ks_opened <- ks.ks_opened + 1;
  ks.ks_until <- t.clock.Fault.Clock.now_ms () +. cooldown t ks.ks_opened;
  t.trips <- t.trips + 1

type decision = Proceed | Reject of float

let check t key =
  with_lock ~site:__POS__ t (fun () ->
      let ks = key_state t key in
      match ks.ks_state with
      | Closed -> Proceed
      | Half_open -> if ks.ks_probing then Reject 0. else begin
          ks.ks_probing <- true;
          Proceed
        end
      | Open ->
        let now = t.clock.Fault.Clock.now_ms () in
        if now >= ks.ks_until then begin
          ks.ks_state <- Half_open;
          ks.ks_probing <- true;
          Proceed
        end
        else Reject (ks.ks_until -. now))

let state t key =
  with_lock ~wr:false ~site:__POS__ t (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | None -> Closed
      | Some ks -> ks.ks_state)

let success t key =
  with_lock ~site:__POS__ t (fun () ->
      let ks = key_state t key in
      ks.ks_state <- Closed;
      ks.ks_failures <- 0;
      ks.ks_opened <- 0;
      ks.ks_probing <- false)

let failure t key =
  with_lock ~site:__POS__ t (fun () ->
      let ks = key_state t key in
      match ks.ks_state with
      | Open -> ()  (* already open; rejected callers don't re-trip it *)
      | Half_open -> open_now t ks  (* failed probe: next cooldown step *)
      | Closed ->
        ks.ks_failures <- ks.ks_failures + 1;
        if ks.ks_failures >= t.threshold then open_now t ks)

let trips t = with_lock ~wr:false ~site:__POS__ t (fun () -> t.trips)

let open_keys t =
  with_lock ~wr:false ~site:__POS__ t (fun () ->
      Hashtbl.fold
        (fun k ks acc ->
          match ks.ks_state with Open | Half_open -> k :: acc | Closed -> acc)
        t.tbl []
      |> List.sort compare)
