(** Strong DataGuides: graph schemas extracted from the data.

    Site schemas (§3.2) refine the {e graph schemas} of [BUN 97b]
    ("Adding structure to unstructured data"); this module implements
    the complementary, data-driven summary — a strong DataGuide: a
    deterministic graph with one state per set of objects reachable by
    some label path from the roots, built by subset construction.
    Every label path that exists in the data exists in the guide
    exactly once, so the guide answers "which attribute sequences occur
    in this (schema-less) data?" — the question a site builder faces
    before writing a site-definition query — and each state carries its
    extent, giving path-cardinality estimates for the optimizer. *)

open Sgraph

type state = {
  id : int;
  extent : Oid.Set.t;          (** data nodes summarized by this state *)
  mutable value_count : int;   (** atomic values reachable in one step *)
  mutable transitions : (string * int) list;  (** outgoing, by label *)
}

type t = {
  states : (int, state) Hashtbl.t;
  root : int;
  graph_nodes : int;
}

exception Too_large of int

let set_key s =
  String.concat "," (List.map (fun o -> string_of_int (Oid.id o)) (Oid.Set.elements s))

(** Build the strong DataGuide from the given roots (default: all nodes
    without incoming node edges; if none, all nodes).  [max_states]
    bounds the subset construction (raises {!Too_large} beyond it —
    pathological graphs can have exponentially many states). *)
let of_graph ?roots ?(max_states = 10_000) (g : Graph.t) : t =
  let roots =
    match roots with
    | Some rs -> rs
    | None ->
      let no_preds =
        List.filter (fun o -> Graph.in_edges g (Graph.N o) = []) (Graph.nodes g)
      in
      if no_preds = [] then Graph.nodes g else no_preds
  in
  let states = Hashtbl.create 64 in
  let by_key = Hashtbl.create 64 in
  let next_id = ref 0 in
  let queue = Queue.create () in
  let intern extent =
    let key = set_key extent in
    match Hashtbl.find_opt by_key key with
    | Some s -> s.id
    | None ->
      if !next_id >= max_states then raise (Too_large !next_id);
      let s =
        { id = !next_id; extent; value_count = 0; transitions = [] }
      in
      incr next_id;
      Hashtbl.add states s.id s;
      Hashtbl.add by_key key s;
      Queue.add s queue;
      s.id
  in
  let root =
    intern (List.fold_left (fun s o -> Oid.Set.add o s) Oid.Set.empty roots)
  in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    (* collect per-label successor sets over the whole extent *)
    let succ = Hashtbl.create 8 in
    let values = ref 0 in
    Oid.Set.iter
      (fun o ->
        List.iter
          (fun (l, tgt) ->
            match tgt with
            | Graph.N o' ->
              let set =
                match Hashtbl.find_opt succ l with
                | Some set -> set
                | None -> Oid.Set.empty
              in
              Hashtbl.replace succ l (Oid.Set.add o' set)
            | Graph.V _ ->
              incr values;
              (* value-only labels still appear as transitions to an
                 empty-extent state so the path is recorded *)
              if not (Hashtbl.mem succ l) then
                Hashtbl.replace succ l Oid.Set.empty)
          (Graph.out_edges g o))
      s.extent;
    s.value_count <- !values;
    s.transitions <-
      List.sort compare
        (Hashtbl.fold (fun l set acc -> (l, intern set) :: acc) succ [])
  done;
  { states; root; graph_nodes = Graph.node_count g }

let state t id = Hashtbl.find t.states id
let root_state t = state t t.root
let state_count t = Hashtbl.length t.states

let transition_count t =
  Hashtbl.fold (fun _ s n -> n + List.length s.transitions) t.states 0

(** Follow a label path from the root; [None] when the path does not
    occur in the data. *)
let follow t (path : string list) : state option =
  let rec go s = function
    | [] -> Some s
    | l :: rest -> (
        match List.assoc_opt l s.transitions with
        | Some id -> go (state t id) rest
        | None -> None)
  in
  go (root_state t) path

let accepts_path t path = follow t path <> None

(** Number of data objects reachable by the label path — exact, the
    point of a {e strong} DataGuide. *)
let extent_size t path =
  match follow t path with
  | Some s -> Oid.Set.cardinal s.extent
  | None -> 0

(** All distinct label paths of length ≤ [depth] occurring in the data
    (cycle-safe: revisiting a state stops the walk). *)
let paths_up_to t depth : string list list =
  let acc = ref [] in
  let rec go s prefix visited d =
    if d > 0 then
      List.iter
        (fun (l, id) ->
          let path = prefix @ [ l ] in
          acc := path :: !acc;
          if not (List.mem id visited) then
            go (state t id) path (id :: visited) (d - 1))
        s.transitions
  in
  go (root_state t) [] [ t.root ] depth;
  List.rev !acc

(** Does any label path recorded in the guide match the regular path
    expression?  Product of the guide (a DFA over labels) with the
    expression's NFA, BFS from (root, ε-closure of NFA start).  A
    nullable expression matches the empty path and is trivially
    nonempty. *)
let intersect_nonempty t (r : Path.t) : bool =
  Path.nullable r
  ||
  let nfa = Path.compile r in
  (* compile the automaton against the guide's label alphabet once —
     label predicates run per (state, label) in the matcher build, the
     product walk itself is integer dispatch *)
  let lab_ids = Hashtbl.create 32 in
  let labs_rev = ref [] in
  let nl = ref 0 in
  let lab_id l =
    match Hashtbl.find_opt lab_ids l with
    | Some i -> i
    | None ->
      let i = !nl in
      incr nl;
      labs_rev := l :: !labs_rev;
      Hashtbl.add lab_ids l i;
      i
  in
  let trans = Hashtbl.create 64 in
  Hashtbl.iter
    (fun gid s ->
      Hashtbl.replace trans gid
        (List.map (fun (l, gid') -> (lab_id l, gid')) s.transitions))
    t.states;
  let labels = Array.of_list (List.rev !labs_rev) in
  let m = Path.matcher nfa ~labels in
  let ns = Path.nfa_states nfa in
  let seen = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push gid q =
    let c = (gid * ns) + q in
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.add seen c ();
      Queue.add (gid, q) queue
    end
  in
  Array.iter (fun q -> push t.root q) (Path.matcher_start m);
  let found = ref false in
  (try
     while not (Queue.is_empty queue) do
       let gid, q = Queue.pop queue in
       if Path.matcher_accepting m q then begin
         found := true;
         raise Exit
       end;
       List.iter
         (fun (li, gid') ->
           Array.iter (fun q' -> push gid' q') (Path.matcher_row m q li))
         (match Hashtbl.find_opt trans gid with Some l -> l | None -> [])
     done
   with Exit -> ());
  !found

let pp ppf t =
  Fmt.pf ppf "dataguide: %d states, %d transitions over %d data nodes@."
    (state_count t) (transition_count t) t.graph_nodes;
  let sorted =
    List.sort compare (Hashtbl.fold (fun id s acc -> (id, s) :: acc) t.states [])
  in
  List.iter
    (fun (id, s) ->
      Fmt.pf ppf "  s%d (|extent|=%d, values=%d):%s@." id
        (Oid.Set.cardinal s.extent) s.value_count
        (String.concat ""
           (List.map (fun (l, j) -> Printf.sprintf " -%s->s%d" l j)
              s.transitions)))
    sorted
