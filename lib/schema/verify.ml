(** Integrity constraints on site structure (§1, [FER 98b]).

    Constraints like "all pages are reachable from the root", "every
    organization homepage points to the homepages of its
    suborganizations", or "proprietary data is not displayed on the
    external version" are expressed here and checked in two ways:

    - {e statically} on the site schema — a sound approximation: the
      schema describes the possible paths of every generated site, so
      [No_edge]/[No_attribute] violations found there rule out every
      instance, and schema-level reachability is a necessary condition
      for instance-level reachability;
    - {e exactly} on a concrete site graph, where Skolem families are
      recovered from node names ([YearPage(1997)] belongs to the
      [YearPage] family). *)

open Sgraph
open Struql

type constraint_ =
  | Reachable_from of string
      (** every object of the site is reachable from the given Skolem
          family's pages (typically the root) *)
  | Points_to of string * string * string
      (** [Points_to (a, l, b)]: every [a]-page has an [l]-edge to some
          [b]-page *)
  | No_edge of string * string
      (** [No_edge (a, l)]: no [a]-page carries an [l]-edge *)
  | No_attribute_anywhere of string
      (** the label never appears in the site (proprietary data) *)
  | Acyclic_links of string
      (** edges with the given label form no cycle (e.g. "SubOrg") *)

let pp_constraint ppf = function
  | Reachable_from f -> Fmt.pf ppf "all pages reachable from %s" f
  | Points_to (a, l, b) -> Fmt.pf ppf "every %s -[%S]-> some %s" a l b
  | No_edge (a, l) -> Fmt.pf ppf "no %s carries label %S" a l
  | No_attribute_anywhere l -> Fmt.pf ppf "label %S absent from site" l
  | Acyclic_links l -> Fmt.pf ppf "label %S is acyclic" l

type verdict =
  | Holds
  | Violated of string list  (** human-readable witnesses *)
  | Unknown of string        (** static analysis cannot decide *)

let pp_verdict ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Violated ws ->
    Fmt.pf ppf "VIOLATED (%d witnesses)%a" (List.length ws)
      (fun ppf ws ->
        List.iter (fun w -> Fmt.pf ppf "@\n    %s" w) ws)
      ws
  | Unknown why -> Fmt.pf ppf "unknown statically: %s" why

(* --- Static checks on the site schema --- *)

let edge_label_matches l = function
  | Ast.L_const s -> s = l
  | Ast.L_var _ -> true  (* an arc variable may take any label *)

let check_schema (s : Site_schema.t) (c : constraint_) : verdict =
  match c with
  | Reachable_from root ->
    let reach = Site_schema.reachable_from s (Site_schema.NF root) in
    let missing =
      List.filter
        (fun n ->
          not (List.exists (Site_schema.node_equal n) reach)
          && n <> Site_schema.NS)
        (Site_schema.nodes s)
    in
    if List.exists (Site_schema.node_equal (Site_schema.NF root))
         (Site_schema.nodes s)
    then
      if missing = [] then Holds
      else
        Violated
          (List.map
             (fun n ->
               Fmt.str "family %s unreachable in the schema"
                 (Site_schema.node_name n))
             missing)
    else Violated [ Fmt.str "no Skolem family named %s" root ]
  | Points_to (a, l, b) ->
    let candidate =
      List.exists
        (fun e ->
          Site_schema.node_equal e.Site_schema.src (Site_schema.NF a)
          && Site_schema.node_equal e.Site_schema.dst (Site_schema.NF b)
          && edge_label_matches l e.Site_schema.label)
        (Site_schema.edges s)
    in
    if candidate then
      Unknown
        "a matching link clause exists; whether every instance fires \
         depends on the data"
    else
      Violated
        [ Fmt.str "no link clause can produce %s -[%S]-> %s" a l b ]
  | No_edge (a, l) ->
    let offending =
      List.filter
        (fun e ->
          Site_schema.node_equal e.Site_schema.src (Site_schema.NF a)
          && edge_label_matches l e.Site_schema.label)
        (Site_schema.edges s)
    in
    (match offending with
     | [] -> Holds
     | es ->
       let exact =
         List.filter
           (fun e ->
             match e.Site_schema.label with
             | Ast.L_const s' -> s' = l
             | Ast.L_var _ -> false)
           es
       in
       if exact <> [] then
         Violated
           (List.map
              (fun e -> Fmt.str "link clause %a" Site_schema.pp_edge_label e)
              exact)
       else
         Unknown "an arc-variable link clause may produce this label")
  | No_attribute_anywhere l ->
    let offending =
      List.filter
        (fun e -> edge_label_matches l e.Site_schema.label)
        (Site_schema.edges s)
    in
    (match offending with
     | [] -> Holds
     | es ->
       let exact =
         List.exists
           (fun e ->
             match e.Site_schema.label with
             | Ast.L_const s' -> s' = l
             | Ast.L_var _ -> false)
           es
       in
       if exact then
         Violated [ Fmt.str "a link clause emits label %S" l ]
       else Unknown "an arc-variable link clause may produce this label")
  | Acyclic_links l ->
    (* cycle detection between Skolem families along l-labeled schema
       edges; a schema cycle is necessary for an instance cycle *)
    let nodes = Site_schema.nodes s in
    let succ n =
      List.filter_map
        (fun e ->
          if Site_schema.node_equal e.Site_schema.src n
             && edge_label_matches l e.Site_schema.label
          then Some e.Site_schema.dst
          else None)
        (Site_schema.edges s)
    in
    let rec dfs path n =
      if List.exists (Site_schema.node_equal n) path then true
      else List.exists (dfs (n :: path)) (succ n)
    in
    if List.exists (dfs []) nodes then
      Unknown "the schema admits a cycle; instances may or may not cycle"
    else Holds

(* --- Exact checks on a concrete site graph --- *)

(** The Skolem family of a node, recovered from its name
    ("YearPage(1997)" → "YearPage"). *)
let family_of_node o =
  let n = Oid.name o in
  match String.index_opt n '(' with
  | Some i when i > 0 && String.length n > 0 && n.[String.length n - 1] = ')'
    ->
    Some (String.sub n 0 i)
  | _ -> None

let family_members g fam =
  List.filter (fun o -> family_of_node o = Some fam) (Graph.nodes g)

let check_site (g : Graph.t) (c : constraint_) : verdict =
  (* constraints only read the graph; attribute probes below run on the
     kernel snapshot (amortized across the constraint set) *)
  ignore (Graph.freeze g);
  match c with
  | Reachable_from root ->
    let roots = family_members g root in
    if roots = [] then Violated [ Fmt.str "no %s node in the site" root ]
    else begin
      let missing = Algo.unreachable_nodes g roots in
      if missing = [] then Holds
      else
        Violated
          (List.map (fun o -> Fmt.str "unreachable page %s" (Oid.name o))
             missing)
    end
  | Points_to (a, l, b) ->
    let bad =
      List.filter
        (fun o ->
          not
            (List.exists
               (fun t ->
                 match t with
                 | Graph.N o' -> family_of_node o' = Some b
                 | Graph.V _ -> false)
               (Graph.attr g o l)))
        (family_members g a)
    in
    if bad = [] then Holds
    else
      Violated
        (List.map
           (fun o -> Fmt.str "%s lacks %S link to a %s" (Oid.name o) l b)
           bad)
  | No_edge (a, l) ->
    let bad =
      List.filter (fun o -> Graph.attr g o l <> []) (family_members g a)
    in
    if bad = [] then Holds
    else
      Violated
        (List.map (fun o -> Fmt.str "%s carries %S" (Oid.name o) l) bad)
  | No_attribute_anywhere l ->
    if Graph.label_count g l = 0 then Holds
    else
      Violated
        (List.map
           (fun (o, _) -> Fmt.str "%s carries %S" (Oid.name o) l)
           (Graph.label_extent g l))
  | Acyclic_links l ->
    (* restrict the graph to l-labeled edges and test for cycles *)
    let sub = Graph.create ~name:"sub" () in
    Graph.iter_edges
      (fun src lab tgt -> if lab = l then Graph.add_edge sub src lab tgt)
      g;
    if Algo.is_dag sub then Holds
    else Violated [ Fmt.str "cycle among %S links" l ]

let check_all_site g cs = List.map (fun c -> (c, check_site g c)) cs
let check_all_schema s cs = List.map (fun c -> (c, check_schema s c)) cs
