(** Strong DataGuides: graph schemas extracted from the data
    ([BUN 97b], the work site schemas refine).

    A strong DataGuide is a deterministic summary graph with one state
    per set of objects reachable by some label path from the roots
    (subset construction).  Every label path occurring in the data
    occurs in the guide exactly once, and each state carries its exact
    extent — the answer to "which attribute sequences occur in this
    schema-less data, and how many objects does each reach?", the
    question a site builder faces before writing a site-definition
    query. *)

open Sgraph

type state = {
  id : int;
  extent : Oid.Set.t;          (** data nodes summarized by this state *)
  mutable value_count : int;   (** atomic values reachable in one step *)
  mutable transitions : (string * int) list;
}

type t

exception Too_large of int

val of_graph : ?roots:Oid.t list -> ?max_states:int -> Graph.t -> t
(** Subset construction from [roots] (default: all nodes without
    incoming node edges; if none, all nodes).  Raises {!Too_large}
    beyond [max_states] (default 10000). *)

val state : t -> int -> state
val root_state : t -> state
val state_count : t -> int
val transition_count : t -> int

val follow : t -> string list -> state option
val accepts_path : t -> string list -> bool
(** Whether the label path occurs in the data. *)

val extent_size : t -> string list -> int
(** Exact number of data objects reachable by the label path. *)

val paths_up_to : t -> int -> string list list
(** All distinct label paths of length ≤ depth (cycle-safe). *)

val intersect_nonempty : t -> Path.t -> bool
(** Whether some label path recorded in the guide matches the regular
    path expression (product automaton, BFS).  Build the guide with
    [~roots:(Graph.nodes g)] to decide emptiness of a path pattern that
    may start anywhere.  Nullable expressions are trivially nonempty. *)

val pp : Format.formatter -> t -> unit
