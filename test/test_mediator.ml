open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let src_a () =
  let g = Graph.create ~name:"A" () in
  let x = Graph.new_node g "x1" in
  Graph.add_to_collection g "As" x;
  Graph.add_edge g x "name" (Graph.V (Value.String "one"));
  Graph.add_edge g x "ref" (Graph.V (Value.String "y1"));
  g

let src_b () =
  let g = Graph.create ~name:"B" () in
  let y = Graph.new_node g "y1" in
  Graph.add_to_collection g "Bs" y;
  Graph.add_edge g y "key" (Graph.V (Value.String "y1"));
  Graph.add_edge g y "payload" (Graph.V (Value.Int 7));
  g

let suite =
  [
    t "copy_collection mapping copies members and attrs" (fun () ->
        let s = Mediator.Source.of_graph ~name:"a" (src_a ()) in
        let m =
          Mediator.Gav.copy_collection ~source:"a" ~collection:"As" ()
        in
        let med = Mediator.Gav.integrate [ s ] [ m ] in
        check_int "1 member" 1 (Graph.collection_size med "As");
        let o = List.hd (Graph.collection med "As") in
        check_bool "attr copied" true
          (Graph.attr_value med o "name" = Some (Value.String "one")));
    t "skolem fusion merges mappings on the same source object" (fun () ->
        let s = Mediator.Source.of_graph ~name:"a" (src_a ()) in
        let m1 =
          Mediator.Gav.mapping_of_string ~source:"a"
            {|WHERE As(x) CREATE F(x) COLLECT Out(F(x)) OUTPUT m|}
        in
        let m2 =
          Mediator.Gav.mapping_of_string ~source:"a"
            {|WHERE As(x), x -> "name" -> n CREATE F(x) LINK F(x) -> "nm" -> n OUTPUT m|}
        in
        let med = Mediator.Gav.integrate [ s ] [ m1; m2 ] in
        check_int "single fused object" 1 (Graph.collection_size med "Out");
        let o = List.hd (Graph.collection med "Out") in
        check_bool "edge landed on same node" true
          (Graph.attr_value med o "nm" = Some (Value.String "one")));
    t "cross-source join via * source" (fun () ->
        let sa = Mediator.Source.of_graph ~name:"a" (src_a ()) in
        let sb = Mediator.Source.of_graph ~name:"b" (src_b ()) in
        let mappings =
          [
            Mediator.Gav.mapping_of_string ~source:"a"
              {|WHERE As(x) CREATE F(x) COLLECT Fs(F(x)) OUTPUT m|};
            Mediator.Gav.mapping_of_string ~source:"b"
              {|WHERE Bs(y) CREATE G(y) COLLECT Gs(G(y)) OUTPUT m|};
            Mediator.Gav.mapping_of_string ~source:"*"
              {|WHERE As(x), x -> "ref" -> k, Bs(y), y -> "key" -> k
                CREATE F(x), G(y) LINK F(x) -> "joined" -> G(y) OUTPUT m|};
          ]
        in
        let med = Mediator.Gav.integrate [ sa; sb ] mappings in
        check_int "join edge" 1 (Graph.label_count med "joined"));
    t "unknown source fails" (fun () ->
        let s = Mediator.Source.of_graph ~name:"a" (src_a ()) in
        let m =
          Mediator.Gav.mapping_of_string ~source:"zzz" "WHERE As(x) COLLECT O(x) OUTPUT m"
        in
        check_bool "raises" true
          (try ignore (Mediator.Gav.integrate [ s ] [ m ]); false
           with Mediator.Gav.Unknown_source ("zzz", [ "a" ]) -> true));
    t "source caching and versioning" (fun () ->
        let calls = ref 0 in
        let s =
          Mediator.Source.make ~name:"c" (fun () -> incr calls; src_a ())
        in
        ignore (Mediator.Source.load s);
        ignore (Mediator.Source.load s);
        check_int "loaded once" 1 !calls;
        Mediator.Source.update s (fun () -> incr calls; src_b ());
        ignore (Mediator.Source.load s);
        check_int "reloaded" 2 !calls;
        check_int "version bumped" 1 (Mediator.Source.version s));
    t "warehouse refresh on stale source" (fun () ->
        let s = Mediator.Source.of_graph ~name:"a" (src_a ()) in
        let w =
          Mediator.Warehouse.create ~sources:[ s ]
            ~mappings:[ Mediator.Gav.copy_collection ~source:"a" ~collection:"As" () ]
            ()
        in
        check_bool "fresh" false (Mediator.Warehouse.stale w);
        check_bool "no-op refresh" false (Mediator.Warehouse.refresh w);
        check_int "1 integration" 1 (Mediator.Warehouse.refresh_count w);
        let g2 = src_a () in
        let x2 = Graph.new_node g2 "x2" in
        Graph.add_to_collection g2 "As" x2;
        Mediator.Source.update s (fun () -> g2);
        check_bool "stale now" true (Mediator.Warehouse.stale w);
        check_bool "refresh rebuilds" true (Mediator.Warehouse.refresh w);
        check_int "2 members now" 2
          (Graph.collection_size (Mediator.Warehouse.graph w) "As");
        check_int "2 integrations" 2 (Mediator.Warehouse.refresh_count w));
    t "access patterns recorded" (fun () ->
        let s =
          Mediator.Source.make
            ~access:{ Mediator.Source.requires_bound = [ "isbn" ] }
            ~name:"lim" (fun () -> src_a ())
        in
        Alcotest.(check (list string)) "ap" [ "isbn" ]
          (Mediator.Source.requires_bound s));
  ]
