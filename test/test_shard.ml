(* The sharded repository: partition coverage, segment round-trips
   (loaded and mmapped) with truncation/corruption fuzz surfacing
   [Binary.Corrupt] byte offsets, manifest publish / open_dir, sharded
   StruQL evaluation byte-identical to the unsharded engine (fixed
   cases, random differential, and all five example sites, at jobs 1
   and 4), and warehouse snapshot isolation under a refresh running
   concurrently with a pinned reader. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tmp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* Byte-identity oracle: the deterministic binary codec serializes
   nodes, edges and collection entries in iteration order, so equal
   encodings mean equal graphs *including* every order the construction
   stage and page generator depend on. *)
let bytes_of g = Repository.Binary.encode g

(* Evaluator-facing shard context straight from the live partition (the
   disk round-trip is exercised separately by the segment tests). *)
let ctx_of ?(jobs = 1) ?(spec = Repository.Shard.By_collection) g =
  let parts = Repository.Shard.partition spec g in
  {
    Struql.Exec.sc_shards =
      List.map
        (fun (name, sg) ->
          {
            Struql.Exec.sv_name = name;
            sv_graph = sg;
            sv_collections = Graph.collections sg;
          })
        parts;
    sc_union = g;
    sc_jobs = jobs;
  }

(* ---- random inputs ---- *)

let data_gen =
  let open QCheck.Gen in
  let* n = int_range 2 8 in
  let* edges =
    list_size (int_range 0 16)
      (triple (int_bound (n - 1))
         (oneofl [ "a"; "b" ])
         (oneof
            [ map (fun i -> `I i) (int_bound 3);
              map (fun j -> `N j) (int_bound (n - 1)) ]))
  in
  let* cs = list_size (int_range 0 n) (int_bound (n - 1)) in
  let* ds = list_size (int_range 0 n) (int_bound (n - 1)) in
  return (n, edges, cs, ds)

let build_data (n, edges, cs, ds) =
  let g = Graph.create ~name:"data" () in
  let nodes =
    Array.init n (fun i -> Graph.new_node g (Printf.sprintf "n%d" i))
  in
  List.iter
    (fun (a, l, tgt) ->
      match tgt with
      | `I v -> Graph.add_edge g nodes.(a) l (Graph.V (Value.Int v))
      | `N j -> Graph.add_edge g nodes.(a) l (Graph.N nodes.(j)))
    edges;
  List.iter (fun i -> Graph.add_to_collection g "C" nodes.(i)) cs;
  List.iter (fun i -> Graph.add_to_collection g "D" nodes.(i)) ds;
  g

let print_data (n, edges, cs, ds) =
  Printf.sprintf "n=%d edges=[%s] C=[%s] D=[%s]" n
    (String.concat ";"
       (List.map
          (fun (a, l, tgt) ->
            match tgt with
            | `I v -> Printf.sprintf "%d-%s->i%d" a l v
            | `N j -> Printf.sprintf "%d-%s->n%d" a l j)
          edges))
    (String.concat ";" (List.map string_of_int cs))
    (String.concat ";" (List.map string_of_int ds))

let fixed_spec =
  ( 6,
    [ (0, "a", `N 1); (1, "b", `N 2); (0, "a", `I 1); (2, "a", `I 0);
      (3, "b", `N 0); (4, "a", `N 5); (5, "b", `I 3) ],
    [ 0; 2; 3 ],
    [ 1; 4; 5 ] )

(* Full queries: shardable driving scans, joins reaching out of the
   shard, multi-block, nested, negation, a path condition (whose rest
   pipeline is parallel-unsafe, forcing the sequential sharded path),
   and a driving edge scan the shard planner cannot cover at all. *)
let query_pool =
  [
    {|INPUT D { WHERE C(x), x -> l -> v CREATE P(x) LINK P(x) -> l -> v COLLECT Ps(P(x)) } OUTPUT S|};
    {|INPUT D { WHERE C(x), x -> "a" -> y CREATE P(x) LINK P(x) -> "hit" -> y COLLECT Ps(P(x)) } OUTPUT S|};
    {|INPUT D
{ WHERE C(x) CREATE P(x) COLLECT Ps(P(x)) }
{ WHERE D(y) CREATE Q(y) LINK Q(y) -> "of" -> y COLLECT Qs(Q(y)) }
OUTPUT S|};
    {|INPUT D
{ WHERE C(x) CREATE P(x) COLLECT Ps(P(x))
  { WHERE x -> "a" -> v CREATE P(x) LINK P(x) -> "val" -> v } }
OUTPUT S|};
    {|INPUT D { WHERE C(x), not(x -> "b" -> w) CREATE P(x) COLLECT Ps(P(x)) } OUTPUT S|};
    {|INPUT D { WHERE C(x), x -> "a"* -> y CREATE P(x) LINK P(x) -> "reach" -> y COLLECT Ps(P(x)) } OUTPUT S|};
    {|INPUT D { WHERE x -> "a" -> y CREATE E(x) LINK E(x) -> "to" -> y COLLECT Es(E(x)) } OUTPUT S|};
  ]

let differential (spec, qi, par, by_family) =
  let g = build_data spec in
  let q = Struql.Parser.parse (List.nth query_pool qi) in
  let jobs = if par then 4 else 1 in
  let pspec =
    if by_family then Repository.Shard.By_family
    else Repository.Shard.By_collection
  in
  let plain = Struql.Exec.run g q in
  let sharded =
    Struql.Exec.run ~shards:(ctx_of ~jobs ~spec:pspec g) g q
  in
  bytes_of plain = bytes_of sharded

(* ---- example sites ---- *)

let site_pages (built : Strudel.Site.built) =
  List.map
    (fun (p : Template.Generator.page) ->
      (p.Template.Generator.url, p.Template.Generator.html))
    built.Strudel.Site.site.Template.Generator.pages

let site_case name def data =
  t (Printf.sprintf "site %s: sharded build byte-identical" name) (fun () ->
      let plain = Strudel.Site.build ~data def in
      List.iter
        (fun jobs ->
          let sharded =
            Strudel.Site.build ~shards:(ctx_of ~jobs data) ~data def
          in
          check_bool
            (Printf.sprintf "pages identical (jobs=%d)" jobs)
            true
            (site_pages plain = site_pages sharded);
          check_string
            (Printf.sprintf "site graph identical (jobs=%d)" jobs)
            (bytes_of plain.Strudel.Site.site_graph)
            (bytes_of sharded.Strudel.Site.site_graph))
        [ 1; 4 ])

(* ---- warehouse helpers ---- *)

let item_graph ~name ~k n =
  let g = Graph.create ~name () in
  for i = 1 to n do
    let o = Graph.new_node g (Printf.sprintf "%s%d" name i) in
    Graph.add_to_collection g "Items" o;
    Graph.add_edge g o "v" (Graph.V (Value.Int k))
  done;
  g

let copy_items source =
  Mediator.Gav.copy_collection ~source ~collection:"Items" ()

(* ---- the suite ---- *)

let partition_tests =
  [
    t "partition covers the union exactly" (fun () ->
        let g = build_data fixed_spec in
        List.iter
          (fun spec ->
            let parts = Repository.Shard.partition spec g in
            (* edge and member conservation: everything appears in
               exactly one shard *)
            let degree sg =
              List.fold_left
                (fun acc o -> acc + List.length (Graph.out_edges sg o))
                0 (Graph.nodes sg)
            in
            let total_edges =
              List.fold_left (fun acc (_, sg) -> acc + degree sg) 0 parts
            in
            check_int "edges conserved" (degree g) total_edges;
            let members c =
              List.fold_left
                (fun acc (_, sg) -> acc + Graph.collection_size sg c)
                0 parts
            in
            check_int "C members conserved" (Graph.collection_size g "C")
              (members "C");
            check_int "D members conserved" (Graph.collection_size g "D")
              (members "D");
            (* shard graphs share the union's oids *)
            List.iter
              (fun (_, sg) ->
                List.iter
                  (fun c ->
                    List.iter
                      (fun o ->
                        check_bool "member oid is a union oid" true
                          (List.exists (Oid.equal o) (Graph.nodes g)))
                      (Graph.collection sg c))
                  (Graph.collections sg))
              parts)
          [ Repository.Shard.By_collection; Repository.Shard.By_family ])
  ]

let segment_tests =
  (* one canonical segment encoding, reused by the fuzz cases *)
  let segment_bytes () =
    let g = build_data fixed_spec in
    let path = Filename.temp_file "strudelseg" ".seg" in
    let _n = Repository.Segment.write_graph ~path ~epoch:7 g in
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Sys.remove path;
    s
  in
  let header_len = String.length Repository.Segment.magic + (8 * 16) in
  [
    t "write / read / mmap round-trip" (fun () ->
        let g = build_data fixed_spec in
        let path = Filename.temp_file "strudelseg" ".seg" in
        let written = Repository.Segment.write_graph ~path ~epoch:7 g in
        let r = Repository.Segment.read ~path () in
        let m = Repository.Segment.map ~path () in
        check_int "size" written (Repository.Segment.size_bytes r);
        check_int "epoch" 7 (Repository.Segment.epoch r);
        check_string "read materializes the graph" (bytes_of g)
          (bytes_of
             (Repository.Segment.to_graph ~name:(Graph.name g) r));
        check_string "mmap materializes the graph" (bytes_of g)
          (bytes_of
             (Repository.Segment.to_graph ~name:(Graph.name g) m));
        Repository.Segment.validate r;
        Repository.Segment.validate m;
        Sys.remove path);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"random graphs round-trip through segments"
         ~count:60
         (QCheck.make ~print:print_data data_gen)
         (fun spec ->
           let g = build_data spec in
           let path = Filename.temp_file "strudelseg" ".seg" in
           let _n = Repository.Segment.write_graph ~path g in
           let r = Repository.Segment.read ~path () in
           let ok =
             bytes_of (Repository.Segment.to_graph ~name:(Graph.name g) r)
             = bytes_of g
           in
           Sys.remove path;
           ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"truncated segments raise Corrupt with an in-range offset"
         ~count:120
         (QCheck.make
            QCheck.Gen.(int_bound (String.length (segment_bytes ()) - 1)))
         (let s = segment_bytes () in
          fun len ->
            match Repository.Segment.of_string (String.sub s 0 len) with
            | exception Repository.Binary.Corrupt (_, off) ->
              off >= 0 && off <= String.length s
            | _ -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"body bit flips raise Corrupt with an in-range offset"
         ~count:120
         (QCheck.make
            QCheck.Gen.(
              let s = segment_bytes () in
              int_range header_len (String.length s - 1)))
         (let s = segment_bytes () in
          fun i ->
            let b = Bytes.of_string s in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x5a));
            match Repository.Segment.of_string (Bytes.to_string b) with
            | exception Repository.Binary.Corrupt (_, off) ->
              off >= 0 && off <= String.length s
            | _ -> false));
    t "header corruption is detected or benign, never a crash" (fun () ->
        let s = segment_bytes () in
        for i = 0 to header_len - 1 do
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
          match Repository.Segment.of_string (Bytes.to_string b) with
          | exception Repository.Binary.Corrupt (_, off) ->
            check_bool "offset in range" true
              (off >= 0 && off <= String.length s)
          | t -> (
            (* geometry happened to stay valid: a full walk must still
               terminate in either success or Corrupt *)
            match Repository.Segment.validate t with
            | () -> ()
            | exception Repository.Binary.Corrupt (_, off) ->
              check_bool "offset in range" true
                (off >= 0 && off <= String.length s))
        done);
  ]

let manifest_tests =
  [
    t "publish / open_dir round-trip" (fun () ->
        let dir = tmp_dir "strudelshard" in
        let g = build_data fixed_spec in
        let snap =
          Repository.Shard.publish
            { Repository.Shard.dir; cfg_spec = Repository.Shard.By_collection }
            ~epoch:1 ~sources:[ ("s", 0) ] g
        in
        check_bool "live snapshot shares the union" true (snap.Repository.Shard.sn_union == g);
        let cold = Repository.Shard.open_dir ~dir () in
        check_int "epoch" 1 cold.Repository.Shard.sn_epoch;
        check_string "union re-assembles byte-identically" (bytes_of g)
          (bytes_of cold.Repository.Shard.sn_union);
        check_int "same shard count"
          (List.length snap.Repository.Shard.sn_shards)
          (List.length cold.Repository.Shard.sn_shards);
        List.iter2
          (fun (a : Repository.Shard.shard) (b : Repository.Shard.shard) ->
            check_string "shard name" a.sh_entry.Repository.Shard.e_name
              b.sh_entry.Repository.Shard.e_name;
            check_int "shard edges" a.sh_entry.Repository.Shard.e_edges
              b.sh_entry.Repository.Shard.e_edges)
          snap.Repository.Shard.sn_shards cold.Repository.Shard.sn_shards;
        (* manifest names the collections each shard is home to *)
        let m = Repository.Shard.load_manifest ~dir in
        check_bool "some shard is home to C" true
          (List.exists
             (fun (e : Repository.Shard.entry) ->
               List.mem "C" e.Repository.Shard.e_collections)
             m.Repository.Shard.m_entries);
        rm_rf dir);
    t "manifest swap is atomic; pinned snapshots stay intact" (fun () ->
        let dir = tmp_dir "strudelshard" in
        let cfg =
          { Repository.Shard.dir; cfg_spec = Repository.Shard.By_collection }
        in
        let g1 = build_data fixed_spec in
        let b1 = bytes_of g1 in
        ignore (Repository.Shard.publish cfg ~epoch:1 g1);
        let pinned = Repository.Shard.open_dir ~dir () in
        let g2 = item_graph ~name:"data" ~k:9 4 in
        ignore (Repository.Shard.publish cfg ~epoch:2 ~sources:[ ("a", 3) ] g2);
        (* the pinned epoch-1 snapshot is untouched by the swap *)
        check_int "pinned epoch" 1 pinned.Repository.Shard.sn_epoch;
        check_string "pinned union unchanged" b1
          (bytes_of pinned.Repository.Shard.sn_union);
        (* a fresh reader sees epoch 2 *)
        let now = Repository.Shard.open_dir ~dir () in
        check_int "current epoch" 2 now.Repository.Shard.sn_epoch;
        check_string "current union is the new graph" (bytes_of g2)
          (bytes_of now.Repository.Shard.sn_union);
        check_bool "sources recorded" true
          ((Repository.Shard.load_manifest ~dir).Repository.Shard.m_sources
           = [ ("a", 3) ]);
        rm_rf dir);
    t "corrupt segment file surfaces Corrupt with a byte offset" (fun () ->
        let dir = tmp_dir "strudelshard" in
        let cfg =
          { Repository.Shard.dir; cfg_spec = Repository.Shard.By_collection }
        in
        ignore (Repository.Shard.publish cfg ~epoch:1 (build_data fixed_spec));
        let seg =
          List.find
            (fun f -> Filename.check_suffix f ".seg")
            (Array.to_list (Sys.readdir dir))
        in
        let path = Filename.concat dir seg in
        let ic = open_in_bin path in
        let len = in_channel_length ic in
        let b = Bytes.of_string (really_input_string ic len) in
        close_in ic;
        Bytes.set b (len - 1)
          (Char.chr (Char.code (Bytes.get b (len - 1)) lxor 0x5a));
        let oc = open_out_bin path in
        output_bytes oc b;
        close_out oc;
        (match Repository.Shard.open_dir ~dir () with
         | exception Repository.Binary.Corrupt (_, off) ->
           check_bool "offset in range" true (off >= 0 && off <= len)
         | _ -> Alcotest.fail "corruption not detected");
        rm_rf dir);
  ]

let eval_tests =
  List.mapi
    (fun i _src ->
      t (Printf.sprintf "fixed differential %d" i) (fun () ->
          List.iter
            (fun par ->
              check_bool
                (Printf.sprintf "q%d jobs=%s" i (if par then "4" else "1"))
                true
                (differential (fixed_spec, i, par, false)))
            [ false; true ]))
    query_pool
  @ [
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make
           ~name:
             "sharded evaluation is byte-identical to unsharded (random \
              graphs, jobs 1 and 4, both partition specs)"
           ~count:250
           (QCheck.make
              ~print:(fun (_, qi, par, fam) ->
                Printf.sprintf "%s [jobs=%d spec=%s]"
                  (List.nth query_pool qi)
                  (if par then 4 else 1)
                  (if fam then "family" else "collection"))
              QCheck.Gen.(
                quad data_gen
                  (int_bound (List.length query_pool - 1))
                  bool bool))
           differential);
      t "kill switch disables sharded scans" (fun () ->
          let g = build_data fixed_spec in
          let q = Struql.Parser.parse (List.hd query_pool) in
          Struql.Exec.shard_enabled := false;
          Fun.protect
            ~finally:(fun () -> Struql.Exec.shard_enabled := true)
            (fun () ->
              let out, prof =
                Struql.Exec.run_with_profile ~shards:(ctx_of g) g q
              in
              check_int "no shard scans"
                0 prof.Struql.Exec.prf_shards_scanned;
              check_string "output unchanged"
                (bytes_of (Struql.Exec.run g q))
                (bytes_of out)));
      t "profile counts scanned and pruned shards" (fun () ->
          (* C and D on disjoint nodes: two shards, one pruned.  The query
             reads only C, via a collection scan, so the planner's driving
             step has a C-only footprint and D's shard must be skipped. *)
          let g = build_data (4, [ (0, "a", `I 1); (2, "a", `I 2) ], [ 0; 1 ], [ 2; 3 ]) in
          let q =
            Struql.Parser.parse
              {|INPUT D { WHERE C(x) CREATE P(x) COLLECT Ps(P(x)) } OUTPUT S|}
          in
          let _out, prof =
            Struql.Exec.run_with_profile ~shards:(ctx_of g) g q
          in
          check_bool "scanned C's shard" true
            (prof.Struql.Exec.prf_shards_scanned >= 1);
          check_bool "pruned D's shard" true
            (prof.Struql.Exec.prf_shards_pruned >= 1));
      t "kernel counters reset" (fun () ->
          let g = build_data fixed_spec in
          let q = Struql.Parser.parse (List.nth query_pool 5) in
          ignore (Struql.Exec.run g q);
          (* the path condition froze the kernel at least once *)
          check_bool "freeze happened" true
            ((Graph.kernel_counters g).Graph.freezes >= 1);
          Graph.reset_kernel_counters g;
          let k = Graph.kernel_counters g in
          check_int "freezes zero" 0 k.Graph.freezes;
          check_int "hits zero" 0 k.Graph.hits;
          check_int "misses zero" 0 k.Graph.misses);
    ]

let site_tests =
  [
    site_case "paper" Sites.Paper_example.definition (Sites.Paper_example.data ());
    site_case "homepage" Sites.Homepage.definition
      (Sites.Homepage.data ~entries:5 ());
    site_case "cnn" Sites.Cnn.definition (Sites.Cnn.data ~articles:6 ());
    site_case "rodin" Sites.Rodin.definition (Sites.Rodin.data ());
    site_case "org" Sites.Org.definition
      (let _sources, w =
         Sites.Org.data ~seed:11 ~people:8 ~orgs:2 ~projects:3 ~pubs:4 ()
       in
       Mediator.Warehouse.graph w);
  ]

let warehouse_tests =
  [
    t "parallel refresh integrates identically to sequential" (fun () ->
        let names = [ "a"; "b"; "c"; "d" ] in
        let mk_sources k =
          List.map
            (fun n ->
              Mediator.Source.of_graph ~name:n (item_graph ~name:n ~k 4))
            names
        in
        let mappings = List.map copy_items names in
        let w1 =
          Mediator.Warehouse.create ~sources:(mk_sources 1) ~mappings ()
        in
        let s4 = mk_sources 1 in
        let w4 =
          Mediator.Warehouse.create ~jobs:4 ~sources:s4 ~mappings ()
        in
        check_string "initial integration identical"
          (bytes_of (Mediator.Warehouse.graph w1))
          (bytes_of (Mediator.Warehouse.graph w4));
        (* all sources change; a 4-domain refresh must integrate the
           same graph and report every declared source *)
        List.iter
          (fun s ->
            let n = Mediator.Source.name s in
            Mediator.Source.update s (fun () -> item_graph ~name:n ~k:2 4))
          s4;
        check_bool "refresh happened" true
          (Mediator.Warehouse.refresh ~jobs:4 w4);
        let stats = Mediator.Warehouse.last_refresh w4 in
        check_int "stats cover all declared sources" (List.length names)
          (List.length stats);
        check_bool "declared order" true
          (List.map (fun s -> s.Mediator.Warehouse.ss_source) stats = names);
        check_bool "all changed" true
          (List.for_all
             (fun s -> s.Mediator.Warehouse.ss_outcome = Mediator.Warehouse.Changed)
             stats);
        let w1' =
          Mediator.Warehouse.create ~sources:(mk_sources 2) ~mappings ()
        in
        check_string "parallel refresh integrates identically"
          (bytes_of (Mediator.Warehouse.graph w1'))
          (bytes_of (Mediator.Warehouse.graph w4)));
    t "quarantined source appears in refresh stats" (fun () ->
        let fault = Fault.ctx () in
        let good =
          Mediator.Source.of_graph ~name:"ok" (item_graph ~name:"ok" ~k:1 2)
        in
        let bad =
          Mediator.Source.make
            ~policy:(Fault.Policy.skip_source ~retry:Fault.Policy.no_retry ())
            ~name:"bad"
            (fun () -> failwith "db down")
        in
        let w =
          Mediator.Warehouse.create ~fault ~sources:[ good; bad ]
            ~mappings:[ copy_items "ok"; copy_items "bad" ]
            ()
        in
        check_int "good items integrated" 2
          (Graph.collection_size (Mediator.Warehouse.graph w) "Items");
        let stats = Mediator.Warehouse.last_refresh w in
        let stat n =
          List.find (fun s -> s.Mediator.Warehouse.ss_source = n) stats
        in
        check_bool "ok changed" true
          ((stat "ok").Mediator.Warehouse.ss_outcome
           = Mediator.Warehouse.Changed);
        (match (stat "bad").Mediator.Warehouse.ss_outcome with
         | Mediator.Warehouse.Quarantined reason ->
           check_bool "reason names the failure" true
             (let n = String.length "db down" in
              let h = String.length reason in
              let rec find i =
                i + n <= h
                && (String.sub reason i n = "db down" || find (i + 1))
              in
              find 0)
         | _ -> Alcotest.fail "bad source not quarantined"));
    t "warehouse publishes shards; sharded view evaluates identically"
      (fun () ->
        let dir = tmp_dir "strudelwsh" in
        let s =
          Mediator.Source.of_graph ~name:"a" (item_graph ~name:"a" ~k:2 5)
        in
        let w =
          Mediator.Warehouse.create
            ~shards:
              { Repository.Shard.dir;
                cfg_spec = Repository.Shard.By_collection }
            ~sources:[ s ]
            ~mappings:[ copy_items "a" ]
            ()
        in
        let v = Mediator.Warehouse.pin w in
        let g = Mediator.Warehouse.view_graph v in
        check_bool "view carries a shard snapshot" true
          (Mediator.Warehouse.view_shards v <> None);
        let ctx = Option.get (Mediator.Warehouse.shard_ctx_of_view v) in
        check_bool "context union is the view graph" true
          (ctx.Struql.Exec.sc_union == g);
        let q =
          Struql.Parser.parse
            {|INPUT D { WHERE Items(x), x -> "v" -> n CREATE P(x) LINK P(x) -> "n" -> n COLLECT Ps(P(x)) } OUTPUT S|}
        in
        check_string "sharded run identical"
          (bytes_of (Struql.Exec.run g q))
          (bytes_of (Struql.Exec.run ~shards:ctx g q));
        check_int "manifest epoch 1" 1
          (Repository.Shard.load_manifest ~dir).Repository.Shard.m_epoch;
        (* a refresh publishes the next epoch; the pinned view keeps
           epoch 1 *)
        Mediator.Source.update s (fun () -> item_graph ~name:"a" ~k:3 5);
        check_bool "refresh happened" true (Mediator.Warehouse.refresh w);
        check_int "manifest epoch 2" 2
          (Repository.Shard.load_manifest ~dir).Repository.Shard.m_epoch;
        (match Mediator.Warehouse.view_shards v with
         | Some sn -> check_int "pinned snapshot epoch" 1 sn.Repository.Shard.sn_epoch
         | None -> Alcotest.fail "pinned view lost its snapshot");
        rm_rf dir);
    t "refresh during build: pinned views never mix source versions"
      (fun () ->
        let sa =
          Mediator.Source.of_graph ~name:"a" (item_graph ~name:"a" ~k:0 3)
        in
        let sb =
          Mediator.Source.of_graph ~name:"b" (item_graph ~name:"b" ~k:0 3)
        in
        let w =
          Mediator.Warehouse.create ~sources:[ sa; sb ]
            ~mappings:[ copy_items "a"; copy_items "b" ]
            ()
        in
        let violations = Atomic.make 0 in
        let stop = Atomic.make false in
        let observed = Atomic.make 0 in
        (* the "site build": repeatedly pin a view and read every item's
           version marker — a consistent snapshot shows one marker value
           across both sources, always on all 6 items *)
        let reader =
          Domain.spawn (fun () ->
              let checks = ref 0 in
              while not (Atomic.get stop) do
                let v = Mediator.Warehouse.pin w in
                let g = Mediator.Warehouse.view_graph v in
                let ks =
                  List.filter_map
                    (fun o ->
                      match Graph.attr_value g o "v" with
                      | Some (Value.Int k) -> Some k
                      | _ -> None)
                    (Graph.collection g "Items")
                in
                incr checks;
                Atomic.incr observed;
                (match ks with
                 | k0 :: rest
                   when List.length ks = 6
                        && List.for_all (Int.equal k0) rest ->
                   ()
                 | _ -> Atomic.incr violations)
              done;
              !checks)
        in
        for k = 1 to 30 do
          Mediator.Source.update sa (fun () -> item_graph ~name:"a" ~k 3);
          Mediator.Source.update sb (fun () -> item_graph ~name:"b" ~k 3);
          ignore (Mediator.Warehouse.refresh w)
        done;
        (* on a loaded single-core machine the reader domain may not
           have been scheduled yet: give it a beat before stopping *)
        while Atomic.get observed = 0 do
          Domain.cpu_relax ()
        done;
        Atomic.set stop true;
        let checks = Domain.join reader in
        check_bool "reader observed views" true (checks > 0);
        check_int "no mixed snapshot observed" 0 (Atomic.get violations);
        check_int "all refreshes applied" 31 (Mediator.Warehouse.refresh_count w));
  ]

let suite =
  partition_tests @ segment_tests @ manifest_tests @ eval_tests @ site_tests
  @ warehouse_tests
