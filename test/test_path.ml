open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a -x-> b -y-> c -x-> d ; a -z-> "v" ; cycle d -x-> b *)
let mk () =
  let g = Graph.create ~name:"p" () in
  let a = Graph.new_node g "a" in
  let b = Graph.new_node g "b" in
  let c = Graph.new_node g "c" in
  let d = Graph.new_node g "d" in
  Graph.add_edge g a "x" (Graph.N b);
  Graph.add_edge g b "y" (Graph.N c);
  Graph.add_edge g c "x" (Graph.N d);
  Graph.add_edge g d "x" (Graph.N b);
  Graph.add_edge g a "z" (Graph.V (Value.String "v"));
  (g, a, b, c, d)

let single =
  [
    t "single label edge" (fun () ->
        let g, a, b, _, _ = mk () in
        check_bool "a-x->b" true
          (Path.matches g (Path.Edge (Path.Label "x")) a (Graph.N b));
        check_bool "no a-y->b" false
          (Path.matches g (Path.Edge (Path.Label "y")) a (Graph.N b)));
    t "any edge" (fun () ->
        let g, a, _, _, _ = mk () in
        check_int "two succs" 2
          (List.length (Path.eval_from g (Path.Edge Path.Any) a)));
    t "edge to value" (fun () ->
        let g, a, _, _, _ = mk () in
        check_bool "a-z->v" true
          (Path.matches g
             (Path.Edge (Path.Label "z"))
             a
             (Graph.V (Value.String "v"))));
    t "named predicate" (fun () ->
        let g, a, b, _, _ = mk () in
        let p = Path.Named_pred ("isX", fun l -> l = "x") in
        check_bool "pred" true (Path.matches g (Path.Edge p) a (Graph.N b)));
  ]

let composite =
  [
    t "seq" (fun () ->
        let g, a, _, c, _ = mk () in
        let r = Path.Seq (Path.Edge (Path.Label "x"), Path.Edge (Path.Label "y")) in
        check_bool "a-x.y->c" true (Path.matches g r a (Graph.N c)));
    t "alt" (fun () ->
        let g, a, b, _, _ = mk () in
        let r = Path.Alt (Path.Edge (Path.Label "q"), Path.Edge (Path.Label "x")) in
        check_bool "alt" true (Path.matches g r a (Graph.N b)));
    t "star includes source" (fun () ->
        let g, a, _, _, _ = mk () in
        check_bool "a in a.*" true
          (Path.matches g Path.any_path a (Graph.N a)));
    t "star reaches through cycle" (fun () ->
        let g, a, _, _, d = mk () in
        check_bool "a-*->d" true (Path.matches g Path.any_path a (Graph.N d));
        (* everything reachable: a,b,c,d + value v *)
        check_int "all" 5 (List.length (Path.eval_from g Path.any_path a));
        check_bool "terminates on cycle from d" true
          (List.length (Path.eval_from g Path.any_path d) > 0));
    t "plus excludes source without cycle" (fun () ->
        let g, a, _, _, _ = mk () in
        check_bool "a not in a.+" false
          (Path.matches g (Path.Plus (Path.Edge Path.Any)) a (Graph.N a)));
    t "plus includes source on cycle" (fun () ->
        let g, _, b, _, _ = mk () in
        check_bool "b in b.+ (cycle)" true
          (Path.matches g (Path.Plus (Path.Edge Path.Any)) b (Graph.N b)));
    t "opt" (fun () ->
        let g, a, b, _, _ = mk () in
        let r = Path.Opt (Path.Edge (Path.Label "x")) in
        check_bool "self" true (Path.matches g r a (Graph.N a));
        check_bool "one" true (Path.matches g r a (Graph.N b)));
    t "label star: x* chains" (fun () ->
        let g, _, _, c, b = mk () in
        (* c -x-> d -x-> b *)
        let r = Path.Star (Path.Edge (Path.Label "x")) in
        ignore b;
        check_bool "c-x*->b" true
          (Path.matches g r c (Graph.N (Option.get (Graph.find_node g "b")))));
    t "nullable" (fun () ->
        check_bool "star" true (Path.nullable Path.any_path);
        check_bool "opt" true (Path.nullable (Path.Opt (Path.Edge Path.Any)));
        check_bool "edge" false (Path.nullable (Path.Edge Path.Any));
        check_bool "seq" false
          (Path.nullable (Path.Seq (Path.Epsilon, Path.Edge Path.Any)));
        check_bool "seq eps" true
          (Path.nullable (Path.Seq (Path.Epsilon, Path.Epsilon))));
    t "seq_all builds concatenation" (fun () ->
        let g, a, _, c, _ = mk () in
        let r =
          Path.seq_all [ Path.Edge (Path.Label "x"); Path.Edge (Path.Label "y") ]
        in
        check_bool "seq_all" true (Path.matches g r a (Graph.N c));
        check_bool "empty = epsilon" true (Path.nullable (Path.seq_all [])));
    t "value has no outgoing path" (fun () ->
        let g, a, _, _, _ = mk () in
        let r =
          Path.Seq (Path.Edge (Path.Label "z"), Path.Edge Path.Any)
        in
        check_int "dead end" 0 (List.length (Path.eval_from g r a)));
  ]

(* --- NFA evaluation vs reference fixpoint semantics --- *)

let rpe_gen =
  let open QCheck.Gen in
  let pred =
    oneofl
      [
        Path.Label "x";
        Path.Label "y";
        Path.Label "z";
        Path.Any;
        (* a predicate the dispatch tables can't special-case: keeps the
           compiled kernel's fallback lane under the same property *)
        Path.Named_pred ("notY", fun l -> l <> "y");
      ]
  in
  let rec gen depth =
    if depth = 0 then map (fun p -> Path.Edge p) pred
    else
      frequency
        [
          (3, map (fun p -> Path.Edge p) pred);
          (1, return Path.Epsilon);
          (2, map2 (fun a b -> Path.Seq (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (2, map2 (fun a b -> Path.Alt (a, b)) (gen (depth - 1)) (gen (depth - 1)));
          (1, map (fun a -> Path.Star a) (gen (depth - 1)));
          (1, map (fun a -> Path.Plus a) (gen (depth - 1)));
          (1, map (fun a -> Path.Opt a) (gen (depth - 1)));
        ]
  in
  gen 3

let graph_gen =
  let open QCheck.Gen in
  let* n = int_range 1 6 in
  let* edges =
    list_size (int_range 0 12)
      (triple (int_bound (n - 1)) (oneofl [ "x"; "y"; "z" ]) (int_bound (n - 1)))
  in
  let* vals =
    list_size (int_range 0 3) (pair (int_bound (n - 1)) (int_bound 2))
  in
  return (n, edges, vals)

let build_graph (n, edges, vals) =
  let g = Graph.create ~name:"q" () in
  let nodes = Array.init n (fun i -> Oid.fresh (string_of_int i)) in
  Array.iter (Graph.add_node g) nodes;
  List.iter (fun (a, l, b) -> Graph.add_edge g nodes.(a) l (Graph.N nodes.(b))) edges;
  List.iter
    (fun (a, v) -> Graph.add_edge g nodes.(a) "z" (Graph.V (Value.Int v)))
    vals;
  (g, nodes)

let target_key = function
  | Graph.N o -> "N" ^ Oid.name o
  | Graph.V v -> "V" ^ Value.to_string v

let nfa_matches_reference (spec, rpe) =
  let g, nodes = build_graph spec in
  (* reference pairs restricted to node sources *)
  let ref_pairs =
    Path.eval_ref g rpe
    |> List.filter_map (fun (x, y) ->
        match x with
        | Graph.N o -> Some (Oid.name o, target_key y)
        | Graph.V _ -> None)
    |> List.sort_uniq compare
  in
  let nfa_pairs =
    Array.to_list nodes
    |> List.concat_map (fun o ->
        List.map (fun t -> (Oid.name o, target_key t)) (Path.eval_from g rpe o))
    |> List.sort_uniq compare
  in
  ref_pairs = nfa_pairs

let props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"NFA evaluation matches reference semantics"
         ~count:300
         (QCheck.make
            ~print:(fun (_, r) -> Fmt.str "%a" Path.pp r)
            QCheck.Gen.(pair graph_gen rpe_gen))
         nfa_matches_reference);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"eval_from deduplicates" ~count:200
         (QCheck.make QCheck.Gen.(pair graph_gen rpe_gen))
         (fun (spec, rpe) ->
           let g, nodes = build_graph spec in
           Array.for_all
             (fun o ->
               let r = List.map target_key (Path.eval_from g rpe o) in
               List.length r = List.length (List.sort_uniq compare r))
             nodes));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"nullable iff source self-match" ~count:200
         (QCheck.make QCheck.Gen.(pair graph_gen rpe_gen))
         (fun (spec, rpe) ->
           let g, nodes = build_graph spec in
           (* nullable implies every source matches itself *)
           (not (Path.nullable rpe))
           || Array.for_all
                (fun o -> Path.matches g rpe o (Graph.N o))
                nodes));
  ]

let suite = single @ composite @ props
