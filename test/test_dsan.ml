(* The happens-before race sanitizer: vector-clock/lockset semantics on
   hand-built fixtures (a deliberately racy one must be reported with
   both sites; lock, publish/consume and fork/join ordering must
   suppress the report), determinism under a fixed seed, the SA060-062
   diagnostic bridge, stability pinning of the catalog codes, and
   no-false-positive runs of the real parallel runtime — builds, cached
   rebuilds, sharded scans, warehouse refresh, serving — with the
   sanitizer armed at jobs 2 and 8. *)

open Sgraph

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Every sanitized scenario runs inside this bracket: fresh shadow
   state before, disarmed after, whatever happens. *)
let sanitized ?(seed = 7) f =
  Dsan.reset ();
  Dsan.enable ~seed ();
  Fun.protect ~finally:Dsan.disable f

let pos_line ((_, line, _, _) : Dsan.pos) = line

(* --- Fixtures ---

   The child performs its accesses, the parent [Domain.join]s the real
   domain WITHOUT telling the sanitizer (no [Dsan.joined]), then makes
   the conflicting access: execution is deterministic (the accesses
   never physically overlap) but the recorded synchronization orders
   nothing, so the happens-before check must flag the pair — exactly
   the schedule-insensitivity the sanitizer claims.  The suppression
   fixtures add one ordering mechanism each and must stay silent. *)

let racy_ww () =
  let obj = Dsan.alloc ~name:"fixture.racy_ww" in
  let d = Domain.spawn (fun () -> Dsan.write ~site:__POS__ obj 0) in
  Domain.join d;
  Dsan.write ~site:__POS__ obj 0

let racy_rw () =
  let obj = Dsan.alloc ~name:"fixture.racy_rw" in
  let d = Domain.spawn (fun () -> Dsan.write ~site:__POS__ obj 3) in
  Domain.join d;
  Dsan.read ~site:__POS__ obj 3

let locked_ww () =
  let obj = Dsan.alloc ~name:"fixture.locked_ww" in
  let lid = Dsan.lock_id ~name:"fixture.lock" in
  let m = Mutex.create () in
  let write () =
    Mutex.lock m;
    Dsan.acquire ~site:__POS__ lid;
    Dsan.write ~site:__POS__ obj 0;
    Dsan.release ~site:__POS__ lid;
    Mutex.unlock m
  in
  let d = Domain.spawn write in
  Domain.join d;
  write ()

let published_ww () =
  let obj = Dsan.alloc ~name:"fixture.published_ww" in
  let point = Dsan.atomic_id ~name:"fixture.point" in
  let d =
    Domain.spawn (fun () ->
        Dsan.write ~site:__POS__ obj 0;
        Dsan.publish ~site:__POS__ point)
  in
  Domain.join d;
  Dsan.consume ~site:__POS__ point;
  Dsan.write ~site:__POS__ obj 0

let forked_ww () =
  let obj = Dsan.alloc ~name:"fixture.forked_ww" in
  let tok = Dsan.fork () in
  let d =
    Domain.spawn (fun () ->
        Dsan.born tok;
        Dsan.write ~site:__POS__ obj 0;
        Dsan.dying tok)
  in
  Domain.join d;
  Dsan.joined tok;
  Dsan.write ~site:__POS__ obj 0

(* --- Unit: detection and suppression --- *)

let unit_tests =
  [
    t "disabled: instrumentation is inert" (fun () ->
        Dsan.reset ();
        check_bool "disabled by default" false (Dsan.enabled ());
        racy_ww ();
        check_int "no races recorded" 0 (Dsan.race_count ());
        check_int "no ops recorded" 0 (Dsan.stats ()).Dsan.st_ops);
    t "write-write race: reported with both sites and locksets" (fun () ->
        sanitized (fun () ->
            racy_ww ();
            let races = Dsan.races () in
            check_int "one race" 1 (List.length races);
            let r = List.hd races in
            check_bool "kind" true (r.Dsan.r_kind = `Write_write);
            check_string "object" "fixture.racy_ww" r.Dsan.r_object;
            check_int "field" 0 r.Dsan.r_field;
            check_bool "distinct domains" true (r.Dsan.r_tid1 <> r.Dsan.r_tid2);
            check_bool "distinct sites" true
              (pos_line r.Dsan.r_site1 <> pos_line r.Dsan.r_site2);
            check_bool "no locks on either side" true
              (r.Dsan.r_locks1 = [] && r.Dsan.r_locks2 = [])));
    t "read-write race: reported as SA061 kind" (fun () ->
        sanitized (fun () ->
            racy_rw ();
            let races = Dsan.races () in
            check_int "one race" 1 (List.length races);
            let r = List.hd races in
            check_bool "kind" true (r.Dsan.r_kind = `Read_write);
            check_int "field" 3 r.Dsan.r_field));
    t "mutex release->acquire suppresses the report" (fun () ->
        sanitized (fun () ->
            locked_ww ();
            check_int "no race" 0 (Dsan.race_count ())));
    t "publish->consume suppresses the report" (fun () ->
        sanitized (fun () ->
            published_ww ();
            check_int "no race" 0 (Dsan.race_count ())));
    t "fork/born/dying/joined suppresses the report" (fun () ->
        sanitized (fun () ->
            forked_ww ();
            check_int "no race" 0 (Dsan.race_count ())));
    t "duplicate races dedupe; reset clears" (fun () ->
        sanitized (fun () ->
            racy_ww ();
            racy_ww ();
            (* same object name, fields, kind and site pair: one report *)
            check_int "identical race pair deduped" 1 (Dsan.race_count ()));
        Dsan.reset ();
        check_int "reset clears races" 0 (Dsan.race_count ()));
  ]

(* --- Determinism --- *)

let race_key (r : Dsan.race) =
  (r.Dsan.r_object, r.Dsan.r_field,
   (match r.Dsan.r_kind with `Write_write -> "ww" | `Read_write -> "rw"),
   pos_line r.Dsan.r_site1, pos_line r.Dsan.r_site2)

let determinism_tests =
  [
    t "same seed, same workload: identical reports" (fun () ->
        let run () =
          sanitized ~seed:42 (fun () -> racy_ww (); racy_rw ());
          List.map race_key (Dsan.races ())
        in
        let a = run () in
        let b = run () in
        let c = run () in
        check_bool "non-empty" true (a <> []);
        check_bool "run 2 identical" true (a = b);
        check_bool "run 3 identical" true (a = c));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:20
         ~name:"any perturber seed: racy fixture always caught, exactly once"
         QCheck.small_int
         (fun seed ->
           sanitized ~seed (fun () -> racy_ww ());
           Dsan.race_count () = 1));
  ]

(* --- The diagnostic bridge and the stable catalog --- *)

let catalog_tests =
  [
    t "SA060/SA061/SA062 are in the stable catalog" (fun () ->
        let find code =
          List.find_opt
            (fun (c, _, _) -> c = code)
            Analysis.Diagnostic.catalog
        in
        (match find "SA060" with
         | Some (_, sev, desc) ->
           check_bool "SA060 severity" true (sev = Analysis.Diagnostic.Error);
           check_string "SA060 text"
             "data race: two unordered writes to the same shared location"
             desc
         | None -> Alcotest.fail "SA060 missing");
        (match find "SA061" with
         | Some (_, sev, _) ->
           check_bool "SA061 severity" true (sev = Analysis.Diagnostic.Error)
         | None -> Alcotest.fail "SA061 missing");
        match find "SA062" with
        | Some (_, sev, _) ->
          check_bool "SA062 severity" true (sev = Analysis.Diagnostic.Info)
        | None -> Alcotest.fail "SA062 missing");
    t "catalog is append-only: every pre-dsan code still present" (fun () ->
        let codes = List.map (fun (c, _, _) -> c) Analysis.Diagnostic.catalog in
        List.iter
          (fun c -> check_bool c true (List.mem c codes))
          [ "SA001"; "SA002"; "SA003"; "SA004"; "SA005"; "SA010"; "SA011";
            "SA012"; "SA013"; "SA020"; "SA021"; "SA022"; "SA023"; "SA024";
            "SA030"; "SA031"; "SA040"; "SA041"; "SA042"; "SA043"; "SA050" ]);
    t "race -> diagnostic: code, severity, span, both access notes"
      (fun () ->
        sanitized (fun () -> racy_ww ());
        let rs = Dsan.races () in
        let d = Analysis.Dsan_report.diagnostic_of_race (List.hd rs) in
        check_string "code" "SA060" d.Analysis.Diagnostic.code;
        check_bool "severity" true
          (d.Analysis.Diagnostic.severity = Analysis.Diagnostic.Error);
        check_bool "span is this file" true
          (match d.Analysis.Diagnostic.span with
           | Some s ->
             Filename.basename s.Analysis.Diagnostic.file = "test_dsan.ml"
           | None -> false);
        check_int "two access notes" 2
          (List.length d.Analysis.Diagnostic.related));
    t "report: sorted races plus SA062 summary; SARIF renders" (fun () ->
        sanitized (fun () -> racy_rw (); racy_ww ());
        Dsan.disable ();
        let diags = Analysis.Dsan_report.report ~schedules:3 () in
        check_int "two races + summary" 3 (List.length diags);
        let last = List.nth diags 2 in
        check_string "summary code" "SA062" last.Analysis.Diagnostic.code;
        check_bool "summary counts schedules" true
          (let m = last.Analysis.Diagnostic.message in
           let has_sub sub =
             let n = String.length sub and len = String.length m in
             let rec go i =
               i + n <= len && (String.sub m i n = sub || go (i + 1))
             in
             go 0
           in
           has_sub "3 schedule(s)" && has_sub "2 race(s)");
        let sarif = Analysis.Diagnostic.to_sarif diags in
        check_bool "sarif mentions SA060" true
          (let n = String.length "SA060" and len = String.length sarif in
           let rec go i =
             i + n <= len && (String.sub sarif i n = "SA060" || go (i + 1))
           in
           go 0));
  ]

(* --- No false positives on the real runtime --- *)

let page_triples (site : Template.Generator.site) =
  List.map
    (fun (p : Template.Generator.page) ->
      (p.Template.Generator.url, p.Template.Generator.html))
    site.Template.Generator.pages

let job_levels = [ 2; 8 ]

let clean_runtime_tests =
  [
    t "sanitized parallel builds: zero races, output unchanged" (fun () ->
        let def = Sites.Paper_example.definition in
        let data = Sites.Paper_example.data () in
        let reference =
          page_triples (Strudel.Site.build ~data def).Strudel.Site.site
        in
        List.iter
          (fun jobs ->
            sanitized (fun () ->
                let cache = Strudel.Render_cache.create () in
                let b1 = Strudel.Site.build ~jobs ~render_cache:cache ~data def in
                let b2 = Strudel.Site.build ~jobs ~render_cache:cache ~data def in
                check_bool
                  (Printf.sprintf "jobs=%d first build identical" jobs)
                  true
                  (page_triples b1.Strudel.Site.site = reference);
                check_bool
                  (Printf.sprintf "jobs=%d cached build identical" jobs)
                  true
                  (page_triples b2.Strudel.Site.site = reference);
                check_int (Printf.sprintf "jobs=%d races" jobs) 0
                  (Dsan.race_count ());
                check_bool "sanitizer actually saw the run" true
                  ((Dsan.stats ()).Dsan.st_ops > 0)))
          job_levels);
    t "sanitized sharded scans: zero races, results unchanged" (fun () ->
        let g = Graph.create ~name:"data" () in
        let nodes =
          Array.init 40 (fun i -> Graph.new_node g (Printf.sprintf "n%d" i))
        in
        Array.iteri
          (fun i o ->
            Graph.add_edge g o "a" (Graph.V (Value.Int i));
            Graph.add_to_collection g
              (if i mod 2 = 0 then "C" else "D")
              o;
            if i > 0 then Graph.add_edge g o "b" (Graph.N nodes.(i - 1)))
          nodes;
        let q =
          Struql.Parser.parse
            {|INPUT D { WHERE C(x), x -> "a" -> v CREATE P(x) LINK P(x) -> "val" -> v COLLECT Ps(P(x)) } OUTPUT S|}
        in
        let plain = Repository.Binary.encode (Struql.Exec.run g q) in
        List.iter
          (fun jobs ->
            sanitized (fun () ->
                let parts =
                  Repository.Shard.partition Repository.Shard.By_collection g
                in
                let ctx =
                  {
                    Struql.Exec.sc_shards =
                      List.map
                        (fun (name, sg) ->
                          {
                            Struql.Exec.sv_name = name;
                            sv_graph = sg;
                            sv_collections = Graph.collections sg;
                          })
                        parts;
                    sc_union = g;
                    sc_jobs = jobs;
                  }
                in
                let sharded =
                  Repository.Binary.encode (Struql.Exec.run ~shards:ctx g q)
                in
                check_bool (Printf.sprintf "jobs=%d result identical" jobs)
                  true (sharded = plain);
                check_int (Printf.sprintf "jobs=%d races" jobs) 0
                  (Dsan.race_count ())))
          job_levels);
    t "sanitized warehouse refresh: zero races" (fun () ->
        List.iter
          (fun jobs ->
            sanitized (fun () ->
                let srcs, _ = Sites.Org.data ~people:20 ~orgs:3 () in
                let w =
                  Mediator.Warehouse.create ~jobs
                    ~sources:
                      [ srcs.Sites.Org.rdb; srcs.Sites.Org.projects;
                        srcs.Sites.Org.bib; srcs.Sites.Org.html ]
                    ~mappings:Sites.Org.mediation_mappings ()
                in
                ignore (Mediator.Warehouse.refresh ~jobs w);
                check_bool "warehouse built" true
                  (Graph.node_count (Mediator.Warehouse.graph w) > 0);
                check_int (Printf.sprintf "jobs=%d races" jobs) 0
                  (Dsan.race_count ())))
          job_levels);
    t "sanitized serving: zero races under concurrent requests" (fun () ->
        let def = Sites.Paper_example.definition in
        let data = Sites.Paper_example.data () in
        List.iter
          (fun jobs ->
            sanitized (fun () ->
                let eng =
                  Serve.Engine.create ~workers:jobs
                    ~source:(Serve.Engine.Static data) def
                in
                let request path =
                  {
                    Serve.Http.meth = Serve.Http.GET;
                    target = path;
                    path;
                    version = "HTTP/1.1";
                    headers = [];
                    body = "";
                  }
                in
                Strudel.Pool.run Strudel.Pool.shared ~jobs (fun w ->
                    for _ = 1 to 20 do
                      List.iter
                        (fun path ->
                          ignore
                            (Serve.Engine.handle ~worker:w eng (request path)))
                        [ "/"; "/healthz"; "/readyz" ]
                    done);
                check_int (Printf.sprintf "jobs=%d races" jobs) 0
                  (Dsan.race_count ())))
          job_levels);
  ]

let suite = unit_tests @ determinism_tests @ catalog_tests @ clean_runtime_tests
