(* Differential stress tests for the work-stealing materializer at the
   100k-page scale the paper's sites never reached.

   Everything here streams through a sink: byte identity across job
   counts is checked with a chain digest over the canonical emission
   order (O(1) memory), and boundedness is checked on live-heap deltas
   — never by retaining the page set, which is the very thing the
   streaming path exists to avoid.

   [STRUDEL_SCALE_ITEMS] overrides the corpus size (default 100_000,
   i.e. 100_101 pages); the memory comparison only asserts at 50k+
   items, where retention dwarfs slice-level noise. *)

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let items =
  match Sys.getenv_opt "STRUDEL_SCALE_ITEMS" with
  | Some s -> ( try max 1_000 (int_of_string s) with _ -> 100_000)
  | None -> 100_000

let groups = 100
let expected_pages = items + groups + 1

(* data + site graph, built once and shared by every case *)
let ctx =
  lazy
    (let data = Sites.Scale.data ~items ~groups () in
     let sg, _, _, _ =
       Strudel.Site.build_site_graph Sites.Scale.definition data
     in
     (sg, Strudel.Site.roots_of sg "Root"))

(* a chain digest over (url, html) in emission order: equal digests +
   equal counts = byte-identical page sequences *)
let digest_run ?(emit = fun (_ : Template.Generator.page) -> ()) jobs =
  let sg, roots = Lazy.force ctx in
  let d = ref "" and pages = ref 0 and bytes = ref 0 in
  let sink =
    {
      Strudel.Render_pool.sk_emit =
        (fun (p : Template.Generator.page) ->
          d :=
            Digest.string
              (!d ^ p.Template.Generator.url ^ "\x00"
             ^ p.Template.Generator.html);
          incr pages;
          bytes := !bytes + String.length p.Template.Generator.html;
          emit p);
      sk_reset =
        (fun () ->
          d := "";
          pages := 0;
          bytes := 0);
    }
  in
  let t0 = Unix.gettimeofday () in
  let _, prof =
    Strudel.Render_pool.materialize ~jobs ~sink
      ~templates:Sites.Scale.templates sg ~roots
  in
  let wall = (Unix.gettimeofday () -. t0) *. 1000. in
  (!d, !pages, !bytes, prof, wall)

(* the sequential streaming reference; its first forcing also warms the
   graph (CSR freeze, interning), which the memory case relies on *)
let reference = lazy (digest_run 1)

let live_words () =
  Gc.compact ();
  (Gc.stat ()).Gc.live_words

let suite =
  [
    t "100k-page site streams byte-identically at jobs=8" (fun () ->
        let d1, n1, b1, prof1, _ = Lazy.force reference in
        let d8, n8, _, prof8, _ = digest_run 8 in
        check_int "sequential page count" expected_pages n1;
        check_int "jobs=8 page count" expected_pages n8;
        check_string "chain digest identical" (Digest.to_hex d1)
          (Digest.to_hex d8);
        check_bool "no sequential fallback (jobs=1)" false
          prof1.Strudel.Render_pool.rp_fallback;
        check_bool "no sequential fallback (jobs=8)" false
          prof8.Strudel.Render_pool.rp_fallback;
        check_int "jobs recorded" 8 prof8.Strudel.Render_pool.rp_jobs;
        check_bool "rendered everything" true
          (prof8.Strudel.Render_pool.rp_rendered = expected_pages);
        check_bool "output is non-trivial" true (b1 > 100 * expected_pages));
    t "streaming never holds the page set in memory" (fun () ->
        (* warmup: graph freeze + interning happen before the baseline *)
        let _ = Lazy.force reference in
        let baseline = live_words () in
        let sample_every = max 2_000 (items / 5) in
        let seen = ref 0 and peak = ref baseline in
        let _, _, _, _, _ =
          digest_run 1 ~emit:(fun _ ->
              incr seen;
              if !seen mod sample_every = 0 then begin
                let lw = live_words () in
                if lw > !peak then peak := lw
              end)
        in
        let stream_end = live_words () in
        let sg, roots = Lazy.force ctx in
        let site, _ =
          Strudel.Render_pool.materialize ~templates:Sites.Scale.templates sg
            ~roots
        in
        let inmem = live_words () in
        let stream_peak_delta = !peak - baseline in
        let stream_end_delta = stream_end - baseline in
        let inmem_delta = inmem - baseline in
        check_int "in-memory run kept every page" expected_pages
          (List.length site.Template.Generator.pages);
        check_bool "streaming retains nothing afterwards" true
          (stream_end_delta * 4 < inmem_delta);
        if items >= 50_000 then
          (* the whole point: peak live under streaming is far below
             what holding the site costs (empirically ~17 MB of
             slice-and-transient vs ~61 MB of retained pages at 100k) *)
          check_bool
            (Printf.sprintf
               "streaming peak (+%d words) well under retention (+%d words)"
               stream_peak_delta inmem_delta)
            true
            (stream_peak_delta * 2 < inmem_delta));
    t "work-stealing wall time does not regress vs sequential" (fun () ->
        if Strudel.Render_pool.auto_jobs () < 2 then
          (* single-core container: 8 domains timeslice one core, so a
             wall-clock bound would measure the scheduler's GC sync, not
             its stealing; the bound is enforced on multicore (CI gate
             + E17's acceptance threshold) *)
          check_bool "skipped on single-core machine" true true
        else begin
          let best f = min (let _, _, _, _, w = f () in w)
                         (let _, _, _, _, w = f () in w) in
          let w1 = best (fun () -> digest_run 1) in
          let w8 = best (fun () -> digest_run 8) in
          check_bool
            (Printf.sprintf "jobs=8 (%.0f ms) <= 1.25 * jobs=1 (%.0f ms)" w8
               w1)
            true
            (w8 <= (w1 *. 1.25) +. 50.)
        end);
    t "file sink output = in-memory write_site (jobs=8)" (fun () ->
        let data = Sites.Scale.data ~items:2_000 () in
        let sg, _, _, _ =
          Strudel.Site.build_site_graph Sites.Scale.definition data
        in
        let roots = Strudel.Site.roots_of sg "Root" in
        let templates = Sites.Scale.templates in
        let tmp = Filename.temp_file "strudelscale" "" in
        Sys.remove tmp;
        let dir_mem = tmp ^ ".mem" and dir_sink = tmp ^ ".sink" in
        let site, _ =
          Strudel.Render_pool.materialize ~templates sg ~roots
        in
        Sys.mkdir dir_mem 0o755;
        Template.Generator.write_site ~dir:dir_mem site;
        let _, prof =
          Strudel.Render_pool.materialize ~jobs:8
            ~sink:(Strudel.Render_pool.file_sink ~dir:dir_sink)
            ~templates sg ~roots
        in
        let read dir f =
          let ic = open_in_bin (Filename.concat dir f) in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          s
        in
        let files dir = List.sort compare (Array.to_list (Sys.readdir dir)) in
        let fs_mem = files dir_mem and fs_sink = files dir_sink in
        let same =
          fs_mem = fs_sink
          && List.for_all (fun f -> read dir_mem f = read dir_sink f) fs_mem
        in
        List.iter
          (fun dir ->
            Array.iter
              (fun f -> Sys.remove (Filename.concat dir f))
              (Sys.readdir dir);
            Sys.rmdir dir)
          [ dir_mem; dir_sink ];
        check_int "file count" (List.length fs_mem) (List.length fs_sink);
        check_bool "every file byte-identical" true same;
        check_int "profile counts streamed pages" 2_101
          prof.Strudel.Render_pool.rp_pages);
  ]
