let () =
  Alcotest.run "strudel"
    [
      ("value", Test_value.suite);
      ("graph", Test_graph.suite);
      ("path", Test_path.suite);
      ("skolem", Test_skolem.suite);
      ("algo", Test_algo.suite);
      ("lex", Test_lex.suite);
      ("ddl", Test_ddl.suite);
      ("struql-parser", Test_struql_parser.suite);
      ("struql-pretty-fuzz", Test_pretty_fuzz.suite);
      ("struql-check", Test_check.suite);
      ("struql-plan", Test_plan.suite);
      ("struql-eval", Test_eval.suite);
      ("struql-eval-reference", Test_eval_ref.suite);
      ("struql-exec", Test_exec.suite);
      ("struql-aggregates", Test_agg.suite);
      ("struql-theory", Test_theory.suite);
      ("xml", Test_xml.suite);
      ("site-schema", Test_schema.suite);
      ("dataguide", Test_dataguide.suite);
      ("decompose", Test_decompose.suite);
      ("verify", Test_verify.suite);
      ("template", Test_template.suite);
      ("generator", Test_generator.suite);
      ("wrappers", Test_wrappers.suite);
      ("mediator", Test_mediator.suite);
      ("repository", Test_repository.suite);
      ("binary-storage", Test_binary.suite);
      ("site", Test_site.suite);
      ("materialize", Test_materialize.suite);
      ("incremental", Test_incremental.suite);
      ("integration", Test_integration.suite);
      ("end-to-end-properties", Test_end_to_end_props.suite);
      ("cli", Test_cli.suite);
    ]
