(* Integration tests driving the actual strudel CLI binary. *)

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cli = "../bin/strudel_cli.exe"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec find i = i + n <= h && (String.sub hay i n = needle || find (i + 1)) in
  find 0

let write_tmp suffix content =
  let path = Filename.temp_file "strudelcli" suffix in
  let oc = open_out path in
  output_string oc content;
  close_out oc;
  path

(* run a command, capture stdout, return (exit code, output) *)
let run_cmd cmd =
  let out_file = Filename.temp_file "strudelout" ".txt" in
  let code = Sys.command (cmd ^ " > " ^ Filename.quote out_file ^ " 2>/dev/null") in
  let ic = open_in_bin out_file in
  let n = in_channel_length ic in
  let out = really_input_string ic n in
  close_in ic;
  Sys.remove out_file;
  (code, out)

let available = Sys.file_exists cli

let guard f () = if available then f () else ()

let suite =
  [
    t "cli binary is built" (fun () -> check_bool "exists" true available);
    t "check: valid query" (guard (fun () ->
        let q = write_tmp ".struql"
            {|WHERE C(x), x -> "a" -> y CREATE F(x) LINK F(x) -> "b" -> y|}
        in
        let code, out = run_cmd (Filename.quote cli ^ " check " ^ Filename.quote q) in
        Sys.remove q;
        check_int "exit 0" 0 code;
        check_bool "range-restricted" true (contains out "range-restricted")));
    t "check: invalid query exits nonzero" (guard (fun () ->
        let q = write_tmp ".struql"
            {|WHERE C(x) CREATE F(x) LINK x -> "b" -> F(x)|}
        in
        let code, out = run_cmd (Filename.quote cli ^ " check " ^ Filename.quote q) in
        Sys.remove q;
        check_bool "nonzero" true (code <> 0);
        check_bool "immutable message" true (contains out "immutable")));
    t "query: evaluates and prints DDL" (guard (fun () ->
        let d = write_tmp ".ddl" "object a in C { k 1 }\nobject b in C { k 2 }\n" in
        let q = write_tmp ".struql"
            {|WHERE C(x), x -> "k" -> v CREATE F(x) LINK F(x) -> "key" -> v COLLECT Out(F(x)) OUTPUT R|}
        in
        let code, out =
          run_cmd
            (Filename.quote cli ^ " query -d " ^ Filename.quote d ^ " "
             ^ Filename.quote q)
        in
        Sys.remove d;
        Sys.remove q;
        check_int "exit 0" 0 code;
        check_bool "collects" true (contains out "in Out");
        check_bool "keys" true (contains out "key 1" && contains out "key 2")));
    t "schema: prints fig5-style edges" (guard (fun () ->
        let q = write_tmp ".struql" Sites.Paper_example.site_query in
        let code, out = run_cmd (Filename.quote cli ^ " schema " ^ Filename.quote q) in
        Sys.remove q;
        check_int "exit 0" 0 code;
        check_bool "conjunction label" true (contains out "Q1^Q2")));
    t "decompose: one piece per unit" (guard (fun () ->
        let q = write_tmp ".struql" Sites.Paper_example.site_query in
        let code, out =
          run_cmd (Filename.quote cli ^ " decompose " ^ Filename.quote q)
        in
        Sys.remove q;
        check_int "exit 0" 0 code;
        check_bool "create piece" true (contains out "-- create:YearPage");
        check_bool "link piece" true (contains out "-- link:")));
    t "load: bibtex to ddl and to xml" (guard (fun () ->
        let bib = write_tmp ".bib"
            "@article{k1, title = {T}, author = {A B}, year = 1997}\n"
        in
        let code, out =
          run_cmd (Filename.quote cli ^ " load -f bibtex " ^ Filename.quote bib)
        in
        check_int "exit 0" 0 code;
        check_bool "ddl object" true (contains out "object k1 in Publications");
        let code2, out2 =
          run_cmd
            (Filename.quote cli ^ " load -f bibtex --xml " ^ Filename.quote bib)
        in
        Sys.remove bib;
        check_int "exit 0" 0 code2;
        check_bool "xml graph" true (contains out2 "<graph name=")));
    t "verify: violation exits nonzero" (guard (fun () ->
        let d = write_tmp ".ddl" "object secret_page { proprietary true }\n" in
        let code, out =
          run_cmd
            (Filename.quote cli ^ " verify -d " ^ Filename.quote d
             ^ " --no-label proprietary")
        in
        Sys.remove d;
        check_bool "nonzero" true (code <> 0);
        check_bool "violated" true (contains out "VIOLATED")));
    t "build: writes pages" (guard (fun () ->
        let d = write_tmp ".ddl" Sites.Paper_example.data_ddl in
        let q = write_tmp ".struql" Sites.Paper_example.site_query in
        let tpl = write_tmp ".tpl" "<h1>Pubs</h1><SFMTLIST @YearPage KEY=Year ORDER=ascend>" in
        let dir = Filename.temp_file "strudelsite" "" in
        Sys.remove dir;
        let code, out =
          run_cmd
            (Filename.quote cli ^ " build -d " ^ Filename.quote d ^ " -q "
             ^ Filename.quote q ^ " -t RootPages=" ^ Filename.quote tpl
             ^ " --root RootPage -o " ^ Filename.quote dir)
        in
        check_int "exit 0" 0 code;
        check_bool "report" true (contains out "pages written");
        check_bool "root page file" true
          (Sys.file_exists (Filename.concat dir "RootPage.html"));
        Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
        Sys.rmdir dir;
        List.iter Sys.remove [ d; q; tpl ]));
    t "build: --jobs output identical, --stats prints profile"
      (guard (fun () ->
        let d = write_tmp ".ddl" Sites.Paper_example.data_ddl in
        let q = write_tmp ".struql" Sites.Paper_example.site_query in
        let build_to jobs =
          let dir = Filename.temp_file "strudelsite" "" in
          Sys.remove dir;
          let code, out =
            run_cmd
              (Filename.quote cli ^ " build -d " ^ Filename.quote d ^ " -q "
               ^ Filename.quote q ^ " --root RootPage --jobs "
               ^ string_of_int jobs ^ " --stats -o " ^ Filename.quote dir)
          in
          let pages =
            List.sort compare
              (List.map
                 (fun f ->
                   let ic = open_in_bin (Filename.concat dir f) in
                   let n = in_channel_length ic in
                   let s = really_input_string ic n in
                   close_in ic;
                   (f, s))
                 (Array.to_list (Sys.readdir dir)))
          in
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Sys.rmdir dir;
          (code, out, pages)
        in
        let code1, out1, pages1 = build_to 1 in
        let code4, out4, pages4 = build_to 4 in
        List.iter Sys.remove [ d; q ];
        check_int "jobs=1 exit 0" 0 code1;
        check_int "jobs=4 exit 0" 0 code4;
        check_bool "stats profile printed" true (contains out1 "jobs=1");
        check_bool "stats shows 4 domains" true (contains out4 "jobs=4");
        check_bool "written files byte-identical" true (pages1 = pages4)));
    t "build: --jobs 0 auto-detects, --stream output byte-identical"
      (guard (fun () ->
        let d = write_tmp ".ddl" Sites.Paper_example.data_ddl in
        let q = write_tmp ".struql" Sites.Paper_example.site_query in
        let build_to flags =
          let dir = Filename.temp_file "strudelsite" "" in
          Sys.remove dir;
          let code, out =
            run_cmd
              (Filename.quote cli ^ " build -d " ^ Filename.quote d ^ " -q "
               ^ Filename.quote q ^ " --root RootPage " ^ flags ^ " -o "
               ^ Filename.quote dir)
          in
          let pages =
            List.sort compare
              (List.map
                 (fun f ->
                   let ic = open_in_bin (Filename.concat dir f) in
                   let n = in_channel_length ic in
                   let s = really_input_string ic n in
                   close_in ic;
                   (f, s))
                 (Array.to_list (Sys.readdir dir)))
          in
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Sys.rmdir dir;
          (code, out, pages)
        in
        let code1, _, pages1 = build_to "--jobs 1" in
        let code0, out0, pages0 = build_to "--jobs 0 --stream --stats" in
        List.iter Sys.remove [ d; q ];
        check_int "jobs=1 exit 0" 0 code1;
        check_int "jobs=0 --stream exit 0" 0 code0;
        check_bool "auto-detected profile printed" true
          (contains out0
             (Printf.sprintf "jobs=%d" (Strudel.Render_pool.auto_jobs ())));
        check_bool "streamed files byte-identical" true (pages1 = pages0)));
    t "lint: bundled site in all three formats"
      (guard (fun () ->
        let code, text = run_cmd (cli ^ " lint cnn") in
        check_int "text exit 0" 0 code;
        check_bool "summary line" true (contains text "error(s)");
        check_bool "known cnn warning" true (contains text "SA020");
        let code, json = run_cmd (cli ^ " lint cnn --format json") in
        check_int "json exit 0" 0 code;
        check_bool "json summary" true (contains json "\"summary\"");
        let code, sarif = run_cmd (cli ^ " lint examples/cnn --format sarif") in
        check_int "sarif exit 0" 0 code;
        check_bool "sarif version" true (contains sarif "\"2.1.0\"");
        check_bool "sarif driver" true (contains sarif "strudel-lint")));
    t "lint: --fail-on warning gates the exit code"
      (guard (fun () ->
        let code, _ = run_cmd (cli ^ " lint cnn --fail-on warning") in
        check_int "warnings gate" 1 code;
        let code, _ = run_cmd (cli ^ " lint rodin --fail-on warning") in
        check_int "rodin is warning-free" 0 code));
    t "lint: query file with an error diagnostic"
      (guard (fun () ->
        let q = write_tmp ".struql"
            {|INPUT D
{ CREATE Root() COLLECT Roots(Root()) }
OUTPUT S|}
        in
        (* root family RootPage is never created -> SA024, exit 1 *)
        let code, out = run_cmd (cli ^ " lint " ^ Filename.quote q) in
        Sys.remove q;
        check_int "exit 1" 1 code;
        check_bool "SA024" true (contains out "SA024")));
    t "lint: unknown site exits 2"
      (guard (fun () ->
        let code, _ = run_cmd (cli ^ " lint no_such_site_anywhere") in
        check_int "exit 2" 2 code));
    t "bench: unknown experiment name exits nonzero"
      (guard (fun () ->
        let code, _ = run_cmd "../bench/main.exe E99_no_such_experiment" in
        check_bool "nonzero" true (code <> 0)));
    t "bench: named experiment selection runs"
      (guard (fun () ->
        let code, out = run_cmd "../bench/main.exe E2" in
        check_int "exit 0" 0 code;
        check_bool "ran E2" true (contains out "E2");
        check_bool "ran only E2" true (not (contains out "E1 —"))));
  ]
